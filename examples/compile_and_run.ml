(* MiniLLVM as a library: compile a VIR program for any target with the
   reference backend (the "base compiler"), print its assembly, object
   artifacts, disassembly, and run it on the target simulator — the
   substrate every pass@1 measurement in this reproduction stands on.

     dune exec examples/compile_and_run.exe -- RI5CY dotprod -O3 *)

module B = Vega_backend

let () =
  let arg i d = if Array.length Sys.argv > i then Sys.argv.(i) else d in
  let target = arg 1 "RISCV" in
  let prog = arg 2 "loop_sum" in
  let opt = if arg 3 "-O3" = "-O0" then B.Compiler.O0 else B.Compiler.O3 in
  let case =
    match Vega_ir.Programs.find prog with
    | Some c -> c
    | None ->
        Printf.eprintf "unknown program %s; try one of:\n  %s\n" prog
          (String.concat ", "
             (List.map
                (fun (c : Vega_ir.Programs.case) -> c.name)
                (Vega_ir.Programs.regression @ Vega_ir.Programs.benchmarks)));
        exit 1
  in
  let corpus = Vega_corpus.Corpus.build () in
  let p =
    match Vega_target.Registry.find target with
    | Some p -> p
    | None ->
        Printf.eprintf "unknown target %s\n" target;
        exit 1
  in
  let _, conv = Vega_eval.Refbackend.backend_for corpus.Vega_corpus.Corpus.vfs p in
  let out = B.Compiler.compile conv ~opt (Vega_ir.Programs.modul_of case) in
  print_endline "== assembly ==";
  print_string out.B.Compiler.asm;
  let obj = out.B.Compiler.emitted.B.Emitter.obj in
  Printf.printf "\n== object: %d text words, %d data words, %d relocations ==\n"
    (Array.length obj.Vega_mc.Mcinst.text)
    (Array.length obj.Vega_mc.Mcinst.data)
    (List.length obj.Vega_mc.Mcinst.relocs);
  List.iter
    (fun (r : Vega_mc.Mcinst.reloc) ->
      Printf.printf "  reloc @%04x type %d -> %s\n" r.r_offset r.r_type r.r_sym)
    obj.Vega_mc.Mcinst.relocs;
  (match B.Disasm.decode conv obj with
  | Ok text ->
      print_endline "\n== disassembly (relocatable view) ==";
      print_string text
  | Error m -> Printf.printf "\n(disassembler: %s)\n" m);
  let r =
    Vega_sim.Machine.run conv out.B.Compiler.emitted ~entry:case.entry
      ~args:case.args
  in
  (match r.Vega_sim.Machine.status with
  | Vega_sim.Machine.Finished ret ->
      Printf.printf "\n== simulation: finished (ret %s) ==\n"
        (match ret with Some v -> string_of_int v | None -> "-")
  | Vega_sim.Machine.Trap m -> Printf.printf "\n== simulation: TRAP %s ==\n" m
  | Vega_sim.Machine.Timeout f ->
      Printf.printf "\n== simulation: TIMEOUT (fuel %d) ==\n" f);
  Printf.printf "output:  [%s]\n"
    (String.concat "; " (List.map string_of_int r.Vega_sim.Machine.output));
  Printf.printf "golden:  [%s]\n"
    (String.concat "; " (List.map string_of_int (Vega_ir.Programs.golden case)));
  Printf.printf "cycles:  %d   retired: %d\n" r.Vega_sim.Machine.cycles
    r.Vega_sim.Machine.retired
