(** Evaluator for BackendC functions.

    pass@1 in the paper substitutes a generated function into the base
    compiler and runs regression tests. Our backend hooks are BackendC
    functions executed by this interpreter against a runtime environment
    supplied by [lib/backend]; a generated function is therefore judged by
    behaviour, not by textual match.

    Evaluation is fuel-bounded: generated code can loop, and the harness
    must classify it as failing rather than hang. *)

type value =
  | VInt of int
  | VBool of bool
  | VStr of string
  | VUnit
  | VNull
  | VObj of obj  (** opaque runtime object with method/field dispatch *)

and obj = {
  oclass : string;  (** class name, for diagnostics *)
  call : string -> value list -> value;
  get : string -> value;
}

exception Runtime_error of string
(** Unknown identifier, bad operand types, or an
    [llvm_unreachable]/[report_fatal_error] reached at run time. *)

exception Fuel_exhausted of int
(** The evaluation spent its whole step budget (the payload); distinct
    from {!Runtime_error} so harnesses classify timeouts apart from
    wrong-code failures. *)

type env

val create_env : unit -> env

val add_enum : env -> string -> int -> unit
(** [add_enum env "ARM::fixup_arm_movt_hi16" 42] registers a qualified
    enum member. Unqualified last components are registered too and
    resolve when unambiguous. *)

val add_global : env -> string -> value -> unit
val add_func : env -> string -> (value list -> value) -> unit

val lookup_enum : env -> string -> int option

val call : ?fuel:int -> env -> Ast.func -> value list -> value
(** Invoke a function with positional arguments (bound to its parameters).
    Default fuel: 100_000 evaluation steps.
    @raise Runtime_error on any dynamic failure.
    @raise Fuel_exhausted when the step budget runs out. *)

val truthy : value -> bool
(** C truthiness; raises on objects/strings. *)

val to_int : value -> int
(** @raise Runtime_error when the value has no integer reading (booleans
    widen as in C). *)

val obj : string -> ?get:(string -> value) -> (string -> value list -> value) -> value
(** [obj cls ~get call] builds a [VObj]. Default [get] raises. *)
