(** Hand-written lexer for BackendC.

    Comments ([//] and [/* */]) and whitespace are discarded, matching the
    paper's pre-processing step that strips non-functional elements. *)

exception Error of string
(** Raised on malformed input, with a message carrying ["line L, col C"]
    context. *)

val tokenize : string -> Token.t list
(** Tokenize a full source string. The result never contains [Token.Eof];
    callers append it as a sentinel if they need one. *)

val tokenize_spanned : string -> (Token.t * Span.t) list
(** Like {!tokenize}, tagging every token with the 1-based line/column of
    its first character. *)
