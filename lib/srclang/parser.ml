exception Error of string

type state = {
  toks : Token.t array;
  spans : Span.t array;  (** parallel to [toks] *)
  mutable pos : int;
  mutable marks : (Ast.stmt * Span.t) list;
      (** span of the first token of every parsed statement, looked up by
          physical identity (see {!stmt_span}) *)
}

let cur_span st =
  let n = Array.length st.spans in
  if n = 0 then Span.dummy
  else st.spans.(min st.pos (n - 1))

let fail st msg =
  let around =
    let lo = max 0 (st.pos - 3) and hi = min (Array.length st.toks) (st.pos + 4) in
    let slice = Array.sub st.toks lo (hi - lo) in
    String.concat " " (Array.to_list (Array.map Token.to_string slice))
  in
  let sp = cur_span st in
  let where =
    if Span.is_dummy sp then "" else Printf.sprintf "line %d, col %d: " sp.Span.line sp.Span.col
  in
  raise (Error (Printf.sprintf "%s%s (near: %s)" where msg around))

let peek st = if st.pos < Array.length st.toks then st.toks.(st.pos) else Token.Eof
let advance st = st.pos <- st.pos + 1

let expect st t =
  if Token.equal (peek st) t then advance st
  else fail st (Printf.sprintf "expected %S" (Token.to_string t))

let accept st t =
  if Token.equal (peek st) t then begin
    advance st;
    true
  end
  else false

let ident st =
  match peek st with
  | Token.Id s ->
      advance st;
      s
  | _ -> fail st "expected identifier"

(* Types are single identifiers possibly prefixed by [const]/[unsigned] and
   suffixed by [*]/[&]; the whole spelling is kept as one string. *)
let parse_type st =
  let buf = Buffer.create 16 in
  let add s =
    if Buffer.length buf > 0 then Buffer.add_char buf ' ';
    Buffer.add_string buf s
  in
  let rec quals () =
    if accept st Token.KwConst then begin
      add "const";
      quals ()
    end
  in
  quals ();
  (if accept st Token.KwUnsigned then begin
     add "unsigned";
     (* allow "unsigned int" *)
     match peek st with
     | Token.Id ("int" | "long" | "char") ->
         add (ident st)
     | _ -> ()
   end
   else begin
     let first = ident st in
     let rec scoped acc =
       if Token.equal (peek st) Token.ColonColon then begin
         advance st;
         scoped (acc ^ "::" ^ ident st)
       end
       else acc
     in
     add (scoped first)
   end);
  let rec suffixes () =
    match peek st with
    | Token.Star ->
        advance st;
        Buffer.add_char buf '*';
        suffixes ()
    | Token.Amp ->
        advance st;
        Buffer.add_char buf '&';
        suffixes ()
    | _ -> ()
  in
  suffixes ();
  Buffer.contents buf

let is_type_start st =
  match peek st with
  | Token.KwConst | Token.KwUnsigned -> true
  | Token.Id _ -> (
      (* Id followed by Id (possibly through * / &) introduces a declaration. *)
      let save = st.pos in
      let result =
        try
          let _ = parse_type st in
          match peek st with Token.Id _ -> true | _ -> false
        with Error _ -> false
      in
      st.pos <- save;
      result)
  | _ -> false

let rec parse_expr_prec st =
  let e = parse_lor st in
  if accept st Token.Question then begin
    let t = parse_expr_prec st in
    expect st Token.Colon;
    let f = parse_expr_prec st in
    Ast.Ternary (e, t, f)
  end
  else e

and binlevel st next table =
  let lhs = ref (next st) in
  let rec loop () =
    match List.assoc_opt (peek st) table with
    | Some op ->
        advance st;
        let rhs = next st in
        lhs := Ast.Binop (op, !lhs, rhs);
        loop ()
    | None -> ()
  in
  loop ();
  !lhs

and parse_lor st = binlevel st parse_land [ (Token.PipePipe, Ast.Lor) ]
and parse_land st = binlevel st parse_bor [ (Token.AmpAmp, Ast.Land) ]
and parse_bor st = binlevel st parse_bxor [ (Token.Pipe, Ast.Bor) ]
and parse_bxor st = binlevel st parse_band [ (Token.Caret, Ast.Bxor) ]
and parse_band st = binlevel st parse_equality [ (Token.Amp, Ast.Band) ]

and parse_equality st =
  binlevel st parse_rel [ (Token.EqEq, Ast.Eq); (Token.NotEq, Ast.Ne) ]

and parse_rel st =
  binlevel st parse_shift
    [ (Token.Lt, Ast.Lt); (Token.Gt, Ast.Gt); (Token.Le, Ast.Le); (Token.Ge, Ast.Ge) ]

and parse_shift st =
  binlevel st parse_add [ (Token.Shl, Ast.Shl); (Token.Shr, Ast.Shr) ]

and parse_add st = binlevel st parse_mul [ (Token.Plus, Ast.Add); (Token.Minus, Ast.Sub) ]

and parse_mul st =
  binlevel st parse_unary
    [ (Token.Star, Ast.Mul); (Token.Slash, Ast.Div); (Token.Percent, Ast.Rem) ]

and parse_unary st =
  match peek st with
  | Token.Minus -> (
      advance st;
      (* fold negative integer literals so that -1 round-trips as Int *)
      match parse_unary st with
      | Ast.Int n -> Ast.Int (-n)
      | e -> Ast.Unop (Ast.Neg, e))
  | Token.Bang ->
      advance st;
      Ast.Unop (Ast.Not, parse_unary st)
  | Token.Tilde ->
      advance st;
      Ast.Unop (Ast.Bnot, parse_unary st)
  | _ -> parse_postfix st

and parse_postfix st =
  let e = ref (parse_primary st) in
  let rec loop () =
    match peek st with
    | Token.Dot | Token.Arrow ->
        advance st;
        let name = ident st in
        if accept st Token.LParen then begin
          let args = parse_args st in
          e := Ast.Method (!e, name, args)
        end
        else e := Ast.Member (!e, name);
        loop ()
    | Token.LBracket ->
        advance st;
        let idx = parse_expr_prec st in
        expect st Token.RBracket;
        e := Ast.Index (!e, idx);
        loop ()
    | _ -> ()
  in
  loop ();
  !e

and parse_args st =
  if accept st Token.RParen then []
  else begin
    let rec more acc =
      let a = parse_expr_prec st in
      if accept st Token.Comma then more (a :: acc)
      else begin
        expect st Token.RParen;
        List.rev (a :: acc)
      end
    in
    more []
  end

and parse_primary st =
  match peek st with
  | Token.Int_lit n ->
      advance st;
      Ast.Int n
  | Token.Str_lit s ->
      advance st;
      Ast.Str s
  | Token.Char_lit c ->
      advance st;
      Ast.Chr c
  | Token.KwTrue ->
      advance st;
      Ast.Bool true
  | Token.KwFalse ->
      advance st;
      Ast.Bool false
  | Token.KwNullptr ->
      advance st;
      Ast.Nullptr
  | Token.LParen ->
      advance st;
      let e = parse_expr_prec st in
      expect st Token.RParen;
      e
  | Token.KwUnsigned ->
      (* functional-style cast: unsigned(e) *)
      advance st;
      expect st Token.LParen;
      let e = parse_expr_prec st in
      expect st Token.RParen;
      Ast.Cast ("unsigned", e)
  | Token.Id "static_cast" ->
      advance st;
      expect st Token.Lt;
      let ty = parse_type st in
      expect st Token.Gt;
      expect st Token.LParen;
      let e = parse_expr_prec st in
      expect st Token.RParen;
      Ast.Cast (ty, e)
  | Token.Id _ ->
      let first = ident st in
      let rec scoped acc =
        if Token.equal (peek st) Token.ColonColon then begin
          advance st;
          scoped (ident st :: acc)
        end
        else List.rev acc
      in
      let parts = scoped [ first ] in
      if accept st Token.LParen then
        let args = parse_args st in
        Ast.Call (String.concat "::" parts, args)
      else if List.length parts = 1 then Ast.Id first
      else Ast.Scoped parts
  | t -> fail st (Printf.sprintf "unexpected token %S in expression" (Token.to_string t))

let assign_op_of_token = function
  | Token.Assign -> Some Ast.Set
  | Token.PlusEq -> Some Ast.Add_set
  | Token.MinusEq -> Some Ast.Sub_set
  | Token.OrEq -> Some Ast.Or_set
  | Token.AndEq -> Some Ast.And_set
  | Token.ShlEq -> Some Ast.Shl_set
  | Token.ShrEq -> Some Ast.Shr_set
  | _ -> None

let rec parse_stmt st : Ast.stmt =
  let sp = cur_span st in
  let s = parse_stmt_unmarked st in
  st.marks <- (s, sp) :: st.marks;
  s

and parse_stmt_unmarked st : Ast.stmt =
  match peek st with
  | Token.KwReturn ->
      advance st;
      if accept st Token.Semi then Ast.Return None
      else begin
        let e = parse_expr_prec st in
        expect st Token.Semi;
        Ast.Return (Some e)
      end
  | Token.KwBreak ->
      advance st;
      expect st Token.Semi;
      Ast.Break
  | Token.KwContinue ->
      advance st;
      expect st Token.Semi;
      Ast.Continue
  | Token.KwIf ->
      advance st;
      expect st Token.LParen;
      let cond = parse_expr_prec st in
      expect st Token.RParen;
      let then_ = parse_block_or_stmt st in
      let else_ =
        if accept st Token.KwElse then
          if Token.equal (peek st) Token.KwIf then [ parse_stmt st ]
          else parse_block_or_stmt st
        else []
      in
      Ast.If (cond, then_, else_)
  | Token.KwWhile ->
      advance st;
      expect st Token.LParen;
      let cond = parse_expr_prec st in
      expect st Token.RParen;
      let body = parse_block_or_stmt st in
      Ast.While (cond, body)
  | Token.KwFor ->
      advance st;
      expect st Token.LParen;
      let init =
        if Token.equal (peek st) Token.Semi then begin
          advance st;
          None
        end
        else Some (parse_simple_stmt st)
      in
      let cond =
        if Token.equal (peek st) Token.Semi then None else Some (parse_expr_prec st)
      in
      expect st Token.Semi;
      let step =
        if Token.equal (peek st) Token.RParen then None
        else Some (parse_simple_no_semi st)
      in
      expect st Token.RParen;
      let body = parse_block_or_stmt st in
      Ast.For (init, cond, step, body)
  | Token.KwSwitch ->
      advance st;
      expect st Token.LParen;
      let scrut = parse_expr_prec st in
      expect st Token.RParen;
      expect st Token.LBrace;
      let arms = ref [] and default = ref [] in
      let rec arm_loop () =
        match peek st with
        | Token.RBrace -> advance st
        | Token.KwCase ->
            let rec labels acc =
              if accept st Token.KwCase then begin
                let l = parse_expr_prec st in
                expect st Token.Colon;
                labels (l :: acc)
              end
              else List.rev acc
            in
            let labels = labels [] in
            let body = parse_case_body st in
            arms := { Ast.labels; body } :: !arms;
            arm_loop ()
        | Token.KwDefault ->
            advance st;
            expect st Token.Colon;
            default := parse_case_body st;
            arm_loop ()
        | t -> fail st (Printf.sprintf "unexpected %S in switch" (Token.to_string t))
      in
      arm_loop ();
      Ast.Switch (scrut, List.rev !arms, !default)
  | _ -> parse_simple_stmt st

and parse_case_body st =
  let rec loop acc =
    match peek st with
    | Token.KwCase | Token.KwDefault | Token.RBrace -> List.rev acc
    | _ -> loop (parse_stmt st :: acc)
  in
  loop []

and parse_block_or_stmt st =
  if accept st Token.LBrace then begin
    let rec loop acc =
      if accept st Token.RBrace then List.rev acc else loop (parse_stmt st :: acc)
    in
    loop []
  end
  else [ parse_stmt st ]

(* declaration / assignment / expression statement, consuming the ';' *)
and parse_simple_stmt st =
  let s = parse_simple_no_semi st in
  expect st Token.Semi;
  s

and parse_simple_no_semi st =
  let sp = cur_span st in
  let s = parse_simple_no_semi_unmarked st in
  st.marks <- (s, sp) :: st.marks;
  s

and parse_simple_no_semi_unmarked st =
  if is_type_start st then begin
    let ty = parse_type st in
    let name = ident st in
    let init = if accept st Token.Assign then Some (parse_expr_prec st) else None in
    Ast.Decl (ty, name, init)
  end
  else begin
    let lhs = parse_expr_prec st in
    match assign_op_of_token (peek st) with
    | Some op ->
        advance st;
        let rhs = parse_expr_prec st in
        Ast.Assign (op, lhs, rhs)
    | None -> Ast.Expr lhs
  end

let parse_params st =
  expect st Token.LParen;
  if accept st Token.RParen then []
  else begin
    let rec more acc =
      let ptype = parse_type st in
      let pname = ident st in
      let p = { Ast.ptype; pname } in
      if accept st Token.Comma then more (p :: acc)
      else begin
        expect st Token.RParen;
        List.rev (p :: acc)
      end
    in
    more []
  end

let parse_function_state st =
  let ret_type = parse_type st in
  let first = ident st in
  let cls, name =
    if accept st Token.ColonColon then (Some first, ident st) else (None, first)
  in
  let params = parse_params st in
  (* tolerate trailing qualifiers like [const] before the body *)
  let _ = accept st Token.KwConst in
  expect st Token.LBrace;
  let rec body acc =
    if accept st Token.RBrace then List.rev acc else body (parse_stmt st :: acc)
  in
  let body = body [] in
  { Ast.ret_type; cls; name; params; body }

let make_state src =
  let spanned = Lexer.tokenize_spanned src in
  {
    toks = Array.of_list (List.map fst spanned);
    spans = Array.of_list (List.map snd spanned);
    pos = 0;
    marks = [];
  }

let finish st v =
  if st.pos <> Array.length st.toks then fail st "trailing tokens" else v

let parse_function src =
  let st = make_state src in
  finish st (parse_function_state st)

let parse_function_opt src =
  match parse_function src with
  | f -> Ok f
  | exception Error msg -> Result.Error msg
  | exception Lexer.Error msg -> Result.Error msg

(* -------------------- spanned parsing (analyzer) -------------------- *)

type spans = (Ast.stmt * Span.t) list
type spanned = { sp_fn : Ast.func; sp_marks : spans }

let stmt_span marks s = List.assq_opt s marks

let parse_function_spanned src =
  let st = make_state src in
  let fn = finish st (parse_function_state st) in
  { sp_fn = fn; sp_marks = st.marks }

let parse_function_spanned_opt src =
  match parse_function_spanned src with
  | sf -> Ok sf
  | exception Error msg -> Result.Error msg
  | exception Lexer.Error msg -> Result.Error msg

let parse_expr src =
  let st = make_state src in
  finish st (parse_expr_prec st)

let parse_stmts src =
  let st = make_state src in
  let rec loop acc =
    if st.pos = Array.length st.toks then List.rev acc else loop (parse_stmt st :: acc)
  in
  loop []
