(** Source positions for BackendC tokens and statements.

    Lines and columns are 1-based, matching compiler convention. A span
    marks the first token of a construct; the analyzer ({!Vega_analysis})
    anchors its diagnostics on these. *)

type t = { line : int; col : int }

let make ~line ~col = { line; col }
let dummy = { line = 0; col = 0 }
let is_dummy s = s.line = 0
let to_string s = Printf.sprintf "%d:%d" s.line s.col
let pp fmt s = Format.pp_print_string fmt (to_string s)
let compare (a : t) (b : t) = compare (a.line, a.col) (b.line, b.col)
let equal (a : t) (b : t) = a = b
