type value = VInt of int | VBool of bool | VStr of string | VUnit | VNull | VObj of obj

and obj = {
  oclass : string;
  call : string -> value list -> value;
  get : string -> value;
}

exception Runtime_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Runtime_error s)) fmt

type env = {
  enums : (string, int) Hashtbl.t;
  short_enums : (string, int option) Hashtbl.t;
      (* last component -> value; [None] marks an ambiguous short name *)
  globals : (string, value) Hashtbl.t;
  funcs : (string, value list -> value) Hashtbl.t;
}

let create_env () =
  {
    enums = Hashtbl.create 64;
    short_enums = Hashtbl.create 64;
    globals = Hashtbl.create 16;
    funcs = Hashtbl.create 16;
  }

let add_enum env name v =
  Hashtbl.replace env.enums name v;
  let short =
    match String.rindex_opt name ':' with
    | Some i -> String.sub name (i + 1) (String.length name - i - 1)
    | None -> name
  in
  if short <> name then
    match Hashtbl.find_opt env.short_enums short with
    | Some (Some v') when v' <> v -> Hashtbl.replace env.short_enums short None
    | Some _ -> ()
    | None -> Hashtbl.replace env.short_enums short (Some v)

let add_global env name v = Hashtbl.replace env.globals name v
let add_func env name f = Hashtbl.replace env.funcs name f

let lookup_enum env name =
  match Hashtbl.find_opt env.enums name with
  | Some v -> Some v
  | None -> (
      match Hashtbl.find_opt env.short_enums name with
      | Some (Some v) -> Some v
      | Some None | None -> None)

let truthy = function
  | VBool b -> b
  | VInt n -> n <> 0
  | VNull -> false
  | VStr _ -> err "string used as condition"
  | VUnit -> err "void used as condition"
  | VObj o -> err "object %s used as condition" o.oclass

let to_int = function
  | VInt n -> n
  | VBool true -> 1
  | VBool false -> 0
  | VNull -> 0
  | v ->
      err "expected integer, got %s"
        (match v with
        | VStr _ -> "string"
        | VUnit -> "void"
        | VObj o -> o.oclass
        | VInt _ | VBool _ | VNull -> assert false)

let obj oclass ?(get = fun f -> err "no field %s" f) call = VObj { oclass; call; get }

exception Return_exc of value
exception Break_exc
exception Continue_exc

exception Fuel_exhausted of int

type frame = {
  env : env;
  locals : (string, value) Hashtbl.t;
  budget : int;
  mutable fuel : int;
}

let burn fr =
  fr.fuel <- fr.fuel - 1;
  if fr.fuel <= 0 then raise (Fuel_exhausted fr.budget)

let value_eq a b =
  match (a, b) with
  | VInt x, VInt y -> x = y
  | VBool x, VBool y -> x = y
  | VStr x, VStr y -> x = y
  | VNull, VNull -> true
  | VInt x, VBool y | VBool y, VInt x -> x = if y then 1 else 0
  | VNull, VInt y | VInt y, VNull -> y = 0
  | _ -> false

let rec eval fr (e : Ast.expr) : value =
  burn fr;
  match e with
  | Ast.Int n -> VInt n
  | Ast.Str s -> VStr s
  | Ast.Chr c -> VInt (Char.code c)
  | Ast.Bool b -> VBool b
  | Ast.Nullptr -> VNull
  | Ast.Id name -> lookup fr name
  | Ast.Scoped parts -> (
      let qual = String.concat "::" parts in
      match lookup_enum fr.env qual with
      | Some v -> VInt v
      | None -> (
          match Hashtbl.find_opt fr.env.globals qual with
          | Some v -> v
          | None -> err "unknown qualified name %s" qual))
  | Ast.Call (fname, args) -> (
      let argv = List.map (eval fr) args in
      match Hashtbl.find_opt fr.env.funcs fname with
      | Some f -> f argv
      | None -> err "unknown function %s" fname)
  | Ast.Method (recv, m, args) -> (
      let rv = eval fr recv in
      let argv = List.map (eval fr) args in
      match rv with
      | VObj o -> o.call m argv
      | VStr s -> str_method s m argv
      | _ -> err "method %s on non-object" m)
  | Ast.Member (recv, f) -> (
      match recv with
      (* [A.f] where [A] is not a local reads enum/global [A::f]. *)
      | Ast.Id base when not (local_defined fr base) -> (
          let qual = base ^ "::" ^ f in
          match lookup_enum fr.env qual with
          | Some v -> VInt v
          | None -> (
              match Hashtbl.find_opt fr.env.globals qual with
              | Some v -> v
              | None -> err "unknown name %s" qual))
      | _ -> (
          match eval fr recv with
          | VObj o -> o.get f
          | _ -> err "field %s on non-object" f))
  | Ast.Index (recv, i) -> (
      let rv = eval fr recv and iv = eval fr i in
      match rv with
      | VObj o -> o.call "__index" [ iv ]
      | VStr s ->
          let idx = to_int iv in
          if idx < 0 || idx >= String.length s then err "string index out of bounds"
          else VInt (Char.code s.[idx])
      | _ -> err "indexing non-indexable value")
  | Ast.Unop (op, a) -> (
      let v = eval fr a in
      match op with
      | Ast.Neg -> VInt (-to_int v)
      | Ast.Not -> VBool (not (truthy v))
      | Ast.Bnot -> VInt (lnot (to_int v)))
  | Ast.Binop (op, a, b) -> eval_binop fr op a b
  | Ast.Ternary (c, t, f) -> if truthy (eval fr c) then eval fr t else eval fr f
  | Ast.Cast (_, a) -> eval fr a

(* LLVM StringRef-flavoured methods, so assembler-parser hooks read like
   their LLVM counterparts. *)
and str_method s m argv =
  match (m, argv) with
  | "startswith", [ VStr p ] -> VBool (String.length p <= String.length s
                                       && String.sub s 0 (String.length p) = p)
  | "endswith", [ VStr p ] ->
      let ls = String.length s and lp = String.length p in
      VBool (lp <= ls && String.sub s (ls - lp) lp = p)
  | "substr", [ start ] ->
      let k = to_int start in
      if k < 0 || k > String.length s then err "substr out of range"
      else VStr (String.sub s k (String.length s - k))
  | "size", [] -> VInt (String.length s)
  | "empty", [] -> VBool (s = "")
  | "equals", [ VStr t ] -> VBool (s = t)
  | "lower", [] -> VStr (String.lowercase_ascii s)
  | "upper", [] -> VStr (String.uppercase_ascii s)
  | "getAsInteger", [] -> (
      match int_of_string_opt s with
      | Some v -> VInt v
      | None -> err "getAsInteger: %S is not an integer" s)
  | "isDigits", [] ->
      VBool (s <> "" && String.for_all (fun c -> c >= '0' && c <= '9') s)
  | _ -> err "unknown string method %s" m

and eval_binop fr op a b =
  match op with
  | Ast.Land -> VBool (truthy (eval fr a) && truthy (eval fr b))
  | Ast.Lor -> VBool (truthy (eval fr a) || truthy (eval fr b))
  | Ast.Eq -> VBool (value_eq (eval fr a) (eval fr b))
  | Ast.Ne -> VBool (not (value_eq (eval fr a) (eval fr b)))
  | Ast.Add -> (
      match (eval fr a, eval fr b) with
      | VStr x, VStr y -> VStr (x ^ y)
      | x, y -> VInt (to_int x + to_int y))
  | Ast.Sub -> int2 fr a b ( - )
  | Ast.Mul -> int2 fr a b ( * )
  | Ast.Div ->
      int2 fr a b (fun x y -> if y = 0 then err "division by zero" else x / y)
  | Ast.Rem ->
      int2 fr a b (fun x y -> if y = 0 then err "remainder by zero" else x mod y)
  | Ast.Shl -> int2 fr a b (fun x y -> x lsl y)
  | Ast.Shr -> int2 fr a b (fun x y -> x lsr y)
  | Ast.Band -> int2 fr a b ( land )
  | Ast.Bor -> int2 fr a b ( lor )
  | Ast.Bxor -> int2 fr a b ( lxor )
  | Ast.Lt -> cmp fr a b ( < )
  | Ast.Gt -> cmp fr a b ( > )
  | Ast.Le -> cmp fr a b ( <= )
  | Ast.Ge -> cmp fr a b ( >= )

and int2 fr a b f = VInt (f (to_int (eval fr a)) (to_int (eval fr b)))
and cmp fr a b f = VBool (f (to_int (eval fr a)) (to_int (eval fr b)))

and local_defined fr name = Hashtbl.mem fr.locals name

and lookup fr name =
  match Hashtbl.find_opt fr.locals name with
  | Some v -> v
  | None -> (
      match Hashtbl.find_opt fr.env.globals name with
      | Some v -> v
      | None -> (
          match lookup_enum fr.env name with
          | Some v -> VInt v
          | None -> err "unknown identifier %s" name))

let rec exec fr (s : Ast.stmt) : unit =
  burn fr;
  match s with
  | Ast.Decl (_, name, init) ->
      let v = match init with Some e -> eval fr e | None -> VInt 0 in
      Hashtbl.replace fr.locals name v
  | Ast.Assign (op, lhs, rhs) -> assign fr op lhs rhs
  | Ast.Expr e -> ignore (eval fr e)
  | Ast.Return None -> raise (Return_exc VUnit)
  | Ast.Return (Some e) -> raise (Return_exc (eval fr e))
  | Ast.Break -> raise Break_exc
  | Ast.Continue -> raise Continue_exc
  | Ast.If (c, t, e) -> exec_list fr (if truthy (eval fr c) then t else e)
  | Ast.While (c, body) -> (
      try
        while truthy (eval fr c) do
          burn fr;
          try exec_list fr body with Continue_exc -> ()
        done
      with Break_exc -> ())
  | Ast.For (init, cond, step, body) -> (
      (match init with Some s0 -> exec fr s0 | None -> ());
      let check () = match cond with Some c -> truthy (eval fr c) | None -> true in
      try
        while check () do
          burn fr;
          (try exec_list fr body with Continue_exc -> ());
          match step with Some s1 -> exec fr s1 | None -> ()
        done
      with Break_exc -> ())
  | Ast.Switch (scrut, arms, default) -> exec_switch fr scrut arms default

and exec_switch fr scrut arms default =
  let v = eval fr scrut in
  let rec find = function
    | [] -> None
    | ({ Ast.labels; _ } as arm) :: rest ->
        if List.exists (fun l -> value_eq (eval fr l) v) labels then
          Some (arm :: rest)
        else find rest
  in
  (* Fallthrough: run every arm body from the matched arm onwards; a
     [break] escapes via [Break_exc]; falling off the last arm continues
     into the default body (our corpus always places default last). *)
  let run_bodies bodies =
    List.iter (fun (arm : Ast.arm) -> exec_list fr arm.body) bodies
  in
  try
    match find arms with
    | Some tail -> (
        try
          run_bodies tail;
          exec_list fr default
        with Break_exc -> ())
    | None -> ( try exec_list fr default with Break_exc -> ())
  with Break_exc -> ()

and assign fr op lhs rhs =
  let rv = eval fr rhs in
  let combined current =
    match op with
    | Ast.Set -> rv
    | Ast.Add_set -> VInt (to_int current + to_int rv)
    | Ast.Sub_set -> VInt (to_int current - to_int rv)
    | Ast.Or_set -> VInt (to_int current lor to_int rv)
    | Ast.And_set -> VInt (to_int current land to_int rv)
    | Ast.Shl_set -> VInt (to_int current lsl to_int rv)
    | Ast.Shr_set -> VInt (to_int current lsr to_int rv)
  in
  match lhs with
  | Ast.Id name ->
      let current =
        match Hashtbl.find_opt fr.locals name with
        | Some v -> v
        | None -> (
            match op with
            | Ast.Set -> VInt 0
            | _ -> ( match Hashtbl.find_opt fr.env.globals name with
                     | Some v -> v
                     | None -> err "unknown identifier %s" name))
      in
      Hashtbl.replace fr.locals name (combined current)
  | Ast.Member (recv, f) -> (
      match eval fr recv with
      | VObj o ->
          let current = try o.get f with Runtime_error _ -> VInt 0 in
          ignore (o.call "__set" [ VStr f; combined current ])
      | _ -> err "field assignment on non-object")
  | Ast.Index (recv, i) -> (
      match eval fr recv with
      | VObj o ->
          let iv = eval fr i in
          let current = try o.call "__index" [ iv ] with Runtime_error _ -> VInt 0 in
          ignore (o.call "__set_index" [ iv; combined current ])
      | _ -> err "index assignment on non-object")
  | _ -> err "bad assignment target"

and exec_list fr body = List.iter (exec fr) body

let call ?(fuel = 100_000) env (f : Ast.func) args =
  let locals = Hashtbl.create 16 in
  let nparams = List.length f.params and nargs = List.length args in
  if nparams <> nargs then
    err "%s expects %d arguments, got %d" f.name nparams nargs;
  List.iter2 (fun { Ast.pname; _ } v -> Hashtbl.replace locals pname v) f.params args;
  let fr = { env; locals; budget = fuel; fuel } in
  match exec_list fr f.body with
  | () -> VUnit
  | exception Return_exc v -> v
  | exception Break_exc -> err "break outside loop/switch"
  | exception Continue_exc -> err "continue outside loop"
