exception Error of string

let keyword = function
  | "if" -> Some Token.KwIf
  | "else" -> Some Token.KwElse
  | "switch" -> Some Token.KwSwitch
  | "case" -> Some Token.KwCase
  | "default" -> Some Token.KwDefault
  | "return" -> Some Token.KwReturn
  | "break" -> Some Token.KwBreak
  | "continue" -> Some Token.KwContinue
  | "for" -> Some Token.KwFor
  | "while" -> Some Token.KwWhile
  | "true" -> Some Token.KwTrue
  | "false" -> Some Token.KwFalse
  | "const" -> Some Token.KwConst
  | "unsigned" -> Some Token.KwUnsigned
  | "nullptr" -> Some Token.KwNullptr
  | _ -> None

let is_id_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_id_char c = is_id_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize_spanned src =
  let n = String.length src in
  let pos = ref 0 and line = ref 1 and bol = ref 0 in
  let toks = ref [] in
  let col_of p = p - !bol + 1 in
  let fail msg =
    raise
      (Error (Printf.sprintf "line %d, col %d: %s" !line (col_of !pos) msg))
  in
  let peek k = if !pos + k < n then Some src.[!pos + k] else None in
  (* set at the top of each token; every [emit] in the branch below tags
     the token with the position of its first character *)
  let tok_span = ref Span.dummy in
  let emit t = toks := (t, !tok_span) :: !toks in
  while !pos < n do
    let c = src.[!pos] in
    tok_span := Span.make ~line:!line ~col:(col_of !pos);
    if c = '\n' then begin
      incr line;
      incr pos;
      bol := !pos
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr pos
    else if c = '/' && peek 1 = Some '/' then begin
      while !pos < n && src.[!pos] <> '\n' do
        incr pos
      done
    end
    else if c = '/' && peek 1 = Some '*' then begin
      pos := !pos + 2;
      let closed = ref false in
      while (not !closed) && !pos < n do
        if src.[!pos] = '\n' then begin
          incr line;
          bol := !pos + 1
        end;
        if src.[!pos] = '*' && peek 1 = Some '/' then begin
          closed := true;
          pos := !pos + 2
        end
        else incr pos
      done;
      if not !closed then fail "unterminated block comment"
    end
    else if is_id_start c then begin
      let start = !pos in
      while !pos < n && is_id_char src.[!pos] do
        incr pos
      done;
      let word = String.sub src start (!pos - start) in
      match keyword word with Some kw -> emit kw | None -> emit (Token.Id word)
    end
    else if is_digit c then begin
      let start = !pos in
      if c = '0' && (peek 1 = Some 'x' || peek 1 = Some 'X') then begin
        pos := !pos + 2;
        while
          !pos < n
          && (is_digit src.[!pos]
             || (src.[!pos] >= 'a' && src.[!pos] <= 'f')
             || (src.[!pos] >= 'A' && src.[!pos] <= 'F'))
        do
          incr pos
        done
      end
      else
        while !pos < n && is_digit src.[!pos] do
          incr pos
        done;
      (* Swallow C integer suffixes: 0xffffU, 1ULL, ... *)
      while !pos < n && (src.[!pos] = 'u' || src.[!pos] = 'U' || src.[!pos] = 'l' || src.[!pos] = 'L') do
        incr pos
      done;
      let lit = String.sub src start (!pos - start) in
      let digits =
        let stop = ref (String.length lit) in
        while
          !stop > 0
          &&
          match lit.[!stop - 1] with 'u' | 'U' | 'l' | 'L' -> true | _ -> false
        do
          decr stop
        done;
        String.sub lit 0 !stop
      in
      match int_of_string_opt digits with
      | Some v -> emit (Token.Int_lit v)
      | None -> fail (Printf.sprintf "bad integer literal %S" lit)
    end
    else if c = '"' then begin
      incr pos;
      let buf = Buffer.create 16 in
      let closed = ref false in
      while (not !closed) && !pos < n do
        let d = src.[!pos] in
        if d = '"' then begin
          closed := true;
          incr pos
        end
        else if d = '\\' && !pos + 1 < n then begin
          (match src.[!pos + 1] with
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | '\\' -> Buffer.add_char buf '\\'
          | '"' -> Buffer.add_char buf '"'
          | e -> fail (Printf.sprintf "bad escape '\\%c'" e));
          pos := !pos + 2
        end
        else begin
          if d = '\n' then fail "newline in string literal";
          Buffer.add_char buf d;
          incr pos
        end
      done;
      if not !closed then fail "unterminated string literal";
      emit (Token.Str_lit (Buffer.contents buf))
    end
    else if c = '\'' then begin
      if !pos + 2 < n && src.[!pos + 2] = '\'' then begin
        emit (Token.Char_lit src.[!pos + 1]);
        pos := !pos + 3
      end
      else fail "bad character literal"
    end
    else begin
      let two = if !pos + 1 < n then String.sub src !pos 2 else "" in
      let three = if !pos + 2 < n then String.sub src !pos 3 else "" in
      let t3 =
        match three with "<<=" -> Some Token.ShlEq | ">>=" -> Some Token.ShrEq | _ -> None
      in
      match t3 with
      | Some t ->
          emit t;
          pos := !pos + 3
      | None -> (
          let t2 =
            match two with
            | "::" -> Some Token.ColonColon
            | "->" -> Some Token.Arrow
            | "+=" -> Some Token.PlusEq
            | "-=" -> Some Token.MinusEq
            | "|=" -> Some Token.OrEq
            | "&=" -> Some Token.AndEq
            | "&&" -> Some Token.AmpAmp
            | "||" -> Some Token.PipePipe
            | "==" -> Some Token.EqEq
            | "!=" -> Some Token.NotEq
            | "<=" -> Some Token.Le
            | ">=" -> Some Token.Ge
            | "<<" -> Some Token.Shl
            | ">>" -> Some Token.Shr
            | _ -> None
          in
          match t2 with
          | Some t ->
              emit t;
              pos := !pos + 2
          | None ->
              let t1 =
                match c with
                | '(' -> Token.LParen
                | ')' -> Token.RParen
                | '{' -> Token.LBrace
                | '}' -> Token.RBrace
                | '[' -> Token.LBracket
                | ']' -> Token.RBracket
                | ';' -> Token.Semi
                | ',' -> Token.Comma
                | ':' -> Token.Colon
                | '.' -> Token.Dot
                | '?' -> Token.Question
                | '=' -> Token.Assign
                | '+' -> Token.Plus
                | '-' -> Token.Minus
                | '*' -> Token.Star
                | '/' -> Token.Slash
                | '%' -> Token.Percent
                | '&' -> Token.Amp
                | '|' -> Token.Pipe
                | '^' -> Token.Caret
                | '~' -> Token.Tilde
                | '!' -> Token.Bang
                | '<' -> Token.Lt
                | '>' -> Token.Gt
                | _ -> fail (Printf.sprintf "unexpected character %C" c)
              in
              emit t1;
              incr pos)
    end
  done;
  List.rev !toks

let tokenize src = List.map fst (tokenize_spanned src)
