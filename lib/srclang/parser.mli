(** Recursive-descent parser for BackendC.

    The grammar covers the statement and expression forms produced by the
    corpus generator and by VEGA's code generator. Generated code that
    fails to parse is classified as deficient (Err-Def) by the evaluation
    harness, so parse errors are reported, never fatal. *)

exception Error of string

val parse_function : string -> Ast.func
(** Parse a single function definition. @raise Error on malformed input. *)

val parse_function_opt : string -> (Ast.func, string) result
(** Like {!parse_function} but capturing lex/parse failures. *)

type spans = (Ast.stmt * Span.t) list
(** Span of the first token of each parsed statement, keyed by physical
    identity of the statement value. *)

type spanned = { sp_fn : Ast.func; sp_marks : spans }

val parse_function_spanned : string -> spanned
(** Like {!parse_function}, also recording statement spans. *)

val parse_function_spanned_opt : string -> (spanned, string) result

val stmt_span : spans -> Ast.stmt -> Span.t option
(** Span recorded for this statement value. Constant constructors
    ([break;]/[continue;]) share one representation, so their lookup
    returns the span of the first such statement parsed. *)

val parse_expr : string -> Ast.expr
(** Parse a standalone expression (used by tests). @raise Error. *)

val parse_stmts : string -> Ast.stmt list
(** Parse a brace-less statement sequence (used by tests). @raise Error. *)
