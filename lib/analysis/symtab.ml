(** Symbol tables for the analyzer, built from the target's description
    files only (the paper's "from description files" contract): qualified
    enum members, TableGen record fields visible as globals, and the
    interface-function surface callable as free functions. *)

module Catalog = Vega_tdlang.Catalog
module Vfs = Vega_tdlang.Vfs

type t = {
  target : string;
  catalog : Catalog.t;
  globals : (string, unit) Hashtbl.t;
      (** unqualified names visible to hook bodies: short enum members and
          scalar record fields (mirrors {!Vega_backend.Hooks.build_env}) *)
  funcs : (string, int option) Hashtbl.t;
      (** free functions with arity; [None] = variadic builtin *)
}

let record_classes = [ "Target"; "SchedMachineModel"; "RegisterClass" ]

let build vfs ~target =
  let dirs = Vfs.llvmdirs @ Vfs.tgtdirs target in
  let catalog = Catalog.build vfs dirs in
  let globals = Hashtbl.create 256 in
  List.iter
    (fun (qual, _) ->
      Hashtbl.replace globals qual ();
      match String.rindex_opt qual ':' with
      | Some i ->
          Hashtbl.replace globals
            (String.sub qual (i + 1) (String.length qual - i - 1))
            ()
      | None -> ())
    (Catalog.resolved_members catalog);
  List.iter
    (fun (_, (r : Vega_tdlang.Td_ast.record)) ->
      if List.mem r.rec_class record_classes then
        List.iter
          (fun (field, v) ->
            match v with
            | Vega_tdlang.Td_ast.Vint _ | Vega_tdlang.Td_ast.Vstr _ ->
                Hashtbl.replace globals field ()
            | Vega_tdlang.Td_ast.Vid _ | Vega_tdlang.Td_ast.Vlist _ -> ())
          r.fields)
    (Catalog.records catalog);
  let funcs = Hashtbl.create 64 in
  Hashtbl.replace funcs "llvm_unreachable" None;
  Hashtbl.replace funcs "report_fatal_error" None;
  (* sibling interface hooks are callable as free functions *)
  List.iter
    (fun (spec : Vega_corpus.Spec.t) ->
      Hashtbl.replace funcs spec.Vega_corpus.Spec.fname
        (Some (List.length spec.Vega_corpus.Spec.params)))
    Vega_corpus.Corpus.all_specs;
  { target; catalog; globals; funcs }

(** Does [A::B::c] resolve against the description files? Mirrors the
    interpreter: qualified enum members are the only [Scoped] values hook
    bodies can read. *)
let resolve_scoped t parts =
  Catalog.member_value t.catalog (String.concat "::" parts) <> None

let known_global t name =
  Hashtbl.mem t.globals name || Catalog.is_prop t.catalog name

let func_arity t fname = Hashtbl.find_opt t.funcs fname
let known_func t fname = Hashtbl.mem t.funcs fname
