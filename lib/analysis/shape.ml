(** Pass 1: parse / shape checking of generated statements.

    Each {!Vega.Generate.gen_stmt} must (a) name a legal statement
    position of the function template it was generated from, (b) lex and
    — for simple statements — parse as BackendC, and (c) instantiate the
    statement template of that position. The assembled function must
    parse as a whole (otherwise the evaluation harness classifies it
    Err-Def before ever running pass@1; the analyzer reports the same
    defect statically). *)

module D = Diagnostic
module T = Vega.Template
module G = Vega.Generate
module Parser = Vega_srclang.Parser
module Lines = Vega_srclang.Lines

let span_for (s : G.gen_stmt) ~idx =
  (* generated statements have no source yet; line = position in the
     assembled function, column 1 *)
  ignore s;
  Vega_srclang.Span.make ~line:(idx + 1) ~col:1

(* statement template addressed by a generated statement, when the
   position is legal *)
let position (tpl : T.t) (s : G.gen_stmt) =
  let column =
    if s.G.g_col = -1 then Some (T.signature_column tpl)
    else List.nth_opt tpl.T.columns s.G.g_col
  in
  match column with
  | None -> None
  | Some c -> Option.map (fun _ -> c) (List.nth_opt c.T.unit s.G.g_line)

let stmt_template (c : T.column) (s : G.gen_stmt) =
  List.nth_opt c.T.unit (max 0 s.G.g_line)

(* can this token line stand alone for Parser.parse_stmts? Structural
   lines (["if (c) {"], ["}"], case labels) cannot; they are shape-checked
   by the template match instead. *)
let parse_checkable kind = kind = "simple"

let check_stmt fname (tpl : T.t) idx (s : G.gen_stmt) =
  let span = span_for s ~idx in
  match position tpl s with
  | None ->
      [
        D.make ~rule:"VA-P02" ~cls:D.Parse ~severity:D.Error ~fname ~span
          (Printf.sprintf
             "statement position (col %d, line %d) is outside the template"
             s.G.g_col s.G.g_line);
      ]
  | Some column -> (
      match stmt_template column s with
      | None -> []
      | Some st ->
          let fit =
            match T.match_instance st s.G.g_tokens with
            | Some _ -> []
            | None ->
                [
                  D.make ~rule:"VA-P02" ~cls:D.Parse ~severity:D.Error ~fname
                    ~span
                    (Printf.sprintf
                       "statement does not instantiate its %s template"
                       st.T.kind);
                ]
          in
          let parses =
            if s.G.g_col = -1 || not (parse_checkable st.T.kind) then []
            else
              let text = String.concat " " s.G.g_tokens in
              match Parser.parse_stmts text with
              | _ -> []
              | exception Parser.Error m | exception Vega_srclang.Lexer.Error m
                ->
                  [
                    D.make ~rule:"VA-P01" ~cls:D.Parse ~severity:D.Error ~fname
                      ~span
                      (Printf.sprintf "statement does not parse: %s" m);
                  ]
          in
          fit @ parses)

(** Shape-check every kept statement of a generated function and the
    assembled source as a whole. Returns the diagnostics plus the parsed
    function when the whole source is legal (for passes 2–4). *)
let check (tpl : T.t) (gf : G.gen_func) =
  let fname = gf.G.gf_fname in
  let kept = G.kept_stmts gf in
  let per_stmt = List.concat (List.mapi (check_stmt fname tpl) kept) in
  let texts =
    List.map (fun (s : G.gen_stmt) -> String.concat " " s.G.g_tokens) kept
  in
  match Parser.parse_function_spanned_opt (Lines.texts_to_source texts) with
  | Ok sf -> (per_stmt, Some sf)
  | Error m ->
      ( per_stmt
        @ [
            D.make ~rule:"VA-P01" ~cls:D.Parse ~severity:D.Error ~fname
              (Printf.sprintf "generated function does not parse: %s" m);
          ],
        None )
