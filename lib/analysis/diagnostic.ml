(** Structured diagnostics of the BackendC static analyzer.

    Every diagnostic carries a stable rule ID (the catalog below), a
    severity, the function it was found in and, when the parser could
    attach one, a line/column span. Rule classes map onto the paper's
    Table 2 error taxonomy, which is what {!Vega_eval.Metrics} correlates
    against pass@1 outcomes.

    Rule catalog:
    - VA-P01 parse error: the function (or one generated statement) is not
      legal BackendC.
    - VA-P02 template shape: a generated statement does not instantiate
      the statement template of its slot, or names a slot position the
      template does not have.
    - VA-S01 unknown qualified name: a [Scoped] value (e.g.
      [ARM::fixup_arm_movt_hi16]) resolves to nothing in the target's
      description files.
    - VA-S02 unknown function: call to a free function that is neither an
      interface hook, a helper, nor an LLVM builtin.
    - VA-D01 undeclared variable: an identifier is read before any
      declaration or assignment introduces it.
    - VA-D02 uninitialized read: a declared-but-never-assigned local is
      read.
    - VA-D03 unreachable statement: code after [return]/[break]/
      [continue] (or an [if] whose branches both terminate).
    - VA-D04 missing return: a non-void function can fall off the end of
      its body.
    - VA-D05 silent fallthrough: the final [switch] arm neither breaks nor
      returns and there is no [default] body to fall into.
    - VA-I01 unknown method: method call that no MC-layer class provides.
    - VA-I02 method arity: known MC-layer method called with the wrong
      number of arguments.
    - VA-I03 hook signature: the function's parameter list does not match
      the interface spec it implements.

    Semantic rules (class [Sem], reported by {!Vega_absint}):
    - VS-V01 definite division/modulo by zero.
    - VS-V02 definitely out-of-range shift amount.
    - VS-I01 a local is read while uninitialized on every path reaching
      the read (path-sensitive upgrade of VA-D02).
    - VS-I02 a local may be read before initialization on some path.
    - VS-M01 differential summary: generated and reference functions
      produce structurally different outcomes on a shared path.
    - VS-M02 differential summary: the generated function falls off a
      path on which the reference terminates.
    - VS-R01 calling convention: a callee-saved register (or the frame
      pointer) does not hold its entry value at return.
    - VS-R02 stack discipline: the stack pointer is not restored.
    - VS-R03 the return address is clobbered at return.
    - VS-R04 emitted assembly the target's own assembler cannot parse. *)

type severity = Error | Warning

type cls = Parse | Symbol | Dataflow | Interface | Sem
(** The analyzer's four syntactic passes plus the semantic verifier;
    each diagnostic belongs to exactly one. *)

type t = {
  rule : string;  (** stable ID, e.g. ["VA-S01"] *)
  cls : cls;
  severity : severity;
  fname : string;  (** interface function the diagnostic is in *)
  span : Vega_srclang.Span.t option;
  msg : string;
}

let make ~rule ~cls ~severity ~fname ?span msg =
  { rule; cls; severity; fname; span; msg }

let cls_name = function
  | Parse -> "parse"
  | Symbol -> "symbol"
  | Dataflow -> "dataflow"
  | Interface -> "interface"
  | Sem -> "semantic"

let severity_name = function Error -> "error" | Warning -> "warning"

(** Paper Table 2 bucket a statically-detected defect lands in: unknown
    values are Err-V, control/dataflow defects are Err-CS, anything
    structurally deficient (unparsable, wrong shape, wrong interface) is
    Err-Def, and semantic disagreement with the reference is
    program-semantics territory, Err-PS. *)
let taxonomy d =
  match d.cls with
  | Symbol -> "Err-V"
  | Dataflow -> "Err-CS"
  | Parse | Interface -> "Err-Def"
  | Sem -> "Err-PS"

let is_error d = d.severity = Error

let to_string d =
  let where =
    match d.span with
    | Some sp -> Printf.sprintf "%s:" (Vega_srclang.Span.to_string sp)
    | None -> ""
  in
  Printf.sprintf "%s: %s%s %s [%s/%s]" d.fname where
    (match d.severity with Error -> " error:" | Warning -> " warning:")
    d.msg d.rule (taxonomy d)

let pp fmt d = Format.pp_print_string fmt (to_string d)

(* span first (diagnostics without one sort last), then rule ID, then
   message: a total, deterministic order regardless of which pass or
   domain emitted what first *)
let compare_diag a b =
  let c =
    match (a.span, b.span) with
    | Some x, Some y -> Vega_srclang.Span.compare x y
    | Some _, None -> -1
    | None, Some _ -> 1
    | None, None -> 0
  in
  if c <> 0 then c
  else
    let c = compare a.rule b.rule in
    if c <> 0 then c else compare (a.fname, a.msg) (b.fname, b.msg)

let sort ds = List.stable_sort compare_diag ds

(** Sort and drop structural duplicates — two passes flagging the same
    defect at the same span collapse to one record, keeping lint/verify
    output and its JSON rendering deterministic. *)
let dedup ds =
  let rec uniq = function
    | a :: (b :: _ as rest) -> if a = b then uniq rest else a :: uniq rest
    | l -> l
  in
  uniq (sort ds)
