(** Analyzer entry points.

    The analyzer validates BackendC interface functions without running
    them: pass 1 (parse/shape, {!Shape}), pass 2 (symbol resolution),
    pass 3 (dataflow lint) and pass 4 (interface conformance)
    ({!Checks}). It runs over reference backends (which must come back
    clean), over generated functions before pass@1, and behind
    [vega-cli lint]. *)

module C = Vega_corpus.Corpus
module D = Diagnostic
module Lines = Vega_srclang.Lines
module Parser = Vega_srclang.Parser

type func_report = { fr_fname : string; fr_diags : D.t list }

type report = { r_target : string; r_funcs : func_report list }

let symtab vfs (p : Vega_target.Profile.t) =
  Symtab.build vfs ~target:p.Vega_target.Profile.name

(** Passes 2–4 over source text, with diagnostics anchored to its
    lines/columns. A parse failure yields a single VA-P01. *)
let lint_source tab ?spec ~fname src =
  match Parser.parse_function_spanned_opt src with
  | Error m ->
      [
        D.make ~rule:"VA-P01" ~cls:D.Parse ~severity:D.Error ~fname
          (Printf.sprintf "function does not parse: %s" m);
      ]
  | Ok { Parser.sp_fn; sp_marks } ->
      D.dedup (Checks.check_function tab ?spec ~marks:sp_marks sp_fn)

(** Passes 2–4 over an already-parsed function. Spans are recovered by
    printing the function in canonical form and re-parsing, so reported
    positions refer to {!Vega_srclang.Lines.to_source} of the function. *)
let lint_function tab ?spec (f : Vega_srclang.Ast.func) =
  let src = Lines.to_source (Lines.of_func f) in
  lint_source tab ?spec ~fname:f.Vega_srclang.Ast.name src

(** All four passes over a generated function (pass 1 needs the template
    it was generated from). *)
let lint_generated tab (tpl : Vega.Template.t) (gf : Vega.Generate.gen_func) =
  let shape, parsed = Shape.check tpl gf in
  let deep =
    match parsed with
    | None -> []
    | Some { Parser.sp_fn; sp_marks } ->
        let spec = C.find_spec gf.Vega.Generate.gf_fname in
        Checks.check_function tab ?spec ~marks:sp_marks sp_fn
  in
  D.dedup (shape @ deep)

(** Lint every reference implementation of a target's backend. The
    acceptance bar for the reference corpus is an empty report. *)
let lint_target vfs (p : Vega_target.Profile.t) =
  let tab = symtab vfs p in
  let funcs =
    List.filter_map
      (fun (spec : Vega_corpus.Spec.t) ->
        match C.reference_inlined spec p with
        | None -> None
        | Some f ->
            Some
              {
                fr_fname = spec.Vega_corpus.Spec.fname;
                fr_diags = lint_function tab ~spec f;
              })
      C.all_specs
  in
  { r_target = p.Vega_target.Profile.name; r_funcs = funcs }

let report_diags r = List.concat_map (fun fr -> fr.fr_diags) r.r_funcs
let error_count r = List.length (List.filter D.is_error (report_diags r))
let diag_count r = List.length (report_diags r)

let pp_report fmt r =
  Format.fprintf fmt "target %s: %d function(s), %d diagnostic(s)@."
    r.r_target (List.length r.r_funcs) (diag_count r);
  List.iter
    (fun fr ->
      List.iter
        (fun d -> Format.fprintf fmt "  %s@." (D.to_string d))
        fr.fr_diags)
    r.r_funcs
