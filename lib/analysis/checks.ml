(** Passes 2–4 of the analyzer: symbol resolution, dataflow lint and
    MC-layer interface conformance, over a parsed BackendC function.

    The walker mirrors {!Vega_srclang.Interp} closely enough that a
    function flagged here would (on some input) also fail at hook runtime
    — and a clean reference backend produces zero diagnostics. *)

module Ast = Vega_srclang.Ast
module Parser = Vega_srclang.Parser
module D = Diagnostic

type ctx = {
  tab : Symtab.t;
  fname : string;
  marks : Parser.spans;
  ret_type : string;
  mutable diags : D.t list;
}

let report ctx ~rule ~cls ~severity ?span msg =
  ctx.diags <- D.make ~rule ~cls ~severity ~fname:ctx.fname ?span msg :: ctx.diags

let span_of ctx s = Parser.stmt_span ctx.marks s

(* ------------------------------------------------------------------ *)
(* Interface conformance: the MC-layer object API as implemented by
   [Vega_backend.Hooks] / [Interp.str_method].                          *)

(* (class, method) -> (arity, result class) *)
let mc_api =
  [
    (("MCInst", "getOpcode"), (0, None));
    (("MCInst", "getNumOperands"), (0, None));
    (("MCInst", "getOperand"), (1, Some "MCOperand"));
    (("MCOperand", "isReg"), (0, None));
    (("MCOperand", "isImm"), (0, None));
    (("MCOperand", "getReg"), (0, None));
    (("MCOperand", "getImm"), (0, None));
    (("MCFixup", "getKind"), (0, None));
    (("MCFixup", "getTargetKind"), (0, None));
    (("MCFixup", "getOffset"), (0, None));
    (("MCValue", "getAccessVariant"), (0, None));
    (("StringRef", "startswith"), (1, None));
    (("StringRef", "endswith"), (1, None));
    (("StringRef", "substr"), (1, Some "StringRef"));
    (("StringRef", "size"), (0, None));
    (("StringRef", "empty"), (0, None));
    (("StringRef", "equals"), (1, None));
    (("StringRef", "lower"), (0, Some "StringRef"));
    (("StringRef", "upper"), (0, Some "StringRef"));
    (("StringRef", "getAsInteger"), (0, None));
    (("StringRef", "isDigits"), (0, None));
  ]

let mc_classes =
  List.sort_uniq compare (List.map (fun ((c, _), _) -> c) mc_api)

(** Strip qualifiers and reference/pointer sigils from a parameter or
    declaration type spelling; returns the base class name. *)
let base_class ty =
  let ty =
    String.concat " "
      (List.filter
         (fun w -> w <> "const" && w <> "unsigned")
         (String.split_on_char ' ' ty))
  in
  let stop = ref (String.length ty) in
  while !stop > 0 && (ty.[!stop - 1] = '*' || ty.[!stop - 1] = '&') do
    decr stop
  done;
  String.sub ty 0 !stop

(* ------------------------------------------------------------------ *)
(* Dataflow state                                                      *)

type var_state = {
  mutable assigned : bool;  (** some assignment/initializer seen so far *)
  cls : string option;  (** MC-layer class, when the type names one *)
}

type env = (string, var_state) Hashtbl.t

(* Calls that never return; a statement-position call to one terminates
   the path the way [return] does. *)
let noreturn_call = function
  | Ast.Expr (Ast.Call (("llvm_unreachable" | "report_fatal_error"), _)) -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Expression walk: uses, symbols, method conformance                   *)

(* Result is the MC class of the expression's value when derivable. *)
let rec check_expr ctx (env : env) ?near (e : Ast.expr) : string option =
  let recurse x = ignore (check_expr ctx env ?near x) in
  match e with
  | Ast.Int _ | Ast.Str _ | Ast.Chr _ | Ast.Bool _ | Ast.Nullptr -> None
  | Ast.Id name -> (
      match Hashtbl.find_opt env name with
      | Some vs ->
          if not vs.assigned then
            report ctx ~rule:"VA-D02" ~cls:D.Dataflow ~severity:D.Warning
              ?span:near
              (Printf.sprintf "local '%s' is read but never assigned" name);
          vs.cls
      | None ->
          if
            not
              (Symtab.known_global ctx.tab name
              || Symtab.known_func ctx.tab name)
          then
            report ctx ~rule:"VA-D01" ~cls:D.Dataflow ~severity:D.Error
              ?span:near
              (Printf.sprintf "use of undeclared identifier '%s'" name);
          None)
  | Ast.Scoped parts ->
      if not (Symtab.resolve_scoped ctx.tab parts) then
        report ctx ~rule:"VA-S01" ~cls:D.Symbol ~severity:D.Error ?span:near
          (Printf.sprintf "unknown qualified name '%s'"
             (String.concat "::" parts));
      None
  | Ast.Call (fname, args) ->
      List.iter recurse args;
      (match Symtab.func_arity ctx.tab fname with
      | None ->
          report ctx ~rule:"VA-S02" ~cls:D.Symbol ~severity:D.Error ?span:near
            (Printf.sprintf "call to unknown function '%s'" fname)
      | Some None -> ()
      | Some (Some arity) ->
          if List.length args <> arity then
            report ctx ~rule:"VA-I03" ~cls:D.Interface ~severity:D.Error
              ?span:near
              (Printf.sprintf "'%s' expects %d argument%s, got %d" fname arity
                 (if arity = 1 then "" else "s")
                 (List.length args)));
      None
  | Ast.Method (recv, m, args) -> (
      let rcls = check_expr ctx env ?near recv in
      List.iter recurse args;
      match rcls with
      | None -> None
      | Some c -> (
          match List.assoc_opt (c, m) mc_api with
          | None ->
              report ctx ~rule:"VA-I01" ~cls:D.Interface ~severity:D.Error
                ?span:near
                (Printf.sprintf "class %s has no method '%s'" c m);
              None
          | Some (arity, result) ->
              if List.length args <> arity then
                report ctx ~rule:"VA-I02" ~cls:D.Interface ~severity:D.Error
                  ?span:near
                  (Printf.sprintf "%s.%s expects %d argument%s, got %d" c m
                     arity
                     (if arity = 1 then "" else "s")
                     (List.length args));
              result))
  | Ast.Member (recv, f) -> (
      match recv with
      | Ast.Id base when not (Hashtbl.mem env base) ->
          (* [A.f] on a non-local reads enum/global [A::f], as in the
             interpreter *)
          ignore (check_expr ctx env ?near (Ast.Scoped [ base; f ]));
          None
      | _ ->
          recurse recv;
          None)
  | Ast.Index (recv, i) ->
      recurse recv;
      recurse i;
      None
  | Ast.Unop (_, a) ->
      recurse a;
      None
  | Ast.Binop (_, a, b) ->
      recurse a;
      recurse b;
      None
  | Ast.Ternary (c, t, f) ->
      recurse c;
      let ct = check_expr ctx env ?near t and cf = check_expr ctx env ?near f in
      if ct = cf then ct else None
  | Ast.Cast (ty, a) ->
      recurse a;
      let b = base_class ty in
      if List.mem b mc_classes then Some b else None

(* ------------------------------------------------------------------ *)
(* Statement walk                                                      *)

(* Does executing this statement always leave the enclosing statement
   list (return / break / continue / noreturn call)? Used for the
   unreachable-code rule. *)
let rec terminates (s : Ast.stmt) =
  match s with
  | Ast.Return _ | Ast.Break | Ast.Continue -> true
  | Ast.If (_, t, e) -> terminates_list t && terminates_list e
  | Ast.Switch (_, arms, default) ->
      (* [break] inside the switch exits the switch, not the enclosing
         list, so the switch only terminates the list when every path
         through it returns *)
      switch_returns arms default
  | s when noreturn_call s -> true
  | _ -> false

and terminates_list body =
  body <> [] && List.exists terminates body

(* Does the function always return a value before falling off this
   statement list? (conservative: loops are assumed skippable)          *)
and always_returns (body : Ast.stmt list) =
  match body with
  | [] -> false
  | s :: rest -> (
      match s with
      | Ast.Return _ -> true
      | s when noreturn_call s -> true
      | Ast.Break | Ast.Continue -> false
      | Ast.If (_, t, e) ->
          (always_returns t && always_returns e) || always_returns rest
      | Ast.Switch (_, arms, default) ->
          switch_returns arms default || always_returns rest
      | _ -> always_returns rest)

and switch_returns arms default =
  (* a matched arm runs its body, falls through subsequent arms, then the
     default body; an unmatched scrutinee runs only the default *)
  arms <> []
  && always_returns default
  && List.for_all Fun.id
       (let rec chains = function
          | [] -> []
          | (a : Ast.arm) :: rest ->
              chain_returns (a.body :: List.map (fun (r : Ast.arm) -> r.Ast.body) rest)
                default
              :: chains rest
        in
        chains arms)

and chain_returns bodies default =
  (* concatenated execution of bodies then default; [break] escapes the
     switch without returning *)
  let rec go = function
    | [] -> always_returns default
    | body :: rest -> (
        if always_returns body then true
        else if List.exists breaks_out body then false
        else go rest)
  in
  go bodies

and breaks_out (s : Ast.stmt) =
  match s with
  | Ast.Break -> true
  | Ast.If (_, t, e) -> List.exists breaks_out t || List.exists breaks_out e
  | _ -> false

let declare env name ~assigned ~cls =
  Hashtbl.replace env name { assigned; cls }

let rec check_stmts ctx env (body : Ast.stmt list) =
  let terminated = ref false in
  let reported = ref false in
  List.iter
    (fun s ->
      if !terminated && not !reported then begin
        reported := true;
        report ctx ~rule:"VA-D03" ~cls:D.Dataflow ~severity:D.Warning
          ?span:(span_of ctx s) "unreachable statement"
      end;
      check_stmt ctx env s;
      if terminates s then terminated := true)
    body

and check_stmt ctx env (s : Ast.stmt) =
  let near = span_of ctx s in
  match s with
  | Ast.Decl (ty, name, init) ->
      Option.iter (fun e -> ignore (check_expr ctx env ?near e)) init;
      let b = base_class ty in
      declare env name ~assigned:(init <> None)
        ~cls:(if List.mem b mc_classes then Some b else None)
  | Ast.Assign (op, lhs, rhs) -> (
      ignore (check_expr ctx env ?near rhs);
      match lhs with
      | Ast.Id name -> (
          match (Hashtbl.find_opt env name, op) with
          | Some vs, _ -> vs.assigned <- true
          | None, Ast.Set ->
              (* plain assignment introduces a local, as in the
                 interpreter *)
              declare env name ~assigned:true ~cls:None
          | None, _ ->
              if not (Symtab.known_global ctx.tab name) then
                report ctx ~rule:"VA-D01" ~cls:D.Dataflow ~severity:D.Error
                  ?span:near
                  (Printf.sprintf "compound assignment to undeclared '%s'"
                     name))
      | _ -> ignore (check_expr ctx env ?near lhs))
  | Ast.Expr e -> ignore (check_expr ctx env ?near e)
  | Ast.Return e -> Option.iter (fun e -> ignore (check_expr ctx env ?near e)) e
  | Ast.Break | Ast.Continue -> ()
  | Ast.If (c, t, e) ->
      ignore (check_expr ctx env ?near c);
      check_stmts ctx env t;
      check_stmts ctx env e
  | Ast.While (c, body) ->
      ignore (check_expr ctx env ?near c);
      check_stmts ctx env body
  | Ast.For (init, cond, step, body) ->
      Option.iter (check_stmt ctx env) init;
      Option.iter (fun c -> ignore (check_expr ctx env ?near c)) cond;
      check_stmts ctx env body;
      Option.iter (check_stmt ctx env) step
  | Ast.Switch (scrut, arms, default) ->
      ignore (check_expr ctx env ?near scrut);
      List.iter
        (fun (a : Ast.arm) ->
          List.iter (fun l -> ignore (check_expr ctx env ?near l)) a.labels;
          check_stmts ctx env a.body)
        arms;
      check_stmts ctx env default;
      check_fallthrough ctx arms default

and check_fallthrough ctx arms default =
  (* last arm with a body that neither breaks nor returns, and nothing
     after it to fall into *)
  match (List.rev arms, default) with
  | (last : Ast.arm) :: _, [] ->
      if
        last.body <> []
        && (not (terminates_list last.body))
        && not (List.exists breaks_out last.body)
      then
        report ctx ~rule:"VA-D05" ~cls:D.Dataflow ~severity:D.Warning
          ?span:(match last.body with s :: _ -> span_of ctx s | [] -> None)
          "final switch arm falls through to nothing"
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Entry point                                                          *)

let check_function tab ?spec ?(marks = []) (f : Ast.func) =
  let ctx =
    { tab; fname = f.Ast.name; marks; ret_type = f.Ast.ret_type; diags = [] }
  in
  let env : env = Hashtbl.create 16 in
  List.iter
    (fun (p : Ast.param) ->
      let b = base_class p.Ast.ptype in
      declare env p.Ast.pname ~assigned:true
        ~cls:(if List.mem b mc_classes then Some b else None))
    f.Ast.params;
  (* pass 4: hook signature against the interface spec *)
  (match spec with
  | Some (spec : Vega_corpus.Spec.t) ->
      let want = List.length spec.Vega_corpus.Spec.params in
      let got = List.length f.Ast.params in
      if got <> want then
        report ctx ~rule:"VA-I03" ~cls:D.Interface ~severity:D.Error
          (Printf.sprintf "interface '%s' declares %d parameter%s, found %d"
             spec.Vega_corpus.Spec.fname want
             (if want = 1 then "" else "s")
             got)
  | None -> ());
  check_stmts ctx env f.Ast.body;
  if ctx.ret_type <> "void" && not (always_returns f.Ast.body) then
    report ctx ~rule:"VA-D04" ~cls:D.Dataflow ~severity:D.Error
      (Printf.sprintf "non-void function '%s' can fall off the end of its body"
         f.Ast.name);
  Diagnostic.sort (List.rev ctx.diags)
