(** The seven function modules of a compiler backend (paper Fig. 6):
    instruction selection, register allocation support, optimization
    hooks, scheduling, code emission, assembly parsing and
    disassembly. Every interface-function spec in {!Vega_corpus} is
    tagged with exactly one of these. *)

type t = SEL | REG | OPT | SCH | EMI | ASS | DIS

let all = [ SEL; REG; OPT; SCH; EMI; ASS; DIS ]

let name = function
  | SEL -> "SEL"
  | REG -> "REG"
  | OPT -> "OPT"
  | SCH -> "SCH"
  | EMI -> "EMI"
  | ASS -> "ASS"
  | DIS -> "DIS"

let of_name = function
  | "SEL" -> Some SEL
  | "REG" -> Some REG
  | "OPT" -> Some OPT
  | "SCH" -> Some SCH
  | "EMI" -> Some EMI
  | "ASS" -> Some ASS
  | "DIS" -> Some DIS
  | _ -> None

let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = compare a b
let pp fmt m = Format.pp_print_string fmt (name m)

(** Long description, used by reports. *)
let describe = function
  | SEL -> "Instruction Selection"
  | REG -> "Register Allocation"
  | OPT -> "Optimization"
  | SCH -> "Scheduling"
  | EMI -> "Code Emission"
  | ASS -> "Assembly Parsing"
  | DIS -> "Disassembly"
