(** A target processor profile: everything the corpus needs to render a
    target's description files (.td/.h/.def) and the reference
    implementations of its interface functions.

    Profiles are deliberately *not* visible to the generation pipeline —
    feature selection and code generation only ever read the rendered
    description files back through {!Vega_tdlang}, preserving the
    paper's "from description files only" contract. The profile is the
    ground truth that both the description files and the reference
    backend are projected from. *)

type endian = Little | Big

(** ALU operations with register-register (and, for a subset,
    register-immediate) forms. *)
type alu = Add | Sub | And | Or | Xor | Shl | Shr | Slt

(** Conditional-branch comparison kinds. *)
type cond = Ceq | Cne | Clt | Cge

(** Semantic class of a machine instruction. The canonical per-class
    enum names (ADDrr, LIi, ...) live in {!Vega_corpus.Spec}. *)
type op_class =
  | Alu
  | Alui
  | Mov
  | Movi
  | Mul
  | Div
  | Load
  | Store
  | Branch
  | Jump
  | CallOp
  | Ret
  | Nop
  | Madd
  | Vadd
  | Vmul
  | LoopSetup
  | LoopEnd

type insn = {
  opcode : int;  (** unique per target, < 256 (encoded in bits 24..31) *)
  mnemonic : string;  (** target-flavoured assembly spelling *)
  op_class : op_class;
  alu : alu option;  (** Some for Alu/Alui classes *)
  cond : cond option;  (** Some for Branch class *)
  latency : int;
  micro_ops : int;
}

(** Fixup categories; the MiniLLVM emitter asks for one fixup per
    category via the get*Fixup hooks. *)
type fixup_kind =
  | Fk_branch
  | Fk_jump
  | Fk_call
  | Fk_hi
  | Fk_lo
  | Fk_abs_word
  | Fk_got
  | Fk_plt
  | Fk_tls

type fixup = {
  fx_name : string;  (** target enum member, e.g. fixup_arm_movt_hi16 *)
  fx_kind : fixup_kind;
  fx_bits : int;  (** significant bits patched into the instruction *)
  fx_offset : int;  (** bit offset of the patched field *)
  fx_shift : int;  (** right-shift applied to the value first *)
  fx_pcrel : bool;
  fx_reloc_pcrel : string;  (** ELF reloc emitted when PC-relative *)
  fx_reloc_abs : string;  (** ELF reloc emitted when absolute *)
}

(** Relocation specifier exposed through the target's MCExpr subclass
    (the paper's S2 axis: only some targets have these). *)
type variant_kind = { vk_name : string; vk_reloc : string }

type regs = {
  reg_count : int;  (** <= 64; register fields are 6 bits wide *)
  reg_prefix : string;
  sp : int;
  ra : int;
  fp : int;
  zero : int option;  (** hardwired zero register, when the ISA has one *)
  ret_reg : int;
  arg_regs : int list;
  callee_saved : int list;
  reserved : int list;
}

type sched = {
  issue_width : int;
  load_latency : int;
  mul_latency : int;
  div_latency : int;
  branch_latency : int;
  post_ra : bool;
  fuse_cmp_branch : bool;
}

type features = {
  has_hwloop : bool;
  has_simd : bool;
  has_disassembler : bool;
  has_variant_kinds : bool;
  has_madd : bool;
  has_relaxation : bool;
  dense_imm : bool;  (** 12-bit ALU immediates instead of 16-bit *)
}

type t = {
  name : string;
  td_name : string;
  endian : endian;
  word_bits : int;
  imm_marker : string;  (** immediate sigil in assembly, "" for none *)
  comment_char : string;
  regs : regs;
  sched : sched;
  features : features;
  insns : insn list;
  fixups : fixup list;
  variant_kinds : variant_kind list;
}

(* ---------------------------------------------------------------- *)
(* Lookups                                                           *)

let find_insn p cls = List.find_opt (fun i -> i.op_class = cls) p.insns

let alu_insn p op =
  List.find_opt (fun i -> i.op_class = Alu && i.alu = Some op) p.insns

let alui_insn p op =
  List.find_opt (fun i -> i.op_class = Alui && i.alu = Some op) p.insns

let fixup_by_kind p k = List.find_opt (fun f -> f.fx_kind = k) p.fixups

(** All ELF relocation names the target can emit, numbered sequentially
    from 0 in first-appearance order. R_<TD>_NONE comes first: it is the
    default arm of every getRelocType. *)
let all_relocs p =
  let none = "R_" ^ String.uppercase_ascii p.td_name ^ "_NONE" in
  let names =
    none
    :: List.concat_map (fun f -> [ f.fx_reloc_pcrel; f.fx_reloc_abs ]) p.fixups
    @ List.map (fun vk -> vk.vk_reloc) p.variant_kinds
  in
  let seen = Hashtbl.create 16 in
  let uniq =
    List.filter
      (fun n ->
        if Hashtbl.mem seen n then false
        else begin
          Hashtbl.add seen n ();
          true
        end)
      names
  in
  List.mapi (fun i n -> (n, i)) uniq

(* ---------------------------------------------------------------- *)
(* Construction-time validation (fail fast on malformed profiles)    *)

let validate p =
  let fail fmt = Printf.ksprintf invalid_arg fmt in
  let dup l = List.length l <> List.length (List.sort_uniq compare l) in
  if p.regs.reg_count > 64 then
    fail "%s: reg_count %d > 64 (6-bit register fields)" p.name
      p.regs.reg_count;
  List.iter
    (fun i ->
      if i.opcode < 0 || i.opcode > 255 then
        fail "%s: opcode %d of %s out of range" p.name i.opcode i.mnemonic)
    p.insns;
  if dup (List.map (fun i -> i.opcode) p.insns) then
    fail "%s: duplicate opcodes" p.name;
  let imm_form i =
    match i.op_class with
    | Alui | Movi | Load | Store | LoopSetup -> true
    | _ -> false
  in
  if dup (List.map (fun i -> (i.mnemonic, imm_form i)) p.insns) then
    fail "%s: duplicate (mnemonic, form) pair" p.name;
  if dup (List.map (fun f -> f.fx_name) p.fixups) then
    fail "%s: duplicate fixup names" p.name;
  List.iter
    (fun f ->
      if f.fx_bits <= 0 || f.fx_bits > 64 then
        fail "%s: fixup %s has %d bits" p.name f.fx_name f.fx_bits)
    p.fixups;
  p
