(** Profile builder: construct a complete target profile (standard
    instruction set, scheduling model, feature record) from a compact
    description — a spelling map plus fixups and registers. This is the
    paper's headline entry point for new processors: describe the
    target, render its description files, generate its backend (see
    examples/custom_target.ml). *)

module P = Profile

let fx kind ~name ~bits ~offset ~shift ~pcrel ~rp ~ra =
  {
    P.fx_name = name;
    fx_kind = kind;
    fx_bits = bits;
    fx_offset = offset;
    fx_shift = shift;
    fx_pcrel = pcrel;
    fx_reloc_pcrel = rp;
    fx_reloc_abs = ra;
  }

let mk_regs ~prefix ~count ~sp ~ra ~fp ?zero ~args ~ret ~callee_saved ?reserved
    () =
  (* sp/ra/fp and the hardwired zero are never allocatable, even when a
     target reserves additional registers (gp/tp/assembler temps) *)
  let always =
    [ sp; ra; fp ] @ match zero with Some z -> [ z ] | None -> []
  in
  let reserved =
    List.sort_uniq compare
      (always @ match reserved with Some r -> r | None -> [])
  in
  {
    P.reg_count = count;
    reg_prefix = prefix;
    sp;
    ra;
    fp;
    zero;
    ret_reg = ret;
    arg_regs = args;
    callee_saved;
    reserved;
  }

let mk_sched ?(issue_width = 1) ?(load_latency = 2) ?(mul_latency = 3)
    ?(div_latency = 12) ?(branch_latency = 1) ?(post_ra = false)
    ?(fuse_cmp_branch = false) () =
  {
    P.issue_width;
    load_latency;
    mul_latency;
    div_latency;
    branch_latency;
    post_ra;
    fuse_cmp_branch;
  }

let mk_features ?(has_hwloop = false) ?(has_simd = false)
    ?(has_disassembler = true) ?(has_variant_kinds = false)
    ?(has_madd = false) ?(has_relaxation = false) ?(dense_imm = false) () =
  {
    P.has_hwloop;
    has_simd;
    has_disassembler;
    has_variant_kinds;
    has_madd;
    has_relaxation;
    dense_imm;
  }

(** Mnemonic overrides, keyed by canonical instruction name:
    "add".."slt", "addi".."slti", "mov", "li", "mul", "div", "load",
    "store", "beq".."bge", "jmp", "call", "ret", "nop", "madd",
    "vadd", "vmul", "lpsetup", "lpend". *)
let spell_map (l : (string * string) list) = l

let alu_key = function
  | P.Add -> "add"
  | P.Sub -> "sub"
  | P.And -> "and"
  | P.Or -> "or"
  | P.Xor -> "xor"
  | P.Shl -> "shl"
  | P.Shr -> "shr"
  | P.Slt -> "slt"

let make ~name ?td_name ~endian ?(word_bits = 32) ?(imm_marker = "")
    ~comment_char ~fixups ~regs ?(spell = []) ?(sched = mk_sched ())
    ?(features = mk_features ()) ?(variant_kinds = []) ?(opcode_base = 1) () =
  let td_name = Option.value ~default:name td_name in
  let sp key default = Option.value ~default (List.assoc_opt key spell) in
  let mk op_class ?alu ?cond ?(latency = 1) ?(micro_ops = 1) mnemonic =
    { P.opcode = 0; mnemonic; op_class; alu; cond; latency; micro_ops }
  in
  let alus =
    List.map
      (fun a -> mk P.Alu ~alu:a (sp (alu_key a) (alu_key a)))
      [ P.Add; P.Sub; P.And; P.Or; P.Xor; P.Shl; P.Shr; P.Slt ]
  in
  (* immediate forms exist only for the subset the canonical enum names *)
  let aluis =
    List.map
      (fun a ->
        let base = sp (alu_key a) (alu_key a) in
        mk P.Alui ~alu:a (sp (alu_key a ^ "i") (base ^ "i")))
      [ P.Add; P.And; P.Or; P.Shl; P.Shr; P.Slt ]
  in
  let branches =
    List.map
      (fun (c, key) -> mk P.Branch ~cond:c ~latency:sched.P.branch_latency
          (sp key key))
      [ (P.Ceq, "beq"); (P.Cne, "bne"); (P.Clt, "blt"); (P.Cge, "bge") ]
  in
  let core =
    alus @ aluis
    @ [
        mk P.Mov (sp "mov" "mov");
        mk P.Movi (sp "li" "li");
        mk P.Mul ~latency:sched.P.mul_latency (sp "mul" "mul");
        mk P.Div ~latency:sched.P.div_latency (sp "div" "div");
        mk P.Load ~latency:sched.P.load_latency (sp "load" "ld");
        mk P.Store (sp "store" "st");
      ]
    @ branches
    @ [
        mk P.Jump (sp "jmp" "jmp");
        mk P.CallOp ~micro_ops:2 (sp "call" "call");
        mk P.Ret (sp "ret" "ret");
        mk P.Nop (sp "nop" "nop");
      ]
  in
  let optional =
    (if features.P.has_madd then
       [ mk P.Madd ~latency:sched.P.mul_latency (sp "madd" "madd") ]
     else [])
    @ (if features.P.has_simd then
         [
           mk P.Vadd (sp "vadd" "vadd");
           mk P.Vmul ~latency:sched.P.mul_latency (sp "vmul" "vmul");
         ]
       else [])
    @
    if features.P.has_hwloop then
      [ mk P.LoopSetup (sp "lpsetup" "lp.setup"); mk P.LoopEnd (sp "lpend" "lp.end") ]
    else []
  in
  let insns =
    List.mapi
      (fun i insn -> { insn with P.opcode = opcode_base + i })
      (core @ optional)
  in
  let features =
    { features with P.has_variant_kinds = variant_kinds <> [] }
  in
  Profile.validate
    {
      P.name;
      td_name;
      endian;
      word_bits;
      imm_marker;
      comment_char;
      regs;
      sched;
      features;
      insns;
      fixups;
      variant_kinds;
    }
