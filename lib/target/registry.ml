(** The 17 target processors of the evaluation (paper Fig. 6): 14
    training targets whose backends and description files form the
    corpus, and 3 held-out targets (RISCV, RI5CY, XCore) that exist for
    the pipeline only as description files. *)

module P = Profile
module D = Defs

(* ---------------------------------------------------------------- *)
(* Training targets                                                  *)

let arm =
  D.make ~name:"ARM" ~endian:P.Little ~comment_char:"@" ~imm_marker:"#"
    ~opcode_base:10
    ~fixups:
      [
        D.fx P.Fk_branch ~name:"fixup_arm_condbranch" ~bits:24 ~offset:0
          ~shift:2 ~pcrel:true ~rp:"R_ARM_JUMP24" ~ra:"R_ARM_JUMP24";
        D.fx P.Fk_jump ~name:"fixup_arm_uncondbranch" ~bits:24 ~offset:0
          ~shift:2 ~pcrel:true ~rp:"R_ARM_JUMP24" ~ra:"R_ARM_JUMP24";
        D.fx P.Fk_call ~name:"fixup_arm_uncondbl" ~bits:24 ~offset:0 ~shift:2
          ~pcrel:true ~rp:"R_ARM_CALL" ~ra:"R_ARM_CALL";
        D.fx P.Fk_hi ~name:"fixup_arm_movt_hi16" ~bits:16 ~offset:16 ~shift:16
          ~pcrel:false ~rp:"R_ARM_MOVT_PREL" ~ra:"R_ARM_MOVT_ABS";
        D.fx P.Fk_lo ~name:"fixup_arm_movw_lo16" ~bits:16 ~offset:0 ~shift:0
          ~pcrel:false ~rp:"R_ARM_MOVW_PREL_NC" ~ra:"R_ARM_MOVW_ABS_NC";
        D.fx P.Fk_abs_word ~name:"fixup_arm_abs32" ~bits:32 ~offset:0 ~shift:0
          ~pcrel:false ~rp:"R_ARM_REL32" ~ra:"R_ARM_ABS32";
        D.fx P.Fk_got ~name:"fixup_arm_got_prel" ~bits:32 ~offset:0 ~shift:0
          ~pcrel:false ~rp:"R_ARM_GOT_PREL" ~ra:"R_ARM_GOT_PREL";
      ]
    ~variant_kinds:
      [
        { P.vk_name = "VK_GOT"; vk_reloc = "R_ARM_GOT_BREL" };
        { P.vk_name = "VK_PLT"; vk_reloc = "R_ARM_PLT32" };
        { P.vk_name = "VK_TLSGD"; vk_reloc = "R_ARM_TLS_GD32" };
      ]
    ~regs:
      (D.mk_regs ~prefix:"r" ~count:16 ~sp:13 ~ra:14 ~fp:11 ~args:[ 0; 1; 2; 3 ]
         ~ret:0
         ~callee_saved:[ 4; 5; 6; 7; 8; 9; 10 ]
         ~reserved:[ 11; 13; 14; 15 ] ())
    ~spell:
      (D.spell_map
         [
           ("or", "orr"); ("xor", "eor"); ("shl", "lsl"); ("shr", "lsr");
           ("li", "movw"); ("load", "ldr"); ("store", "str"); ("jmp", "b");
           ("call", "bl"); ("ret", "bx"); ("div", "sdiv");
         ])
    ~sched:
      (D.mk_sched ~issue_width:2 ~load_latency:2 ~mul_latency:3
         ~div_latency:12 ~post_ra:true ~fuse_cmp_branch:true ())
    ~features:(D.mk_features ~dense_imm:true ())
    ()

let x86 =
  D.make ~name:"X86" ~endian:P.Little ~comment_char:";" ~imm_marker:"$"
    ~opcode_base:40
    ~fixups:
      [
        D.fx P.Fk_branch ~name:"reloc_branch8_pcrel" ~bits:8 ~offset:0 ~shift:0
          ~pcrel:true ~rp:"R_386_PC8" ~ra:"R_386_PC8";
        D.fx P.Fk_jump ~name:"reloc_branch32_pcrel" ~bits:32 ~offset:0 ~shift:0
          ~pcrel:true ~rp:"R_386_PC32" ~ra:"R_386_PC32";
        D.fx P.Fk_call ~name:"reloc_call32_pcrel" ~bits:32 ~offset:0 ~shift:0
          ~pcrel:true ~rp:"R_386_PLT32" ~ra:"R_386_32";
        D.fx P.Fk_abs_word ~name:"reloc_abs_4byte" ~bits:32 ~offset:0 ~shift:0
          ~pcrel:false ~rp:"R_386_PC32" ~ra:"R_386_32";
        D.fx P.Fk_got ~name:"reloc_got32" ~bits:32 ~offset:0 ~shift:0
          ~pcrel:false ~rp:"R_386_GOT32" ~ra:"R_386_GOT32";
        D.fx P.Fk_plt ~name:"reloc_plt32" ~bits:32 ~offset:0 ~shift:0
          ~pcrel:true ~rp:"R_386_PLT32" ~ra:"R_386_PLT32";
      ]
    ~variant_kinds:
      [
        { P.vk_name = "VK_GOT"; vk_reloc = "R_386_GOT32" };
        { P.vk_name = "VK_PLT"; vk_reloc = "R_386_PLT32" };
        { P.vk_name = "VK_TLSGD"; vk_reloc = "R_386_TLS_GD" };
      ]
    ~regs:
      (D.mk_regs ~prefix:"r" ~count:16 ~sp:4 ~ra:15 ~fp:5 ~args:[ 7; 6; 3; 2 ]
         ~ret:0
         ~callee_saved:[ 12; 13; 14 ]
         ~reserved:[ 4; 5; 15 ] ())
    ~spell:
      (D.spell_map
         [
           ("shl", "sal"); ("shr", "sar"); ("slt", "setl"); ("li", "movq");
           ("load", "lods"); ("store", "stos"); ("beq", "je"); ("bne", "jne");
           ("blt", "jl"); ("bge", "jge"); ("mul", "imul"); ("div", "idiv");
         ])
    ~sched:
      (D.mk_sched ~issue_width:4 ~load_latency:3 ~mul_latency:3
         ~div_latency:20 ~post_ra:true ~fuse_cmp_branch:true ())
    ~features:(D.mk_features ())
    ()

let mips =
  D.make ~name:"Mips" ~endian:P.Big ~comment_char:"#" ~opcode_base:70
    ~fixups:
      [
        D.fx P.Fk_branch ~name:"fixup_Mips_PC16" ~bits:16 ~offset:0 ~shift:2
          ~pcrel:true ~rp:"R_MIPS_PC16" ~ra:"R_MIPS_PC16";
        D.fx P.Fk_jump ~name:"fixup_Mips_26" ~bits:26 ~offset:0 ~shift:2
          ~pcrel:true ~rp:"R_MIPS_26" ~ra:"R_MIPS_26";
        D.fx P.Fk_call ~name:"fixup_Mips_CALL16" ~bits:16 ~offset:0 ~shift:2
          ~pcrel:true ~rp:"R_MIPS_CALL16" ~ra:"R_MIPS_CALL16";
        D.fx P.Fk_hi ~name:"fixup_Mips_HI16" ~bits:16 ~offset:0 ~shift:16
          ~pcrel:false ~rp:"R_MIPS_HI16" ~ra:"R_MIPS_HI16";
        D.fx P.Fk_lo ~name:"fixup_Mips_LO16" ~bits:16 ~offset:0 ~shift:0
          ~pcrel:false ~rp:"R_MIPS_LO16" ~ra:"R_MIPS_LO16";
        D.fx P.Fk_abs_word ~name:"fixup_Mips_32" ~bits:32 ~offset:0 ~shift:0
          ~pcrel:false ~rp:"R_MIPS_REL32" ~ra:"R_MIPS_32";
      ]
    ~regs:
      (D.mk_regs ~prefix:"$" ~count:32 ~sp:29 ~ra:31 ~fp:30 ~zero:0
         ~args:[ 4; 5; 6; 7 ] ~ret:2
         ~callee_saved:[ 16; 17; 18; 19; 20; 21; 22; 23 ]
         ~reserved:[ 26; 27; 28; 29; 30; 31 ] ())
    ~spell:
      (D.spell_map
         [
           ("add", "addu"); ("sub", "subu"); ("shl", "sllv"); ("shr", "srlv");
           ("addi", "addiu"); ("shli", "sll"); ("shri", "srl");
           ("mov", "move"); ("load", "lw"); ("store", "sw"); ("jmp", "j");
           ("call", "jal"); ("ret", "jr");
         ])
    ~sched:(D.mk_sched ~load_latency:2 ~mul_latency:4 ~div_latency:16 ())
    ~features:(D.mk_features ())
    ()

let sparc =
  D.make ~name:"Sparc" ~endian:P.Big ~comment_char:"!" ~opcode_base:100
    ~fixups:
      [
        D.fx P.Fk_branch ~name:"fixup_sparc_br22" ~bits:22 ~offset:0 ~shift:2
          ~pcrel:true ~rp:"R_SPARC_WDISP22" ~ra:"R_SPARC_WDISP22";
        D.fx P.Fk_jump ~name:"fixup_sparc_br19" ~bits:19 ~offset:0 ~shift:2
          ~pcrel:true ~rp:"R_SPARC_WDISP19" ~ra:"R_SPARC_WDISP19";
        D.fx P.Fk_call ~name:"fixup_sparc_call30" ~bits:30 ~offset:0 ~shift:2
          ~pcrel:true ~rp:"R_SPARC_WDISP30" ~ra:"R_SPARC_WDISP30";
        D.fx P.Fk_hi ~name:"fixup_sparc_hi22" ~bits:22 ~offset:10 ~shift:10
          ~pcrel:false ~rp:"R_SPARC_HI22" ~ra:"R_SPARC_HI22";
        D.fx P.Fk_lo ~name:"fixup_sparc_lo10" ~bits:10 ~offset:0 ~shift:0
          ~pcrel:false ~rp:"R_SPARC_LO10" ~ra:"R_SPARC_LO10";
        D.fx P.Fk_abs_word ~name:"fixup_sparc_32" ~bits:32 ~offset:0 ~shift:0
          ~pcrel:false ~rp:"R_SPARC_DISP32" ~ra:"R_SPARC_32";
      ]
    ~regs:
      (D.mk_regs ~prefix:"%" ~count:32 ~sp:14 ~ra:15 ~fp:30 ~zero:0
         ~args:[ 8; 9; 10; 11; 12; 13 ] ~ret:8
         ~callee_saved:[ 16; 17; 18; 19; 20; 21; 22; 23 ]
         ~reserved:[ 14; 15; 30; 31 ] ())
    ~spell:
      (D.spell_map
         [
           ("shl", "sll"); ("shr", "srl"); ("li", "set"); ("load", "ld");
           ("store", "st"); ("beq", "be"); ("jmp", "ba"); ("ret", "retl");
           ("mul", "smul"); ("div", "sdiv");
         ])
    ~sched:(D.mk_sched ~load_latency:2 ~mul_latency:4 ~div_latency:18 ())
    ~features:(D.mk_features ())
    ()

let msp430 =
  D.make ~name:"MSP430" ~endian:P.Little ~comment_char:";" ~imm_marker:"#"
    ~word_bits:16 ~opcode_base:130
    ~fixups:
      [
        D.fx P.Fk_branch ~name:"fixup_msp430_rel10" ~bits:10 ~offset:0
          ~shift:1 ~pcrel:true ~rp:"R_MSP430_10_PCREL" ~ra:"R_MSP430_10_PCREL";
        D.fx P.Fk_jump ~name:"fixup_msp430_rel16" ~bits:16 ~offset:0 ~shift:1
          ~pcrel:true ~rp:"R_MSP430_16_PCREL" ~ra:"R_MSP430_16_PCREL";
        D.fx P.Fk_call ~name:"fixup_msp430_16_byte" ~bits:16 ~offset:0
          ~shift:0 ~pcrel:true ~rp:"R_MSP430_16_PCREL_BYTE"
          ~ra:"R_MSP430_16_BYTE";
        D.fx P.Fk_hi ~name:"fixup_msp430_hi16" ~bits:16 ~offset:0 ~shift:16
          ~pcrel:false ~rp:"R_MSP430_HI16" ~ra:"R_MSP430_HI16";
        D.fx P.Fk_lo ~name:"fixup_msp430_lo16" ~bits:16 ~offset:0 ~shift:0
          ~pcrel:false ~rp:"R_MSP430_LO16" ~ra:"R_MSP430_LO16";
        D.fx P.Fk_abs_word ~name:"fixup_msp430_32" ~bits:32 ~offset:0 ~shift:0
          ~pcrel:false ~rp:"R_MSP430_32" ~ra:"R_MSP430_32";
      ]
    ~regs:
      (D.mk_regs ~prefix:"r" ~count:16 ~sp:1 ~ra:0 ~fp:4
         ~args:[ 12; 13; 14; 15 ] ~ret:15
         ~callee_saved:[ 5; 6; 7; 8 ]
         ~reserved:[ 0; 1; 2; 3; 4 ] ())
    ~spell:
      (D.spell_map
         [
           ("add", "add.w"); ("sub", "sub.w"); ("and", "and.w");
           ("or", "bis.w"); ("xor", "xor.w"); ("shl", "rla.w");
           ("shr", "rra.w"); ("slt", "cmp.w"); ("mov", "mov.w");
           ("li", "mov.i"); ("load", "ld.w"); ("store", "st.w");
           ("beq", "jeq"); ("bne", "jne"); ("blt", "jl"); ("bge", "jge");
           ("jmp", "br"); ("ret", "reti");
         ])
    ~sched:
      (D.mk_sched ~load_latency:2 ~mul_latency:8 ~div_latency:24
         ~branch_latency:2 ())
    ~features:(D.mk_features ~has_relaxation:true ())
    ()

let m68k =
  D.make ~name:"M68k" ~endian:P.Big ~comment_char:"|" ~imm_marker:"#"
    ~opcode_base:160
    ~fixups:
      [
        D.fx P.Fk_branch ~name:"fixup_m68k_pc8" ~bits:8 ~offset:0 ~shift:0
          ~pcrel:true ~rp:"R_68K_PC8" ~ra:"R_68K_PC8";
        D.fx P.Fk_jump ~name:"fixup_m68k_pc16" ~bits:16 ~offset:0 ~shift:0
          ~pcrel:true ~rp:"R_68K_PC16" ~ra:"R_68K_PC16";
        D.fx P.Fk_call ~name:"fixup_m68k_pc32" ~bits:32 ~offset:0 ~shift:0
          ~pcrel:true ~rp:"R_68K_PC32" ~ra:"R_68K_PC32";
        D.fx P.Fk_abs_word ~name:"fixup_m68k_32" ~bits:32 ~offset:0 ~shift:0
          ~pcrel:false ~rp:"R_68K_PC32" ~ra:"R_68K_32";
      ]
    ~regs:
      (D.mk_regs ~prefix:"d" ~count:16 ~sp:15 ~ra:13 ~fp:14
         ~args:[ 0; 1; 2; 3 ] ~ret:0
         ~callee_saved:[ 4; 5; 6; 7 ]
         ~reserved:[ 13; 14; 15 ] ())
    ~spell:
      (D.spell_map
         [
           ("add", "add.l"); ("sub", "sub.l"); ("and", "and.l");
           ("or", "or.l"); ("xor", "eor.l"); ("shl", "lsl.l");
           ("shr", "lsr.l"); ("slt", "slt.l"); ("mov", "move.l");
           ("li", "moveq"); ("mul", "muls"); ("div", "divs");
           ("load", "ld.l"); ("store", "st.l"); ("jmp", "bra");
           ("call", "bsr"); ("ret", "rts");
         ])
    ~sched:
      (D.mk_sched ~load_latency:3 ~mul_latency:6 ~div_latency:30
         ~branch_latency:2 ())
    ~features:(D.mk_features ~has_relaxation:true ~has_disassembler:false ())
    ()

let avr =
  D.make ~name:"AVR" ~endian:P.Little ~comment_char:";" ~word_bits:16
    ~opcode_base:190
    ~fixups:
      [
        D.fx P.Fk_branch ~name:"fixup_avr_7_pcrel" ~bits:7 ~offset:0 ~shift:1
          ~pcrel:true ~rp:"R_AVR_7_PCREL" ~ra:"R_AVR_7_PCREL";
        D.fx P.Fk_jump ~name:"fixup_avr_13_pcrel" ~bits:13 ~offset:0 ~shift:1
          ~pcrel:true ~rp:"R_AVR_13_PCREL" ~ra:"R_AVR_13_PCREL";
        D.fx P.Fk_call ~name:"fixup_avr_call" ~bits:22 ~offset:0 ~shift:1
          ~pcrel:true ~rp:"R_AVR_CALL" ~ra:"R_AVR_CALL";
        D.fx P.Fk_hi ~name:"fixup_avr_hi8_ldi" ~bits:8 ~offset:0 ~shift:8
          ~pcrel:false ~rp:"R_AVR_HI8_LDI" ~ra:"R_AVR_HI8_LDI";
        D.fx P.Fk_lo ~name:"fixup_avr_lo8_ldi" ~bits:8 ~offset:0 ~shift:0
          ~pcrel:false ~rp:"R_AVR_LO8_LDI" ~ra:"R_AVR_LO8_LDI";
        D.fx P.Fk_abs_word ~name:"fixup_avr_32" ~bits:32 ~offset:0 ~shift:0
          ~pcrel:false ~rp:"R_AVR_32" ~ra:"R_AVR_32";
      ]
    ~regs:
      (D.mk_regs ~prefix:"r" ~count:32 ~sp:29 ~ra:30 ~fp:28 ~zero:1
         ~args:[ 22; 23; 24; 25 ] ~ret:24
         ~callee_saved:[ 2; 3; 4; 5; 6; 7 ]
         ~reserved:[ 28; 29; 30; 31 ] ())
    ~spell:
      (D.spell_map
         [
           ("xor", "eor"); ("shl", "lsl"); ("shr", "lsr"); ("slt", "cp");
           ("li", "ldi"); ("load", "ld"); ("store", "st"); ("beq", "breq");
           ("bne", "brne"); ("blt", "brlt"); ("bge", "brge");
           ("jmp", "rjmp"); ("call", "rcall");
         ])
    ~sched:(D.mk_sched ~load_latency:2 ~mul_latency:2 ~div_latency:40 ())
    ~features:(D.mk_features ~has_relaxation:true ~dense_imm:true ())
    ()

let hexagon =
  D.make ~name:"Hexagon" ~endian:P.Little ~comment_char:"//" ~imm_marker:"#"
    ~opcode_base:16
    ~fixups:
      [
        D.fx P.Fk_branch ~name:"fixup_hex_b15_pcrel" ~bits:15 ~offset:0
          ~shift:2 ~pcrel:true ~rp:"R_HEX_B15_PCREL" ~ra:"R_HEX_B15_PCREL";
        D.fx P.Fk_jump ~name:"fixup_hex_b22_pcrel" ~bits:22 ~offset:0 ~shift:2
          ~pcrel:true ~rp:"R_HEX_B22_PCREL" ~ra:"R_HEX_B22_PCREL";
        D.fx P.Fk_call ~name:"fixup_hex_plt_b22_pcrel" ~bits:22 ~offset:0
          ~shift:2 ~pcrel:true ~rp:"R_HEX_PLT_B22_PCREL"
          ~ra:"R_HEX_PLT_B22_PCREL";
        D.fx P.Fk_hi ~name:"fixup_hex_hi16" ~bits:16 ~offset:0 ~shift:16
          ~pcrel:false ~rp:"R_HEX_HI16" ~ra:"R_HEX_HI16";
        D.fx P.Fk_lo ~name:"fixup_hex_lo16" ~bits:16 ~offset:0 ~shift:0
          ~pcrel:false ~rp:"R_HEX_LO16" ~ra:"R_HEX_LO16";
        D.fx P.Fk_abs_word ~name:"fixup_hex_32" ~bits:32 ~offset:0 ~shift:0
          ~pcrel:false ~rp:"R_HEX_32_PCREL" ~ra:"R_HEX_32";
      ]
    ~regs:
      (D.mk_regs ~prefix:"r" ~count:32 ~sp:29 ~ra:31 ~fp:30
         ~args:[ 0; 1; 2; 3; 4; 5 ] ~ret:0
         ~callee_saved:[ 16; 17; 18; 19; 20; 21; 22; 23 ]
         ~reserved:[ 28; 29; 30; 31 ] ())
    ~spell:
      (D.spell_map
         [
           ("shl", "asl"); ("shr", "asr"); ("slt", "cmplt"); ("mov", "tfr");
           ("li", "tfri"); ("load", "memw"); ("store", "mems");
           ("jmp", "jump"); ("ret", "dealloc_ret"); ("lpsetup", "loop0");
           ("lpend", "endloop0");
         ])
    ~sched:
      (D.mk_sched ~issue_width:4 ~load_latency:2 ~mul_latency:3
         ~div_latency:12 ~post_ra:true ~fuse_cmp_branch:true ())
    ~features:(D.mk_features ~has_hwloop:true ~has_madd:true ())
    ()

let powerpc =
  D.make ~name:"PowerPC" ~td_name:"PPC" ~endian:P.Big ~comment_char:"#"
    ~opcode_base:46
    ~fixups:
      [
        D.fx P.Fk_branch ~name:"fixup_ppc_brcond14" ~bits:14 ~offset:0
          ~shift:2 ~pcrel:true ~rp:"R_PPC_REL14" ~ra:"R_PPC_ADDR14";
        D.fx P.Fk_jump ~name:"fixup_ppc_br24" ~bits:24 ~offset:0 ~shift:2
          ~pcrel:true ~rp:"R_PPC_REL24" ~ra:"R_PPC_ADDR24";
        D.fx P.Fk_call ~name:"fixup_ppc_br24_notoc" ~bits:24 ~offset:0
          ~shift:2 ~pcrel:true ~rp:"R_PPC_REL24_NOTOC" ~ra:"R_PPC_ADDR24";
        D.fx P.Fk_hi ~name:"fixup_ppc_ha16" ~bits:16 ~offset:0 ~shift:16
          ~pcrel:false ~rp:"R_PPC_ADDR16_HA" ~ra:"R_PPC_ADDR16_HA";
        D.fx P.Fk_lo ~name:"fixup_ppc_lo16" ~bits:16 ~offset:0 ~shift:0
          ~pcrel:false ~rp:"R_PPC_ADDR16_LO" ~ra:"R_PPC_ADDR16_LO";
        D.fx P.Fk_abs_word ~name:"fixup_ppc_word32" ~bits:32 ~offset:0
          ~shift:0 ~pcrel:false ~rp:"R_PPC_REL32" ~ra:"R_PPC_ADDR32";
        D.fx P.Fk_got ~name:"fixup_ppc_got16" ~bits:16 ~offset:0 ~shift:0
          ~pcrel:false ~rp:"R_PPC_GOT16" ~ra:"R_PPC_GOT16";
      ]
    ~variant_kinds:
      [
        { P.vk_name = "VK_GOT"; vk_reloc = "R_PPC_GOT16" };
        { P.vk_name = "VK_PLT"; vk_reloc = "R_PPC_PLTREL24" };
      ]
    ~regs:
      (D.mk_regs ~prefix:"r" ~count:32 ~sp:1 ~ra:30 ~fp:31
         ~args:[ 3; 4; 5; 6; 7; 8 ] ~ret:3
         ~callee_saved:[ 14; 15; 16; 17; 18; 19; 20; 21; 22; 23; 24; 25 ]
         ~reserved:[ 0; 1; 30; 31 ] ())
    ~spell:
      (D.spell_map
         [
           ("sub", "subf"); ("shl", "slw"); ("shr", "srw"); ("slt", "cmplw");
           ("mov", "mr"); ("mul", "mullw"); ("div", "divw"); ("load", "lwz");
           ("store", "stw"); ("jmp", "b"); ("call", "bl"); ("ret", "blr");
           ("madd", "maddld"); ("vadd", "vadduwm"); ("vmul", "vmuluwm");
           ("lpsetup", "mtctr"); ("lpend", "bdnz");
         ])
    ~sched:
      (D.mk_sched ~issue_width:3 ~load_latency:2 ~mul_latency:3
         ~div_latency:14 ~post_ra:true ())
    ~features:
      (D.mk_features ~has_hwloop:true ~has_simd:true ~has_madd:true ())
    ()

let aarch64 =
  D.make ~name:"AArch64" ~endian:P.Little ~comment_char:"//" ~imm_marker:"#"
    ~word_bits:64 ~opcode_base:76
    ~fixups:
      [
        D.fx P.Fk_branch ~name:"fixup_aarch64_pcrel_branch19" ~bits:19
          ~offset:0 ~shift:2 ~pcrel:true ~rp:"R_AARCH64_CONDBR19"
          ~ra:"R_AARCH64_CONDBR19";
        D.fx P.Fk_jump ~name:"fixup_aarch64_pcrel_branch26" ~bits:26 ~offset:0
          ~shift:2 ~pcrel:true ~rp:"R_AARCH64_JUMP26" ~ra:"R_AARCH64_JUMP26";
        D.fx P.Fk_call ~name:"fixup_aarch64_pcrel_call26" ~bits:26 ~offset:0
          ~shift:2 ~pcrel:true ~rp:"R_AARCH64_CALL26" ~ra:"R_AARCH64_CALL26";
        D.fx P.Fk_hi ~name:"fixup_aarch64_adr_hi21" ~bits:21 ~offset:0
          ~shift:12 ~pcrel:false ~rp:"R_AARCH64_ADR_PREL_PG_HI21"
          ~ra:"R_AARCH64_ADR_PREL_PG_HI21";
        D.fx P.Fk_lo ~name:"fixup_aarch64_add_lo12" ~bits:12 ~offset:0
          ~shift:0 ~pcrel:false ~rp:"R_AARCH64_ADD_ABS_LO12_NC"
          ~ra:"R_AARCH64_ADD_ABS_LO12_NC";
        D.fx P.Fk_abs_word ~name:"fixup_aarch64_abs32" ~bits:32 ~offset:0
          ~shift:0 ~pcrel:false ~rp:"R_AARCH64_PREL32" ~ra:"R_AARCH64_ABS32";
        D.fx P.Fk_got ~name:"fixup_aarch64_got_ld_prel19" ~bits:19 ~offset:0
          ~shift:2 ~pcrel:true ~rp:"R_AARCH64_GOT_LD_PREL19"
          ~ra:"R_AARCH64_GOT_LD_PREL19";
      ]
    ~variant_kinds:
      [
        { P.vk_name = "VK_GOT"; vk_reloc = "R_AARCH64_GOT_LD_PREL19" };
        { P.vk_name = "VK_TLSGD"; vk_reloc = "R_AARCH64_TLSGD_ADR_PREL21" };
      ]
    ~regs:
      (D.mk_regs ~prefix:"x" ~count:32 ~sp:31 ~ra:30 ~fp:29
         ~args:[ 0; 1; 2; 3; 4; 5; 6; 7 ] ~ret:0
         ~callee_saved:[ 19; 20; 21; 22; 23; 24; 25; 26; 27; 28 ]
         ~reserved:[ 18; 29; 30; 31 ] ())
    ~spell:
      (D.spell_map
         [
           ("or", "orr"); ("xor", "eor"); ("shl", "lsl"); ("shr", "lsr");
           ("slt", "cset"); ("li", "movz"); ("div", "sdiv"); ("load", "ldr");
           ("store", "str"); ("beq", "b.eq"); ("bne", "b.ne");
           ("blt", "b.lt"); ("bge", "b.ge"); ("jmp", "b"); ("call", "bl");
           ("madd", "madd"); ("vadd", "add.4h"); ("vmul", "mul.4h");
         ])
    ~sched:
      (D.mk_sched ~issue_width:3 ~load_latency:2 ~mul_latency:3
         ~div_latency:12 ~post_ra:true ~fuse_cmp_branch:true ())
    ~features:(D.mk_features ~has_simd:true ~has_madd:true ~dense_imm:true ())
    ()

let lanai =
  D.make ~name:"Lanai" ~endian:P.Big ~comment_char:"!" ~opcode_base:106
    ~fixups:
      [
        D.fx P.Fk_branch ~name:"fixup_lanai_21" ~bits:21 ~offset:0 ~shift:2
          ~pcrel:true ~rp:"R_LANAI_21" ~ra:"R_LANAI_21";
        D.fx P.Fk_jump ~name:"fixup_lanai_25" ~bits:25 ~offset:0 ~shift:2
          ~pcrel:true ~rp:"R_LANAI_25" ~ra:"R_LANAI_25";
        D.fx P.Fk_call ~name:"fixup_lanai_call25" ~bits:25 ~offset:0 ~shift:2
          ~pcrel:true ~rp:"R_LANAI_25" ~ra:"R_LANAI_25";
        D.fx P.Fk_hi ~name:"fixup_lanai_hi16" ~bits:16 ~offset:0 ~shift:16
          ~pcrel:false ~rp:"R_LANAI_HI16" ~ra:"R_LANAI_HI16";
        D.fx P.Fk_lo ~name:"fixup_lanai_lo16" ~bits:16 ~offset:0 ~shift:0
          ~pcrel:false ~rp:"R_LANAI_LO16" ~ra:"R_LANAI_LO16";
        D.fx P.Fk_abs_word ~name:"fixup_lanai_32" ~bits:32 ~offset:0 ~shift:0
          ~pcrel:false ~rp:"R_LANAI_32" ~ra:"R_LANAI_32";
      ]
    ~regs:
      (D.mk_regs ~prefix:"r" ~count:32 ~sp:4 ~ra:15 ~fp:5 ~zero:0
         ~args:[ 6; 7; 8; 9 ] ~ret:8
         ~callee_saved:[ 16; 17; 18; 19; 20; 21; 22; 23 ]
         ~reserved:[ 1; 2; 3; 4; 5; 15 ] ())
    ~spell:
      (D.spell_map
         [
           ("li", "movi"); ("load", "ld"); ("store", "st"); ("jmp", "bt");
           ("call", "bl"); ("ret", "rt");
         ])
    ~sched:
      (D.mk_sched ~load_latency:2 ~mul_latency:4 ~div_latency:16
         ~branch_latency:2 ())
    ~features:(D.mk_features ())
    ()

let ve =
  D.make ~name:"VE" ~endian:P.Little ~comment_char:"#" ~word_bits:64
    ~opcode_base:136
    ~fixups:
      [
        D.fx P.Fk_branch ~name:"fixup_ve_srel32" ~bits:32 ~offset:0 ~shift:0
          ~pcrel:true ~rp:"R_VE_SREL32" ~ra:"R_VE_SREL32";
        D.fx P.Fk_jump ~name:"fixup_ve_pc_lo32" ~bits:32 ~offset:0 ~shift:0
          ~pcrel:true ~rp:"R_VE_PC_LO32" ~ra:"R_VE_PC_LO32";
        D.fx P.Fk_call ~name:"fixup_ve_call32" ~bits:32 ~offset:0 ~shift:0
          ~pcrel:true ~rp:"R_VE_SREL32" ~ra:"R_VE_REFLONG";
        D.fx P.Fk_hi ~name:"fixup_ve_hi32" ~bits:32 ~offset:0 ~shift:32
          ~pcrel:false ~rp:"R_VE_HI32" ~ra:"R_VE_HI32";
        D.fx P.Fk_lo ~name:"fixup_ve_lo32" ~bits:32 ~offset:0 ~shift:0
          ~pcrel:false ~rp:"R_VE_LO32" ~ra:"R_VE_LO32";
        D.fx P.Fk_abs_word ~name:"fixup_ve_reflong" ~bits:32 ~offset:0
          ~shift:0 ~pcrel:false ~rp:"R_VE_PC_LO32" ~ra:"R_VE_REFLONG";
      ]
    ~regs:
      (D.mk_regs ~prefix:"s" ~count:64 ~sp:11 ~ra:10 ~fp:9
         ~args:[ 0; 1; 2; 3; 4; 5; 6; 7 ] ~ret:0
         ~callee_saved:[ 18; 19; 20; 21; 22; 23; 24; 25; 26; 27; 28; 29; 30; 31; 32; 33 ]
         ~reserved:[ 8; 9; 10; 11; 14; 15 ] ())
    ~spell:
      (D.spell_map
         [
           ("add", "adds"); ("sub", "subs"); ("shl", "sll"); ("shr", "srl");
           ("slt", "slts"); ("mov", "mv"); ("li", "lea"); ("mul", "muls");
           ("div", "divs"); ("load", "ldl"); ("store", "stl");
           ("beq", "breq"); ("bne", "brne"); ("blt", "brlt");
           ("bge", "brge"); ("jmp", "br"); ("call", "bsic"); ("ret", "b.l.t");
           ("vadd", "vadds"); ("vmul", "vmuls");
         ])
    ~sched:
      (D.mk_sched ~issue_width:2 ~load_latency:3 ~mul_latency:4
         ~div_latency:20 ())
    ~features:(D.mk_features ~has_simd:true ())
    ()

let csky =
  D.make ~name:"CSKY" ~endian:P.Little ~comment_char:"#" ~opcode_base:166
    ~fixups:
      [
        D.fx P.Fk_branch ~name:"fixup_csky_pcrel_imm16_scale2" ~bits:16
          ~offset:0 ~shift:1 ~pcrel:true ~rp:"R_CKCORE_PCREL_IMM16BY2"
          ~ra:"R_CKCORE_PCREL_IMM16BY2";
        D.fx P.Fk_jump ~name:"fixup_csky_pcrel_imm26_scale2" ~bits:26
          ~offset:0 ~shift:1 ~pcrel:true ~rp:"R_CKCORE_PCREL_IMM26BY2"
          ~ra:"R_CKCORE_PCREL_IMM26BY2";
        D.fx P.Fk_call ~name:"fixup_csky_pcrel_imm18_scale2" ~bits:18
          ~offset:0 ~shift:1 ~pcrel:true ~rp:"R_CKCORE_PCREL_IMM18BY2"
          ~ra:"R_CKCORE_PCREL_IMM18BY2";
        D.fx P.Fk_hi ~name:"fixup_csky_addr_hi16" ~bits:16 ~offset:0
          ~shift:16 ~pcrel:false ~rp:"R_CKCORE_ADDR_HI16"
          ~ra:"R_CKCORE_ADDR_HI16";
        D.fx P.Fk_lo ~name:"fixup_csky_addr_lo16" ~bits:16 ~offset:0 ~shift:0
          ~pcrel:false ~rp:"R_CKCORE_ADDR_LO16" ~ra:"R_CKCORE_ADDR_LO16";
        D.fx P.Fk_abs_word ~name:"fixup_csky_addr32" ~bits:32 ~offset:0
          ~shift:0 ~pcrel:false ~rp:"R_CKCORE_PCREL32" ~ra:"R_CKCORE_ADDR32";
      ]
    ~regs:
      (D.mk_regs ~prefix:"r" ~count:32 ~sp:14 ~ra:15 ~fp:8
         ~args:[ 0; 1; 2; 3 ] ~ret:0
         ~callee_saved:[ 4; 5; 6; 7; 9; 10; 11 ]
         ~reserved:[ 8; 14; 15; 31 ] ())
    ~spell:
      (D.spell_map
         [
           ("add", "addu"); ("sub", "subu"); ("shl", "lsl"); ("shr", "lsr");
           ("slt", "cmplt"); ("li", "movi"); ("mul", "mult");
           ("div", "divs"); ("load", "ld.w"); ("store", "st.w");
           ("jmp", "jbr"); ("call", "jbsr"); ("ret", "rts");
         ])
    ~sched:(D.mk_sched ~load_latency:2 ~mul_latency:3 ~div_latency:16 ())
    ~features:(D.mk_features ~dense_imm:true ())
    ()

let loongarch =
  D.make ~name:"LoongArch" ~endian:P.Little ~comment_char:"#" ~opcode_base:196
    ~fixups:
      [
        D.fx P.Fk_branch ~name:"fixup_loongarch_b16" ~bits:16 ~offset:0
          ~shift:2 ~pcrel:true ~rp:"R_LARCH_B16" ~ra:"R_LARCH_B16";
        D.fx P.Fk_jump ~name:"fixup_loongarch_b26" ~bits:26 ~offset:0 ~shift:2
          ~pcrel:true ~rp:"R_LARCH_B26" ~ra:"R_LARCH_B26";
        D.fx P.Fk_call ~name:"fixup_loongarch_call36" ~bits:36 ~offset:0
          ~shift:2 ~pcrel:true ~rp:"R_LARCH_CALL36" ~ra:"R_LARCH_CALL36";
        D.fx P.Fk_hi ~name:"fixup_loongarch_abs_hi20" ~bits:20 ~offset:0
          ~shift:12 ~pcrel:false ~rp:"R_LARCH_ABS_HI20" ~ra:"R_LARCH_ABS_HI20";
        D.fx P.Fk_lo ~name:"fixup_loongarch_abs_lo12" ~bits:12 ~offset:0
          ~shift:0 ~pcrel:false ~rp:"R_LARCH_ABS_LO12" ~ra:"R_LARCH_ABS_LO12";
        D.fx P.Fk_abs_word ~name:"fixup_loongarch_32" ~bits:32 ~offset:0
          ~shift:0 ~pcrel:false ~rp:"R_LARCH_32_PCREL" ~ra:"R_LARCH_32";
      ]
    ~variant_kinds:
      [
        { P.vk_name = "VK_GOT"; vk_reloc = "R_LARCH_GOT_PC_HI20" };
        { P.vk_name = "VK_PLT"; vk_reloc = "R_LARCH_B26_PLT" };
      ]
    ~regs:
      (D.mk_regs ~prefix:"$r" ~count:32 ~sp:3 ~ra:1 ~fp:22 ~zero:0
         ~args:[ 4; 5; 6; 7; 8; 9; 10; 11 ] ~ret:4
         ~callee_saved:[ 23; 24; 25; 26; 27; 28; 29; 30; 31 ]
         ~reserved:[ 1; 2; 3; 21; 22 ] ())
    ~spell:
      (D.spell_map
         [
           ("add", "add.w"); ("sub", "sub.w"); ("shl", "sll.w");
           ("shr", "srl.w"); ("addi", "addi.w"); ("shli", "slli.w");
           ("shri", "srli.w"); ("mov", "move"); ("li", "li.w");
           ("mul", "mul.w"); ("div", "div.w"); ("load", "ld.w");
           ("store", "st.w"); ("jmp", "b"); ("call", "bl"); ("ret", "jirl");
         ])
    ~sched:
      (D.mk_sched ~issue_width:2 ~load_latency:2 ~mul_latency:3
         ~div_latency:10 ())
    ~features:(D.mk_features ~dense_imm:true ())
    ()

(* ---------------------------------------------------------------- *)
(* Held-out targets (Sec. 4.1: GPP, ULP and IoT design points)       *)

let riscv =
  D.make ~name:"RISCV" ~endian:P.Little ~comment_char:"#" ~opcode_base:20
    ~fixups:
      [
        D.fx P.Fk_branch ~name:"fixup_riscv_branch" ~bits:12 ~offset:0
          ~shift:1 ~pcrel:true ~rp:"R_RISCV_BRANCH" ~ra:"R_RISCV_BRANCH";
        D.fx P.Fk_jump ~name:"fixup_riscv_jal" ~bits:20 ~offset:0 ~shift:1
          ~pcrel:true ~rp:"R_RISCV_JAL" ~ra:"R_RISCV_JAL";
        D.fx P.Fk_call ~name:"fixup_riscv_call" ~bits:32 ~offset:0 ~shift:0
          ~pcrel:true ~rp:"R_RISCV_CALL" ~ra:"R_RISCV_CALL";
        D.fx P.Fk_hi ~name:"fixup_riscv_pcrel_hi20" ~bits:20 ~offset:12
          ~shift:12 ~pcrel:false ~rp:"R_RISCV_PCREL_HI20" ~ra:"R_RISCV_HI20";
        D.fx P.Fk_lo ~name:"fixup_riscv_lo12_i" ~bits:12 ~offset:0 ~shift:0
          ~pcrel:false ~rp:"R_RISCV_PCREL_LO12_I" ~ra:"R_RISCV_LO12_I";
        D.fx P.Fk_abs_word ~name:"fixup_riscv_32" ~bits:32 ~offset:0 ~shift:0
          ~pcrel:false ~rp:"R_RISCV_32_PCREL" ~ra:"R_RISCV_32";
        D.fx P.Fk_got ~name:"fixup_riscv_got_hi20" ~bits:20 ~offset:12
          ~shift:12 ~pcrel:true ~rp:"R_RISCV_GOT_HI20" ~ra:"R_RISCV_GOT_HI20";
      ]
    ~variant_kinds:
      [
        { P.vk_name = "VK_GOT"; vk_reloc = "R_RISCV_GOT_HI20" };
        { P.vk_name = "VK_PLT"; vk_reloc = "R_RISCV_CALL_PLT" };
        { P.vk_name = "VK_TLS_GD"; vk_reloc = "R_RISCV_TLS_GD_HI20" };
      ]
    ~regs:
      (D.mk_regs ~prefix:"x" ~count:32 ~sp:2 ~ra:1 ~fp:8 ~zero:0
         ~args:[ 10; 11; 12; 13; 14; 15; 16; 17 ] ~ret:10
         ~callee_saved:[ 8; 9; 18; 19; 20; 21; 22; 23; 24; 25; 26; 27 ]
         ~reserved:[ 1; 2; 3; 4 ] ())
    ~spell:
      (D.spell_map
         [
           ("shl", "sll"); ("shr", "srl"); ("mov", "mv"); ("load", "lw");
           ("store", "sw"); ("jmp", "j"); ("call", "jal");
         ])
    ~sched:
      (D.mk_sched ~issue_width:2 ~load_latency:2 ~mul_latency:3
         ~div_latency:16 ~post_ra:true ())
    ~features:(D.mk_features ~dense_imm:true ())
    ()

let ri5cy =
  D.make ~name:"RI5CY" ~endian:P.Little ~comment_char:"#" ~opcode_base:50
    ~fixups:
      [
        D.fx P.Fk_branch ~name:"fixup_ri5cy_branch" ~bits:12 ~offset:0
          ~shift:1 ~pcrel:true ~rp:"R_RI5CY_BRANCH" ~ra:"R_RI5CY_BRANCH";
        D.fx P.Fk_jump ~name:"fixup_ri5cy_jal" ~bits:20 ~offset:0 ~shift:1
          ~pcrel:true ~rp:"R_RI5CY_JAL" ~ra:"R_RI5CY_JAL";
        D.fx P.Fk_call ~name:"fixup_ri5cy_call" ~bits:32 ~offset:0 ~shift:0
          ~pcrel:true ~rp:"R_RI5CY_CALL" ~ra:"R_RI5CY_CALL";
        D.fx P.Fk_hi ~name:"fixup_ri5cy_hi20" ~bits:20 ~offset:12 ~shift:12
          ~pcrel:false ~rp:"R_RI5CY_PCREL_HI20" ~ra:"R_RI5CY_HI20";
        D.fx P.Fk_lo ~name:"fixup_ri5cy_lo12_i" ~bits:12 ~offset:0 ~shift:0
          ~pcrel:false ~rp:"R_RI5CY_PCREL_LO12_I" ~ra:"R_RI5CY_LO12_I";
        D.fx P.Fk_abs_word ~name:"fixup_ri5cy_32" ~bits:32 ~offset:0 ~shift:0
          ~pcrel:false ~rp:"R_RI5CY_32_PCREL" ~ra:"R_RI5CY_32";
      ]
    ~variant_kinds:
      [
        { P.vk_name = "VK_GOT"; vk_reloc = "R_RI5CY_GOT_HI20" };
        { P.vk_name = "VK_PLT"; vk_reloc = "R_RI5CY_CALL_PLT" };
      ]
    ~regs:
      (D.mk_regs ~prefix:"x" ~count:32 ~sp:2 ~ra:1 ~fp:8 ~zero:0
         ~args:[ 10; 11; 12; 13; 14; 15; 16; 17 ] ~ret:10
         ~callee_saved:[ 8; 9; 18; 19; 20; 21; 22; 23; 24; 25; 26; 27 ]
         ~reserved:[ 1; 2; 3; 4 ] ())
    ~spell:
      (D.spell_map
         [
           ("shl", "sll"); ("shr", "srl"); ("mov", "mv"); ("load", "lw");
           ("store", "sw"); ("jmp", "j"); ("call", "jal");
           ("vadd", "pv.add.h"); ("vmul", "pv.mul.h"); ("madd", "p.madd");
         ])
    ~sched:(D.mk_sched ~load_latency:1 ~mul_latency:1 ~div_latency:8 ())
    ~features:
      (D.mk_features ~has_hwloop:true ~has_simd:true ~has_madd:true
         ~dense_imm:true ())
    ()

let xcore =
  D.make ~name:"XCore" ~endian:P.Little ~comment_char:"#" ~opcode_base:80
    ~fixups:
      [
        D.fx P.Fk_branch ~name:"fixup_xcore_pcrel10" ~bits:10 ~offset:0
          ~shift:1 ~pcrel:true ~rp:"R_XCORE_PCREL10" ~ra:"R_XCORE_PCREL10";
        D.fx P.Fk_jump ~name:"fixup_xcore_pcrel20" ~bits:20 ~offset:0 ~shift:1
          ~pcrel:true ~rp:"R_XCORE_PCREL20" ~ra:"R_XCORE_PCREL20";
        D.fx P.Fk_call ~name:"fixup_xcore_call20" ~bits:20 ~offset:0 ~shift:1
          ~pcrel:true ~rp:"R_XCORE_CALL20" ~ra:"R_XCORE_CALL20";
        D.fx P.Fk_hi ~name:"fixup_xcore_hi16" ~bits:16 ~offset:0 ~shift:16
          ~pcrel:false ~rp:"R_XCORE_HI16" ~ra:"R_XCORE_HI16";
        D.fx P.Fk_lo ~name:"fixup_xcore_lo16" ~bits:16 ~offset:0 ~shift:0
          ~pcrel:false ~rp:"R_XCORE_LO16" ~ra:"R_XCORE_LO16";
        D.fx P.Fk_abs_word ~name:"fixup_xcore_32" ~bits:32 ~offset:0 ~shift:0
          ~pcrel:false ~rp:"R_XCORE_REL32" ~ra:"R_XCORE_ABS32";
      ]
    ~regs:
      (D.mk_regs ~prefix:"r" ~count:16 ~sp:14 ~ra:15 ~fp:10
         ~args:[ 0; 1; 2; 3 ] ~ret:0
         ~callee_saved:[ 4; 5; 6; 7; 8; 9 ]
         ~reserved:[ 10; 13; 14; 15 ] ())
    ~spell:
      (D.spell_map
         [
           ("slt", "lss"); ("li", "ldc"); ("load", "ldw"); ("store", "stw");
           ("jmp", "bu"); ("call", "bl"); ("ret", "retsp");
         ])
    ~sched:
      (D.mk_sched ~load_latency:3 ~mul_latency:5 ~div_latency:25
         ~branch_latency:2 ())
    ~features:(D.mk_features ~has_disassembler:false ())
    ()

(* ---------------------------------------------------------------- *)

let training =
  [
    arm; x86; mips; sparc; msp430; m68k; avr; hexagon; powerpc; aarch64;
    lanai; ve; csky; loongarch;
  ]

let held_out = [ riscv; ri5cy; xcore ]
let all = training @ held_out
let find name = List.find_opt (fun (p : P.t) -> p.name = name) all

let find_exn name =
  match find name with
  | Some p -> p
  | None -> invalid_arg ("Registry.find_exn: unknown target " ^ name)
