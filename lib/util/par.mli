(** Fixed-size domain pool (OCaml 5) with deterministic result order.

    [map ~domains f items] applies [f] to every item across at most
    [domains] domains (one of which is the calling domain) and returns
    the results in input order, independent of scheduling. If any
    application raises, the exception of the lowest-indexed failing item
    is re-raised in the caller after all workers have stopped; items not
    yet started when the failure was recorded are skipped.

    [f] must be safe to run concurrently with itself: shared state it
    touches must be immutable, domain-local, or lock-protected. *)

val default_domains : unit -> int
(** [recommended_domain_count - 1] clamped to [1, 4]. *)

val map : domains:int -> ('a -> 'b) -> 'a list -> 'b list

val map_ctx : domains:int -> ctx:(int -> 'c) -> ('c -> 'a -> 'b) -> 'a list -> 'b list
(** Like {!map} but each worker first builds a private context with
    [ctx w] ([w] is the worker index, [0] = calling domain) that is
    passed to every application that worker runs — e.g. a forked
    supervisor that must not be shared across domains. *)

(** Persistent worker pool for open-ended work (the serving loop): [n]
    long-lived domains each running [body w] until it returns. The pool
    owns only lifecycle and failure propagation — bodies pull their own
    work, typically from a shared blocking queue. *)
module Pool : sig
  type t

  val spawn : domains:int -> (int -> unit) -> t
  (** Spawn [max 1 domains] domains running [body w], [w] in
      [0 .. domains-1]. Unlike {!map_ctx} the calling domain is {e not} a
      worker. *)

  val size : t -> int

  val join : t -> unit
  (** Wait for every body to return; then, if any raised, re-raise the
      lowest-indexed worker's exception with its backtrace. *)
end
