(* Fixed-size domain pool with deterministic result ordering.

   domainslib is not a dependency, so this is a hand-rolled pool:
   workers pull item indices from an atomic counter and write results
   into a slot array indexed by item, so the output order is always the
   input order regardless of which domain ran what. The first exception
   (by item index) is re-raised in the caller after every worker has
   stopped; a stop flag keeps workers from starting new items once an
   exception is recorded. *)

let default_domains () =
  max 1 (min 4 (Domain.recommended_domain_count () - 1))

type 'a slot = Empty | Ok_ of 'a | Error_ of exn * Printexc.raw_backtrace

let map_ctx ~domains ~ctx f items =
  let items = Array.of_list items in
  let n = Array.length items in
  if n = 0 then []
  else begin
    let domains = max 1 (min domains n) in
    let slots = Array.make n Empty in
    let next = Atomic.make 0 in
    let failed = Atomic.make false in
    let worker w () =
      let c = ctx w in
      let continue_ = ref true in
      while !continue_ do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n || Atomic.get failed then continue_ := false
        else
          match f c items.(i) with
          | v -> slots.(i) <- Ok_ v
          | exception e ->
              slots.(i) <- Error_ (e, Printexc.get_raw_backtrace ());
              Atomic.set failed true
      done
    in
    if domains = 1 then worker 0 ()
    else begin
      (* worker 0 runs in the calling domain so a pool of size d spawns
         only d-1 domains *)
      let spawned =
        Array.init (domains - 1) (fun k -> Domain.spawn (worker (k + 1)))
      in
      worker 0 ();
      Array.iter Domain.join spawned
    end;
    (* re-raise the first failure by item index for determinism *)
    Array.iter
      (function
        | Error_ (e, bt) -> Printexc.raise_with_backtrace e bt
        | Empty | Ok_ _ -> ())
      slots;
    Array.to_list
      (Array.map
         (function
           | Ok_ v -> v
           | Empty | Error_ _ ->
               (* unreachable: every slot below [next] is filled and no
                  error survived the sweep above *)
               assert false)
         slots)
  end

let map ~domains f items = map_ctx ~domains ~ctx:(fun _ -> ()) (fun () x -> f x) items

(* Persistent pool: long-lived worker domains for callers whose work
   arrives over time (a serving loop) rather than as one list. Unlike
   [map_ctx] the pool does not own the work distribution — each body
   pulls its own (typically from a shared blocking queue) — it only owns
   the domains' lifecycle and failure reporting. *)
module Pool = struct
  type t = {
    size : int;
    doms : unit Domain.t array;
    slots : (exn * Printexc.raw_backtrace) option array;
        (* one cell per worker, written only by that worker *)
  }

  let spawn ~domains body =
    let domains = max 1 domains in
    let slots = Array.make domains None in
    let doms =
      Array.init domains (fun w ->
          Domain.spawn (fun () ->
              try body w
              with e -> slots.(w) <- Some (e, Printexc.get_raw_backtrace ())))
    in
    { size = domains; doms; slots }

  let size t = t.size

  let join t =
    Array.iter Domain.join t.doms;
    (* lowest worker index wins, matching [map_ctx] determinism *)
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt | None -> ())
      t.slots
end
