(* Per-client token bucket: every client identity gets [burst] tokens
   refilled at [rate] tokens/second; one admission costs one token. A
   client hammering the server exhausts its own bucket and is rejected
   with Budget_exhausted while other clients keep being admitted — the
   per-client retry budget of the serving layer.

   The clock is injectable so tests drive it virtually; with a frozen
   clock the bucket is a pure counter (burst admissions, then none),
   which is what the deterministic overload scenario relies on. *)

type state = { mutable tokens : float; mutable last : float }

type t = {
  rate : float;  (* tokens per second *)
  burst : float;  (* bucket capacity, also the initial balance *)
  now : unit -> float;
  lock : Mutex.t;
  tbl : (string, state) Hashtbl.t;
}

let create ?(now = Unix.gettimeofday) ~rate ~burst () =
  {
    rate = Float.max 0.0 rate;
    burst = Float.max 1.0 burst;
    now;
    lock = Mutex.create ();
    tbl = Hashtbl.create 16;
  }

let state_of t client =
  match Hashtbl.find_opt t.tbl client with
  | Some s -> s
  | None ->
      let s = { tokens = t.burst; last = t.now () } in
      Hashtbl.replace t.tbl client s;
      s

let refill t s =
  let now = t.now () in
  let dt = Float.max 0.0 (now -. s.last) in
  s.tokens <- Float.min t.burst (s.tokens +. (dt *. t.rate));
  s.last <- now

let take t client =
  Mutex.protect t.lock (fun () ->
      let s = state_of t client in
      refill t s;
      if s.tokens >= 1.0 then begin
        s.tokens <- s.tokens -. 1.0;
        true
      end
      else false)

let balance t client =
  Mutex.protect t.lock (fun () ->
      let s = state_of t client in
      refill t s;
      s.tokens)

let clients t = Mutex.protect t.lock (fun () -> Hashtbl.length t.tbl)
