(* Newline-delimited transport over a Unix domain socket.

   One connection, one command, one reply line: a `req` submits a
   request (admission decided synchronously in the accept loop, so the
   wire observes the same deterministic accept/reject order as the
   in-process API), `health` returns the snapshot, `ping` liveness, and
   `drain` gracefully drains the server and shuts the listener down.

   Accepted requests hand their ticket to a small awaiter domain which
   writes the reply when a worker delivers it — so the accept loop never
   blocks on generation, and concurrent clients really do race the
   admission queue. Awaiter count is bounded by construction: accepted
   tickets in flight never exceed queue capacity + worker count.

   Incoming lines are read through a bounded accumulator; a line longer
   than the limit is answered with a typed Oversize rejection instead of
   being allocated. *)

module Wire = Vega_robust.Wire
module J = Vega_robust.Journal

type listener = {
  l_server : Server.t;
  l_path : string;
  l_fd : Unix.file_descr;
  l_lock : Mutex.t;
  mutable l_stopping : bool;
  mutable l_awaiters : unit Domain.t list;
  mutable l_accept : unit Domain.t option;
  mutable l_exn : exn option;  (* crash observed during drain *)
  l_done : Condition.t;
  mutable l_finished : bool;
}

let max_line_bytes = Wire.max_record_bytes

(* A peer that disappears (or stops reading) mid-write must surface as
   EPIPE on the write — the default SIGPIPE disposition would kill the
   whole process instead. *)
let () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ -> ()

(* ---- framed IO ---- *)

(* Write the whole line, completing partial writes in a loop and
   retrying on EINTR — [Unix.single_write] maps to one write(2), which
   may move fewer bytes than asked (small socket buffers, signals), and
   a truncated reply would be indistinguishable from a torn line to the
   peer. Only a gone peer (EPIPE/ECONNRESET) abandons the write. *)
let write_line fd line =
  let data = Bytes.of_string (line ^ "\n") in
  let len = Bytes.length data in
  let rec go off =
    if off < len then
      match Unix.single_write fd data off (len - off) with
      | 0 -> ()
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ()
  in
  go 0

(* Read one newline-terminated line, never allocating past [limit];
   [`Oversize n] reports how many bytes arrived before giving up. *)
let read_bounded_line ?(limit = max_line_bytes) fd =
  let buf = Buffer.create 256 in
  let byte = Bytes.create 1 in
  let rec go () =
    match Unix.read fd byte 0 1 with
    | 0 -> if Buffer.length buf = 0 then `Eof else `Line (Buffer.contents buf)
    | _ -> (
        match Bytes.get byte 0 with
        | '\n' -> `Line (Buffer.contents buf)
        | c ->
            if Buffer.length buf >= limit then `Oversize (Buffer.length buf + 1)
            else begin
              Buffer.add_char buf c;
              go ()
            end)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> `Eof
  in
  go ()

(* ---- server side ---- *)

let add_awaiter l d =
  Mutex.protect l.l_lock (fun () -> l.l_awaiters <- d :: l.l_awaiters)

let handle_conn l fd =
  match read_bounded_line fd with
  | `Eof -> Unix.close fd
  | `Oversize bytes ->
      write_line fd
        (Proto.encode_reply
           (Proto.Rejected (Proto.Oversize { bytes; limit = max_line_bytes })));
      Unix.close fd
  | `Line line -> (
      match Proto.decode_command line with
      | Proto.Malformed ->
          write_line fd
            (Proto.encode_reply
               (Proto.Rejected
                  (Proto.Bad_request "unparseable command line")));
          Unix.close fd
      | Proto.Version_skew { got } ->
          (* well-formed line, wrong protocol version: typed rejection,
             not a parse fault *)
          write_line fd
            (Proto.encode_reply
               (Proto.Rejected
                  (Proto.Version_mismatch { got; want = Proto.version })));
          Unix.close fd
      | Proto.Decoded (Proto.Creq req) -> (
          match Server.submit l.l_server req with
          | Error r ->
              write_line fd (Proto.encode_reply (Proto.Rejected r));
              Unix.close fd
          | Ok ticket ->
              (* reply later, off the accept path *)
              add_awaiter l
                (Domain.spawn (fun () ->
                     let reply = Server.await ticket in
                     write_line fd (Proto.encode_reply reply);
                     Unix.close fd)))
      | Proto.Decoded Proto.Chealth ->
          write_line fd (Health.encode (Server.health l.l_server));
          Unix.close fd
      | Proto.Decoded Proto.Cping ->
          write_line fd (Wire.encode_line [ "pong" ]);
          Unix.close fd
      | Proto.Decoded Proto.Cshards ->
          (* a single-process server has no shard table; routers answer
             this in Rsock *)
          write_line fd
            (Proto.encode_reply
               (Proto.Rejected
                  (Proto.Bad_request "not a router: no shard table")));
          Unix.close fd
      | Proto.Decoded Proto.Cdrain ->
          (match Server.drain l.l_server with
          | () -> ()
          | exception e -> Mutex.protect l.l_lock (fun () -> l.l_exn <- Some e));
          write_line fd (Health.encode (Server.health l.l_server));
          Unix.close fd;
          Mutex.protect l.l_lock (fun () -> l.l_stopping <- true))

let accept_loop l =
  let rec go () =
    let stop = Mutex.protect l.l_lock (fun () -> l.l_stopping) in
    if not stop then begin
      match Unix.accept l.l_fd with
      | fd, _ ->
          (* one command per connection; malformed peers cannot take the
             listener down *)
          (try handle_conn l fd
           with e ->
             (try Unix.close fd with Unix.Unix_error _ -> ());
             Mutex.protect l.l_lock (fun () ->
                 if l.l_exn = None then l.l_exn <- Some e));
          go ()
      | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
          (* listen socket closed under us: shutdown *)
          ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    end
  in
  go ();
  Mutex.protect l.l_lock (fun () ->
      l.l_finished <- true;
      Condition.broadcast l.l_done)

let start server ~path =
  if Sys.file_exists path then Sys.remove path;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  let l =
    {
      l_server = server;
      l_path = path;
      l_fd = fd;
      l_lock = Mutex.create ();
      l_stopping = false;
      l_awaiters = [];
      l_accept = None;
      l_exn = None;
      l_done = Condition.create ();
      l_finished = false;
    }
  in
  l.l_accept <- Some (Domain.spawn (fun () -> accept_loop l));
  l

let path l = l.l_path

(* Block until the accept loop exits — i.e. a `drain` command was served
   or {!stop} was called — then join everything and re-raise a stored
   crash (the simulated-kill path surfaces here). *)
let wait l =
  Mutex.protect l.l_lock (fun () ->
      while not l.l_finished do
        Condition.wait l.l_done l.l_lock
      done);
  Option.iter Domain.join l.l_accept;
  l.l_accept <- None;
  let awaiters =
    Mutex.protect l.l_lock (fun () ->
        let a = l.l_awaiters in
        l.l_awaiters <- [];
        a)
  in
  List.iter Domain.join awaiters;
  (try Unix.close l.l_fd with Unix.Unix_error _ -> ());
  if Sys.file_exists l.l_path then (try Sys.remove l.l_path with Sys_error _ -> ());
  match Mutex.protect l.l_lock (fun () -> l.l_exn) with
  | Some e -> raise e
  | None -> ()

let stop l =
  Mutex.protect l.l_lock (fun () -> l.l_stopping <- true);
  (* wake the blocking accept *)
  (try Unix.shutdown l.l_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  (try Unix.close l.l_fd with Unix.Unix_error _ -> ());
  wait l

(* ---- client side ---- *)

let with_conn ~socket f =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_UNIX socket);
      f fd)

let roundtrip ~socket command =
  with_conn ~socket (fun fd ->
      write_line fd (Proto.encode_command command);
      match read_bounded_line fd with
      | `Line line -> Some line
      | `Eof | `Oversize _ -> None)

let request ~socket req =
  match roundtrip ~socket (Proto.Creq req) with
  | None -> Proto.Failed "connection closed without a reply"
  | Some line -> (
      match Proto.decode_reply line with
      | Proto.Decoded reply -> reply
      | Proto.Version_skew { got } ->
          Proto.Rejected (Proto.Version_mismatch { got; want = Proto.version })
      | Proto.Malformed -> Proto.Failed "unparseable reply line")

let health ~socket =
  Option.bind (roundtrip ~socket Proto.Chealth) Health.decode

let drain ~socket =
  Option.bind (roundtrip ~socket Proto.Cdrain) Health.decode

let ping ~socket =
  match roundtrip ~socket Proto.Cping with
  | Some line -> Wire.decode_line line = Some [ "pong" ]
  | None -> false

(* Raw per-shard status line from a router's listener (a plain server
   answers with a typed rejection instead). Decoding lives in
   [Vega_shard.Router] — lib/serve cannot depend on lib/shard. *)
let shards ~socket = roundtrip ~socket Proto.Cshards
