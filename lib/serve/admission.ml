(* Bounded admission queue with synchronous load-shedding.

   [offer] decides accept-or-shed in the caller's thread, under the
   queue lock, before anything is enqueued: a full queue rejects
   immediately instead of growing, so memory stays bounded under any
   overload and — given a fixed submission order — the accept/reject
   sequence is a pure function of that order. That determinism is why
   shedding lives here and not in the workers: by the time a worker
   could reject, scheduling has already made the outcome racy.

   [take] blocks until an item, close, or resume. [pause] keeps workers
   from dequeuing while callers build up a deterministic backlog (the
   overload scenario); [close] stops admission, lets the backlog drain,
   and wakes everyone once it is empty. *)

type 'a t = {
  cap : int;
  q : 'a Queue.t;
  lock : Mutex.t;
  nonempty : Condition.t;
  mutable closed : bool;
  mutable paused : bool;
}

let create ?(paused = false) ~cap () =
  {
    cap = max 1 cap;
    q = Queue.create ();
    lock = Mutex.create ();
    nonempty = Condition.create ();
    closed = false;
    paused;
  }

let capacity t = t.cap
let depth t = Mutex.protect t.lock (fun () -> Queue.length t.q)

type 'a offer_outcome = Accepted of int | Shed of int | Closed

let offer t x =
  Mutex.protect t.lock (fun () ->
      if t.closed then Closed
      else begin
        let depth = Queue.length t.q in
        if depth >= t.cap then Shed depth
        else begin
          Queue.add x t.q;
          Condition.signal t.nonempty;
          Accepted (depth + 1)
        end
      end)

let take t =
  Mutex.protect t.lock (fun () ->
      while (t.paused || Queue.is_empty t.q) && not t.closed do
        Condition.wait t.nonempty t.lock
      done;
      (* closed: drain the backlog first, then report exhaustion *)
      if Queue.is_empty t.q then None else Some (Queue.pop t.q))

let pause t =
  Mutex.protect t.lock (fun () -> t.paused <- true)

let resume t =
  Mutex.protect t.lock (fun () ->
      t.paused <- false;
      Condition.broadcast t.nonempty)

let close t =
  Mutex.protect t.lock (fun () ->
      t.closed <- true;
      (* a closed queue must drain even if it was paused *)
      t.paused <- false;
      Condition.broadcast t.nonempty)

let closed t = Mutex.protect t.lock (fun () -> t.closed)
