(* Request/reply protocol of the serving layer.

   One request asks for one interface function of one target; one reply
   carries the generated source or a typed rejection. Everything
   round-trips through the checksummed wire format (Vega_robust.Wire),
   so the newline-delimited socket transport and the journal share one
   framing: a torn or oversize line is detected, never mis-parsed. *)

module Wire = Vega_robust.Wire

(* Protocol version. Every command and reply line leads with a [vN]
   field; a peer speaking a different version gets a typed
   [Version_mismatch] rejection instead of a parse fault, so rolling a
   mixed-version shard fleet degrades loudly rather than corrupting. *)
let version = 1

let version_to_field v = "v" ^ string_of_int v

let version_of_field s =
  if String.length s >= 2 && s.[0] = 'v' then
    int_of_string_opt (String.sub s 1 (String.length s - 1))
  else None

(* Three-way decode result: a line can be well-formed for a different
   protocol version — that is not malformed, it is a skewed peer. *)
type 'a decoded = Decoded of 'a | Version_skew of { got : int } | Malformed

type request = {
  rq_client : string;  (* rate-limit identity *)
  rq_target : string;
  rq_fname : string;  (* interface function to generate *)
  rq_deadline_ms : int option;  (* per-request budget override *)
}

type reject_reason =
  | Queue_full of { depth : int; cap : int }
  | Budget_exhausted of { client : string }
  | Draining
  | Expired of { waited_ms : int }
      (* deadline elapsed while the request sat in the queue *)
  | Oversize of { bytes : int; limit : int }
  | Bad_request of string
  | Version_mismatch of { got : int; want : int }
      (* peer speaks protocol version [got], we speak [want] *)
  | Shard_down of { shard : string }
      (* the shard owning this key is dead and policy says shed *)

type reply =
  | Done of {
      r_fname : string;
      r_target : string;
      r_confidence : float;
      r_degraded : int;  (* statements produced below the Primary rung *)
      r_resumed : bool;  (* restored from the journal, not regenerated *)
      r_source : string;
    }
  | Rejected of reject_reason
  | Failed of string

(* Commands a socket connection may open with; in-process callers use
   the Server API directly and never see these. [Cshards] asks a router
   for per-shard status; a plain single-process server rejects it. *)
type command = Creq of request | Chealth | Cdrain | Cping | Cshards

let reject_label = function
  | Queue_full _ -> "queue-full"
  | Budget_exhausted _ -> "budget-exhausted"
  | Draining -> "draining"
  | Expired _ -> "expired"
  | Oversize _ -> "oversize"
  | Bad_request _ -> "bad-request"
  | Version_mismatch _ -> "version-mismatch"
  | Shard_down _ -> "shard-down"

let reject_to_string = function
  | Queue_full { depth; cap } ->
      Printf.sprintf "queue full (depth %d, cap %d)" depth cap
  | Budget_exhausted { client } ->
      Printf.sprintf "retry budget exhausted for client %S" client
  | Draining -> "server draining; not admitting requests"
  | Expired { waited_ms } ->
      Printf.sprintf "deadline expired after %d ms in queue" waited_ms
  | Oversize { bytes; limit } ->
      Printf.sprintf "request line oversize (%d bytes, limit %d)" bytes limit
  | Bad_request msg -> Printf.sprintf "bad request: %s" msg
  | Version_mismatch { got; want } ->
      Printf.sprintf "protocol version mismatch (peer v%d, server v%d)" got
        want
  | Shard_down { shard } ->
      Printf.sprintf "shard %s is down; request shed by the router" shard

(* ---- wire encoding ---- *)

let opt_int_to_field = function None -> "-" | Some n -> string_of_int n

let opt_int_of_field = function
  | "-" -> Some None
  | s -> Option.map Option.some (Wire.int_of_field s)

let request_fields r =
  [
    "req"; r.rq_client; r.rq_target; r.rq_fname;
    opt_int_to_field r.rq_deadline_ms;
  ]

let command_fields = function
  | Creq r -> request_fields r
  | Chealth -> [ "health" ]
  | Cdrain -> [ "drain" ]
  | Cping -> [ "ping" ]
  | Cshards -> [ "shards" ]

(* [encode_command_at] exists so tests (and future mixed-version
   tooling) can stamp a line with an arbitrary version. *)
let encode_command_at ~version:v c =
  Wire.encode_line (version_to_field v :: command_fields c)

let encode_command c = encode_command_at ~version c
let encode_request r = encode_command (Creq r)

let reject_fields = function
  | Queue_full { depth; cap } ->
      [ "queue-full"; string_of_int depth; string_of_int cap ]
  | Budget_exhausted { client } -> [ "budget-exhausted"; client ]
  | Draining -> [ "draining" ]
  | Expired { waited_ms } -> [ "expired"; string_of_int waited_ms ]
  | Oversize { bytes; limit } ->
      [ "oversize"; string_of_int bytes; string_of_int limit ]
  | Bad_request msg -> [ "bad-request"; msg ]
  | Version_mismatch { got; want } ->
      [ "version-mismatch"; string_of_int got; string_of_int want ]
  | Shard_down { shard } -> [ "shard-down"; shard ]

let reject_of_fields = function
  | [ "queue-full"; depth; cap ] -> (
      match (Wire.int_of_field depth, Wire.int_of_field cap) with
      | Some depth, Some cap -> Some (Queue_full { depth; cap })
      | _ -> None)
  | [ "budget-exhausted"; client ] -> Some (Budget_exhausted { client })
  | [ "draining" ] -> Some Draining
  | [ "expired"; waited ] ->
      Option.map
        (fun waited_ms -> Expired { waited_ms })
        (Wire.int_of_field waited)
  | [ "oversize"; bytes; limit ] -> (
      match (Wire.int_of_field bytes, Wire.int_of_field limit) with
      | Some bytes, Some limit -> Some (Oversize { bytes; limit })
      | _ -> None)
  | [ "bad-request"; msg ] -> Some (Bad_request msg)
  | [ "version-mismatch"; got; want ] -> (
      match (Wire.int_of_field got, Wire.int_of_field want) with
      | Some got, Some want -> Some (Version_mismatch { got; want })
      | _ -> None)
  | [ "shard-down"; shard ] -> Some (Shard_down { shard })
  | _ -> None

let reply_fields = function
  | Done d ->
      [
        "done"; d.r_fname; d.r_target;
        Wire.float_to_field d.r_confidence;
        string_of_int d.r_degraded;
        Wire.bool_to_field d.r_resumed;
        d.r_source;
      ]
  | Rejected r -> "rej" :: reject_fields r
  | Failed msg -> [ "fail"; msg ]

let encode_reply_at ~version:v reply =
  Wire.encode_line (version_to_field v :: reply_fields reply)

let encode_reply reply = encode_reply_at ~version reply

(* Shared version gate: a checksum-valid line whose leading field names
   another version is [Version_skew], not [Malformed]. *)
let decode_versioned line parse =
  match Wire.decode_line line with
  | Some (vf :: rest) -> (
      match version_of_field vf with
      | None -> Malformed
      | Some got when got <> version -> Version_skew { got }
      | Some _ -> (
          match parse rest with Some x -> Decoded x | None -> Malformed))
  | Some [] | None -> Malformed

let command_of_fields = function
  | [ "req"; rq_client; rq_target; rq_fname; deadline ] ->
      Option.map
        (fun rq_deadline_ms ->
          Creq { rq_client; rq_target; rq_fname; rq_deadline_ms })
        (opt_int_of_field deadline)
  | [ "health" ] -> Some Chealth
  | [ "drain" ] -> Some Cdrain
  | [ "ping" ] -> Some Cping
  | [ "shards" ] -> Some Cshards
  | _ -> None

let decode_command line = decode_versioned line command_of_fields

let reply_of_fields = function
  | [ "done"; r_fname; r_target; conf; degraded; resumed; r_source ] -> (
      match
        ( Wire.float_of_field conf,
          Wire.int_of_field degraded,
          Wire.bool_of_field resumed )
      with
      | Some r_confidence, Some r_degraded, Some r_resumed ->
          Some
            (Done
               {
                 r_fname; r_target; r_confidence; r_degraded; r_resumed;
                 r_source;
               })
      | _ -> None)
  | "rej" :: fields -> Option.map (fun r -> Rejected r) (reject_of_fields fields)
  | [ "fail"; msg ] -> Some (Failed msg)
  | _ -> None

let decode_reply line = decode_versioned line reply_of_fields
