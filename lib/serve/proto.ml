(* Request/reply protocol of the serving layer.

   One request asks for one interface function of one target; one reply
   carries the generated source or a typed rejection. Everything
   round-trips through the checksummed wire format (Vega_robust.Wire),
   so the newline-delimited socket transport and the journal share one
   framing: a torn or oversize line is detected, never mis-parsed. *)

module Wire = Vega_robust.Wire

type request = {
  rq_client : string;  (* rate-limit identity *)
  rq_target : string;
  rq_fname : string;  (* interface function to generate *)
  rq_deadline_ms : int option;  (* per-request budget override *)
}

type reject_reason =
  | Queue_full of { depth : int; cap : int }
  | Budget_exhausted of { client : string }
  | Draining
  | Expired of { waited_ms : int }
      (* deadline elapsed while the request sat in the queue *)
  | Oversize of { bytes : int; limit : int }
  | Bad_request of string

type reply =
  | Done of {
      r_fname : string;
      r_target : string;
      r_confidence : float;
      r_degraded : int;  (* statements produced below the Primary rung *)
      r_resumed : bool;  (* restored from the journal, not regenerated *)
      r_source : string;
    }
  | Rejected of reject_reason
  | Failed of string

(* Commands a socket connection may open with; in-process callers use
   the Server API directly and never see these. *)
type command = Creq of request | Chealth | Cdrain | Cping

let reject_label = function
  | Queue_full _ -> "queue-full"
  | Budget_exhausted _ -> "budget-exhausted"
  | Draining -> "draining"
  | Expired _ -> "expired"
  | Oversize _ -> "oversize"
  | Bad_request _ -> "bad-request"

let reject_to_string = function
  | Queue_full { depth; cap } ->
      Printf.sprintf "queue full (depth %d, cap %d)" depth cap
  | Budget_exhausted { client } ->
      Printf.sprintf "retry budget exhausted for client %S" client
  | Draining -> "server draining; not admitting requests"
  | Expired { waited_ms } ->
      Printf.sprintf "deadline expired after %d ms in queue" waited_ms
  | Oversize { bytes; limit } ->
      Printf.sprintf "request line oversize (%d bytes, limit %d)" bytes limit
  | Bad_request msg -> Printf.sprintf "bad request: %s" msg

(* ---- wire encoding ---- *)

let opt_int_to_field = function None -> "-" | Some n -> string_of_int n

let opt_int_of_field = function
  | "-" -> Some None
  | s -> Option.map Option.some (Wire.int_of_field s)

let encode_request r =
  Wire.encode_line
    [
      "req"; r.rq_client; r.rq_target; r.rq_fname;
      opt_int_to_field r.rq_deadline_ms;
    ]

let encode_command = function
  | Creq r -> encode_request r
  | Chealth -> Wire.encode_line [ "health" ]
  | Cdrain -> Wire.encode_line [ "drain" ]
  | Cping -> Wire.encode_line [ "ping" ]

let reject_fields = function
  | Queue_full { depth; cap } ->
      [ "queue-full"; string_of_int depth; string_of_int cap ]
  | Budget_exhausted { client } -> [ "budget-exhausted"; client ]
  | Draining -> [ "draining" ]
  | Expired { waited_ms } -> [ "expired"; string_of_int waited_ms ]
  | Oversize { bytes; limit } ->
      [ "oversize"; string_of_int bytes; string_of_int limit ]
  | Bad_request msg -> [ "bad-request"; msg ]

let reject_of_fields = function
  | [ "queue-full"; depth; cap ] -> (
      match (Wire.int_of_field depth, Wire.int_of_field cap) with
      | Some depth, Some cap -> Some (Queue_full { depth; cap })
      | _ -> None)
  | [ "budget-exhausted"; client ] -> Some (Budget_exhausted { client })
  | [ "draining" ] -> Some Draining
  | [ "expired"; waited ] ->
      Option.map
        (fun waited_ms -> Expired { waited_ms })
        (Wire.int_of_field waited)
  | [ "oversize"; bytes; limit ] -> (
      match (Wire.int_of_field bytes, Wire.int_of_field limit) with
      | Some bytes, Some limit -> Some (Oversize { bytes; limit })
      | _ -> None)
  | [ "bad-request"; msg ] -> Some (Bad_request msg)
  | _ -> None

let encode_reply = function
  | Done d ->
      Wire.encode_line
        [
          "done"; d.r_fname; d.r_target;
          Wire.float_to_field d.r_confidence;
          string_of_int d.r_degraded;
          Wire.bool_to_field d.r_resumed;
          d.r_source;
        ]
  | Rejected r -> Wire.encode_line ("rej" :: reject_fields r)
  | Failed msg -> Wire.encode_line [ "fail"; msg ]

let decode_command line =
  match Wire.decode_line line with
  | Some [ "req"; rq_client; rq_target; rq_fname; deadline ] ->
      Option.map
        (fun rq_deadline_ms ->
          Creq { rq_client; rq_target; rq_fname; rq_deadline_ms })
        (opt_int_of_field deadline)
  | Some [ "health" ] -> Some Chealth
  | Some [ "drain" ] -> Some Cdrain
  | Some [ "ping" ] -> Some Cping
  | Some _ | None -> None

let decode_reply line =
  match Wire.decode_line line with
  | Some [ "done"; r_fname; r_target; conf; degraded; resumed; r_source ]
    -> (
      match
        ( Wire.float_of_field conf,
          Wire.int_of_field degraded,
          Wire.bool_of_field resumed )
      with
      | Some r_confidence, Some r_degraded, Some r_resumed ->
          Some
            (Done
               {
                 r_fname; r_target; r_confidence; r_degraded; r_resumed;
                 r_source;
               })
      | _ -> None)
  | Some ("rej" :: fields) ->
      Option.map (fun r -> Rejected r) (reject_of_fields fields)
  | Some [ "fail"; msg ] -> Some (Failed msg)
  | Some _ | None -> None
