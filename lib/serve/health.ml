(* Health and readiness of a serve daemon.

   A snapshot is a plain record so in-process callers can assert on it,
   plus a wire encoding so the socket's `health` command ships the same
   fields. Readiness is the admission gate: only [Ready] admits; a
   [Draining] server finishes (or checkpoints) what it has and a
   [Stopped] one has joined its workers. *)

module Wire = Vega_robust.Wire

type state = Starting | Ready | Draining | Stopped

let state_name = function
  | Starting -> "starting"
  | Ready -> "ready"
  | Draining -> "draining"
  | Stopped -> "stopped"

let state_of_name = function
  | "starting" -> Some Starting
  | "ready" -> Some Ready
  | "draining" -> Some Draining
  | "stopped" -> Some Stopped
  | _ -> None

type snapshot = {
  h_state : state;
  h_queue_depth : int;
  h_queue_cap : int;
  h_busy : int;  (* requests executing on a worker right now *)
  h_domains : int;
  h_accepted : int;
  h_rejected : int;
  h_completed : int;  (* replies delivered, including Failed *)
  h_deadline_hits : int;  (* supervisor deadline trips, all workers *)
  h_breaker_open : bool;  (* any worker breaker Open or Half_open *)
  h_journal_records : int;  (* records appended this process; 0 ephemeral *)
  h_journal_lag : int;  (* accepted - completed: queued + in flight *)
}

let to_fields h =
  [
    "health";
    state_name h.h_state;
    string_of_int h.h_queue_depth;
    string_of_int h.h_queue_cap;
    string_of_int h.h_busy;
    string_of_int h.h_domains;
    string_of_int h.h_accepted;
    string_of_int h.h_rejected;
    string_of_int h.h_completed;
    string_of_int h.h_deadline_hits;
    Wire.bool_to_field h.h_breaker_open;
    string_of_int h.h_journal_records;
    string_of_int h.h_journal_lag;
  ]

let encode h = Wire.encode_line (to_fields h)

let of_fields = function
  | [
      "health"; state; depth; cap; busy; domains; accepted; rejected;
      completed; deadline_hits; breaker; records; lag;
    ] -> (
      let i = Wire.int_of_field in
      match
        ( state_of_name state,
          (i depth, i cap, i busy, i domains),
          (i accepted, i rejected, i completed, i deadline_hits),
          (Wire.bool_of_field breaker, i records, i lag) )
      with
      | ( Some h_state,
          (Some h_queue_depth, Some h_queue_cap, Some h_busy, Some h_domains),
          ( Some h_accepted,
            Some h_rejected,
            Some h_completed,
            Some h_deadline_hits ),
          (Some h_breaker_open, Some h_journal_records, Some h_journal_lag) )
        ->
          Some
            {
              h_state;
              h_queue_depth;
              h_queue_cap;
              h_busy;
              h_domains;
              h_accepted;
              h_rejected;
              h_completed;
              h_deadline_hits;
              h_breaker_open;
              h_journal_records;
              h_journal_lag;
            }
      | _ -> None)
  | _ -> None

let decode line =
  match Wire.decode_line line with
  | Some fields -> of_fields fields
  | None -> None

let summary h =
  Printf.sprintf
    "state=%s queue=%d/%d busy=%d domains=%d accepted=%d rejected=%d \
     completed=%d deadline_hits=%d breaker_open=%b journal_records=%d \
     journal_lag=%d"
    (state_name h.h_state) h.h_queue_depth h.h_queue_cap h.h_busy h.h_domains
    h.h_accepted h.h_rejected h.h_completed h.h_deadline_hits h.h_breaker_open
    h.h_journal_records h.h_journal_lag
