let checksum s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  Printf.sprintf "%016Lx" !h

(* String.escaped maps tabs and newlines to backslash escapes, so escaped
   fields can be tab-joined and newline-framed without ambiguity. *)
let escape_field = String.escaped

let unescape_field s =
  match Scanf.unescaped s with v -> Some v | exception _ -> None

let encode_line fields =
  let payload = String.concat "\t" (List.map escape_field fields) in
  checksum payload ^ " " ^ payload

(* One record must fit comfortably in memory many times over: a reader
   facing a multi-megabyte "line" is looking at corruption (or an
   attack), not data, and must refuse before allocating for it. *)
let max_record_bytes = 1 lsl 20

let decode_line ?(limit = max_record_bytes) line =
  if String.length line > limit then None
  else
  match String.index_opt line ' ' with
  | None -> None
  | Some i ->
      let sum = String.sub line 0 i in
      let payload = String.sub line (i + 1) (String.length line - i - 1) in
      if not (String.equal sum (checksum payload)) then None
      else if String.length payload = 0 then
        (* split_on_char would yield [""]; an empty payload is the empty
           record (a lone empty field encodes identically and is folded
           into it) *)
        Some []
      else
        let fields = String.split_on_char '\t' payload in
        let rec unescape_all acc = function
          | [] -> Some (List.rev acc)
          | f :: rest -> (
              match unescape_field f with
              | Some v -> unescape_all (v :: acc) rest
              | None -> None)
        in
        unescape_all [] fields

let float_to_field f = Printf.sprintf "%h" f

let float_of_field s =
  match float_of_string_opt s with
  | Some f -> Some f
  | None -> if s = "nan" then Some Float.nan else None

let bool_to_field b = if b then "1" else "0"

let bool_of_field = function "1" -> Some true | "0" -> Some false | _ -> None

let int_of_field = int_of_string_opt
