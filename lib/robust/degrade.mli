(** The degradation ladder for per-statement generation.

    When the primary decoder fails, generation walks down the rungs:
    retry once, fall back to the retrieval decoder, render the template
    default via [Featrep.render_line], or finally omit the statement with
    a flag. Each rung caps the Eq. (1) confidence so degraded statements
    surface for review instead of silently passing. *)

type level = Primary | Retry | Retrieval_fallback | Template_default | Omitted

val all : level list
(** All rungs, best first. *)

val rank : level -> int
(** 0 for [Primary] up to 4 for [Omitted]. *)

val cap : level -> float
(** Confidence ceiling of the rung: 1.0 / 0.95 / 0.75 / 0.45 / 0.0 —
    monotonically non-increasing in {!rank}; [Template_default] is below
    the 0.5 accept threshold so those statements enter the Err-CS review
    channel. *)

val name : level -> string

val of_name : string -> level option
(** Inverse of {!name}, for journal and report deserialization. *)
