(** Supervised run loop: per-function deadlines, bounded exponential
    backoff with deterministic seeded jitter, and a circuit breaker on
    the decoder.

    The supervisor does not call the pipeline; the pipeline calls {e it}.
    [generate_backend ~sup] brackets every function with
    {!start_function}/{!end_function} and wraps the decoder in {!guard},
    which enforces the wall-clock budget (monotonic clock — immune to
    system-time jumps), retries retryable faults with backoff, and —
    after [breaker_threshold] consecutive decoder-family faults — opens
    the breaker so further decode attempts are skipped outright and the
    degradation ladder routes straight to its fallback rungs. *)

type config = {
  breaker_threshold : int;
      (** consecutive decoder-family faults that open the breaker *)
  breaker_cooldown : int;
      (** guarded calls short-circuited while open before a half-open
          probe is allowed; counted in calls, not seconds, so tests are
          deterministic *)
  max_retries : int;  (** extra attempts per guarded call *)
  backoff_base_s : float;
  backoff_max_s : float;
  func_deadline_s : float;  (** per-function wall-clock budget *)
  jitter_seed : int;
}

val default_config : config

type breaker =
  | Closed of int  (** consecutive decoder-family faults so far *)
  | Open of int  (** guarded calls left before a half-open probe *)
  | Half_open  (** next guarded call is a single probe *)

type stats = {
  mutable sup_functions : int;
  mutable sup_retried : int;  (** backoff retries performed *)
  mutable sup_breaker_opened : int;  (** transitions into [Open] *)
  mutable sup_breaker_skips : int;  (** calls short-circuited while open *)
  mutable sup_deadline_hits : int;
}

type t

val create : ?now:(unit -> float) -> ?sleep:(float -> unit) -> config -> t
(** [now] defaults to the monotonic clock (seconds); [sleep] to
    [Unix.sleepf]. Both are injectable so tests run on a virtual
    clock. *)

val config : t -> config
val stats : t -> stats
val breaker_state : t -> breaker

val fork : ?index:int -> t -> t
(** Worker-private copy for one domain: same config, clock and sleep
    hook, fresh stats, breaker and deadline. A supervisor carries
    mutable per-function state and must never be shared across domains.

    [index] (default 0) selects the fork's jitter stream: the base seed
    is mixed with the domain index, so every worker's backoff schedule
    is reproducible across runs with equal seeds while distinct workers
    stay decorrelated (equal seeds would retry in lock-step — a
    thundering herd against the decoder). *)

val absorb : t -> t -> unit
(** [absorb parent child] folds a forked supervisor's stats back into
    [parent]; call after joining the worker domain. *)

val set_budget : t -> float option -> unit
(** Override the per-function wall-clock budget for subsequent
    {!start_function} calls ([None] restores [func_deadline_s]) — how
    the serving layer applies a per-request deadline without rebuilding
    the supervisor. Sticky until changed; only the owning domain may
    call it. *)

val start_function : t -> string -> unit
(** Arm the deadline: the named function's budget starts now. *)

val end_function : t -> unit
(** Disarm the deadline. *)

val backoff_delay : t -> int -> float
(** [backoff_delay t attempt] is [min backoff_max_s (base * 2^attempt)]
    scaled by a jitter factor in [0.75, 1.25) drawn from the seeded
    generator — deterministic across runs with equal seeds. *)

val guard : t -> (unit -> 'a) -> 'a
(** Run a decoder call under supervision. Raises
    [Fault (Deadline_exceeded _)] when the armed budget is spent,
    [Fault (Breaker_open _)] when the breaker is open (the call is
    never made), and otherwise retries retryable faults up to
    [max_retries] times with backoff before re-raising. A success in
    half-open state closes the breaker; a failure re-opens it. *)
