type t =
  | Decoder_failure of { fname : string; stage : string; message : string }
  | Nan_score of { fname : string; detail : string }
  | Corpus_corruption of { group : string; detail : string }
  | Descfile_corruption of { path : string; detail : string }
  | Interp_fuel_exhausted of { fuel : int }
  | Sim_fuel_exhausted of { fuel : int }
  | Sim_trap of { message : string }
  | Bounds_error of { what : string; index : int; length : int }
  | Stage_failure of { stage : string; message : string }
  | Deadline_exceeded of { fname : string; budget_ms : int }
  | Breaker_open of { fname : string; failures : int }
  | Record_oversize of { where : string; bytes : int; limit : int }
  | Cache_corruption of { key : string; detail : string }
  | Shard_failure of { shard : string; detail : string }

exception Fault of t

type cls =
  | Cdecoder
  | Cscore
  | Ccorpus
  | Cdescfile
  | Cinterp_fuel
  | Csim_fuel
  | Csim_trap
  | Cbounds
  | Cstage
  | Cdeadline
  | Cbreaker
  | Coversize
  | Ccache
  | Cshard

let all_classes =
  [
    Cdecoder;
    Cscore;
    Ccorpus;
    Cdescfile;
    Cinterp_fuel;
    Csim_fuel;
    Csim_trap;
    Cbounds;
    Cstage;
    Cdeadline;
    Cbreaker;
    Coversize;
    Ccache;
    Cshard;
  ]

let cls_of = function
  | Decoder_failure _ -> Cdecoder
  | Nan_score _ -> Cscore
  | Corpus_corruption _ -> Ccorpus
  | Descfile_corruption _ -> Cdescfile
  | Interp_fuel_exhausted _ -> Cinterp_fuel
  | Sim_fuel_exhausted _ -> Csim_fuel
  | Sim_trap _ -> Csim_trap
  | Bounds_error _ -> Cbounds
  | Stage_failure _ -> Cstage
  | Deadline_exceeded _ -> Cdeadline
  | Breaker_open _ -> Cbreaker
  | Record_oversize _ -> Coversize
  | Cache_corruption _ -> Ccache
  | Shard_failure _ -> Cshard

let cls_name = function
  | Cdecoder -> "decoder-failure"
  | Cscore -> "nan-score"
  | Ccorpus -> "corpus-corruption"
  | Cdescfile -> "descfile-corruption"
  | Cinterp_fuel -> "interp-fuel"
  | Csim_fuel -> "sim-fuel"
  | Csim_trap -> "sim-trap"
  | Cbounds -> "bounds"
  | Cstage -> "stage-failure"
  | Cdeadline -> "deadline"
  | Cbreaker -> "breaker-open"
  | Coversize -> "record-oversize"
  | Ccache -> "cache-corruption"
  | Cshard -> "shard-failure"

let to_string = function
  | Decoder_failure { fname; stage; message } ->
      Printf.sprintf "decoder-failure[%s/%s]: %s" fname stage message
  | Nan_score { fname; detail } -> Printf.sprintf "nan-score[%s]: %s" fname detail
  | Corpus_corruption { group; detail } ->
      Printf.sprintf "corpus-corruption[%s]: %s" group detail
  | Descfile_corruption { path; detail } ->
      Printf.sprintf "descfile-corruption[%s]: %s" path detail
  | Interp_fuel_exhausted { fuel } ->
      Printf.sprintf "interp-fuel: exhausted budget of %d steps" fuel
  | Sim_fuel_exhausted { fuel } ->
      Printf.sprintf "sim-fuel: exhausted budget of %d retired instructions" fuel
  | Sim_trap { message } -> Printf.sprintf "sim-trap: %s" message
  | Bounds_error { what; index; length } ->
      Printf.sprintf "bounds[%s]: index %d outside 0..%d" what index (length - 1)
  | Stage_failure { stage; message } ->
      Printf.sprintf "stage-failure[%s]: %s" stage message
  | Deadline_exceeded { fname; budget_ms } ->
      Printf.sprintf "deadline[%s]: %d ms function budget exhausted" fname
        budget_ms
  | Breaker_open { fname; failures } ->
      Printf.sprintf
        "breaker-open[%s]: decoder circuit open after %d consecutive failures"
        fname failures
  | Record_oversize { where; bytes; limit } ->
      Printf.sprintf "record-oversize[%s]: %d-byte record exceeds the %d-byte \
                      limit" where bytes limit
  | Cache_corruption { key; detail } ->
      Printf.sprintf "cache-corruption[%s]: %s" key detail
  | Shard_failure { shard; detail } ->
      Printf.sprintf "shard-failure[%s]: %s" shard detail

(* Wire representation: constructor tag followed by its payload fields,
   consumed by the journal and the report serializer. *)
let to_fields = function
  | Decoder_failure { fname; stage; message } ->
      [ "decoder-failure"; fname; stage; message ]
  | Nan_score { fname; detail } -> [ "nan-score"; fname; detail ]
  | Corpus_corruption { group; detail } -> [ "corpus-corruption"; group; detail ]
  | Descfile_corruption { path; detail } ->
      [ "descfile-corruption"; path; detail ]
  | Interp_fuel_exhausted { fuel } -> [ "interp-fuel"; string_of_int fuel ]
  | Sim_fuel_exhausted { fuel } -> [ "sim-fuel"; string_of_int fuel ]
  | Sim_trap { message } -> [ "sim-trap"; message ]
  | Bounds_error { what; index; length } ->
      [ "bounds"; what; string_of_int index; string_of_int length ]
  | Stage_failure { stage; message } -> [ "stage-failure"; stage; message ]
  | Deadline_exceeded { fname; budget_ms } ->
      [ "deadline"; fname; string_of_int budget_ms ]
  | Breaker_open { fname; failures } ->
      [ "breaker-open"; fname; string_of_int failures ]
  | Record_oversize { where; bytes; limit } ->
      [ "record-oversize"; where; string_of_int bytes; string_of_int limit ]
  | Cache_corruption { key; detail } -> [ "cache-corruption"; key; detail ]
  | Shard_failure { shard; detail } -> [ "shard-failure"; shard; detail ]

let of_fields = function
  | [ "decoder-failure"; fname; stage; message ] ->
      Some (Decoder_failure { fname; stage; message })
  | [ "nan-score"; fname; detail ] -> Some (Nan_score { fname; detail })
  | [ "corpus-corruption"; group; detail ] ->
      Some (Corpus_corruption { group; detail })
  | [ "descfile-corruption"; path; detail ] ->
      Some (Descfile_corruption { path; detail })
  | [ "interp-fuel"; fuel ] ->
      Option.map (fun fuel -> Interp_fuel_exhausted { fuel }) (int_of_string_opt fuel)
  | [ "sim-fuel"; fuel ] ->
      Option.map (fun fuel -> Sim_fuel_exhausted { fuel }) (int_of_string_opt fuel)
  | [ "sim-trap"; message ] -> Some (Sim_trap { message })
  | [ "bounds"; what; index; length ] -> (
      match (int_of_string_opt index, int_of_string_opt length) with
      | Some index, Some length -> Some (Bounds_error { what; index; length })
      | _ -> None)
  | [ "stage-failure"; stage; message ] -> Some (Stage_failure { stage; message })
  | [ "deadline"; fname; budget ] ->
      Option.map
        (fun budget_ms -> Deadline_exceeded { fname; budget_ms })
        (int_of_string_opt budget)
  | [ "breaker-open"; fname; failures ] ->
      Option.map
        (fun failures -> Breaker_open { fname; failures })
        (int_of_string_opt failures)
  | [ "record-oversize"; where; bytes; limit ] -> (
      match (int_of_string_opt bytes, int_of_string_opt limit) with
      | Some bytes, Some limit -> Some (Record_oversize { where; bytes; limit })
      | _ -> None)
  | [ "cache-corruption"; key; detail ] -> Some (Cache_corruption { key; detail })
  | [ "shard-failure"; shard; detail ] -> Some (Shard_failure { shard; detail })
  | _ -> None

let nth ~what l i =
  let length = List.length l in
  if i < 0 || i >= length then
    raise (Fault (Bounds_error { what; index = i; length }))
  else List.nth l i
