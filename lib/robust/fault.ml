type t =
  | Decoder_failure of { fname : string; stage : string; message : string }
  | Nan_score of { fname : string; detail : string }
  | Corpus_corruption of { group : string; detail : string }
  | Descfile_corruption of { path : string; detail : string }
  | Interp_fuel_exhausted of { fuel : int }
  | Sim_fuel_exhausted of { fuel : int }
  | Sim_trap of { message : string }
  | Bounds_error of { what : string; index : int; length : int }
  | Stage_failure of { stage : string; message : string }

exception Fault of t

type cls =
  | Cdecoder
  | Cscore
  | Ccorpus
  | Cdescfile
  | Cinterp_fuel
  | Csim_fuel
  | Csim_trap
  | Cbounds
  | Cstage

let all_classes =
  [
    Cdecoder;
    Cscore;
    Ccorpus;
    Cdescfile;
    Cinterp_fuel;
    Csim_fuel;
    Csim_trap;
    Cbounds;
    Cstage;
  ]

let cls_of = function
  | Decoder_failure _ -> Cdecoder
  | Nan_score _ -> Cscore
  | Corpus_corruption _ -> Ccorpus
  | Descfile_corruption _ -> Cdescfile
  | Interp_fuel_exhausted _ -> Cinterp_fuel
  | Sim_fuel_exhausted _ -> Csim_fuel
  | Sim_trap _ -> Csim_trap
  | Bounds_error _ -> Cbounds
  | Stage_failure _ -> Cstage

let cls_name = function
  | Cdecoder -> "decoder-failure"
  | Cscore -> "nan-score"
  | Ccorpus -> "corpus-corruption"
  | Cdescfile -> "descfile-corruption"
  | Cinterp_fuel -> "interp-fuel"
  | Csim_fuel -> "sim-fuel"
  | Csim_trap -> "sim-trap"
  | Cbounds -> "bounds"
  | Cstage -> "stage-failure"

let to_string = function
  | Decoder_failure { fname; stage; message } ->
      Printf.sprintf "decoder-failure[%s/%s]: %s" fname stage message
  | Nan_score { fname; detail } -> Printf.sprintf "nan-score[%s]: %s" fname detail
  | Corpus_corruption { group; detail } ->
      Printf.sprintf "corpus-corruption[%s]: %s" group detail
  | Descfile_corruption { path; detail } ->
      Printf.sprintf "descfile-corruption[%s]: %s" path detail
  | Interp_fuel_exhausted { fuel } ->
      Printf.sprintf "interp-fuel: exhausted budget of %d steps" fuel
  | Sim_fuel_exhausted { fuel } ->
      Printf.sprintf "sim-fuel: exhausted budget of %d retired instructions" fuel
  | Sim_trap { message } -> Printf.sprintf "sim-trap: %s" message
  | Bounds_error { what; index; length } ->
      Printf.sprintf "bounds[%s]: index %d outside 0..%d" what index (length - 1)
  | Stage_failure { stage; message } ->
      Printf.sprintf "stage-failure[%s]: %s" stage message

let nth ~what l i =
  let length = List.length l in
  if i < 0 || i >= length then
    raise (Fault (Bounds_error { what; index = i; length }))
  else List.nth l i
