type event = { ev_stage : string; ev_fault : Fault.t; ev_backtrace : string }

type degradation = {
  d_fname : string;
  d_col : int;
  d_line : int;
  d_inst : int;
  d_level : Degrade.level;
}

type t = {
  mutable events : event list;  (* newest first *)
  mutable degradations : degradation list;
  mutable subscribers : (int * (event -> unit)) list;
  mutable next_sub : int;
  lock : Mutex.t;
      (* guards all four fields so recording is safe from parallel
         generation domains; held across subscriber notification, which
         also serializes journal fault records behind one event order *)
}

let create () =
  {
    events = [];
    degradations = [];
    subscribers = [];
    next_sub = 0;
    lock = Mutex.create ();
  }

let record ?(backtrace = "") r ~stage fault =
  let ev = { ev_stage = stage; ev_fault = fault; ev_backtrace = backtrace } in
  Mutex.protect r.lock (fun () ->
      r.events <- ev :: r.events;
      List.iter (fun (_, f) -> f ev) r.subscribers)

let subscribe r f =
  Mutex.protect r.lock (fun () ->
      let id = r.next_sub in
      r.next_sub <- id + 1;
      r.subscribers <- (id, f) :: r.subscribers;
      fun () ->
        Mutex.protect r.lock (fun () ->
            r.subscribers <- List.filter (fun (i, _) -> i <> id) r.subscribers))

let record_degradation r ~fname ~col ~line ~inst level =
  if level <> Degrade.Primary then
    Mutex.protect r.lock (fun () ->
        r.degradations <-
          { d_fname = fname; d_col = col; d_line = line; d_inst = inst; d_level = level }
          :: r.degradations)

let events r = List.rev r.events
let faults r = List.rev_map (fun e -> e.ev_fault) r.events
let total r = List.length r.events

let count_class r c =
  List.length (List.filter (fun e -> Fault.cls_of e.ev_fault = c) r.events)

let by_class r =
  List.filter_map
    (fun c ->
      match count_class r c with 0 -> None | n -> Some (c, n))
    Fault.all_classes

let degradations r = List.rev r.degradations
let degraded_count r = List.length r.degradations

let count_level r l =
  List.length (List.filter (fun d -> d.d_level = l) r.degradations)

let by_level r =
  List.filter_map
    (fun l ->
      match count_level r l with 0 -> None | n -> Some (l, n))
    Degrade.all

let summary r =
  let fault_part =
    match by_class r with
    | [] -> "no faults"
    | counts ->
        String.concat ", "
          (List.map
             (fun (c, n) -> Printf.sprintf "%s:%d" (Fault.cls_name c) n)
             counts)
  in
  let degr_part =
    match by_level r with
    | [] -> "no degraded statements"
    | counts ->
        String.concat ", "
          (List.map
             (fun (l, n) -> Printf.sprintf "%s:%d" (Degrade.name l) n)
             counts)
  in
  Printf.sprintf "faults: %s; degradation: %s" fault_part degr_part

(* ------------------------------------------------------------------ *)
(* Serialization: checksummed wire lines, one per event/degradation, in
   observation order. Subscribers are runtime-only and not persisted.   *)

let serialize r =
  let ev_line e =
    Wire.encode_line
      ("event" :: e.ev_stage :: e.ev_backtrace :: Fault.to_fields e.ev_fault)
  in
  let degr_line d =
    Wire.encode_line
      [
        "degr";
        d.d_fname;
        string_of_int d.d_col;
        string_of_int d.d_line;
        string_of_int d.d_inst;
        Degrade.name d.d_level;
      ]
  in
  String.concat "\n"
    (List.map ev_line (events r) @ List.map degr_line (degradations r))
  ^ "\n"

let parse s =
  let r = create () in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' s)
  in
  let rec go = function
    | [] -> Ok r
    | line :: rest -> (
        match Wire.decode_line line with
        | None -> Error (Printf.sprintf "corrupt report line: %S" line)
        | Some ("event" :: stage :: backtrace :: fault_fields) -> (
            match Fault.of_fields fault_fields with
            | Some fault ->
                record ~backtrace r ~stage fault;
                go rest
            | None -> Error (Printf.sprintf "unknown fault record: %S" line))
        | Some [ "degr"; fname; col; line_; inst; level ] -> (
            match
              ( int_of_string_opt col,
                int_of_string_opt line_,
                int_of_string_opt inst,
                Degrade.of_name level )
            with
            | Some col, Some line_, Some inst, Some level ->
                record_degradation r ~fname ~col ~line:line_ ~inst level;
                go rest
            | _ -> Error (Printf.sprintf "bad degradation record: %S" line))
        | Some _ -> Error (Printf.sprintf "unknown report record: %S" line))
  in
  go lines

let equal a b =
  List.equal
    (fun x y ->
      x.ev_stage = y.ev_stage && x.ev_fault = y.ev_fault
      && x.ev_backtrace = y.ev_backtrace)
    (events a) (events b)
  && List.equal (fun (x : degradation) y -> x = y) (degradations a)
       (degradations b)
