type event = { ev_stage : string; ev_fault : Fault.t }

type degradation = {
  d_fname : string;
  d_col : int;
  d_line : int;
  d_inst : int;
  d_level : Degrade.level;
}

type t = {
  mutable events : event list;  (* newest first *)
  mutable degradations : degradation list;
}

let create () = { events = []; degradations = [] }

let record r ~stage fault =
  r.events <- { ev_stage = stage; ev_fault = fault } :: r.events

let record_degradation r ~fname ~col ~line ~inst level =
  if level <> Degrade.Primary then
    r.degradations <-
      { d_fname = fname; d_col = col; d_line = line; d_inst = inst; d_level = level }
      :: r.degradations

let events r = List.rev r.events
let faults r = List.rev_map (fun e -> e.ev_fault) r.events
let total r = List.length r.events

let count_class r c =
  List.length (List.filter (fun e -> Fault.cls_of e.ev_fault = c) r.events)

let by_class r =
  List.filter_map
    (fun c ->
      match count_class r c with 0 -> None | n -> Some (c, n))
    Fault.all_classes

let degradations r = List.rev r.degradations
let degraded_count r = List.length r.degradations

let count_level r l =
  List.length (List.filter (fun d -> d.d_level = l) r.degradations)

let by_level r =
  List.filter_map
    (fun l ->
      match count_level r l with 0 -> None | n -> Some (l, n))
    Degrade.all

let summary r =
  let fault_part =
    match by_class r with
    | [] -> "no faults"
    | counts ->
        String.concat ", "
          (List.map
             (fun (c, n) -> Printf.sprintf "%s:%d" (Fault.cls_name c) n)
             counts)
  in
  let degr_part =
    match by_level r with
    | [] -> "no degraded statements"
    | counts ->
        String.concat ", "
          (List.map
             (fun (l, n) -> Printf.sprintf "%s:%d" (Degrade.name l) n)
             counts)
  in
  Printf.sprintf "faults: %s; degradation: %s" fault_part degr_part
