(** Run report: every fault a run observed and every statement that was
    generated at a degraded rung. The fault-injection invariants check
    against this record — each injected fault must appear here. *)

type event = { ev_stage : string; ev_fault : Fault.t }

type degradation = {
  d_fname : string;
  d_col : int;
  d_line : int;
  d_inst : int;
  d_level : Degrade.level;
}

type t

val create : unit -> t

val record : t -> stage:string -> Fault.t -> unit

val record_degradation :
  t -> fname:string -> col:int -> line:int -> inst:int -> Degrade.level -> unit
(** No-op for {!Degrade.Primary}. *)

val events : t -> event list
(** In observation order. *)

val faults : t -> Fault.t list
val total : t -> int
val count_class : t -> Fault.cls -> int
val by_class : t -> (Fault.cls * int) list
(** Only classes with a non-zero count. *)

val degradations : t -> degradation list
val degraded_count : t -> int
val count_level : t -> Degrade.level -> int
val by_level : t -> (Degrade.level * int) list

val summary : t -> string
