(** Run report: every fault a run observed and every statement that was
    generated at a degraded rung. The fault-injection invariants check
    against this record — each injected fault must appear here.

    Reports serialize to the checksummed wire format (and back) so a
    durable run can persist its fault history next to the journal.

    Recording, degradation recording and subscription are mutex-guarded:
    one report may be shared by parallel generation domains. The lock is
    held across subscriber notification, so subscribers see events in
    one serialized order (and must not call back into this report). *)

type event = {
  ev_stage : string;
  ev_fault : Fault.t;
  ev_backtrace : string;
      (** raw backtrace captured where the original exception was
          wrapped into the fault; [""] when backtraces are off *)
}

type degradation = {
  d_fname : string;
  d_col : int;
  d_line : int;
  d_inst : int;
  d_level : Degrade.level;
}

type t

val create : unit -> t

val record : ?backtrace:string -> t -> stage:string -> Fault.t -> unit

val subscribe : t -> (event -> unit) -> unit -> unit
(** [subscribe r f] calls [f] on every subsequently recorded event (the
    journal uses this to write fault records ahead). Returns a canceller;
    call it before the sink goes away. *)

val record_degradation :
  t -> fname:string -> col:int -> line:int -> inst:int -> Degrade.level -> unit
(** No-op for {!Degrade.Primary}. *)

val events : t -> event list
(** In observation order. *)

val faults : t -> Fault.t list
val total : t -> int
val count_class : t -> Fault.cls -> int
val by_class : t -> (Fault.cls * int) list
(** Only classes with a non-zero count. *)

val degradations : t -> degradation list
val degraded_count : t -> int
val count_level : t -> Degrade.level -> int
val by_level : t -> (Degrade.level * int) list

val summary : t -> string

val serialize : t -> string
(** Checksummed wire lines, one per event/degradation, in observation
    order. Subscribers are runtime-only state and are not persisted. *)

val parse : string -> (t, string) result
(** Inverse of {!serialize}; [Error] names the first corrupt line. *)

val equal : t -> t -> bool
(** Event and degradation lists are equal (order-sensitive). *)
