(** Append-only write-ahead log of a generation run.

    Every statement a run produces is journaled {e before} the run moves
    on, so a crash, OOM-kill or deadline anywhere in the run loses at
    most the function in flight. Each record is one checksummed wire
    line; the reader recovers the longest valid prefix of a torn or
    truncated log instead of failing, and resume compacts the file back
    to that prefix via an atomic tmp-file+rename.

    Journal replay — not the {!Checkpoint} snapshot — is the source of
    truth on resume: a function counts as completed only when all its
    statement records are followed by a matching [Func_end]. *)

type stmt = {
  j_fname : string;
  j_col : int;
  j_line : int;
  j_inst : int;
  j_score : float;
  j_tokens : string list;
  j_shape_ok : bool;
  j_level : Degrade.level;
}
(** Per-statement result, mirroring [Generate.gen_stmt] plus its owning
    function; scores are persisted as hex floats so replay is
    bit-identical. *)

type record =
  | Header of { version : int; target : string; fingerprint : string }
      (** first record of every journal; [fingerprint] ties the log to
          one prepared pipeline + target so resume cannot mix runs *)
  | Func_begin of string
      (** generation of the named function started (invalidates any
          earlier partial statement records for it) *)
  | Stmt of stmt
  | Func_end of { fname : string; confidence : float; n_stmts : int }
      (** the named function completed with this many statements *)
  | Fault_ev of { stage : string; fault : Fault.t; backtrace : string }
      (** a fault observed mid-run, written ahead like everything else *)

val version : int

val encode : record -> string
(** One wire line, no trailing newline. *)

val decode : string -> record option
(** [None] on checksum mismatch, unknown tag, or bad payload — never an
    exception. *)

(** {1 Writing} *)

type writer

exception Killed of int
(** Raised by {!append} when a [kill_at] budget is exhausted — the
    simulated hard crash of [vega-cli faultcheck --kill-at]. The payload
    is the number of records written by this writer. *)

val create : ?kill_at:int -> path:string -> record -> writer
(** Start a fresh journal holding only the given header record, written
    atomically (tmp file + rename), then opened for appending. *)

val open_append : ?kill_at:int -> path:string -> unit -> writer
(** Re-open an existing journal for appending (the resume path). *)

val append : writer -> record -> unit
(** Write one record and flush it. Mutex-guarded, so parallel generation
    domains may share one writer; replay keys pending statements by
    function name, so interleaved records from different functions
    resume correctly. With [kill_at = k], the [k]-th appended record is
    written and flushed first, then {!Killed} is raised: the record the
    crash interrupts is always durable, the run simply never gets to act
    on it. A killed writer stays dead — appends from any domain keep
    raising {!Killed} with the same payload. *)

val written : writer -> int
(** Records appended through this writer. *)

val close : writer -> unit

(** {1 Reading and recovery} *)

type recovery = {
  r_records : record list;  (** longest valid prefix, in write order *)
  r_torn : bool;
      (** the file held trailing bytes that failed checksum or framing —
          a record torn mid-write *)
}

val read : ?report:Report.t -> ?limit:int -> path:string -> unit -> recovery
(** Never raises on corrupt contents; a missing file reads as empty.
    Lines are read through a bounded accumulator: one longer than
    [limit] (default {!Wire.max_record_bytes}) is never fully allocated
    — reading stops at the preceding record, the tail counts as torn,
    and a [Record_oversize] fault is recorded in [report]. *)

val rewrite : path:string -> record list -> unit
(** Atomically replace the journal with exactly these records (tmp file
    + rename) — used to compact a torn tail away before resuming. *)

val tear : path:string -> unit
(** Destroy the second half of the final record in place, simulating a
    crash mid-write (test and [faultcheck] helper). *)

(** {1 Replay} *)

type completed = {
  c_fname : string;
  c_confidence : float;
  c_stmts : stmt list;  (** in generation order *)
}

val replay : record list -> record option * completed list
(** [(header, completed)] where [header] is the leading [Header] record
    if present, and [completed] lists every function whose statement
    records are sealed by a consistent [Func_end], in completion order.
    Partial trails (statements without a seal, or a seal whose statement
    count disagrees) are dropped — those functions regenerate on
    resume. *)
