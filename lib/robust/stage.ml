let classify ~stage = function
  | Fault.Fault f -> f
  | Vega_srclang.Interp.Fuel_exhausted fuel -> Fault.Interp_fuel_exhausted { fuel }
  | Vega_srclang.Interp.Runtime_error m ->
      Fault.Stage_failure { stage; message = "interp: " ^ m }
  | exn -> Fault.Stage_failure { stage; message = Printexc.to_string exn }

let protect ?report ~stage f =
  match f () with
  | v -> Ok v
  | exception ((Stack_overflow | Out_of_memory) as fatal) -> raise fatal
  | exception exn ->
      let fault = classify ~stage exn in
      Option.iter (fun r -> Report.record r ~stage fault) report;
      Error fault
