let classify ~stage = function
  | Fault.Fault f -> f
  | Vega_srclang.Interp.Fuel_exhausted fuel -> Fault.Interp_fuel_exhausted { fuel }
  | Vega_srclang.Interp.Runtime_error m ->
      Fault.Stage_failure { stage; message = "interp: " ^ m }
  | exn -> Fault.Stage_failure { stage; message = Printexc.to_string exn }

let protect ?report ~stage f =
  match f () with
  | v -> Ok v
  | exception ((Stack_overflow | Out_of_memory | Journal.Killed _) as fatal) ->
      (* keep the origin frame on the fatal path too *)
      Printexc.raise_with_backtrace fatal (Printexc.get_raw_backtrace ())
  | exception exn ->
      (* capture the raw backtrace before any further allocation can
         clobber it: fault records must carry the origin of the wrapped
         exception, not this wrapper frame *)
      let backtrace =
        Printexc.raw_backtrace_to_string (Printexc.get_raw_backtrace ())
      in
      let fault = classify ~stage exn in
      Option.iter (fun r -> Report.record ~backtrace r ~stage fault) report;
      Error fault
