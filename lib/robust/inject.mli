(** Deterministic, seeded fault injection.

    An injector carries a plan (seed, fault kind, firing period) and two
    counters: opportunities seen and faults actually injected. Firing is a
    pure function of the plan and the opportunity index, so a run replays
    bit-identically under the same seed — the invariant "every injected
    fault appears in the run report" is checkable by comparing
    {!injected} against the report. *)

type kind =
  | Decoder_raise  (** decoder raises a typed fault *)
  | Decoder_nan  (** decoder returns NaN token probabilities *)
  | Decoder_garbage  (** decoder returns infinite token probabilities *)
  | Corpus_mangle  (** a reference impl's target renamed to garbage *)
  | Descfile_garbage  (** description files overwritten with binary junk *)
  | Decoder_stall  (** decoder burns wall clock before answering *)
  | Queue_storm  (** a seeded burst of concurrent requests *)
  | Request_kill  (** hard kill mid-request (journal [kill_at]) *)
  | Register_mangle  (** emitted-assembly lines deleted (see {!mangle_asm}) *)
  | Shard_kill  (** one serving shard hard-killed mid-storm *)
  | Shard_stall  (** a shard endpoint stalls, then fails *)
  | Cache_corrupt  (** one byte of a result-cache entry flipped on disk *)

type t

val create : ?every:int -> seed:int -> kind -> t
(** Fire on every [every]-th opportunity (default 1 = always),
    phase-shifted by [seed]. *)

val injected : t -> int
val opportunities : t -> int

val fire : t -> bool
(** Count one opportunity; [true] when this one is selected for
    injection. *)

val wrap_decoder : t -> ('a -> string list * float array) -> 'a -> string list * float array
(** Wrap any decoder-shaped function with the planned decoder fault;
    non-decoder kinds pass through untouched. *)

val mangle_asm : t -> candidate:(string -> bool) -> string -> string
(** [Register_mangle] helper: delete every fired [candidate] line from
    an assembly listing (one opportunity per candidate line). The
    selector keeps this library backend-agnostic — callers pass e.g.
    {!Vega_absint}'s "restores a callee-saved register" predicate to
    seed calling-convention defects the semantic verifier must catch.
    Other kinds return the listing unchanged. *)

val wrap_stalling_decoder :
  t ->
  stall:(unit -> unit) ->
  ('a -> string list * float array) ->
  'a ->
  string list * float array
(** [Decoder_stall] wrapper: on each fired opportunity call [stall ()]
    (wall-clock sleep or a virtual-clock advance) before decoding. The
    decode still succeeds — the fault surfaces as the per-request
    deadline tripping on the next supervised call. Other kinds never
    stall. *)

val storm_order : t -> int -> int list
(** [Queue_storm] helper: a seeded permutation of [0 .. n-1] — the
    submission order for an [n]-request overload burst. Pure in the
    plan's seed, so a bounded queue's accept/reject decisions against it
    replay bit-identically. *)

val kill_offset : t -> records:int -> int
(** [Request_kill] helper: a deterministic journal-record offset to arm
    [kill_at] with — strictly after the header, at most the final
    record, a pure function of the seed. *)

val shard_victim : t -> shards:int -> int
(** [Shard_kill] helper: the index of the shard to kill — a pure
    function of the seed. The caller arms that shard's journal
    [kill_at] (via {!kill_offset}) so the kill is a real mid-write
    crash. *)

val wrap_stalling_shard :
  t -> shard:string -> stall:(unit -> unit) -> ('a -> 'b) -> 'a -> 'b
(** [Shard_stall] wrapper around a shard request endpoint: on each fired
    opportunity call [stall ()] and then raise
    [Fault (Shard_failure _)] — from the router's seat a stalled shard
    is indistinguishable from a dead one once its patience runs out.
    Other kinds pass through. *)

val corrupt_cache_entry : t -> path:string -> int option
(** [Cache_corrupt] helper: flip one seeded byte of the file at [path]
    in place; returns the flipped offset, [None] when the kind doesn't
    apply or the file is empty/unreadable. *)

val corrupt_corpus : t -> Vega_corpus.Corpus.t -> Vega_corpus.Corpus.t
(** Rename the first implementation's target of each selected multi-impl
    group to an unregistered name. Structural corruption the [prepare]
    validation must catch; single-impl groups are left alone so groups
    lose coverage, not existence. *)

val corrupt_descfiles : t -> Vega_tdlang.Vfs.t -> target:string -> string list
(** Overwrite selected description files of [target] with binary garbage
    in place; returns the corrupted paths. *)

val looks_corrupted : string -> bool
(** Heuristic used by {!scan_vfs}: NUL or 0xFF bytes in file contents. *)

val scan_vfs : ?report:Report.t -> Vega_tdlang.Vfs.t -> target:string -> Fault.t list
(** Scan [target]'s description files, returning (and recording) one
    [Descfile_corruption] per corrupted file. *)
