type stmt = {
  j_fname : string;
  j_col : int;
  j_line : int;
  j_inst : int;
  j_score : float;
  j_tokens : string list;
  j_shape_ok : bool;
  j_level : Degrade.level;
}

type record =
  | Header of { version : int; target : string; fingerprint : string }
  | Func_begin of string
  | Stmt of stmt
  | Func_end of { fname : string; confidence : float; n_stmts : int }
  | Fault_ev of { stage : string; fault : Fault.t; backtrace : string }

let version = 1

let encode = function
  | Header { version; target; fingerprint } ->
      Wire.encode_line [ "header"; string_of_int version; target; fingerprint ]
  | Func_begin fname -> Wire.encode_line [ "begin"; fname ]
  | Stmt s ->
      Wire.encode_line
        ("stmt" :: s.j_fname :: string_of_int s.j_col :: string_of_int s.j_line
        :: string_of_int s.j_inst
        :: Wire.float_to_field s.j_score
        :: Wire.bool_to_field s.j_shape_ok
        :: Degrade.name s.j_level :: s.j_tokens)
  | Func_end { fname; confidence; n_stmts } ->
      Wire.encode_line
        [ "end"; fname; Wire.float_to_field confidence; string_of_int n_stmts ]
  | Fault_ev { stage; fault; backtrace } ->
      Wire.encode_line ("fault" :: stage :: backtrace :: Fault.to_fields fault)

let decode line =
  match Wire.decode_line line with
  | None -> None
  | Some fields -> (
      match fields with
      | [ "header"; version; target; fingerprint ] ->
          Option.map
            (fun version -> Header { version; target; fingerprint })
            (Wire.int_of_field version)
      | [ "begin"; fname ] -> Some (Func_begin fname)
      | "stmt" :: fname :: col :: line :: inst :: score :: shape_ok :: level
        :: tokens -> (
          match
            ( Wire.int_of_field col,
              Wire.int_of_field line,
              Wire.int_of_field inst,
              Wire.float_of_field score,
              Wire.bool_of_field shape_ok,
              Degrade.of_name level )
          with
          | Some j_col, Some j_line, Some j_inst, Some j_score, Some j_shape_ok,
            Some j_level ->
              Some
                (Stmt
                   {
                     j_fname = fname;
                     j_col;
                     j_line;
                     j_inst;
                     j_score;
                     j_tokens = tokens;
                     j_shape_ok;
                     j_level;
                   })
          | _ -> None)
      | [ "end"; fname; confidence; n_stmts ] -> (
          match (Wire.float_of_field confidence, Wire.int_of_field n_stmts) with
          | Some confidence, Some n_stmts ->
              Some (Func_end { fname; confidence; n_stmts })
          | _ -> None)
      | "fault" :: stage :: backtrace :: fault_fields ->
          Option.map
            (fun fault -> Fault_ev { stage; fault; backtrace })
            (Fault.of_fields fault_fields)
      | _ -> None)

(* ------------------------------------------------------------------ *)
(* Writing                                                              *)

type writer = {
  oc : out_channel;
  kill_at : int option;
  mutable count : int;
  mutable killed : bool;
  lock : Mutex.t;
      (* serializes appends from parallel generation domains; released
         on [Killed] so the crash can unwind through every domain *)
}

exception Killed of int

let wrote w =
  w.count <- w.count + 1;
  match w.kill_at with
  | Some k when w.count >= k ->
      (* the interrupted record is durable — flush happened before this
         point — but the run never gets to act on it *)
      w.killed <- true;
      close_out_noerr w.oc;
      raise (Killed w.count)
  | _ -> ()

let create ?kill_at ~path header =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc (encode header ^ "\n");
  close_out oc;
  Sys.rename tmp path;
  let oc = open_out_gen [ Open_append; Open_wronly; Open_binary ] 0o644 path in
  let w = { oc; kill_at; count = 0; killed = false; lock = Mutex.create () } in
  wrote w;
  w

let open_append ?kill_at ~path () =
  (* a valid final record may have lost only its newline to a crash;
     re-frame before appending so it is not fused with the next one *)
  let needs_nl =
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let r =
      if n = 0 then false
      else begin
        seek_in ic (n - 1);
        input_char ic <> '\n'
      end
    in
    close_in ic;
    r
  in
  let oc = open_out_gen [ Open_append; Open_wronly; Open_binary ] 0o644 path in
  if needs_nl then output_string oc "\n";
  { oc; kill_at; count = 0; killed = false; lock = Mutex.create () }

let append w record =
  Mutex.protect w.lock (fun () ->
      (* a killed writer stays dead: any append attempted while the crash
         unwinds re-raises instead of touching the closed channel *)
      if w.killed then raise (Killed w.count);
      output_string w.oc (encode record ^ "\n");
      flush w.oc;
      wrote w)

let written w = w.count
let close w = close_out_noerr w.oc

(* ------------------------------------------------------------------ *)
(* Reading and recovery                                                 *)

type recovery = { r_records : record list; r_torn : bool }

(* Bounded line reader: accumulate bytes up to the record-size limit and
   stop dead on an oversize line instead of allocating for it. Returns
   [`Line l], [`Oversize n] (n = bytes seen before giving up, >= limit)
   or [`Eof]. An oversize line is corruption by construction — the
   journal never writes records anywhere near [Wire.max_record_bytes] —
   so the caller treats it exactly like a torn record: longest valid
   prefix wins. *)
let read_bounded_line ic ~limit =
  let buf = Buffer.create 256 in
  let rec go () =
    match input_char ic with
    | '\n' -> `Line (Buffer.contents buf)
    | c ->
        if Buffer.length buf >= limit then `Oversize (Buffer.length buf + 1)
        else begin
          Buffer.add_char buf c;
          go ()
        end
    | exception End_of_file ->
        if Buffer.length buf = 0 then `Eof else `Line (Buffer.contents buf)
  in
  go ()

let read ?report ?(limit = Wire.max_record_bytes) ~path () =
  if not (Sys.file_exists path) then { r_records = []; r_torn = false }
  else begin
    let ic = open_in_bin path in
    let oversize bytes =
      Option.iter
        (fun r ->
          Report.record r ~stage:"journal"
            (Fault.Record_oversize { where = path; bytes; limit }))
        report
    in
    let rec prefix acc =
      match read_bounded_line ic ~limit with
      | `Eof -> (List.rev acc, false)
      | `Oversize bytes ->
          oversize bytes;
          (List.rev acc, true)
      | `Line "" -> prefix acc
      | `Line line -> (
          match decode line with
          | Some r -> prefix (r :: acc)
          | None -> (List.rev acc, true))
    in
    let records, torn = prefix [] in
    close_in ic;
    { r_records = records; r_torn = torn }
  end

let rewrite ~path records =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  List.iter (fun r -> output_string oc (encode r ^ "\n")) records;
  close_out oc;
  Sys.rename tmp path

let tear ~path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let contents = really_input_string ic n in
  close_in ic;
  let stripped =
    if n > 0 && contents.[n - 1] = '\n' then String.sub contents 0 (n - 1)
    else contents
  in
  let start =
    match String.rindex_opt stripped '\n' with Some i -> i + 1 | None -> 0
  in
  let keep = start + ((String.length stripped - start + 1) / 2) in
  let oc = open_out_bin path in
  output_string oc (String.sub stripped 0 keep);
  close_out oc

(* ------------------------------------------------------------------ *)
(* Replay                                                               *)

type completed = {
  c_fname : string;
  c_confidence : float;
  c_stmts : stmt list;
}

let replay records =
  let header =
    match records with (Header _ as h) :: _ -> Some h | _ -> None
  in
  let pending : (string, stmt list) Hashtbl.t = Hashtbl.create 64 in
  let completed = ref [] in
  List.iter
    (fun r ->
      match r with
      | Header _ | Fault_ev _ -> ()
      | Func_begin fname -> Hashtbl.replace pending fname []
      | Stmt s ->
          Hashtbl.replace pending s.j_fname
            (s
            :: Option.value ~default:[] (Hashtbl.find_opt pending s.j_fname))
      | Func_end { fname; confidence; n_stmts } -> (
          match Hashtbl.find_opt pending fname with
          | Some stmts when List.length stmts = n_stmts ->
              completed :=
                {
                  c_fname = fname;
                  c_confidence = confidence;
                  c_stmts = List.rev stmts;
                }
                :: !completed;
              Hashtbl.remove pending fname
          | Some _ | None ->
              (* a seal that disagrees with its trail: drop the function,
                 resume regenerates it *)
              Hashtbl.remove pending fname))
    records;
  (header, List.rev !completed)
