module Vfs = Vega_tdlang.Vfs
module Corpus = Vega_corpus.Corpus

type kind =
  | Decoder_raise
  | Decoder_nan
  | Decoder_garbage
  | Corpus_mangle
  | Descfile_garbage
  | Decoder_stall
  | Queue_storm
  | Request_kill
  | Register_mangle
  | Shard_kill
  | Shard_stall
  | Cache_corrupt

type plan = { seed : int; kind : kind; every : int }

type t = { plan : plan; mutable opportunities : int; mutable injected : int }

let create ?(every = 1) ~seed kind =
  { plan = { seed; kind; every = max 1 every }; opportunities = 0; injected = 0 }

let injected t = t.injected
let opportunities t = t.opportunities

(* Deterministic firing: the [every]-th opportunity, phase-shifted by the
   seed so different seeds hit different statements. No wall clock, no
   global state — a plan replays identically. *)
let fire t =
  let n = t.opportunities in
  t.opportunities <- n + 1;
  let hit = (n + t.plan.seed) mod t.plan.every = 0 in
  if hit then t.injected <- t.injected + 1;
  hit

let wrap_decoder t decode fv =
  let inject =
    match t.plan.kind with
    | Decoder_raise | Decoder_nan | Decoder_garbage -> fire t
    | Corpus_mangle | Descfile_garbage | Decoder_stall | Queue_storm
    | Request_kill | Register_mangle | Shard_kill | Shard_stall
    | Cache_corrupt ->
        false
  in
  if not inject then decode fv
  else
    match t.plan.kind with
    | Decoder_raise ->
        raise
          (Fault.Fault
             (Fault.Decoder_failure
                {
                  fname = "<injected>";
                  stage = "decoder";
                  message = "injected decoder failure";
                }))
    | Decoder_nan ->
        let toks, probs = decode fv in
        (toks, Array.make (max 1 (Array.length probs)) Float.nan)
    | Decoder_garbage ->
        let toks, probs = decode fv in
        (toks, Array.make (max 1 (Array.length probs)) Float.neg_infinity)
    | Corpus_mangle | Descfile_garbage | Decoder_stall | Queue_storm
    | Request_kill | Register_mangle | Shard_kill | Shard_stall
    | Cache_corrupt ->
        assert false

(* Register-mangle: delete selected instruction lines from an emitted
   assembly listing. The selector is injected by the caller (e.g. "this
   line restores a callee-saved register") so this library stays
   backend-agnostic; firing counts one opportunity per candidate line,
   keeping the plan's replay guarantee. *)
let mangle_asm t ~candidate asm =
  match t.plan.kind with
  | Register_mangle ->
      String.split_on_char '\n' asm
      |> List.filter (fun line -> not (candidate line && fire t))
      |> String.concat "\n"
  | _ -> asm

(* ---- server-side fault classes (the vega.serve faultcheck harness) ---- *)

(* Slow-decoder stall: on every fired opportunity, burn wall clock (or a
   virtual clock — [stall] is injectable) before decoding. The decode
   itself still succeeds; the damage is the per-request deadline the
   supervisor then trips on the next guarded call. *)
let wrap_stalling_decoder t ~stall decode fv =
  (match t.plan.kind with
  | Decoder_stall -> if fire t then stall ()
  | _ -> ());
  decode fv

(* Queue-full storm: a seeded submission order for an [n]-request burst.
   The permutation is a pure function of the plan's seed, so the
   admission decisions a bounded queue makes against it replay
   bit-identically — the property the serve overload scenario checks. *)
let storm_order t n =
  let rng = Vega_util.Rng.create (t.plan.seed lxor 0x570124) in
  let order = Array.init n Fun.id in
  Vega_util.Rng.shuffle rng order;
  t.injected <- t.injected + n;
  t.opportunities <- t.opportunities + n;
  Array.to_list order

(* Mid-request kill: a deterministic journal offset to arm [kill_at]
   with, strictly after the header (offset 1) so a resume has a run to
   pick up, and at most the final record. *)
let kill_offset t ~records =
  if records <= 1 then 1
  else begin
    t.injected <- t.injected + 1;
    t.opportunities <- t.opportunities + 1;
    2 + ((t.plan.seed * 0x9E3779B9) land max_int) mod (records - 1)
  end

(* ---- router-tier fault classes (the vega.shard faultcheck harness) ---- *)

(* Shard-kill: pick the victim shard deterministically from the seed.
   The caller then arms that shard's journal [kill_at] (via
   {!kill_offset}) so the "kill" is a real mid-write crash, not a mock. *)
let shard_victim t ~shards =
  if shards <= 0 then invalid_arg "Inject.shard_victim: shards <= 0";
  t.injected <- t.injected + 1;
  t.opportunities <- t.opportunities + 1;
  ((t.plan.seed * 0x9E3779B9) land max_int) mod shards

(* Shard-stall: on fired opportunities the endpoint burns (virtual)
   clock and then fails — from the router's seat a stalled shard is
   indistinguishable from a dead one once its patience runs out, so the
   wrapper raises the typed shard fault after stalling. *)
let wrap_stalling_shard t ~shard ~stall request req =
  let inject = match t.plan.kind with Shard_stall -> fire t | _ -> false in
  if inject then begin
    stall ();
    raise
      (Fault.Fault
         (Fault.Shard_failure { shard; detail = "injected shard stall" }))
  end
  else request req

(* Cache-corrupt: flip one seeded byte of an on-disk cache entry in
   place. Returns the flipped offset, or [None] when the kind doesn't
   apply or the file is empty/unreadable. *)
let corrupt_cache_entry t ~path =
  match t.plan.kind with
  | Cache_corrupt -> (
      match In_channel.with_open_bin path In_channel.input_all with
      | "" -> None
      | contents ->
          t.injected <- t.injected + 1;
          t.opportunities <- t.opportunities + 1;
          let len = String.length contents in
          let off = ((t.plan.seed * 0x9E3779B9) land max_int) mod len in
          let bytes = Bytes.of_string contents in
          Bytes.set bytes off
            (Char.chr (Char.code (Bytes.get bytes off) lxor 0x01));
          Out_channel.with_open_bin path (fun oc ->
              Out_channel.output_bytes oc bytes);
          Some off
      | exception Sys_error _ -> None)
  | _ -> None

let corrupt_corpus t (corpus : Corpus.t) =
  let groups =
    List.map
      (fun (g : Corpus.group) ->
        match g.Corpus.impls with
        (* only groups with >= 2 implementations: the group must survive
           with the remaining ones, losing coverage, not existence *)
        | (impl : Corpus.impl) :: (_ :: _ as rest) when fire t ->
            {
              g with
              Corpus.impls =
                { impl with Corpus.target = Printf.sprintf "__corrupt%d__" t.plan.seed }
                :: rest;
            }
        | _ -> g)
      corpus.Corpus.groups
  in
  { corpus with Corpus.groups }

let garbage = "\000\031corrupted\255\254\000 GARBAGE \000\127\000"

let corrupt_descfiles t vfs ~target =
  List.filter_map
    (fun (path, _) ->
      if fire t then begin
        Vfs.add vfs ~path garbage;
        Some path
      end
      else None)
    (Vfs.files_under_dirs vfs (Vfs.tgtdirs target))

let looks_corrupted contents =
  String.exists (fun c -> c = '\000' || c = '\255') contents

let scan_vfs ?report vfs ~target =
  List.filter_map
    (fun (path, contents) ->
      if looks_corrupted contents then begin
        let fault =
          Fault.Descfile_corruption
            { path; detail = "binary garbage in description file" }
        in
        Option.iter (fun r -> Report.record r ~stage:"vfs-scan" fault) report;
        Some fault
      end
      else None)
    (Vfs.files_under_dirs vfs (Vfs.tgtdirs target))
