type level = Primary | Retry | Retrieval_fallback | Template_default | Omitted

let all = [ Primary; Retry; Retrieval_fallback; Template_default; Omitted ]

let rank = function
  | Primary -> 0
  | Retry -> 1
  | Retrieval_fallback -> 2
  | Template_default -> 3
  | Omitted -> 4

(* Confidence caps per rung. Template_default sits below the 0.5 accept
   threshold on purpose: a statement the decoder could not produce must
   land in the Err-CS review channel, never silently pass. *)
let cap = function
  | Primary -> 1.0
  | Retry -> 0.95
  | Retrieval_fallback -> 0.75
  | Template_default -> 0.45
  | Omitted -> 0.0

let name = function
  | Primary -> "primary"
  | Retry -> "retry"
  | Retrieval_fallback -> "retrieval-fallback"
  | Template_default -> "template-default"
  | Omitted -> "omitted"

let of_name s = List.find_opt (fun l -> name l = s) all
