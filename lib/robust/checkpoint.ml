type t = {
  c_version : int;
  c_target : string;
  c_fingerprint : string;
  c_funcs : Journal.completed list;
}

let version = 1

(* File layout: a "ckpt" header line; per function a "func" line followed
   by its statement records (journal encoding); a trailer line holding
   the checksum of every preceding line — all lines individually
   checksummed by the wire format on top. *)

let lines_of c =
  let header =
    Wire.encode_line
      [
        "ckpt";
        string_of_int c.c_version;
        c.c_target;
        c.c_fingerprint;
        string_of_int (List.length c.c_funcs);
      ]
  in
  let func_lines (f : Journal.completed) =
    Wire.encode_line
      [
        "func";
        f.Journal.c_fname;
        Wire.float_to_field f.Journal.c_confidence;
        string_of_int (List.length f.Journal.c_stmts);
      ]
    :: List.map (fun s -> Journal.encode (Journal.Stmt s)) f.Journal.c_stmts
  in
  let body = header :: List.concat_map func_lines c.c_funcs in
  let trailer =
    Wire.encode_line [ "trailer"; Wire.checksum (String.concat "\n" body) ]
  in
  body @ [ trailer ]

let save ~path c =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  List.iter (fun l -> output_string oc (l ^ "\n")) (lines_of c);
  close_out oc;
  Sys.rename tmp path

let load ~path =
  if not (Sys.file_exists path) then Error "no checkpoint file"
  else begin
    let ic = open_in_bin path in
    let contents = really_input_string ic (in_channel_length ic) in
    close_in ic;
    let lines =
      List.filter (fun l -> l <> "") (String.split_on_char '\n' contents)
    in
    let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
    (* split off and verify the trailer first: it seals the whole file *)
    match List.rev lines with
    | [] -> Error "empty checkpoint"
    | trailer :: rev_body -> (
        let body = List.rev rev_body in
        match Wire.decode_line trailer with
        | Some [ "trailer"; sum ]
          when String.equal sum (Wire.checksum (String.concat "\n" body)) -> (
            let decoded = List.map Wire.decode_line body in
            match decoded with
            | Some [ "ckpt"; ver; target; fingerprint; nfuncs ] :: rest -> (
                match (Wire.int_of_field ver, Wire.int_of_field nfuncs) with
                | Some ver, _ when ver <> version ->
                    err "checkpoint version %d, expected %d" ver version
                | Some ver, Some nfuncs -> (
                    let rec funcs acc lines =
                      match lines with
                      | [] -> Ok (List.rev acc)
                      | Some [ "func"; fname; conf; n ] :: rest -> (
                          match
                            (Wire.float_of_field conf, Wire.int_of_field n)
                          with
                          | Some confidence, Some n -> (
                              let rec stmts acc_s k lines =
                                if k = 0 then Ok (List.rev acc_s, lines)
                                else
                                  match lines with
                                  | Some fields :: rest -> (
                                      match
                                        Journal.decode
                                          (Wire.encode_line fields)
                                      with
                                      | Some (Journal.Stmt s)
                                        when s.Journal.j_fname = fname ->
                                          stmts (s :: acc_s) (k - 1) rest
                                      | _ ->
                                          Error "corrupt statement record")
                                  | _ -> Error "truncated statement trail"
                              in
                              match stmts [] n rest with
                              | Ok (c_stmts, rest) ->
                                  funcs
                                    ({
                                       Journal.c_fname = fname;
                                       c_confidence = confidence;
                                       c_stmts;
                                     }
                                    :: acc)
                                    rest
                              | Error e -> Error e)
                          | _ -> Error "corrupt function record")
                      | _ -> Error "corrupt checkpoint body"
                    in
                    match funcs [] rest with
                    | Ok c_funcs when List.length c_funcs = nfuncs ->
                        Ok { c_version = ver; c_target = target;
                             c_fingerprint = fingerprint; c_funcs }
                    | Ok fs ->
                        err "function count mismatch: header says %d, found %d"
                          nfuncs (List.length fs)
                    | Error e -> Error e)
                | _ -> Error "corrupt checkpoint header")
            | _ -> Error "missing checkpoint header")
        | Some [ "trailer"; _ ] -> Error "trailer checksum mismatch"
        | _ -> Error "missing or corrupt trailer")
  end
