type config = {
  breaker_threshold : int;
  breaker_cooldown : int;
  max_retries : int;
  backoff_base_s : float;
  backoff_max_s : float;
  func_deadline_s : float;
  jitter_seed : int;
}

let default_config =
  {
    breaker_threshold = 5;
    breaker_cooldown = 25;
    max_retries = 2;
    backoff_base_s = 0.05;
    backoff_max_s = 1.0;
    func_deadline_s = 30.0;
    jitter_seed = 0x5eed;
  }

type breaker = Closed of int | Open of int | Half_open

type stats = {
  mutable sup_functions : int;
  mutable sup_retried : int;
  mutable sup_breaker_opened : int;
  mutable sup_breaker_skips : int;
  mutable sup_deadline_hits : int;
}

type t = {
  cfg : config;
  now : unit -> float;
  sleep : float -> unit;
  rng : Vega_util.Rng.t;
  st : stats;
  mutable fname : string;
  mutable deadline : float option;
  mutable budget_override : float option;
  mutable breaker : breaker;
}

let monotonic_now () = Int64.to_float (Monotonic_clock.now ()) /. 1e9

let create ?(now = monotonic_now) ?(sleep = Unix.sleepf) cfg =
  {
    cfg;
    now;
    sleep;
    rng = Vega_util.Rng.create cfg.jitter_seed;
    st =
      {
        sup_functions = 0;
        sup_retried = 0;
        sup_breaker_opened = 0;
        sup_breaker_skips = 0;
        sup_deadline_hits = 0;
      };
    fname = "";
    deadline = None;
    budget_override = None;
    breaker = Closed 0;
  }

let config t = t.cfg
let stats t = t.st
let breaker_state t = t.breaker

(* A supervisor carries mutable per-function state (deadline, breaker,
   stats) and must not be shared across domains: each worker gets a
   fork, and the parent absorbs its stats after the join. Each fork
   draws jitter from its own seeded stream — the base seed mixed with
   the domain index — so parallel retry schedules are reproducible run
   to run yet decorrelated across workers (no synchronized retry
   storms). *)
let fork ?(index = 0) t =
  let seed = t.cfg.jitter_seed lxor (index * 0x9E3779B9) in
  create ~now:t.now ~sleep:t.sleep { t.cfg with jitter_seed = seed }

let absorb t child =
  let s = t.st and c = child.st in
  s.sup_functions <- s.sup_functions + c.sup_functions;
  s.sup_retried <- s.sup_retried + c.sup_retried;
  s.sup_breaker_opened <- s.sup_breaker_opened + c.sup_breaker_opened;
  s.sup_breaker_skips <- s.sup_breaker_skips + c.sup_breaker_skips;
  s.sup_deadline_hits <- s.sup_deadline_hits + c.sup_deadline_hits

let set_budget t budget_s = t.budget_override <- budget_s

let budget_s t = Option.value ~default:t.cfg.func_deadline_s t.budget_override

let start_function t fname =
  t.fname <- fname;
  t.deadline <- Some (t.now () +. budget_s t);
  t.st.sup_functions <- t.st.sup_functions + 1

let end_function t =
  t.fname <- "";
  t.deadline <- None

let backoff_delay t attempt =
  let raw = t.cfg.backoff_base_s *. (2.0 ** float_of_int attempt) in
  let capped = Float.min t.cfg.backoff_max_s raw in
  let jitter = 0.75 +. Vega_util.Rng.float t.rng 0.5 in
  Float.min t.cfg.backoff_max_s (capped *. jitter)

let check_deadline t =
  match t.deadline with
  | Some d when t.now () >= d ->
      t.st.sup_deadline_hits <- t.st.sup_deadline_hits + 1;
      raise
        (Fault.Fault
           (Fault.Deadline_exceeded
              {
                fname = t.fname;
                budget_ms = int_of_float (budget_s t *. 1000.0);
              }))
  | _ -> ()

(* Faults worth a backoff-and-retry: transient decoder trouble. Corrupt
   inputs, exhausted budgets, and traps fail the same way every time. *)
let retryable fault =
  match Fault.cls_of fault with
  | Fault.Cdecoder | Fault.Cscore | Fault.Cstage -> true
  | _ -> false

(* Faults the breaker counts: the decoder itself misbehaving. *)
let decoder_family fault =
  match Fault.cls_of fault with
  | Fault.Cdecoder | Fault.Cscore -> true
  | _ -> false

let open_breaker t =
  t.breaker <- Open t.cfg.breaker_cooldown;
  t.st.sup_breaker_opened <- t.st.sup_breaker_opened + 1

let note_failure t fault =
  match t.breaker with
  | Half_open -> open_breaker t
  | Closed k when decoder_family fault ->
      if k + 1 >= t.cfg.breaker_threshold then open_breaker t
      else t.breaker <- Closed (k + 1)
  | Closed _ -> t.breaker <- Closed 0
  | Open _ -> ()

let guard t f =
  check_deadline t;
  (match t.breaker with
  | Open n when n > 1 ->
      t.breaker <- Open (n - 1);
      t.st.sup_breaker_skips <- t.st.sup_breaker_skips + 1;
      raise
        (Fault.Fault
           (Fault.Breaker_open
              { fname = t.fname; failures = t.cfg.breaker_threshold }))
  | Open _ -> t.breaker <- Half_open
  | Closed _ | Half_open -> ());
  let half_open = t.breaker = Half_open in
  let rec attempt n =
    check_deadline t;
    match f () with
    | v ->
        t.breaker <- Closed 0;
        v
    | exception Fault.Fault fault ->
        note_failure t fault;
        let may_retry =
          (not half_open) && retryable fault && n < t.cfg.max_retries
          && match t.breaker with Open _ -> false | _ -> true
        in
        if may_retry then begin
          t.sleep (backoff_delay t n);
          t.st.sup_retried <- t.st.sup_retried + 1;
          attempt (n + 1)
        end
        else raise (Fault.Fault fault)
  in
  attempt 0
