(** Periodic snapshot of a durable run's completed-function state.

    A checkpoint is a convenience copy of what the {!Journal} already
    proves: the set of completed functions with their statements. It has
    a versioned, checksummed header and a whole-file checksum trailer;
    {!load} validates everything and returns [Error] on any mismatch, so
    a corrupt snapshot makes resume fall back to journal replay instead
    of crashing. Snapshots are written via atomic tmp-file+rename — a
    crash mid-save leaves the previous snapshot intact. *)

type t = {
  c_version : int;
  c_target : string;
  c_fingerprint : string;  (** must match the journal header's *)
  c_funcs : Journal.completed list;
}

val version : int

val save : path:string -> t -> unit
(** Atomic: tmp file + rename. *)

val load : path:string -> (t, string) result
(** [Error] on a missing file, version skew, a corrupt line, a count
    mismatch, or a trailer checksum failure — never an exception. *)
