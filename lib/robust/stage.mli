(** Result-based stage isolation: run a pipeline stage, convert any
    escaping exception into a typed {!Fault.t}, optionally recording it. *)

val classify : stage:string -> exn -> Fault.t
(** [Fault] payloads pass through; [Interp.Fuel_exhausted] maps to
    [Interp_fuel_exhausted]; anything else becomes [Stage_failure]. *)

val protect : ?report:Report.t -> stage:string -> (unit -> 'a) -> ('a, Fault.t) result
(** Runs [f ()], catching everything except [Stack_overflow],
    [Out_of_memory] and {!Journal.Killed} (which are re-raised with
    their original backtrace — a simulated crash must be as unstoppable
    as a real one).
    The fault is recorded in [report] when given, carrying the raw
    backtrace captured at the raise site so journal/fault records name
    the origin rather than this wrapper frame. *)
