(** Result-based stage isolation: run a pipeline stage, convert any
    escaping exception into a typed {!Fault.t}, optionally recording it. *)

val classify : stage:string -> exn -> Fault.t
(** [Fault] payloads pass through; [Interp.Fuel_exhausted] maps to
    [Interp_fuel_exhausted]; anything else becomes [Stage_failure]. *)

val protect : ?report:Report.t -> stage:string -> (unit -> 'a) -> ('a, Fault.t) result
(** Runs [f ()], catching everything except [Stack_overflow] and
    [Out_of_memory]. The fault is recorded in [report] when given. *)
