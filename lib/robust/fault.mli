(** Structured fault taxonomy for the generation pipeline.

    Every failure mode the pipeline tolerates has a typed representation
    here: decoder exceptions, NaN/garbage token probabilities, corrupted
    corpus groups and description files, interpreter/simulator fuel
    exhaustion, simulator traps, and out-of-bounds template lookups.
    Stages report faults instead of crashing; the degradation ladder in
    [Generate] turns them into lower-confidence statements. *)

type t =
  | Decoder_failure of { fname : string; stage : string; message : string }
      (** the decoder raised while producing tokens for [fname] *)
  | Nan_score of { fname : string; detail : string }
      (** a token probability came back NaN or infinite *)
  | Corpus_corruption of { group : string; detail : string }
      (** a reference implementation failed structural validation *)
  | Descfile_corruption of { path : string; detail : string }
      (** a target description file holds non-textual garbage *)
  | Interp_fuel_exhausted of { fuel : int }
      (** the BackendC interpreter spent its whole step budget *)
  | Sim_fuel_exhausted of { fuel : int }
      (** the ISA simulator spent its retired-instruction budget *)
  | Sim_trap of { message : string }  (** the ISA simulator trapped *)
  | Bounds_error of { what : string; index : int; length : int }
      (** an index fell outside a template structure *)
  | Stage_failure of { stage : string; message : string }
      (** any other exception escaping an isolated stage *)
  | Deadline_exceeded of { fname : string; budget_ms : int }
      (** the supervisor's per-function wall-clock budget ran out *)
  | Breaker_open of { fname : string; failures : int }
      (** the decoder circuit breaker is open: the decode was skipped so
          the ladder can route straight to a fallback rung *)
  | Record_oversize of { where : string; bytes : int; limit : int }
      (** a wire record (journal line, serve request) exceeded the size
          bound and was rejected instead of allocated *)
  | Cache_corruption of { key : string; detail : string }
      (** a content-addressed result-cache entry failed its checksum or
          metadata check and was evicted instead of served *)
  | Shard_failure of { shard : string; detail : string }
      (** a serving shard was unreachable, crashed mid-request, or
          stalled past the router's patience *)

exception Fault of t
(** The one exception robust stages raise and {!Stage.protect} catches. *)

(** Coarse class of a fault, for counting and injection matrices. *)
type cls =
  | Cdecoder
  | Cscore
  | Ccorpus
  | Cdescfile
  | Cinterp_fuel
  | Csim_fuel
  | Csim_trap
  | Cbounds
  | Cstage
  | Cdeadline
  | Cbreaker
  | Coversize
  | Ccache
  | Cshard

val all_classes : cls list
val cls_of : t -> cls
val cls_name : cls -> string
val to_string : t -> string

val to_fields : t -> string list
(** Wire representation (constructor tag + payload fields) used by the
    {!Journal} and {!Report} serializers. *)

val of_fields : string list -> t option
(** Inverse of {!to_fields}; [None] on an unknown tag or bad payload. *)

val nth : what:string -> 'a list -> int -> 'a
(** Bounds-checked [List.nth]: raises [Fault (Bounds_error _)] naming
    [what] instead of [Failure "nth"] / [Invalid_argument]. *)
