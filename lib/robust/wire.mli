(** Line-oriented wire format shared by the durability layer.

    A record is a list of string fields; each field is escaped (OCaml
    lexical conventions, so tabs and newlines cannot leak), fields are
    tab-joined into a payload, and every line carries a leading FNV-1a
    checksum of its payload. A reader can therefore detect a torn or
    bit-flipped record without any framing beyond newlines — the property
    the {!Journal} recovery path relies on. *)

val checksum : string -> string
(** 64-bit FNV-1a of the bytes, as 16 lowercase hex digits. *)

val encode_line : string list -> string
(** [encode_line fields] is ["<checksum> <payload>"] without a trailing
    newline. Fields may contain any bytes. *)

val max_record_bytes : int
(** Default per-record size bound (1 MiB). A line longer than this is
    corruption by construction — no journal or serve record comes close
    — and readers reject it instead of allocating for it. *)

val decode_line : ?limit:int -> string -> string list option
(** Inverse of {!encode_line}: [None] when the line exceeds [limit]
    (default {!max_record_bytes}), the checksum does not match the
    payload, or any field fails to unescape — i.e. the line is torn,
    oversize or corrupt, never an exception. The empty record and a lone
    empty field encode identically; both decode as [Some []]. *)

val float_to_field : float -> string
(** Hexadecimal float literal: round-trips bit-exactly through
    {!float_of_field}. *)

val float_of_field : string -> float option

val bool_to_field : bool -> string
val bool_of_field : string -> bool option
val int_of_field : string -> int option
