module C = Vega_corpus.Corpus
module Lines = Vega_srclang.Lines
module M = Vega_target.Module_id

type fn_eval = {
  fe_fname : string;
  fe_module : M.t;
  fe_confidence : float;
  fe_pass : bool;
  fe_failure : string option;
  fe_acc_stmts : int;
  fe_ref_stmts : int;
  fe_gen_stmts : int;
  fe_multi_source : bool;
  fe_err_v : bool;
  fe_err_cs : bool;
  fe_err_def : bool;
  fe_diags : Vega_analysis.Diagnostic.t list;
      (** static-analyzer findings on the generated function *)
  fe_sem : int;  (** semantic-verifier errors (Sem class) among fe_diags *)
  fe_shape_bad : int;  (** kept statements failing the template shape check *)
  fe_degraded : int;
  fe_omitted : int;
  fe_timeout : bool;
}

type target_eval = {
  te_target : string;
  te_fns : fn_eval list;
  te_gen_seconds : float;
  te_module_seconds : (M.t * float) list;
  te_faults : (Vega_robust.Fault.cls * int) list;
  te_degraded : (Vega_robust.Degrade.level * int) list;
  te_resumed : int;
  te_retried : int;
  te_breaker_open : int;
}

let canon_lines (f : Vega_srclang.Ast.func) =
  List.map (fun (l : Lines.t) -> Lines.tokens_of l) (Lines.of_func f)

let line_kinds (f : Vega_srclang.Ast.func) =
  List.map (fun (l : Lines.t) -> Lines.kind_name l.Lines.kind) (Lines.of_func f)

(* align generated token lines against reference token lines and count
   exact matches (statements needing no manual change) *)
let aligned_matches gen_lines ref_lines =
  let to_arr lines = Array.of_list (List.map (fun t -> ("l", t)) lines) in
  let slots = Vega_gumtree.Stmt_align.align (to_arr gen_lines) (to_arr ref_lines) in
  List.fold_left
    (fun (exact, near) { Vega_gumtree.Stmt_align.left; right } ->
      match (left, right) with
      | Some i, Some j ->
          let g = List.nth gen_lines i and r = List.nth ref_lines j in
          if g = r then (exact + 1, near)
          else
            let sim =
              Vega_util.Lcs.similarity ~eq:String.equal (Array.of_list g)
                (Array.of_list r)
            in
            if sim >= 0.6 then (exact, near + 1) else (exact, near)
      | _ -> (exact, near))
    (0, 0) slots

(* multi-source attribution over training implementations of the spec *)
let multi_source prep (spec : Vega_corpus.Spec.t) gen_lines =
  let impl_lines =
    List.filter_map
      (fun (p : Vega_target.Profile.t) ->
        Option.map
          (fun f -> (p.Vega_target.Profile.name, canon_lines f))
          (C.reference_inlined spec p))
      Vega_target.Registry.training
  in
  ignore prep;
  let similar a b =
    a = b
    || Vega_util.Lcs.similarity ~eq:String.equal (Array.of_list a)
         (Array.of_list b)
       >= 0.85
  in
  let attribution line =
    List.filter_map
      (fun (t, lines) ->
        if List.exists (fun l -> similar line l) lines then Some t else None)
      impl_lines
  in
  let sets = List.map attribution gen_lines in
  let sets = List.filter (fun s -> s <> []) sets in
  match sets with
  | [] -> false
  | first :: rest ->
      let inter =
        List.fold_left
          (fun acc s -> List.filter (fun t -> List.mem t s) acc)
          first rest
      in
      inter = []

let eval_generated prep vfs (p : Vega_target.Profile.t) reference
    (spec : Vega_corpus.Spec.t) ~tab ~tpl (gf : Vega.Generate.gen_func) ~cases
    =
  let kept = Vega.Generate.kept_stmts gf in
  let diags = Vega_analysis.Lint.lint_generated tab tpl gf in
  let shape_bad =
    List.length
      (List.filter
         (fun (s : Vega.Generate.gen_stmt) -> not s.Vega.Generate.g_shape_ok)
         kept)
  in
  let gen_lines =
    List.map (fun (s : Vega.Generate.gen_stmt) -> s.Vega.Generate.g_tokens) kept
  in
  let dropped =
    List.filter
      (fun (s : Vega.Generate.gen_stmt) ->
        s.Vega.Generate.g_score < Vega.Confidence.threshold)
      gf.Vega.Generate.gf_stmts
  in
  let source = Vega.Generate.source_of gf in
  let parsed = Vega_srclang.Parser.parse_function_opt source in
  let ref_func = C.reference_inlined spec p in
  let ref_lines, ref_kinds =
    match ref_func with
    | Some f -> (canon_lines f, line_kinds f)
    | None -> ([], [])
  in
  ignore ref_kinds;
  (* semantic verdict: run the abstract-interpretation verifier on the
     kept source (differential against the reference when we have one)
     and fold any semantic error into the function's confidence so it
     lands in the Err-PS review queue *)
  let sem_diags =
    match parsed with
    | Error _ -> []
    | Ok _ ->
        Vega_absint.Verify.verify_source ?reference:ref_func
          ~fname:spec.Vega_corpus.Spec.fname source
  in
  let sem_errors = Vega_absint.Verify.sem_errors sem_diags in
  let gf = Vega.Generate.apply_verdict gf ~sem_errors in
  let pass_result =
    match parsed with
    | Error m -> Error { Regression.f_case = "<parse>"; f_reason = m }
    | Ok f ->
        Regression.pass1 vfs p ~reference ~fname:spec.Vega_corpus.Spec.fname
          ~replacement:(Some f) ~cases ()
  in
  let pass = pass_result = Ok () in
  let exact, near = aligned_matches gen_lines ref_lines in
  let acc_stmts = if pass then List.length gen_lines else exact in
  let err_def =
    (match parsed with Error _ -> true | Ok _ -> false)
    || List.length gen_lines < List.length ref_lines
  in
  let err_v = (not pass) && near > 0 in
  (* Err-CS: the confidence score contradicts correctness — a statement
     confidently dropped (score < 0.5) that the reference contains *)
  let err_cs =
    List.exists
      (fun (s : Vega.Generate.gen_stmt) ->
        List.mem s.Vega.Generate.g_tokens ref_lines)
      dropped
  in
  {
    fe_fname = spec.Vega_corpus.Spec.fname;
    fe_module = spec.Vega_corpus.Spec.module_;
    fe_confidence = gf.Vega.Generate.gf_confidence;
    fe_pass = pass;
    fe_failure =
      (match pass_result with
      | Ok () -> None
      | Error f -> Some (Printf.sprintf "%s: %s" f.Regression.f_case f.Regression.f_reason));
    fe_acc_stmts = acc_stmts;
    fe_ref_stmts = List.length ref_lines;
    fe_gen_stmts = List.length gen_lines;
    fe_multi_source = pass && multi_source prep spec gen_lines;
    fe_err_v = (not pass) && err_v;
    fe_err_cs = (not pass) && err_cs;
    fe_err_def = (not pass) && err_def;
    fe_diags = Vega_analysis.Diagnostic.dedup (diags @ sem_diags);
    fe_sem = sem_errors;
    fe_shape_bad = shape_bad;
    fe_degraded =
      List.length
        (List.filter
           (fun (s : Vega.Generate.gen_stmt) ->
             s.Vega.Generate.g_level <> Vega_robust.Degrade.Primary)
           gf.Vega.Generate.gf_stmts);
    fe_omitted =
      List.length
        (List.filter
           (fun (s : Vega.Generate.gen_stmt) ->
             s.Vega.Generate.g_level = Vega_robust.Degrade.Omitted)
           gf.Vega.Generate.gf_stmts);
    fe_timeout =
      (match pass_result with Ok () -> false | Error f -> Regression.is_timeout f);
  }

let evaluate_target ?fallback ?report ?sup (t : Vega.Pipeline.t) ~decoder
    (p : Vega_target.Profile.t) ?(cases = Regression.default_cases) () =
  let report =
    match report with Some r -> r | None -> Vega_robust.Report.create ()
  in
  let vfs = t.Vega.Pipeline.prep.Vega.Pipeline.corpus.C.vfs in
  let reference = Regression.reference_artifacts vfs p ~cases () in
  let tab = Vega_analysis.Lint.symtab vfs p in
  (* generation timing per module (Fig. 7) *)
  let module_times = Hashtbl.create 8 in
  let total_time = ref 0.0 in
  let fns =
    List.filter_map
      (fun (b : Vega.Pipeline.bundle) ->
        let spec = b.Vega.Pipeline.spec in
        if not (spec.Vega_corpus.Spec.applies p) then None
        else begin
          let gf, dt =
            Vega_util.Timer.time (fun () ->
                Vega.Generate.run ?fallback ~report ?sup
                  t.Vega.Pipeline.prep.Vega.Pipeline.ctx
                  b.Vega.Pipeline.tpl b.Vega.Pipeline.analysis
                  b.Vega.Pipeline.hints ~target:p.Vega_target.Profile.name
                  ~decoder)
          in
          total_time := !total_time +. dt;
          Hashtbl.replace module_times spec.Vega_corpus.Spec.module_
            (dt
            +. Option.value ~default:0.0
                 (Hashtbl.find_opt module_times spec.Vega_corpus.Spec.module_));
          Some
            (eval_generated t.Vega.Pipeline.prep vfs p reference spec ~tab
               ~tpl:b.Vega.Pipeline.tpl gf ~cases)
        end)
      t.Vega.Pipeline.prep.Vega.Pipeline.bundles
  in
  {
    te_target = p.Vega_target.Profile.name;
    te_fns = fns;
    te_gen_seconds = !total_time;
    te_module_seconds =
      List.filter_map
        (fun m -> Option.map (fun s -> (m, s)) (Hashtbl.find_opt module_times m))
        M.all;
    te_faults = Vega_robust.Report.by_class report;
    te_degraded = Vega_robust.Report.by_level report;
    te_resumed = 0;
    te_retried =
      (match sup with
      | Some s -> (Vega_robust.Supervisor.stats s).sup_retried
      | None -> 0);
    te_breaker_open =
      (match sup with
      | Some s -> (Vega_robust.Supervisor.stats s).sup_breaker_skips
      | None -> 0);
  }

let evaluate_forkflow (prep : Vega.Pipeline.prepared) (p : Vega_target.Profile.t)
    ?(cases = Regression.default_cases) () =
  let vfs = prep.Vega.Pipeline.corpus.C.vfs in
  let reference = Regression.reference_artifacts vfs p ~cases () in
  let tab = Vega_analysis.Lint.symtab vfs p in
  let forked = Vega.Forkflow.fork_backend ~dst:p in
  let fns =
    List.filter_map
      (fun ((spec : Vega_corpus.Spec.t), f) ->
        if not (spec.Vega_corpus.Spec.applies p) then None
        else begin
          let pass_result =
            Regression.pass1 vfs p ~reference ~fname:spec.Vega_corpus.Spec.fname
              ~replacement:(Some f) ~cases ()
          in
          let pass = pass_result = Ok () in
          let gen_lines = canon_lines f in
          let ref_lines =
            match C.reference_inlined spec p with
            | Some rf -> canon_lines rf
            | None -> []
          in
          let exact, _ = aligned_matches gen_lines ref_lines in
          Some
            {
              fe_fname = spec.Vega_corpus.Spec.fname;
              fe_module = spec.Vega_corpus.Spec.module_;
              fe_confidence = 1.0;
              fe_pass = pass;
              fe_failure = None;
              fe_acc_stmts = (if pass then List.length gen_lines else exact);
              fe_ref_stmts = List.length ref_lines;
              fe_gen_stmts = List.length gen_lines;
              fe_multi_source = false;
              fe_err_v = false;
              fe_err_cs = false;
              fe_err_def = false;
              fe_diags = Vega_analysis.Lint.lint_function tab ~spec f;
              fe_sem = 0;
              fe_shape_bad = 0;
              fe_degraded = 0;
              fe_omitted = 0;
              fe_timeout =
                (match pass_result with
                | Ok () -> false
                | Error fl -> Regression.is_timeout fl);
            }
        end)
      forked
  in
  {
    te_target = p.Vega_target.Profile.name;
    te_fns = fns;
    te_gen_seconds = 0.0;
    te_module_seconds = [];
    te_faults = [];
    te_degraded = [];
    te_resumed = 0;
    te_retried = 0;
    te_breaker_open = 0;
  }

(* ------------------------------------------------------------------ *)
(* Aggregation                                                          *)

let ratio num den = if den = 0 then 0.0 else float_of_int num /. float_of_int den

let fn_accuracy fns =
  ratio (List.length (List.filter (fun f -> f.fe_pass) fns)) (List.length fns)

let stmt_accuracy fns =
  let acc = List.fold_left (fun a f -> a + f.fe_acc_stmts) 0 fns in
  let total = List.fold_left (fun a f -> a + max f.fe_ref_stmts f.fe_gen_stmts) 0 fns in
  ratio acc total

let by_module te =
  List.filter_map
    (fun m ->
      match List.filter (fun f -> f.fe_module = m) te.te_fns with
      | [] -> None
      | fns -> Some (m, fns))
    M.all

let acc_by_module te = List.map (fun (m, fns) -> (m, fn_accuracy fns)) (by_module te)

let err_rates fns =
  let n = List.length fns in
  ( ratio (List.length (List.filter (fun f -> f.fe_err_v) fns)) n,
    ratio (List.length (List.filter (fun f -> f.fe_err_cs) fns)) n,
    ratio (List.length (List.filter (fun f -> f.fe_err_def) fns)) n )

let conf1_share fns =
  let acc = List.filter (fun f -> f.fe_pass) fns in
  ratio
    (List.length (List.filter (fun f -> f.fe_confidence > 0.99) acc))
    (List.length acc)

let multi_source_share fns =
  ratio (List.length (List.filter (fun f -> f.fe_multi_source) fns)) (List.length fns)

(* ------------------------------------------------------------------ *)
(* Robustness counters                                                  *)

let degraded_stmts fns = List.fold_left (fun a f -> a + f.fe_degraded) 0 fns
let omitted_stmts fns = List.fold_left (fun a f -> a + f.fe_omitted) 0 fns
let timeout_count fns = List.length (List.filter (fun f -> f.fe_timeout) fns)

(* ------------------------------------------------------------------ *)
(* Static-analysis correlation: how much of pass@1 failure the analyzer
   predicts without running anything                                     *)

let failures fns = List.filter (fun f -> not f.fe_pass) fns
let flagged f = f.fe_diags <> []

let static_flag_rate fns =
  let fl = failures fns in
  ratio (List.length (List.filter flagged fl)) (List.length fl)

let static_flag_by_class fns =
  let fl = failures fns in
  List.map
    (fun c ->
      let hit f =
        List.exists (fun (d : Vega_analysis.Diagnostic.t) -> d.cls = c) f.fe_diags
      in
      (c, ratio (List.length (List.filter hit fl)) (List.length fl)))
    Vega_analysis.Diagnostic.[ Parse; Symbol; Dataflow; Interface; Sem ]

let static_false_alarm_rate fns =
  let ok = List.filter (fun f -> f.fe_pass) fns in
  ratio (List.length (List.filter flagged ok)) (List.length ok)

(* ------------------------------------------------------------------ *)
(* Semantic-verdict correlation: the abstract-interpretation verifier's
   share of pass@1 failure, and its false-alarm rate on passes           *)

let sem_flagged f = f.fe_sem > 0

let sem_flag_rate fns =
  let fl = failures fns in
  ratio (List.length (List.filter sem_flagged fl)) (List.length fl)

let sem_false_alarm_rate fns =
  let ok = List.filter (fun f -> f.fe_pass) fns in
  ratio (List.length (List.filter sem_flagged ok)) (List.length ok)

let sem_error_count fns = List.fold_left (fun a f -> a + f.fe_sem) 0 fns

(** Mean confidence of statically-flagged vs clean functions; a working
    confidence score should be lower on flagged ones. *)
let confidence_by_flag fns =
  let mean l =
    match l with
    | [] -> 0.0
    | _ ->
        List.fold_left (fun a f -> a +. f.fe_confidence) 0.0 l
        /. float_of_int (List.length l)
  in
  let yes, no = List.partition flagged fns in
  (mean yes, mean no)

(** Among statically-flagged failures, share where some diagnostic's
    Table 2 bucket agrees with the dynamically-assigned taxonomy. *)
let taxonomy_agreement fns =
  let fl = List.filter flagged (failures fns) in
  let dynamic f =
    (if f.fe_err_v then [ "Err-V" ] else [])
    @ (if f.fe_err_cs then [ "Err-CS" ] else [])
    @ if f.fe_err_def then [ "Err-Def" ] else []
  in
  let agrees f =
    let dyn = dynamic f in
    List.exists
      (fun d -> List.mem (Vega_analysis.Diagnostic.taxonomy d) dyn)
      f.fe_diags
  in
  ratio (List.length (List.filter agrees fl)) (List.length fl)
