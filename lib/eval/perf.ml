(** Fig. 10: benchmark performance of the VEGA-built compilers.

    The "VEGA compiler" is the generated backend with its inaccurate
    functions replaced by their base-compiler counterparts (Sec. 4.1.4 /
    4.3); speedups are -O3 over -O0 cycle counts on the target simulator,
    compared against the base compiler. *)

module B = Vega_backend
module P = Vega_ir.Programs

type bench_point = {
  bp_case : string;
  bp_base_speedup : float;  (** base compiler -O3 speedup over -O0 *)
  bp_vega_speedup : float;  (** corrected VEGA-built compiler *)
}

(* hook sources of the corrected VEGA backend: accurate generated
   functions, reference for the rest *)
let corrected_sources (p : Vega_target.Profile.t) (te : Metrics.target_eval)
    (generated : (string * Vega_srclang.Ast.func) list) =
  List.map
    (fun (fname, ref_fn) ->
      let fe =
        List.find_opt (fun (f : Metrics.fn_eval) -> f.Metrics.fe_fname = fname)
          te.Metrics.te_fns
      in
      match fe with
      | Some fe when fe.Metrics.fe_pass -> (
          match List.assoc_opt fname generated with
          | Some g -> (fname, g)
          | None -> (fname, ref_fn))
      | _ -> (fname, ref_fn))
    (Refbackend.sources_for p)

let speedup conv (c : P.case) =
  let cycles opt =
    let out = B.Compiler.compile conv ~opt (P.modul_of c) in
    let r = Vega_sim.Machine.run conv out.B.Compiler.emitted ~entry:c.P.entry ~args:c.P.args in
    match r.Vega_sim.Machine.status with
    | Vega_sim.Machine.Finished _ -> Some (max 1 r.Vega_sim.Machine.cycles)
    | Vega_sim.Machine.Trap _ | Vega_sim.Machine.Timeout _ -> None
  in
  match (cycles B.Compiler.O0, cycles B.Compiler.O3) with
  | Some c0, Some c3 -> Some (float_of_int c0 /. float_of_int c3)
  | _ -> None

let run vfs (p : Vega_target.Profile.t) ~vega_sources
    ?(benches = P.benchmarks) () =
  let base_hooks =
    B.Hooks.create vfs ~target:p.Vega_target.Profile.name
      ~sources:(Refbackend.sources_for p)
  in
  let base_conv = B.Conv.make vfs base_hooks in
  let vega_hooks =
    B.Hooks.create vfs ~target:p.Vega_target.Profile.name ~sources:vega_sources
  in
  let vega_conv = B.Conv.make vfs vega_hooks in
  List.filter_map
    (fun c ->
      match (speedup base_conv c, speedup vega_conv c) with
      | Some b, Some v ->
          Some { bp_case = c.P.name; bp_base_speedup = b; bp_vega_speedup = v }
      | _ -> None)
    benches

(** Robustness check (Sec. 4.3): the corrected compiler passes the full
    regression suite with outputs matching the golden runs. *)
let robustness vfs (p : Vega_target.Profile.t) ~vega_sources () =
  let hooks =
    B.Hooks.create vfs ~target:p.Vega_target.Profile.name ~sources:vega_sources
  in
  let conv = B.Conv.make vfs hooks in
  List.for_all
    (fun (c : P.case) ->
      List.for_all
        (fun opt ->
          match B.Compiler.compile conv ~opt (P.modul_of c) with
          | out -> (
              let r =
                Vega_sim.Machine.run conv out.B.Compiler.emitted ~entry:c.P.entry
                  ~args:c.P.args
              in
              match r.Vega_sim.Machine.status with
              | Vega_sim.Machine.Finished _ -> r.Vega_sim.Machine.output = P.golden c
              | Vega_sim.Machine.Trap _ | Vega_sim.Machine.Timeout _ -> false)
          | exception _ -> false)
        [ B.Compiler.O0; B.Compiler.O3 ])
    (P.regression @ P.benchmarks)
