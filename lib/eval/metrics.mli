(** Per-function evaluation: pass@1, statement-level accuracy, the error
    taxonomy of Table 2, and multi-source attribution (purple bars of
    Fig. 8). Also evaluates ForkFlow baselines with the same machinery. *)

type fn_eval = {
  fe_fname : string;
  fe_module : Vega_target.Module_id.t;
  fe_confidence : float;
  fe_pass : bool;  (** pass@1 *)
  fe_failure : string option;
  fe_acc_stmts : int;  (** statements needing no manual change *)
  fe_ref_stmts : int;  (** statements of the reference implementation *)
  fe_gen_stmts : int;  (** statements generated (kept) *)
  fe_multi_source : bool;
      (** no single training backend explains every generated statement *)
  fe_err_v : bool;
  fe_err_cs : bool;
  fe_err_def : bool;
  fe_diags : Vega_analysis.Diagnostic.t list;
      (** static-analyzer findings on the generated function, including
          the semantic verifier's (deduped, span-then-rule order) *)
  fe_sem : int;
      (** semantic-verifier errors ([Sem]-class, Err-PS bucket); when
          non-zero the confidence was capped by
          {!Vega.Generate.apply_verdict} *)
  fe_shape_bad : int;  (** kept statements failing the template shape check *)
  fe_degraded : int;
      (** statements produced below the primary degradation rung *)
  fe_omitted : int;  (** statements omitted-with-flag *)
  fe_timeout : bool;
      (** pass@1 failed on fuel exhaustion rather than wrong code *)
}

type target_eval = {
  te_target : string;
  te_fns : fn_eval list;
  te_gen_seconds : float;  (** wall-clock of the generation stage (Fig. 7) *)
  te_module_seconds : (Vega_target.Module_id.t * float) list;
  te_faults : (Vega_robust.Fault.cls * int) list;
      (** faults observed while generating, by class (non-zero only) *)
  te_degraded : (Vega_robust.Degrade.level * int) list;
      (** degraded statements by ladder rung (non-zero only) *)
  te_resumed : int;
      (** functions restored from a write-ahead journal rather than
          generated (always 0 outside durable runs) *)
  te_retried : int;  (** supervisor backoff retries of the decoder *)
  te_breaker_open : int;
      (** decoder calls short-circuited by an open circuit breaker *)
}

val evaluate_target :
  ?fallback:Vega.Generate.decoder ->
  ?report:Vega_robust.Report.t ->
  ?sup:Vega_robust.Supervisor.t ->
  Vega.Pipeline.t ->
  decoder:Vega.Generate.decoder ->
  Vega_target.Profile.t ->
  ?cases:Vega_ir.Programs.case list ->
  unit ->
  target_eval
(** Generate the whole backend for a held-out target and pass@1-check
    every function. Generation runs under the degradation ladder —
    supervised (deadlines, backoff, circuit breaker) when [sup] is
    given; observed faults and degradations land in [report] (a fresh
    one when omitted) and in the [te_faults]/[te_degraded]/[te_retried]/
    [te_breaker_open] counters. *)

val evaluate_forkflow :
  Vega.Pipeline.prepared ->
  Vega_target.Profile.t ->
  ?cases:Vega_ir.Programs.case list ->
  unit ->
  target_eval
(** The ForkFlow baseline through the same harness. *)

(** {1 Aggregation} *)

val fn_accuracy : fn_eval list -> float
val stmt_accuracy : fn_eval list -> float
val by_module : target_eval -> (Vega_target.Module_id.t * fn_eval list) list
val acc_by_module : target_eval -> (Vega_target.Module_id.t * float) list
val err_rates : fn_eval list -> float * float * float
(** (Err-V, Err-CS, Err-Def) rates over all functions. *)

val conf1_share : fn_eval list -> float
(** Among accurate functions, share with confidence > 0.99 (Fig. 8). *)

val multi_source_share : fn_eval list -> float

(** {1 Robustness counters} *)

val degraded_stmts : fn_eval list -> int
val omitted_stmts : fn_eval list -> int
val timeout_count : fn_eval list -> int
(** Functions whose pass@1 failure was a fuel timeout. *)

(** {1 Static-analysis correlation} *)

val static_flag_rate : fn_eval list -> float
(** Fraction of pass@1 failures that carry at least one static
    diagnostic. *)

val static_flag_by_class : fn_eval list -> (Vega_analysis.Diagnostic.cls * float) list
(** {!static_flag_rate} broken out per analyzer pass. *)

val static_false_alarm_rate : fn_eval list -> float
(** Fraction of pass@1 successes that the analyzer flags anyway. *)

(** {1 Semantic-verdict correlation} *)

val sem_flag_rate : fn_eval list -> float
(** Fraction of pass@1 failures with at least one semantic-verifier
    error (the abstract-interpretation domains or the differential
    summary comparator). *)

val sem_false_alarm_rate : fn_eval list -> float
(** Fraction of pass@1 successes carrying a semantic error — the
    verifier's empirical false-positive rate on this run. *)

val sem_error_count : fn_eval list -> int
(** Total semantic-verifier errors over the functions. *)

val confidence_by_flag : fn_eval list -> float * float
(** (mean confidence of flagged functions, mean of clean ones). *)

val taxonomy_agreement : fn_eval list -> float
(** Among flagged failures, share where a static diagnostic's Table 2
    bucket matches the dynamic classification. *)
