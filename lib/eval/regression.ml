module B = Vega_backend
module I = Vega_mc.Mcinst
module P = Vega_ir.Programs

type case_artifacts = {
  ca_case : string;
  ca_opt : string;
  ca_output : int list;
  ca_cycles : int;
  ca_text : int array;
  ca_data : int array;
  ca_relocs : I.reloc list;
  ca_asm : string;
  ca_disasm : string option;
}

type failure = { f_case : string; f_reason : string }

let is_timeout f =
  String.length f.f_reason >= 7 && String.sub f.f_reason 0 7 = "timeout"

let default_cases = P.regression

let opt_name = function B.Compiler.O0 -> "O0" | B.Compiler.O3 -> "O3"

let compile_case conv (c : P.case) ~opt =
  match B.Compiler.compile conv ~opt (P.modul_of c) with
  | out -> (
      let r = Vega_sim.Machine.run conv out.B.Compiler.emitted ~entry:c.P.entry ~args:c.P.args in
      match r.Vega_sim.Machine.status with
      | Vega_sim.Machine.Trap m -> Error (Printf.sprintf "trap: %s" m)
      | Vega_sim.Machine.Timeout f ->
          Error (Printf.sprintf "timeout: simulator fuel (%d) exhausted" f)
      | Vega_sim.Machine.Finished _ -> (
          match B.Asmparser.roundtrip_ok conv out.B.Compiler.emitted with
          | Error m -> Error (Printf.sprintf "assembler round-trip: %s" m)
          | Ok () ->
              let disasm =
                match B.Disasm.decode conv out.B.Compiler.emitted.B.Emitter.obj with
                | Ok text -> Ok (Some text)
                | Error "no disassembler" -> Ok None
                | Error m -> Error m
              in
              (match disasm with
              | Error m -> Error (Printf.sprintf "disassembler: %s" m)
              | Ok disasm ->
                  Ok
                    {
                      ca_case = c.P.name;
                      ca_opt = opt_name opt;
                      ca_output = r.Vega_sim.Machine.output;
                      ca_cycles = r.Vega_sim.Machine.cycles;
                      ca_text = out.B.Compiler.emitted.B.Emitter.obj.I.text;
                      ca_data = out.B.Compiler.emitted.B.Emitter.obj.I.data;
                      ca_relocs = out.B.Compiler.emitted.B.Emitter.obj.I.relocs;
                      ca_asm = out.B.Compiler.emitted.B.Emitter.asm;
                      ca_disasm = disasm;
                    })))
  | exception B.Hooks.Hook_error (h, m) -> Error (Printf.sprintf "hook %s: %s" h m)
  | exception Vega_srclang.Interp.Runtime_error m -> Error (Printf.sprintf "interp: %s" m)
  | exception Vega_srclang.Interp.Fuel_exhausted f ->
      Error (Printf.sprintf "timeout: interpreter fuel (%d) exhausted" f)
  | exception Invalid_argument m -> Error (Printf.sprintf "internal: %s" m)

let artifacts_for vfs (p : Vega_target.Profile.t) ~sources ~cases =
  match B.Hooks.create vfs ~target:p.Vega_target.Profile.name ~sources with
  | hooks -> (
      match B.Conv.make vfs hooks with
      | conv ->
          let out = ref [] and err = ref None in
          List.iter
            (fun c ->
              if !err = None then
                List.iter
                  (fun opt ->
                    if !err = None then
                      match compile_case conv c ~opt with
                      | Ok a -> out := a :: !out
                      | Error m -> err := Some { f_case = c.P.name; f_reason = m })
                  [ B.Compiler.O0; B.Compiler.O3 ])
            cases;
          (match !err with
          | Some f -> Error f
          | None -> Ok (List.rev !out))
      | exception B.Hooks.Hook_error (h, m) ->
          Error { f_case = "<conv>"; f_reason = Printf.sprintf "hook %s: %s" h m }
      | exception Vega_srclang.Interp.Fuel_exhausted f ->
          Error
            {
              f_case = "<conv>";
              f_reason = Printf.sprintf "timeout: interpreter fuel (%d) exhausted" f;
            })
  | exception B.Hooks.Hook_error (h, m) ->
      Error { f_case = "<hooks>"; f_reason = Printf.sprintf "hook %s: %s" h m }
  | exception Vega_srclang.Interp.Fuel_exhausted f ->
      Error
        {
          f_case = "<hooks>";
          f_reason = Printf.sprintf "timeout: interpreter fuel (%d) exhausted" f;
        }

let reference_artifacts vfs p ?(cases = default_cases) () =
  match artifacts_for vfs p ~sources:(Refbackend.sources_for p) ~cases with
  | Ok a -> a
  | Error f ->
      invalid_arg
        (Printf.sprintf "reference backend for %s failed on %s: %s"
           p.Vega_target.Profile.name f.f_case f.f_reason)

let compare_artifacts (got : case_artifacts) (want : case_artifacts) =
  let golden =
    match P.find want.ca_case with Some c -> P.golden c | None -> want.ca_output
  in
  if got.ca_output <> golden then Error "program output differs from golden run"
  else if got.ca_text <> want.ca_text then Error "encoded text section differs"
  else if got.ca_data <> want.ca_data then Error "data section differs"
  else if got.ca_relocs <> want.ca_relocs then Error "relocation records differ"
  else if got.ca_asm <> want.ca_asm then Error "assembly text differs"
  else if got.ca_disasm <> want.ca_disasm then Error "disassembly differs"
  else Ok ()

let check_sources vfs p ~sources ~reference ?(cases = default_cases) () =
  match artifacts_for vfs p ~sources ~cases with
  | Error f -> Error f
  | Ok artifacts ->
      let rec cmp = function
        | [] -> Ok ()
        | (got, want) :: rest -> (
            match compare_artifacts got want with
            | Ok () -> cmp rest
            | Error m ->
                Error
                  {
                    f_case = Printf.sprintf "%s/%s" got.ca_case got.ca_opt;
                    f_reason = m;
                  })
      in
      if List.length artifacts <> List.length reference then
        Error { f_case = "<suite>"; f_reason = "artifact count mismatch" }
      else cmp (List.combine artifacts reference)

let pass1 vfs p ~reference ~fname ~replacement ?(cases = default_cases) () =
  let base = Refbackend.sources_for p in
  let sources =
    match replacement with
    | Some f -> (fname, f) :: List.remove_assoc fname base
    | None -> List.remove_assoc fname base
  in
  check_sources vfs p ~sources ~reference ~cases ()
