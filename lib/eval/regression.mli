(** The pass@1 regression harness (Sec. 4.1.4).

    Each generated function is substituted into the base compiler (the
    reference hook set); the full regression suite is then compiled at -O0
    and -O3 and checked on four axes, mirroring how LLVM regression tests
    exercise a backend:
    - simulated program output against the VIR interpreter golden stream;
    - object artifacts (text words, data words, relocation records) and
      assembly text against the reference compilation;
    - assembler round-trip (parse own assembly, compare streams);
    - disassembler output against the reference decode.

    A function passing everything is {e accurate} (pass@1). *)

type case_artifacts = {
  ca_case : string;
  ca_opt : string;
  ca_output : int list;
  ca_cycles : int;
  ca_text : int array;
  ca_data : int array;
  ca_relocs : Vega_mc.Mcinst.reloc list;
  ca_asm : string;
  ca_disasm : string option;
}

type failure = {
  f_case : string;  (** which regression case *)
  f_reason : string;
}

val is_timeout : failure -> bool
(** The failure is a fuel exhaustion (interpreter or simulator), not a
    wrong-code error. *)

val default_cases : Vega_ir.Programs.case list
(** The pass@1 regression set (all of [Programs.regression]). *)

val compile_case :
  Vega_backend.Conv.t ->
  Vega_ir.Programs.case ->
  opt:Vega_backend.Compiler.opt_level ->
  (case_artifacts, string) result

val reference_artifacts :
  Vega_tdlang.Vfs.t ->
  Vega_target.Profile.t ->
  ?cases:Vega_ir.Programs.case list ->
  unit ->
  case_artifacts list
(** Compile the suite with reference hooks; raises on internal failure
    (the reference backend must be green). *)

val check_sources :
  Vega_tdlang.Vfs.t ->
  Vega_target.Profile.t ->
  sources:(string * Vega_srclang.Ast.func) list ->
  reference:case_artifacts list ->
  ?cases:Vega_ir.Programs.case list ->
  unit ->
  (unit, failure) result
(** Run the suite with the given hook sources and compare everything
    against the reference artifacts. *)

val pass1 :
  Vega_tdlang.Vfs.t ->
  Vega_target.Profile.t ->
  reference:case_artifacts list ->
  fname:string ->
  replacement:Vega_srclang.Ast.func option ->
  ?cases:Vega_ir.Programs.case list ->
  unit ->
  (unit, failure) result
(** Substitute one function ([None] models an unparseable generation,
    removing the hook) into the reference set and check. *)
