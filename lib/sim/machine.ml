module I = Vega_mc.Mcinst
module B = Vega_backend

type status = Finished of int option | Trap of string | Timeout of int

type result = { output : int list; cycles : int; retired : int; status : status }

exception Trap_exc of string
exception Fuel_exc of int

let trap fmt = Printf.ksprintf (fun s -> raise (Trap_exc s)) fmt

let wrap n = (n land 0xFFFFFFFF) - (if n land 0x80000000 <> 0 then 0x100000000 else 0)

let run ?(fuel = 4_000_000) ?(mem_words = 65_536) (conv : B.Conv.t)
    (prog : B.Emitter.t) ~entry ~args =
  let hooks = conv.B.Conv.hooks in
  let tab = conv.B.Conv.tab in
  let nregs = max conv.B.Conv.nregs 64 in
  let regs = Array.make nregs 0 in
  let mem = Array.make mem_words 0 in
  (* data section *)
  let data = prog.B.Emitter.obj.I.data in
  Array.blit data 0 mem (prog.B.Emitter.data_base / 4) (Array.length data);
  (* stack at the top of memory *)
  regs.(conv.B.Conv.sp) <- (mem_words * 4) - 16;
  regs.(conv.B.Conv.fp) <- (mem_words * 4) - 16;
  List.iteri
    (fun i a ->
      if i < List.length conv.B.Conv.arg_regs then
        regs.(List.nth conv.B.Conv.arg_regs i) <- a)
    args;
  let zero = conv.B.Conv.zero in
  let rd r =
    if r < 0 || r >= nregs then trap "bad register %d" r
    else match zero with Some z when z = r -> 0 | _ -> regs.(r)
  in
  let wr r v =
    if r < 0 || r >= nregs then trap "bad register %d" r
    else match zero with Some z when z = r -> () | _ -> regs.(r) <- wrap v
  in
  let mrd byte =
    if byte land 3 <> 0 then trap "unaligned load at %d" byte;
    let w = byte / 4 in
    if w < 0 || w >= mem_words then trap "load out of bounds at %d" byte;
    mem.(w)
  in
  let mwr byte v =
    if byte land 3 <> 0 then trap "unaligned store at %d" byte;
    let w = byte / 4 in
    if w < 0 || w >= mem_words then trap "store out of bounds at %d" byte;
    mem.(w) <- wrap v
  in
  let insts = prog.B.Emitter.insts in
  let n = Array.length insts in
  let label_idx l =
    match B.Emitter.label_index prog l with
    | Some i -> i
    | None -> trap "unknown label %s" l
  in
  let sym_addr s =
    match B.Emitter.find_sym prog s with
    | Some a -> a
    | None -> trap "unknown symbol %s" s
  in
  (* cached hook-driven cycle parameters *)
  let lat_cache = Hashtbl.create 32 and uop_cache = Hashtbl.create 32 in
  let latency opc =
    match Hashtbl.find_opt lat_cache opc with
    | Some l -> l
    | None ->
        let l = max 1 (B.Hooks.call_int hooks "getInstrLatency" [ B.Hooks.vint opc ]) in
        Hashtbl.replace lat_cache opc l;
        l
  in
  let uops opc =
    match Hashtbl.find_opt uop_cache opc with
    | Some u -> u
    | None ->
        let u = max 0 (B.Hooks.call_int hooks "getNumMicroOps" [ B.Hooks.vint opc ]) in
        Hashtbl.replace uop_cache opc u;
        u
  in
  let issue_width = max 1 (B.Hooks.call_int hooks "getIssueWidth" []) in
  let load_latency = max 1 (B.Hooks.call_int hooks "getLoadLatency" []) in
  let mispredict = max 0 (B.Hooks.call_int hooks "getMispredictPenalty" []) in
  (* scoreboard *)
  let ready = Array.make nregs 0 in
  let cycle = ref 0 and slot = ref 0 in
  let charge_issue srcs u =
    let avail =
      List.fold_left (fun acc r -> max acc ready.(r)) !cycle srcs
    in
    if avail > !cycle then begin
      cycle := avail;
      slot := 0
    end;
    slot := !slot + u;
    if !slot >= issue_width then begin
      let extra = !slot / issue_width in
      cycle := !cycle + extra;
      slot := !slot mod issue_width
    end
  in
  let branch_penalty () =
    cycle := !cycle + mispredict;
    slot := 0
  in
  let output = ref [] in
  let call_stack = ref [] in
  let loop_stack = ref [] in
  let retired = ref 0 in
  let finished = ref None and running = ref true in
  let ret_val () = Some (rd conv.B.Conv.ret_reg) in
  let status =
    try
      (* inside the handler: an unknown entry label must surface as a
         Trap status, not as an escaping exception *)
      let pc = ref (label_idx entry) in
      while !running do
        if !retired >= fuel then raise (Fuel_exc fuel);
        if !pc < 0 || !pc >= n then trap "pc out of range";
        let inst = insts.(!pc) in
        incr retired;
        let info =
          match B.Insntab.by_opcode tab inst.I.opcode with
          | Some i -> i
          | None -> trap "illegal opcode %d" inst.I.opcode
        in
        let opc = inst.I.opcode in
        let ops = inst.I.ops in
        let reg_srcs =
          List.filter_map (function I.Oreg r -> Some r | _ -> None) ops
        in
        let ovalue = function
          | I.Oreg r -> rd r
          | I.Oimm v -> v
          | I.Osym (s, I.Sym_hi) -> sym_addr s land lnot 0xfff
          | I.Osym (s, I.Sym_lo) -> sym_addr s land 0xfff
          | I.Osym (s, I.Sym_abs) -> sym_addr s
          | I.Olabel l -> sym_addr l
        in
        let next = ref (!pc + 1) in
        (match (info.B.Insntab.sem, ops) with
        | B.Insntab.Salu a, [ I.Oreg d; o1; o2 ] | B.Insntab.Salui a, [ I.Oreg d; o1; o2 ]
          ->
            let x = ovalue o1 and y = ovalue o2 in
            charge_issue (List.tl reg_srcs) (uops opc);
            let v =
              match a with
              | B.Insntab.Aadd -> x + y
              | B.Insntab.Asub -> x - y
              | B.Insntab.Aand -> x land y
              | B.Insntab.Aor -> x lor y
              | B.Insntab.Axor -> x lxor y
              | B.Insntab.Ashl -> x lsl (y land 31)
              | B.Insntab.Ashr -> (x land 0xFFFFFFFF) lsr (y land 31)
              | B.Insntab.Aslt -> if x < y then 1 else 0
            in
            wr d v;
            ready.(d) <- !cycle + latency opc
        | B.Insntab.Smovi, [ I.Oreg d; o ] ->
            charge_issue [] (uops opc);
            wr d (ovalue o);
            ready.(d) <- !cycle + latency opc
        | B.Insntab.Smov, [ I.Oreg d; I.Oreg s ] ->
            charge_issue [ s ] (uops opc);
            wr d (rd s);
            ready.(d) <- !cycle + latency opc
        | B.Insntab.Smul, [ I.Oreg d; o1; o2 ] ->
            charge_issue (List.tl reg_srcs) (uops opc);
            wr d (ovalue o1 * ovalue o2);
            ready.(d) <- !cycle + latency opc
        | B.Insntab.Sdiv, [ I.Oreg d; o1; o2 ] ->
            let y = ovalue o2 in
            if y = 0 then trap "division by zero";
            charge_issue (List.tl reg_srcs) (uops opc);
            wr d (ovalue o1 / y);
            ready.(d) <- !cycle + latency opc
        | B.Insntab.Smadd, [ I.Oreg d; o1; o2 ] ->
            charge_issue reg_srcs (uops opc);
            wr d (rd d + (ovalue o1 * ovalue o2));
            ready.(d) <- !cycle + latency opc
        | B.Insntab.Sload, [ I.Oreg d; I.Oreg base; o ] ->
            charge_issue [ base ] (uops opc);
            wr d (mrd (rd base + ovalue o));
            ready.(d) <- !cycle + max (latency opc) load_latency
        | B.Insntab.Sstore, [ I.Oreg v; I.Oreg base; o ] ->
            charge_issue [ v; base ] (uops opc);
            mwr (rd base + ovalue o) (rd v)
        | B.Insntab.Sbranch c, [ I.Oreg a; I.Oreg b; I.Olabel l ] ->
            charge_issue [ a; b ] (uops opc);
            let taken =
              match c with
              | B.Insntab.Ceq -> rd a = rd b
              | B.Insntab.Cne -> rd a <> rd b
              | B.Insntab.Clt -> rd a < rd b
              | B.Insntab.Cge -> rd a >= rd b
            in
            if taken then begin
              next := label_idx l;
              branch_penalty ()
            end
        | B.Insntab.Sjump, [ I.Olabel l ] ->
            charge_issue [] (uops opc);
            next := label_idx l;
            slot := 0
        | B.Insntab.Scall, [ I.Olabel f ] ->
            charge_issue [] (uops opc);
            if f = "print" then begin
              match conv.B.Conv.arg_regs with
              | a0 :: _ -> output := rd a0 :: !output
              | [] -> trap "print without argument registers"
            end
            else begin
              call_stack := (!pc + 1) :: !call_stack;
              next := label_idx f;
              slot := 0
            end
        | B.Insntab.Sret, [] -> (
            charge_issue [] (uops opc);
            match !call_stack with
            | ra :: rest ->
                call_stack := rest;
                next := ra;
                slot := 0
            | [] ->
                running := false;
                finished := ret_val ())
        | B.Insntab.Slpsetup, [ I.Oimm trip; I.Olabel l ] ->
            charge_issue [] (uops opc);
            loop_stack := (label_idx l, ref trip) :: !loop_stack
        | B.Insntab.Slpend, [] -> (
            charge_issue [] (uops opc);
            match !loop_stack with
            | (start, count) :: rest ->
                decr count;
                if !count > 0 then next := start (* zero-overhead back edge *)
                else loop_stack := rest
            | [] -> trap "lp.end without lp.setup")
        | (B.Insntab.Svadd | B.Insntab.Svmul), [ I.Oreg d; I.Oreg a; I.Oreg b ] ->
            charge_issue [ d; a; b ] (uops opc);
            let da = rd d and aa = rd a and ba = rd b in
            for k = 0 to 3 do
              let x = mrd (aa + (4 * k)) and y = mrd (ba + (4 * k)) in
              let v =
                if info.B.Insntab.sem = B.Insntab.Svadd then x + y else x * y
              in
              mwr (da + (4 * k)) v
            done;
            cycle := !cycle + latency opc
        | B.Insntab.Snop, _ -> charge_issue [] (uops opc)
        | _, _ -> trap "malformed instruction %s" info.B.Insntab.enum_name);
        pc := !next
      done;
      Finished !finished
    with
    | Trap_exc msg -> Trap msg
    | Fuel_exc f -> Timeout f
    | Vega_srclang.Interp.Fuel_exhausted f -> Timeout f
    | B.Hooks.Hook_error (h, msg) -> Trap (Printf.sprintf "hook %s: %s" h msg)
  in
  { output = List.rev !output; cycles = !cycle; retired = !retired; status }
