(** ISA simulator executing an emitted program (our QEMU / PULP-RTL / XSIM
    stand-in, Sec. 4.1.5).

    Functional semantics come from the instruction table; the cycle model
    is driven by the SCH hooks (latencies, issue width, micro-ops, load
    latency, mispredict penalty), with hardware loops running their
    back-edge for free and SIMD ops retiring whole 4-word lanes — which is
    what gives -O3 its Fig. 10 shape. *)

type status =
  | Finished of int option
  | Trap of string
  | Timeout of int
      (** the retired-instruction fuel budget (the payload) ran out, or a
          hook exhausted its interpreter fuel — distinct from [Trap] so
          harnesses classify timeouts apart from wrong-code errors *)

type result = {
  output : int list;  (** print stream; must match the VIR golden run *)
  cycles : int;
  retired : int;  (** dynamic instruction count *)
  status : status;
}

val run :
  ?fuel:int ->
  ?mem_words:int ->
  Vega_backend.Conv.t ->
  Vega_backend.Emitter.t ->
  entry:string ->
  args:int list ->
  result
(** Fuel defaults to 4_000_000 retired instructions. *)
