(** Constant/interval value domain over BackendC locals.

    Abstract values are intervals with optional bounds ([None] is the
    corresponding infinity); the environment maps local variables to
    intervals, with absent bindings meaning "any value" so the map stays
    small. The checker only reports *definite* violations — a divisor
    that is exactly zero on every path reaching the expression, a shift
    amount that is certainly out of range — keeping the false-positive
    rate on known-good reference backends at zero. *)

module A = Vega_srclang.Ast
module D = Vega_analysis.Diagnostic

(* ---------------------------------------------------------------- *)
(* Intervals                                                         *)

type itv = Bot | Itv of int option * int option  (** lo, hi *)

let top = Itv (None, None)
let const n = Itv (Some n, Some n)

let is_const = function Itv (Some a, Some b) when a = b -> Some a | _ -> None

let lo_min a b =
  match (a, b) with None, _ | _, None -> None | Some x, Some y -> Some (min x y)

let hi_max a b =
  match (a, b) with None, _ | _, None -> None | Some x, Some y -> Some (max x y)

let join_itv a b =
  match (a, b) with
  | Bot, x | x, Bot -> x
  | Itv (l1, h1), Itv (l2, h2) -> Itv (lo_min l1 l2, hi_max h1 h2)

(* drop any bound the new value pushes past: classic interval widening *)
let widen_itv a b =
  match (a, b) with
  | Bot, x | x, Bot -> x
  | Itv (l1, h1), Itv (l2, h2) ->
      let lo =
        match (l1, l2) with
        | None, _ -> None
        | Some x, Some y when y >= x -> Some x
        | Some _, _ -> None
      in
      let hi =
        match (h1, h2) with
        | None, _ -> None
        | Some x, Some y when y <= x -> Some x
        | Some _, _ -> None
      in
      Itv (lo, hi)

(* interval arithmetic; [None] bounds poison the affected side *)
let add_itv a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Itv (l1, h1), Itv (l2, h2) ->
      let ( +? ) x y =
        match (x, y) with Some a, Some b -> Some (a + b) | _ -> None
      in
      Itv (l1 +? l2, h1 +? h2)

let neg_itv = function
  | Bot -> Bot
  | Itv (l, h) ->
      Itv (Option.map (fun x -> -x) h, Option.map (fun x -> -x) l)

let sub_itv a b = add_itv a (neg_itv b)

let bool_itv = Itv (Some 0, Some 1)

(* definite truth value, when the interval pins one down *)
let truth = function
  | Bot -> None
  | Itv (Some l, Some h) when l = 0 && h = 0 -> Some false
  | Itv (Some l, _) when l > 0 -> Some true
  | Itv (_, Some h) when h < 0 -> Some true
  | _ -> None

(* ---------------------------------------------------------------- *)
(* Environment domain                                                *)

module Env = Map.Make (String)

type t = Unreachable | Reached of itv Env.t

let bottom = Unreachable

let equal a b =
  match (a, b) with
  | Unreachable, Unreachable -> true
  | Reached x, Reached y -> Env.equal ( = ) x y
  | _ -> false

let merge_envs f a b =
  Env.merge
    (fun _ x y ->
      match (x, y) with
      | Some x, Some y ->
          let j = f x y in
          if j = top then None else Some j
      | _ -> None (* absent = top on that side *))
    a b

let join a b =
  match (a, b) with
  | Unreachable, x | x, Unreachable -> x
  | Reached x, Reached y -> Reached (merge_envs join_itv x y)

let widen a b =
  match (a, b) with
  | Unreachable, x | x, Unreachable -> x
  | Reached x, Reached y -> Reached (merge_envs widen_itv x y)

let find x env = match Env.find_opt x env with Some v -> v | None -> top

(* ---------------------------------------------------------------- *)
(* Expression evaluation                                             *)

let rec eval env (e : A.expr) : itv =
  match e with
  | A.Int n -> const n
  | A.Chr c -> const (Char.code c)
  | A.Bool b -> const (if b then 1 else 0)
  | A.Nullptr -> const 0
  | A.Id x -> find x env
  | A.Cast (_, e) -> eval env e
  | A.Unop (A.Neg, e) -> neg_itv (eval env e)
  | A.Unop (A.Not, e) -> (
      match truth (eval env e) with
      | Some true -> const 0
      | Some false -> const 1
      | None -> bool_itv)
  | A.Unop (A.Bnot, e) -> (
      match is_const (eval env e) with
      | Some n -> const (lnot n)
      | None -> top)
  | A.Ternary (c, t, f) -> (
      match truth (eval env c) with
      | Some true -> eval env t
      | Some false -> eval env f
      | None -> join_itv (eval env t) (eval env f))
  | A.Binop (op, a, b) -> eval_binop op (eval env a) (eval env b)
  | A.Str _ | A.Scoped _ | A.Call _ | A.Method _ | A.Member _ | A.Index _ ->
      top

and eval_binop op a b =
  let cc f =
    match (is_const a, is_const b) with
    | Some x, Some y -> f x y
    | _ -> top
  in
  let cmp f =
    match (is_const a, is_const b) with
    | Some x, Some y -> const (if f x y then 1 else 0)
    | _ -> bool_itv
  in
  match op with
  | A.Add -> add_itv a b
  | A.Sub -> sub_itv a b
  | A.Mul -> cc (fun x y -> const (x * y))
  | A.Div -> cc (fun x y -> if y = 0 then top else const (x / y))
  | A.Rem -> cc (fun x y -> if y = 0 then top else const (x mod y))
  | A.Shl -> cc (fun x y -> if y < 0 || y > 62 then top else const (x lsl y))
  | A.Shr -> cc (fun x y -> if y < 0 || y > 62 then top else const (x lsr y))
  | A.Band -> cc (fun x y -> const (x land y))
  | A.Bor -> cc (fun x y -> const (x lor y))
  | A.Bxor -> cc (fun x y -> const (x lxor y))
  | A.Land | A.Lor -> (
      match (truth a, truth b, op) with
      | Some false, _, A.Land | _, Some false, A.Land -> const 0
      | Some true, Some true, A.Land -> const 1
      | Some true, _, A.Lor | _, Some true, A.Lor -> const 1
      | Some false, Some false, A.Lor -> const 0
      | _ -> bool_itv)
  | A.Eq -> cmp ( = )
  | A.Ne -> cmp ( <> )
  | A.Lt -> cmp ( < )
  | A.Gt -> cmp ( > )
  | A.Le -> cmp ( <= )
  | A.Ge -> cmp ( >= )

(* ---------------------------------------------------------------- *)
(* Transfer function over AST CFG points                             *)

let binop_of_assign = function
  | A.Set -> None
  | A.Add_set -> Some A.Add
  | A.Sub_set -> Some A.Sub
  | A.Or_set -> Some A.Bor
  | A.And_set -> Some A.Band
  | A.Shl_set -> Some A.Shl
  | A.Shr_set -> Some A.Shr

let bind x v env = if v = top then Env.remove x env else Env.add x v env

let transfer (node : Cfg.point Cfg.node) st =
  match st with
  | Unreachable -> Unreachable
  | Reached env -> (
      match node.Cfg.payload with
      | Cfg.Entry | Cfg.Exit | Cfg.Branch _ -> st
      | Cfg.Stmt s -> (
          match s with
          | A.Decl (_, x, Some e) -> Reached (bind x (eval env e) env)
          | A.Decl (_, x, None) -> Reached (bind x top env)
          | A.Assign (A.Set, A.Id x, e) -> Reached (bind x (eval env e) env)
          | A.Assign (op, A.Id x, e) -> (
              match binop_of_assign op with
              | Some bop ->
                  Reached
                    (bind x (eval_binop bop (find x env) (eval env e)) env)
              | None -> st)
          | _ -> st))

(* ---------------------------------------------------------------- *)
(* Checker                                                           *)

module F = Fixpoint.Make (struct
  type nonrec t = t

  let bottom = bottom
  let equal = equal
  let join = join
  let widen = widen
end)

let exprs_of_point = function
  | Cfg.Entry | Cfg.Exit -> []
  | Cfg.Branch (e, _) -> [ e ]
  | Cfg.Stmt s -> (
      match s with
      | A.Decl (_, _, Some e) -> [ e ]
      | A.Decl (_, _, None) -> []
      | A.Assign (_, lhs, rhs) -> [ lhs; rhs ]
      | A.Expr e -> [ e ]
      | A.Return (Some e) -> [ e ]
      | A.Return None | A.Break | A.Continue -> []
      | A.If _ | A.Switch _ | A.While _ | A.For _ -> [])

let rec subexprs (e : A.expr) acc =
  let acc = e :: acc in
  match e with
  | A.Int _ | A.Str _ | A.Chr _ | A.Bool _ | A.Nullptr | A.Id _ | A.Scoped _
    ->
      acc
  | A.Call (_, args) -> List.fold_right subexprs args acc
  | A.Method (r, _, args) -> subexprs r (List.fold_right subexprs args acc)
  | A.Member (r, _) -> subexprs r acc
  | A.Index (r, i) -> subexprs r (subexprs i acc)
  | A.Unop (_, a) -> subexprs a acc
  | A.Binop (_, a, b) -> subexprs a (subexprs b acc)
  | A.Ternary (c, t, f) -> subexprs c (subexprs t (subexprs f acc))
  | A.Cast (_, a) -> subexprs a acc

(** Run the domain over a function and report definite value errors:
    VS-V01 division/modulo by zero, VS-V02 out-of-range shift. *)
let check ~fname ?(marks = []) (f : A.func) : D.t list =
  let cfg = Cfg.of_func f in
  let init =
    (* parameters hold arbitrary values: an empty map is all-top *)
    Reached Env.empty
  in
  let r = F.solve cfg ~init ~transfer in
  let diags = ref [] in
  let report ~rule ~span msg =
    diags := D.make ~rule ~cls:D.Sem ~severity:D.Error ~fname ?span msg :: !diags
  in
  Array.iteri
    (fun i (node : Cfg.point Cfg.node) ->
      match r.F.input.(i) with
      | Unreachable -> ()
      | Reached env ->
          let span =
            Option.bind (Cfg.point_stmt node.Cfg.payload)
              (Vega_srclang.Parser.stmt_span marks)
          in
          List.iter
            (fun e ->
              List.iter
                (fun sub ->
                  match sub with
                  | A.Binop (((A.Div | A.Rem) as op), _, d) ->
                      if is_const (eval env d) = Some 0 then
                        report ~rule:"VS-V01" ~span
                          (Printf.sprintf
                             "%s by zero: divisor %s is always 0 here"
                             (if op = A.Div then "division" else "modulo")
                             (Vega_srclang.Printer.expr d))
                  | A.Binop ((A.Shl | A.Shr), _, d) -> (
                      match eval env d with
                      | Itv (_, Some h) when h < 0 ->
                          report ~rule:"VS-V02" ~span
                            (Printf.sprintf
                               "shift amount %s is always negative"
                               (Vega_srclang.Printer.expr d))
                      | Itv (Some l, _) when l > 63 ->
                          report ~rule:"VS-V02" ~span
                            (Printf.sprintf
                               "shift amount %s always exceeds the word size"
                               (Vega_srclang.Printer.expr d))
                      | _ -> ())
                  | _ -> ())
                (subexprs e []))
            (exprs_of_point node.Cfg.payload))
    cfg.Cfg.nodes;
  List.rev !diags
