(** Static differential summaries.

    A summary is the set of guarded input→output paths of an interface
    function, computed by symbolic execution over the AST: every path
    carries the branch guards taken (as normalized symbolic expressions
    over the parameters) and its outcome (return value, noreturn sink,
    or falling off the end). Comparing the summary of a generated
    function against the reference backend's yields *structural
    disagreement*: a pair of paths whose guards can be satisfied
    together but whose outcomes differ. Disagreement is strong evidence
    of a semantic defect (VS-M01/VS-M02); agreement is *not* a proof of
    equivalence — paths through loops, effectful calls or truncated
    (path-budget-exceeded) regions are marked impure and excluded, so
    the comparator is deliberately sound-but-incomplete: it never
    flags two identical functions, and anything it does flag deserves
    Err-PS review. *)

module A = Vega_srclang.Ast
module D = Vega_analysis.Diagnostic

(* ---------------------------------------------------------------- *)
(* Normalized symbolic expressions                                   *)

(* opaque values (havocked loop variables, uninitialized locals) are
   encoded as identifiers no BackendC program can contain *)
let opaque =
  let n = ref 0 in
  fun tag ->
    incr n;
    A.Id (Printf.sprintf "?%s%d" tag !n)

let is_opaque_id x = String.length x > 0 && x.[0] = '?'

let rec has_opaque (e : A.expr) =
  match e with
  | A.Id x -> is_opaque_id x
  | A.Int _ | A.Str _ | A.Chr _ | A.Bool _ | A.Nullptr | A.Scoped _ -> false
  | A.Call (_, args) -> List.exists has_opaque args
  | A.Method (r, _, args) -> has_opaque r || List.exists has_opaque args
  | A.Member (r, _) -> has_opaque r
  | A.Index (r, i) -> has_opaque r || has_opaque i
  | A.Unop (_, a) -> has_opaque a
  | A.Binop (_, a, b) -> has_opaque a || has_opaque b
  | A.Ternary (c, t, f) -> has_opaque c || has_opaque t || has_opaque f
  | A.Cast (_, a) -> has_opaque a

let commutative = function
  | A.Add | A.Mul | A.Band | A.Bor | A.Bxor | A.Eq | A.Ne -> true
  | _ -> false

let fold_binop op a b =
  match op with
  | A.Add -> Some (a + b)
  | A.Sub -> Some (a - b)
  | A.Mul -> Some (a * b)
  | A.Div -> if b = 0 then None else Some (a / b)
  | A.Rem -> if b = 0 then None else Some (a mod b)
  | A.Shl -> if b < 0 || b > 62 then None else Some (a lsl b)
  | A.Shr -> if b < 0 || b > 62 then None else Some (a lsr b)
  | A.Band -> Some (a land b)
  | A.Bor -> Some (a lor b)
  | A.Bxor -> Some (a lxor b)
  | A.Land -> Some (if a <> 0 && b <> 0 then 1 else 0)
  | A.Lor -> Some (if a <> 0 || b <> 0 then 1 else 0)
  | A.Eq -> Some (if a = b then 1 else 0)
  | A.Ne -> Some (if a <> b then 1 else 0)
  | A.Lt -> Some (if a < b then 1 else 0)
  | A.Gt -> Some (if a > b then 1 else 0)
  | A.Le -> Some (if a <= b then 1 else 0)
  | A.Ge -> Some (if a >= b then 1 else 0)

(* one canonical spelling per symbolic value: casts dropped, constants
   folded, commutative operands ordered *)
let rec norm (e : A.expr) : A.expr =
  match e with
  | A.Int _ | A.Str _ | A.Chr _ | A.Bool _ | A.Nullptr | A.Id _ | A.Scoped _
    ->
      e
  | A.Cast (_, a) -> norm a
  | A.Call (f, args) -> A.Call (f, List.map norm args)
  | A.Method (r, m, args) -> A.Method (norm r, m, List.map norm args)
  | A.Member (r, f) -> A.Member (norm r, f)
  | A.Index (r, i) -> A.Index (norm r, norm i)
  | A.Unop (op, a) -> (
      let a = norm a in
      match (op, a) with
      | A.Neg, A.Int n -> A.Int (-n)
      | A.Not, A.Int n -> A.Int (if n = 0 then 1 else 0)
      | A.Bnot, A.Int n -> A.Int (lnot n)
      | _ -> A.Unop (op, a))
  | A.Binop (op, a, b) -> (
      let a = norm a and b = norm b in
      match (a, b) with
      | A.Int x, A.Int y -> (
          match fold_binop op x y with
          | Some n -> A.Int n
          | None -> A.Binop (op, a, b))
      | _ ->
          if commutative op && compare a b > 0 then A.Binop (op, b, a)
          else A.Binop (op, a, b))
  | A.Ternary (c, t, f) -> (
      let c = norm c in
      match c with
      | A.Int 0 -> norm f
      | A.Int _ -> norm t
      | _ -> A.Ternary (c, norm t, norm f))

(* ---------------------------------------------------------------- *)
(* Summaries                                                         *)

type guard = {
  g_expr : A.expr;  (** normalized atom, for display and identity *)
  g_case : (A.expr * A.expr) option;
      (** [Some (scrutinee, label)] when the guard is a switch case:
          labels are compile-time constants, so two distinct labels on
          the same scrutinee contradict even when they are plain enum
          identifiers rather than ground literals *)
  g_taken : bool;
}

type outcome = Oret of A.expr option | Onoreturn | Ofallthrough

type path = {
  p_guards : guard list;
  p_outcome : outcome;
  p_pure : bool;
      (** no havocked values, opaque effects or truncation on the path *)
  p_span : Vega_srclang.Span.t option;  (** outcome statement, if known *)
}

type t = {
  s_fname : string;
  s_paths : path list;
  s_complete : bool;  (** false when the path budget truncated execution *)
}

(* keep path enumeration bounded on pathological nesting *)
let path_budget = 512

(* ---------------------------------------------------------------- *)
(* Symbolic execution                                                *)

module Env = Map.Make (String)

type state = { env : A.expr Env.t; guards : guard list; pure : bool }

type halt =
  | Hnone
  | Hret of A.expr option * A.stmt
  | Hbreak
  | Hcont
  | Hnoret of A.stmt

let rec sym_eval env (e : A.expr) : A.expr =
  match e with
  | A.Id x -> ( match Env.find_opt x env with Some v -> v | None -> e)
  | A.Int _ | A.Str _ | A.Chr _ | A.Bool _ | A.Nullptr | A.Scoped _ -> e
  | A.Call (f, args) -> A.Call (f, List.map (sym_eval env) args)
  | A.Method (r, m, args) ->
      A.Method (sym_eval env r, m, List.map (sym_eval env) args)
  | A.Member (r, f) -> A.Member (sym_eval env r, f)
  | A.Index (r, i) -> A.Index (sym_eval env r, sym_eval env i)
  | A.Unop (op, a) -> A.Unop (op, sym_eval env a)
  | A.Binop (op, a, b) -> A.Binop (op, sym_eval env a, sym_eval env b)
  | A.Ternary (c, t, f) ->
      A.Ternary (sym_eval env c, sym_eval env t, sym_eval env f)
  | A.Cast (ty, a) -> A.Cast (ty, sym_eval env a)

let binop_of_assign = function
  | A.Set -> None
  | A.Add_set -> Some A.Add
  | A.Sub_set -> Some A.Sub
  | A.Or_set -> Some A.Bor
  | A.And_set -> Some A.Band
  | A.Shl_set -> Some A.Shl
  | A.Shr_set -> Some A.Shr

(* names assigned anywhere below a statement (for loop havoc) *)
let rec assigned_names (s : A.stmt) acc =
  match s with
  | A.Decl (_, x, _) -> x :: acc
  | A.Assign (_, A.Id x, _) -> x :: acc
  | A.Assign _ | A.Expr _ | A.Return _ | A.Break | A.Continue -> acc
  | A.If (_, t, e) ->
      List.fold_right assigned_names t (List.fold_right assigned_names e acc)
  | A.Switch (_, arms, d) ->
      List.fold_right
        (fun (a : A.arm) acc -> List.fold_right assigned_names a.A.body acc)
        arms
        (List.fold_right assigned_names d acc)
  | A.While (_, body) -> List.fold_right assigned_names body acc
  | A.For (i, _, st, body) ->
      let acc = List.fold_right assigned_names body acc in
      let acc = match i with Some i -> assigned_names i acc | None -> acc in
      (match st with Some st -> assigned_names st acc | None -> acc)

(* an expression statement whose evaluation may change state we track
   nothing about: conservatively poisons the path *)
let effectful (e : A.expr) =
  let rec go = function
    | A.Call _ | A.Method _ -> true
    | A.Int _ | A.Str _ | A.Chr _ | A.Bool _ | A.Nullptr | A.Id _
    | A.Scoped _ ->
        false
    | A.Member (r, _) -> go r
    | A.Index (r, i) -> go r || go i
    | A.Unop (_, a) -> go a
    | A.Binop (_, a, b) -> go a || go b
    | A.Ternary (c, t, f) -> go c || go t || go f
    | A.Cast (_, a) -> go a
  in
  go e

let noreturn_stmt = Cfg.noreturn_stmt

exception Budget

(** [marks] must be the statement spans of [f] itself (spans are keyed
    by physical identity); callers that only have a detached AST should
    round-trip it through {!Vega_srclang.Lines.to_source} first. *)
let summarize ?(fname = "") ?(marks = []) (f : A.func) : t =
  let complete = ref true in
  let count = ref 0 in
  let spend states =
    count := !count + List.length states;
    if !count > path_budget then begin
      complete := false;
      raise Budget
    end;
    states
  in
  let impure st = { st with pure = false } in
  (* returns (state, halt) pairs; a [Hnone] halt means execution fell
     through the sequence *)
  let rec exec_seq st stmts : (state * halt) list =
    match stmts with
    | [] -> [ (st, Hnone) ]
    | s :: rest ->
        List.concat_map
          (fun (st', h) ->
            match h with Hnone -> exec_seq st' rest | _ -> [ (st', h) ])
          (exec_stmt st s)
  and exec_stmt st (s : A.stmt) : (state * halt) list =
    if noreturn_stmt s then [ (st, Hnoret s) ]
    else
      match s with
      | A.Decl (_, x, init) ->
          let v =
            match init with
            | Some e -> norm (sym_eval st.env e)
            | None -> opaque "uninit"
          in
          [ ({ st with env = Env.add x v st.env }, Hnone) ]
      | A.Assign (op, A.Id x, e) ->
          let rhs = sym_eval st.env e in
          let v =
            match binop_of_assign op with
            | None -> rhs
            | Some bop ->
                let cur =
                  match Env.find_opt x st.env with
                  | Some v -> v
                  | None -> A.Id x
                in
                A.Binop (bop, cur, rhs)
          in
          [ ({ st with env = Env.add x (norm v) st.env }, Hnone) ]
      | A.Assign (_, _, _) ->
          (* write through a member/index: an effect the summary does
             not model *)
          [ (impure st, Hnone) ]
      | A.Expr e ->
          [ ((if effectful e then impure st else st), Hnone) ]
      | A.Return e ->
          [ (st, Hret (Option.map (fun e -> norm (sym_eval st.env e)) e, s)) ]
      | A.Break -> [ (st, Hbreak) ]
      | A.Continue -> [ (st, Hcont) ]
      | A.If (c, t, e) -> (
          let cv = norm (sym_eval st.env c) in
          match cv with
          | A.Int n -> exec_seq st (if n <> 0 then t else e)
          | _ ->
              let guard taken =
                { g_expr = cv; g_case = None; g_taken = taken }
              in
              spend
                (exec_seq
                   { st with guards = guard true :: st.guards }
                   t
                @ exec_seq
                    { st with guards = guard false :: st.guards }
                    e))
      | A.Switch (scrut, arms, default) ->
          let sv = norm (sym_eval st.env scrut) in
          let arms_arr = Array.of_list arms in
          (* run bodies from arm [i] onward with C fallthrough, then the
             default body, converting Break into normal exit *)
          let run_from st i =
            let rec chain st i =
              if i >= Array.length arms_arr then exec_seq st default
              else
                List.concat_map
                  (fun (st', h) ->
                    match h with
                    | Hnone -> chain st' (i + 1)
                    | _ -> [ (st', h) ])
                  (exec_seq st arms_arr.(i).A.body)
            in
            List.map
              (fun (st', h) ->
                match h with Hbreak -> (st', Hnone) | _ -> (st', h))
              (chain st i)
          in
          let case_guard taken l =
            let lv = norm (sym_eval st.env l) in
            {
              g_expr = norm (A.Binop (A.Eq, sv, lv));
              g_case = Some (sv, lv);
              g_taken = taken;
            }
          in
          let entry_paths =
            List.concat
              (List.mapi
                 (fun i (a : A.arm) ->
                   List.map
                     (fun l ->
                       let g = case_guard true l in
                       run_from { st with guards = g :: st.guards } i)
                     a.A.labels)
                 arms)
          in
          let default_guards =
            List.concat_map
              (fun (a : A.arm) -> List.map (case_guard false) a.A.labels)
              arms
          in
          let default_path =
            run_from
              { st with guards = default_guards @ st.guards }
              (Array.length arms_arr)
          in
          spend (List.concat entry_paths @ default_path)
      | A.While (_, body) ->
          (* loops are not unrolled: havoc everything the body can
             assign and poison the continuation *)
          let env =
            List.fold_right
              (fun x env -> Env.add x (opaque "loop") env)
              (List.fold_right assigned_names body [])
              st.env
          in
          [ (impure { st with env }, Hnone) ]
      | A.For (init, _, step, body) ->
          let sts =
            match init with Some i -> exec_stmt st i | None -> [ (st, Hnone) ]
          in
          List.map
            (fun (st', h) ->
              match h with
              | Hnone ->
                  let names =
                    List.fold_right assigned_names body
                      (match step with
                      | Some s -> assigned_names s []
                      | None -> [])
                  in
                  let env =
                    List.fold_right
                      (fun x env -> Env.add x (opaque "loop") env)
                      names st'.env
                  in
                  (impure { st' with env }, Hnone)
              | _ -> (st', h))
            sts
  in
  let fname = if fname = "" then f.A.name else fname in
  let init_st = { env = Env.empty; guards = []; pure = true } in
  let raw =
    try exec_seq init_st f.A.body
    with Budget -> []
  in
  let mk_path (st, h) =
    let outcome, span_stmt =
      match h with
      | Hret (v, s) -> (Oret v, Some s)
      | Hnoret s -> (Onoreturn, Some s)
      | Hnone | Hbreak | Hcont -> (Ofallthrough, None)
    in
    let pure =
      st.pure
      && (not (List.exists (fun g -> has_opaque g.g_expr) st.guards))
      &&
      match outcome with
      | Oret (Some v) -> not (has_opaque v)
      | _ -> true
    in
    {
      p_guards = List.rev st.guards;
      p_outcome = outcome;
      p_pure = pure;
      p_span = Option.bind span_stmt (Vega_srclang.Parser.stmt_span marks);
    }
  in
  { s_fname = fname; s_paths = List.map mk_path raw; s_complete = !complete }

(* ---------------------------------------------------------------- *)
(* Differential comparison                                           *)

(* two ground constants that certainly denote different values; enum
   members of the description files are distinct by construction *)
let ground_distinct a b =
  match (a, b) with
  | A.Int x, A.Int y -> x <> y
  | A.Scoped x, A.Scoped y -> x <> y
  | A.Chr x, A.Chr y -> x <> y
  | A.Bool x, A.Bool y -> x <> y
  | _ -> false

let is_ground = function
  | A.Int _ | A.Scoped _ | A.Chr _ | A.Bool _ -> true
  | _ -> false

(* split a normalized equality into (scrutinee, ground constant);
   normalization orders commutative operands structurally, so the
   constant can land on either side *)
let eq_parts = function
  | A.Binop (A.Eq, a, b) when is_ground b && not (is_ground a) -> Some (a, b)
  | A.Binop (A.Eq, a, b) when is_ground a && not (is_ground b) -> Some (b, a)
  | _ -> None

(* can guards [g1] and [g2] hold at once? No iff one contradicts the
   other: same atom with opposite polarity, two positive equalities
   pinning the same scrutinee to distinct ground constants, or two
   switch cases on the same scrutinee with distinct labels (case labels
   are compile-time constants; gen and ref draw them from the same enum
   namespace, so distinct spellings denote distinct values) *)
let contradict g1 g2 =
  (g1.g_expr = g2.g_expr && g1.g_taken <> g2.g_taken)
  ||
  if not (g1.g_taken && g2.g_taken) then false
  else
    match (g1.g_case, g2.g_case) with
    | Some (s1, l1), Some (s2, l2) ->
        s1 = s2 && l1 <> l2 && not (has_opaque l1 || has_opaque l2)
    | _ -> (
        match (eq_parts g1.g_expr, eq_parts g2.g_expr) with
        | Some (s1, c1), Some (s2, c2) -> s1 = s2 && ground_distinct c1 c2
        | _ -> false)

let compatible p1 p2 =
  not
    (List.exists
       (fun g1 -> List.exists (fun g2 -> contradict g1 g2) p2.p_guards)
       p1.p_guards)

let show_sym = function
  | None -> "void"
  | Some e -> Vega_srclang.Printer.expr e

let show_outcome = function
  | Oret v -> Printf.sprintf "returns %s" (show_sym v)
  | Onoreturn -> "diverges (llvm_unreachable/report_fatal_error)"
  | Ofallthrough -> "falls off the end"

let show_guards gs =
  match gs with
  | [] -> "any input"
  | gs ->
      String.concat " && "
        (List.map
           (fun g ->
             let s = Vega_srclang.Printer.expr g.g_expr in
             if g.g_taken then s else "!(" ^ s ^ ")")
           gs)

(** Compare a generated function's summary against the reference's.
    Reports VS-M01 when a shared pure path produces structurally
    different outcomes and VS-M02 when the generated function falls off
    a path on which the reference terminates. *)
let compare_summaries ~fname (gen : t) (ref_ : t) : D.t list =
  let diags = ref [] in
  let seen = Hashtbl.create 16 in
  let report ~rule ~span msg =
    if not (Hashtbl.mem seen (rule, span, msg)) then begin
      Hashtbl.add seen (rule, span, msg) ();
      diags :=
        D.make ~rule ~cls:D.Sem ~severity:D.Error ~fname ?span msg :: !diags
    end
  in
  List.iter
    (fun gp ->
      if gp.p_pure then
        List.iter
          (fun rp ->
            if rp.p_pure && compatible gp rp then
              match (gp.p_outcome, rp.p_outcome) with
              | Oret a, Oret b when a <> b ->
                  report ~rule:"VS-M01" ~span:gp.p_span
                    (Printf.sprintf
                       "differential: on %s the generated function %s but \
                        the reference %s"
                       (show_guards gp.p_guards)
                       (show_outcome gp.p_outcome)
                       (show_outcome rp.p_outcome))
              | Oret _, Onoreturn | Onoreturn, Oret _ ->
                  report ~rule:"VS-M01" ~span:gp.p_span
                    (Printf.sprintf
                       "differential: on %s the generated function %s but \
                        the reference %s"
                       (show_guards gp.p_guards)
                       (show_outcome gp.p_outcome)
                       (show_outcome rp.p_outcome))
              | Ofallthrough, (Oret _ | Onoreturn) ->
                  report ~rule:"VS-M02" ~span:gp.p_span
                    (Printf.sprintf
                       "differential: the generated function can fall off \
                        the end on %s where the reference %s"
                       (show_guards gp.p_guards)
                       (show_outcome rp.p_outcome))
              | _ -> ())
          ref_.s_paths)
    gen.s_paths;
  List.rev !diags
