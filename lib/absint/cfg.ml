(** Control-flow graphs for the abstract interpreter.

    Two sources of CFGs share this representation: BackendC function
    bodies (built here from the {!Vega_srclang.Ast}) and emitted
    machine code (built by {!Regdom} from the assembler's instruction
    stream). Nodes carry an arbitrary payload; [loop_head] marks the
    widening points the fixpoint engine ({!Fixpoint}) needs for
    termination. Every cycle the builders produce passes through a
    marked head: AST loops widen at their condition node, machine-code
    back edges are detected by instruction order. *)

module A = Vega_srclang.Ast

type 'a node = {
  id : int;
  payload : 'a;
  mutable succs : int list;
  mutable preds : int list;
  mutable loop_head : bool;
}

type 'a t = { nodes : 'a node array; entry : int; exit_ : int }

(* ---------------------------------------------------------------- *)
(* Generic construction                                              *)

(** [create payloads succs ~entry ~exit_] builds a graph with one node
    per payload; [succs.(i)] lists successor ids. Predecessor lists are
    derived; out-of-range edges are dropped. *)
let create (payloads : 'a array) (succs : int list array) ~entry ~exit_ =
  let n = Array.length payloads in
  let nodes =
    Array.init n (fun i ->
        {
          id = i;
          payload = payloads.(i);
          succs = List.sort_uniq compare (List.filter (fun s -> s >= 0 && s < n) succs.(i));
          preds = [];
          loop_head = false;
        })
  in
  Array.iter
    (fun nd ->
      List.iter (fun s -> nodes.(s).preds <- nd.id :: nodes.(s).preds) nd.succs)
    nodes;
  Array.iter (fun nd -> nd.preds <- List.sort_uniq compare nd.preds) nodes;
  { nodes; entry; exit_ }

(** Mark as loop heads all targets of back edges in instruction order
    (an edge [i -> j] with [j <= i]). Sound for the machine-code CFGs:
    the emitter lays blocks out in order, so every loop re-enters a
    lower-indexed node. *)
let mark_loop_heads_by_index t =
  Array.iter
    (fun nd ->
      List.iter (fun s -> if s <= nd.id then t.nodes.(s).loop_head <- true) nd.succs)
    t.nodes

(* ---------------------------------------------------------------- *)
(* CFG recovery from BackendC ASTs                                   *)

(** Program points of an AST-level CFG. Compound statements are split:
    their condition/scrutinee becomes a [Branch] node (also carrying the
    owning statement, for span lookup) and their bodies become separate
    nodes, so a [Stmt] payload is always a simple statement. *)
type point =
  | Entry
  | Exit
  | Stmt of A.stmt
  | Branch of A.expr * A.stmt  (** condition/scrutinee, owning statement *)

(* Calls that never return end the path, exactly as in
   {!Vega_analysis.Checks}. *)
let noreturn_stmt = function
  | A.Expr (A.Call (("llvm_unreachable" | "report_fatal_error"), _)) -> true
  | _ -> false

type builder = {
  mutable rev_nodes : (int * point * int list ref * bool ref) list;
  mutable count : int;
}

let of_func (f : A.func) : point t =
  let b = { rev_nodes = []; count = 0 } in
  let succs_of = Hashtbl.create 64 in
  let mk payload =
    let id = b.count in
    b.count <- b.count + 1;
    let succs = ref [] and lh = ref false in
    b.rev_nodes <- (id, payload, succs, lh) :: b.rev_nodes;
    Hashtbl.replace succs_of id (succs, lh);
    id
  in
  let connect preds id =
    List.iter
      (fun p ->
        let s, _ = Hashtbl.find succs_of p in
        if not (List.mem id !s) then s := id :: !s)
      preds
  in
  let mark_head id =
    let _, lh = Hashtbl.find succs_of id in
    lh := true
  in
  let entry = mk Entry in
  let exit_ = mk Exit in
  (* [seq stmts preds] threads the list of dangling predecessors through
     a statement sequence and returns the survivors; [brk] collects
     break sources, [cont] is the continue target. *)
  let rec seq stmts preds ~brk ~cont =
    List.fold_left (fun preds s -> stmt s preds ~brk ~cont) preds stmts
  and stmt s preds ~brk ~cont =
    match s with
    | A.Return _ ->
        let id = mk (Stmt s) in
        connect preds id;
        connect [ id ] exit_;
        []
    | A.Break ->
        let id = mk (Stmt s) in
        connect preds id;
        (match brk with Some r -> r := id :: !r | None -> ());
        []
    | A.Continue ->
        let id = mk (Stmt s) in
        connect preds id;
        (match cont with Some t -> connect [ id ] t | None -> ());
        []
    | A.If (c, t, e) ->
        let bn = mk (Branch (c, s)) in
        connect preds bn;
        let t_out = seq t [ bn ] ~brk ~cont in
        let e_out = seq e [ bn ] ~brk ~cont in
        t_out @ e_out
    | A.While (c, body) ->
        let bn = mk (Branch (c, s)) in
        connect preds bn;
        mark_head bn;
        let brk' = ref [] in
        let body_out = seq body [ bn ] ~brk:(Some brk') ~cont:(Some bn) in
        connect body_out bn;
        bn :: !brk'
    | A.For (init, cond, step, body) ->
        let preds =
          match init with Some i -> stmt i preds ~brk ~cont | None -> preds
        in
        let c = Option.value cond ~default:(A.Bool true) in
        let bn = mk (Branch (c, s)) in
        connect preds bn;
        mark_head bn;
        let step_node = Option.map (fun st -> mk (Stmt st)) step in
        let cont_target = Option.value step_node ~default:bn in
        let brk' = ref [] in
        let body_out =
          seq body [ bn ] ~brk:(Some brk') ~cont:(Some cont_target)
        in
        connect body_out cont_target;
        (match step_node with Some id -> connect [ id ] bn | None -> ());
        let exits = if cond = None then !brk' else bn :: !brk' in
        exits
    | A.Switch (scrut, arms, default) ->
        let bn = mk (Branch (scrut, s)) in
        connect preds bn;
        let brk' = ref [] in
        (* each arm is entered from the scrutinee and from the previous
           arm's fallthrough; the default body also catches the
           no-match edge *)
        let carry =
          List.fold_left
            (fun carry (a : A.arm) ->
              seq a.A.body (bn :: carry) ~brk:(Some brk') ~cont)
            [] arms
        in
        let dflt_out = seq default (bn :: carry) ~brk:(Some brk') ~cont in
        dflt_out @ !brk'
    | _ when noreturn_stmt s ->
        let id = mk (Stmt s) in
        connect preds id;
        connect [ id ] exit_;
        []
    | A.Decl _ | A.Assign _ | A.Expr _ ->
        let id = mk (Stmt s) in
        connect preds id;
        [ id ]
  in
  let out = seq f.A.body [ entry ] ~brk:None ~cont:None in
  connect out exit_;
  (* freeze *)
  let n = b.count in
  let payloads = Array.make n Entry in
  let succs = Array.make n [] in
  let heads = Array.make n false in
  List.iter
    (fun (id, p, s, lh) ->
      payloads.(id) <- p;
      succs.(id) <- !s;
      heads.(id) <- !lh)
    b.rev_nodes;
  let t = create payloads succs ~entry ~exit_ in
  Array.iteri (fun i h -> if h then t.nodes.(i).loop_head <- true) heads;
  t

(** Statements appearing in a node's payload (for span lookup). *)
let point_stmt = function
  | Entry | Exit -> None
  | Stmt s -> Some s
  | Branch (_, s) -> Some s
