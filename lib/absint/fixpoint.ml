(** Worklist fixpoint engine, parameterized by an abstract domain.

    The engine computes, for every CFG node, the least (post-)fixpoint
    of [in(n) = join of out(preds n)] and [out(n) = transfer n (in n)],
    starting from [init] at the entry node and [bottom] elsewhere.
    Inputs ascend monotonically (new inputs are joined with old ones),
    and at nodes marked [loop_head] the join is replaced by the domain's
    widening, so analyses over infinite-height domains (intervals)
    terminate as long as every cycle passes through a marked head —
    which the {!Cfg} builders guarantee. Nodes whose input stays
    [bottom] are unreachable and their transfer is never applied. *)

module type DOMAIN = sig
  type t

  val bottom : t
  (** Unreachable / no information. Must be a unit of [join]. *)

  val equal : t -> t -> bool

  val join : t -> t -> t
  (** Least upper bound (path merge). Commutative, idempotent. *)

  val widen : t -> t -> t
  (** [widen old next]: an upper bound of [old] and [next] that
      stabilizes every ascending chain in finitely many steps. *)
end

module Make (D : DOMAIN) = struct
  type result = { input : D.t array; output : D.t array }

  exception Diverged of string

  let solve (cfg : 'a Cfg.t) ~(init : D.t)
      ~(transfer : 'a Cfg.node -> D.t -> D.t) =
    let n = Array.length cfg.Cfg.nodes in
    let input = Array.make n D.bottom in
    let output = Array.make n D.bottom in
    let inq = Array.make n false in
    let q = Queue.create () in
    let push i =
      if not inq.(i) then begin
        inq.(i) <- true;
        Queue.add i q
      end
    in
    push cfg.Cfg.entry;
    (* safety net: a lawful widening stabilizes far below this *)
    let budget = 10_000 * (n + 1) in
    let steps = ref 0 in
    while not (Queue.is_empty q) do
      incr steps;
      if !steps > budget then
        raise
          (Diverged
             (Printf.sprintf
                "fixpoint exceeded %d steps over %d nodes (widening did not \
                 stabilize)"
                budget n));
      let i = Queue.pop q in
      inq.(i) <- false;
      let node = cfg.Cfg.nodes.(i) in
      let joined =
        List.fold_left
          (fun acc p -> D.join acc output.(p))
          (if i = cfg.Cfg.entry then init else D.bottom)
          node.Cfg.preds
      in
      let next =
        if node.Cfg.loop_head then D.widen input.(i) joined
        else D.join input.(i) joined
      in
      input.(i) <- next;
      let out =
        if D.equal next D.bottom then D.bottom else transfer node next
      in
      if not (D.equal output.(i) out) then begin
        output.(i) <- out;
        List.iter push node.Cfg.succs
      end
    done;
    { input; output }
end
