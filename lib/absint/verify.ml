(** Semantic verification entry points.

    Runs the abstract-interpretation domains over BackendC functions
    (constant/interval values, path-sensitive initialization) and, when
    a reference implementation is available, the differential summary
    comparator; over a whole target it additionally compiles the
    regression workloads through the reference backend and checks the
    emitted machine code's calling-convention discipline. Every finding
    is a [Sem]-class {!Vega_analysis.Diagnostic} (VS rules) that the
    taxonomy maps to the Err-PS review bucket: a semantic diagnostic is
    a reason for a human to look, never a proof of equivalence the
    other way around. *)

module A = Vega_srclang.Ast
module D = Vega_analysis.Diagnostic
module C = Vega_corpus.Corpus
module B = Vega_backend
module P = Vega_target.Profile

type func_verdict = { fv_fname : string; fv_diags : D.t list }

type report = {
  v_target : string;
  v_funcs : func_verdict list;
  v_asm : D.t list;  (** calling-convention findings over emitted code *)
}

(* spans are keyed by physical identity, so detached ASTs are
   round-tripped through the canonical printer first (same convention
   as Lint.lint_function) *)
let spanned_of_func (f : A.func) =
  let src = Vega_srclang.Lines.to_source (Vega_srclang.Lines.of_func f) in
  match Vega_srclang.Parser.parse_function_spanned_opt src with
  | Ok sp -> (sp.Vega_srclang.Parser.sp_fn, sp.Vega_srclang.Parser.sp_marks)
  | Error _ -> (f, [])

(** All AST-level domains over one function; the differential summary
    comparator runs when a [reference] is supplied. *)
let verify_func ?reference ~fname (f : A.func) : D.t list =
  let f, marks = spanned_of_func f in
  let value_diags = Interval.check ~fname ~marks f in
  let init_diags = Initdom.check ~fname ~marks f in
  let diff_diags =
    match reference with
    | None -> []
    | Some r ->
        let gen_sum = Summary.summarize ~fname ~marks f in
        let ref_sum = Summary.summarize ~fname:(fname ^ ".ref") r in
        Summary.compare_summaries ~fname gen_sum ref_sum
  in
  D.dedup (value_diags @ init_diags @ diff_diags)

(** Like {!verify_func} over source text; a function that does not
    parse yields the analyzer's VA-P01. *)
let verify_source ?reference ~fname src : D.t list =
  match Vega_srclang.Parser.parse_function_spanned_opt src with
  | Error m ->
      [
        D.make ~rule:"VA-P01" ~cls:D.Parse ~severity:D.Error ~fname
          (Printf.sprintf "function does not parse: %s" m);
      ]
  | Ok { Vega_srclang.Parser.sp_fn; sp_marks } ->
      let value_diags = Interval.check ~fname ~marks:sp_marks sp_fn in
      let init_diags = Initdom.check ~fname ~marks:sp_marks sp_fn in
      let diff_diags =
        match reference with
        | None -> []
        | Some r ->
            let gen_sum = Summary.summarize ~fname ~marks:sp_marks sp_fn in
            let ref_sum = Summary.summarize ~fname:(fname ^ ".ref") r in
            Summary.compare_summaries ~fname gen_sum ref_sum
      in
      D.dedup (value_diags @ init_diags @ diff_diags)

(* the reference backend of a target, as the evaluation harness builds
   it: every interface function's inlined reference as a hook source *)
let conv_for vfs (p : P.t) =
  let sources =
    List.filter_map
      (fun (spec : Vega_corpus.Spec.t) ->
        Option.map
          (fun f -> (spec.Vega_corpus.Spec.fname, f))
          (C.reference_inlined spec p))
      C.all_specs
  in
  let hooks = B.Hooks.create vfs ~target:p.P.name ~sources in
  B.Conv.make vfs hooks

(** Compile the regression workloads through the target's reference
    backend and check the emitted assembly's register discipline. *)
let verify_asm ?(opt_levels = [ B.Compiler.O0; B.Compiler.O3 ])
    ?(cases = Vega_ir.Programs.regression) vfs (p : P.t) : D.t list =
  let conv = conv_for vfs p in
  let callee_saved = p.P.regs.P.callee_saved in
  List.concat_map
    (fun (case : Vega_ir.Programs.case) ->
      List.concat_map
        (fun opt ->
          let out =
            B.Compiler.compile conv ~opt (Vega_ir.Programs.modul_of case)
          in
          List.map
            (fun (d : D.t) ->
              {
                d with
                D.msg =
                  Printf.sprintf "%s [%s -%s]" d.D.msg case.Vega_ir.Programs.name
                    (match opt with B.Compiler.O0 -> "O0" | B.Compiler.O3 -> "O3");
              })
            (Regdom.check_asm conv ~callee_saved out.B.Compiler.asm))
        opt_levels)
    cases

(** Verify every reference implementation of a target (each compared
    against itself, which exercises the comparator and must stay
    silent), plus the emitted-code discipline when [asm] is set. *)
let verify_target ?(asm = true) vfs (p : P.t) : report =
  let funcs =
    List.filter_map
      (fun (spec : Vega_corpus.Spec.t) ->
        match C.reference_inlined spec p with
        | None -> None
        | Some f ->
            let fname = spec.Vega_corpus.Spec.fname in
            Some
              { fv_fname = fname; fv_diags = verify_func ~reference:f ~fname f })
      C.all_specs
  in
  let v_asm = if asm then verify_asm vfs p else [] in
  { v_target = p.P.name; v_funcs = funcs; v_asm }

(** Semantic errors in a diagnostic list — the count
    {!Vega.Generate.apply_verdict} folds into the confidence. *)
let sem_errors ds =
  List.length
    (List.filter (fun (d : D.t) -> d.D.cls = D.Sem && D.is_error d) ds)

let report_diags r = List.concat_map (fun fv -> fv.fv_diags) r.v_funcs @ r.v_asm
let diag_count r = List.length (report_diags r)

let sem_count r =
  List.length (List.filter (fun (d : D.t) -> d.D.cls = D.Sem) (report_diags r))

let error_count r = List.length (List.filter D.is_error (report_diags r))
