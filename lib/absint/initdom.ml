(** Path-sensitive initialized-before-use analysis.

    Upgrades the straight-line VA-D02 lint to all-paths reasoning: a
    local's abstract state is [Uninit] (no path reaching here assigned
    it), [Init] (every path did) or [Maybe] (some did, some did not).
    Reading an [Uninit] local is a definite error (VS-I01); reading a
    [Maybe] one is a warning (VS-I02) — the read is wrong on at least
    one executable path unless the paths are correlated in a way the
    domain cannot see. Parameters start [Init]; identifiers the
    function never declares or assigns (globals, enum values) are not
    tracked. *)

module A = Vega_srclang.Ast
module D = Vega_analysis.Diagnostic

type v = Uninit | Init | Maybe

let join_v a b = if a = b then a else Maybe

module Env = Map.Make (String)

type t = Unreachable | Reached of v Env.t

let bottom = Unreachable

let equal a b =
  match (a, b) with
  | Unreachable, Unreachable -> true
  | Reached x, Reached y -> Env.equal ( = ) x y
  | _ -> false

let join a b =
  match (a, b) with
  | Unreachable, x | x, Unreachable -> x
  | Reached x, Reached y ->
      Reached
        (Env.merge
           (fun _ a b ->
             match (a, b) with
             | Some a, Some b -> Some (join_v a b)
             | Some v, None | None, Some v ->
                 (* declared on one path only: scope questions are
                    VA-D01's business, keep what we know *)
                 Some v
             | None, None -> None)
           x y)

(* finite height: join is already a widening *)
let widen = join

let transfer (node : Cfg.point Cfg.node) st =
  match st with
  | Unreachable -> Unreachable
  | Reached env -> (
      match node.Cfg.payload with
      | Cfg.Entry | Cfg.Exit | Cfg.Branch _ -> st
      | Cfg.Stmt s -> (
          match s with
          | A.Decl (_, x, Some _) -> Reached (Env.add x Init env)
          | A.Decl (_, x, None) -> Reached (Env.add x Uninit env)
          | A.Assign (_, A.Id x, _) -> Reached (Env.add x Init env)
          | _ -> st))

(* variables *read* by a point; compound assignments read their lhs *)
let reads_of_point p =
  let rec vars (e : A.expr) acc =
    match e with
    | A.Id x -> x :: acc
    | A.Int _ | A.Str _ | A.Chr _ | A.Bool _ | A.Nullptr | A.Scoped _ -> acc
    | A.Call (_, args) -> List.fold_right vars args acc
    | A.Method (r, _, args) -> vars r (List.fold_right vars args acc)
    | A.Member (r, _) -> vars r acc
    | A.Index (r, i) -> vars r (vars i acc)
    | A.Unop (_, a) -> vars a acc
    | A.Binop (_, a, b) -> vars a (vars b acc)
    | A.Ternary (c, t, f) -> vars c (vars t (vars f acc))
    | A.Cast (_, a) -> vars a acc
  in
  match p with
  | Cfg.Entry | Cfg.Exit -> []
  | Cfg.Branch (e, _) -> vars e []
  | Cfg.Stmt s -> (
      match s with
      | A.Decl (_, _, Some e) -> vars e []
      | A.Decl (_, _, None) -> []
      | A.Assign (A.Set, A.Id _, rhs) -> vars rhs []
      | A.Assign (_, A.Id x, rhs) -> x :: vars rhs []
      | A.Assign (_, lhs, rhs) -> vars lhs (vars rhs [])
      | A.Expr e -> vars e []
      | A.Return (Some e) -> vars e []
      | A.Return None | A.Break | A.Continue -> []
      | A.If _ | A.Switch _ | A.While _ | A.For _ -> [])

module F = Fixpoint.Make (struct
  type nonrec t = t

  let bottom = bottom
  let equal = equal
  let join = join
  let widen = widen
end)

(** VS-I01 definite, VS-I02 possible use of an uninitialized local. *)
let check ~fname ?(marks = []) (f : A.func) : D.t list =
  let init =
    Reached
      (List.fold_left
         (fun env (p : A.param) -> Env.add p.A.pname Init env)
         Env.empty f.A.params)
  in
  let cfg = Cfg.of_func f in
  let r = F.solve cfg ~init ~transfer in
  let diags = ref [] in
  Array.iteri
    (fun i (node : Cfg.point Cfg.node) ->
      match r.F.input.(i) with
      | Unreachable -> ()
      | Reached env ->
          let span =
            Option.bind (Cfg.point_stmt node.Cfg.payload)
              (Vega_srclang.Parser.stmt_span marks)
          in
          List.iter
            (fun x ->
              match Env.find_opt x env with
              | Some Uninit ->
                  diags :=
                    D.make ~rule:"VS-I01" ~cls:D.Sem ~severity:D.Error ~fname
                      ?span
                      (Printf.sprintf
                         "'%s' is read but uninitialized on every path \
                          reaching this statement"
                         x)
                    :: !diags
              | Some Maybe ->
                  diags :=
                    D.make ~rule:"VS-I02" ~cls:D.Sem ~severity:D.Warning
                      ~fname ?span
                      (Printf.sprintf
                         "'%s' may be read before initialization on some path"
                         x)
                    :: !diags
              | Some Init | None -> ())
            (List.sort_uniq compare (reads_of_point node.Cfg.payload)))
    cfg.Cfg.nodes;
  List.rev !diags
