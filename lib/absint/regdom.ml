(** Register-class and calling-convention state over emitted assembly.

    The domain tracks, per machine register, whether it still holds its
    value from function entry ([Orig]), a known constant, or a
    stack-pointer-relative address; the frame is modeled as a finite map
    from entry-SP-relative byte offsets to abstract values, so the
    prologue's saves and the epilogue's restores cancel out exactly.
    At every return instruction the analyzer checks the frame contract
    {!Vega_backend.Regalloc} establishes: callee-saved registers, the
    frame pointer and the return address hold their entry values
    (VS-R01/VS-R03) and the stack pointer is restored (VS-R02).

    Assumptions, documented rather than checked: callees honour the
    same convention (calls preserve SP/FP/callee-saved and the caller's
    frame), and non-stack-derived pointers do not alias the frame. Both
    hold for MiniLLVM-emitted code; hand-mangled assembly is exactly
    what the checks are for. *)

module I = Vega_mc.Mcinst
module B = Vega_backend
module D = Vega_analysis.Diagnostic

(* ---------------------------------------------------------------- *)
(* Abstract values                                                   *)

type av =
  | Orig of int  (** the value register [r] held at function entry *)
  | Const of int
  | Stack of int option  (** entry-SP + offset; [None] = unknown offset *)
  | Other  (** defined, but nothing tracked *)

let join_av a b =
  if a = b then a
  else
    match (a, b) with
    | Stack _, Stack _ -> Stack None
    | _ -> Other

module IMap = Map.Make (Int)

type st = Bot | St of { regs : av array; mem : av IMap.t }

let bottom = Bot

let equal a b =
  match (a, b) with
  | Bot, Bot -> true
  | St x, St y -> x.regs = y.regs && IMap.equal ( = ) x.mem y.mem
  | _ -> false

let join a b =
  match (a, b) with
  | Bot, x | x, Bot -> x
  | St x, St y ->
      let regs = Array.init (Array.length x.regs) (fun i ->
          join_av x.regs.(i) y.regs.(i))
      in
      let mem =
        IMap.merge
          (fun _ u v ->
            match (u, v) with
            | Some u, Some v -> if u = v then Some u else None
            | _ -> None)
          x.mem y.mem
      in
      St { regs; mem }

(* the per-register lattice has height 3 and joined frames only shrink,
   so join already stabilizes; cap the frame size as a safety net *)
let widen a b =
  match join a b with
  | St x when IMap.cardinal x.mem > 256 -> St { x with mem = IMap.empty }
  | s -> s

(* ---------------------------------------------------------------- *)
(* Instruction stream segmented into functions                       *)

type anode = Aentry | Aexit | Ainst of I.inst

type afunc = {
  af_name : string;
  af_insts : I.inst list;  (** in layout order *)
  af_labels : (string * int) list;  (** label -> index of next instruction *)
}

(* Scan the assembly text for labels and function starts (the emitter
   prints [.globl f] immediately before a function's entry label); the
   assembler itself drops label lines, so the split is re-derived here
   with the same comment stripping. *)
let segment (conv : B.Conv.t) asm (insts : I.inst list) : afunc list =
  let find_sub ~sub s =
    let sl = String.length sub and l = String.length s in
    if sl = 0 then None
    else
      let rec go i =
        if i + sl > l then None
        else if String.sub s i sl = sub then Some i
        else go (i + 1)
      in
      go 0
  in
  let strip line =
    let line =
      match find_sub ~sub:conv.B.Conv.comment_char line with
      | Some i -> String.sub line 0 i
      | None -> line
    in
    String.trim line
  in
  let globls = Hashtbl.create 8 in
  let events = ref [] in
  (* (inst ordinal, label) in order *)
  let ordinal = ref 0 in
  String.split_on_char '\n' asm
  |> List.iter (fun raw ->
         let line = strip raw in
         if line = "" then ()
         else if String.length line > 0 && line.[String.length line - 1] = ':'
         then
           events := (!ordinal, String.sub line 0 (String.length line - 1)) :: !events
         else if line.[0] = '.' then begin
           match String.split_on_char ' ' line with
           | [ ".globl"; name ] -> Hashtbl.replace globls name ()
           | _ -> ()
         end
         else incr ordinal);
  let labels = List.rev !events in
  let insts_arr = Array.of_list insts in
  let starts =
    List.filter (fun (_, l) -> Hashtbl.mem globls l) labels
  in
  let bounds =
    let rec go = function
      | (s, name) :: ((s', _) :: _ as rest) -> (name, s, s') :: go rest
      | [ (s, name) ] -> [ (name, s, Array.length insts_arr) ]
      | [] -> []
    in
    go starts
  in
  List.map
    (fun (name, s, e) ->
      {
        af_name = name;
        af_insts =
          Array.to_list (Array.sub insts_arr s (max 0 (e - s)));
        af_labels =
          List.filter_map
            (fun (o, l) -> if o >= s && o <= e then Some (l, o - s) else None)
            labels;
      })
    bounds

(* ---------------------------------------------------------------- *)
(* Per-function CFG                                                  *)

let sem_of tab (inst : I.inst) =
  Option.map (fun i -> i.B.Insntab.sem) (B.Insntab.by_opcode tab inst.I.opcode)

let cfg_of_afunc tab (af : afunc) : anode Cfg.t =
  let insts = Array.of_list af.af_insts in
  let n = Array.length insts in
  (* node 0 = entry, 1..n = instructions, n+1 = exit *)
  let payloads =
    Array.init (n + 2) (fun i ->
        if i = 0 then Aentry
        else if i = n + 1 then Aexit
        else Ainst insts.(i - 1))
  in
  let target l =
    match List.assoc_opt l af.af_labels with
    | Some k when k < n -> Some (k + 1)
    | _ -> None
  in
  (* most recent label at or before each instruction: the hardware-loop
     end's implicit back edge returns to its own block *)
  let own_block = Array.make (max n 1) 1 in
  let cur = ref 1 in
  for k = 0 to n - 1 do
    if List.exists (fun (_, o) -> o = k) af.af_labels then cur := k + 1;
    own_block.(k) <- !cur
  done;
  let succs = Array.make (n + 2) [] in
  succs.(0) <- (if n = 0 then [ n + 1 ] else [ 1 ]);
  for i = 1 to n do
    let inst = insts.(i - 1) in
    let fall = if i = n then [ n + 1 ] else [ i + 1 ] in
    let label_edges =
      List.filter_map
        (function I.Olabel l -> target l | _ -> None)
        inst.I.ops
    in
    succs.(i) <-
      (match sem_of tab inst with
      | Some B.Insntab.Sret -> [ n + 1 ]
      | Some B.Insntab.Sjump ->
          if label_edges = [] then [ n + 1 ] else label_edges
      | Some (B.Insntab.Sbranch _) -> label_edges @ fall
      | Some B.Insntab.Scall -> fall (* call targets are other functions *)
      | Some B.Insntab.Slpend -> own_block.(i - 1) :: fall
      | _ -> fall)
  done;
  let t = Cfg.create payloads succs ~entry:0 ~exit_:(n + 1) in
  Cfg.mark_loop_heads_by_index t;
  t

(* ---------------------------------------------------------------- *)
(* Transfer function                                                 *)

type ctx = {
  tab : B.Insntab.t;
  nregs : int;
  sp : int;
  fp : int;
  ra : int;
  zero : int option;
  callee_saved : int list;
}

let ctx_of_conv (conv : B.Conv.t) ~callee_saved =
  {
    tab = conv.B.Conv.tab;
    nregs = conv.B.Conv.nregs;
    sp = conv.B.Conv.sp;
    fp = conv.B.Conv.fp;
    ra = conv.B.Conv.ra;
    zero = conv.B.Conv.zero;
    callee_saved;
  }

let init_state ctx =
  let regs = Array.init ctx.nregs (fun r -> Orig r) in
  regs.(ctx.sp) <- Stack (Some 0);
  (match ctx.zero with Some z -> regs.(z) <- Const 0 | None -> ());
  St { regs; mem = IMap.empty }

let reg_ops inst =
  List.filter_map (function I.Oreg r -> Some r | _ -> None) inst.I.ops

let imm_op inst =
  List.find_map (function I.Oimm n -> Some n | _ -> None) inst.I.ops

let set_reg ctx regs r v =
  if r >= 0 && r < Array.length regs then begin
    let regs = Array.copy regs in
    regs.(r) <- (match ctx.zero with Some z when z = r -> Const 0 | _ -> v);
    regs
  end
  else regs

let get_reg regs r =
  if r >= 0 && r < Array.length regs then regs.(r) else Other

let alu_val op a b =
  let add a b =
    match (a, b) with
    | Const x, Const y -> Const (x + y)
    | Stack (Some o), Const c | Const c, Stack (Some o) -> Stack (Some (o + c))
    | Stack None, Const _ | Const _, Stack None -> Stack None
    | _ -> Other
  in
  match op with
  | B.Insntab.Aadd -> add a b
  | B.Insntab.Asub -> (
      match (a, b) with
      | Const x, Const y -> Const (x - y)
      | Stack (Some o), Const c -> Stack (Some (o - c))
      | Stack None, Const _ -> Stack None
      | _ -> Other)
  | B.Insntab.Aand | B.Insntab.Aor | B.Insntab.Axor | B.Insntab.Ashl
  | B.Insntab.Ashr | B.Insntab.Aslt -> (
      match (a, b) with
      | Const x, Const y -> (
          match op with
          | B.Insntab.Aand -> Const (x land y)
          | B.Insntab.Aor -> Const (x lor y)
          | B.Insntab.Axor -> Const (x lxor y)
          | B.Insntab.Ashl when y >= 0 && y <= 62 -> Const (x lsl y)
          | B.Insntab.Ashr when y >= 0 && y <= 62 -> Const (x asr y)
          | B.Insntab.Aslt -> Const (if x < y then 1 else 0)
          | _ -> Other)
      | _ -> Other)

let transfer ctx (node : anode Cfg.node) st =
  match (st, node.Cfg.payload) with
  | Bot, _ -> Bot
  | _, (Aentry | Aexit) -> st
  | St { regs; mem }, Ainst inst -> (
      let def v = St { regs = set_reg ctx regs (List.hd (reg_ops inst)) v; mem } in
      match (sem_of ctx.tab inst, reg_ops inst) with
      | Some (B.Insntab.Salu op), d :: a :: b :: _ ->
          St
            {
              regs = set_reg ctx regs d (alu_val op (get_reg regs a) (get_reg regs b));
              mem;
            }
      | Some (B.Insntab.Salui op), d :: a :: _ ->
          let b = match imm_op inst with Some n -> Const n | None -> Other in
          St
            {
              regs = set_reg ctx regs d (alu_val op (get_reg regs a) b);
              mem;
            }
      | Some B.Insntab.Smovi, _ :: _ -> (
          match imm_op inst with
          | Some n -> def (Const n)
          | None -> def Other (* symbol address *))
      | Some B.Insntab.Smov, d :: s :: _ ->
          St { regs = set_reg ctx regs d (get_reg regs s); mem }
      | Some (B.Insntab.Smul | B.Insntab.Sdiv | B.Insntab.Smadd), _ :: _ ->
          def Other
      | Some B.Insntab.Sload, d :: base :: _ -> (
          let off = Option.value (imm_op inst) ~default:0 in
          match get_reg regs base with
          | Stack (Some o) ->
              let v =
                match IMap.find_opt (o + off) mem with
                | Some v -> v
                | None -> Other
              in
              St { regs = set_reg ctx regs d v; mem }
          | _ -> def Other)
      | Some B.Insntab.Sstore, src :: base :: _ -> (
          let off = Option.value (imm_op inst) ~default:0 in
          match get_reg regs base with
          | Stack (Some o) ->
              St { regs; mem = IMap.add (o + off) (get_reg regs src) mem }
          | Stack None | Other ->
              (* store through an unknown pointer: only stack-derived
                 pointers may alias the frame, and this one might *)
              if get_reg regs base = Stack None then St { regs; mem = IMap.empty }
              else St { regs; mem }
          | _ -> St { regs; mem })
      | Some B.Insntab.Scall, _ ->
          let keep r =
            r = ctx.sp || r = ctx.fp
            || Some r = ctx.zero
            || List.mem r ctx.callee_saved
          in
          St
            {
              regs =
                Array.init (Array.length regs) (fun r ->
                    if keep r then regs.(r) else Other);
              mem;
            }
      | ( Some
            ( B.Insntab.Sbranch _ | B.Insntab.Sjump | B.Insntab.Sret
            | B.Insntab.Snop | B.Insntab.Slpsetup | B.Insntab.Slpend
            | B.Insntab.Svadd | B.Insntab.Svmul ),
          _ )
      (* defining instructions with a malformed operand list: no
         tracked effect *)
      | Some _, _ ->
          st
      | None, _ ->
          (* unknown opcode: clobber everything it names *)
          St
            {
              regs =
                List.fold_left
                  (fun regs r -> set_reg ctx regs r Other)
                  regs (reg_ops inst);
              mem;
            })

(* ---------------------------------------------------------------- *)
(* Checker                                                           *)

module F = Fixpoint.Make (struct
  type t = st

  let bottom = bottom
  let equal = equal
  let join = join
  let widen = widen
end)

let reg_name (conv : B.Conv.t) r = B.Conv.reg_name conv r

(** Check one segmented function against the calling convention. *)
let check_afunc conv ctx (af : afunc) : D.t list =
  let cfg = cfg_of_afunc ctx.tab af in
  let r = F.solve cfg ~init:(init_state ctx) ~transfer:(transfer ctx) in
  let diags = ref [] in
  let report ~rule msg =
    diags :=
      D.make ~rule ~cls:D.Sem ~severity:D.Error ~fname:af.af_name msg :: !diags
  in
  Array.iteri
    (fun i (node : anode Cfg.node) ->
      match (node.Cfg.payload, r.F.input.(i)) with
      | Ainst inst, St { regs; _ }
        when sem_of ctx.tab inst = Some B.Insntab.Sret ->
          (if get_reg regs ctx.sp <> Stack (Some 0) then
             report ~rule:"VS-R02"
               (Printf.sprintf
                  "stack discipline: %s is not restored to its entry value \
                   at return"
                  (reg_name conv ctx.sp)));
          List.iter
            (fun cs ->
              if cs <> ctx.sp && get_reg regs cs <> Orig cs then
                report ~rule:"VS-R01"
                  (Printf.sprintf
                     "calling convention: callee-saved %s does not hold its \
                      entry value at return"
                     (reg_name conv cs)))
            (List.sort_uniq compare (ctx.fp :: ctx.callee_saved));
          if get_reg regs ctx.ra <> Orig ctx.ra then
            report ~rule:"VS-R03"
              (Printf.sprintf
                 "calling convention: return address %s is clobbered at \
                  return"
                 (reg_name conv ctx.ra))
      | _ -> ())
    cfg.Cfg.nodes;
  List.rev !diags

(** Parse and verify a whole assembly listing. A listing whose
    instruction stream the target's own assembler hooks cannot parse is
    itself reported (VS-R04). Directive lines are dropped first: they
    carry no register semantics, and data directives (the emitter's
    [.word] tables) are not part of every target's assembler dialect. *)
let check_asm (conv : B.Conv.t) ~callee_saved asm : D.t list =
  let is_directive raw =
    let line =
      match
        let cc = conv.B.Conv.comment_char in
        let rec find i =
          if i + String.length cc > String.length raw then None
          else if String.sub raw i (String.length cc) = cc then Some i
          else find (i + 1)
        in
        find 0
      with
      | Some i -> String.trim (String.sub raw 0 i)
      | None -> String.trim raw
    in
    String.length line > 0 && line.[0] = '.'
  in
  let inst_text =
    String.split_on_char '\n' asm
    |> List.filter (fun l -> not (is_directive l))
    |> String.concat "\n"
  in
  match B.Asmparser.parse conv inst_text with
  | Error m ->
      [
        D.make ~rule:"VS-R04" ~cls:D.Sem ~severity:D.Error ~fname:"<asm>"
          (Printf.sprintf "assembly does not parse: %s" m);
      ]
  | Ok insts ->
      let ctx = ctx_of_conv conv ~callee_saved in
      List.concat_map (check_afunc conv ctx) (segment conv asm insts)

(** True for a line that restores a callee-saved register, the frame
    pointer or the return address from the frame — the lines fault
    injection deletes to seed VS-R01/VS-R03 defects. *)
let restore_line (conv : B.Conv.t) ~callee_saved line =
  let line = String.trim line in
  match B.Insntab.by_enum conv.B.Conv.tab "LDri" with
  | None -> false
  | Some info ->
      let mn = info.B.Insntab.mnemonic ^ " " in
      let ml = String.length mn in
      String.length line > ml
      && String.sub line 0 ml = mn
      &&
      match String.index_opt line ',' with
      | None -> false
      | Some c ->
          let dest = String.trim (String.sub line ml (c - ml)) in
          List.exists
            (fun r -> B.Conv.reg_name conv r = dest)
            (conv.B.Conv.ra :: conv.B.Conv.fp :: callee_saved)
