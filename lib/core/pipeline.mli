(** End-to-end VEGA pipeline (Fig. 5): corpus pre-processing, Code-Feature
    Mapping (templatization, feature selection, feature representation),
    Model Creation (CodeBE fine-tuning), and Target-Specific Code
    Generation for held-out targets. *)

type bundle = {
  spec : Vega_corpus.Spec.t;
  tpl : Template.t;
  analysis : Featsel.t;
  hints : Resolve.hints;
}

type split = Group_split | Backend_split
(** Training/verification split policy of Sec. 4.1.2: by function within
    each group (default, 75/25) or by whole backend (the ablation that
    costs 11-26% accuracy). *)

type prepared = {
  corpus : Vega_corpus.Corpus.t;
  ctx : Featsel.context;
  bundles : bundle list;
  quarantined : string list;
      (** training targets skipped because their description files are
          corrupt (one [Descfile_corruption] fault per file in
          [prep_report]); their reference implementations are dropped
          too. Held-out targets are never quarantined — generation
          against them degrades through the ladder instead. *)
  prep_report : Vega_robust.Report.t;
      (** corpus-corruption and stage faults observed while preparing;
          empty on a healthy corpus *)
}

type t = {
  prep : prepared;
  codebe : Codebe.t;
  retrieval : Retrieval.t;
  train_pairs : (string list * string list) list;
  verify_pairs : (string list * string list) list;
}

type config = {
  train_cfg : Codebe.train_config;
  max_inst_per_column : int;  (** training subsample of repeated arms *)
  split : split;
  split_seed : int;
  train_fraction : float;  (** 0.75 in the paper *)
}

val default_config : config
val test_config : config
(** Tiny settings for unit/integration tests. *)

val prepare :
  ?report:Vega_robust.Report.t -> ?corpus:Vega_corpus.Corpus.t -> unit -> prepared
(** Stage 1 (Code-Feature Mapping) over the training targets; held-out
    target catalogs are registered for later generation. Corrupted
    implementations (unregistered target, missing leading
    function-definition line, pre-processing crash) are recorded in
    [report] and dropped per-impl — a group is skipped only when no valid
    implementation remains; the run itself never aborts. *)

val bundle_for : prepared -> string -> bundle option
(** Lookup by interface-function name. *)

val train : config -> prepared -> t
(** Stage 2 (Model Creation): build FVs once per bundle, split, fine-tune
    CodeBE, and fit the retrieval baseline on the {e train} side of the
    split only — verification outputs never enter the index. *)

val verification_exact_match : t -> float
(** Exact Match on the verification set (paper: 99.03%). *)

val model_decoder : t -> Generate.decoder
val retrieval_decoder : t -> Generate.decoder

val generate_backend :
  ?fallback:Generate.decoder ->
  ?report:Vega_robust.Report.t ->
  ?sup:Vega_robust.Supervisor.t ->
  ?domains:int ->
  t -> target:string -> decoder:Generate.decoder -> Generate.gen_func list
(** Stage 3: generate every interface function for a new target.
    [fallback], [report] and [sup] (deadlines, backoff, circuit breaker)
    thread through to {!Generate.run}'s degradation ladder.

    [domains] (default 1) fans the independent functions out over a
    fixed-size domain pool. Results stay in bundle order and are
    bit-identical to the sequential path; [sup] is forked per worker
    (stats folded back after the join) and [report] recording is
    mutex-guarded. *)

val generate_function :
  ?fallback:Generate.decoder ->
  ?report:Vega_robust.Report.t ->
  ?sup:Vega_robust.Supervisor.t ->
  t -> target:string -> decoder:Generate.decoder -> fname:string ->
  Generate.gen_func option

(** {1 Crash-safe durable generation}

    A durable run write-ahead-journals every statement before acting on
    it and snapshots completed functions periodically; after a crash it
    resumes from the journal and produces output bit-identical to an
    uninterrupted run. Journal replay — not the snapshot — is the source
    of truth. *)

val fingerprint : t -> target:string -> string
(** Checksum over the target name and the prepared function set; stored
    in the journal header so resume refuses a mismatched run dir. *)

type durable_outcome = {
  d_funcs : Generate.gen_func list;  (** bundle order, like
      {!generate_backend} *)
  d_resumed : int;  (** functions restored from the journal *)
  d_generated : int;  (** functions generated (or regenerated) this run *)
  d_records : int;  (** journal records appended this run *)
  d_torn : bool;  (** a torn trailing record was recovered on resume *)
}

val journal_path : string -> string
val checkpoint_path : string -> string
(** Layout of a run directory. *)

val stmt_of_gen : string -> Generate.gen_stmt -> Vega_robust.Journal.stmt
val completed_of_gen :
  string -> Generate.gen_func -> Vega_robust.Journal.completed
val func_of_completed :
  bundle -> string -> Vega_robust.Journal.completed -> Generate.gen_func
(** Conversions between generation results and their journal records,
    shared with the serving layer ([vega.serve]), which journals
    per-request instead of per-backend but must replay to the same
    bit-identical functions. *)

val generate_backend_durable :
  ?fallback:Generate.decoder ->
  ?report:Vega_robust.Report.t ->
  ?sup:Vega_robust.Supervisor.t ->
  ?resume:bool ->
  ?kill_at:int ->
  ?checkpoint_every:int ->
  ?domains:int ->
  run_dir:string ->
  t -> target:string -> decoder:Generate.decoder ->
  (durable_outcome, string) result
(** Whole-backend generation under the write-ahead journal in
    [run_dir]. Fresh runs refuse an existing journal; [resume:true]
    replays it (recovering a torn tail and compacting it away, and
    cross-checking the checkpoint snapshot against replay — a corrupt or
    disagreeing snapshot is recorded as a fault and ignored), restores
    completed functions, and regenerates only the rest. Functions whose
    statement trail was cut mid-write regenerate from scratch, so the
    final output is bit-identical to an uninterrupted run.

    [kill_at] arms the simulated hard crash ({!Vega_robust.Journal.Killed}
    escapes after that many durable records — the [faultcheck] harness).
    [Error] explains why the run directory cannot be used; faults during
    generation never produce [Error] — they degrade statements through
    the ladder as usual and are journaled ahead like everything else.

    [domains] parallelizes generation like {!generate_backend}: journal
    appends are mutex-guarded and replay keys statements by function
    name, so interleaved trails from concurrent functions resume
    correctly, and a [kill_at] crash in any domain stops every worker
    (the writer stays dead). [d_funcs] keeps bundle order either way. *)
