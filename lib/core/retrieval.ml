type entry = { bag : (string, float) Hashtbl.t; norm : float; output : string list }

type t = entry array

let bag_of tokens =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun tok ->
      Hashtbl.replace tbl tok
        (1.0 +. Option.value ~default:0.0 (Hashtbl.find_opt tbl tok)))
    tokens;
  tbl

let norm_of tbl =
  sqrt (Hashtbl.fold (fun _ c acc -> acc +. (c *. c)) tbl 0.0)

let build pairs =
  Array.of_list
    (List.map
       (fun ((fv : Featrep.fv), output) ->
         let bag = bag_of fv.input in
         { bag; norm = norm_of bag; output })
       pairs)

let size t = Array.length t
let outputs t = Array.to_list (Array.map (fun e -> e.output) t)

let cosine a b =
  let dot = ref 0.0 in
  Hashtbl.iter
    (fun tok c ->
      match Hashtbl.find_opt b.bag tok with
      | Some c' -> dot := !dot +. (c *. c')
      | None -> ())
    a.bag;
  if a.norm = 0.0 || b.norm = 0.0 then 0.0 else !dot /. (a.norm *. b.norm)

let decode t (fv : Featrep.fv) =
  let query =
    let bag = bag_of fv.input in
    { bag; norm = norm_of bag; output = [] }
  in
  let best = ref None in
  Array.iter
    (fun e ->
      let s = cosine query e in
      match !best with
      | Some (_, bs) when bs >= s -> ()
      | _ -> best := Some (e, s))
    t;
  match !best with
  | Some (e, s) -> (e.output, Array.make (List.length e.output) s)
  | None -> ([], [||])
