module Corpus = Vega_corpus.Corpus

type bundle = {
  spec : Vega_corpus.Spec.t;
  tpl : Template.t;
  analysis : Featsel.t;
  hints : Resolve.hints;
}

type split = Group_split | Backend_split

type prepared = {
  corpus : Corpus.t;
  ctx : Featsel.context;
  bundles : bundle list;
  prep_report : Vega_robust.Report.t;
}

type t = {
  prep : prepared;
  codebe : Codebe.t;
  retrieval : Retrieval.t;
  train_pairs : (string list * string list) list;
  verify_pairs : (string list * string list) list;
}

type config = {
  train_cfg : Codebe.train_config;
  max_inst_per_column : int;
  split : split;
  split_seed : int;
  train_fraction : float;
}

let default_config =
  {
    train_cfg = Codebe.default_train_config;
    max_inst_per_column = 3;
    split = Group_split;
    split_seed = 13;
    train_fraction = 0.75;
  }

let test_config =
  {
    default_config with
    train_cfg = Codebe.tiny_train_config;
    max_inst_per_column = 2;
  }

let src_log = Logs.Src.create "vega.pipeline" ~doc:"VEGA pipeline"

module Log = (val Logs.src_log src_log : Logs.LOG)

(* Pre-process one reference implementation into template inputs. *)
let impl_items (impl : Corpus.impl) =
  let lines =
    Preprocess.run
      (Preprocess.normalize_ifchains
         (Preprocess.inline_helpers impl.Corpus.fn impl.Corpus.helpers))
      ~helpers:impl.Corpus.helpers
  in
  lines

(* Per-implementation structural validation: an impl survives only when
   its target is registered and its flattened body leads with the
   function-definition line. Anything else is corpus corruption —
   recorded, and the impl dropped rather than aborting the run. *)
let validated_impls report fname (impls : Corpus.impl list) =
  let fail detail =
    Vega_robust.Report.record report ~stage:"prepare"
      (Vega_robust.Fault.Corpus_corruption { group = fname; detail });
    None
  in
  List.filter_map
    (fun (impl : Corpus.impl) ->
      let tgt = impl.Corpus.target in
      if Vega_target.Registry.find tgt = None then
        fail (Printf.sprintf "implementation for unregistered target %s" tgt)
      else
        match
          Vega_robust.Stage.protect ~report ~stage:"prepare" (fun () ->
              impl_items impl)
        with
        | Error _ -> None
        | Ok
            (Preprocess.Single ({ Preprocess.kind = "fundef"; _ } as sig_line)
            :: rest) ->
            Some (tgt, sig_line, rest)
        | Ok _ ->
            fail
              (Printf.sprintf
                 "%s implementation does not start with a function-definition \
                  line"
                 tgt))
    impls

let bundle_of_group report ctx (g : Corpus.group) =
  let fname = g.Corpus.spec.Vega_corpus.Spec.fname in
  match validated_impls report fname g.Corpus.impls with
  | [] ->
      if g.Corpus.impls <> [] then
        Vega_robust.Report.record report ~stage:"prepare"
          (Vega_robust.Fault.Corpus_corruption
             { group = fname; detail = "no valid implementation left" });
      None
  | per_target -> (
      match
        Vega_robust.Stage.protect ~report ~stage:"prepare" (fun () ->
            let impls = List.map (fun (t, _, items) -> (t, items)) per_target in
            let signature_lines = List.map (fun (t, s, _) -> (t, s)) per_target in
            let tpl =
              Template.build ~fname
                ~module_:g.Corpus.spec.Vega_corpus.Spec.module_ impls
                ~signature_lines
            in
            let analysis = Featsel.analyze ctx tpl in
            let hints = Resolve.collect_hints analysis tpl in
            { spec = g.Corpus.spec; tpl; analysis; hints })
      with
      | Ok b -> Some b
      | Error _ -> None)

let prepare ?report ?corpus () =
  let report =
    match report with Some r -> r | None -> Vega_robust.Report.create ()
  in
  let corpus = match corpus with Some c -> c | None -> Corpus.build () in
  let training_targets =
    List.map (fun (p : Vega_target.Profile.t) -> p.name) Vega_target.Registry.training
  in
  let ctx = Featsel.make_context corpus.Corpus.vfs ~targets:training_targets in
  (* register held-out targets so generation can read their files *)
  let ctx =
    List.fold_left
      (fun ctx (p : Vega_target.Profile.t) -> Featsel.add_target ctx p.name)
      ctx Vega_target.Registry.held_out
  in
  let bundles =
    List.filter_map
      (fun (g : Corpus.group) ->
        if g.Corpus.impls = [] then None else bundle_of_group report ctx g)
      corpus.Corpus.groups
  in
  Log.info (fun m -> m "prepared %d function templates" (List.length bundles));
  { corpus; ctx; bundles; prep_report = report }

let bundle_for prep fname =
  List.find_opt (fun b -> b.spec.Vega_corpus.Spec.fname = fname) prep.bundles

(* hash-free deterministic pseudo-random assignment for splits *)
let in_train_fraction seed key fraction =
  let h = Hashtbl.hash (seed, key) land 0xFFFF in
  float_of_int h /. 65536.0 < fraction

let train cfg prep =
  let train_pairs = ref [] and verify_pairs = ref [] in
  List.iter
    (fun b ->
      let fvs =
        Featrep.training_fvs b.analysis b.tpl
          ~max_inst_per_column:cfg.max_inst_per_column
      in
      List.iter
        (fun (fv : Featrep.fv) ->
          match fv.output with
          | Some output ->
              let key =
                match cfg.split with
                | Group_split ->
                    (* per function within the group *)
                    b.spec.Vega_corpus.Spec.fname ^ "/" ^ fv.target
                | Backend_split -> fv.target
              in
              let pair = (fv.input, output) in
              if in_train_fraction cfg.split_seed key cfg.train_fraction then
                train_pairs := pair :: !train_pairs
              else verify_pairs := pair :: !verify_pairs
          | None -> ())
        fvs)
    prep.bundles;
  let train_pairs = List.rev !train_pairs in
  let verify_pairs = List.rev !verify_pairs in
  Log.info (fun m ->
      m "training CodeBE on %d pairs (%d verification)"
        (List.length train_pairs) (List.length verify_pairs));
  let codebe = Codebe.train cfg.train_cfg train_pairs in
  (* the retrieval baseline needs fv records; rebuild them aligned *)
  let retr_pairs = ref [] in
  List.iter
    (fun b ->
      let fvs =
        Featrep.training_fvs b.analysis b.tpl
          ~max_inst_per_column:cfg.max_inst_per_column
      in
      List.iter
        (fun (fv : Featrep.fv) ->
          match fv.output with
          | Some output -> retr_pairs := (fv, output) :: !retr_pairs
          | None -> ())
        fvs)
    prep.bundles;
  let retrieval = Retrieval.build (List.rev !retr_pairs) in
  { prep; codebe; retrieval; train_pairs; verify_pairs }

let verification_exact_match t =
  (* cap for time: EM over at most 400 held-out pairs *)
  let pairs = List.filteri (fun i _ -> i < 400) t.verify_pairs in
  Codebe.exact_match t.codebe pairs

let model_decoder t (fv : Featrep.fv) = Codebe.infer t.codebe fv.input
let retrieval_decoder t = Retrieval.decode t.retrieval

let generate_backend ?fallback ?report t ~target ~decoder =
  List.map
    (fun b ->
      Generate.run ?fallback ?report t.prep.ctx b.tpl b.analysis b.hints ~target
        ~decoder)
    t.prep.bundles

let generate_function ?fallback ?report t ~target ~decoder ~fname =
  Option.map
    (fun b ->
      Generate.run ?fallback ?report t.prep.ctx b.tpl b.analysis b.hints ~target
        ~decoder)
    (bundle_for t.prep fname)
