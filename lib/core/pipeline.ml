module Corpus = Vega_corpus.Corpus

type bundle = {
  spec : Vega_corpus.Spec.t;
  tpl : Template.t;
  analysis : Featsel.t;
  hints : Resolve.hints;
}

type split = Group_split | Backend_split

type prepared = {
  corpus : Corpus.t;
  ctx : Featsel.context;
  bundles : bundle list;
  quarantined : string list;
  prep_report : Vega_robust.Report.t;
}

type t = {
  prep : prepared;
  codebe : Codebe.t;
  retrieval : Retrieval.t;
  train_pairs : (string list * string list) list;
  verify_pairs : (string list * string list) list;
}

type config = {
  train_cfg : Codebe.train_config;
  max_inst_per_column : int;
  split : split;
  split_seed : int;
  train_fraction : float;
}

let default_config =
  {
    train_cfg = Codebe.default_train_config;
    max_inst_per_column = 3;
    split = Group_split;
    split_seed = 13;
    train_fraction = 0.75;
  }

let test_config =
  {
    default_config with
    train_cfg = Codebe.tiny_train_config;
    max_inst_per_column = 2;
  }

let src_log = Logs.Src.create "vega.pipeline" ~doc:"VEGA pipeline"

module Log = (val Logs.src_log src_log : Logs.LOG)

(* Pre-process one reference implementation into template inputs. *)
let impl_items (impl : Corpus.impl) =
  let lines =
    Preprocess.run
      (Preprocess.normalize_ifchains
         (Preprocess.inline_helpers impl.Corpus.fn impl.Corpus.helpers))
      ~helpers:impl.Corpus.helpers
  in
  lines

(* Per-implementation structural validation: an impl survives only when
   its target is registered and its flattened body leads with the
   function-definition line. Anything else is corpus corruption —
   recorded, and the impl dropped rather than aborting the run. *)
let validated_impls report fname (impls : Corpus.impl list) =
  let fail detail =
    Vega_robust.Report.record report ~stage:"prepare"
      (Vega_robust.Fault.Corpus_corruption { group = fname; detail });
    None
  in
  List.filter_map
    (fun (impl : Corpus.impl) ->
      let tgt = impl.Corpus.target in
      if Vega_target.Registry.find tgt = None then
        fail (Printf.sprintf "implementation for unregistered target %s" tgt)
      else
        match
          Vega_robust.Stage.protect ~report ~stage:"prepare" (fun () ->
              impl_items impl)
        with
        | Error _ -> None
        | Ok
            (Preprocess.Single ({ Preprocess.kind = "fundef"; _ } as sig_line)
            :: rest) ->
            Some (tgt, sig_line, rest)
        | Ok _ ->
            fail
              (Printf.sprintf
                 "%s implementation does not start with a function-definition \
                  line"
                 tgt))
    impls

let bundle_of_group report ctx (g : Corpus.group) =
  let fname = g.Corpus.spec.Vega_corpus.Spec.fname in
  match validated_impls report fname g.Corpus.impls with
  | [] ->
      if g.Corpus.impls <> [] then
        Vega_robust.Report.record report ~stage:"prepare"
          (Vega_robust.Fault.Corpus_corruption
             { group = fname; detail = "no valid implementation left" });
      None
  | per_target -> (
      match
        Vega_robust.Stage.protect ~report ~stage:"prepare" (fun () ->
            let impls = List.map (fun (t, _, items) -> (t, items)) per_target in
            let signature_lines = List.map (fun (t, s, _) -> (t, s)) per_target in
            let tpl =
              Template.build ~fname
                ~module_:g.Corpus.spec.Vega_corpus.Spec.module_ impls
                ~signature_lines
            in
            let analysis = Featsel.analyze ctx tpl in
            let hints = Resolve.collect_hints analysis tpl in
            { spec = g.Corpus.spec; tpl; analysis; hints })
      with
      | Ok b -> Some b
      | Error _ -> None)

let prepare ?report ?corpus () =
  let report =
    match report with Some r -> r | None -> Vega_robust.Report.create ()
  in
  let corpus = match corpus with Some c -> c | None -> Corpus.build () in
  let training_targets =
    List.map (fun (p : Vega_target.Profile.t) -> p.name) Vega_target.Registry.training
  in
  (* Quarantine: a training target whose description files are binary
     garbage is skipped — its catalog would poison feature selection for
     every group — instead of failing whole-corpus prep. Each corrupt
     file is recorded as a [Descfile_corruption] fault by the scan.
     Held-out targets are not scanned here: they stay registered, and
     generation against a corrupt held-out target degrades through the
     ladder instead. *)
  let quarantined, training_targets =
    List.partition
      (fun tgt ->
        Vega_robust.Inject.scan_vfs ~report corpus.Corpus.vfs ~target:tgt
        <> [])
      training_targets
  in
  if quarantined <> [] then
    Log.warn (fun m ->
        m "quarantined training targets: %s" (String.concat ", " quarantined));
  let corpus =
    if quarantined = [] then corpus
    else
      {
        corpus with
        Corpus.groups =
          List.map
            (fun (g : Corpus.group) ->
              {
                g with
                Corpus.impls =
                  List.filter
                    (fun (i : Corpus.impl) ->
                      not (List.mem i.Corpus.target quarantined))
                    g.Corpus.impls;
              })
            corpus.Corpus.groups;
      }
  in
  let ctx = Featsel.make_context corpus.Corpus.vfs ~targets:training_targets in
  (* register held-out targets so generation can read their files *)
  let ctx =
    List.fold_left
      (fun ctx (p : Vega_target.Profile.t) -> Featsel.add_target ctx p.name)
      ctx Vega_target.Registry.held_out
  in
  let bundles =
    List.filter_map
      (fun (g : Corpus.group) ->
        if g.Corpus.impls = [] then None else bundle_of_group report ctx g)
      corpus.Corpus.groups
  in
  Log.info (fun m -> m "prepared %d function templates" (List.length bundles));
  { corpus; ctx; bundles; quarantined; prep_report = report }

let bundle_for prep fname =
  List.find_opt (fun b -> b.spec.Vega_corpus.Spec.fname = fname) prep.bundles

(* hash-free deterministic pseudo-random assignment for splits *)
let in_train_fraction seed key fraction =
  let h = Hashtbl.hash (seed, key) land 0xFFFF in
  float_of_int h /. 65536.0 < fraction

let train cfg prep =
  (* one Featrep pass per bundle feeds both the model split and the
     retrieval index (it used to be recomputed per consumer) *)
  let train_pairs = ref [] and verify_pairs = ref [] and retr_pairs = ref [] in
  List.iter
    (fun b ->
      let fvs =
        Featrep.training_fvs b.analysis b.tpl
          ~max_inst_per_column:cfg.max_inst_per_column
      in
      List.iter
        (fun (fv : Featrep.fv) ->
          match fv.output with
          | Some output ->
              let key =
                match cfg.split with
                | Group_split ->
                    (* per function within the group *)
                    b.spec.Vega_corpus.Spec.fname ^ "/" ^ fv.target
                | Backend_split -> fv.target
              in
              let pair = (fv.input, output) in
              if in_train_fraction cfg.split_seed key cfg.train_fraction then begin
                train_pairs := pair :: !train_pairs;
                (* the retrieval baseline indexes the train side only:
                   indexing verification outputs would leak held-out
                   answers into the statistical-method comparison *)
                retr_pairs := (fv, output) :: !retr_pairs
              end
              else verify_pairs := pair :: !verify_pairs
          | None -> ())
        fvs)
    prep.bundles;
  let train_pairs = List.rev !train_pairs in
  let verify_pairs = List.rev !verify_pairs in
  Log.info (fun m ->
      m "training CodeBE on %d pairs (%d verification)"
        (List.length train_pairs) (List.length verify_pairs));
  let codebe = Codebe.train cfg.train_cfg train_pairs in
  let retrieval = Retrieval.build (List.rev !retr_pairs) in
  { prep; codebe; retrieval; train_pairs; verify_pairs }

let verification_exact_match t =
  (* cap for time: EM over at most 400 held-out pairs *)
  let pairs = List.filteri (fun i _ -> i < 400) t.verify_pairs in
  Codebe.exact_match t.codebe pairs

let model_decoder t (fv : Featrep.fv) = Codebe.infer t.codebe fv.input
let retrieval_decoder t = Retrieval.decode t.retrieval

(* Bundles are independent, so whole-backend generation fans out over a
   domain pool: every shared structure on the path is read-only at
   generation time (vfs, vocab, model weights, retrieval entries,
   pre-registered target catalogs), the autodiff tape is domain-local,
   and the report is mutex-guarded. The supervisor carries per-function
   mutable state, so each worker gets a fork whose stats the parent
   absorbs after the join. Results keep bundle order regardless of
   scheduling, so parallel output is bit-identical to sequential. *)
let with_worker_sups ?sup ~domains run =
  let subs =
    Array.init domains (fun w ->
        Option.map (Vega_robust.Supervisor.fork ~index:w) sup)
  in
  let results = run (fun w -> subs.(w)) in
  Option.iter
    (fun parent ->
      Array.iter
        (Option.iter (Vega_robust.Supervisor.absorb parent))
        subs)
    sup;
  results

let generate_backend ?fallback ?report ?sup ?(domains = 1) t ~target ~decoder =
  let gen sup b =
    Generate.run ?fallback ?report ?sup t.prep.ctx b.tpl b.analysis b.hints
      ~target ~decoder
  in
  if domains <= 1 then List.map (gen sup) t.prep.bundles
  else
    with_worker_sups ?sup ~domains (fun ctx ->
        Vega_util.Par.map_ctx ~domains ~ctx gen t.prep.bundles)

let generate_function ?fallback ?report ?sup t ~target ~decoder ~fname =
  Option.map
    (fun b ->
      Generate.run ?fallback ?report ?sup t.prep.ctx b.tpl b.analysis b.hints
        ~target ~decoder)
    (bundle_for t.prep fname)

(* ------------------------------------------------------------------ *)
(* Crash-safe durable generation: write-ahead journal + checkpoints     *)

module J = Vega_robust.Journal
module Ckpt = Vega_robust.Checkpoint

let fingerprint t ~target =
  (* ties a run directory to one prepared pipeline + target: same
     function set, same template shapes *)
  Vega_robust.Wire.checksum
    (String.concat "\n"
       (target
       :: List.map
            (fun b ->
              Printf.sprintf "%s/%d" b.spec.Vega_corpus.Spec.fname
                (List.length b.tpl.Template.columns))
            t.prep.bundles))

type durable_outcome = {
  d_funcs : Generate.gen_func list;
  d_resumed : int;
  d_generated : int;
  d_records : int;
  d_torn : bool;
}

let journal_path run_dir = Filename.concat run_dir "journal.log"
let checkpoint_path run_dir = Filename.concat run_dir "checkpoint.ckpt"

let rec mkdir_p dir =
  if dir <> "" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let stmt_of_gen fname (s : Generate.gen_stmt) =
  {
    J.j_fname = fname;
    j_col = s.Generate.g_col;
    j_line = s.Generate.g_line;
    j_inst = s.Generate.g_inst;
    j_score = s.Generate.g_score;
    j_tokens = s.Generate.g_tokens;
    j_shape_ok = s.Generate.g_shape_ok;
    j_level = s.Generate.g_level;
  }

let gen_of_stmt (s : J.stmt) =
  {
    Generate.g_col = s.J.j_col;
    g_line = s.J.j_line;
    g_inst = s.J.j_inst;
    g_score = s.J.j_score;
    g_tokens = s.J.j_tokens;
    g_shape_ok = s.J.j_shape_ok;
    g_level = s.J.j_level;
  }

let completed_of_gen fname (gf : Generate.gen_func) =
  {
    J.c_fname = fname;
    c_confidence = gf.Generate.gf_confidence;
    c_stmts = List.map (stmt_of_gen fname) gf.Generate.gf_stmts;
  }

let func_of_completed b target (c : J.completed) =
  {
    Generate.gf_fname = c.J.c_fname;
    gf_module = b.tpl.Template.module_;
    gf_target = target;
    gf_confidence = c.J.c_confidence;
    gf_stmts = List.map gen_of_stmt c.J.c_stmts;
  }

(* Cross-check the snapshot against journal replay; the journal wins.
   Any disagreement or corruption is recorded and the snapshot ignored. *)
let check_snapshot report ~cpath ~fp completed =
  let reject message =
    Vega_robust.Report.record report ~stage:"checkpoint"
      (Vega_robust.Fault.Stage_failure { stage = "checkpoint"; message })
  in
  match Ckpt.load ~path:cpath with
  | Ok c when c.Ckpt.c_fingerprint <> fp ->
      reject "snapshot fingerprint mismatch; using journal replay"
  | Ok c ->
      let in_journal (f : J.completed) =
        List.exists (fun (g : J.completed) -> g = f) completed
      in
      if not (List.for_all in_journal c.Ckpt.c_funcs) then
        reject "snapshot disagrees with journal replay; using journal replay"
  | Error e ->
      if Sys.file_exists cpath then
        reject (Printf.sprintf "corrupt snapshot (%s); using journal replay" e)

let generate_backend_durable ?fallback ?report ?sup ?(resume = false) ?kill_at
    ?(checkpoint_every = 4) ?(domains = 1) ~run_dir t ~target ~decoder =
  let report =
    match report with Some r -> r | None -> Vega_robust.Report.create ()
  in
  mkdir_p run_dir;
  let jpath = journal_path run_dir and cpath = checkpoint_path run_dir in
  let fp = fingerprint t ~target in
  let setup =
    if resume then begin
      let rc = J.read ~report ~path:jpath () in
      match J.replay rc.J.r_records with
      | Some (J.Header h), completed
        when h.version = J.version && h.target = target && h.fingerprint = fp
        ->
          (* compact the torn tail away so fresh appends extend the
             recovered prefix, not a half-written record *)
          if rc.J.r_torn then J.rewrite ~path:jpath rc.J.r_records;
          check_snapshot report ~cpath ~fp completed;
          Ok (J.open_append ?kill_at ~path:jpath (), completed, rc.J.r_torn)
      | Some (J.Header _), _ ->
          Error
            "journal belongs to a different run (target or pipeline \
             fingerprint mismatch)"
      | _ -> Error "journal has no valid header; nothing to resume"
    end
    else if Sys.file_exists jpath then
      Error
        (Printf.sprintf "%s already exists; resume the run instead of starting \
                         a new one"
           jpath)
    else
      Ok
        ( J.create ?kill_at ~path:jpath
            (J.Header { version = J.version; target; fingerprint = fp }),
          [],
          false )
  in
  match setup with
  | Error _ as e -> e
  | Ok (w, completed, torn) ->
      let done_tbl = Hashtbl.create 64 in
      List.iter
        (fun (c : J.completed) -> Hashtbl.replace done_tbl c.J.c_fname c)
        completed;
      (* faults are journaled ahead like statements *)
      let cancel =
        Vega_robust.Report.subscribe report
          (fun (ev : Vega_robust.Report.event) ->
            J.append w
              (J.Fault_ev
                 {
                   stage = ev.Vega_robust.Report.ev_stage;
                   fault = ev.Vega_robust.Report.ev_fault;
                   backtrace = ev.Vega_robust.Report.ev_backtrace;
                 }))
      in
      let resumed = ref 0 and generated = ref 0 in
      let finished = ref (List.rev completed) in
      (* guards the progress counters, the finished list and checkpoint
         writes when generation fans out over domains; journal appends
         carry their own lock *)
      let progress = Mutex.create () in
      let gen_bundle sup b =
        let fname = b.spec.Vega_corpus.Spec.fname in
        match Hashtbl.find_opt done_tbl fname with
        | Some c ->
            Mutex.protect progress (fun () -> incr resumed);
            func_of_completed b target c
        | None ->
            J.append w (J.Func_begin fname);
            let gf =
              Generate.run ?fallback ~report ?sup
                ~on_stmt:(fun s -> J.append w (J.Stmt (stmt_of_gen fname s)))
                t.prep.ctx b.tpl b.analysis b.hints ~target ~decoder
            in
            J.append w
              (J.Func_end
                 {
                   fname;
                   confidence = gf.Generate.gf_confidence;
                   n_stmts = List.length gf.Generate.gf_stmts;
                 });
            Mutex.protect progress (fun () ->
                incr generated;
                finished := completed_of_gen fname gf :: !finished;
                if !generated mod checkpoint_every = 0 then
                  Ckpt.save ~path:cpath
                    {
                      Ckpt.c_version = Ckpt.version;
                      c_target = target;
                      c_fingerprint = fp;
                      c_funcs = List.rev !finished;
                    });
            gf
      in
      let funcs =
        Fun.protect
          ~finally:(fun () ->
            cancel ();
            J.close w)
          (fun () ->
            if domains <= 1 then List.map (gen_bundle sup) t.prep.bundles
            else
              with_worker_sups ?sup ~domains (fun ctx ->
                  Vega_util.Par.map_ctx ~domains ~ctx gen_bundle
                    t.prep.bundles))
      in
      Ok
        {
          d_funcs = funcs;
          d_resumed = !resumed;
          d_generated = !generated;
          d_records = J.written w;
          d_torn = torn;
        }
