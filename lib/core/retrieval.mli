(** Retrieval decoder: the "statistical method" the paper argues against
    (Sec. 2.4) and our model-ablation arm.

    For each generation FV it returns the output of the nearest training
    FV by bag-of-tokens cosine similarity over inputs. Presence and value
    arrangement therefore come from the single most similar training
    statement instead of a learned combination. *)

type t

val build : (Featrep.fv * string list) list -> t
(** [(fv, output)] pairs from training. *)

val decode : t -> Generate.decoder

val size : t -> int

val outputs : t -> string list list
(** Every indexed output, in build order — lets tests assert the index
    covers exactly the training side of the split (no eval leakage). *)
