(** Confidence scores, Eq. (1) of the paper:

    CS(S_k) = (|T_com|/|T| + sum over SV of 1/(|T| * N(SV))) * has(S_k)

    where |T| counts the statement template's tokens, |T_com| the common
    tokens, and N(SV) the number of possible target-specific values of
    each placeholder. Statements score 1.0 when fully common and present,
    0.0 when absent; a statement whose placeholder has many candidate
    values scores low, flagging it for review (threshold 0.5). *)

val threshold : float
(** The accept threshold (0.5, Sec. 3.3). *)

val sanitize : float -> float
(** Clamp a confidence to [0, 1], neutralizing NaN (to 0) and infinities
    — scores must stay reviewable even when an input is poisoned. *)

val score :
  n_tokens:int -> n_common:int -> slot_candidates:int list -> present:bool -> float

val statement_score :
  ?slot_candidates:int list -> Template.stmt_template -> present:bool -> float
(** Convenience over a statement template; [slot_candidates] defaults to
    1 per slot. *)

val slot_candidate_counts :
  Featsel.t -> Featsel.target_view -> col:int -> line:int ->
  Template.stmt_template -> int list
(** N(SV) per slot: the candidate-set size of the property behind each
    slot for the given target (1 when unresolved). *)

val function_confidence : float list -> float
(** Confidence of a whole generated function: the minimum score across
    kept statements (those at or above {!threshold}, i.e. the ones that
    appear in the emitted function body), 0 when no statement is kept.
    Taking only the head statement's score — the old behavior — let a
    confident function definition mask low-confidence statements below
    it and mis-ordered the Err-PS review queue. *)

val semantic_cap : float
(** Ceiling applied by {!apply_semantic_verdict}: strictly below
    {!threshold}, so a semantically-flagged function always lands in the
    Err-PS review queue. *)

val apply_semantic_verdict : sem_errors:int -> float -> float
(** Fold a semantic verifier verdict into a function confidence:
    with [sem_errors = 0] the score passes through (sanitized), with
    [n > 0] findings it is capped at [semantic_cap /. n]. *)
