module Fault = Vega_robust.Fault
module Degrade = Vega_robust.Degrade
module Stage = Vega_robust.Stage
module Report = Vega_robust.Report

type decoder = Featrep.fv -> string list * float array

type gen_stmt = {
  g_col : int;
  g_line : int;
  g_inst : int;
  g_score : float;
  g_tokens : string list;
  g_shape_ok : bool;
      (** the emitted tokens instantiate the statement template of this
          slot — the static shape signal {!Vega_analysis} pass 1 and the
          evaluation harness correlate with confidence *)
  g_level : Degrade.level;
      (** provenance: which rung of the degradation ladder produced the
          statement ([Primary] on the happy path) *)
}

type gen_func = {
  gf_fname : string;
  gf_module : Vega_target.Module_id.t;
  gf_target : string;
  gf_confidence : float;
  gf_stmts : gen_stmt list;
}

let omitted_stmt (fv : Featrep.fv) =
  {
    g_col = fv.Featrep.col;
    g_line = fv.Featrep.line;
    g_inst = fv.Featrep.inst;
    g_score = 0.0;
    g_tokens = [];
    g_shape_ok = false;
    g_level = Degrade.Omitted;
  }

let run ?fallback ?report ?sup ?on_stmt ctx (tpl : Template.t) analysis hints
    ~target ~decoder =
  let view = Featsel.view_for_new_target ctx tpl analysis target in
  let fvs = Featrep.generation_fvs analysis tpl hints view in
  let fname = tpl.Template.fname in
  (* under supervision the model decoder runs guarded: per-function
     deadline, bounded backoff on retryable faults, and the circuit
     breaker; a deadline or open breaker surfaces as a Fault that the
     ladder turns into a fallback-rung statement *)
  let decoder =
    match sup with
    | None -> decoder
    | Some s -> fun fv -> Vega_robust.Supervisor.guard s (fun () -> decoder fv)
  in
  Option.iter (fun s -> Vega_robust.Supervisor.start_function s fname) sup;
  (* One decode attempt at a given rung. Stage isolation converts any
     escaping exception into a recorded fault; non-finite probabilities
     are a fault of their own (they would poison the confidence). *)
  let attempt level d (fv : Featrep.fv) =
    match
      Stage.protect ?report ~stage:(Degrade.name level) (fun () ->
          let out_tokens, probs = d fv in
          if not (Array.for_all Float.is_finite probs) then
            raise
              (Fault.Fault
                 (Fault.Nan_score
                    {
                      fname;
                      detail =
                        Printf.sprintf
                          "non-finite token probability (col %d line %d inst %d)"
                          fv.Featrep.col fv.Featrep.line fv.Featrep.inst;
                    }));
          (out_tokens, probs))
    with
    | Ok (out_tokens, probs) -> Some (level, out_tokens, probs)
    | Error _ -> None
  in
  let gen_one ((fv : Featrep.fv), (iv : Resolve.inst_values)) =
    let column0 =
      if fv.col = -1 then Template.signature_column tpl
      else Fault.nth ~what:(fname ^ ".columns") tpl.Template.columns fv.col
    in
    let st0 = Fault.nth ~what:(fname ^ ".unit") column0.Template.unit fv.line in
    (* the degradation ladder: primary decode, one retry, retrieval
       fallback, then a deterministic template-default render, finally
       omission with a flag *)
    let ladder =
      match attempt Degrade.Primary decoder fv with
      | Some a -> Some a
      | None -> (
          match attempt Degrade.Retry decoder fv with
          | Some a -> Some a
          | None -> (
              match fallback with
              | Some fb -> attempt Degrade.Retrieval_fallback fb fv
              | None -> None))
    in
    let level, score_opt, body, probs =
      match ladder with
      | Some (level, out_tokens, probs) ->
          let score_opt, body =
            Featrep.decode_output ~registers:fv.registers ~inst:fv.inst out_tokens
          in
          (level, score_opt, body, probs)
      | None -> (
          match
            Featrep.render_line analysis column0 ~col:fv.col ~line:fv.line iv st0
          with
          | Some rendered -> (Degrade.Template_default, None, rendered, [||])
          | None -> (Degrade.Omitted, None, [], [||]))
    in
    (* the paper's Eq. (1): has(S_k) estimated from the independent
       properties, N(SV) from the target's candidate sets; the model's
       own score token only ever lowers it *)
    let has =
      fv.col = -1 || Resolve.presence_estimate analysis tpl column0 view
    in
    let eq1 =
      Confidence.statement_score
        ~slot_candidates:
          (Confidence.slot_candidate_counts analysis view ~col:fv.col
             ~line:fv.line st0)
        st0 ~present:has
    in
    let model_score =
      match score_opt with Some s -> s | None -> Codebe.mean_token_prob probs
    in
    let score = if has then Confidence.sanitize eq1 else 0.0 in
    let score =
      (* a model that is confident a present statement is absent still
         flags it for review (Err-CS channel) *)
      if has && model_score < 0.25 then Float.min score 0.45 else score
    in
    (* each rung caps the confidence: degraded statements can only ever
       score lower than their primary-path counterparts *)
    let score = Float.min score (Degrade.cap level) in
    (* template-guided repair: a kept statement that does not fit its
       own statement template is re-rendered from the resolved values
       (the generator owns the template, Sec. 3.4) *)
    let column = column0 in
    let st = st0 in
    let slots_well_formed slots =
      (* every slot's word count must agree with its pattern arity *)
      List.for_all2
        (fun toks si ->
          match Featsel.pattern analysis ~col:fv.col ~line:fv.line ~slot:si with
          | Some pat -> List.length toks = List.length pat
          | None -> true)
        slots
        (List.init st.Template.nslots Fun.id)
    in
    let body =
      if score < Confidence.threshold then body
      else
        match Template.match_instance st body with
        | Some slots when slots_well_formed slots -> body
        | Some _ | None -> (
            match
              Featrep.render_line analysis column ~col:fv.col ~line:fv.line iv st
            with
            | Some fixed -> fixed
            | None -> body)
    in
    let shape_ok =
      match Template.match_instance st body with
      | Some slots -> slots_well_formed slots
      | None -> false
    in
    {
      g_col = fv.col;
      g_line = fv.line;
      g_inst = fv.inst;
      g_score = score;
      g_tokens = body;
      g_shape_ok = shape_ok;
      g_level = level;
    }
  in
  let stmts =
    List.map
      (fun ((fv, _) as pair) ->
        let stmt =
          (* a statement can never abort the function: any fault left at
             this point degrades it to an omitted, zero-confidence slot *)
          match Stage.protect ?report ~stage:"generate" (fun () -> gen_one pair) with
          | Ok s -> s
          | Error _ -> omitted_stmt fv
        in
        Option.iter
          (fun r ->
            Report.record_degradation r ~fname ~col:stmt.g_col ~line:stmt.g_line
              ~inst:stmt.g_inst stmt.g_level)
          report;
        (* journaling hook: runs outside stage isolation so a simulated
           crash (Journal.Killed) aborts the run like a real one *)
        Option.iter (fun f -> f stmt) on_stmt;
        stmt)
      fvs
  in
  Option.iter Vega_robust.Supervisor.end_function sup;
  let confidence =
    Confidence.function_confidence (List.map (fun s -> s.g_score) stmts)
  in
  {
    gf_fname = tpl.Template.fname;
    gf_module = tpl.Template.module_;
    gf_target = target;
    gf_confidence = confidence;
    gf_stmts = stmts;
  }

(* fold a semantic-verifier verdict into the function's confidence; the
   verifier itself lives above this library (vega.absint), so only the
   error count crosses the boundary *)
let apply_verdict gf ~sem_errors =
  if sem_errors <= 0 then gf
  else
    {
      gf with
      gf_confidence =
        Confidence.apply_semantic_verdict ~sem_errors gf.gf_confidence;
    }

let kept_stmts gf =
  List.filter (fun s -> s.g_score >= Confidence.threshold) gf.gf_stmts

let text_of_stmts stmts =
  String.concat "\n" (List.map (fun s -> String.concat " " s.g_tokens) stmts)

let source_of gf = text_of_stmts (kept_stmts gf)
let source_of_all gf = text_of_stmts gf.gf_stmts
