type decoder = Featrep.fv -> string list * float array

type gen_stmt = {
  g_col : int;
  g_line : int;
  g_inst : int;
  g_score : float;
  g_tokens : string list;
  g_shape_ok : bool;
      (** the emitted tokens instantiate the statement template of this
          slot — the static shape signal {!Vega_analysis} pass 1 and the
          evaluation harness correlate with confidence *)
}

type gen_func = {
  gf_fname : string;
  gf_module : Vega_target.Module_id.t;
  gf_target : string;
  gf_confidence : float;
  gf_stmts : gen_stmt list;
}

let run ctx (tpl : Template.t) analysis hints ~target ~decoder =
  let view = Featsel.view_for_new_target ctx tpl analysis target in
  let fvs = Featrep.generation_fvs analysis tpl hints view in
  let stmts =
    List.map
      (fun ((fv : Featrep.fv), (iv : Resolve.inst_values)) ->
        let out_tokens, probs = decoder fv in
        let score_opt, body =
          Featrep.decode_output ~registers:fv.registers ~inst:fv.inst out_tokens
        in
        let column0 =
          if fv.col = -1 then Template.signature_column tpl
          else List.nth tpl.Template.columns fv.col
        in
        let st0 = List.nth column0.Template.unit fv.line in
        (* the paper's Eq. (1): has(S_k) estimated from the independent
           properties, N(SV) from the target's candidate sets; the model's
           own score token only ever lowers it *)
        let has =
          fv.col = -1 || Resolve.presence_estimate analysis tpl column0 view
        in
        let eq1 =
          Confidence.statement_score
            ~slot_candidates:
              (Confidence.slot_candidate_counts analysis view ~col:fv.col
                 ~line:fv.line st0)
            st0 ~present:has
        in
        let model_score =
          match score_opt with
          | Some s -> s
          | None -> Codebe.mean_token_prob probs
        in
        let score = if has then Float.min 1.0 (Float.max eq1 0.0) else 0.0 in
        let score =
          (* a model that is confident a present statement is absent still
             flags it for review (Err-CS channel) *)
          if has && model_score < 0.25 then Float.min score 0.45 else score
        in
        (* template-guided repair: a kept statement that does not fit its
           own statement template is re-rendered from the resolved values
           (the generator owns the template, Sec. 3.4) *)
        let column = column0 in
        let st = st0 in
        let slots_well_formed slots =
          (* every slot's word count must agree with its pattern arity *)
          List.for_all2
            (fun toks si ->
              match
                Featsel.pattern analysis ~col:fv.col ~line:fv.line ~slot:si
              with
              | Some pat -> List.length toks = List.length pat
              | None -> true)
            slots
            (List.init st.Template.nslots Fun.id)
        in
        let body =
          if score < Confidence.threshold then body
          else
            match Template.match_instance st body with
            | Some slots when slots_well_formed slots -> body
            | Some _ | None -> (
                match
                  Featrep.render_line analysis column ~col:fv.col ~line:fv.line
                    iv st
                with
                | Some fixed -> fixed
                | None -> body)
        in
        let shape_ok =
          match Template.match_instance st body with
          | Some slots -> slots_well_formed slots
          | None -> false
        in
        {
          g_col = fv.col;
          g_line = fv.line;
          g_inst = fv.inst;
          g_score = score;
          g_tokens = body;
          g_shape_ok = shape_ok;
        })
      fvs
  in
  let confidence = match stmts with [] -> 0.0 | s :: _ -> s.g_score in
  {
    gf_fname = tpl.Template.fname;
    gf_module = tpl.Template.module_;
    gf_target = target;
    gf_confidence = confidence;
    gf_stmts = stmts;
  }

let kept_stmts gf =
  List.filter (fun s -> s.g_score >= Confidence.threshold) gf.gf_stmts

let text_of_stmts stmts =
  String.concat "\n" (List.map (fun s -> String.concat " " s.g_tokens) stmts)

let source_of gf = text_of_stmts (kept_stmts gf)
let source_of_all gf = text_of_stmts gf.gf_stmts
