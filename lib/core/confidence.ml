let threshold = 0.5

let sanitize s =
  if Float.is_nan s then 0.0
  else if s = Float.infinity then 1.0
  else Float.max 0.0 (Float.min 1.0 s)

let score ~n_tokens ~n_common ~slot_candidates ~present =
  if not present then 0.0
  else if n_tokens = 0 then 1.0
  else begin
    let t = float_of_int n_tokens in
    let common = float_of_int n_common /. t in
    let var =
      List.fold_left
        (fun acc n -> acc +. (1.0 /. (t *. float_of_int (max 1 n))))
        0.0 slot_candidates
    in
    sanitize (common +. var)
  end

let counts (st : Template.stmt_template) =
  let n_tokens = List.length st.Template.items in
  let n_common =
    List.length
      (List.filter
         (function Template.Tok _ -> true | Template.Slot _ -> false)
         st.Template.items)
  in
  (n_tokens, n_common)

let statement_score ?slot_candidates (st : Template.stmt_template) ~present =
  let n_tokens, n_common = counts st in
  let slot_candidates =
    match slot_candidates with
    | Some l -> l
    | None -> List.init st.Template.nslots (fun _ -> 1)
  in
  score ~n_tokens ~n_common ~slot_candidates ~present

let slot_candidate_counts analysis (view : Featsel.target_view) ~col ~line
    (st : Template.stmt_template) =
  List.init st.Template.nslots (fun si ->
      match Featsel.pattern analysis ~col ~line ~slot:si with
      | Some pat ->
          let props =
            List.filter_map
              (function
                | Featsel.Pprop p -> Some p
                | Featsel.Pcompose { prop; _ } -> Some prop
                | Featsel.Plit _ | Featsel.Pindex -> None)
              pat
          in
          List.fold_left
            (fun acc p -> max acc (List.length (Featsel.candidates_for view p)))
            1 props
      | None -> 1)

(* Eq. (1) rollup over the whole function: the minimum across kept
   statements — a function is only as trustworthy as the weakest
   statement it actually emits. Below-threshold statements are dropped
   from the output (and flagged per-statement), so they do not drag the
   rollup; with nothing kept there is no trustworthy output at all. *)
let function_confidence scores =
  match List.filter (fun s -> s >= threshold) scores with
  | [] -> 0.0
  | s :: rest -> List.fold_left Float.min s rest

(* Semantic evidence outranks token statistics: a verifier-flagged
   function must never sit above the accept threshold, and more
   findings push it further down so the Err-PS review queue (ordered by
   confidence) surfaces the worst functions first. *)
let semantic_cap = 0.35

let apply_semantic_verdict ~sem_errors c =
  if sem_errors <= 0 then sanitize c
  else Float.min (sanitize c) (semantic_cap /. float_of_int sem_errors)
