module Nn = Vega_nn

type train_config = {
  epochs : int;
  lr : float;
  batch_size : int;
  d_model : int;
  heads : int;
  d_ff : int;
  n_layers : int;
  max_len : int;
  max_pairs : int;
  seed : int;
}

let default_train_config =
  {
    epochs = 14;
    lr = 2.5e-3;
    batch_size = 16;
    d_model = 40;
    heads = 4;
    d_ff = 96;
    n_layers = 2;
    max_len = 80;
    max_pairs = 7000;
    seed = 42;
  }

let tiny_train_config =
  {
    epochs = 4;
    lr = 3e-3;
    batch_size = 8;
    d_model = 16;
    heads = 2;
    d_ff = 32;
    n_layers = 1;
    max_len = 80;
    max_pairs = 200;
    seed = 42;
  }

type arch = Transformer | Rnn

type model = Mtrans of Nn.Transformer.t | Mgru of Nn.Gru.t

type t = { vocab : Nn.Vocab.t; model : model }

let src_log = Logs.Src.create "vega.codebe" ~doc:"CodeBE training"

module Log = (val Logs.src_log src_log : Logs.LOG)

let train ?(arch = Transformer) ?progress cfg pairs =
  let vocab = Nn.Vocab.build (List.concat_map (fun (i, o) -> [ i; o ]) pairs) in
  let model =
    match arch with
    | Transformer ->
        Mtrans
          (Nn.Transformer.create ~seed:cfg.seed
             {
               Nn.Transformer.d_model = cfg.d_model;
               heads = cfg.heads;
               d_ff = cfg.d_ff;
               n_layers = cfg.n_layers;
               max_len = cfg.max_len;
               vocab_size = Nn.Vocab.size vocab;
             })
    | Rnn ->
        Mgru
          (Nn.Gru.create ~seed:cfg.seed
             {
               Nn.Gru.d_model = cfg.d_model;
               d_hidden = 2 * cfg.d_ff / 3 * 2;
               max_len = cfg.max_len;
               vocab_size = Nn.Vocab.size vocab;
             })
  in
  let model_params =
    match model with
    | Mtrans m -> Nn.Transformer.params m
    | Mgru m -> Nn.Gru.params m
  in
  let opt = Nn.Adam.create ~lr:cfg.lr model_params in
  let encoded =
    Array.of_list
      (List.map
         (fun (i, o) -> (Nn.Vocab.encode vocab i, Nn.Vocab.encode vocab o))
         pairs)
  in
  let rng = Vega_util.Rng.create (cfg.seed + 1) in
  for epoch = 1 to cfg.epochs do
    (* inverse-linear learning-rate decay *)
    Nn.Adam.set_lr opt (cfg.lr /. (1.0 +. (float_of_int (epoch - 1) /. 5.0)));
    Vega_util.Rng.shuffle rng encoded;
    let n = min cfg.max_pairs (Array.length encoded) in
    let total = ref 0.0 and batches = ref 0 in
    let i = ref 0 in
    while !i < n do
      let stop = min n (!i + cfg.batch_size) in
      let batch = Array.to_list (Array.sub encoded !i (stop - !i)) in
      let l =
        match model with
        | Mtrans m -> Nn.Transformer.train_step m opt batch
        | Mgru m -> Nn.Gru.train_step m opt batch
      in
      total := !total +. l;
      incr batches;
      i := stop
    done;
    let mean = !total /. float_of_int (max 1 !batches) in
    Log.info (fun m -> m "epoch %d: loss %.4f" epoch mean);
    match progress with Some f -> f epoch mean | None -> ()
  done;
  { vocab; model }

let infer t input =
  (* inputs already start with <CLS> (Featrep.input_of) *)
  let src = Nn.Vocab.encode t.vocab input in
  let ids, probs =
    match t.model with
    | Mtrans m -> Nn.Transformer.generate m ~src ()
    | Mgru m -> Nn.Gru.generate m ~src ()
  in
  (Nn.Vocab.decode t.vocab ids, probs)

let vocab t = t.vocab

let n_params t =
  match t.model with
  | Mtrans m -> Nn.Transformer.n_params m
  | Mgru m -> Nn.Gru.n_params m

let exact_match t pairs =
  match pairs with
  | [] -> 1.0
  | _ ->
      let hits =
        List.fold_left
          (fun acc (i, o) ->
            let out, _ = infer t i in
            if out = o then acc + 1 else acc)
          0 pairs
      in
      float_of_int hits /. float_of_int (List.length pairs)

let mean_token_prob probs =
  (* NaN/infinite entries are dropped rather than averaged: a single
     poisoned probability must not poison the statement confidence *)
  let sum = ref 0.0 and n = ref 0 in
  Array.iter
    (fun p ->
      if Float.is_finite p then begin
        sum := !sum +. p;
        incr n
      end)
    probs;
  if Array.length probs = 0 then 1.0
  else if !n = 0 then 0.0
  else Float.max 0.0 (Float.min 1.0 (!sum /. float_of_int !n))
