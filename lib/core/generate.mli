(** Target-Specific Code Generation (Sec. 3.4): assemble a complete
    function for a new target from its feature vectors and a decoder
    (CodeBE, or the retrieval baseline for the model ablation).

    The confidence score of the whole function is its first statement's
    (the function definition's) score, as in the paper. *)

type decoder = Featrep.fv -> string list * float array
(** Maps an input FV to output tokens plus per-token probabilities. *)

type gen_stmt = {
  g_col : int;
  g_line : int;
  g_inst : int;
  g_score : float;
  g_tokens : string list;  (** decoded tokens, copy references resolved *)
  g_shape_ok : bool;
      (** tokens instantiate this slot's statement template (static
          shape signal consumed by the analyzer and the metrics) *)
  g_level : Vega_robust.Degrade.level;
      (** provenance: the degradation-ladder rung that produced the
          statement; anything below [Primary] had its confidence capped
          by {!Vega_robust.Degrade.cap} *)
}

type gen_func = {
  gf_fname : string;
  gf_module : Vega_target.Module_id.t;
  gf_target : string;
  gf_confidence : float;
  gf_stmts : gen_stmt list;  (** stream order; includes sub-threshold ones *)
}

val run :
  ?fallback:decoder ->
  ?report:Vega_robust.Report.t ->
  ?sup:Vega_robust.Supervisor.t ->
  ?on_stmt:(gen_stmt -> unit) ->
  Featsel.context ->
  Template.t ->
  Featsel.t ->
  Resolve.hints ->
  target:string ->
  decoder:decoder ->
  gen_func
(** A failing statement never aborts the function: generation walks the
    degradation ladder (retry once, [fallback] decoder, template-default
    render, omit-with-flag), capping confidence per rung and recording
    faults and degradations in [report] when given.

    With [sup], the function is bracketed by
    {!Vega_robust.Supervisor.start_function}/[end_function] and the
    primary decoder runs under {!Vega_robust.Supervisor.guard}
    (deadline, backoff retries, circuit breaker); supervision faults
    degrade statements through the same ladder instead of aborting.
    [on_stmt] fires once per produced statement, outside stage
    isolation, in stream order — the write-ahead-journal hook. *)

val apply_verdict : gen_func -> sem_errors:int -> gen_func
(** Fold a semantic verifier verdict into [gf_confidence] via
    {!Confidence.apply_semantic_verdict}: any semantic error caps the
    function below the accept threshold so it enqueues for Err-PS
    review; [sem_errors = 0] is the identity. *)

val kept_stmts : gen_func -> gen_stmt list
(** Statements at or above the 0.5 confidence threshold (what pass@1
    evaluates after the paper's removal step). *)

val source_of : gen_func -> string
(** Parseable source text of the kept statements. *)

val source_of_all : gen_func -> string
(** Source text keeping sub-threshold statements too (for inspection). *)
