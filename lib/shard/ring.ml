(* Consistent-hash ring over shard names.

   Each shard contributes [replicas] virtual points, hashed from
   "name\x00i" with 64-bit FNV-1a; a key belongs to the first point
   clockwise from its own hash (wrapping). Because a shard's points
   depend only on its name and replica index — never on the other
   shards — removing a shard leaves every surviving point exactly where
   it was: only the removed shard's keys change owner (minimal
   disruption, the property the qcheck suite pins down).

   Everything is pure and deterministic: same shard set, same ring, on
   every host and every run. That determinism is what lets the
   faultcheck scenarios demand byte-reproducible routing decisions. *)

type t = {
  replicas : int;
  points : (int64 * string) array;  (* sorted by unsigned point, then name *)
  names : string list;  (* distinct shard names, sorted *)
}

let fnv1a s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  !h

(* FNV-1a alone has almost no avalanche on short suffixes — the vnode
   hashes of "name\x00{0..k}" land in one tiny arc and the ring
   degenerates to one arc per shard. A murmur3-style finalizer restores
   full-width dispersion; together the pair is still pure, portable,
   and dependency-free. *)
let mix h =
  let h = Int64.logxor h (Int64.shift_right_logical h 33) in
  let h = Int64.mul h 0xff51afd7ed558ccdL in
  let h = Int64.logxor h (Int64.shift_right_logical h 33) in
  let h = Int64.mul h 0xc4ceb9fe1a85ec53L in
  Int64.logxor h (Int64.shift_right_logical h 33)

let hash s = mix (fnv1a s)

let point_compare (h1, n1) (h2, n2) =
  match Int64.unsigned_compare h1 h2 with 0 -> compare n1 n2 | c -> c

let create ?(replicas = 64) names =
  if names = [] then invalid_arg "Ring.create: no shards";
  if replicas <= 0 then invalid_arg "Ring.create: replicas <= 0";
  let sorted = List.sort_uniq compare names in
  if List.length sorted <> List.length names then
    invalid_arg "Ring.create: duplicate shard name";
  if List.mem "" sorted then invalid_arg "Ring.create: empty shard name";
  let points =
    List.concat_map
      (fun name ->
        List.init replicas (fun i ->
            (hash (Printf.sprintf "%s\x00%d" name i), name)))
      sorted
    |> Array.of_list
  in
  Array.sort point_compare points;
  { replicas; points; names = sorted }

let shards t = t.names
let size t = List.length t.names
let replicas t = t.replicas

(* Index of the first point whose hash is >= [h] (unsigned), wrapping
   to 0 past the last point. *)
let successor_index t h =
  let n = Array.length t.points in
  let rec bsearch lo hi =
    (* invariant: points.(lo-1) < h <= points.(hi), treating
       out-of-range as -inf/+inf *)
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if Int64.unsigned_compare (fst t.points.(mid)) h < 0 then
        bsearch (mid + 1) hi
      else bsearch lo mid
  in
  let i = bsearch 0 n in
  if i = n then 0 else i

let lookup t key = snd t.points.(successor_index t (hash key))

(* All shards in ring order starting from [key]'s owner, each named
   once — the router's failover candidate order. *)
let successors t key =
  let n = Array.length t.points in
  let start = successor_index t (hash key) in
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let want = size t in
  let i = ref 0 in
  while Hashtbl.length seen < want && !i < n do
    let name = snd t.points.((start + !i) mod n) in
    if not (Hashtbl.mem seen name) then begin
      Hashtbl.add seen name ();
      out := name :: !out
    end;
    incr i
  done;
  List.rev !out

let remove t name =
  match List.filter (fun n -> n <> name) t.names with
  | [] -> invalid_arg "Ring.remove: removing the last shard"
  | rest -> create ~replicas:t.replicas rest
