(* Front-door router over N serving shards.

   A request's key is the same triple the cache addresses by —
   (pipeline fingerprint, descfile hash, function name) — consistent-
   hashed onto the shard ring. The router is the robustness layer:

   - the content-addressed {!Cache} answers repeats O(1) with zero
     decoder involvement;
   - a per-shard circuit breaker (the {!Vega_robust.Supervisor} state
     machine, cooldown counted in routing decisions, not wall clock)
     stops hammering a dead shard;
   - failed contacts retry with bounded, seeded exponential backoff
     (same jitter discipline as the supervisor: deterministic per-shard
     streams);
   - when the owner is down, policy decides: [Reroute] walks the ring
     successors, [Shed] answers a typed [Shard_down] rejection.

   Every routing decision appends one character to the decision log —
   'C' cache hit, 'A' answered by the owner, 'R' rerouted to a
   successor, 'D' shed — so a storm's outcome is a string two runs can
   compare byte-for-byte. The lock covers decisions and bookkeeping
   only, never the shard call itself: a single-threaded caller gets a
   fully deterministic decision sequence, concurrent callers get
   parallel shards.

   Shard failure means the shard is *gone* — the endpoint raised
   (socket refused, peer crashed) or answered [Failed]/[Draining].
   Typed admission rejections (queue-full, budget, expiry, bad
   request) are the shard speaking, not dying: they pass through to
   the client untouched, so the router never converts overload into
   double work on another shard. *)

module Sup = Vega_robust.Supervisor
module Fault = Vega_robust.Fault
module Report = Vega_robust.Report
module Wire = Vega_robust.Wire
module Rng = Vega_util.Rng
module Proto = Vega_serve.Proto
module Health = Vega_serve.Health
module Server = Vega_serve.Server
module Sock = Vega_serve.Sock

type policy = Reroute | Shed

let policy_name = function Reroute -> "reroute" | Shed -> "shed"

let policy_of_name = function
  | "reroute" -> Some Reroute
  | "shed" -> Some Shed
  | _ -> None

type config = {
  policy : policy;
  retries : int;  (* extra attempts per shard after the first failure *)
  backoff_base_s : float;
  backoff_max_s : float;
  breaker_threshold : int;  (* consecutive failures that open the breaker *)
  breaker_cooldown : int;  (* routing decisions skipped while open *)
  probe_every : int;  (* health-probe one contact in N; 0 disables *)
  replicas : int;  (* virtual points per shard on the ring *)
  seed : int;  (* backoff jitter streams *)
}

let default_config =
  {
    policy = Reroute;
    retries = 1;
    backoff_base_s = 0.01;
    backoff_max_s = 0.25;
    breaker_threshold = 3;
    breaker_cooldown = 8;
    probe_every = 16;
    replicas = 64;
    seed = 0x5eed;
  }

(* A shard as the router sees it: name + three closures. In-process
   shards wrap {!Server}, remote shards wrap the {!Sock} client. *)
type endpoint = {
  ep_name : string;
  ep_request : Proto.request -> Proto.reply;
  ep_health : unit -> Health.snapshot option;
  ep_drain : unit -> Health.snapshot option;
}

type shard = {
  sh_ep : endpoint;
  sh_rng : Rng.t;  (* per-shard backoff jitter stream *)
  mutable sh_breaker : Sup.breaker;
  mutable sh_routed : int;  (* requests this shard answered *)
  mutable sh_failures : int;  (* failed contact attempts *)
  mutable sh_rerouted : int;  (* owned requests answered elsewhere *)
  mutable sh_shed : int;  (* owned requests shed *)
  mutable sh_contacts : int;  (* probe cadence counter *)
  mutable sh_last_state : Health.state option;  (* latest probe result *)
}

type t = {
  cfg : config;
  ring : Ring.t;
  tbl : (string, shard) Hashtbl.t;
  order : string list;  (* endpoint order, for status/drain *)
  cache : Cache.t option;
  report : Report.t;
  sleep : float -> unit;
  lock : Mutex.t;
  dlog : Buffer.t;
  fingerprint : string;
  desc_hash : string;
  mutable routed : int;
  mutable cache_hits : int;
  mutable reroutes : int;
  mutable sheds : int;
}

let shard_run_dir base i = Filename.concat base (Printf.sprintf "shard-%d" i)

let of_server ~name srv =
  {
    ep_name = name;
    ep_request = (fun req -> Server.request srv req);
    ep_health = (fun () -> Some (Server.health srv));
    ep_drain =
      (fun () ->
        Server.drain srv;
        Some (Server.health srv));
  }

let of_socket ~name ~socket =
  {
    ep_name = name;
    ep_request = (fun req -> Sock.request ~socket req);
    ep_health = (fun () -> try Sock.health ~socket with _ -> None);
    ep_drain = (fun () -> try Sock.drain ~socket with _ -> None);
  }

let create ?(config = default_config) ?cache ?report ?sleep ~fingerprint
    ~desc_hash endpoints =
  match endpoints with
  | [] -> Error "router needs at least one shard"
  | _ -> (
      let names = List.map (fun ep -> ep.ep_name) endpoints in
      match Ring.create ~replicas:config.replicas names with
      | exception Invalid_argument m -> Error m
      | ring ->
          let tbl = Hashtbl.create (List.length endpoints) in
          List.iteri
            (fun i ep ->
              Hashtbl.replace tbl ep.ep_name
                {
                  sh_ep = ep;
                  (* same per-worker stream mixing as Supervisor.fork *)
                  sh_rng = Rng.create (config.seed lxor (i * 0x9E3779B9));
                  sh_breaker = Sup.Closed 0;
                  sh_routed = 0;
                  sh_failures = 0;
                  sh_rerouted = 0;
                  sh_shed = 0;
                  sh_contacts = 0;
                  sh_last_state = None;
                })
            endpoints;
          Ok
            {
              cfg = config;
              ring;
              tbl;
              order = names;
              cache;
              report = (match report with Some r -> r | None -> Report.create ());
              sleep = (match sleep with Some f -> f | None -> Unix.sleepf);
              lock = Mutex.create ();
              dlog = Buffer.create 256;
              fingerprint;
              desc_hash;
              routed = 0;
              cache_hits = 0;
              reroutes = 0;
              sheds = 0;
            })

let report t = t.report
let cache t = t.cache
let shards t = t.order
let decisions t = Mutex.protect t.lock (fun () -> Buffer.contents t.dlog)

let find t name = Hashtbl.find t.tbl name

(* ---- breaker (all transitions under the router lock) ---- *)

(* May we contact this shard for this routing decision? An open breaker
   counts down its cooldown in skipped decisions — deterministic, no
   wall clock — and lets exactly one probe request through half-open. *)
let breaker_admits t sh =
  Mutex.protect t.lock (fun () ->
      match sh.sh_breaker with
      | Sup.Closed _ | Sup.Half_open -> true
      | Sup.Open k ->
          if k > 1 then begin
            sh.sh_breaker <- Sup.Open (k - 1);
            false
          end
          else begin
            sh.sh_breaker <- Sup.Half_open;
            true
          end)

let note_success t sh =
  Mutex.protect t.lock (fun () -> sh.sh_breaker <- Sup.Closed 0)

let note_failure t sh ~detail =
  Report.record t.report ~stage:"router"
    (Fault.Shard_failure { shard = sh.sh_ep.ep_name; detail });
  Mutex.protect t.lock (fun () ->
      sh.sh_failures <- sh.sh_failures + 1;
      match sh.sh_breaker with
      | Sup.Half_open ->
          (* the half-open probe failed: back to a full cooldown *)
          sh.sh_breaker <- Sup.Open t.cfg.breaker_cooldown
      | Sup.Closed n ->
          if n + 1 >= t.cfg.breaker_threshold then
            sh.sh_breaker <- Sup.Open t.cfg.breaker_cooldown
          else sh.sh_breaker <- Sup.Closed (n + 1)
      | Sup.Open _ -> ())

(* Seeded exponential backoff, mirroring Supervisor.backoff_delay:
   base * 2^attempt, jittered to [0.75, 1.25), capped. *)
let backoff_delay t sh attempt =
  let expo =
    t.cfg.backoff_base_s *. (2.0 ** float_of_int (min attempt 16))
  in
  let jitter =
    Mutex.protect t.lock (fun () ->
        Rng.uniform sh.sh_rng ~lo:0.75 ~hi:1.25)
  in
  Float.min t.cfg.backoff_max_s (expo *. jitter)

(* ---- health probes ---- *)

let probe_shard t sh =
  let state = Option.map (fun h -> h.Health.h_state) (sh.sh_ep.ep_health ()) in
  Mutex.protect t.lock (fun () -> sh.sh_last_state <- state);
  state

(* Layered on the contact path: every [probe_every]-th contact refreshes
   the shard's health snapshot; an unreachable or non-Ready shard is a
   failed contact before we even send the request. *)
let maybe_probe t sh =
  let due =
    t.cfg.probe_every > 0
    && Mutex.protect t.lock (fun () ->
           sh.sh_contacts <- sh.sh_contacts + 1;
           (sh.sh_contacts - 1) mod t.cfg.probe_every = 0)
  in
  if not due then true
  else
    match probe_shard t sh with
    | Some Health.Ready -> true
    | Some (Health.Starting | Health.Draining | Health.Stopped) ->
        note_failure t sh ~detail:"health probe: shard not ready";
        false
    | None ->
        note_failure t sh ~detail:"health probe: shard unreachable";
        false

(* ---- routing ---- *)

(* One shard, up to 1 + retries attempts. A half-open breaker gets a
   single probe attempt — retrying a probe would defeat the point. *)
let try_shard t sh req =
  if not (breaker_admits t sh) then None
  else if not (maybe_probe t sh) then None
  else
    let single = Mutex.protect t.lock (fun () -> sh.sh_breaker = Sup.Half_open) in
    let rec attempt n =
      let outcome =
        match sh.sh_ep.ep_request req with
        | Proto.Failed m -> Error ("shard failed request: " ^ m)
        | Proto.Rejected Proto.Draining -> Error "shard draining"
        | reply -> Ok reply
        | exception Fault.Fault f -> Error (Fault.to_string f)
        | exception Unix.Unix_error (e, fn, _) ->
            Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))
      in
      match outcome with
      | Ok reply ->
          note_success t sh;
          Some reply
      | Error detail ->
          note_failure t sh ~detail;
          if (not single) && n < t.cfg.retries then begin
            t.sleep (backoff_delay t sh n);
            attempt (n + 1)
          end
          else None
    in
    attempt 0

let request_key t ~fname =
  Cache.request_key ~fingerprint:t.fingerprint ~desc_hash:t.desc_hash ~fname

let log_decision t c =
  Mutex.protect t.lock (fun () -> Buffer.add_char t.dlog c)

let route t (req : Proto.request) =
  Mutex.protect t.lock (fun () -> t.routed <- t.routed + 1);
  let fname = req.Proto.rq_fname in
  match
    match t.cache with None -> None | Some c -> Cache.get c ~fname
  with
  | Some reply ->
      Mutex.protect t.lock (fun () -> t.cache_hits <- t.cache_hits + 1);
      log_decision t 'C';
      reply
  | None -> (
      let candidates = Ring.successors t.ring (request_key t ~fname) in
      let owner = List.hd candidates in
      let candidates =
        match t.cfg.policy with
        | Reroute -> candidates
        | Shed -> [ owner ]
      in
      let rec walk = function
        | [] ->
            Mutex.protect t.lock (fun () ->
                t.sheds <- t.sheds + 1;
                (find t owner).sh_shed <- (find t owner).sh_shed + 1);
            log_decision t 'D';
            Proto.Rejected (Proto.Shard_down { shard = owner })
        | name :: rest -> (
            let sh = find t name in
            match try_shard t sh req with
            | Some reply ->
                Mutex.protect t.lock (fun () ->
                    sh.sh_routed <- sh.sh_routed + 1;
                    if name <> owner then begin
                      t.reroutes <- t.reroutes + 1;
                      let ow = find t owner in
                      ow.sh_rerouted <- ow.sh_rerouted + 1
                    end);
                log_decision t (if name = owner then 'A' else 'R');
                (match t.cache with
                | Some c -> ignore (Cache.put c ~fname reply)
                | None -> ());
                reply
            | None -> walk rest)
      in
      walk candidates)

(* ---- status ---- *)

type shard_status = {
  ss_name : string;
  ss_breaker : string;  (* "closed" | "open" | "half-open" *)
  ss_routed : int;
  ss_failures : int;
  ss_rerouted : int;
  ss_shed : int;
  ss_state : string;  (* last probed health state, or "unknown" *)
}

let breaker_name = function
  | Sup.Closed _ -> "closed"
  | Sup.Open _ -> "open"
  | Sup.Half_open -> "half-open"

let status ?(probe = false) t =
  if probe then
    List.iter (fun name -> ignore (probe_shard t (find t name))) t.order;
  Mutex.protect t.lock (fun () ->
      List.map
        (fun name ->
          let sh = find t name in
          {
            ss_name = name;
            ss_breaker = breaker_name sh.sh_breaker;
            ss_routed = sh.sh_routed;
            ss_failures = sh.sh_failures;
            ss_rerouted = sh.sh_rerouted;
            ss_shed = sh.sh_shed;
            ss_state =
              (match sh.sh_last_state with
              | Some s -> Health.state_name s
              | None -> "unknown");
          })
        t.order)

let status_fields s =
  [
    s.ss_name;
    s.ss_breaker;
    string_of_int s.ss_routed;
    string_of_int s.ss_failures;
    string_of_int s.ss_rerouted;
    string_of_int s.ss_shed;
    s.ss_state;
  ]

let encode_status statuses =
  Wire.encode_line
    ("shard-status"
    :: string_of_int (List.length statuses)
    :: List.concat_map status_fields statuses)

let decode_status line =
  match Wire.decode_line line with
  | Some ("shard-status" :: n :: rest) -> (
      match Wire.int_of_field n with
      | Some n when n >= 0 && List.length rest = n * 7 ->
          let rec chunks = function
            | [] -> Some []
            | name :: breaker :: routed :: failures :: rerouted :: shed
              :: state :: more -> (
                match
                  ( Wire.int_of_field routed,
                    Wire.int_of_field failures,
                    Wire.int_of_field rerouted,
                    Wire.int_of_field shed )
                with
                | Some ss_routed, Some ss_failures, Some ss_rerouted,
                  Some ss_shed ->
                    Option.map
                      (fun tail ->
                        {
                          ss_name = name;
                          ss_breaker = breaker;
                          ss_routed;
                          ss_failures;
                          ss_rerouted;
                          ss_shed;
                          ss_state = state;
                        }
                        :: tail)
                      (chunks more)
                | _ -> None)
            | _ -> None
          in
          chunks rest
      | _ -> None)
  | _ -> None

(* ---- aggregates ---- *)

type counters = {
  rt_routed : int;
  rt_cache_hits : int;
  rt_reroutes : int;
  rt_sheds : int;
}

let counters t =
  Mutex.protect t.lock (fun () ->
      {
        rt_routed = t.routed;
        rt_cache_hits = t.cache_hits;
        rt_reroutes = t.reroutes;
        rt_sheds = t.sheds;
      })

(* Fleet-wide health: counters summed over reachable shards, state the
   worst of the fleet (any non-Ready shard drags the aggregate). *)
let health t =
  let snaps =
    List.filter_map (fun name -> (find t name).sh_ep.ep_health ()) t.order
  in
  let sum f = List.fold_left (fun n s -> n + f s) 0 snaps in
  let state =
    if snaps = [] then Health.Stopped
    else if List.for_all (fun s -> s.Health.h_state = Health.Ready) snaps then
      Health.Ready
    else if List.exists (fun s -> s.Health.h_state = Health.Stopped) snaps then
      Health.Stopped
    else Health.Draining
  in
  {
    Health.h_state = state;
    h_queue_depth = sum (fun s -> s.Health.h_queue_depth);
    h_queue_cap = sum (fun s -> s.Health.h_queue_cap);
    h_busy = sum (fun s -> s.Health.h_busy);
    h_domains = sum (fun s -> s.Health.h_domains);
    h_accepted = sum (fun s -> s.Health.h_accepted);
    h_rejected = sum (fun s -> s.Health.h_rejected);
    h_completed = sum (fun s -> s.Health.h_completed);
    h_deadline_hits = sum (fun s -> s.Health.h_deadline_hits);
    h_breaker_open =
      List.exists (fun s -> s.Health.h_breaker_open) snaps
      || Mutex.protect t.lock (fun () ->
             List.exists
               (fun name -> breaker_name (find t name).sh_breaker <> "closed")
               t.order);
    h_journal_records = sum (fun s -> s.Health.h_journal_records);
    h_journal_lag = sum (fun s -> s.Health.h_journal_lag);
  }

(* Drain every shard in endpoint order; the first crash (e.g. a
   simulated-kill Journal.Killed) is re-raised after the rest have
   drained, so one dying shard cannot leave the fleet running. *)
let drain t =
  let first_exn = ref None in
  List.iter
    (fun name ->
      match (find t name).sh_ep.ep_drain () with
      | _ -> ()
      | exception e -> if !first_exn = None then first_exn := Some e)
    t.order;
  match !first_exn with Some e -> raise e | None -> ()
