(* Socket front door for the router — same newline-delimited Proto as a
   single shard, so existing clients (vega-cli request) talk to a
   router without knowing it is one.

   One connection, one command, one reply. Requests are handled inline
   in the accept loop: {!Router.route} already releases the router lock
   around the shard call, and each in-flight connection occupies one
   accept slot, so a slow shard delays the next accept but cannot
   wedge the fleet. `shards` answers the per-shard status line routers
   alone can produce; plain servers reject that command, which is how
   a client can tell the two apart. *)

module Wire = Vega_robust.Wire
module Proto = Vega_serve.Proto
module Health = Vega_serve.Health
module Sock = Vega_serve.Sock

type listener = {
  l_router : Router.t;
  l_path : string;
  l_fd : Unix.file_descr;
  l_lock : Mutex.t;
  mutable l_stopping : bool;
  mutable l_accept : unit Domain.t option;
  mutable l_exn : exn option;
  l_done : Condition.t;
  mutable l_finished : bool;
}

let handle_conn l fd =
  match Sock.read_bounded_line fd with
  | `Eof -> Unix.close fd
  | `Oversize bytes ->
      Sock.write_line fd
        (Proto.encode_reply
           (Proto.Rejected
              (Proto.Oversize { bytes; limit = Sock.max_line_bytes })));
      Unix.close fd
  | `Line line -> (
      match Proto.decode_command line with
      | Proto.Malformed ->
          Sock.write_line fd
            (Proto.encode_reply
               (Proto.Rejected (Proto.Bad_request "unparseable command line")));
          Unix.close fd
      | Proto.Version_skew { got } ->
          Sock.write_line fd
            (Proto.encode_reply
               (Proto.Rejected
                  (Proto.Version_mismatch { got; want = Proto.version })));
          Unix.close fd
      | Proto.Decoded (Proto.Creq req) ->
          Sock.write_line fd (Proto.encode_reply (Router.route l.l_router req));
          Unix.close fd
      | Proto.Decoded Proto.Chealth ->
          Sock.write_line fd (Health.encode (Router.health l.l_router));
          Unix.close fd
      | Proto.Decoded Proto.Cping ->
          Sock.write_line fd (Wire.encode_line [ "pong" ]);
          Unix.close fd
      | Proto.Decoded Proto.Cshards ->
          Sock.write_line fd
            (Router.encode_status (Router.status ~probe:true l.l_router));
          Unix.close fd
      | Proto.Decoded Proto.Cdrain ->
          (match Router.drain l.l_router with
          | () -> ()
          | exception e -> Mutex.protect l.l_lock (fun () -> l.l_exn <- Some e));
          Sock.write_line fd (Health.encode (Router.health l.l_router));
          Unix.close fd;
          Mutex.protect l.l_lock (fun () -> l.l_stopping <- true))

let accept_loop l =
  let rec go () =
    let stop = Mutex.protect l.l_lock (fun () -> l.l_stopping) in
    if not stop then begin
      match Unix.accept l.l_fd with
      | fd, _ ->
          (try handle_conn l fd
           with e ->
             (try Unix.close fd with Unix.Unix_error _ -> ());
             Mutex.protect l.l_lock (fun () ->
                 if l.l_exn = None then l.l_exn <- Some e));
          go ()
      | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    end
  in
  go ();
  Mutex.protect l.l_lock (fun () ->
      l.l_finished <- true;
      Condition.broadcast l.l_done)

let start router ~path =
  if Sys.file_exists path then Sys.remove path;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  let l =
    {
      l_router = router;
      l_path = path;
      l_fd = fd;
      l_lock = Mutex.create ();
      l_stopping = false;
      l_accept = None;
      l_exn = None;
      l_done = Condition.create ();
      l_finished = false;
    }
  in
  l.l_accept <- Some (Domain.spawn (fun () -> accept_loop l));
  l

let path l = l.l_path

let wait l =
  Mutex.protect l.l_lock (fun () ->
      while not l.l_finished do
        Condition.wait l.l_done l.l_lock
      done);
  Option.iter Domain.join l.l_accept;
  l.l_accept <- None;
  (try Unix.close l.l_fd with Unix.Unix_error _ -> ());
  if Sys.file_exists l.l_path then
    (try Sys.remove l.l_path with Sys_error _ -> ());
  match Mutex.protect l.l_lock (fun () -> l.l_exn) with
  | Some e -> raise e
  | None -> ()

let stop l =
  Mutex.protect l.l_lock (fun () -> l.l_stopping <- true);
  (try Unix.shutdown l.l_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  (try Unix.close l.l_fd with Unix.Unix_error _ -> ());
  wait l

(* Client-side convenience: fetch and decode a router's shard table. *)
let shard_status ~socket =
  Option.bind (Sock.shards ~socket) Router.decode_status
