(* Content-addressed result cache in front of the decoder.

   A cache entry answers "this exact model, these exact description
   files, this interface function" — the key is the triple
   (pipeline fingerprint, descfile hash, function name), and the entry
   file is named by the FNV-1a checksum of that triple, so a different
   model or an edited target description can never alias a stale
   answer.

   Entries are two checksummed Wire lines: a metadata line restating
   the full triple (the checksum in the filename is not trusted at read
   time) and the encoded Done reply itself. Both lines carry Wire's
   own checksum prefix, so any flipped byte — metadata or payload —
   fails decode; a corrupt entry is evicted, recorded as a
   [Cache_corruption] fault, and the request falls through to
   generation as if it had never been cached. Writes go through a tmp
   file + rename, so a torn write leaves no half-entry behind. *)

module Wire = Vega_robust.Wire
module Fault = Vega_robust.Fault
module Report = Vega_robust.Report
module Proto = Vega_serve.Proto
module Vfs = Vega_tdlang.Vfs

let entry_version = 1
let entry_ext = ".vcache"

type t = {
  dir : string;
  fingerprint : string;
  desc_hash : string;
  report : Report.t option;
  lock : Mutex.t;
  mutable hits : int;
  mutable misses : int;
  mutable puts : int;
  mutable evictions : int;
}

type stats = {
  c_hits : int;
  c_misses : int;
  c_puts : int;
  c_evictions : int;
  c_entries : int;
}

(* The request key: the exact triple the ring hashes and the cache
   addresses by. NUL-separated so no field boundary can be forged by
   a crafted function name. *)
let request_key ~fingerprint ~desc_hash ~fname =
  String.concat "\x00" [ fingerprint; desc_hash; fname ]

(* Hash of a target's description files: every (path, contents) pair
   under the target's descfile dirs, path-sorted. Editing, adding or
   removing any descfile changes the hash — and therefore the cache
   address and the shard owner. *)
let desc_hash_of_vfs vfs ~target =
  let files =
    List.sort compare (Vfs.files_under_dirs vfs (Vfs.tgtdirs target))
  in
  Wire.checksum
    (String.concat "\x00"
       (List.concat_map (fun (path, contents) -> [ path; contents ]) files))

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ?report ~dir ~fingerprint ~desc_hash () =
  mkdir_p dir;
  {
    dir;
    fingerprint;
    desc_hash;
    report;
    lock = Mutex.create ();
    hits = 0;
    misses = 0;
    puts = 0;
    evictions = 0;
  }

let dir t = t.dir

let key t ~fname =
  Wire.checksum
    (request_key ~fingerprint:t.fingerprint ~desc_hash:t.desc_hash ~fname)

let path t ~fname = Filename.concat t.dir (key t ~fname ^ entry_ext)

let evict_locked t ~fname ~detail =
  let p = path t ~fname in
  (try Sys.remove p with Sys_error _ -> ());
  t.evictions <- t.evictions + 1;
  Option.iter
    (fun r ->
      Report.record r ~stage:"cache"
        (Fault.Cache_corruption { key = key t ~fname; detail }))
    t.report

(* Only clean primary results are worth remembering: degraded output
   would pin a low-confidence answer past the fault that caused it, and
   rejections/failures are transient by definition. *)
let cacheable = function
  | Proto.Done { r_degraded; _ } -> r_degraded = 0
  | Proto.Rejected _ | Proto.Failed _ -> false

let put t ~fname reply =
  if not (cacheable reply) then false
  else
    Mutex.protect t.lock (fun () ->
        let meta =
          Wire.encode_line
            [
              "vcache";
              string_of_int entry_version;
              t.fingerprint;
              t.desc_hash;
              fname;
            ]
        in
        let body = Proto.encode_reply reply in
        let p = path t ~fname in
        let tmp = p ^ ".tmp" in
        match
          Out_channel.with_open_bin tmp (fun oc ->
              Out_channel.output_string oc (meta ^ "\n" ^ body ^ "\n"))
        with
        | () ->
            Sys.rename tmp p;
            t.puts <- t.puts + 1;
            true
        | exception Sys_error _ ->
            (try Sys.remove tmp with Sys_error _ -> ());
            false)

let get t ~fname =
  Mutex.protect t.lock (fun () ->
      let p = path t ~fname in
      let miss () =
        t.misses <- t.misses + 1;
        None
      in
      let corrupt detail =
        evict_locked t ~fname ~detail;
        miss ()
      in
      if not (Sys.file_exists p) then miss ()
      else
        match In_channel.with_open_bin p In_channel.input_all with
        | exception Sys_error _ -> corrupt "unreadable entry"
        | contents -> (
            match String.split_on_char '\n' contents with
            | [ meta; body; "" ] -> (
                match Wire.decode_line meta with
                | Some [ "vcache"; v; fp; dh; fn ]
                  when v = string_of_int entry_version
                       && fp = t.fingerprint && dh = t.desc_hash
                       && fn = fname -> (
                    match Proto.decode_reply body with
                    | Proto.Decoded (Proto.Done _ as reply) ->
                        t.hits <- t.hits + 1;
                        Some reply
                    | Proto.Decoded _ | Proto.Version_skew _ ->
                        corrupt "entry payload is not a done reply"
                    | Proto.Malformed -> corrupt "payload checksum failure")
                | Some _ -> corrupt "metadata names a different key"
                | None -> corrupt "metadata checksum failure")
            | _ -> corrupt "bad entry framing"))

let stats t =
  Mutex.protect t.lock (fun () ->
      let entries =
        match Sys.readdir t.dir with
        | files ->
            Array.fold_left
              (fun n f ->
                if Filename.check_suffix f entry_ext then n + 1 else n)
              0 files
        | exception Sys_error _ -> 0
      in
      {
        c_hits = t.hits;
        c_misses = t.misses;
        c_puts = t.puts;
        c_evictions = t.evictions;
        c_entries = entries;
      })
