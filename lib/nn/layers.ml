module T = Tensor

type linear = { w : T.t; b : T.t }

let linear rng ~d_in ~d_out = { w = T.param rng d_in d_out; b = T.param rng ~scale:0.01 1 d_out }
let linear_fwd l x = T.add (T.matmul x l.w) l.b
let linear_params l = [ l.w; l.b ]

type norm = { gain : T.t; bias : T.t }

let norm ~d =
  let gain = T.create 1 d (Array.make d 1.0) in
  let bias = T.create 1 d (Array.make d 0.0) in
  (* layernorm params participate in training despite constant init *)
  ( {
      gain = { gain with T.is_param = true };
      bias = { bias with T.is_param = true };
    }
    : norm )

let norm_fwd n x = T.layernorm ~gain:n.gain ~bias:n.bias x
let norm_params n = [ n.gain; n.bias ]

type attention = {
  heads : int;
  d_head : int;
  wq : linear;
  wk : linear;
  wv : linear;
  wo : linear;
}

let attention rng ~d_model ~heads =
  assert (d_model mod heads = 0);
  {
    heads;
    d_head = d_model / heads;
    wq = linear rng ~d_in:d_model ~d_out:d_model;
    wk = linear rng ~d_in:d_model ~d_out:d_model;
    wv = linear rng ~d_in:d_model ~d_out:d_model;
    wo = linear rng ~d_in:d_model ~d_out:d_model;
  }

(* Split head h columns out of a (L x d_model) projection. *)
let head_slice t ~h ~d_head =
  (* implemented as matmul with a constant selector for simplicity would
     be wasteful; instead copy columns via transpose+rows_slice *)
  let tt = T.transpose t in
  let sl = T.rows_slice tt (h * d_head) d_head in
  T.transpose sl

let attention_fwd at ~q_input ~kv_input ~mask =
  let q_all = linear_fwd at.wq q_input in
  let k_all = linear_fwd at.wk kv_input in
  let v_all = linear_fwd at.wv kv_input in
  let outs =
    List.init at.heads (fun h ->
        let q = head_slice q_all ~h ~d_head:at.d_head in
        let k = head_slice k_all ~h ~d_head:at.d_head in
        let v = head_slice v_all ~h ~d_head:at.d_head in
        let scores =
          T.scale (1.0 /. sqrt (float_of_int at.d_head)) (T.matmul q (T.transpose k))
        in
        let weights = T.softmax_rows ?mask scores in
        T.matmul weights v)
  in
  (* concat heads along columns: transpose-concat-transpose *)
  let concat = T.transpose (T.concat_rows (List.map T.transpose outs)) in
  linear_fwd at.wo concat

let attention_params at =
  linear_params at.wq @ linear_params at.wk @ linear_params at.wv
  @ linear_params at.wo

type block = {
  att : attention;
  n1 : norm;
  n2 : norm;
  ff1 : linear;
  ff2 : linear;
}

let encoder_block rng ~d_model ~heads ~d_ff =
  {
    att = attention rng ~d_model ~heads;
    n1 = norm ~d:d_model;
    n2 = norm ~d:d_model;
    ff1 = linear rng ~d_in:d_model ~d_out:d_ff;
    ff2 = linear rng ~d_in:d_ff ~d_out:d_model;
  }

let encoder_fwd b x =
  let a = attention_fwd b.att ~q_input:x ~kv_input:x ~mask:None in
  let x = norm_fwd b.n1 (T.add x a) in
  let ff = linear_fwd b.ff2 (T.gelu (linear_fwd b.ff1 x)) in
  norm_fwd b.n2 (T.add x ff)

let block_params b =
  attention_params b.att @ norm_params b.n1 @ norm_params b.n2
  @ linear_params b.ff1 @ linear_params b.ff2

type dec_block = {
  self_att : attention;
  cross_att : attention;
  dn1 : norm;
  dn2 : norm;
  dn3 : norm;
  dff1 : linear;
  dff2 : linear;
}

let decoder_block rng ~d_model ~heads ~d_ff =
  {
    self_att = attention rng ~d_model ~heads;
    cross_att = attention rng ~d_model ~heads;
    dn1 = norm ~d:d_model;
    dn2 = norm ~d:d_model;
    dn3 = norm ~d:d_model;
    dff1 = linear rng ~d_in:d_model ~d_out:d_ff;
    dff2 = linear rng ~d_in:d_ff ~d_out:d_model;
  }

let decoder_fwd b ~x ~memory =
  let causal i j = j <= i in
  let a = attention_fwd b.self_att ~q_input:x ~kv_input:x ~mask:(Some causal) in
  let x = norm_fwd b.dn1 (T.add x a) in
  let c = attention_fwd b.cross_att ~q_input:x ~kv_input:memory ~mask:None in
  let x = norm_fwd b.dn2 (T.add x c) in
  let ff = linear_fwd b.dff2 (T.gelu (linear_fwd b.dff1 x)) in
  norm_fwd b.dn3 (T.add x ff)

let dec_block_params b =
  attention_params b.self_att @ attention_params b.cross_att @ norm_params b.dn1
  @ norm_params b.dn2 @ norm_params b.dn3 @ linear_params b.dff1
  @ linear_params b.dff2

(* Raw row primitives for the incremental decode path (KV cache). Each
   mirrors the corresponding tensor op bit-for-bit — same accumulation
   order and the same zero-skip as {!Tensor.matmul} — so a cached decode
   reproduces a full re-decode exactly (see DESIGN.md). Nothing here
   touches the tape. *)

let row_linear l (x : float array) =
  let w = l.w in
  let k = w.T.rows and n = w.T.cols in
  assert (Array.length x = k);
  let acc = Array.make n 0.0 in
  for p = 0 to k - 1 do
    let av = x.(p) in
    if av <> 0.0 then begin
      let brow = p * n in
      for j = 0 to n - 1 do
        acc.(j) <- acc.(j) +. (av *. w.T.data.(brow + j))
      done
    end
  done;
  for j = 0 to n - 1 do
    acc.(j) <- acc.(j) +. l.b.T.data.(j)
  done;
  acc

let row_add a b = Array.init (Array.length a) (fun j -> a.(j) +. b.(j))

let row_gelu x =
  let k = sqrt (2.0 /. Float.pi) in
  Array.map
    (fun v ->
      let t = tanh (k *. (v +. (0.044715 *. v *. v *. v))) in
      0.5 *. v *. (1.0 +. t))
    x

let row_norm nrm (x : float array) =
  let n = Array.length x in
  let eps = 1e-5 in
  let mu = ref 0.0 in
  for j = 0 to n - 1 do
    mu := !mu +. x.(j)
  done;
  let mu = !mu /. float_of_int n in
  let var = ref 0.0 in
  for j = 0 to n - 1 do
    let d = x.(j) -. mu in
    var := !var +. (d *. d)
  done;
  let sigma = sqrt ((!var /. float_of_int n) +. eps) in
  Array.init n (fun j ->
      (nrm.gain.T.data.(j) *. ((x.(j) -. mu) /. sigma)) +. nrm.bias.T.data.(j))

(* One query row attending over [len] cached key/value rows. Keys and
   values are full d_model projections; heads are read by column offset,
   which matches [head_slice]'s column copy. *)
let attention_row at ~q_all ~keys ~values ~len =
  let dh = at.d_head in
  let merged = Array.make (at.heads * dh) 0.0 in
  let s = 1.0 /. sqrt (float_of_int dh) in
  let scores = Array.make (max len 1) 0.0 in
  for h = 0 to at.heads - 1 do
    let off = h * dh in
    Array.fill scores 0 len 0.0;
    for p = 0 to dh - 1 do
      let av = q_all.(off + p) in
      if av <> 0.0 then
        for j = 0 to len - 1 do
          scores.(j) <- scores.(j) +. (av *. keys.(j).(off + p))
        done
    done;
    for j = 0 to len - 1 do
      scores.(j) <- s *. scores.(j)
    done;
    let mx = ref neg_infinity in
    for j = 0 to len - 1 do
      mx := Float.max !mx scores.(j)
    done;
    let sum = ref 0.0 in
    for j = 0 to len - 1 do
      let e = exp (scores.(j) -. !mx) in
      scores.(j) <- e;
      sum := !sum +. e
    done;
    if !sum > 0.0 then
      for j = 0 to len - 1 do
        scores.(j) <- scores.(j) /. !sum
      done;
    for p = 0 to len - 1 do
      let wv = scores.(p) in
      if wv <> 0.0 then
        for j = 0 to dh - 1 do
          merged.(off + j) <- merged.(off + j) +. (wv *. values.(p).(off + j))
        done
    done
  done;
  row_linear at.wo merged

type dec_cache = {
  cblk : dec_block;
  self_k : float array array;
  self_v : float array array;
  mutable used : int;
  cross_k : float array array;
  cross_v : float array array;
}

let dec_cache blk ~memory ~capacity =
  let mrow i = Array.sub memory.T.data (i * memory.T.cols) memory.T.cols in
  {
    cblk = blk;
    self_k = Array.make capacity [||];
    self_v = Array.make capacity [||];
    used = 0;
    cross_k =
      Array.init memory.T.rows (fun i -> row_linear blk.cross_att.wk (mrow i));
    cross_v =
      Array.init memory.T.rows (fun i -> row_linear blk.cross_att.wv (mrow i));
  }

let dec_cache_len c = c.used

let dec_cache_step c x_row =
  let b = c.cblk in
  assert (c.used < Array.length c.self_k);
  let q = row_linear b.self_att.wq x_row in
  c.self_k.(c.used) <- row_linear b.self_att.wk x_row;
  c.self_v.(c.used) <- row_linear b.self_att.wv x_row;
  c.used <- c.used + 1;
  let a =
    attention_row b.self_att ~q_all:q ~keys:c.self_k ~values:c.self_v
      ~len:c.used
  in
  let x1 = row_norm b.dn1 (row_add x_row a) in
  let q2 = row_linear b.cross_att.wq x1 in
  let cr =
    attention_row b.cross_att ~q_all:q2 ~keys:c.cross_k ~values:c.cross_v
      ~len:(Array.length c.cross_k)
  in
  let x2 = row_norm b.dn2 (row_add x1 cr) in
  let ff = row_linear b.dff2 (row_gelu (row_linear b.dff1 x2)) in
  row_norm b.dn3 (row_add x2 ff)
