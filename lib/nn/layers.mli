(** Transformer building blocks over {!Tensor}. Every block exposes its
    trainable parameters through [params]. *)

type linear

val linear : Vega_util.Rng.t -> d_in:int -> d_out:int -> linear
val linear_fwd : linear -> Tensor.t -> Tensor.t
val linear_params : linear -> Tensor.t list

type norm

val norm : d:int -> norm
val norm_fwd : norm -> Tensor.t -> Tensor.t
val norm_params : norm -> Tensor.t list

type attention

val attention : Vega_util.Rng.t -> d_model:int -> heads:int -> attention

val attention_fwd :
  attention ->
  q_input:Tensor.t ->
  kv_input:Tensor.t ->
  mask:(int -> int -> bool) option ->
  Tensor.t
(** Multi-head attention; self-attention when [q_input == kv_input].
    [mask i j] permits query row i to attend to key row j. *)

val attention_params : attention -> Tensor.t list

type block

val encoder_block : Vega_util.Rng.t -> d_model:int -> heads:int -> d_ff:int -> block
val encoder_fwd : block -> Tensor.t -> Tensor.t
val block_params : block -> Tensor.t list

type dec_block

val decoder_block : Vega_util.Rng.t -> d_model:int -> heads:int -> d_ff:int -> dec_block

val decoder_fwd : dec_block -> x:Tensor.t -> memory:Tensor.t -> Tensor.t
(** Causal self-attention then cross-attention over [memory]. *)

val dec_block_params : dec_block -> Tensor.t list

(** {1 Incremental decode (KV cache)}

    Raw float-array row primitives that mirror the tensor ops
    bit-for-bit (same accumulation order and zero-skip as
    {!Tensor.matmul}); none of them records onto the autodiff tape. *)

val row_linear : linear -> float array -> float array
(** [linear_fwd] applied to a single row. *)

type dec_cache
(** Per-layer decoder cache: self-attention key/value rows accumulate
    one position at a time; cross-attention keys/values are projected
    from the encoder memory once at creation. *)

val dec_cache : dec_block -> memory:Tensor.t -> capacity:int -> dec_cache
(** Fresh cache for one decode; at most [capacity] positions. *)

val dec_cache_step : dec_cache -> float array -> float array
(** Feed this layer's input row for the next position and return the
    layer's output row — bit-identical to the corresponding row of
    [decoder_fwd] over the full prefix. *)

val dec_cache_len : dec_cache -> int
(** Number of positions fed so far. *)
