type t = {
  data : float array;
  rows : int;
  cols : int;
  grad : float array;
  is_param : bool;
}

(* The tape holds backward closures in reverse order: [push_back] conses
   the newest closure onto the front, so the plain [List.iter] in
   [backward] already visits operations last-to-first. Tape state is
   domain-local ([Domain.DLS]), so forward/backward passes in different
   OCaml 5 domains never share or interleave tapes. *)
type tape_state = { mutable ops : (unit -> unit) list; mutable active : bool }

let tape_key = Domain.DLS.new_key (fun () -> { ops = []; active = false })
let tape () = Domain.DLS.get tape_key

let push_back f =
  let tp = tape () in
  if tp.active then tp.ops <- f :: tp.ops

let with_tape f =
  let tp = tape () in
  assert (not tp.active);
  tp.ops <- [];
  tp.active <- true;
  Fun.protect
    ~finally:(fun () ->
      tp.ops <- [];
      tp.active <- false)
    f

let backward t =
  assert (t.rows = 1 && t.cols = 1);
  t.grad.(0) <- 1.0;
  let tp = tape () in
  List.iter (fun f -> f ()) tp.ops;
  tp.ops <- []

let create rows cols data =
  assert (Array.length data = rows * cols);
  { data; rows; cols; grad = Array.make (rows * cols) 0.0; is_param = false }

let zeros rows cols = create rows cols (Array.make (rows * cols) 0.0)

let param rng ?scale rows cols =
  let s = match scale with Some s -> s | None -> 1.0 /. sqrt (float_of_int cols) in
  let data = Array.init (rows * cols) (fun _ -> s *. Vega_util.Rng.gaussian rng) in
  { data; rows; cols; grad = Array.make (rows * cols) 0.0; is_param = true }

let get t i j = t.data.((i * t.cols) + j)
let set_ t i j v = t.data.((i * t.cols) + j) <- v
let to_float t = t.data.(0)
let params_count ps = List.fold_left (fun a p -> a + Array.length p.data) 0 ps

let out rows cols = zeros rows cols

let matmul a b =
  assert (a.cols = b.rows);
  let m = a.rows and k = a.cols and n = b.cols in
  let c = out m n in
  for i = 0 to m - 1 do
    let arow = i * k in
    for p = 0 to k - 1 do
      let av = a.data.(arow + p) in
      if av <> 0.0 then begin
        let brow = p * n in
        let crow = i * n in
        for j = 0 to n - 1 do
          c.data.(crow + j) <- c.data.(crow + j) +. (av *. b.data.(brow + j))
        done
      end
    done
  done;
  push_back (fun () ->
      (* dA = dC * B^T ; dB = A^T * dC *)
      for i = 0 to m - 1 do
        for p = 0 to k - 1 do
          let brow = p * n and crow = i * n in
          let acc = ref 0.0 in
          for j = 0 to n - 1 do
            acc := !acc +. (c.grad.(crow + j) *. b.data.(brow + j))
          done;
          a.grad.((i * k) + p) <- a.grad.((i * k) + p) +. !acc
        done
      done;
      for p = 0 to k - 1 do
        for j = 0 to n - 1 do
          let acc = ref 0.0 in
          for i = 0 to m - 1 do
            acc := !acc +. (a.data.((i * k) + p) *. c.grad.((i * n) + j))
          done;
          b.grad.((p * n) + j) <- b.grad.((p * n) + j) +. !acc
        done
      done);
  c

let add a b =
  if b.rows = 1 && a.rows > 1 then begin
    assert (a.cols = b.cols);
    let c = out a.rows a.cols in
    for i = 0 to a.rows - 1 do
      for j = 0 to a.cols - 1 do
        c.data.((i * a.cols) + j) <- a.data.((i * a.cols) + j) +. b.data.(j)
      done
    done;
    push_back (fun () ->
        for i = 0 to a.rows - 1 do
          for j = 0 to a.cols - 1 do
            let g = c.grad.((i * a.cols) + j) in
            a.grad.((i * a.cols) + j) <- a.grad.((i * a.cols) + j) +. g;
            b.grad.(j) <- b.grad.(j) +. g
          done
        done);
    c
  end
  else begin
    assert (a.rows = b.rows && a.cols = b.cols);
    let n = Array.length a.data in
    let c = out a.rows a.cols in
    for i = 0 to n - 1 do
      c.data.(i) <- a.data.(i) +. b.data.(i)
    done;
    push_back (fun () ->
        for i = 0 to n - 1 do
          a.grad.(i) <- a.grad.(i) +. c.grad.(i);
          b.grad.(i) <- b.grad.(i) +. c.grad.(i)
        done);
    c
  end

let scale s a =
  let n = Array.length a.data in
  let c = out a.rows a.cols in
  for i = 0 to n - 1 do
    c.data.(i) <- s *. a.data.(i)
  done;
  push_back (fun () ->
      for i = 0 to n - 1 do
        a.grad.(i) <- a.grad.(i) +. (s *. c.grad.(i))
      done);
  c

let gelu a =
  (* tanh approximation *)
  let n = Array.length a.data in
  let c = out a.rows a.cols in
  let k = sqrt (2.0 /. Float.pi) in
  for i = 0 to n - 1 do
    let x = a.data.(i) in
    let t = tanh (k *. (x +. (0.044715 *. x *. x *. x))) in
    c.data.(i) <- 0.5 *. x *. (1.0 +. t)
  done;
  push_back (fun () ->
      for i = 0 to n - 1 do
        let x = a.data.(i) in
        let u = k *. (x +. (0.044715 *. x *. x *. x)) in
        let t = tanh u in
        let du = k *. (1.0 +. (3.0 *. 0.044715 *. x *. x)) in
        let d = (0.5 *. (1.0 +. t)) +. (0.5 *. x *. (1.0 -. (t *. t)) *. du) in
        a.grad.(i) <- a.grad.(i) +. (d *. c.grad.(i))
      done);
  c

let sigmoid a =
  let n = Array.length a.data in
  let c = out a.rows a.cols in
  for i = 0 to n - 1 do
    c.data.(i) <- 1.0 /. (1.0 +. exp (-.a.data.(i)))
  done;
  push_back (fun () ->
      for i = 0 to n - 1 do
        let s = c.data.(i) in
        a.grad.(i) <- a.grad.(i) +. (s *. (1.0 -. s) *. c.grad.(i))
      done);
  c

let tanh_ a =
  let n = Array.length a.data in
  let c = out a.rows a.cols in
  for i = 0 to n - 1 do
    c.data.(i) <- tanh a.data.(i)
  done;
  push_back (fun () ->
      for i = 0 to n - 1 do
        let t = c.data.(i) in
        a.grad.(i) <- a.grad.(i) +. ((1.0 -. (t *. t)) *. c.grad.(i))
      done);
  c

let mul_elt a b =
  assert (a.rows = b.rows && a.cols = b.cols);
  let n = Array.length a.data in
  let c = out a.rows a.cols in
  for i = 0 to n - 1 do
    c.data.(i) <- a.data.(i) *. b.data.(i)
  done;
  push_back (fun () ->
      for i = 0 to n - 1 do
        a.grad.(i) <- a.grad.(i) +. (b.data.(i) *. c.grad.(i));
        b.grad.(i) <- b.grad.(i) +. (a.data.(i) *. c.grad.(i))
      done);
  c

let one_minus a =
  let n = Array.length a.data in
  let c = out a.rows a.cols in
  for i = 0 to n - 1 do
    c.data.(i) <- 1.0 -. a.data.(i)
  done;
  push_back (fun () ->
      for i = 0 to n - 1 do
        a.grad.(i) <- a.grad.(i) -. c.grad.(i)
      done);
  c

let softmax_rows ?mask a =
  let m = a.rows and n = a.cols in
  let c = out m n in
  let allowed i j = match mask with None -> true | Some f -> f i j in
  for i = 0 to m - 1 do
    let row = i * n in
    let mx = ref neg_infinity in
    for j = 0 to n - 1 do
      if allowed i j then mx := Float.max !mx a.data.(row + j)
    done;
    let sum = ref 0.0 in
    for j = 0 to n - 1 do
      if allowed i j then begin
        let e = exp (a.data.(row + j) -. !mx) in
        c.data.(row + j) <- e;
        sum := !sum +. e
      end
      else c.data.(row + j) <- 0.0
    done;
    if !sum > 0.0 then
      for j = 0 to n - 1 do
        c.data.(row + j) <- c.data.(row + j) /. !sum
      done
  done;
  push_back (fun () ->
      for i = 0 to m - 1 do
        let row = i * n in
        let dot = ref 0.0 in
        for j = 0 to n - 1 do
          dot := !dot +. (c.grad.(row + j) *. c.data.(row + j))
        done;
        for j = 0 to n - 1 do
          a.grad.(row + j) <-
            a.grad.(row + j)
            +. (c.data.(row + j) *. (c.grad.(row + j) -. !dot))
        done
      done);
  c

let layernorm ~gain ~bias a =
  let m = a.rows and n = a.cols in
  assert (gain.rows = 1 && gain.cols = n && bias.rows = 1 && bias.cols = n);
  let c = out m n in
  let mus = Array.make m 0.0 and sigmas = Array.make m 0.0 in
  let eps = 1e-5 in
  for i = 0 to m - 1 do
    let row = i * n in
    let mu = ref 0.0 in
    for j = 0 to n - 1 do
      mu := !mu +. a.data.(row + j)
    done;
    let mu = !mu /. float_of_int n in
    let var = ref 0.0 in
    for j = 0 to n - 1 do
      let d = a.data.(row + j) -. mu in
      var := !var +. (d *. d)
    done;
    let sigma = sqrt ((!var /. float_of_int n) +. eps) in
    mus.(i) <- mu;
    sigmas.(i) <- sigma;
    for j = 0 to n - 1 do
      c.data.(row + j) <-
        (gain.data.(j) *. ((a.data.(row + j) -. mu) /. sigma)) +. bias.data.(j)
    done
  done;
  push_back (fun () ->
      for i = 0 to m - 1 do
        let row = i * n in
        let mu = mus.(i) and sigma = sigmas.(i) in
        let nf = float_of_int n in
        (* intermediate sums for the layernorm jacobian *)
        let sum_gy = ref 0.0 and sum_gyx = ref 0.0 in
        for j = 0 to n - 1 do
          let gy = c.grad.(row + j) *. gain.data.(j) in
          let xhat = (a.data.(row + j) -. mu) /. sigma in
          sum_gy := !sum_gy +. gy;
          sum_gyx := !sum_gyx +. (gy *. xhat);
          gain.grad.(j) <- gain.grad.(j) +. (c.grad.(row + j) *. xhat);
          bias.grad.(j) <- bias.grad.(j) +. c.grad.(row + j)
        done;
        for j = 0 to n - 1 do
          let gy = c.grad.(row + j) *. gain.data.(j) in
          let xhat = (a.data.(row + j) -. mu) /. sigma in
          let d =
            (gy -. (!sum_gy /. nf) -. (xhat *. !sum_gyx /. nf)) /. sigma
          in
          a.grad.(row + j) <- a.grad.(row + j) +. d
        done
      done);
  c

let transpose a =
  let m = a.rows and n = a.cols in
  let c = out n m in
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      c.data.((j * m) + i) <- a.data.((i * n) + j)
    done
  done;
  push_back (fun () ->
      for i = 0 to m - 1 do
        for j = 0 to n - 1 do
          a.grad.((i * n) + j) <- a.grad.((i * n) + j) +. c.grad.((j * m) + i)
        done
      done);
  c

let rows_slice a lo n =
  assert (lo >= 0 && lo + n <= a.rows);
  let c = out n a.cols in
  Array.blit a.data (lo * a.cols) c.data 0 (n * a.cols);
  push_back (fun () ->
      for i = 0 to (n * a.cols) - 1 do
        a.grad.((lo * a.cols) + i) <- a.grad.((lo * a.cols) + i) +. c.grad.(i)
      done);
  c

let concat_rows ts =
  match ts with
  | [] -> invalid_arg "concat_rows: empty"
  | first :: _ ->
      let cols = first.cols in
      let rows = List.fold_left (fun acc t -> acc + t.rows) 0 ts in
      let c = out rows cols in
      let off = ref 0 in
      List.iter
        (fun t ->
          assert (t.cols = cols);
          Array.blit t.data 0 c.data !off (Array.length t.data);
          off := !off + Array.length t.data)
        ts;
      push_back (fun () ->
          let off = ref 0 in
          List.iter
            (fun t ->
              for i = 0 to Array.length t.data - 1 do
                t.grad.(i) <- t.grad.(i) +. c.grad.(!off + i)
              done;
              off := !off + Array.length t.data)
            ts);
      c

let embed ~table ids =
  let n = Array.length ids in
  let d = table.cols in
  let c = out n d in
  Array.iteri
    (fun i id ->
      assert (id >= 0 && id < table.rows);
      Array.blit table.data (id * d) c.data (i * d) d)
    ids;
  push_back (fun () ->
      Array.iteri
        (fun i id ->
          for j = 0 to d - 1 do
            table.grad.((id * d) + j) <-
              table.grad.((id * d) + j) +. c.grad.((i * d) + j)
          done)
        ids);
  c

let add_rows_positional x pos =
  assert (x.rows <= pos.rows && x.cols = pos.cols);
  let c = out x.rows x.cols in
  for i = 0 to x.rows - 1 do
    for j = 0 to x.cols - 1 do
      c.data.((i * x.cols) + j) <-
        x.data.((i * x.cols) + j) +. pos.data.((i * x.cols) + j)
    done
  done;
  push_back (fun () ->
      for i = 0 to (x.rows * x.cols) - 1 do
        x.grad.(i) <- x.grad.(i) +. c.grad.(i);
        pos.grad.(i) <- pos.grad.(i) +. c.grad.(i)
      done);
  c

let cross_entropy ~logits ~targets =
  let m = logits.rows and n = logits.cols in
  assert (Array.length targets = m);
  let probs = Array.make (m * n) 0.0 in
  let loss = ref 0.0 in
  for i = 0 to m - 1 do
    let row = i * n in
    let mx = ref neg_infinity in
    for j = 0 to n - 1 do
      mx := Float.max !mx logits.data.(row + j)
    done;
    let sum = ref 0.0 in
    for j = 0 to n - 1 do
      let e = exp (logits.data.(row + j) -. !mx) in
      probs.(row + j) <- e;
      sum := !sum +. e
    done;
    for j = 0 to n - 1 do
      probs.(row + j) <- probs.(row + j) /. !sum
    done;
    loss := !loss -. log (Float.max 1e-12 probs.(row + targets.(i)))
  done;
  let c = out 1 1 in
  c.data.(0) <- !loss /. float_of_int m;
  push_back (fun () ->
      let g = c.grad.(0) /. float_of_int m in
      for i = 0 to m - 1 do
        let row = i * n in
        for j = 0 to n - 1 do
          let delta = if j = targets.(i) then 1.0 else 0.0 in
          logits.grad.(row + j) <-
            logits.grad.(row + j) +. (g *. (probs.(row + j) -. delta))
        done
      done);
  c
