module T = Tensor

type config = { d_model : int; d_hidden : int; max_len : int; vocab_size : int }

let default_config ~vocab_size =
  { d_model = 40; d_hidden = 64; max_len = 96; vocab_size }

(* one GRU cell over a 1 x d state *)
type cell = {
  wz : Layers.linear;
  uz : Layers.linear;
  wr : Layers.linear;
  ur : Layers.linear;
  wh : Layers.linear;
  uh : Layers.linear;
}

let mk_cell rng ~d_in ~d_h =
  {
    wz = Layers.linear rng ~d_in ~d_out:d_h;
    uz = Layers.linear rng ~d_in:d_h ~d_out:d_h;
    wr = Layers.linear rng ~d_in ~d_out:d_h;
    ur = Layers.linear rng ~d_in:d_h ~d_out:d_h;
    wh = Layers.linear rng ~d_in ~d_out:d_h;
    uh = Layers.linear rng ~d_in:d_h ~d_out:d_h;
  }

let cell_params c =
  List.concat_map Layers.linear_params [ c.wz; c.uz; c.wr; c.ur; c.wh; c.uh ]

let step cell ~x ~h =
  let z = T.sigmoid (T.add (Layers.linear_fwd cell.wz x) (Layers.linear_fwd cell.uz h)) in
  let r = T.sigmoid (T.add (Layers.linear_fwd cell.wr x) (Layers.linear_fwd cell.ur h)) in
  let htilde =
    T.tanh_
      (T.add (Layers.linear_fwd cell.wh x)
         (Layers.linear_fwd cell.uh (T.mul_elt r h)))
  in
  T.add (T.mul_elt (T.one_minus z) h) (T.mul_elt z htilde)

type t = {
  cfg : config;
  emb : T.t;
  enc : cell;
  dec : cell;
  bridge : Layers.linear;  (* encoder final state -> decoder initial state *)
  out_proj : Layers.linear;
}

let create ?(seed = 11) cfg =
  let rng = Vega_util.Rng.create seed in
  {
    cfg;
    emb = T.param rng ~scale:0.08 cfg.vocab_size cfg.d_model;
    enc = mk_cell rng ~d_in:cfg.d_model ~d_h:cfg.d_hidden;
    dec = mk_cell rng ~d_in:cfg.d_model ~d_h:cfg.d_hidden;
    bridge = Layers.linear rng ~d_in:cfg.d_hidden ~d_out:cfg.d_hidden;
    out_proj = Layers.linear rng ~d_in:cfg.d_hidden ~d_out:cfg.vocab_size;
  }

let params t =
  (t.emb :: cell_params t.enc)
  @ cell_params t.dec
  @ Layers.linear_params t.bridge
  @ Layers.linear_params t.out_proj

let n_params t = T.params_count (params t)

let clip arr n = if Array.length arr > n then Array.sub arr 0 n else arr

let encode t src =
  let src = clip src t.cfg.max_len in
  let h = ref (T.zeros 1 t.cfg.d_hidden) in
  Array.iter
    (fun id ->
      let x = T.embed ~table:t.emb [| id |] in
      h := step t.enc ~x ~h:!h)
    src;
  T.tanh_ (Layers.linear_fwd t.bridge !h)

let loss t ~src ~tgt =
  let tgt = clip tgt (t.cfg.max_len - 2) in
  let h0 = encode t src in
  let dec_in = Array.append [| Vocab.e2d |] tgt in
  let targets = Array.append tgt [| Vocab.eos |] in
  let h = ref h0 in
  let logits =
    Array.map
      (fun id ->
        let x = T.embed ~table:t.emb [| id |] in
        h := step t.dec ~x ~h:!h;
        Layers.linear_fwd t.out_proj !h)
      dec_in
  in
  T.cross_entropy ~logits:(T.concat_rows (Array.to_list logits)) ~targets

let train_step t opt batch =
  let total = ref 0.0 in
  List.iter
    (fun (src, tgt) ->
      T.with_tape (fun () ->
          let l = loss t ~src ~tgt in
          total := !total +. T.to_float l;
          T.backward l))
    batch;
  Adam.step opt;
  !total /. float_of_int (max 1 (List.length batch))

let generate t ~src ?(max_out = 48) () =
  T.with_tape (fun () ->
      let h = ref (encode t src) in
      let out = ref [] and probs = ref [] in
      let n_out = ref 0 in
      let cur = ref Vocab.e2d in
      let continue_ = ref true in
      while !continue_ && !n_out < max_out do
        let x = T.embed ~table:t.emb [| !cur |] in
        h := step t.dec ~x ~h:!h;
        let logits = Layers.linear_fwd t.out_proj !h in
        let n = logits.T.cols in
        let mx = ref neg_infinity in
        for j = 0 to n - 1 do
          mx := Float.max !mx (T.get logits 0 j)
        done;
        let es = Array.init n (fun j -> exp (T.get logits 0 j -. !mx)) in
        let sum = Array.fold_left ( +. ) 0.0 es in
        let best = ref 0 in
        for j = 1 to n - 1 do
          if es.(j) > es.(!best) then best := j
        done;
        if !best = Vocab.eos then continue_ := false
        else begin
          out := !best :: !out;
          probs := (es.(!best) /. sum) :: !probs;
          cur := !best;
          incr n_out
        end
      done;
      (Array.of_list (List.rev !out), Array.of_list (List.rev !probs)))
