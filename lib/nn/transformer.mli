(** CodeBE-mini: a from-scratch transformer encoder–decoder.

    Stand-in for UniXcoder (DESIGN.md): token + position embeddings,
    [n_layers] encoder and decoder blocks, tied-free output projection,
    teacher-forced cross-entropy training and greedy decoding that also
    reports per-token probabilities (used for confidence blending). *)

type config = {
  d_model : int;
  heads : int;
  d_ff : int;
  n_layers : int;
  max_len : int;  (** maximum input/output length (paper: 512) *)
  vocab_size : int;
}

val default_config : vocab_size:int -> config

type t

val create : ?seed:int -> config -> t
val config : t -> config
val params : t -> Tensor.t list
val n_params : t -> int

val loss : t -> src:int array -> tgt:int array -> Tensor.t
(** Teacher-forced loss of emitting [tgt] (terminated by EOS internally)
    given [src]. Must run inside {!Tensor.with_tape}. *)

val train_step : t -> Adam.t -> (int array * int array) list -> float
(** Accumulate gradients over the mini-batch, step the optimizer, return
    the mean loss. *)

val generate : t -> src:int array -> ?max_out:int -> unit -> int array * float array
(** Greedy decode: output ids (without EOS) and per-token probabilities.
    Uses the incremental KV cache; bit-identical to
    {!generate_uncached}. *)

val generate_uncached :
  t -> src:int array -> ?max_out:int -> unit -> int array * float array
(** Reference greedy decode that re-runs [decode_logits] on the whole
    prefix every step (O(L²·layers) per token); kept for equivalence
    testing and benchmarking against {!generate}. *)

(** {1 Incremental decoding} *)

val encode : t -> int array -> Tensor.t
(** Encoder memory for [src] (clipped to [max_len]). *)

val decode_logits : t -> memory:Tensor.t -> int array -> Tensor.t
(** Full-prefix decoder forward: logits for every position of
    [dec_ids]. *)

type cache
(** Per-layer KV cache for one decode: self-attention key/value rows
    accumulate as positions are fed; cross-attention keys/values are
    projected from [memory] once at creation. *)

val new_cache : t -> memory:Tensor.t -> cache

val decode_step : cache -> int -> float array
(** Feed the next token id and return the logits row for its position —
    bit-identical to the last row of {!decode_logits} over the same
    prefix. At most [max_len] positions per cache. *)

val cache_len : cache -> int
(** Number of positions fed so far. *)
