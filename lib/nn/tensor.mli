(** Minimal reverse-mode autograd over 2-D float tensors.

    This is the substrate for CodeBE-mini, the from-scratch transformer
    that stands in for UniXcoder (see DESIGN.md). Tensors are row-major
    [rows x cols]; a domain-local tape records operations (newest first)
    and [backward] replays it in reverse. Parameters are tensors created
    with [param]; their
    gradients accumulate across examples until {!Adam} steps and
    {!zero_grads} clears them. *)

type t = {
  data : float array;
  rows : int;
  cols : int;
  grad : float array;  (** same length as [data]; zeros unless reached *)
  is_param : bool;
}

val create : int -> int -> float array -> t
(** Constant (no-grad-needed leaf); array length must be rows*cols. *)

val zeros : int -> int -> t
val param : Vega_util.Rng.t -> ?scale:float -> int -> int -> t
(** Gaussian-initialized trainable parameter; default scale
    [1/sqrt cols]. *)

val get : t -> int -> int -> float
val set_ : t -> int -> int -> float -> unit
(** In-place raw write; only for building constant inputs. *)

(** {1 Tape} *)

val with_tape : (unit -> 'a) -> 'a
(** Run a forward+backward pass with a fresh tape; the tape is discarded
    afterwards. Nested calls are not allowed. The tape is domain-local:
    concurrent [with_tape] calls in separate domains do not interleave,
    so read-only model state can be shared across domains. *)

val backward : t -> unit
(** Seed the (scalar) tensor's gradient with 1 and backpropagate through
    the current tape. *)

(** {1 Ops} — all differentiable *)

val matmul : t -> t -> t
val add : t -> t -> t
(** Elementwise; if [b] has one row it broadcasts across rows of [a]. *)

val scale : float -> t -> t
val gelu : t -> t
val sigmoid : t -> t
val tanh_ : t -> t

val mul_elt : t -> t -> t
(** Elementwise (Hadamard) product; shapes must match. *)

val one_minus : t -> t
(** [1 - x], elementwise. *)

val softmax_rows : ?mask:(int -> int -> bool) -> t -> t
(** Row softmax; [mask i j = false] forces logit (i,j) to -inf. *)

val layernorm : gain:t -> bias:t -> t -> t
(** Per-row normalization; [gain]/[bias] are 1 x cols parameters. *)

val transpose : t -> t
val rows_slice : t -> int -> int -> t
(** [rows_slice t lo n] — differentiable view copy of n rows from lo. *)

val concat_rows : t list -> t
val embed : table:t -> int array -> t
(** Gather rows of [table] by token ids. *)

val cross_entropy : logits:t -> targets:int array -> t
(** Mean token cross-entropy; returns a 1x1 tensor. Softmax fused. *)

val add_rows_positional : t -> t -> t
(** [add_rows_positional x pos] adds [pos]'s first [rows x] rows to [x]
    (positional-embedding addition; gradients flow into both). *)

val to_float : t -> float
(** Value of a 1x1 tensor. *)

val params_count : t list -> int
