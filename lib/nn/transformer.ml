module T = Tensor

type config = {
  d_model : int;
  heads : int;
  d_ff : int;
  n_layers : int;
  max_len : int;
  vocab_size : int;
}

let default_config ~vocab_size =
  { d_model = 48; heads = 4; d_ff = 96; n_layers = 2; max_len = 96; vocab_size }

type t = {
  cfg : config;
  tok_emb : T.t;
  pos_emb : T.t;
  enc : Layers.block array;
  dec : Layers.dec_block array;
  out_proj : Layers.linear;
}

let create ?(seed = 7) cfg =
  let rng = Vega_util.Rng.create seed in
  {
    cfg;
    tok_emb = T.param rng ~scale:0.05 cfg.vocab_size cfg.d_model;
    pos_emb = T.param rng ~scale:0.05 cfg.max_len cfg.d_model;
    enc =
      Array.init cfg.n_layers (fun _ ->
          Layers.encoder_block rng ~d_model:cfg.d_model ~heads:cfg.heads
            ~d_ff:cfg.d_ff);
    dec =
      Array.init cfg.n_layers (fun _ ->
          Layers.decoder_block rng ~d_model:cfg.d_model ~heads:cfg.heads
            ~d_ff:cfg.d_ff);
    out_proj = Layers.linear rng ~d_in:cfg.d_model ~d_out:cfg.vocab_size;
  }

let config t = t.cfg

let params t =
  [ t.tok_emb; t.pos_emb ]
  @ List.concat_map Layers.block_params (Array.to_list t.enc)
  @ List.concat_map Layers.dec_block_params (Array.to_list t.dec)
  @ Layers.linear_params t.out_proj

let n_params t = T.params_count (params t)

let clip arr max_len = if Array.length arr > max_len then Array.sub arr 0 max_len else arr

let encode t src =
  let src = clip src t.cfg.max_len in
  let x = T.embed ~table:t.tok_emb src in
  let x = T.add_rows_positional x t.pos_emb in
  Array.fold_left (fun x b -> Layers.encoder_fwd b x) x t.enc

let decode_logits t ~memory dec_ids =
  let x = T.embed ~table:t.tok_emb dec_ids in
  let x = T.add_rows_positional x t.pos_emb in
  let x =
    Array.fold_left (fun x b -> Layers.decoder_fwd b ~x ~memory) x t.dec
  in
  Layers.linear_fwd t.out_proj x

let loss t ~src ~tgt =
  let tgt = clip tgt (t.cfg.max_len - 2) in
  let memory = encode t src in
  (* decoder input: [E2D] tgt...; targets: tgt... [EOS] *)
  let dec_in = Array.append [| Vocab.e2d |] tgt in
  let targets = Array.append tgt [| Vocab.eos |] in
  let logits = decode_logits t ~memory dec_in in
  T.cross_entropy ~logits ~targets

let train_step t opt batch =
  let total = ref 0.0 in
  List.iter
    (fun (src, tgt) ->
      T.with_tape (fun () ->
          let l = loss t ~src ~tgt in
          total := !total +. T.to_float l;
          T.backward l))
    batch;
  Adam.step opt;
  !total /. float_of_int (max 1 (List.length batch))

(* Incremental decoding: one KV cache per decoder layer. [decode_step]
   advances one position and returns that position's logits row,
   bit-identical to the last row of [decode_logits] over the prefix. *)

type cache = {
  model : t;
  cache_layers : Layers.dec_cache array;
  mutable pos : int;
}

let new_cache t ~memory =
  {
    model = t;
    cache_layers =
      Array.map
        (fun b -> Layers.dec_cache b ~memory ~capacity:t.cfg.max_len)
        t.dec;
    pos = 0;
  }

let cache_len c = c.pos

let decode_step c id =
  let t = c.model in
  let d = t.cfg.d_model in
  assert (id >= 0 && id < t.cfg.vocab_size);
  assert (c.pos < t.cfg.max_len);
  let x0 =
    Array.init d (fun j ->
        t.tok_emb.T.data.((id * d) + j) +. t.pos_emb.T.data.((c.pos * d) + j))
  in
  c.pos <- c.pos + 1;
  let x =
    Array.fold_left (fun x lc -> Layers.dec_cache_step lc x) x0 c.cache_layers
  in
  Layers.row_linear t.out_proj x

(* softmax + argmax over one logits row; strict [>] keeps the first of
   tied maxima, as the original full-decode loop did *)
let greedy row =
  let n = Array.length row in
  let mx = ref neg_infinity in
  for j = 0 to n - 1 do
    mx := Float.max !mx row.(j)
  done;
  let sum = ref 0.0 in
  let es = Array.init n (fun j -> exp (row.(j) -. !mx)) in
  Array.iter (fun e -> sum := !sum +. e) es;
  let best = ref 0 in
  for j = 1 to n - 1 do
    if es.(j) > es.(!best) then best := j
  done;
  (!best, es.(!best) /. !sum)

let generate t ~src ?(max_out = 48) () =
  let max_out = min max_out (t.cfg.max_len - 2) in
  T.with_tape (fun () ->
      (* the encoder records a tape we never replay; with_tape keeps
         memory bounded by discarding it afterwards *)
      let memory = encode t src in
      let c = new_cache t ~memory in
      let out = ref [] and probs = ref [] in
      let n_out = ref 0 in
      let cur = ref Vocab.e2d in
      let continue_ = ref true in
      while !continue_ && !n_out < max_out do
        let best, p = greedy (decode_step c !cur) in
        if best = Vocab.eos then continue_ := false
        else begin
          out := best :: !out;
          probs := p :: !probs;
          cur := best;
          incr n_out
        end
      done;
      (Array.of_list (List.rev !out), Array.of_list (List.rev !probs)))

let generate_uncached t ~src ?(max_out = 48) () =
  let max_out = min max_out (t.cfg.max_len - 2) in
  T.with_tape (fun () ->
      let memory = encode t src in
      let out = ref [] and probs = ref [] in
      let n_out = ref 0 in
      let continue_ = ref true in
      while !continue_ && !n_out < max_out do
        let dec_in = Array.of_list (Vocab.e2d :: List.rev !out) in
        let logits = decode_logits t ~memory dec_in in
        let last = logits.T.rows - 1 in
        let row = Array.init logits.T.cols (fun j -> T.get logits last j) in
        let best, p = greedy row in
        if best = Vocab.eos then continue_ := false
        else begin
          out := best :: !out;
          probs := p :: !probs;
          incr n_out
        end
      done;
      (Array.of_list (List.rev !out), Array.of_list (List.rev !probs)))
