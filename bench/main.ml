(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Sec. 4) against this reproduction, plus bechamel
   micro-benchmarks of the pipeline's hot stages and the ablations called
   out in DESIGN.md.

   Usage:
     bench/main.exe            full run (trains CodeBE; ~15-30 min)
     bench/main.exe --quick    retrieval decoder, no training (~2 min)
     bench/main.exe fig8       one section only (setup is built lazily,
                               so e.g. `decode` runs in seconds)
     bench/main.exe --json-out FILE   also write the measured numbers as
                               one JSON object (CI artifact)  *)

module V = Vega
module E = Vega_eval
module M = Vega_target.Module_id
module T = Vega_util.Texttab

let pct = T.fmt_pct
let f2 = T.fmt_f ~digits:2

let heading title =
  Printf.printf "\n============================================================\n%s\n============================================================\n"
    title

(* machine-readable metrics, written as one JSON object by --json-out *)
let json_metrics : (string * string) list ref = ref []
let metric k v = json_metrics := (k, v) :: !json_metrics
let metric_f k v = metric k (Printf.sprintf "%.6g" v)

let write_json_metrics path =
  let oc = open_out path in
  output_string oc
    ("{"
    ^ String.concat ","
        (List.rev_map (fun (k, v) -> Printf.sprintf "%S:%s" k v) !json_metrics)
    ^ "}\n");
  close_out oc;
  Printf.printf "metrics written to %s\n" path

(* ------------------------------------------------------------------ *)
(* Shared setup                                                        *)

type setup = {
  pipeline : V.Pipeline.t;
  decoder : V.Generate.decoder;
  evals : (string * E.Metrics.target_eval) list;  (** held-out targets *)
  forkflows : (string * E.Metrics.target_eval) list;
  em : float;
  train_seconds : float;
  prep_seconds : float;
}

let build_setup ~quick () =
  let (prep : V.Pipeline.prepared), prep_seconds =
    Vega_util.Timer.time (fun () -> V.Pipeline.prepare ())
  in
  let cfg =
    if quick then
      {
        V.Pipeline.default_config with
        train_cfg = { V.Codebe.tiny_train_config with epochs = 0 };
      }
    else V.Pipeline.default_config
  in
  let t, train_seconds = Vega_util.Timer.time (fun () -> V.Pipeline.train cfg prep) in
  let decoder =
    if quick then V.Pipeline.retrieval_decoder t else V.Pipeline.model_decoder t
  in
  let em = if quick then 0.0 else V.Pipeline.verification_exact_match t in
  let evals =
    List.map
      (fun (p : Vega_target.Profile.t) ->
        Printf.printf "evaluating %s (pass@1 over the regression suite)...\n%!"
          p.name;
        (p.name, E.Metrics.evaluate_target t ~decoder p ()))
      Vega_target.Registry.held_out
  in
  let forkflows =
    List.map
      (fun (p : Vega_target.Profile.t) ->
        Printf.printf "evaluating ForkFlow for %s...\n%!" p.name;
        (p.name, E.Metrics.evaluate_forkflow t.V.Pipeline.prep p ()))
      Vega_target.Registry.held_out
  in
  { pipeline = t; decoder; evals; forkflows; em; train_seconds; prep_seconds }

(* ------------------------------------------------------------------ *)
(* Sections                                                            *)

let section_corpus (s : setup) =
  heading "Corpus and training setup (Sec. 4.1.2 analogue)";
  let g, f, st = Vega_corpus.Corpus.stats s.pipeline.V.Pipeline.prep.corpus in
  Printf.printf
    "Backends in B: %d training + 3 held-out (paper: 98 + 3)\n\
     Function groups: %d (paper: 825; scaled corpus, see DESIGN.md)\n\
     Training functions: %d   statements: %d (paper: 7,902 / 107,718)\n\
     CodeBE training pairs: %d  verification pairs: %d\n\
     Code-Feature Mapping time: %.1f s (paper: ~1,200 s)\n\
     Model Creation time: %.1f s (paper: ~72 h on 8xV100)\n"
    (List.length Vega_target.Registry.training)
    g f st
    (List.length s.pipeline.V.Pipeline.train_pairs)
    (List.length s.pipeline.V.Pipeline.verify_pairs)
    s.prep_seconds s.train_seconds;
  if s.em > 0.0 then
    Printf.printf "Verification-set Exact Match: %s (paper: 99.03%%)\n" (pct s.em)

let section_fig6 () =
  heading "Fig. 6 — Target processors and function modules";
  let tab = T.create ~headers:[ "Target"; "Class"; "ISA axes"; "Modules" ] in
  List.iter
    (fun ((p : Vega_target.Profile.t), cls) ->
      let f = p.features in
      let axes =
        String.concat ","
          (List.filter_map Fun.id
             [
               (if f.Vega_target.Profile.has_simd then Some "SIMD" else None);
               (if f.has_hwloop then Some "HWLoop" else None);
               (if f.has_variant_kinds then Some "VK" else None);
               (if f.has_relaxation then Some "Relax" else None);
               (if f.dense_imm then Some "DenseImm" else None);
             ])
      in
      let modules =
        String.concat ""
          (List.map
             (fun m ->
               if m = M.DIS && not f.has_disassembler then "-"
               else String.make 1 (M.name m).[0])
             M.all)
      in
      T.add_row tab [ p.name; cls; (if axes = "" then "base" else axes); modules ])
    [
      (Vega_target.Registry.riscv, "GPP");
      (Vega_target.Registry.ri5cy, "ULP");
      (Vega_target.Registry.xcore, "IoT");
    ];
  print_string (T.render tab)

let section_fig7 (s : setup) =
  heading "Fig. 7 — Inference time per function module (seconds)";
  let tab = T.create ~headers:("Target" :: List.map M.name M.all @ [ "Total" ]) in
  List.iter
    (fun (name, (te : E.Metrics.target_eval)) ->
      T.add_row tab
        (name
        :: List.map
             (fun m ->
               match List.assoc_opt m te.te_module_seconds with
               | Some t -> f2 t
               | None -> "-")
             M.all
        @ [ f2 te.te_gen_seconds ]))
    s.evals;
  print_string (T.render tab);
  Printf.printf
    "(paper: 1,383 s / 1,664 s / 424 s per backend; ours is smaller-scale\n\
     but the ordering RI5CY > RISCV > XCore should hold)\n"

let section_fig8 (s : setup) =
  heading "Fig. 8 — Function accuracy per module (pass@1)";
  let tab =
    T.create
      ~headers:
        ("Target" :: List.map M.name M.all
        @ [ "ALL"; "conf~1.00"; "multi-src" ])
  in
  List.iter
    (fun (name, (te : E.Metrics.target_eval)) ->
      let by = E.Metrics.acc_by_module te in
      T.add_row tab
        (name
        :: List.map
             (fun m ->
               match List.assoc_opt m by with Some a -> pct a | None -> "-")
             M.all
        @ [
            pct (E.Metrics.fn_accuracy te.te_fns);
            pct (E.Metrics.conf1_share te.te_fns);
            pct (E.Metrics.multi_source_share te.te_fns);
          ]))
    s.evals;
  print_string (T.render tab);
  Printf.printf "(paper ALL: RISC-V 71.5%%, RI5CY 73.2%%, xCORE 62.2%%)\n";
  let tab2 = T.create ~headers:[ "Target"; "ForkFlow ALL" ] in
  List.iter
    (fun (name, (te : E.Metrics.target_eval)) ->
      T.add_row tab2 [ name; pct (E.Metrics.fn_accuracy te.te_fns) ])
    s.forkflows;
  print_string (T.render tab2);
  Printf.printf
    "(paper ForkFlow: 7.9%% / 6.7%% / 2.1%%; our corpus is far more uniform\n\
     than 101 real LLVM backends, so ForkFlow lands higher — the ordering\n\
     VEGA >> ForkFlow is the preserved claim, see EXPERIMENTS.md)\n"

let section_fig9 (s : setup) =
  heading "Fig. 9 — Statement-level accuracy, VEGA vs ForkFlow";
  let tab =
    T.create ~headers:[ "Target"; "Module"; "VEGA"; "ForkFlow" ]
  in
  List.iter2
    (fun (name, (ve : E.Metrics.target_eval)) (_, (ff : E.Metrics.target_eval)) ->
      List.iter
        (fun m ->
          let vfns = List.filter (fun f -> f.E.Metrics.fe_module = m) ve.te_fns in
          let ffns = List.filter (fun f -> f.E.Metrics.fe_module = m) ff.te_fns in
          if vfns <> [] then
            T.add_row tab
              [
                name;
                M.name m;
                pct (E.Metrics.stmt_accuracy vfns);
                pct (E.Metrics.stmt_accuracy ffns);
              ])
        M.all;
      T.add_row tab
        [
          name;
          "ALL";
          pct (E.Metrics.stmt_accuracy ve.te_fns);
          pct (E.Metrics.stmt_accuracy ff.te_fns);
        ];
      T.add_rule tab)
    s.evals s.forkflows;
  print_string (T.render tab);
  Printf.printf "(paper VEGA ALL: 55.0%% / 58.5%% / 38.5%%)\n"

let section_table2 (s : setup) =
  heading "Table 2 — Sources of inaccurate statements";
  let tab = T.create ~headers:[ "Target"; "Err-V"; "Err-CS"; "Err-Def" ] in
  List.iter
    (fun (name, (te : E.Metrics.target_eval)) ->
      let v, cs, d = E.Metrics.err_rates te.te_fns in
      T.add_row tab [ name; pct v; pct cs; pct d ])
    s.evals;
  print_string (T.render tab);
  Printf.printf "(paper RISC-V: Err-V 3.9%%, Err-CS 11.6%%, Err-Def 23.9%%)\n";
  heading "Static analysis — pass@1 failures flagged before execution";
  let tab =
    T.create
      ~headers:
        [
          "Target"; "Flagged"; "Parse"; "Symbol"; "Dataflow"; "Interface";
          "Sem"; "FalseAlarm"; "ConfFlag/Clean"; "TaxAgree";
        ]
  in
  List.iter
    (fun (name, (te : E.Metrics.target_eval)) ->
      let by_cls = E.Metrics.static_flag_by_class te.te_fns in
      let cls c = pct (List.assoc c by_cls) in
      let cf, cc = E.Metrics.confidence_by_flag te.te_fns in
      T.add_row tab
        [
          name;
          pct (E.Metrics.static_flag_rate te.te_fns);
          cls Vega_analysis.Diagnostic.Parse;
          cls Vega_analysis.Diagnostic.Symbol;
          cls Vega_analysis.Diagnostic.Dataflow;
          cls Vega_analysis.Diagnostic.Interface;
          cls Vega_analysis.Diagnostic.Sem;
          pct (E.Metrics.static_false_alarm_rate te.te_fns);
          Printf.sprintf "%.2f/%.2f" cf cc;
          pct (E.Metrics.taxonomy_agreement te.te_fns);
        ])
    s.evals;
  print_string (T.render tab);
  heading "Semantic verdicts — the absint verifier on generated functions";
  let tab =
    T.create ~headers:[ "Target"; "SemErrors"; "SemFlagged"; "SemFalseAlarm" ]
  in
  List.iter
    (fun (name, (te : E.Metrics.target_eval)) ->
      T.add_row tab
        [
          name;
          string_of_int (E.Metrics.sem_error_count te.te_fns);
          pct (E.Metrics.sem_flag_rate te.te_fns);
          pct (E.Metrics.sem_false_alarm_rate te.te_fns);
        ];
      metric (name ^ "_sem_errors")
        (string_of_int (E.Metrics.sem_error_count te.te_fns));
      metric_f (name ^ "_sem_flag_rate") (E.Metrics.sem_flag_rate te.te_fns);
      metric_f
        (name ^ "_sem_false_alarm_rate")
        (E.Metrics.sem_false_alarm_rate te.te_fns))
    s.evals;
  print_string (T.render tab)

let section_table3 (s : setup) =
  heading "Table 3 — Statements accurate vs needing manual correction";
  let tab = T.create ~headers:[ "Target"; "Module"; "Accurate"; "ManualEffort" ] in
  List.iter
    (fun (name, (te : E.Metrics.target_eval)) ->
      let acc_total = ref 0 and man_total = ref 0 in
      List.iter
        (fun (m, fns) ->
          let acc = List.fold_left (fun a f -> a + f.E.Metrics.fe_acc_stmts) 0 fns in
          let man =
            List.fold_left
              (fun a (f : E.Metrics.fn_eval) ->
                a + max 0 (f.fe_ref_stmts - f.fe_acc_stmts))
              0 fns
          in
          acc_total := !acc_total + acc;
          man_total := !man_total + man;
          T.add_row tab [ name; M.name m; string_of_int acc; string_of_int man ])
        (E.Metrics.by_module te);
      T.add_row tab
        [ name; "ALL"; string_of_int !acc_total; string_of_int !man_total ];
      T.add_rule tab)
    s.evals;
  print_string (T.render tab);
  Printf.printf "(paper RISC-V ALL: 5,524 accurate / 7,223 manual)\n"

let section_table4 (s : setup) =
  heading "Table 4 — Manual-correction effort model (simulated; see DESIGN.md)";
  match List.assoc_opt "RISCV" s.evals with
  | None -> ()
  | Some te ->
      let tab =
        T.create ~headers:[ "Module"; "Developer A (h)"; "Developer B (h)" ]
      in
      let ha = E.Effort.hours E.Effort.developer_a te in
      let hb = E.Effort.hours E.Effort.developer_b te in
      List.iter
        (fun m ->
          match (List.assoc_opt m ha, List.assoc_opt m hb) with
          | Some a, Some b -> T.add_row tab [ M.name m; f2 a; f2 b ]
          | _ -> ())
        M.all;
      T.add_row tab
        [
          "ALL";
          f2 (E.Effort.total_hours E.Effort.developer_a te);
          f2 (E.Effort.total_hours E.Effort.developer_b te);
        ];
      print_string (T.render tab);
      Printf.printf "(paper: 42.54 h / 48.12 h for the full-scale backend)\n"

let corrected_sources (s : setup) (p : Vega_target.Profile.t) =
  let te = List.assoc p.Vega_target.Profile.name s.evals in
  let generated =
    List.filter_map
      (fun (b : V.Pipeline.bundle) ->
        match
          V.Pipeline.generate_function s.pipeline
            ~target:p.Vega_target.Profile.name ~decoder:s.decoder
            ~fname:b.spec.Vega_corpus.Spec.fname
        with
        | Some gf -> (
            match
              Vega_srclang.Parser.parse_function_opt (V.Generate.source_of gf)
            with
            | Ok f -> Some (b.spec.Vega_corpus.Spec.fname, f)
            | Error _ -> None)
        | None -> None)
      s.pipeline.V.Pipeline.prep.bundles
  in
  E.Perf.corrected_sources p te generated

let section_fig10 (s : setup) =
  heading "Fig. 10 — Benchmark speedups (-O3 over -O0), VEGA-built vs base";
  let vfs = s.pipeline.V.Pipeline.prep.corpus.Vega_corpus.Corpus.vfs in
  List.iter
    (fun (p : Vega_target.Profile.t) ->
      let sources = corrected_sources s p in
      let points = E.Perf.run vfs p ~vega_sources:sources () in
      let tab =
        T.create
          ~headers:[ "Benchmark"; p.name ^ " base"; p.name ^ " VEGA" ]
      in
      List.iter
        (fun (bp : E.Perf.bench_point) ->
          T.add_row tab
            [ bp.bp_case; f2 bp.bp_base_speedup ^ "x"; f2 bp.bp_vega_speedup ^ "x" ])
        points;
      print_string (T.render tab))
    Vega_target.Registry.held_out;
  Printf.printf
    "(the corrected VEGA compiler must track the base compiler, Sec. 4.3)\n"

let section_robustness (s : setup) =
  heading "Robustness (Sec. 4.3) — corrected compilers pass all regressions";
  let vfs = s.pipeline.V.Pipeline.prep.corpus.Vega_corpus.Corpus.vfs in
  List.iter
    (fun (p : Vega_target.Profile.t) ->
      let sources = corrected_sources s p in
      let ok = E.Perf.robustness vfs p ~vega_sources:sources () in
      Printf.printf "VEGA^%s: %s\n" p.name (if ok then "PASS" else "FAIL"))
    Vega_target.Registry.held_out

let section_faults (s : setup) =
  heading "Robustness counters — degradation ladder under decoder faults (seed 13)";
  let module R = Vega_robust in
  let tab =
    T.create
      ~headers:
        [
          "Target"; "CleanDegr"; "CleanOmit"; "Timeouts"; "Injected"; "Faults";
          "Retry"; "Fallback"; "TplDefault";
        ]
  in
  List.iter
    (fun (p : Vega_target.Profile.t) ->
      let te = List.assoc p.Vega_target.Profile.name s.evals in
      (* seeded decoder-fault injection: every 3rd decode raises; the
         ladder must absorb each one without aborting the backend *)
      let inj = R.Inject.create ~seed:13 ~every:3 R.Inject.Decoder_raise in
      let report = R.Report.create () in
      let wrapped fv = R.Inject.wrap_decoder inj s.decoder fv in
      ignore
        (V.Pipeline.generate_backend ~fallback:s.decoder ~report s.pipeline
           ~target:p.Vega_target.Profile.name ~decoder:wrapped);
      let lvl l = string_of_int (R.Report.count_level report l) in
      T.add_row tab
        [
          p.name;
          string_of_int (E.Metrics.degraded_stmts te.te_fns);
          string_of_int (E.Metrics.omitted_stmts te.te_fns);
          string_of_int (E.Metrics.timeout_count te.te_fns);
          string_of_int (R.Inject.injected inj);
          string_of_int (R.Report.total report);
          lvl R.Degrade.Retry;
          lvl R.Degrade.Retrieval_fallback;
          lvl R.Degrade.Template_default;
        ])
    Vega_target.Registry.held_out;
  print_string (T.render tab);
  Printf.printf
    "(clean-run columns must be zero; under injection every fault is\n\
    \ observed and absorbed by a ladder rung — the run never aborts)\n"

let section_killresume (s : setup) =
  heading "Crash-safe run loop — kill/resume determinism (write-ahead journal)";
  let module R = Vega_robust in
  let target = "RISCV" in
  let decoder = V.Pipeline.retrieval_decoder s.pipeline in
  let root =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "vega_bench_killresume_%d" (Unix.getpid ()))
  in
  let render gfs =
    String.concat "\n"
      (List.map
         (fun (gf : V.Generate.gen_func) ->
           Printf.sprintf "%s %h %d" gf.V.Generate.gf_fname
             gf.V.Generate.gf_confidence
             (List.length gf.V.Generate.gf_stmts))
         gfs)
  in
  let run ?kill_at ?resume dir =
    V.Pipeline.generate_backend_durable ?kill_at ?resume
      ~run_dir:(Filename.concat root dir) s.pipeline ~target ~decoder
  in
  match run "ref" with
  | Error e -> Printf.printf "reference durable run failed: %s\n" e
  | Ok refo ->
      let expect = render refo.V.Pipeline.d_funcs in
      let total = refo.V.Pipeline.d_records in
      let tab =
        T.create
          ~headers:
            [ "KillAt"; "Records"; "Resumed"; "Regen"; "Torn"; "Identical" ]
      in
      List.iter
        (fun k ->
          let dir = Printf.sprintf "kill%d" k in
          (match run ~kill_at:k dir with
          | exception R.Journal.Killed _ ->
              if k > 1 then
                R.Journal.tear
                  ~path:
                    (V.Pipeline.journal_path (Filename.concat root dir))
          | Ok _ | Error _ -> ());
          match run ~resume:true dir with
          | Error e -> Printf.printf "resume at %d failed: %s\n" k e
          | Ok o ->
              T.add_row tab
                [
                  string_of_int k;
                  string_of_int total;
                  string_of_int o.V.Pipeline.d_resumed;
                  string_of_int o.V.Pipeline.d_generated;
                  (if o.V.Pipeline.d_torn then "yes" else "no");
                  (if render o.V.Pipeline.d_funcs = expect then "yes"
                   else "NO");
                ])
        (List.sort_uniq compare [ 1; total / 4; total / 2; total - 1 ]);
      print_string (T.render tab);
      Printf.printf
        "(each row: a run hard-killed after KillAt journal records, its final\n\
        \ record torn mid-write, then resumed — output must be bit-identical)\n"

let section_split_ablation (s : setup) ~quick =
  heading "Split ablation (Sec. 4.1.2) — function-group vs backend split";
  if quick then
    print_endline "(skipped in --quick mode: requires model training)"
  else begin
    let prep = s.pipeline.V.Pipeline.prep in
    let cfg =
      {
        V.Pipeline.default_config with
        split = V.Pipeline.Backend_split;
        train_cfg = { V.Codebe.default_train_config with epochs = 6 };
      }
    in
    let t2 = V.Pipeline.train cfg prep in
    let te2 =
      E.Metrics.evaluate_target t2 ~decoder:(V.Pipeline.model_decoder t2)
        Vega_target.Registry.riscv ()
    in
    let base = List.assoc "RISCV" s.evals in
    Printf.printf
      "RISCV accuracy, function-group split: %s\n\
       RISCV accuracy, backend-based split:  %s\n\
       (paper: backend split costs 26.2%% accuracy on RISC-V)\n"
      (pct (E.Metrics.fn_accuracy base.te_fns))
      (pct (E.Metrics.fn_accuracy te2.E.Metrics.te_fns))
  end

let section_model_ablation (s : setup) =
  heading "Model ablation — CodeBE vs retrieval (\"statistical\") decoder";
  let t = s.pipeline in
  let tab = T.create ~headers:[ "Target"; "CodeBE"; "Retrieval" ] in
  List.iter
    (fun (p : Vega_target.Profile.t) ->
      let retr =
        E.Metrics.evaluate_target t ~decoder:(V.Pipeline.retrieval_decoder t) p ()
      in
      let main = List.assoc p.Vega_target.Profile.name s.evals in
      T.add_row tab
        [
          p.name;
          pct (E.Metrics.fn_accuracy main.te_fns);
          pct (E.Metrics.fn_accuracy retr.E.Metrics.te_fns);
        ])
    Vega_target.Registry.held_out;
  print_string (T.render tab);
  Printf.printf
    "(Sec. 2.4: learned models beat statistical value selection)\n"

let section_rnn_ablation (s : setup) ~quick =
  heading "Architecture ablation - CodeBE (transformer) vs RNN (Sec. 4.1.2)";
  if quick then print_endline "(skipped in --quick mode: requires training)"
  else begin
    (* a GRU seq2seq trained on the same pairs, matched parameter budget *)
    let cfg = { V.Codebe.default_train_config with epochs = 8 } in
    let rnn = V.Codebe.train ~arch:V.Codebe.Rnn cfg s.pipeline.V.Pipeline.train_pairs in
    let em_rnn =
      V.Codebe.exact_match rnn
        (List.filteri (fun i _ -> i < 200) s.pipeline.V.Pipeline.verify_pairs)
    in
    let em_trans =
      V.Codebe.exact_match s.pipeline.V.Pipeline.codebe
        (List.filteri (fun i _ -> i < 200) s.pipeline.V.Pipeline.verify_pairs)
    in
    Printf.printf
      "verification Exact Match: transformer %s, RNN %s\n\
       (paper: UniXcoder-based VEGA beats RNN-based by 35.3-77.7%% in\n\
       function accuracy)\n"
      (pct em_trans) (pct em_rnn)
  end

(* ------------------------------------------------------------------ *)
(* Decode and parallel-generation throughput                           *)

let section_decode () =
  heading "Decode throughput — incremental KV cache vs full re-decode";
  let module NN = Vega_nn.Transformer in
  let cfg =
    {
      NN.d_model = 32;
      heads = 4;
      d_ff = 64;
      n_layers = 2;
      max_len = 96;
      vocab_size = 64;
    }
  in
  let m = NN.create ~seed:7 cfg in
  let src = Array.init 24 (fun i -> (i * 5 + 1) mod cfg.NN.vocab_size) in
  let memory = NN.encode m src in
  let steps = cfg.NN.max_len in
  let ids = Array.init steps (fun k -> (k * 7 + 3) mod cfg.NN.vocab_size) in
  (* a forced [steps]-long decode (no EOS stop), the worst case the
     engine sees: the uncached path re-runs the whole prefix per token *)
  let run_cached () =
    let c = NN.new_cache m ~memory in
    Array.iter (fun id -> ignore (NN.decode_step c id)) ids
  in
  let run_uncached () =
    for k = 1 to steps do
      ignore (NN.decode_logits m ~memory (Array.sub ids 0 k))
    done
  in
  (* bit-identity cross-check before timing anything *)
  let identical =
    let c = NN.new_cache m ~memory in
    Array.for_all Fun.id
      (Array.init steps (fun k ->
           let row = NN.decode_step c ids.(k) in
           let logits = NN.decode_logits m ~memory (Array.sub ids 0 (k + 1)) in
           let lt = Vega_nn.Tensor.get logits in
           Array.for_all Fun.id
             (Array.init cfg.NN.vocab_size (fun j ->
                  Int64.bits_of_float row.(j)
                  = Int64.bits_of_float (lt k j)))))
  in
  run_cached ();
  run_uncached ();
  let rounds = 5 in
  let cached_s =
    Vega_util.Timer.time_s (fun () ->
        for _ = 1 to rounds do
          run_cached ()
        done)
  in
  let uncached_s =
    Vega_util.Timer.time_s (fun () ->
        for _ = 1 to rounds do
          run_uncached ()
        done)
  in
  let toks t = float_of_int (rounds * steps) /. t in
  let speedup = uncached_s /. cached_s in
  let tab = T.create ~headers:[ "Path"; "tokens/s"; "Speedup" ] in
  T.add_row tab [ "full re-decode"; f2 (toks uncached_s); "1.00x" ];
  T.add_row tab [ "KV cache"; f2 (toks cached_s); f2 speedup ^ "x" ];
  print_string (T.render tab);
  Printf.printf
    "logits bit-identical across all %d steps: %s\n\
     (acceptance floor: >= 3x at max_len-deep prefixes)\n"
    steps
    (if identical then "yes" else "NO");
  metric_f "decode_cached_tokens_per_s" (toks cached_s);
  metric_f "decode_uncached_tokens_per_s" (toks uncached_s);
  metric_f "decode_speedup" speedup;
  metric "decode_bit_identical" (if identical then "true" else "false")

let section_parallel (s : setup) =
  heading "Parallel backend generation — wall clock vs domain count";
  let t = s.pipeline in
  (* the deterministic retrieval decoder: parallel speedup must come
     from the pool, not from decoder variance *)
  let decoder = V.Pipeline.retrieval_decoder t in
  let target = "RISCV" in
  let render gfs =
    String.concat "\n"
      (List.map
         (fun (gf : V.Generate.gen_func) ->
           Printf.sprintf "%s %Lx %s" gf.V.Generate.gf_fname
             (Int64.bits_of_float gf.V.Generate.gf_confidence)
             (V.Generate.source_of_all gf))
         gfs)
  in
  let base = render (V.Pipeline.generate_backend t ~target ~decoder) in
  let tab = T.create ~headers:[ "Domains"; "Wall (s)"; "Speedup"; "Identical" ] in
  let t1 = ref 1.0 in
  List.iter
    (fun domains ->
      let gfs, secs =
        Vega_util.Timer.time (fun () ->
            V.Pipeline.generate_backend ~domains t ~target ~decoder)
      in
      if domains = 1 then t1 := secs;
      let same = render gfs = base in
      T.add_row tab
        [
          string_of_int domains;
          f2 secs;
          f2 (!t1 /. secs) ^ "x";
          (if same then "yes" else "NO");
        ];
      metric_f (Printf.sprintf "parallel_wall_s_domains_%d" domains) secs;
      metric
        (Printf.sprintf "parallel_identical_domains_%d" domains)
        (if same then "true" else "false"))
    [ 1; 2; 4 ];
  print_string (T.render tab);
  let cores = Domain.recommended_domain_count () in
  metric "parallel_host_cores" (string_of_int cores);
  Printf.printf
    "(every row must be bit-identical to the sequential run; speedup is\n\
    \ bounded by the host's core count — this host reports %d — and by\n\
    \ the per-function work distribution)\n"
    cores

(* ------------------------------------------------------------------ *)
(* Semantic verification                                                *)

let section_verify () =
  heading "Semantic verification — absint over every reference backend";
  let module Verify = Vega_absint.Verify in
  let corpus = Vega_corpus.Corpus.build () in
  let vfs = corpus.Vega_corpus.Corpus.vfs in
  let targets = Vega_target.Registry.all in
  let verify_all ~domains =
    Vega_util.Par.map ~domains (fun p -> Verify.verify_target vfs p) targets
  in
  let reports, secs1 = Vega_util.Timer.time (fun () -> verify_all ~domains:1) in
  let dn = Vega_util.Par.default_domains () in
  let reports_par, secs_n =
    Vega_util.Timer.time (fun () -> verify_all ~domains:dn)
  in
  let tab = T.create ~headers:[ "Target"; "Funcs"; "Diags"; "Sem" ] in
  let total_sem = ref 0 in
  List.iter
    (fun (r : Verify.report) ->
      let sem = Verify.sem_count r in
      total_sem := !total_sem + sem;
      T.add_row tab
        [
          r.Verify.v_target;
          string_of_int (List.length r.Verify.v_funcs);
          string_of_int (Verify.diag_count r);
          string_of_int sem;
        ];
      metric
        (Printf.sprintf "verify_sem_%s" r.Verify.v_target)
        (string_of_int sem))
    reports;
  print_string (T.render tab);
  let identical =
    List.for_all2
      (fun a b -> Verify.diag_count a = Verify.diag_count b)
      reports reports_par
  in
  Printf.printf
    "verdicts: %d semantic diagnostic(s) over %d target(s) (must be 0)\n\
     wall: %.2f s single-domain, %.2f s over %d domains (%.2fx)%s\n"
    !total_sem (List.length targets) secs1 secs_n dn
    (secs1 /. Float.max secs_n 1e-9)
    (if identical then "" else "  [MISMATCH vs single-domain]");
  metric "verify_sem_total" (string_of_int !total_sem);
  metric_f "verify_wall_s_domains_1" secs1;
  metric_f (Printf.sprintf "verify_wall_s_domains_%d" dn) secs_n;
  metric "verify_parallel_identical" (if identical then "true" else "false")

(* ------------------------------------------------------------------ *)
(* Serving layer                                                       *)

let section_serve (s : setup) =
  heading "Serving — vega-serve request throughput, overload shedding, drain";
  let module S = Vega_serve in
  let t = s.pipeline in
  let decoder = V.Pipeline.retrieval_decoder t in
  let target = "RISCV" in
  let fnames =
    List.map
      (fun (b : V.Pipeline.bundle) -> b.spec.Vega_corpus.Spec.fname)
      t.V.Pipeline.prep.bundles
  in
  let n = List.length fnames in
  let req ?(client = "bench") fname =
    {
      S.Proto.rq_client = client;
      rq_target = target;
      rq_fname = fname;
      rq_deadline_ms = None;
    }
  in
  let mk ?paused ~domains ~queue_cap () =
    match
      S.Server.create ?paused
        ~config:
          {
            S.Server.default_config with
            S.Server.domains;
            queue_cap;
            client_burst = float_of_int (16 * n);
            client_rate = 0.0;
          }
        t ~target ~decoder
    with
    | Ok srv -> srv
    | Error e -> failwith e
  in
  (* the cold round generates every interface function; the warm round
     hits the idempotent replay cache, isolating serving-layer overhead *)
  let tab = T.create ~headers:[ "Domains"; "Cold (req/s)"; "Warm (req/s)" ] in
  List.iter
    (fun domains ->
      let srv = mk ~domains ~queue_cap:(n + 4) () in
      let round () =
        let tickets =
          List.filter_map
            (fun f -> Result.to_option (S.Server.submit srv (req f)))
            fnames
        in
        List.iter (fun tk -> ignore (S.Server.await tk)) tickets
      in
      let cold = Vega_util.Timer.time_s round in
      let warm = Vega_util.Timer.time_s round in
      S.Server.drain srv;
      let rps secs = float_of_int n /. secs in
      T.add_row tab [ string_of_int domains; f2 (rps cold); f2 (rps warm) ];
      metric_f (Printf.sprintf "serve_cold_rps_domains_%d" domains) (rps cold);
      metric_f (Printf.sprintf "serve_warm_rps_domains_%d" domains) (rps warm))
    [ 1; 2; 4 ];
  print_string (T.render tab);
  (* overload: workers paused, storm 4x the queue capacity — the excess
     must shed synchronously at submit, and accounting must close *)
  let cap = 4 in
  let storm = 4 * cap in
  let srv = mk ~paused:true ~domains:1 ~queue_cap:cap () in
  let accepted, shed =
    List.fold_left
      (fun (a, r) i ->
        match
          S.Server.submit srv
            (req
               ~client:(Printf.sprintf "c%d" (i mod 3))
               (List.nth fnames (i mod n)))
        with
        | Ok tk -> (tk :: a, r)
        | Error _ -> (a, r + 1))
      ([], 0)
      (List.init storm Fun.id)
  in
  S.Server.resume_workers srv;
  List.iter (fun tk -> ignore (S.Server.await tk)) accepted;
  let drain_s = Vega_util.Timer.time_s (fun () -> S.Server.drain srv) in
  Printf.printf
    "overload at %dx queue capacity: %d accepted, %d shed (cap %d); \
     graceful drain %.2f ms\n\
     (shedding is synchronous in the submit path — the queue bound is a\n\
    \ hard memory bound; accepted + shed must equal the storm size)\n"
    (storm / cap) (List.length accepted) shed cap (1000.0 *. drain_s);
  metric "serve_overload_accepted" (string_of_int (List.length accepted));
  metric "serve_overload_shed" (string_of_int shed);
  metric_f "serve_drain_ms" (1000.0 *. drain_s)

(* ------------------------------------------------------------------ *)
(* Sharded serving                                                     *)

let section_shard (s : setup) =
  heading "Sharded serving — router throughput and the content-addressed cache";
  let module S = Vega_serve in
  let module Sh = Vega_shard in
  let t = s.pipeline in
  let decoder = V.Pipeline.retrieval_decoder t in
  let target = "RISCV" in
  let fnames =
    List.map
      (fun (b : V.Pipeline.bundle) -> b.spec.Vega_corpus.Spec.fname)
      t.V.Pipeline.prep.bundles
  in
  let n = List.length fnames in
  let fingerprint = V.Pipeline.fingerprint t ~target in
  let desc_hash =
    Sh.Cache.desc_hash_of_vfs t.V.Pipeline.prep.corpus.Vega_corpus.Corpus.vfs
      ~target
  in
  let req fname =
    {
      S.Proto.rq_client = "bench";
      rq_target = target;
      rq_fname = fname;
      rq_deadline_ms = None;
    }
  in
  let mk_router ?cache shards =
    let eps =
      List.init shards (fun i ->
          match
            S.Server.create
              ~config:
                {
                  S.Server.default_config with
                  S.Server.domains = 1;
                  queue_cap = n + 4;
                  client_burst = float_of_int (16 * n);
                  client_rate = 0.0;
                }
              t ~target ~decoder
          with
          | Ok srv -> Sh.Router.of_server ~name:(Printf.sprintf "shard-%d" i) srv
          | Error e -> failwith e)
    in
    match Sh.Router.create ?cache ~fingerprint ~desc_hash eps with
    | Ok r -> r
    | Error e -> failwith e
  in
  (* cold: every request generates on its owner shard; warm: the shards'
     idempotent replay answers — router + shard overhead without decode *)
  let tab = T.create ~headers:[ "Shards"; "Cold (req/s)"; "Warm (req/s)" ] in
  List.iter
    (fun shards ->
      let r = mk_router shards in
      let round () =
        List.iter (fun f -> ignore (Sh.Router.route r (req f))) fnames
      in
      let cold = Vega_util.Timer.time_s round in
      let warm = Vega_util.Timer.time_s round in
      Sh.Router.drain r;
      let rps secs = float_of_int n /. secs in
      T.add_row tab [ string_of_int shards; f2 (rps cold); f2 (rps warm) ];
      metric_f (Printf.sprintf "shard_cold_rps_shards_%d" shards) (rps cold);
      metric_f (Printf.sprintf "shard_warm_rps_shards_%d" shards) (rps warm))
    [ 1; 2; 4 ];
  print_string (T.render tab);
  (* the content-addressed cache: per-request latency of cold generation
     vs a checksummed on-disk cache hit (zero decoder involvement) *)
  let cache_dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "vega_bench_shardcache_%d" (Unix.getpid ()))
  in
  let cache = Sh.Cache.create ~dir:cache_dir ~fingerprint ~desc_hash () in
  let r = mk_router ~cache 2 in
  let round () =
    List.iter (fun f -> ignore (Sh.Router.route r (req f))) fnames
  in
  let cold_s = Vega_util.Timer.time_s round in
  let hit_s = Vega_util.Timer.time_s round in
  let c = Sh.Router.counters r in
  Sh.Router.drain r;
  let per secs = 1e6 *. secs /. float_of_int n in
  let speedup = cold_s /. hit_s in
  Printf.printf
    "cache: cold generation %.1f us/req, cache hit %.1f us/req — %.1fx\n\
     (%d of %d warm requests answered by the cache; acceptance floor:\n\
    \ cache-hit latency >= 10x below cold generation)\n"
    (per cold_s) (per hit_s) speedup c.Sh.Router.rt_cache_hits n;
  metric_f "shard_cache_cold_us_per_req" (per cold_s);
  metric_f "shard_cache_hit_us_per_req" (per hit_s);
  metric_f "shard_cache_speedup" speedup;
  metric "shard_cache_hits" (string_of_int c.Sh.Router.rt_cache_hits)

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)

let microbench (s : setup) =
  heading "Micro-benchmarks (bechamel)";
  let open Bechamel in
  let prep = s.pipeline.V.Pipeline.prep in
  let bundle = Option.get (V.Pipeline.bundle_for prep "getRelocType") in
  let corpus = prep.V.Pipeline.corpus in
  let vfs = corpus.Vega_corpus.Corpus.vfs in
  let riscv = Vega_target.Registry.riscv in
  let hooks, conv = E.Refbackend.backend_for vfs riscv in
  ignore hooks;
  let case = Option.get (Vega_ir.Programs.find "globals_array") in
  let modul = Vega_ir.Programs.modul_of case in
  let view =
    V.Featsel.view_for_new_target prep.V.Pipeline.ctx bundle.tpl bundle.analysis
      "RISCV"
  in
  let tests =
    [
      Test.make ~name:"templatize getRelocType group"
        (Staged.stage (fun () ->
             ignore (V.Featsel.analyze prep.V.Pipeline.ctx bundle.tpl)));
      Test.make ~name:"feature vectors (generation side)"
        (Staged.stage (fun () ->
             ignore
               (V.Featrep.generation_fvs bundle.analysis bundle.tpl bundle.hints
                  view)));
      Test.make ~name:"generate getRelocType (retrieval)"
        (Staged.stage (fun () ->
             ignore
               (V.Generate.run prep.V.Pipeline.ctx bundle.tpl bundle.analysis
                  bundle.hints ~target:"RISCV"
                  ~decoder:(V.Pipeline.retrieval_decoder s.pipeline))));
      Test.make ~name:"compile+simulate globals_array -O3"
        (Staged.stage (fun () ->
             let out =
               Vega_backend.Compiler.compile conv ~opt:Vega_backend.Compiler.O3
                 modul
             in
             ignore
               (Vega_sim.Machine.run conv out.Vega_backend.Compiler.emitted
                  ~entry:"main" ~args:[])));
    ]
  in
  (* bechamel OLS estimate of ns/run for each stage *)
  (try
     let ols =
       Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
     in
     let instances = [ Toolkit.Instance.monotonic_clock ] in
     let cfg = Benchmark.cfg ~limit:100 ~quota:(Time.second 0.5) () in
     let raw =
       Benchmark.all cfg instances (Test.make_grouped ~name:"vega" tests)
     in
     let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
     Hashtbl.iter
       (fun name est ->
         match Analyze.OLS.estimates est with
         | Some (ns :: _) ->
             Printf.printf "  %-42s %10.3f ms/run (OLS)\n" name (ns /. 1e6)
         | Some [] | None -> ())
       results
   with e ->
     Printf.printf "  (bechamel failed: %s)\n" (Printexc.to_string e));
  (* cross-check with plain wall-clock means *)
  let time_of name f =
    let n = 5 in
    let t = Vega_util.Timer.time_s (fun () -> for _ = 1 to n do f () done) in
    Printf.printf "  %-42s %8.2f ms/run\n" name (1000.0 *. t /. float_of_int n)
  in
  time_of "analyze (Code-Feature Mapping, one group)" (fun () ->
      ignore (V.Featsel.analyze prep.V.Pipeline.ctx bundle.tpl));
  time_of "generation feature vectors (one group)" (fun () ->
      ignore (V.Featrep.generation_fvs bundle.analysis bundle.tpl bundle.hints view));
  time_of "generate getRelocType (retrieval)" (fun () ->
      ignore
        (V.Generate.run prep.V.Pipeline.ctx bundle.tpl bundle.analysis
           bundle.hints ~target:"RISCV"
           ~decoder:(V.Pipeline.retrieval_decoder s.pipeline)));
  time_of "compile+simulate globals_array -O3" (fun () ->
      let out = Vega_backend.Compiler.compile conv ~opt:Vega_backend.Compiler.O3 modul in
      ignore
        (Vega_sim.Machine.run conv out.Vega_backend.Compiler.emitted ~entry:"main"
           ~args:[]))

(* ------------------------------------------------------------------ *)

let () =
  let args = Array.to_list Sys.argv in
  let quick = List.mem "--quick" args in
  let json_out, args =
    let rec extract = function
      | "--json-out" :: f :: rest -> (Some f, rest)
      | a :: rest ->
          let jo, r = extract rest in
          (jo, a :: r)
      | [] -> (None, [])
    in
    extract (List.tl args)
  in
  let sections =
    List.filter (fun a -> not (String.length a > 1 && a.[0] = '-')) args
  in
  let want name = sections = [] || List.mem name sections in
  Printf.printf "VEGA reproduction benchmark harness (%s mode)\n%!"
    (if quick then "quick/retrieval" else "full/CodeBE");
  (* setup (prepare + train + evaluate) is expensive; sections that do
     not touch the pipeline — e.g. `decode` — must not pay for it *)
  let setup = lazy (build_setup ~quick ()) in
  let s () = Lazy.force setup in
  if want "corpus" then section_corpus (s ());
  if want "fig6" then section_fig6 ();
  if want "fig7" then section_fig7 (s ());
  if want "fig8" then section_fig8 (s ());
  if want "fig9" then section_fig9 (s ());
  if want "table2" then section_table2 (s ());
  if want "table3" then section_table3 (s ());
  if want "table4" then section_table4 (s ());
  if want "fig10" then section_fig10 (s ());
  if want "robustness" then section_robustness (s ());
  if want "faults" then section_faults (s ());
  if want "killresume" then section_killresume (s ());
  if want "decode" then section_decode ();
  if want "verify" then section_verify ();
  if want "parallel" then section_parallel (s ());
  if want "serve" then section_serve (s ());
  if want "shard" then section_shard (s ());
  if want "model_ablation" then section_model_ablation (s ());
  if want "rnn_ablation" then section_rnn_ablation (s ()) ~quick;
  if want "split_ablation" then section_split_ablation (s ()) ~quick;
  if want "micro" then microbench (s ());
  Option.iter write_json_metrics json_out;
  print_newline ()
