(* Differential testing: random VIR programs must produce the same print
   stream through (a) the reference interpreter and (b) compilation with
   the base backend + simulation — at both optimization levels. This is
   the strongest whole-substrate invariant in the repository. *)

module V = Vega_ir.Vir
module B = Vega_backend

let corpus = lazy (Vega_corpus.Corpus.build ())

let conv_for name =
  let corpus = Lazy.force corpus in
  let p = Vega_target.Registry.find_exn name in
  let _, conv = Vega_eval.Refbackend.backend_for corpus.Vega_corpus.Corpus.vfs p in
  conv

(* ---- random straight-line/loop program generator ---- *)

type prog_seed = { ops : (int * int * int) list; loop_trip : int; seed : int }

let gen_prog_seed =
  QCheck.Gen.(
    map3
      (fun ops trip seed -> { ops; loop_trip = 2 + (trip mod 5); seed })
      (list_size (int_range 3 12)
         (triple (int_range 0 9) (int_range (-600) 600) (int_range 1 5)))
      small_nat small_nat)

(* Build a program from the seed: an accumulator threaded through random
   operations (with care around division), inside a counted loop, printing
   intermediate values. *)
let build { ops; loop_trip; seed } =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "func @main() {\nentry:\n";
  Buffer.add_string buf (Printf.sprintf "  %%r0 = mov %d\n" ((seed mod 97) + 1));
  Buffer.add_string buf "  %r1 = mov 0\n  br loop\nloop:\n";
  List.iteri
    (fun i (op, k, shift) ->
      let k = if k = 0 then 1 else k in
      let line =
        match op with
        | 0 -> Printf.sprintf "  %%r0 = add %%r0, %d\n" k
        | 1 -> Printf.sprintf "  %%r0 = sub %%r0, %d\n" k
        | 2 -> Printf.sprintf "  %%r0 = mul %%r0, %d\n" ((abs k mod 7) + 1)
        | 3 -> Printf.sprintf "  %%r0 = xor %%r0, %d\n" k
        | 4 -> Printf.sprintf "  %%r0 = and %%r0, %d\n" (abs k lor 0xff)
        | 5 -> Printf.sprintf "  %%r0 = or %%r0, %d\n" (abs k land 0xffff)
        | 6 -> Printf.sprintf "  %%r0 = shl %%r0, %d\n" (shift mod 4)
        | 7 -> Printf.sprintf "  %%r0 = shr %%r0, %d\n" shift
        | 8 ->
            (* keep divisors positive and away from zero *)
            Printf.sprintf "  %%r0 = div %%r0, %d\n" ((abs k mod 9) + 2)
        | _ -> Printf.sprintf "  %%r0 = slt %%r0, %d\n" k
      in
      Buffer.add_string buf line;
      if i mod 3 = 0 then Buffer.add_string buf "  print %r0\n")
    ops;
  Buffer.add_string buf "  %r1 = add %r1, 1\n";
  Buffer.add_string buf
    (Printf.sprintf "  brlt %%r1, %d, loop, done\ndone:\n  print %%r0\n  ret 0\n}\n"
       loop_trip);
  Buffer.contents buf

let run_case conv source opt =
  let m = Vega_ir.Vir_parser.parse source in
  let golden, _ = Vega_ir.Vir_interp.run m ~entry:"main" ~args:[] in
  let out = B.Compiler.compile conv ~opt m in
  let r = Vega_sim.Machine.run conv out.B.Compiler.emitted ~entry:"main" ~args:[] in
  match r.Vega_sim.Machine.status with
  | Vega_sim.Machine.Trap msg -> Error msg
  | Vega_sim.Machine.Timeout f -> Error (Printf.sprintf "timeout (fuel %d)" f)
  | Vega_sim.Machine.Finished _ ->
      if r.Vega_sim.Machine.output = golden then Ok () else Error "output mismatch"

let differential target =
  QCheck.Test.make
    ~name:(Printf.sprintf "compiled = interpreted on %s (O0 and O3)" target)
    ~count:25
    (QCheck.make ~print:(fun s -> build s) gen_prog_seed)
    (fun seedv ->
      let source = build seedv in
      let conv = conv_for target in
      match
        (run_case conv source B.Compiler.O0, run_case conv source B.Compiler.O3)
      with
      | Ok (), Ok () -> true
      | Error m, _ | _, Error m -> QCheck.Test.fail_reportf "%s:\n%s" m source)

let test_sim_deterministic () =
  let conv = conv_for "RISCV" in
  let c = Option.get (Vega_ir.Programs.find "crc32") in
  let out = B.Compiler.compile conv ~opt:B.Compiler.O3 (Vega_ir.Programs.modul_of c) in
  let run () = Vega_sim.Machine.run conv out.B.Compiler.emitted ~entry:"main" ~args:[] in
  let a = run () and b = run () in
  Alcotest.(check (list int)) "same output" a.Vega_sim.Machine.output b.Vega_sim.Machine.output;
  Alcotest.(check int) "same cycles" a.Vega_sim.Machine.cycles b.Vega_sim.Machine.cycles

let test_pipeline_deterministic () =
  (* two full preparations produce identical templates and properties *)
  let p1 = Vega.Pipeline.prepare ~corpus:(Lazy.force corpus) () in
  let p2 = Vega.Pipeline.prepare ~corpus:(Lazy.force corpus) () in
  let sig_of p =
    List.map
      (fun (b : Vega.Pipeline.bundle) ->
        ( b.spec.Vega_corpus.Spec.fname,
          Vega.Template.tokens_of_template b.tpl.Vega.Template.signature,
          Vega.Featsel.prop_names b.analysis ))
      p.Vega.Pipeline.bundles
  in
  Alcotest.(check bool) "identical analyses" true (sig_of p1 = sig_of p2)

let suite =
  [
    QCheck_alcotest.to_alcotest ~long:true (differential "RISCV");
    QCheck_alcotest.to_alcotest ~long:true (differential "Mips");
    QCheck_alcotest.to_alcotest ~long:true (differential "AVR");
    Alcotest.test_case "simulator deterministic" `Quick test_sim_deterministic;
    Alcotest.test_case "pipeline deterministic" `Slow test_pipeline_deterministic;
  ]
