(* Tests for the BackendC language: lexer, parser, printer, lines,
   interpreter. *)

module L = Vega_srclang
module Ast = L.Ast

let sample =
  {|unsigned ARMELFObjectWriter::getRelocType(MCValue Target, MCFixup Fixup, bool IsPCRel) {
  unsigned Kind = Fixup.getTargetKind();
  if (IsPCRel) {
    switch (Kind) {
    case ARM::fixup_arm_movt_hi16:
      return ELF::R_ARM_MOVT_PREL;
    default:
      llvm_unreachable("bad");
    }
  }
  return ELF::R_ARM_ABS32;
}|}

let test_lexer () =
  let toks = L.Lexer.tokenize "a += 0x1f << 2; // comment\nb::c" in
  Alcotest.(check int) "token count" 9 (List.length toks);
  (match toks with
  | L.Token.Id "a" :: L.Token.PlusEq :: L.Token.Int_lit 31 :: _ -> ()
  | _ -> Alcotest.fail "unexpected prefix");
  Alcotest.(check string) "string lit roundtrip" "\"x\\ny\""
    (L.Token.to_string (List.hd (L.Lexer.tokenize "\"x\\ny\"")))

let test_lexer_errors () =
  (match L.Lexer.tokenize "\"unterminated" with
  | exception L.Lexer.Error _ -> ()
  | _ -> Alcotest.fail "expected lexer error");
  match L.Lexer.tokenize "`" with
  | exception L.Lexer.Error _ -> ()
  | _ -> Alcotest.fail "expected lexer error on backtick"

let test_lexer_error_position () =
  (* malformed input on line 2, column 7: the message names both *)
  match L.Lexer.tokenize "a = 1;\nb = c `" with
  | exception L.Lexer.Error m ->
      Alcotest.(check bool)
        (Printf.sprintf "message carries line and col: %S" m)
        true
        (Vega_util.Strutil.contains_sub ~sub:"line 2" m
        && Vega_util.Strutil.contains_sub ~sub:"col 7" m)
  | _ -> Alcotest.fail "expected lexer error"

let test_lexer_spans () =
  let spanned = L.Lexer.tokenize_spanned "a = 1;\n  foo(b);" in
  let span_of tok =
    snd (List.find (fun (t, _) -> t = tok) spanned)
  in
  Alcotest.(check int) "first token line" 1 (span_of (L.Token.Id "a")).L.Span.line;
  Alcotest.(check int) "first token col" 1 (span_of (L.Token.Id "a")).L.Span.col;
  let foo = span_of (L.Token.Id "foo") in
  Alcotest.(check int) "indented token line" 2 foo.L.Span.line;
  Alcotest.(check int) "indented token col" 3 foo.L.Span.col;
  (* dropping the spans is exactly [tokenize] *)
  Alcotest.(check int) "consistent with tokenize"
    (List.length (L.Lexer.tokenize "a = 1;\n  foo(b);"))
    (List.length spanned)

let test_parser_error_position () =
  match L.Parser.parse_function_opt "unsigned f() {\n  return 1 +;\n}" with
  | Error m ->
      Alcotest.(check bool)
        (Printf.sprintf "parse error carries line: %S" m)
        true
        (Vega_util.Strutil.contains_sub ~sub:"line 2" m)
  | Ok _ -> Alcotest.fail "expected parse error"

let test_parse_roundtrip () =
  let f = L.Parser.parse_function sample in
  let text = L.Lines.to_source (L.Lines.of_func f) in
  let f2 = L.Parser.parse_function text in
  Alcotest.(check bool) "round trip" true (Ast.equal_func f f2)

let test_parse_shapes () =
  let f = L.Parser.parse_function sample in
  Alcotest.(check (option string)) "class" (Some "ARMELFObjectWriter") f.Ast.cls;
  Alcotest.(check string) "name" "getRelocType" f.Ast.name;
  Alcotest.(check int) "params" 3 (List.length f.Ast.params)

let test_parse_expr_prec () =
  let e = L.Parser.parse_expr "1 + 2 * 3" in
  Alcotest.(check bool) "mul binds tighter" true
    (Ast.equal_expr e
       Ast.(Binop (Add, Int 1, Binop (Mul, Int 2, Int 3))));
  let e2 = L.Parser.parse_expr "a >> 2 & 255" in
  Alcotest.(check bool) "shift before and" true
    (Ast.equal_expr e2
       Ast.(Binop (Band, Binop (Shr, Id "a", Int 2), Int 255)))

let test_parse_errors () =
  match L.Parser.parse_function_opt "unsigned f( {" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected parse error"

let test_lines_kinds () =
  let f = L.Parser.parse_function sample in
  let kinds =
    List.map (fun (l : L.Lines.t) -> L.Lines.kind_name l.kind) (L.Lines.of_func f)
  in
  Alcotest.(check (list string)) "kinds"
    [
      "fundef"; "simple"; "if"; "switch"; "case"; "simple"; "default";
      "simple"; "close"; "close"; "simple"; "close";
    ]
    kinds

(* random expression generator for the print/parse round-trip property *)
let gen_expr =
  let open QCheck.Gen in
  let ident = oneofl [ "Kind"; "Value"; "Foo"; "bar_baz" ] in
  sized
  @@ fix (fun self n ->
         if n <= 0 then
           oneof
             [
               map (fun i -> Ast.Int i) small_nat;
               map (fun s -> Ast.Id s) ident;
               map (fun s -> Ast.Scoped [ "T"; s ]) ident;
               return (Ast.Bool true);
             ]
         else
           oneof
             [
               map2
                 (fun a b -> Ast.Binop (Ast.Add, a, b))
                 (self (n / 2)) (self (n / 2));
               map2
                 (fun a b -> Ast.Binop (Ast.Shl, a, b))
                 (self (n / 2)) (self (n / 2));
               map2
                 (fun a b -> Ast.Binop (Ast.Band, a, b))
                 (self (n / 2)) (self (n / 2));
               map (fun a -> Ast.Unop (Ast.Not, a)) (self (n - 1));
               map2
                 (fun r args -> Ast.Call ("f", [ r; args ]))
                 (self (n / 2)) (self (n / 2));
               map (fun a -> Ast.Method (Ast.Id "MO", "getImm", [ a ])) (self (n - 1));
             ])

let qcheck_expr_roundtrip =
  QCheck.Test.make ~name:"expr print/parse round-trip" ~count:300
    (QCheck.make ~print:L.Printer.expr gen_expr)
    (fun e ->
      let printed = L.Printer.expr e in
      Ast.equal_expr e (L.Parser.parse_expr printed))

let mk_env () =
  let env = L.Interp.create_env () in
  L.Interp.add_enum env "T::A" 1;
  L.Interp.add_enum env "T::B" 2;
  env

let test_interp_switch_fallthrough () =
  let f =
    L.Parser.parse_function
      {|int f(int x) {
  int acc = 0;
  switch (x) {
  case T::A:
    acc += 10;
  case T::B:
    acc += 100;
    break;
  default:
    acc += 1000;
  }
  return acc;
}|}
  in
  let run v =
    match L.Interp.call (mk_env ()) f [ L.Interp.VInt v ] with
    | L.Interp.VInt n -> n
    | _ -> Alcotest.fail "expected int"
  in
  Alcotest.(check int) "fallthrough A" 110 (run 1);
  Alcotest.(check int) "B only" 100 (run 2);
  Alcotest.(check int) "default" 1000 (run 99)

let test_interp_strings () =
  let f =
    L.Parser.parse_function
      {|int f(StringRef s) {
  if (!s.startswith("x")) { return -1; }
  StringRef d = s.substr(1);
  if (!d.isDigits()) { return -2; }
  return d.getAsInteger();
}|}
  in
  let run s =
    match L.Interp.call (mk_env ()) f [ L.Interp.VStr s ] with
    | L.Interp.VInt n -> n
    | _ -> Alcotest.fail "expected int"
  in
  Alcotest.(check int) "x17" 17 (run "x17");
  Alcotest.(check int) "bad prefix" (-1) (run "r17");
  Alcotest.(check int) "not digits" (-2) (run "xab")

let test_interp_fuel () =
  let f = L.Parser.parse_function "int f() { while (true) { int x = 1; } return 0; }" in
  (match L.Interp.call ~fuel:1000 (mk_env ()) f [] with
  | exception L.Interp.Fuel_exhausted budget ->
      Alcotest.(check int) "budget carried" 1000 budget
  | exception L.Interp.Runtime_error m ->
      Alcotest.failf "fuel exhaustion must not be a Runtime_error (%s)" m
  | _ -> Alcotest.fail "expected fuel exhaustion");
  (* a genuine dynamic error still raises Runtime_error, not the timeout *)
  let g = L.Parser.parse_function "int g() { return unknown_name; }" in
  match L.Interp.call ~fuel:1000 (mk_env ()) g [] with
  | exception L.Interp.Runtime_error _ -> ()
  | exception L.Interp.Fuel_exhausted _ ->
      Alcotest.fail "dynamic error misclassified as fuel exhaustion"
  | _ -> Alcotest.fail "expected unknown-name error"

let test_interp_unknown_name () =
  let f = L.Parser.parse_function "int f() { return T::MISSING; }" in
  match L.Interp.call (mk_env ()) f [] with
  | exception L.Interp.Runtime_error _ -> ()
  | _ -> Alcotest.fail "expected unknown-name error"

let test_interp_while_for () =
  let f =
    L.Parser.parse_function
      {|int f(int n) {
  int acc = 0;
  for (int i = 0; i < n; i += 1) {
    acc += i;
  }
  while (acc > 100) {
    acc -= 100;
  }
  return acc;
}|}
  in
  match L.Interp.call (mk_env ()) f [ L.Interp.VInt 20 ] with
  | L.Interp.VInt 90 -> ()
  | v -> Alcotest.failf "got %d" (L.Interp.to_int v)

let suite =
  [
    Alcotest.test_case "lexer" `Quick test_lexer;
    Alcotest.test_case "lexer errors" `Quick test_lexer_errors;
    Alcotest.test_case "lexer error position" `Quick test_lexer_error_position;
    Alcotest.test_case "lexer spans" `Quick test_lexer_spans;
    Alcotest.test_case "parser error position" `Quick test_parser_error_position;
    Alcotest.test_case "parse round-trip" `Quick test_parse_roundtrip;
    Alcotest.test_case "parse shapes" `Quick test_parse_shapes;
    Alcotest.test_case "expr precedence" `Quick test_parse_expr_prec;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "line kinds" `Quick test_lines_kinds;
    QCheck_alcotest.to_alcotest qcheck_expr_roundtrip;
    Alcotest.test_case "interp switch fallthrough" `Quick test_interp_switch_fallthrough;
    Alcotest.test_case "interp strings" `Quick test_interp_strings;
    Alcotest.test_case "interp fuel" `Quick test_interp_fuel;
    Alcotest.test_case "interp unknown name" `Quick test_interp_unknown_name;
    Alcotest.test_case "interp loops" `Quick test_interp_while_for;
  ]
