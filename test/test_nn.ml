(* Tests for the from-scratch neural substrate: numerical gradient checks,
   optimizer behavior, vocabulary, and transformer overfitting. *)

module T = Vega_nn.Tensor
module Rng = Vega_util.Rng

(* numerical gradient check of a scalar-valued computation w.r.t. one
   parameter tensor *)
let gradcheck ~build param =
  let eps = 1e-4 in
  Array.fill param.T.grad 0 (Array.length param.T.grad) 0.0;
  T.with_tape (fun () ->
      let loss = build () in
      T.backward loss);
  let analytic = Array.copy param.T.grad in
  Array.fill param.T.grad 0 (Array.length param.T.grad) 0.0;
  let n = Array.length param.T.data in
  let max_err = ref 0.0 in
  for i = 0 to min (n - 1) 7 do
    let saved = param.T.data.(i) in
    param.T.data.(i) <- saved +. eps;
    let up = T.with_tape (fun () -> T.to_float (build ())) in
    param.T.data.(i) <- saved -. eps;
    let dn = T.with_tape (fun () -> T.to_float (build ())) in
    param.T.data.(i) <- saved;
    let numeric = (up -. dn) /. (2.0 *. eps) in
    let err = Float.abs (numeric -. analytic.(i)) /. Float.max 1.0 (Float.abs numeric) in
    if err > !max_err then max_err := err
  done;
  !max_err

let test_grad_matmul () =
  let rng = Rng.create 1 in
  let a = T.param rng 3 4 and b = T.param rng 4 2 in
  let targets = [| 0; 1; 0 |] in
  let build () = T.cross_entropy ~logits:(T.matmul a b) ~targets in
  Alcotest.(check bool) "matmul grad (a)" true (gradcheck ~build a < 1e-2);
  Alcotest.(check bool) "matmul grad (b)" true (gradcheck ~build b < 1e-2)

let test_grad_layernorm_gelu () =
  let rng = Rng.create 2 in
  let x = T.param rng 2 6 in
  let gain = T.param rng 1 6 and bias = T.param rng 1 6 in
  let w = T.param rng 6 3 in
  let targets = [| 2; 0 |] in
  let build () =
    T.cross_entropy ~logits:(T.matmul (T.gelu (T.layernorm ~gain ~bias x)) w) ~targets
  in
  Alcotest.(check bool) "x grad" true (gradcheck ~build x < 1e-2);
  Alcotest.(check bool) "gain grad" true (gradcheck ~build gain < 1e-2)

let test_grad_softmax_attention_shape () =
  let rng = Rng.create 3 in
  let q = T.param rng 4 8 in
  let at = Vega_nn.Layers.attention rng ~d_model:8 ~heads:2 in
  let w = T.param rng 8 3 in
  let targets = [| 0; 1; 2; 0 |] in
  let build () =
    let y = Vega_nn.Layers.attention_fwd at ~q_input:q ~kv_input:q ~mask:None in
    T.cross_entropy ~logits:(T.matmul y w) ~targets
  in
  Alcotest.(check bool) "attention grad wrt input" true (gradcheck ~build q < 1e-2)

let test_embed_and_positional () =
  let rng = Rng.create 4 in
  let table = T.param rng 10 6 in
  let pos = T.param rng 8 6 in
  let w = T.param rng 6 4 in
  let targets = [| 1; 2; 3 |] in
  let build () =
    let x = T.embed ~table [| 1; 5; 9 |] in
    let x = T.add_rows_positional x pos in
    T.cross_entropy ~logits:(T.matmul x w) ~targets
  in
  Alcotest.(check bool) "embedding grads" true (gradcheck ~build table < 1e-2);
  Alcotest.(check bool) "positional grads" true (gradcheck ~build pos < 1e-2)

let test_adam_decreases_loss () =
  let rng = Rng.create 5 in
  let w = T.param rng 4 3 in
  let x = T.create 5 4 (Array.init 20 (fun i -> float_of_int (i mod 7) /. 7.0)) in
  let targets = [| 0; 1; 2; 0; 1 |] in
  let opt = Vega_nn.Adam.create ~lr:0.05 [ w ] in
  let loss () =
    T.with_tape (fun () ->
        let l = T.cross_entropy ~logits:(T.matmul x w) ~targets in
        T.backward l;
        T.to_float l)
  in
  let l0 = loss () in
  Vega_nn.Adam.step opt;
  for _ = 1 to 30 do
    ignore (loss ());
    Vega_nn.Adam.step opt
  done;
  let l1 = loss () in
  Alcotest.(check bool) "loss decreased" true (l1 < l0 *. 0.8)

let test_vocab () =
  let v = Vega_nn.Vocab.build [ [ "alpha"; "beta" ]; [ "beta"; "gamma" ] ] in
  Alcotest.(check (list string)) "roundtrip" [ "alpha"; "gamma" ]
    (Vega_nn.Vocab.decode v (Vega_nn.Vocab.encode v [ "alpha"; "gamma" ]));
  Alcotest.(check int) "unknown is unk" Vega_nn.Vocab.unk
    (Vega_nn.Vocab.id v "never-seen");
  Alcotest.(check string) "score token" "<cs_10>" (Vega_nn.Vocab.score_token 0.5);
  Alcotest.(check (option (float 1e-9))) "score parse" (Some 1.0)
    (Vega_nn.Vocab.score_of_token "<cs_20>");
  Alcotest.(check (option int)) "copy parse" (Some 3)
    (Vega_nn.Vocab.copy_of_token "<COPY_3>")

let test_transformer_overfits () =
  (* a model of this size must be able to memorize four sequences *)
  let pairs =
    [
      ([ "<CLS>"; "a"; "b" ], [ "<cs_20>"; "x"; "y" ]);
      ([ "<CLS>"; "a"; "c" ], [ "<cs_20>"; "x"; "z" ]);
      ([ "<CLS>"; "d"; "b" ], [ "<cs_0>"; "w" ]);
      ([ "<CLS>"; "d"; "c" ], [ "<cs_0>"; "y"; "y" ]);
    ]
  in
  let cfg =
    {
      Vega.Codebe.tiny_train_config with
      Vega.Codebe.epochs = 120;
      lr = 4e-3;
      batch_size = 4;
    }
  in
  let m = Vega.Codebe.train cfg pairs in
  Alcotest.(check (float 1e-9)) "exact match 1.0" 1.0 (Vega.Codebe.exact_match m pairs)


let test_checkpoint_roundtrip () =
  let rng = Rng.create 9 in
  let a = T.param rng 3 4 and b = T.param rng 2 2 in
  let path = Filename.temp_file "vega" ".ckpt" in
  Vega_nn.Checkpoint.save ~path ~tokens:[ "alpha"; "beta" ] [ a; b ];
  let a2 = T.zeros 3 4 and b2 = T.zeros 2 2 in
  let tokens = Vega_nn.Checkpoint.load ~path [ a2; b2 ] in
  Sys.remove path;
  Alcotest.(check (list string)) "tokens" [ "alpha"; "beta" ] tokens;
  Alcotest.(check (array (float 1e-12))) "a data" a.T.data a2.T.data;
  Alcotest.(check (array (float 1e-12))) "b data" b.T.data b2.T.data

let test_checkpoint_shape_mismatch () =
  let rng = Rng.create 10 in
  let a = T.param rng 3 4 in
  let path = Filename.temp_file "vega" ".ckpt" in
  Vega_nn.Checkpoint.save ~path [ a ];
  let wrong = T.zeros 4 3 in
  (match Vega_nn.Checkpoint.load ~path [ wrong ] with
  | exception Vega_nn.Checkpoint.Format_error _ -> ()
  | _ -> Alcotest.fail "expected shape mismatch");
  Sys.remove path

let test_gru_gradcheck () =
  let cfg = { Vega_nn.Gru.d_model = 6; d_hidden = 8; max_len = 16; vocab_size = 12 } in
  let g = Vega_nn.Gru.create ~seed:3 cfg in
  let src = [| 7; 3; 5 |] and tgt = [| 8; 9 |] in
  (* gradient check w.r.t. the embedding table *)
  let emb = List.hd (Vega_nn.Gru.params g) in
  let build () = Vega_nn.Gru.loss g ~src ~tgt in
  Alcotest.(check bool) "gru grads" true (gradcheck ~build emb < 2e-2)

let test_gru_overfits () =
  let pairs =
    [
      ([ "<CLS>"; "a" ], [ "<cs_20>"; "x" ]);
      ([ "<CLS>"; "b" ], [ "<cs_0>"; "y"; "z" ]);
    ]
  in
  let cfg =
    { Vega.Codebe.tiny_train_config with Vega.Codebe.epochs = 150; lr = 8e-3; batch_size = 2 }
  in
  let m = Vega.Codebe.train ~arch:Vega.Codebe.Rnn cfg pairs in
  Alcotest.(check (float 1e-9)) "rnn exact match" 1.0 (Vega.Codebe.exact_match m pairs)

(* KV cache: stepping the cache must reproduce the last row of a full
   re-decode bit-for-bit, for every prefix length up to max_len. *)
let test_kv_cache_bitident () =
  let cfg =
    {
      Vega_nn.Transformer.d_model = 16;
      heads = 4;
      d_ff = 32;
      n_layers = 2;
      max_len = 24;
      vocab_size = 30;
    }
  in
  let m = Vega_nn.Transformer.create ~seed:42 cfg in
  let src = Array.init 10 (fun i -> ((i * 5) + 1) mod cfg.vocab_size) in
  let memory = Vega_nn.Transformer.encode m src in
  let c = Vega_nn.Transformer.new_cache m ~memory in
  let prefix = ref [] in
  for k = 0 to cfg.max_len - 1 do
    let id =
      if k = 0 then Vega_nn.Vocab.e2d else ((k * 7) + 3) mod cfg.vocab_size
    in
    prefix := id :: !prefix;
    let row = Vega_nn.Transformer.decode_step c id in
    let dec_in = Array.of_list (List.rev !prefix) in
    let logits = Vega_nn.Transformer.decode_logits m ~memory dec_in in
    let last = logits.T.rows - 1 in
    Array.iteri
      (fun j v ->
        let full = T.get logits last j in
        if Int64.bits_of_float v <> Int64.bits_of_float full then
          Alcotest.failf "step %d col %d: cached %h <> full %h" k j v full)
      row
  done;
  Alcotest.(check int) "cache length" cfg.max_len
    (Vega_nn.Transformer.cache_len c)

let test_generate_cached_equals_uncached () =
  let cfg =
    {
      Vega_nn.Transformer.d_model = 16;
      heads = 2;
      d_ff = 32;
      n_layers = 2;
      max_len = 32;
      vocab_size = 26;
    }
  in
  let m = Vega_nn.Transformer.create ~seed:5 cfg in
  let src = Array.init 8 (fun i -> ((i * 3) + 2) mod cfg.vocab_size) in
  let ids_c, probs_c = Vega_nn.Transformer.generate m ~src ~max_out:30 () in
  let ids_u, probs_u =
    Vega_nn.Transformer.generate_uncached m ~src ~max_out:30 ()
  in
  Alcotest.(check (array int)) "same ids" ids_u ids_c;
  Alcotest.(check int) "same count" (Array.length probs_u) (Array.length probs_c);
  Array.iteri
    (fun i p ->
      if Int64.bits_of_float p <> Int64.bits_of_float probs_u.(i) then
        Alcotest.failf "prob %d: cached %h <> uncached %h" i p probs_u.(i))
    probs_c

(* Concurrent with_tape calls in separate domains must not interleave:
   each domain's losses and accumulated gradients must match the
   single-domain reference bit-for-bit. *)
let test_tape_domain_safety () =
  let run seed =
    let rng = Rng.create seed in
    let a = T.param rng 4 4 and b = T.param rng 4 4 in
    let targets = [| 0; 1; 2; 3 |] in
    let acc = ref 0.0 in
    for _ = 1 to 40 do
      T.with_tape (fun () ->
          let l = T.cross_entropy ~logits:(T.matmul a b) ~targets in
          T.backward l;
          acc := !acc +. T.to_float l)
    done;
    (!acc, Array.copy a.T.grad)
  in
  let ref1 = run 1 and ref2 = run 2 in
  let d1 = Domain.spawn (fun () -> run 1) in
  let d2 = Domain.spawn (fun () -> run 2) in
  let got1 = Domain.join d1 and got2 = Domain.join d2 in
  let check_pair name (el, eg) (gl, gg) =
    if Int64.bits_of_float el <> Int64.bits_of_float gl then
      Alcotest.failf "%s: loss %h <> %h" name gl el;
    Array.iteri
      (fun i e ->
        if Int64.bits_of_float e <> Int64.bits_of_float gg.(i) then
          Alcotest.failf "%s: grad %d differs" name i)
      eg
  in
  check_pair "domain 1" ref1 got1;
  check_pair "domain 2" ref2 got2

let suite =
  [
    Alcotest.test_case "gradcheck matmul+ce" `Quick test_grad_matmul;
    Alcotest.test_case "gradcheck layernorm+gelu" `Quick test_grad_layernorm_gelu;
    Alcotest.test_case "gradcheck attention" `Quick test_grad_softmax_attention_shape;
    Alcotest.test_case "gradcheck embeddings" `Quick test_embed_and_positional;
    Alcotest.test_case "adam decreases loss" `Quick test_adam_decreases_loss;
    Alcotest.test_case "vocab" `Quick test_vocab;
    Alcotest.test_case "transformer overfits" `Slow test_transformer_overfits;
    Alcotest.test_case "checkpoint roundtrip" `Quick test_checkpoint_roundtrip;
    Alcotest.test_case "checkpoint mismatch" `Quick test_checkpoint_shape_mismatch;
    Alcotest.test_case "gru gradcheck" `Quick test_gru_gradcheck;
    Alcotest.test_case "gru overfits" `Slow test_gru_overfits;
    Alcotest.test_case "kv cache bit-identical" `Quick test_kv_cache_bitident;
    Alcotest.test_case "generate cached = uncached" `Quick
      test_generate_cached_equals_uncached;
    Alcotest.test_case "tape domain-safe" `Quick test_tape_domain_safety;
  ]
