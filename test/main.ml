(* Test entry point: one alcotest run covering every library. *)
let () =
  Alcotest.run "vega"
    [
      ("util", Test_util.suite);
      ("srclang", Test_srclang.suite);
      ("tdlang", Test_tdlang.suite);
      ("gumtree", Test_gumtree.suite);
      ("target", Test_target.suite);
      ("corpus", Test_corpus.suite);
      ("ir", Test_ir.suite);
      ("nn", Test_nn.suite);
      ("core", Test_core.suite);
      ("backend", Test_backend.suite);
      ("analysis", Test_analysis.suite);
      ("absint", Test_absint.suite);
      ("robust", Test_robust.suite);
      ("durable", Test_durable.suite);
      ("serve", Test_serve.suite);
      ("shard", Test_shard.suite);
      ("parallel", Test_parallel.suite);
      ("eval", Test_eval.suite);
      ("endtoend", Test_endtoend.suite);
    ]
