(* Tests for the sharded serving tier: the consistent-hash ring (unit +
   qcheck balance / minimal-disruption properties), the content-
   addressed result cache (bit-identical hits with zero decoder calls,
   corrupt-entry eviction + fall-through), and the router (reroute vs
   shed policy, circuit breaker, seeded backoff determinism, status
   wire format, multi-shard parity with a single server). *)

module V = Vega
module R = Vega_robust
module S = Vega_serve
module Sh = Vega_shard

let target = "RISCV"
let pipeline = Test_robust.pipeline

let fresh_dir =
  let n = ref 0 in
  fun name ->
    incr n;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "vega_shard_%d_%s%d" (Unix.getpid ()) name !n)
    in
    if not (Sys.file_exists d) then Unix.mkdir d 0o755;
    d

let mk ?(client = "t") fname =
  {
    S.Proto.rq_client = client;
    rq_target = target;
    rq_fname = fname;
    rq_deadline_ms = None;
  }

let fnames t =
  List.map
    (fun (b : V.Pipeline.bundle) -> b.V.Pipeline.spec.Vega_corpus.Spec.fname)
    t.V.Pipeline.prep.V.Pipeline.bundles

let tcfg =
  {
    S.Server.default_config with
    S.Server.domains = 1;
    queue_cap = 128;
    client_burst = 100000.0;
    client_rate = 0.0;
  }

(* Router config for tests: instant "sleeps", no probes, no retries
   unless the test asks for them. *)
let rcfg =
  { Sh.Router.default_config with retries = 0; probe_every = 0; seed = 77 }

let expect_done = function
  | S.Proto.Done _ -> ()
  | S.Proto.Rejected r ->
      Alcotest.failf "rejected: %s" (S.Proto.reject_to_string r)
  | S.Proto.Failed m -> Alcotest.failf "failed: %s" m

let mk_server ?(decoder = None) ?run_dir ?resume ?kill_at () =
  let t = Lazy.force pipeline in
  let decoder =
    match decoder with
    | Some d -> d
    | None -> V.Pipeline.retrieval_decoder t
  in
  match
    S.Server.create ~config:tcfg ?run_dir ?resume ?kill_at t ~target ~decoder
  with
  | Ok srv -> srv
  | Error e -> Alcotest.failf "server create failed: %s" e

let mk_router ?(config = rcfg) ?cache ?report eps =
  match
    Sh.Router.create ~config ?cache ?report ~sleep:(fun _ -> ())
      ~fingerprint:"fp-test" ~desc_hash:"dh-test" eps
  with
  | Ok r -> r
  | Error e -> Alcotest.failf "router create failed: %s" e

(* An endpoint that is down hard: every contact raises. *)
let dead_endpoint ?(contacts = ref 0) name =
  {
    Sh.Router.ep_name = name;
    ep_request =
      (fun _ ->
        incr contacts;
        raise
          (R.Fault.Fault
             (R.Fault.Shard_failure { shard = name; detail = "dead" })));
    ep_health = (fun () -> None);
    ep_drain = (fun () -> None);
  }

(* ---------------- ring ---------------- *)

let test_ring_basics () =
  let ring = Sh.Ring.create ~replicas:64 [ "a"; "b"; "c" ] in
  Alcotest.(check int) "three shards" 3 (Sh.Ring.size ring);
  Alcotest.(check (list string)) "names sorted" [ "a"; "b"; "c" ]
    (Sh.Ring.shards ring);
  (* lookup is deterministic and owned by the successor walk head *)
  List.iter
    (fun key ->
      let owner = Sh.Ring.lookup ring key in
      Alcotest.(check string) "lookup stable" owner (Sh.Ring.lookup ring key);
      match Sh.Ring.successors ring key with
      | head :: rest ->
          Alcotest.(check string) "owner heads the successor walk" owner head;
          Alcotest.(check (list string))
            "successors cover every shard once"
            (Sh.Ring.shards ring)
            (List.sort compare (head :: rest))
      | [] -> Alcotest.fail "no successors")
    [ "k1"; "k2"; "getRelocType"; "" ];
  (* bad configurations are loud *)
  (match Sh.Ring.create [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty shard list accepted");
  (match Sh.Ring.create [ "a"; "a" ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate shard accepted");
  match Sh.Ring.remove (Sh.Ring.create [ "solo" ]) "solo" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "removing the last shard accepted"

let test_ring_balance_fixed () =
  (* deterministic balance check on a fixed ring: 3 shards, 1200 keys *)
  let ring = Sh.Ring.create ~replicas:64 [ "shard-0"; "shard-1"; "shard-2" ] in
  let counts = Hashtbl.create 3 in
  for i = 0 to 1199 do
    let owner = Sh.Ring.lookup ring (Printf.sprintf "key-%d" i) in
    Hashtbl.replace counts owner
      (1 + Option.value ~default:0 (Hashtbl.find_opt counts owner))
  done;
  List.iter
    (fun name ->
      let n = Option.value ~default:0 (Hashtbl.find_opt counts name) in
      let share = float_of_int n /. 1200.0 in
      Alcotest.(check bool)
        (Printf.sprintf "%s share %.3f within [0.1333, 0.6667]" name share)
        true
        (share >= 1.0 /. 7.5 && share <= 2.0 /. 3.0))
    (Sh.Ring.shards ring)

(* qcheck generators: 2-5 distinct shard names, alphanumeric keys *)
let shard_names_gen =
  QCheck.Gen.(
    let name = map (Printf.sprintf "sh%d") (int_range 0 99) in
    list_size (int_range 2 5) name
    |> map (fun l -> List.sort_uniq compare l)
    |> map (fun l -> if List.length l < 2 then [ "sh0"; "sh1" ] else l))

let key_gen = QCheck.Gen.(map (Printf.sprintf "k%d") (int_range 0 1_000_000))

let qcheck_balance =
  QCheck.Test.make ~name:"ring key distribution within balance bound"
    ~count:30
    (QCheck.make ~print:(fun names -> String.concat "," names) shard_names_gen)
    (fun names ->
      let ring = Sh.Ring.create ~replicas:96 names in
      let total = 600 in
      let counts = Hashtbl.create 8 in
      for i = 0 to total - 1 do
        let owner = Sh.Ring.lookup ring (Printf.sprintf "bkey-%d" i) in
        Hashtbl.replace counts owner
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts owner))
      done;
      let fair = float_of_int total /. float_of_int (List.length names) in
      List.for_all
        (fun name ->
          let n =
            float_of_int (Option.value ~default:0 (Hashtbl.find_opt counts name))
          in
          n >= fair /. 4.0 && n <= fair *. 4.0)
        names)

let qcheck_minimal_disruption =
  QCheck.Test.make
    ~name:"removing a shard remaps only that shard's keys" ~count:30
    (QCheck.pair
       (QCheck.make ~print:(String.concat ",") shard_names_gen)
       (QCheck.make
          ~print:(String.concat ",")
          (QCheck.Gen.list_size (QCheck.Gen.return 80) key_gen)))
    (fun (names, keys) ->
      let ring = Sh.Ring.create ~replicas:64 names in
      let victim = List.hd names in
      let ring' = Sh.Ring.remove ring victim in
      List.for_all
        (fun key ->
          let owner = Sh.Ring.lookup ring key in
          let owner' = Sh.Ring.lookup ring' key in
          if owner = victim then
            (* the victim's keys land somewhere that still exists *)
            List.mem owner' (Sh.Ring.shards ring')
          else
            (* every other key keeps its owner — minimal disruption *)
            owner' = owner)
        keys)

(* ---------------- cache ---------------- *)

let done_reply ?(degraded = 0) fname =
  S.Proto.Done
    {
      r_fname = fname;
      r_target = target;
      r_confidence = 0.8125;
      r_degraded = degraded;
      r_resumed = false;
      r_source = "unsigned " ^ fname ^ " ( ) {\nreturn 7 ;\n}";
    }

let test_cache_roundtrip () =
  let report = R.Report.create () in
  let cache =
    Sh.Cache.create ~report ~dir:(fresh_dir "cache") ~fingerprint:"fp"
      ~desc_hash:"dh" ()
  in
  Alcotest.(check bool) "cold miss" true (Sh.Cache.get cache ~fname:"f" = None);
  let reply = done_reply "f" in
  Alcotest.(check bool) "clean done is cached" true
    (Sh.Cache.put cache ~fname:"f" reply);
  (match Sh.Cache.get cache ~fname:"f" with
  | Some got ->
      Alcotest.(check bool) "hit is bit-identical" true
        (S.Proto.encode_reply got = S.Proto.encode_reply reply)
  | None -> Alcotest.fail "entry vanished");
  (* degraded / rejected / failed results are never cached *)
  Alcotest.(check bool) "degraded not cached" false
    (Sh.Cache.put cache ~fname:"g" (done_reply ~degraded:1 "g"));
  Alcotest.(check bool) "rejection not cached" false
    (Sh.Cache.put cache ~fname:"g" (S.Proto.Rejected S.Proto.Draining));
  Alcotest.(check bool) "failure not cached" false
    (Sh.Cache.put cache ~fname:"g" (S.Proto.Failed "no"));
  (* a different model fingerprint addresses a different entry *)
  let other =
    Sh.Cache.create ~dir:(Sh.Cache.dir cache) ~fingerprint:"fp2"
      ~desc_hash:"dh" ()
  in
  Alcotest.(check bool) "other fingerprint misses" true
    (Sh.Cache.get other ~fname:"f" = None);
  let stats = Sh.Cache.stats cache in
  Alcotest.(check int) "one entry on disk" 1 stats.Sh.Cache.c_entries;
  Alcotest.(check int) "one hit" 1 stats.Sh.Cache.c_hits;
  Alcotest.(check int) "one put" 1 stats.Sh.Cache.c_puts;
  Alcotest.(check int) "no evictions" 0 stats.Sh.Cache.c_evictions

let test_cache_corrupt_entry () =
  let report = R.Report.create () in
  let cache =
    Sh.Cache.create ~report ~dir:(fresh_dir "cachecorrupt") ~fingerprint:"fp"
      ~desc_hash:"dh" ()
  in
  ignore (Sh.Cache.put cache ~fname:"f" (done_reply "f"));
  let path = Sh.Cache.path cache ~fname:"f" in
  Alcotest.(check bool) "entry written" true (Sys.file_exists path);
  (* flip one seeded byte on disk *)
  let inj = R.Inject.create ~seed:5 R.Inject.Cache_corrupt in
  (match R.Inject.corrupt_cache_entry inj ~path with
  | Some _ -> ()
  | None -> Alcotest.fail "injector did not flip a byte");
  (* the corrupt entry is detected, evicted, recorded — and not served *)
  Alcotest.(check bool) "corrupt entry not served" true
    (Sh.Cache.get cache ~fname:"f" = None);
  Alcotest.(check bool) "corrupt entry deleted" false (Sys.file_exists path);
  Alcotest.(check int) "cache-corruption fault recorded" 1
    (R.Report.count_class report R.Fault.Ccache);
  let stats = Sh.Cache.stats cache in
  Alcotest.(check int) "eviction counted" 1 stats.Sh.Cache.c_evictions;
  (* the slot is usable again *)
  Alcotest.(check bool) "re-put after eviction" true
    (Sh.Cache.put cache ~fname:"f" (done_reply "f"));
  Alcotest.(check bool) "entry back" true (Sh.Cache.get cache ~fname:"f" <> None)

(* Cache in front of a real shard: a hit answers bit-identically with
   zero decoder calls. *)
let test_cache_zero_decodes () =
  let t = Lazy.force pipeline in
  let base = V.Pipeline.retrieval_decoder t in
  let decodes = Atomic.make 0 in
  let counting fv =
    Atomic.incr decodes;
    base fv
  in
  let srv = mk_server ~decoder:(Some counting) () in
  let report = R.Report.create () in
  let cache =
    Sh.Cache.create ~report ~dir:(fresh_dir "cachefront") ~fingerprint:"fp"
      ~desc_hash:"dh" ()
  in
  let router = mk_router ~cache ~report [ Sh.Router.of_server ~name:"s0" srv ] in
  let fname = List.hd (fnames t) in
  let r1 = Sh.Router.route router (mk fname) in
  expect_done r1;
  let cold = Atomic.get decodes in
  Alcotest.(check bool) "cold route decodes" true (cold > 0);
  (* the hit: bit-identical payload, decoder untouched *)
  let r2 = Sh.Router.route router (mk fname) in
  Alcotest.(check bool) "hit bit-identical to cold reply" true
    (S.Proto.encode_reply r2 = S.Proto.encode_reply r1);
  Alcotest.(check int) "zero decoder calls on the hit" cold
    (Atomic.get decodes);
  Alcotest.(check string) "decision log: accept then cache hit" "AC"
    (Sh.Router.decisions router);
  (* flip a byte on disk: the next route evicts, falls through to a
     fresh shard (new done table), re-generates, re-caches *)
  (match
     R.Inject.corrupt_cache_entry
       (R.Inject.create ~seed:3 R.Inject.Cache_corrupt)
       ~path:(Sh.Cache.path cache ~fname)
   with
  | Some _ -> ()
  | None -> Alcotest.fail "no byte flipped");
  let srv2 = mk_server ~decoder:(Some counting) () in
  let router2 =
    mk_router ~cache ~report [ Sh.Router.of_server ~name:"s0" srv2 ]
  in
  let r3 = Sh.Router.route router2 (mk fname) in
  expect_done r3;
  Alcotest.(check bool) "fell through to generation" true
    (Atomic.get decodes > cold);
  Alcotest.(check bool) "regenerated reply bit-identical" true
    (S.Proto.encode_reply r3 = S.Proto.encode_reply r1);
  Alcotest.(check int) "corruption recorded" 1
    (R.Report.count_class report R.Fault.Ccache);
  Alcotest.(check bool) "entry re-cached" true
    (Sys.file_exists (Sh.Cache.path cache ~fname));
  S.Server.drain srv;
  S.Server.drain srv2

(* ---------------- router ---------------- *)

(* With one dead shard, reroute policy answers every request from the
   survivor; shed policy drops exactly the dead shard's keys. *)
let test_router_reroute_vs_shed () =
  let t = Lazy.force pipeline in
  let names = fnames t in
  let run policy =
    let srv = mk_server () in
    let eps =
      [ Sh.Router.of_server ~name:"alive" srv; dead_endpoint "dead" ]
    in
    let router =
      mk_router ~config:{ rcfg with Sh.Router.policy } eps
    in
    let replies = List.map (fun f -> (f, Sh.Router.route router (mk f))) names in
    let log = Sh.Router.decisions router in
    S.Server.drain srv;
    (router, replies, log)
  in
  (* reroute: everything lands on the live shard, dead-owned keys as 'R' *)
  let router, replies, log = run Sh.Router.Reroute in
  List.iter (fun (_, r) -> expect_done r) replies;
  Alcotest.(check bool) "some keys owned by the dead shard" true
    (String.contains log 'R');
  Alcotest.(check bool) "some keys owned by the live shard" true
    (String.contains log 'A');
  Alcotest.(check bool) "nothing shed under reroute" false
    (String.contains log 'D');
  Alcotest.(check int) "no cache: every request routed"
    (List.length names)
    (Sh.Router.counters router).Sh.Router.rt_routed;
  (* shard failures recorded for router-observed contact faults *)
  Alcotest.(check bool) "shard failures recorded" true
    (R.Report.count_class (Sh.Router.report router) R.Fault.Cshard > 0);
  (* shed: dead-owned keys get the typed rejection, the rest succeed *)
  let _, replies', log' = run Sh.Router.Shed in
  let sheds =
    List.filter
      (fun (_, r) ->
        match r with
        | S.Proto.Rejected (S.Proto.Shard_down { shard }) ->
            Alcotest.(check string) "shed names the dead owner" "dead" shard;
            true
        | r ->
            expect_done r;
            false)
      replies'
  in
  Alcotest.(check bool) "shed policy drops the dead shard's keys" true
    (List.length sheds > 0);
  Alcotest.(check bool) "shed log has D and no R" true
    (String.contains log' 'D' && not (String.contains log' 'R'));
  (* the two policies agree on which keys are troubled: 'R' positions
     under reroute are exactly 'D' positions under shed *)
  Alcotest.(check int) "same decision length"
    (String.length log) (String.length log');
  String.iteri
    (fun i c ->
      let c' = log'.[i] in
      match c with
      | 'R' -> Alcotest.(check char) "R maps to D" 'D' c'
      | c -> Alcotest.(check char) "A maps to A" c c')
    log

let test_router_breaker () =
  let contacts = ref 0 in
  let srv = mk_server () in
  let cfg =
    {
      rcfg with
      Sh.Router.policy = Sh.Router.Shed;
      breaker_threshold = 2;
      breaker_cooldown = 3;
    }
  in
  let dead = dead_endpoint ~contacts "dead" in
  (* single-shard router: every key is owned by the dead shard *)
  let router = mk_router ~config:cfg [ dead ] in
  let t = Lazy.force pipeline in
  let fname = List.hd (fnames t) in
  let shoot () = ignore (Sh.Router.route router (mk fname)) in
  (* threshold contacts open the breaker *)
  shoot ();
  shoot ();
  Alcotest.(check int) "two contacts before the breaker opens" 2 !contacts;
  (match Sh.Router.status router with
  | [ s ] -> Alcotest.(check string) "breaker open" "open" s.Sh.Router.ss_breaker
  | _ -> Alcotest.fail "one shard expected");
  (* cooldown: the next [cooldown - 1] decisions shed without contact *)
  shoot ();
  shoot ();
  Alcotest.(check int) "open breaker stops contacts" 2 !contacts;
  (* cooldown expires: half-open lets exactly one probe through *)
  shoot ();
  Alcotest.(check int) "half-open probes once" 3 !contacts;
  (match Sh.Router.status router with
  | [ s ] ->
      Alcotest.(check string) "probe failed: open again" "open"
        s.Sh.Router.ss_breaker;
      Alcotest.(check int) "every request shed" 5 s.Sh.Router.ss_shed
  | _ -> Alcotest.fail "one shard expected");
  S.Server.drain srv

(* Backoff delays are seeded: two routers with the same seed retry with
   byte-identical delay sequences; the delays stay in the jitter band. *)
let test_router_backoff_determinism () =
  let delays seed =
    let log = ref [] in
    let cfg =
      {
        rcfg with
        Sh.Router.policy = Sh.Router.Shed;
        retries = 3;
        breaker_threshold = 100;
        seed;
      }
    in
    match
      Sh.Router.create ~config:cfg
        ~sleep:(fun d -> log := d :: !log)
        ~fingerprint:"fp" ~desc_hash:"dh"
        [ dead_endpoint "dead" ]
    with
    | Error e -> Alcotest.failf "router create failed: %s" e
    | Ok router ->
        ignore (Sh.Router.route router (mk "f"));
        List.rev !log
  in
  let d1 = delays 42 in
  Alcotest.(check int) "three retries, three sleeps" 3 (List.length d1);
  Alcotest.(check bool) "same seed, same delays" true (d1 = delays 42);
  Alcotest.(check bool) "different seed, different delays" true
    (d1 <> delays 43);
  List.iteri
    (fun i d ->
      let expo = rcfg.Sh.Router.backoff_base_s *. (2.0 ** float_of_int i) in
      Alcotest.(check bool)
        (Printf.sprintf "delay %d in jitter band" i)
        true
        (d <= rcfg.Sh.Router.backoff_max_s +. 1e-9
        && d >= Float.min rcfg.Sh.Router.backoff_max_s (0.75 *. expo) -. 1e-9))
    d1

let test_status_wire () =
  let statuses =
    [
      {
        Sh.Router.ss_name = "shard-0";
        ss_breaker = "closed";
        ss_routed = 12;
        ss_failures = 0;
        ss_rerouted = 0;
        ss_shed = 0;
        ss_state = "ready";
      };
      {
        Sh.Router.ss_name = "shard-1";
        ss_breaker = "open";
        ss_routed = 3;
        ss_failures = 7;
        ss_rerouted = 5;
        ss_shed = 2;
        ss_state = "unknown";
      };
    ]
  in
  Alcotest.(check bool) "status round-trips" true
    (Sh.Router.decode_status (Sh.Router.encode_status statuses)
    = Some statuses);
  Alcotest.(check bool) "empty fleet round-trips" true
    (Sh.Router.decode_status (Sh.Router.encode_status []) = Some []);
  Alcotest.(check bool) "junk rejected" true
    (Sh.Router.decode_status "junk" = None)

(* Three shards vs one server: same requests, bit-identical replies —
   sharding must not change a single generated byte. *)
let test_three_shard_parity () =
  let t = Lazy.force pipeline in
  let names = fnames t in
  let solo = mk_server () in
  let servers = List.init 3 (fun _ -> mk_server ()) in
  let eps =
    List.mapi
      (fun i srv -> Sh.Router.of_server ~name:(Printf.sprintf "shard-%d" i) srv)
      servers
  in
  let router = mk_router eps in
  List.iter
    (fun fname ->
      let direct = S.Server.request solo (mk fname) in
      let routed = Sh.Router.route router (mk fname) in
      expect_done routed;
      Alcotest.(check bool)
        (Printf.sprintf "%s identical through the router" fname)
        true
        (S.Proto.encode_reply direct = S.Proto.encode_reply routed))
    names;
  (* the work actually spread: more than one shard answered *)
  let busy =
    List.filter
      (fun (s : Sh.Router.shard_status) -> s.Sh.Router.ss_routed > 0)
      (Sh.Router.status router)
  in
  Alcotest.(check bool) "work spread across shards" true (List.length busy > 1);
  Alcotest.(check string) "all accepted at the owner"
    (String.make (List.length names) 'A')
    (Sh.Router.decisions router);
  S.Server.drain solo;
  Sh.Router.drain router

let suite =
  [
    Alcotest.test_case "ring basics" `Quick test_ring_basics;
    Alcotest.test_case "ring balance (fixed)" `Quick test_ring_balance_fixed;
    QCheck_alcotest.to_alcotest qcheck_balance;
    QCheck_alcotest.to_alcotest qcheck_minimal_disruption;
    Alcotest.test_case "cache round-trip" `Quick test_cache_roundtrip;
    Alcotest.test_case "cache corrupt entry" `Quick test_cache_corrupt_entry;
    Alcotest.test_case "cache-hit zero decodes" `Quick test_cache_zero_decodes;
    Alcotest.test_case "reroute vs shed" `Quick test_router_reroute_vs_shed;
    Alcotest.test_case "circuit breaker" `Quick test_router_breaker;
    Alcotest.test_case "backoff determinism" `Quick
      test_router_backoff_determinism;
    Alcotest.test_case "status wire format" `Quick test_status_wire;
    Alcotest.test_case "three-shard parity" `Quick test_three_shard_parity;
  ]
