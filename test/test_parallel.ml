(* Tests for the parallel inference engine: the domain pool itself
   (deterministic order, failure propagation), parallel-vs-sequential
   bit-identity of backend generation, parallel durable runs including
   kill/resume, and the eval-split leakage regression (the retrieval
   index must cover exactly the training side of the split). *)

module V = Vega
module R = Vega_robust
module J = R.Journal
module Par = Vega_util.Par

(* ---------------- the domain pool ---------------- *)

let test_par_map_order () =
  let items = List.init 100 Fun.id in
  let expect = List.map (fun i -> i * i) items in
  List.iter
    (fun domains ->
      Alcotest.(check (list int))
        (Printf.sprintf "order preserved with %d domains" domains)
        expect
        (Par.map ~domains (fun i -> i * i) items))
    [ 1; 2; 4; 8 ];
  Alcotest.(check (list int)) "empty input" []
    (Par.map ~domains:4 (fun i -> i) []);
  Alcotest.(check (list int)) "fewer items than domains" [ 7 ]
    (Par.map ~domains:4 (fun i -> i + 6) [ 1 ])

let test_par_map_failure () =
  (* a failing item propagates its own exception to the caller *)
  (match Par.map ~domains:3 (fun i -> if i = 5 then failwith "item5" else i)
           (List.init 20 Fun.id)
   with
  | exception Failure m -> Alcotest.(check string) "the item's error" "item5" m
  | _ -> Alcotest.fail "expected the failure to propagate");
  (* the pool is reusable after a failure *)
  Alcotest.(check (list int)) "pool state not poisoned" [ 0; 1; 2 ]
    (Par.map ~domains:3 Fun.id [ 0; 1; 2 ])

let test_par_map_ctx () =
  (* every worker gets a private context; worker 0 is the caller *)
  let seen = Array.make 4 0 in
  let results =
    Par.map_ctx ~domains:4
      ~ctx:(fun w ->
        Alcotest.(check bool) "worker index in range" true (w >= 0 && w < 4);
        w)
      (fun w i ->
        (* no lock: each slot is touched by exactly one worker *)
        seen.(w) <- seen.(w) + 1;
        i * 10)
      (List.init 40 Fun.id)
  in
  Alcotest.(check (list int)) "ctx map keeps order"
    (List.init 40 (fun i -> i * 10))
    results;
  Alcotest.(check int) "every item ran exactly once" 40
    (Array.fold_left ( + ) 0 seen)

let test_default_domains () =
  let d = Par.default_domains () in
  Alcotest.(check bool) "clamped to [1, 4]" true (d >= 1 && d <= 4)

(* ---------------- eval-split leakage regression ---------------- *)

let test_retrieval_no_eval_leakage () =
  let t = Lazy.force Test_robust.pipeline in
  Alcotest.(check bool) "split has a verification side" true
    (t.V.Pipeline.verify_pairs <> []);
  (* regression: the index used to be built from train + verification
     pairs, so its size equalled the whole split *)
  Alcotest.(check int) "index covers exactly the train side"
    (List.length t.V.Pipeline.train_pairs)
    (V.Retrieval.size t.V.Pipeline.retrieval);
  Alcotest.(check bool) "old behavior indexed the verification side too"
    true
    (V.Retrieval.size t.V.Pipeline.retrieval
    < List.length t.V.Pipeline.train_pairs
      + List.length t.V.Pipeline.verify_pairs);
  (* no verification output is reachable from the index unless the same
     output also occurs on the training side *)
  let train_outputs = List.map snd t.V.Pipeline.train_pairs in
  List.iter
    (fun o ->
      Alcotest.(check bool) "indexed output comes from the train side" true
        (List.mem o train_outputs))
    (V.Retrieval.outputs t.V.Pipeline.retrieval)

(* ---------------- parallel generation bit-identity ---------------- *)

let test_parallel_generate_identical () =
  let t = Lazy.force Test_robust.pipeline in
  let decoder = V.Pipeline.retrieval_decoder t in
  let seq =
    Test_durable.render (V.Pipeline.generate_backend t ~target:"RISCV" ~decoder)
  in
  List.iter
    (fun domains ->
      Alcotest.(check string)
        (Printf.sprintf "%d-domain run bit-identical to sequential" domains)
        seq
        (Test_durable.render
           (V.Pipeline.generate_backend ~domains t ~target:"RISCV" ~decoder)))
    [ 1; 2; 4 ]

let test_parallel_generate_supervised () =
  (* forked per-worker supervisors change nothing about the output and
     fold their stats back into the caller's supervisor *)
  let t = Lazy.force Test_robust.pipeline in
  let decoder = V.Pipeline.retrieval_decoder t in
  let seq = V.Pipeline.generate_backend t ~target:"RISCV" ~decoder in
  let sup, _, _ = Test_durable.virtual_sup () in
  let par =
    V.Pipeline.generate_backend ~sup ~domains:3 t ~target:"RISCV" ~decoder
  in
  Alcotest.(check string) "supervised parallel run bit-identical"
    (Test_durable.render seq) (Test_durable.render par);
  Alcotest.(check int) "worker stats folded back"
    (List.length seq)
    (R.Supervisor.stats sup).R.Supervisor.sup_functions

let test_parallel_generate_report () =
  (* a mutex-guarded report collects the same degradations under
     parallel generation as under sequential *)
  let t = Lazy.force Test_robust.pipeline in
  let decoder = V.Pipeline.retrieval_decoder t in
  let faulty =
    (* deterministic per-FV fault: degradation counts must match however
       the work is scheduled *)
    fun (fv : V.Featrep.fv) ->
      if (fv.V.Featrep.line + fv.V.Featrep.inst) mod 3 = 0 then
        failwith "seeded decoder fault"
      else decoder fv
  in
  let run domains =
    let report = R.Report.create () in
    let gfs =
      V.Pipeline.generate_backend ~fallback:decoder ~report ~domains t
        ~target:"RISCV" ~decoder:faulty
    in
    (Test_durable.render gfs, R.Report.total report, R.Report.degraded_count report)
  in
  let seq_render, seq_total, seq_degraded = run 1 in
  let par_render, par_total, par_degraded = run 4 in
  Alcotest.(check string) "faulty parallel run bit-identical" seq_render
    par_render;
  Alcotest.(check bool) "faults were actually injected" true (seq_total > 0);
  Alcotest.(check int) "same fault count" seq_total par_total;
  Alcotest.(check int) "same degradation count" seq_degraded par_degraded

(* ---------------- parallel durable runs ---------------- *)

let test_parallel_durable_matches_plain () =
  let t = Lazy.force Test_robust.pipeline in
  let decoder = V.Pipeline.retrieval_decoder t in
  let plain = V.Pipeline.generate_backend t ~target:"RISCV" ~decoder in
  let dir = Test_durable.fresh_dir "par_plain" in
  match
    V.Pipeline.generate_backend_durable ~domains:3 ~run_dir:dir t
      ~target:"RISCV" ~decoder
  with
  | Error e -> Alcotest.failf "parallel durable run failed: %s" e
  | Ok o ->
      Alcotest.(check string) "parallel journaling changes nothing"
        (Test_durable.render plain)
        (Test_durable.render o.V.Pipeline.d_funcs);
      Alcotest.(check int) "every function generated"
        (List.length plain)
        o.V.Pipeline.d_generated;
      (* the interleaved journal replays cleanly: keying by function
         name reassembles every concurrent trail *)
      (match
         V.Pipeline.generate_backend_durable ~resume:true ~run_dir:dir t
           ~target:"RISCV" ~decoder
       with
      | Error e -> Alcotest.failf "resume of parallel run failed: %s" e
      | Ok o2 ->
          Alcotest.(check int) "everything restored from interleaved journal"
            (List.length plain)
            o2.V.Pipeline.d_resumed;
          Alcotest.(check string) "restored run identical"
            (Test_durable.render plain)
            (Test_durable.render o2.V.Pipeline.d_funcs))

let test_parallel_kill_resume () =
  (* faultcheck under parallel generation: a simulated crash in any
     domain stops every worker; resume over the interleaved journal is
     bit-identical to an uninterrupted run *)
  let t = Lazy.force Test_robust.pipeline in
  let decoder = V.Pipeline.retrieval_decoder t in
  let ref_dir = Test_durable.fresh_dir "par_ref" in
  let expect, total =
    match
      V.Pipeline.generate_backend_durable ~run_dir:ref_dir t ~target:"RISCV"
        ~decoder
    with
    | Error e -> Alcotest.failf "reference run failed: %s" e
    | Ok o -> (Test_durable.render o.V.Pipeline.d_funcs, o.V.Pipeline.d_records)
  in
  List.iter
    (fun k ->
      let dir =
        Test_durable.fresh_dir (Printf.sprintf "par_kill%d" k)
      in
      (match
         V.Pipeline.generate_backend_durable ~kill_at:k ~domains:2 ~run_dir:dir
           t ~target:"RISCV" ~decoder
       with
      | exception J.Killed n ->
          Alcotest.(check int) "killed at the armed record" k n
      | Ok _ -> Alcotest.fail "expected the simulated crash"
      | Error e -> Alcotest.failf "killed run setup failed: %s" e);
      J.tear ~path:(V.Pipeline.journal_path dir);
      match
        V.Pipeline.generate_backend_durable ~resume:true ~domains:2
          ~run_dir:dir t ~target:"RISCV" ~decoder
      with
      | Error e -> Alcotest.failf "parallel resume failed: %s" e
      | Ok o ->
          Alcotest.(check bool) "torn record recovered" true
            o.V.Pipeline.d_torn;
          Alcotest.(check string) "bit-identical to the uninterrupted run"
            expect
            (Test_durable.render o.V.Pipeline.d_funcs))
    [ 2; total / 2; total - 1 ]

let suite =
  [
    Alcotest.test_case "par map keeps order" `Quick test_par_map_order;
    Alcotest.test_case "par map propagates failure" `Quick test_par_map_failure;
    Alcotest.test_case "par map_ctx worker contexts" `Quick test_par_map_ctx;
    Alcotest.test_case "default domain count" `Quick test_default_domains;
    Alcotest.test_case "retrieval index has no eval leakage" `Quick
      test_retrieval_no_eval_leakage;
    Alcotest.test_case "parallel generation bit-identical" `Slow
      test_parallel_generate_identical;
    Alcotest.test_case "parallel generation under supervision" `Slow
      test_parallel_generate_supervised;
    Alcotest.test_case "parallel generation report parity" `Slow
      test_parallel_generate_report;
    Alcotest.test_case "parallel durable matches plain" `Slow
      test_parallel_durable_matches_plain;
    Alcotest.test_case "parallel kill-resume faultcheck" `Slow
      test_parallel_kill_resume;
  ]
