(* Tests for the VEGA core: pre-processing, templatization, feature
   selection, confidence, feature representation. Uses a shared prepared
   pipeline (built once). *)

module V = Vega
module C = Vega_corpus.Corpus

let prep = lazy (V.Pipeline.prepare ())

let bundle fname =
  match V.Pipeline.bundle_for (Lazy.force prep) fname with
  | Some b -> b
  | None -> Alcotest.failf "no bundle %s" fname

(* ---------------- pre-processing ---------------- *)

let test_inline_helpers () =
  let spec = Option.get (C.find_spec "getRelocType") in
  match C.reference spec Vega_target.Registry.arm with
  | Some (wrapper, [ helper ]) ->
      let inlined = V.Preprocess.inline_helpers wrapper [ helper ] in
      Alcotest.(check bool) "body replaced" true
        (List.length inlined.Vega_srclang.Ast.body > 1)
  | _ -> Alcotest.fail "expected ARM wrapper + helper"

let test_normalize_ifchain () =
  let f =
    Vega_srclang.Parser.parse_function
      {|int f(int k) {
  if (k == 1) { return 10; } else if (k == 2) { return 20; } else { return 0; }
}|}
  in
  let g = V.Preprocess.normalize_ifchains f in
  match g.Vega_srclang.Ast.body with
  | [ Vega_srclang.Ast.Switch (_, arms, default) ] ->
      Alcotest.(check int) "two arms" 2 (List.length arms);
      Alcotest.(check bool) "default" true (default <> [])
  | _ -> Alcotest.fail "expected switch"

let test_ifchain_behavior_preserved () =
  let src =
    {|int f(int k) {
  if (k == 1) { return 10; } else if (k == 2) { return 20; } else { return 0; }
}|}
  in
  let f = Vega_srclang.Parser.parse_function src in
  let g = V.Preprocess.normalize_ifchains f in
  let env = Vega_srclang.Interp.create_env () in
  List.iter
    (fun k ->
      let r1 = Vega_srclang.Interp.call env f [ Vega_srclang.Interp.VInt k ] in
      let r2 = Vega_srclang.Interp.call env g [ Vega_srclang.Interp.VInt k ] in
      Alcotest.(check int)
        (Printf.sprintf "same result for %d" k)
        (Vega_srclang.Interp.to_int r1)
        (Vega_srclang.Interp.to_int r2))
    [ 1; 2; 3 ]

let test_collapse () =
  let mk kind tokens = { V.Preprocess.kind; tokens } in
  let lines =
    [
      mk "simple" [ "unsigned"; "Kind"; "=" ];
      mk "case" [ "case"; "A"; ":" ];
      mk "simple" [ "return"; "X"; ";" ];
      mk "case" [ "case"; "B"; ":" ];
      mk "simple" [ "return"; "Y"; ";" ];
      mk "case" [ "case"; "C"; ":" ];
      mk "simple" [ "return"; "Z"; ";" ];
      mk "close" [ "}" ];
    ]
  in
  match V.Preprocess.collapse lines with
  | [ V.Preprocess.Single _; V.Preprocess.Repeat insts; V.Preprocess.Single _ ] ->
      Alcotest.(check int) "three instances" 3 (List.length insts);
      Alcotest.(check int) "period two" 2 (List.length (List.hd insts))
  | items -> Alcotest.failf "unexpected collapse (%d items)" (List.length items)

let test_collapse_never_merges_distinct () =
  let mk kind tokens = { V.Preprocess.kind; tokens } in
  (* the paper's S1/S2: similar shapes but distinct statements *)
  let s1 = mk "simple" [ "unsigned"; "Kind"; "="; "Fixup"; "."; "getTargetKind"; "("; ")"; ";" ] in
  let s2 = mk "simple" [ "MCSymbolRefExpr"; "::"; "VariantKind"; "Modifier"; "="; "Target"; "."; "getAccessVariant"; "("; ")"; ";" ] in
  match V.Preprocess.collapse [ s1; s2 ] with
  | [ V.Preprocess.Single _; V.Preprocess.Single _ ] -> ()
  | _ -> Alcotest.fail "S1/S2 must not collapse"

let test_close_braces_never_collapse () =
  let mk kind tokens = { V.Preprocess.kind; tokens } in
  match V.Preprocess.collapse [ mk "close" [ "}" ]; mk "close" [ "}" ] ] with
  | [ V.Preprocess.Single _; V.Preprocess.Single _ ] -> ()
  | _ -> Alcotest.fail "closing braces collapsed"

(* ---------------- templates ---------------- *)

let test_stmt_template () =
  let t =
    V.Template.build_stmt_template "simple"
      [
        [ "return"; "ELF"; "::"; "R_ARM_X"; ";" ];
        [ "return"; "ELF"; "::"; "R_MIPS_Y"; ";" ];
      ]
  in
  Alcotest.(check int) "one slot" 1 t.V.Template.nslots;
  Alcotest.(check (list string)) "tokens"
    [ "return"; "ELF"; "::"; "<SV0>"; ";" ]
    (V.Template.tokens_of_template t)

let test_match_render_roundtrip () =
  let t =
    V.Template.build_stmt_template "case"
      [ [ "case"; "ARM"; "::"; "fixup_a"; ":" ]; [ "case"; "Mips"; "::"; "fixup_b"; ":" ] ]
  in
  let inst = [ "case"; "RISCV"; "::"; "fixup_c"; ":" ] in
  match V.Template.match_instance t inst with
  | Some slots ->
      Alcotest.(check (list string)) "rendered back" inst
        (V.Template.render_instance t slots)
  | None -> Alcotest.fail "instance did not match"

let qcheck_template_roundtrip =
  let gen =
    QCheck.Gen.(
      map
        (fun (a, b) -> ([ "op"; a; ","; b; ";" ], [ "op"; a ^ "x"; ","; b; ";" ]))
        (pair (string_size ~gen:(char_range 'a' 'z') (return 4))
           (string_size ~gen:(char_range 'a' 'z') (return 4))))
  in
  QCheck.Test.make ~name:"template matches its own variants" ~count:100
    (QCheck.make gen)
    (fun (v1, v2) ->
      let t = V.Template.build_stmt_template "simple" [ v1; v2 ] in
      V.Template.match_instance t v1 <> None
      && V.Template.match_instance t v2 <> None)

let test_getreloctype_template_shape () =
  let b = bundle "getRelocType" in
  let tpl = b.V.Pipeline.tpl in
  Alcotest.(check int) "targets" 14 (List.length tpl.V.Template.targets);
  Alcotest.(check bool) "has repeated fixup arms" true
    (List.exists (fun (c : V.Template.column) -> c.repeated) tpl.V.Template.columns);
  Alcotest.(check (list string)) "signature"
    [ "unsigned"; "<SV0>"; "::"; "getRelocType"; "("; "MCValue"; "Target"; ",";
      "MCFixup"; "Fixup"; ","; "bool"; "IsPCRel"; ")"; "{" ]
    (V.Template.tokens_of_template tpl.V.Template.signature)

(* ---------------- feature selection (the paper's Sec. 2 example) ------- *)

let test_featsel_variantkind_presence () =
  let b = bundle "getRelocType" in
  let a = b.V.Pipeline.analysis in
  let arm = Option.get (V.Featsel.view a "ARM") in
  let mips = Option.get (V.Featsel.view a "Mips") in
  Alcotest.(check (option bool)) "ARM VariantKind = T" (Some true)
    (List.assoc_opt "VariantKind" arm.V.Featsel.independent);
  Alcotest.(check (option bool)) "Mips VariantKind = F" (Some false)
    (List.assoc_opt "VariantKind" mips.V.Featsel.independent)

let test_featsel_props () =
  let b = bundle "getRelocType" in
  let names = V.Featsel.prop_names b.V.Pipeline.analysis in
  List.iter
    (fun expected ->
      Alcotest.(check bool) (expected ^ " found") true (List.mem expected names))
    [ "MCFixup"; "MCSymbolRefExpr"; "VariantKind"; "Name"; "MCFixupKind"; "OperandType" ]

let test_featsel_new_target_candidates () =
  let prep = Lazy.force prep in
  let b = bundle "getRelocType" in
  let view =
    V.Featsel.view_for_new_target prep.V.Pipeline.ctx b.V.Pipeline.tpl
      b.V.Pipeline.analysis "RISCV"
  in
  let fixups = List.map fst (V.Featsel.candidates_for view "MCFixupKind") in
  Alcotest.(check bool) "riscv fixups enumerated" true
    (List.mem "fixup_riscv_pcrel_hi20" fixups);
  Alcotest.(check (list string)) "Name candidate" [ "RISCV" ]
    (List.map fst (V.Featsel.candidates_for view "Name"))

(* ---------------- confidence (Eq. 1) ---------------- *)

let test_confidence_eq1 () =
  Alcotest.(check (float 1e-9)) "absent is 0" 0.0
    (V.Confidence.score ~n_tokens:5 ~n_common:5 ~slot_candidates:[] ~present:false);
  Alcotest.(check (float 1e-9)) "all common present" 1.0
    (V.Confidence.score ~n_tokens:5 ~n_common:5 ~slot_candidates:[] ~present:true);
  (* |T| = 3, one slot with N = 66: 2/3 + 1/(3*66) *)
  Alcotest.(check (float 1e-9)) "paper's S5 shape"
    ((2.0 /. 3.0) +. (1.0 /. (3.0 *. 66.0)))
    (V.Confidence.score ~n_tokens:3 ~n_common:2 ~slot_candidates:[ 66 ] ~present:true)

let test_confidence_edge_cases () =
  (* an empty template (0 tokens) carries no evidence either way: a
     present statement scores 1.0, an absent one 0.0 *)
  Alcotest.(check (float 1e-9)) "empty template, present" 1.0
    (V.Confidence.score ~n_tokens:0 ~n_common:0 ~slot_candidates:[] ~present:true);
  Alcotest.(check (float 1e-9)) "empty template, absent" 0.0
    (V.Confidence.score ~n_tokens:0 ~n_common:0 ~slot_candidates:[] ~present:false);
  let st : V.Template.stmt_template =
    { kind = "simple"; items = []; nslots = 0 }
  in
  Alcotest.(check (float 1e-9)) "statement_score of empty template" 1.0
    (V.Confidence.statement_score st ~present:true);
  (* fully common statement: |T_com|/|T| = 1 regardless of |T| *)
  Alcotest.(check (float 1e-9)) "all-common statement" 1.0
    (V.Confidence.score ~n_tokens:7 ~n_common:7 ~slot_candidates:[] ~present:true);
  (* absent always wins over everything else in Eq. (1) *)
  Alcotest.(check (float 1e-9)) "absent all-common statement" 0.0
    (V.Confidence.score ~n_tokens:7 ~n_common:7 ~slot_candidates:[] ~present:false);
  (* a slot with a huge candidate set contributes almost nothing:
     |T| = 4, |T_com| = 3, N(SV) = 10000 -> 3/4 + 1/(4*10000) *)
  Alcotest.(check (float 1e-12)) "large N(SV) slot"
    ((3.0 /. 4.0) +. (1.0 /. (4.0 *. 10000.0)))
    (V.Confidence.score ~n_tokens:4 ~n_common:3 ~slot_candidates:[ 10000 ]
       ~present:true);
  (* N(SV) = 0 is clamped to 1 (an unresolved property, not division by
     zero): |T| = 2, |T_com| = 1 -> 1/2 + 1/(2*1) = 1.0 *)
  Alcotest.(check (float 1e-9)) "zero candidates clamps to 1" 1.0
    (V.Confidence.score ~n_tokens:2 ~n_common:1 ~slot_candidates:[ 0 ] ~present:true);
  (* many generous slots can push the sum past 1; the score saturates *)
  Alcotest.(check (float 1e-9)) "score is capped at 1" 1.0
    (V.Confidence.score ~n_tokens:2 ~n_common:1 ~slot_candidates:[ 1; 1; 1 ]
       ~present:true);
  (* threshold sanity: the paper's reviewing cut sits strictly between
     an absent and a fully-common statement *)
  Alcotest.(check bool) "threshold strictly between 0 and 1" true
    (V.Confidence.threshold > 0.0 && V.Confidence.threshold < 1.0)

let test_confidence_rollup () =
  (* function confidence is the minimum over the kept statements, not
     whatever statement happens to lead the list *)
  Alcotest.(check (float 1e-9)) "min across kept" 0.6
    (V.Confidence.function_confidence [ 1.0; 0.6; 0.9 ]);
  (* statements already under the reviewing cut are flagged per
     statement and must not drag the function under with them *)
  Alcotest.(check (float 1e-9)) "below-threshold scores are dropped" 0.8
    (V.Confidence.function_confidence [ 0.8; 0.2 ]);
  Alcotest.(check (float 1e-9)) "nothing kept" 0.0
    (V.Confidence.function_confidence [ 0.3; 0.4 ]);
  Alcotest.(check (float 1e-9)) "empty function" 0.0
    (V.Confidence.function_confidence []);
  Alcotest.(check (float 1e-9)) "exactly at the threshold is kept"
    V.Confidence.threshold
    (V.Confidence.function_confidence [ 0.9; V.Confidence.threshold ])

let test_confidence_rollup_review_order () =
  (* regression for the head-statement-only rollup: a function whose
     confident signature masked a weak body statement sorted AFTER a
     uniformly solid function in the Err-PS review queue, so the human
     reviewed the wrong function first *)
  let masked = [ 1.0; 0.55 ] and steady = [ 0.9; 0.9 ] in
  let head = function [] -> 0.0 | s :: _ -> s in
  let order rollup =
    List.sort
      (fun (_, a) (_, b) -> Float.compare a b)
      [ ("masked", rollup masked); ("steady", rollup steady) ]
    |> List.map fst
  in
  Alcotest.(check (list string)) "old head-only rollup mis-ordered review"
    [ "steady"; "masked" ] (order head);
  Alcotest.(check (list string)) "weakest kept statement reviews first"
    [ "masked"; "steady" ]
    (order V.Confidence.function_confidence)

(* ---------------- feature representation ---------------- *)

let test_fv_output_encoding () =
  let b = bundle "getRelocType" in
  let fvs = V.Featrep.training_fvs b.V.Pipeline.analysis b.V.Pipeline.tpl ~max_inst_per_column:2 in
  Alcotest.(check bool) "nonempty" true (fvs <> []);
  (* every output begins with a confidence bucket token *)
  List.iter
    (fun (fv : V.Featrep.fv) ->
      match fv.output with
      | Some (first :: _) ->
          if Vega_nn.Vocab.score_of_token first = None then
            Alcotest.failf "output must start with a score token, got %s" first
      | Some [] -> Alcotest.fail "empty output"
      | None -> Alcotest.fail "training fv without output")
    fvs

let test_decode_output () =
  let score, body =
    V.Featrep.decode_output ~registers:[ "RISCV"; "fixup_riscv_jal" ] ~inst:0
      [ "<cs_16>"; "case"; "<COPY_0>"; "::"; "<COPY_1>"; ":" ]
  in
  Alcotest.(check (option (float 1e-9))) "score" (Some 0.8) score;
  Alcotest.(check (list string)) "body"
    [ "case"; "RISCV"; "::"; "fixup_riscv_jal"; ":" ]
    body

let suite =
  [
    Alcotest.test_case "inline helpers" `Quick test_inline_helpers;
    Alcotest.test_case "normalize if-chain" `Quick test_normalize_ifchain;
    Alcotest.test_case "if-chain behavior preserved" `Quick test_ifchain_behavior_preserved;
    Alcotest.test_case "collapse repeats" `Quick test_collapse;
    Alcotest.test_case "collapse keeps distinct stmts" `Quick test_collapse_never_merges_distinct;
    Alcotest.test_case "close braces never collapse" `Quick test_close_braces_never_collapse;
    Alcotest.test_case "stmt template" `Quick test_stmt_template;
    Alcotest.test_case "match/render roundtrip" `Quick test_match_render_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_template_roundtrip;
    Alcotest.test_case "getRelocType template" `Quick test_getreloctype_template_shape;
    Alcotest.test_case "VariantKind presence (Fig. 3)" `Quick test_featsel_variantkind_presence;
    Alcotest.test_case "paper's properties found" `Quick test_featsel_props;
    Alcotest.test_case "new-target candidates (Fig. 4)" `Quick test_featsel_new_target_candidates;
    Alcotest.test_case "confidence Eq. 1" `Quick test_confidence_eq1;
    Alcotest.test_case "confidence edge cases" `Quick test_confidence_edge_cases;
    Alcotest.test_case "confidence rollup = min over kept" `Quick
      test_confidence_rollup;
    Alcotest.test_case "confidence rollup orders Err-PS review" `Quick
      test_confidence_rollup_review_order;
    Alcotest.test_case "fv output encoding" `Quick test_fv_output_encoding;
    Alcotest.test_case "decode output" `Quick test_decode_output;
  ]
