(* Integration tests: MiniLLVM backend + simulators with reference hooks.
   The full 17-target x 27-case x 2-level matrix runs in the bench; here
   we cover representative targets and the feature-specific behaviors. *)

module B = Vega_backend
module C = Vega_corpus.Corpus
module P = Vega_ir.Programs

let corpus = lazy (C.build ())

let conv_for name =
  let corpus = Lazy.force corpus in
  let p = Vega_target.Registry.find_exn name in
  let sources =
    List.filter_map
      (fun spec ->
        Option.map
          (fun f -> (spec.Vega_corpus.Spec.fname, f))
          (C.reference_inlined spec p))
      C.all_specs
  in
  let hooks = B.Hooks.create corpus.C.vfs ~target:name ~sources in
  B.Conv.make corpus.C.vfs hooks

let compile_run conv case opt =
  let out = B.Compiler.compile conv ~opt (P.modul_of case) in
  (out, Vega_sim.Machine.run conv out.B.Compiler.emitted ~entry:case.P.entry ~args:case.P.args)

let check_case conv (case : P.case) opt =
  let _, r = compile_run conv case opt in
  (match r.Vega_sim.Machine.status with
  | Vega_sim.Machine.Finished _ -> ()
  | Vega_sim.Machine.Trap m -> Alcotest.failf "%s trapped: %s" case.P.name m
  | Vega_sim.Machine.Timeout f ->
      Alcotest.failf "%s timed out (fuel %d)" case.P.name f);
  Alcotest.(check (list int)) (case.P.name ^ " output") (P.golden case)
    r.Vega_sim.Machine.output

let test_riscv_all_programs () =
  let conv = conv_for "RISCV" in
  List.iter
    (fun c ->
      check_case conv c B.Compiler.O0;
      check_case conv c B.Compiler.O3)
    (P.regression @ P.benchmarks)

let test_big_endian_target () =
  let conv = conv_for "Mips" in
  List.iter (fun c -> check_case conv c B.Compiler.O3) P.regression

let test_small_target () =
  let conv = conv_for "AVR" in
  check_case conv (Option.get (P.find "recursion_fib")) B.Compiler.O0;
  check_case conv (Option.get (P.find "relax_stress")) B.Compiler.O0

let test_o3_speedup () =
  let conv = conv_for "RISCV" in
  let c = Option.get (P.find "dotprod") in
  let _, r0 = compile_run conv c B.Compiler.O0 in
  let _, r3 = compile_run conv c B.Compiler.O3 in
  Alcotest.(check bool) "O3 is faster" true
    (r3.Vega_sim.Machine.cycles < r0.Vega_sim.Machine.cycles)

let test_hwloop_applies () =
  (* RI5CY converts counted loops; the loop body must retire without a
     branch per iteration, beating RISCV's cycle count shape *)
  let conv = conv_for "RI5CY" in
  let c = Option.get (P.find "loop_sum") in
  let out, r = compile_run conv c B.Compiler.O3 in
  Alcotest.(check (list int)) "output" (P.golden c) r.Vega_sim.Machine.output;
  let asm = out.B.Compiler.asm in
  Alcotest.(check bool) "lp.setup emitted" true
    (Vega_util.Strutil.contains_sub ~sub:"lp.setup" asm)

let test_simd_applies () =
  let conv = conv_for "RI5CY" in
  let c = Option.get (P.find "vecadd") in
  let out, r = compile_run conv c B.Compiler.O3 in
  Alcotest.(check (list int)) "output" (P.golden c) r.Vega_sim.Machine.output;
  Alcotest.(check bool) "pv.add.h emitted" true
    (Vega_util.Strutil.contains_sub ~sub:"pv.add.h" out.B.Compiler.asm)

let test_madd_combine () =
  let conv = conv_for "RI5CY" in
  let c = Option.get (P.find "mul_add_chain") in
  let out, r = compile_run conv c B.Compiler.O3 in
  Alcotest.(check (list int)) "output" (P.golden c) r.Vega_sim.Machine.output;
  Alcotest.(check bool) "madd emitted" true
    (Vega_util.Strutil.contains_sub ~sub:"madd" out.B.Compiler.asm)

let test_relaxation_fires () =
  let conv = conv_for "AVR" in
  let c = Option.get (P.find "relax_stress") in
  let out, r = compile_run conv c B.Compiler.O0 in
  Alcotest.(check (list int)) "output" (P.golden c) r.Vega_sim.Machine.output;
  Alcotest.(check bool) "relaxation labels present" true
    (Vega_util.Strutil.contains_sub ~sub:"__relax" out.B.Compiler.asm)

let test_asm_roundtrip () =
  List.iter
    (fun target ->
      let conv = conv_for target in
      let c = Option.get (P.find "globals_array") in
      let out, _ = compile_run conv c B.Compiler.O3 in
      match B.Asmparser.roundtrip_ok conv out.B.Compiler.emitted with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s roundtrip: %s" target m)
    [ "RISCV"; "ARM"; "X86"; "Mips" ]

let test_disasm () =
  let conv = conv_for "RISCV" in
  let c = Option.get (P.find "arith_basic") in
  let out, _ = compile_run conv c B.Compiler.O0 in
  (match B.Disasm.decode conv out.B.Compiler.emitted.B.Emitter.obj with
  | Ok text ->
      Alcotest.(check bool) "mentions addi" true
        (Vega_util.Strutil.contains_sub ~sub:"addi" text)
  | Error m -> Alcotest.failf "disasm: %s" m);
  (* XCore has no disassembler (Sec. 4.1.4) *)
  let xconv = conv_for "XCore" in
  let out2, _ =
    let out = B.Compiler.compile xconv ~opt:B.Compiler.O0 (P.modul_of c) in
    (out, ())
  in
  match B.Disasm.decode xconv out2.B.Compiler.emitted.B.Emitter.obj with
  | Error "no disassembler" -> ()
  | Ok _ | Error _ -> Alcotest.fail "XCore must report no disassembler"

let test_relocations_emitted () =
  let conv = conv_for "RISCV" in
  let c = Option.get (P.find "calls_simple") in
  let out, _ = compile_run conv c B.Compiler.O0 in
  let relocs = out.B.Compiler.emitted.B.Emitter.obj.Vega_mc.Mcinst.relocs in
  Alcotest.(check bool) "call relocs present" true (List.length relocs >= 3);
  Alcotest.(check bool) "print is relocated" true
    (List.exists (fun (r : Vega_mc.Mcinst.reloc) -> r.r_sym = "print") relocs)

let test_hook_error_propagates () =
  let corpus = Lazy.force corpus in
  let p = Vega_target.Registry.riscv in
  let sources =
    List.filter_map
      (fun spec ->
        Option.map
          (fun f -> (spec.Vega_corpus.Spec.fname, f))
          (C.reference_inlined spec p))
      C.all_specs
  in
  let broken =
    Vega_srclang.Parser.parse_function
      "int selectOpcode(unsigned ISDOpc) { return -1; }"
  in
  let sources = ("selectOpcode", broken) :: List.remove_assoc "selectOpcode" sources in
  let hooks = B.Hooks.create corpus.C.vfs ~target:"RISCV" ~sources in
  let conv = B.Conv.make corpus.C.vfs hooks in
  let c = Option.get (P.find "arith_basic") in
  match B.Compiler.compile conv ~opt:B.Compiler.O0 (P.modul_of c) with
  | exception B.Hooks.Hook_error ("selectOpcode", _) -> ()
  | _ -> Alcotest.fail "expected Hook_error from broken selectOpcode"

let suite =
  [
    Alcotest.test_case "riscv full program matrix" `Slow test_riscv_all_programs;
    Alcotest.test_case "big-endian target" `Slow test_big_endian_target;
    Alcotest.test_case "small embedded target" `Quick test_small_target;
    Alcotest.test_case "-O3 speedup" `Quick test_o3_speedup;
    Alcotest.test_case "hardware loops" `Quick test_hwloop_applies;
    Alcotest.test_case "SIMD vectorization" `Quick test_simd_applies;
    Alcotest.test_case "madd combining" `Quick test_madd_combine;
    Alcotest.test_case "branch relaxation" `Quick test_relaxation_fires;
    Alcotest.test_case "asm roundtrip" `Slow test_asm_roundtrip;
    Alcotest.test_case "disassembler" `Quick test_disasm;
    Alcotest.test_case "relocations" `Quick test_relocations_emitted;
    Alcotest.test_case "hook errors propagate" `Quick test_hook_error_propagates;
  ]
