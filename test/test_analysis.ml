(* Tests for the static analyzer: reference backends come back clean,
   seeded defects are caught by the intended rule, diagnostics carry
   line/column spans, and the shape pass sees generated functions. *)

module A = Vega_analysis
module D = A.Diagnostic
module C = Vega_corpus.Corpus
module V = Vega
module L = Vega_srclang

let corpus = lazy (C.build ())
let riscv = Vega_target.Registry.riscv
let tab = lazy (A.Lint.symtab (Lazy.force corpus).C.vfs riscv)

(* Every reference implementation of every registered target lints
   clean: the analyzer's false-positive bar on the corpus is zero. *)
let test_references_clean () =
  let vfs = (Lazy.force corpus).C.vfs in
  List.iter
    (fun (p : Vega_target.Profile.t) ->
      let r = A.Lint.lint_target vfs p in
      if A.Lint.diag_count r > 0 then
        Alcotest.failf "%s reference backend not clean:\n%s" p.name
          (String.concat "\n"
             (List.map D.to_string (A.Lint.report_diags r))))
    Vega_target.Registry.all

let lint src =
  A.Lint.lint_source (Lazy.force tab) ~fname:"test" src

let rules ds = List.map (fun (d : D.t) -> d.D.rule) ds

let check_rule name rule src =
  let ds = lint src in
  Alcotest.(check bool)
    (Printf.sprintf "%s reports %s (got: %s)" name rule
       (String.concat ", " (rules ds)))
    true
    (List.mem rule (rules ds))

(* A correct function produces no diagnostics... *)
let test_clean_function () =
  let ds =
    lint
      {|unsigned getRelocType(MCValue Target, MCFixup Fixup, bool IsPCRel) {
  unsigned Kind = Fixup.getTargetKind();
  switch (Kind) {
  case RISCV::fixup_riscv_branch:
    return ELF::R_RISCV_BRANCH;
  default:
    llvm_unreachable("invalid fixup kind!");
  }
}|}
  in
  Alcotest.(check (list string)) "no diagnostics" [] (rules ds)

(* ...and each seeded defect is caught by the intended rule. *)
let test_unknown_scoped () =
  check_rule "unknown fixup member" "VA-S01"
    "unsigned f() { return RISCV::fixup_riscv_bogus; }"

let test_unknown_scope () =
  check_rule "unknown enum scope" "VA-S01"
    "unsigned f() { return WRONG::fixup_riscv_branch; }"

let test_unknown_function () =
  check_rule "unknown free function" "VA-S02"
    "unsigned f() { return frobnicate(1); }"

let test_use_before_decl () =
  check_rule "use before declaration" "VA-D01"
    "unsigned f() { return Kind; }"

let test_uninitialized_read () =
  check_rule "declared but never assigned" "VA-D02"
    {|unsigned f() {
  unsigned Kind;
  return Kind;
}|}

let test_unreachable () =
  check_rule "code after return" "VA-D03"
    {|unsigned f() {
  return 1;
  unsigned Kind = 2;
}|}

let test_missing_return () =
  check_rule "dropped return" "VA-D04"
    {|unsigned f(unsigned Kind) {
  if (Kind) {
    return 1;
  }
}|}

let test_silent_fallthrough () =
  check_rule "final arm falls through to nothing" "VA-D05"
    {|unsigned f(unsigned Kind) {
  unsigned r = 0;
  switch (Kind) {
  case RISCV::fixup_riscv_branch:
    r = 1;
  }
  return r;
}|}

let test_unknown_method () =
  check_rule "method no MC class provides" "VA-I01"
    "unsigned f(MCFixup Fixup) { return Fixup.getFlavour(); }"

let test_method_arity () =
  check_rule "known method, wrong arity" "VA-I02"
    "unsigned f(MCFixup Fixup) { return Fixup.getTargetKind(1); }"

let test_hook_signature () =
  let spec = Option.get (C.find_spec "getRelocType") in
  let ds =
    A.Lint.lint_source (Lazy.force tab) ~spec ~fname:"getRelocType"
      "unsigned getRelocType(unsigned Kind) { return Kind; }"
  in
  Alcotest.(check bool) "parameter count vs interface spec" true
    (List.mem "VA-I03" (rules ds))

(* A switch whose every path returns must not trip VA-D03/VA-D04, and a
   [break] out of one must (the subtlety that distinguishes exiting the
   switch from exiting the function). *)
let test_switch_termination () =
  let all_paths_return =
    {|unsigned f(unsigned Kind) {
  switch (Kind) {
  case RISCV::fixup_riscv_branch:
    return 1;
  default:
    return 0;
  }
}|}
  in
  Alcotest.(check (list string)) "exhaustive switch returns" []
    (rules (lint all_paths_return));
  check_rule "break escapes without returning" "VA-D04"
    {|unsigned f(unsigned Kind) {
  switch (Kind) {
  case RISCV::fixup_riscv_branch:
    break;
  default:
    return 0;
  }
}|}

(* Diagnostics carry 1-based line/column spans pointing at the offending
   statement, and to_string renders rule ID plus Table 2 bucket. *)
let test_spans_and_rendering () =
  let ds =
    lint
      {|unsigned f() {
  unsigned Kind = 1;
  return RISCV::fixup_riscv_bogus;
}|}
  in
  match ds with
  | [ d ] ->
      Alcotest.(check string) "rule" "VA-S01" d.D.rule;
      (match d.D.span with
      | Some sp ->
          Alcotest.(check int) "line" 3 sp.L.Span.line;
          Alcotest.(check int) "col" 3 sp.L.Span.col
      | None -> Alcotest.fail "expected a span");
      Alcotest.(check bool) "renders rule and taxonomy" true
        (Vega_util.Strutil.contains_sub ~sub:"[VA-S01/Err-V]"
           (D.to_string d))
  | ds -> Alcotest.failf "expected one diagnostic, got %d" (List.length ds)

let test_taxonomy () =
  Alcotest.(check string) "symbol -> Err-V" "Err-V"
    (D.taxonomy
       (D.make ~rule:"VA-S01" ~cls:D.Symbol ~severity:D.Error ~fname:"f" ""));
  Alcotest.(check string) "dataflow -> Err-CS" "Err-CS"
    (D.taxonomy
       (D.make ~rule:"VA-D01" ~cls:D.Dataflow ~severity:D.Error ~fname:"f" ""));
  Alcotest.(check string) "interface -> Err-Def" "Err-Def"
    (D.taxonomy
       (D.make ~rule:"VA-I01" ~cls:D.Interface ~severity:D.Error ~fname:"f" ""))

(* Unparsable input is one VA-P01 with the parser's line/col message. *)
let test_parse_diag () =
  let ds = lint "unsigned f( {" in
  match ds with
  | [ d ] ->
      Alcotest.(check string) "rule" "VA-P01" d.D.rule;
      Alcotest.(check bool) "message carries position" true
        (Vega_util.Strutil.contains_sub ~sub:"line " d.D.msg)
  | _ -> Alcotest.fail "expected exactly one parse diagnostic"

(* ---- the shape pass over pipeline-generated functions ---- *)

let pipeline =
  lazy
    (let prep = V.Pipeline.prepare ~corpus:(Lazy.force corpus) () in
     let cfg =
       {
         V.Pipeline.test_config with
         train_cfg = { V.Codebe.tiny_train_config with epochs = 0 };
       }
     in
     V.Pipeline.train cfg prep)

let generated fname =
  let t = Lazy.force pipeline in
  let b =
    List.find
      (fun (b : V.Pipeline.bundle) ->
        b.V.Pipeline.spec.Vega_corpus.Spec.fname = fname)
      t.V.Pipeline.prep.V.Pipeline.bundles
  in
  let gf =
    Option.get
      (V.Pipeline.generate_function t ~target:"RISCV"
         ~decoder:(V.Pipeline.retrieval_decoder t) ~fname)
  in
  (b.V.Pipeline.tpl, gf)

let test_generated_lints_clean () =
  let tpl, gf = generated "getRelocType" in
  let ds = A.Lint.lint_generated (Lazy.force tab) tpl gf in
  let errors = List.filter D.is_error ds in
  Alcotest.(check (list string))
    "retrieval-generated getRelocType has no static errors" []
    (rules errors)

let test_shape_flags_mangled_stmt () =
  let tpl, gf = generated "getRelocType" in
  (* corrupt one kept statement into an unparsable token soup *)
  let mangled =
    {
      gf with
      V.Generate.gf_stmts =
        List.map
          (fun (s : V.Generate.gen_stmt) ->
            if s.g_score >= V.Confidence.threshold && s.g_col >= 0 then
              { s with g_tokens = [ "return"; "{"; "::" ]; g_shape_ok = false }
            else s)
          gf.V.Generate.gf_stmts;
    }
  in
  let ds = A.Lint.lint_generated (Lazy.force tab) tpl mangled in
  Alcotest.(check bool)
    (Printf.sprintf "mangled statements trip the parse/shape pass (got: %s)"
       (String.concat ", " (rules ds)))
    true
    (List.exists (fun r -> r = "VA-P01" || r = "VA-P02") (rules ds))

let suite =
  [
    Alcotest.test_case "references clean" `Slow test_references_clean;
    Alcotest.test_case "clean function" `Quick test_clean_function;
    Alcotest.test_case "VA-S01 unknown member" `Quick test_unknown_scoped;
    Alcotest.test_case "VA-S01 unknown scope" `Quick test_unknown_scope;
    Alcotest.test_case "VA-S02 unknown function" `Quick test_unknown_function;
    Alcotest.test_case "VA-D01 use before decl" `Quick test_use_before_decl;
    Alcotest.test_case "VA-D02 uninitialized" `Quick test_uninitialized_read;
    Alcotest.test_case "VA-D03 unreachable" `Quick test_unreachable;
    Alcotest.test_case "VA-D04 missing return" `Quick test_missing_return;
    Alcotest.test_case "VA-D05 fallthrough" `Quick test_silent_fallthrough;
    Alcotest.test_case "VA-I01 unknown method" `Quick test_unknown_method;
    Alcotest.test_case "VA-I02 method arity" `Quick test_method_arity;
    Alcotest.test_case "VA-I03 hook signature" `Quick test_hook_signature;
    Alcotest.test_case "switch termination" `Quick test_switch_termination;
    Alcotest.test_case "spans and rendering" `Quick test_spans_and_rendering;
    Alcotest.test_case "taxonomy buckets" `Quick test_taxonomy;
    Alcotest.test_case "VA-P01 parse" `Quick test_parse_diag;
    Alcotest.test_case "generated lints clean" `Quick test_generated_lints_clean;
    Alcotest.test_case "shape catches mangling" `Quick test_shape_flags_mangled_stmt;
  ]
