(* Tests for the crash-safe durability layer: the checksummed wire
   format, the write-ahead journal (append, torn-tail recovery, replay),
   checkpoint snapshots, the supervisor (deadline, backoff, circuit
   breaker), and kill/resume determinism over the real pipeline. *)

module V = Vega
module R = Vega_robust
module J = R.Journal

let fresh_dir =
  let n = ref 0 in
  fun name ->
    incr n;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "vega_durable_%d_%s%d" (Unix.getpid ()) name !n)
    in
    if not (Sys.file_exists d) then Unix.mkdir d 0o755;
    d

(* ---------------- wire format ---------------- *)

let qcheck_wire_roundtrip =
  let field =
    QCheck.Gen.(
      string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 30))
  in
  QCheck.Test.make ~name:"wire line round-trips any fields" ~count:200
    (QCheck.make QCheck.Gen.(list_size (int_range 0 8) field))
    (fun fields ->
      (* a lone empty field is folded into the empty record by design *)
      let canonical = if fields = [ "" ] then [] else fields in
      R.Wire.decode_line (R.Wire.encode_line fields) = Some canonical)

let qcheck_wire_corruption =
  let field = QCheck.Gen.(string_size ~gen:printable (int_range 1 12)) in
  QCheck.Test.make ~name:"mutated wire line never decodes" ~count:200
    (QCheck.make
       QCheck.Gen.(pair (list_size (int_range 1 5) field) (int_range 0 1000)))
    (fun (fields, at) ->
      let line = R.Wire.encode_line fields in
      let i = at mod String.length line in
      let b = Bytes.of_string line in
      Bytes.set b i (if Bytes.get b i = 'x' then 'y' else 'x');
      let mutated = Bytes.to_string b in
      mutated = line || R.Wire.decode_line mutated <> Some fields)

let qcheck_float_field =
  QCheck.Test.make ~name:"float fields are bit-exact" ~count:500
    QCheck.(float)
    (fun x ->
      match R.Wire.float_of_field (R.Wire.float_to_field x) with
      | Some y -> Int64.bits_of_float y = Int64.bits_of_float x || (Float.is_nan x && Float.is_nan y)
      | None -> false)

let test_wire_specials () =
  List.iter
    (fun x ->
      match R.Wire.float_of_field (R.Wire.float_to_field x) with
      | Some y ->
          Alcotest.(check bool)
            (Printf.sprintf "round-trips %h" x)
            true
            (Int64.bits_of_float y = Int64.bits_of_float x
            || (Float.is_nan x && Float.is_nan y))
      | None -> Alcotest.failf "failed to parse %h back" x)
    [ 0.0; -0.0; 1.0; 0.45; Float.nan; Float.infinity; Float.neg_infinity;
      Float.min_float; Float.max_float; 4.9e-324 ];
  Alcotest.(check bool) "bools round-trip" true
    (R.Wire.bool_of_field (R.Wire.bool_to_field true) = Some true
    && R.Wire.bool_of_field (R.Wire.bool_to_field false) = Some false)

(* ---------------- journal records ---------------- *)

let sample_stmt =
  {
    J.j_fname = "getRelocType";
    j_col = 2;
    j_line = 7;
    j_inst = -1;
    j_score = 0.875;
    j_tokens = [ "return"; "ELF::R_RISCV_32"; ";"; "with\ttab"; "nl\n" ];
    j_shape_ok = true;
    j_level = R.Degrade.Retrieval_fallback;
  }

let sample_records =
  [
    J.Header { version = J.version; target = "RISCV"; fingerprint = "abc" };
    J.Func_begin "getRelocType";
    J.Stmt sample_stmt;
    J.Stmt { sample_stmt with J.j_tokens = []; j_score = Float.nan };
    J.Func_end { fname = "getRelocType"; confidence = 0.95; n_stmts = 2 };
    J.Fault_ev
      {
        stage = "primary";
        fault = R.Fault.Deadline_exceeded { fname = "f"; budget_ms = 30_000 };
        backtrace = "Raised at Foo.bar in file \"foo.ml\", line 3";
      };
  ]

let record_eq a b =
  (* structural equality except NaN scores compare equal: the wire
     format spells every NaN "nan", so only NaN-ness survives *)
  match (a, b) with
  | J.Stmt x, J.Stmt y ->
      { x with J.j_score = 0.0 } = { y with J.j_score = 0.0 }
      && (Int64.bits_of_float x.J.j_score = Int64.bits_of_float y.J.j_score
         || (Float.is_nan x.J.j_score && Float.is_nan y.J.j_score))
  | _ -> a = b

let test_journal_record_roundtrip () =
  List.iter
    (fun r ->
      match J.decode (J.encode r) with
      | Some r' ->
          Alcotest.(check bool) "record round-trips" true (record_eq r r')
      | None -> Alcotest.failf "undecodable: %s" (J.encode r))
    sample_records;
  (* every fault constructor survives the journal *)
  List.iter
    (fun fault ->
      let r = J.Fault_ev { stage = "s"; fault; backtrace = "" } in
      Alcotest.(check bool)
        (Printf.sprintf "fault %s round-trips" (R.Fault.to_string fault))
        true
        (match J.decode (J.encode r) with Some r' -> r' = r | None -> false))
    Test_robust.sample_faults

let test_journal_write_read_tear () =
  let dir = fresh_dir "journal" in
  let path = Filename.concat dir "journal.log" in
  if Sys.file_exists path then Sys.remove path;
  let header = List.hd sample_records in
  let w = J.create ~path header in
  List.iter (J.append w) (List.tl sample_records);
  Alcotest.(check int) "written counts all records"
    (List.length sample_records) (J.written w);
  J.close w;
  let rc = J.read ~path () in
  Alcotest.(check bool) "clean read is not torn" false rc.J.r_torn;
  Alcotest.(check int) "every record back" (List.length sample_records)
    (List.length rc.J.r_records);
  List.iter2
    (fun a b -> Alcotest.(check bool) "same record" true (record_eq a b))
    sample_records rc.J.r_records;
  (* tear the final record mid-write: reader recovers the prefix *)
  J.tear ~path;
  let rc = J.read ~path () in
  Alcotest.(check bool) "torn tail detected" true rc.J.r_torn;
  Alcotest.(check int) "longest valid prefix survives"
    (List.length sample_records - 1)
    (List.length rc.J.r_records);
  (* compaction makes the journal clean again *)
  J.rewrite ~path rc.J.r_records;
  let rc2 = J.read ~path () in
  Alcotest.(check bool) "compacted journal is clean" false rc2.J.r_torn;
  Alcotest.(check int) "compaction keeps the prefix"
    (List.length rc.J.r_records)
    (List.length rc2.J.r_records);
  (* appending after recovery extends the prefix *)
  let w = J.open_append ~path () in
  J.append w (J.Func_begin "next");
  J.close w;
  let rc3 = J.read ~path () in
  Alcotest.(check bool) "clean after append" false rc3.J.r_torn;
  Alcotest.(check int) "append extends"
    (List.length rc2.J.r_records + 1)
    (List.length rc3.J.r_records);
  (* a missing file reads as empty, never raises *)
  let rc4 = J.read ~path:(Filename.concat dir "nope.log") () in
  Alcotest.(check bool) "missing file is empty, not torn" true
    (rc4.J.r_records = [] && not rc4.J.r_torn)

let test_journal_oversize_line () =
  (* a multi-megabyte line in the journal (corruption, or a runaway
     writer) must decode to a typed Record_oversize fault and bounded
     allocation, never an unbounded read *)
  let dir = fresh_dir "oversize" in
  let path = Filename.concat dir "journal.log" in
  let header = List.hd sample_records in
  let w = J.create ~path header in
  List.iter (J.append w) (List.tl sample_records);
  J.close w;
  (* splice a 3 MiB junk line into the middle, then a valid-looking
     tail: recovery must stop at the oversize record *)
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  output_string oc (String.make (3 * 1024 * 1024) 'A');
  output_string oc "\n";
  output_string oc (J.encode (J.Func_begin "after-oversize"));
  output_string oc "\n";
  close_out oc;
  let report = R.Report.create () in
  let rc = J.read ~report ~path () in
  Alcotest.(check bool) "oversize tail reads as torn" true rc.J.r_torn;
  Alcotest.(check int) "valid prefix survives"
    (List.length sample_records)
    (List.length rc.J.r_records);
  Alcotest.(check int) "typed oversize fault recorded" 1
    (R.Report.count_class report R.Fault.Coversize);
  (* the bound is configurable: a tiny limit rejects even valid lines *)
  let report2 = R.Report.create () in
  let rc2 = J.read ~report:report2 ~limit:8 ~path () in
  Alcotest.(check int) "tiny limit keeps nothing" 0
    (List.length rc2.J.r_records);
  Alcotest.(check bool) "tiny limit records faults" true
    (R.Report.count_class report2 R.Fault.Coversize > 0);
  (* compaction over the recovered prefix scrubs the junk *)
  J.rewrite ~path rc.J.r_records;
  let rc3 = J.read ~path () in
  Alcotest.(check bool) "compacted clean" false rc3.J.r_torn;
  Alcotest.(check int) "compaction keeps the prefix"
    (List.length sample_records)
    (List.length rc3.J.r_records)

let test_journal_kill_at () =
  let dir = fresh_dir "kill" in
  let path = Filename.concat dir "journal.log" in
  if Sys.file_exists path then Sys.remove path;
  let header = List.hd sample_records in
  (match
     let w = J.create ~kill_at:3 ~path header in
     List.iter (J.append w) (List.tl sample_records);
     `Completed
   with
  | `Completed -> Alcotest.fail "expected the simulated crash"
  | exception J.Killed n ->
      Alcotest.(check int) "killed on the armed record" 3 n);
  let rc = J.read ~path () in
  Alcotest.(check int) "all records durable at the crash point" 3
    (List.length rc.J.r_records);
  Alcotest.(check bool) "crash after a flush leaves no torn tail" false
    rc.J.r_torn

let test_journal_replay () =
  let header =
    J.Header { version = J.version; target = "T"; fingerprint = "fp" }
  in
  let stmt fname line =
    J.Stmt { sample_stmt with J.j_fname = fname; j_line = line }
  in
  let records =
    [
      header;
      (* sealed function: kept *)
      J.Func_begin "f";
      stmt "f" 0;
      stmt "f" 1;
      J.Func_end { fname = "f"; confidence = 1.0; n_stmts = 2 };
      (* fault records never affect replay *)
      J.Fault_ev
        {
          stage = "s";
          fault = R.Fault.Sim_trap { message = "x" };
          backtrace = "";
        };
      (* partial trail without a seal: dropped *)
      J.Func_begin "g";
      stmt "g" 0;
      (* seal disagreeing with its trail: dropped *)
      J.Func_begin "h";
      stmt "h" 0;
      J.Func_end { fname = "h"; confidence = 1.0; n_stmts = 5 };
      (* a restarted function keeps only the latest trail *)
      J.Func_begin "i";
      stmt "i" 0;
      stmt "i" 1;
      J.Func_begin "i";
      stmt "i" 9;
      J.Func_end { fname = "i"; confidence = 0.5; n_stmts = 1 };
    ]
  in
  let hdr, completed = J.replay records in
  Alcotest.(check bool) "header surfaced" true (hdr = Some header);
  Alcotest.(check (list string)) "only consistently sealed functions"
    [ "f"; "i" ]
    (List.map (fun c -> c.J.c_fname) completed);
  let f = List.hd completed and i = List.nth completed 1 in
  Alcotest.(check int) "f keeps both statements in order" 2
    (List.length f.J.c_stmts);
  Alcotest.(check (list int)) "generation order preserved" [ 0; 1 ]
    (List.map (fun s -> s.J.j_line) f.J.c_stmts);
  Alcotest.(check (list int)) "restart resets the trail" [ 9 ]
    (List.map (fun s -> s.J.j_line) i.J.c_stmts)

(* ---------------- checkpoint ---------------- *)

let sample_ckpt =
  {
    R.Checkpoint.c_version = R.Checkpoint.version;
    c_target = "RISCV";
    c_fingerprint = "deadbeef";
    c_funcs =
      [
        {
          J.c_fname = "getRelocType";
          c_confidence = 1.0;
          c_stmts = [ sample_stmt; { sample_stmt with J.j_line = 8 } ];
        };
        { J.c_fname = "empty"; c_confidence = 0.0; c_stmts = [] };
      ];
  }

let test_checkpoint_roundtrip () =
  let dir = fresh_dir "ckpt" in
  let path = Filename.concat dir "checkpoint.ckpt" in
  R.Checkpoint.save ~path sample_ckpt;
  (match R.Checkpoint.load ~path with
  | Ok c -> Alcotest.(check bool) "snapshot round-trips" true (c = sample_ckpt)
  | Error e -> Alcotest.failf "load failed: %s" e);
  (* corrupt one byte anywhere: load must reject, not crash *)
  let ic = open_in_bin path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let flip i =
    let b = Bytes.of_string contents in
    Bytes.set b i (if Bytes.get b i = 'x' then 'y' else 'x');
    let oc = open_out_bin path in
    output_bytes oc b;
    close_out oc
  in
  List.iter
    (fun i ->
      flip (i * String.length contents / 7);
      match R.Checkpoint.load ~path with
      | Error _ -> ()
      | Ok c ->
          Alcotest.(check bool) "mutation either harmless or rejected" true
            (c = sample_ckpt))
    [ 0; 1; 2; 3; 4; 5 ];
  (* truncated file: reject *)
  let oc = open_out_bin path in
  output_string oc (String.sub contents 0 (String.length contents / 2));
  close_out oc;
  (match R.Checkpoint.load ~path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated snapshot accepted");
  match R.Checkpoint.load ~path:(Filename.concat dir "none.ckpt") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing snapshot accepted"

(* ---------------- supervisor ---------------- *)

let virtual_sup ?(cfg = R.Supervisor.default_config) () =
  let now = ref 0.0 in
  let slept = ref 0.0 in
  let sup =
    R.Supervisor.create
      ~now:(fun () -> !now)
      ~sleep:(fun d -> slept := !slept +. d)
      cfg
  in
  (sup, now, slept)

let test_backoff_determinism () =
  let cfg = R.Supervisor.default_config in
  let delays sup = List.init 8 (R.Supervisor.backoff_delay sup) in
  let s1, _, _ = virtual_sup () and s2, _, _ = virtual_sup () in
  let d1 = delays s1 and d2 = delays s2 in
  Alcotest.(check (list (float 0.0))) "equal seeds, equal jitter" d1 d2;
  List.iteri
    (fun i d ->
      Alcotest.(check bool)
        (Printf.sprintf "delay %d within bounds" i)
        true
        (d > 0.0 && d <= cfg.R.Supervisor.backoff_max_s))
    d1;
  (* exponential growth below the cap *)
  Alcotest.(check bool) "grows before the cap" true
    (List.nth d1 1 > List.nth d1 0);
  let s3, _, _ =
    virtual_sup ~cfg:{ cfg with R.Supervisor.jitter_seed = 999 } ()
  in
  Alcotest.(check bool) "different seed shifts jitter" true (delays s3 <> d1)

let decoder_fault =
  R.Fault.Fault
    (R.Fault.Decoder_failure { fname = "f"; stage = "s"; message = "boom" })

let test_fork_jitter_streams () =
  let sup, _, _ = virtual_sup () in
  let delays s = List.init 6 (R.Supervisor.backoff_delay s) in
  (* forking the same index twice yields the same jitter stream *)
  let a = delays (R.Supervisor.fork ~index:1 sup) in
  let b = delays (R.Supervisor.fork ~index:1 sup) in
  Alcotest.(check (list (float 0.0))) "same index, same stream" a b;
  (* distinct worker indices decorrelate: no two streams collide *)
  let streams =
    List.map
      (fun w -> delays (R.Supervisor.fork ~index:w sup))
      [ 0; 1; 2; 3 ]
  in
  Alcotest.(check int) "four workers, four distinct streams" 4
    (List.length (List.sort_uniq compare streams));
  (* index 0 is the sequential path: it inherits the base stream *)
  Alcotest.(check (list (float 0.0))) "index 0 inherits the base stream"
    (delays sup) (List.hd streams)

let test_breaker_transitions () =
  let cfg =
    {
      R.Supervisor.default_config with
      R.Supervisor.breaker_threshold = 2;
      breaker_cooldown = 3;
      max_retries = 0;
      func_deadline_s = 1000.0;
    }
  in
  let sup, _, _ = virtual_sup ~cfg () in
  R.Supervisor.start_function sup "f";
  let calls = ref 0 in
  let failing () =
    incr calls;
    raise decoder_fault
  in
  let expect_fault cls thunk =
    match R.Supervisor.guard sup thunk with
    | exception R.Fault.Fault f ->
        Alcotest.(check string) "fault class" (R.Fault.cls_name cls)
          (R.Fault.cls_name (R.Fault.cls_of f))
    | _ -> Alcotest.fail "expected a fault"
  in
  Alcotest.(check bool) "starts closed" true
    (R.Supervisor.breaker_state sup = R.Supervisor.Closed 0);
  expect_fault R.Fault.Cdecoder failing;
  Alcotest.(check bool) "one consecutive failure" true
    (R.Supervisor.breaker_state sup = R.Supervisor.Closed 1);
  expect_fault R.Fault.Cdecoder failing;
  Alcotest.(check bool) "opens at the threshold" true
    (R.Supervisor.breaker_state sup = R.Supervisor.Open 3);
  let before = !calls in
  expect_fault R.Fault.Cbreaker failing;
  expect_fault R.Fault.Cbreaker failing;
  Alcotest.(check int) "open breaker never calls the decoder" before !calls;
  Alcotest.(check int) "skips counted" 2
    (R.Supervisor.stats sup).R.Supervisor.sup_breaker_skips;
  (* cooldown expiry: the next guarded call is a half-open probe *)
  expect_fault R.Fault.Cdecoder failing;
  Alcotest.(check bool) "failed probe re-opens" true
    (R.Supervisor.breaker_state sup = R.Supervisor.Open 3);
  Alcotest.(check int) "re-open counted" 2
    (R.Supervisor.stats sup).R.Supervisor.sup_breaker_opened;
  (* drain the cooldown again, then probe with a healthy decoder *)
  expect_fault R.Fault.Cbreaker failing;
  expect_fault R.Fault.Cbreaker failing;
  Alcotest.(check int) "successful probe closes" 7
    (R.Supervisor.guard sup (fun () -> 7));
  Alcotest.(check bool) "closed after recovery" true
    (R.Supervisor.breaker_state sup = R.Supervisor.Closed 0)

let test_retry_backoff () =
  let cfg =
    {
      R.Supervisor.default_config with
      R.Supervisor.max_retries = 2;
      breaker_threshold = 100;
      func_deadline_s = 1000.0;
    }
  in
  let sup, _, slept = virtual_sup ~cfg () in
  R.Supervisor.start_function sup "f";
  let attempts = ref 0 in
  (* fails twice, then succeeds: retries absorb the transient fault *)
  let flaky () =
    incr attempts;
    if !attempts < 3 then raise decoder_fault else !attempts
  in
  Alcotest.(check int) "third attempt wins" 3 (R.Supervisor.guard sup flaky);
  Alcotest.(check int) "two retries recorded" 2
    (R.Supervisor.stats sup).R.Supervisor.sup_retried;
  Alcotest.(check bool) "backoff slept between attempts" true (!slept > 0.0);
  Alcotest.(check bool) "success resets the failure streak" true
    (R.Supervisor.breaker_state sup = R.Supervisor.Closed 0);
  (* non-retryable faults fail straight through *)
  let sim_attempts = ref 0 in
  (match
     R.Supervisor.guard sup (fun () ->
         incr sim_attempts;
         raise (R.Fault.Fault (R.Fault.Sim_trap { message = "t" })))
   with
  | exception R.Fault.Fault (R.Fault.Sim_trap _) -> ()
  | _ -> Alcotest.fail "expected the trap to surface");
  Alcotest.(check int) "no retry on a non-retryable fault" 1 !sim_attempts

let test_deadline () =
  let cfg =
    { R.Supervisor.default_config with R.Supervisor.func_deadline_s = 5.0 }
  in
  let sup, now, _ = virtual_sup ~cfg () in
  R.Supervisor.start_function sup "slowFn";
  Alcotest.(check int) "within budget" 1 (R.Supervisor.guard sup (fun () -> 1));
  now := 6.0;
  (match R.Supervisor.guard sup (fun () -> 2) with
  | exception
      R.Fault.Fault
        (R.Fault.Deadline_exceeded { fname = "slowFn"; budget_ms = 5000 }) ->
      ()
  | exception e -> Alcotest.failf "wrong exception %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "expected the deadline fault");
  Alcotest.(check int) "deadline hit counted" 1
    (R.Supervisor.stats sup).R.Supervisor.sup_deadline_hits;
  (* the next function gets a fresh budget *)
  R.Supervisor.end_function sup;
  R.Supervisor.start_function sup "nextFn";
  Alcotest.(check int) "fresh budget" 3 (R.Supervisor.guard sup (fun () -> 3))

(* ---------------- durable runs over the real pipeline ---------------- *)

let render (gfs : V.Generate.gen_func list) =
  String.concat "\n"
    (List.map
       (fun (gf : V.Generate.gen_func) ->
         Printf.sprintf "%s %h [%s]" gf.V.Generate.gf_fname
           gf.V.Generate.gf_confidence
           (String.concat ";"
              (List.map
                 (fun (s : V.Generate.gen_stmt) ->
                   Printf.sprintf "%d,%d,%d,%h,%b,%s,%s" s.V.Generate.g_col
                     s.V.Generate.g_line s.V.Generate.g_inst
                     s.V.Generate.g_score s.V.Generate.g_shape_ok
                     (R.Degrade.name s.V.Generate.g_level)
                     (String.concat " " s.V.Generate.g_tokens))
                 gf.V.Generate.gf_stmts)))
       gfs)

let test_worker_jitter_domains () =
  (* a transiently flaky decoder exercises retry + backoff on every
     worker; 1, 2 and 4 domains must render bit-identically even though
     each worker draws from its own jitter stream *)
  let t = Lazy.force Test_robust.pipeline in
  let decoder = V.Pipeline.retrieval_decoder t in
  (* failure is a pure function of the feature vector (never of call
     order), and the breaker is disabled, so which statements degrade is
     independent of how statements are partitioned across workers *)
  let flaky fv =
    if Hashtbl.hash fv mod 5 = 0 then raise decoder_fault else decoder fv
  in
  let run domains =
    let cfg =
      {
        R.Supervisor.default_config with
        R.Supervisor.func_deadline_s = 1e9;
        breaker_threshold = max_int;
      }
    in
    let sup, _, _ = virtual_sup ~cfg () in
    let out =
      render
        (V.Pipeline.generate_backend ~fallback:decoder ~sup ~domains t
           ~target:"RISCV" ~decoder:flaky)
    in
    (out, (R.Supervisor.stats sup).R.Supervisor.sup_retried)
  in
  let r1, retried1 = run 1 in
  Alcotest.(check bool) "retries (and so backoff jitter) exercised" true
    (retried1 > 0);
  let r2, _ = run 2 and r4, _ = run 4 in
  Alcotest.(check string) "2 domains identical to 1" r1 r2;
  Alcotest.(check string) "4 domains identical to 1" r1 r4

let test_durable_matches_plain () =
  let t = Lazy.force Test_robust.pipeline in
  let decoder = V.Pipeline.retrieval_decoder t in
  let dir = fresh_dir "plain" in
  let plain = V.Pipeline.generate_backend t ~target:"RISCV" ~decoder in
  match
    V.Pipeline.generate_backend_durable ~run_dir:dir t ~target:"RISCV" ~decoder
  with
  | Error e -> Alcotest.failf "durable run failed: %s" e
  | Ok o ->
      Alcotest.(check string) "journaling changes nothing" (render plain)
        (render o.V.Pipeline.d_funcs);
      Alcotest.(check int) "nothing resumed on a fresh run" 0
        o.V.Pipeline.d_resumed;
      Alcotest.(check bool) "journal records the whole run" true
        (o.V.Pipeline.d_records > List.length plain);
      (* second fresh run in the same dir must refuse *)
      (match
         V.Pipeline.generate_backend_durable ~run_dir:dir t ~target:"RISCV"
           ~decoder
       with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "fresh run over an existing journal accepted");
      (* resuming a complete run restores everything, generates nothing *)
      (match
         V.Pipeline.generate_backend_durable ~resume:true ~run_dir:dir t
           ~target:"RISCV" ~decoder
       with
      | Error e -> Alcotest.failf "resume of a complete run failed: %s" e
      | Ok o2 ->
          Alcotest.(check int) "everything restored"
            (List.length plain)
            o2.V.Pipeline.d_resumed;
          Alcotest.(check int) "nothing regenerated" 0 o2.V.Pipeline.d_generated;
          Alcotest.(check string) "restored run identical" (render plain)
            (render o2.V.Pipeline.d_funcs))

let test_kill_resume_identical () =
  let t = Lazy.force Test_robust.pipeline in
  let decoder = V.Pipeline.retrieval_decoder t in
  let ref_dir = fresh_dir "ref" in
  let expect, total =
    match
      V.Pipeline.generate_backend_durable ~run_dir:ref_dir t ~target:"RISCV"
        ~decoder
    with
    | Error e -> Alcotest.failf "reference run failed: %s" e
    | Ok o -> (render o.V.Pipeline.d_funcs, o.V.Pipeline.d_records)
  in
  let dir = fresh_dir "killmid" in
  let k = total / 2 in
  (match
     V.Pipeline.generate_backend_durable ~kill_at:k ~run_dir:dir t
       ~target:"RISCV" ~decoder
   with
  | exception J.Killed n -> Alcotest.(check int) "killed mid-run" k n
  | Ok _ -> Alcotest.fail "expected the simulated crash"
  | Error e -> Alcotest.failf "killed run setup failed: %s" e);
  (* tear the last durable record mid-write, as a real crash would *)
  J.tear ~path:(V.Pipeline.journal_path dir);
  match
    V.Pipeline.generate_backend_durable ~resume:true ~run_dir:dir t
      ~target:"RISCV" ~decoder
  with
  | Error e -> Alcotest.failf "resume failed: %s" e
  | Ok o ->
      Alcotest.(check bool) "torn record recovered" true o.V.Pipeline.d_torn;
      Alcotest.(check bool) "some functions restored" true
        (o.V.Pipeline.d_resumed > 0);
      Alcotest.(check bool) "some functions regenerated" true
        (o.V.Pipeline.d_generated > 0);
      Alcotest.(check string) "bit-identical to the uninterrupted run" expect
        (render o.V.Pipeline.d_funcs)

let test_durable_breaker_permafail () =
  let t = Lazy.force Test_robust.pipeline in
  let decoder = V.Pipeline.retrieval_decoder t in
  let cfg =
    {
      R.Supervisor.default_config with
      R.Supervisor.breaker_threshold = 3;
      breaker_cooldown = 4;
      max_retries = 1;
      func_deadline_s = 1000.0;
    }
  in
  let sup, _, slept = virtual_sup ~cfg () in
  let calls = ref 0 in
  let permafail _fv =
    incr calls;
    raise decoder_fault
  in
  let report = R.Report.create () in
  let dir = fresh_dir "permafail" in
  match
    V.Pipeline.generate_backend_durable ~fallback:decoder ~report ~sup
      ~run_dir:dir t ~target:"RISCV" ~decoder:permafail
  with
  | Error e -> Alcotest.failf "durable permafail run errored: %s" e
  | Ok o ->
      let st = R.Supervisor.stats sup in
      Alcotest.(check bool) "breaker opened" true
        (st.R.Supervisor.sup_breaker_opened > 0);
      Alcotest.(check bool) "open breaker skipped decode calls" true
        (st.R.Supervisor.sup_breaker_skips > 0);
      let stmts =
        List.concat_map
          (fun (gf : V.Generate.gen_func) -> gf.V.Generate.gf_stmts)
          o.V.Pipeline.d_funcs
      in
      Alcotest.(check bool) "run produced statements" true (stmts <> []);
      List.iter
        (fun (s : V.Generate.gen_stmt) ->
          Alcotest.(check bool) "every statement on a fallback rung" true
            (match s.V.Generate.g_level with
            | R.Degrade.Retrieval_fallback | R.Degrade.Template_default
            | R.Degrade.Omitted ->
                true
            | _ -> false))
        stmts;
      Alcotest.(check bool) "decode attempts bounded by the breaker" true
        (!calls < 2 * List.length stmts);
      Alcotest.(check bool) "accumulated backoff bounded" true
        (!slept
        <= (float_of_int st.R.Supervisor.sup_retried
           *. cfg.R.Supervisor.backoff_max_s)
           +. 1e-9);
      (* breaker faults were journaled ahead with everything else *)
      let rc = J.read ~path:(V.Pipeline.journal_path dir) () in
      Alcotest.(check bool) "breaker-open faults journaled" true
        (List.exists
           (function
             | J.Fault_ev { fault = R.Fault.Breaker_open _; _ } -> true
             | _ -> false)
           rc.J.r_records)

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_wire_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_wire_corruption;
    QCheck_alcotest.to_alcotest qcheck_float_field;
    Alcotest.test_case "wire special floats" `Quick test_wire_specials;
    Alcotest.test_case "journal record round-trip" `Quick
      test_journal_record_roundtrip;
    Alcotest.test_case "journal write/read/tear" `Quick
      test_journal_write_read_tear;
    Alcotest.test_case "journal oversize line" `Quick
      test_journal_oversize_line;
    Alcotest.test_case "journal kill-at" `Quick test_journal_kill_at;
    Alcotest.test_case "fork jitter streams" `Quick test_fork_jitter_streams;
    Alcotest.test_case "worker jitter domains 1/2/4" `Quick
      test_worker_jitter_domains;
    Alcotest.test_case "journal replay" `Quick test_journal_replay;
    Alcotest.test_case "checkpoint round-trip" `Quick test_checkpoint_roundtrip;
    Alcotest.test_case "backoff determinism" `Quick test_backoff_determinism;
    Alcotest.test_case "breaker transitions" `Quick test_breaker_transitions;
    Alcotest.test_case "retry with backoff" `Quick test_retry_backoff;
    Alcotest.test_case "per-function deadline" `Quick test_deadline;
    Alcotest.test_case "durable run matches plain" `Quick
      test_durable_matches_plain;
    Alcotest.test_case "kill/resume bit-identical" `Quick
      test_kill_resume_identical;
    Alcotest.test_case "breaker permafail durable" `Quick
      test_durable_breaker_permafail;
  ]
