(* Tests for the fault-tolerant generation pipeline: the fault taxonomy,
   the degradation ladder, stage isolation, the seeded injection harness,
   and the end-to-end invariants (a faulty decoder never aborts backend
   generation; degraded confidence never exceeds its rung's cap; every
   injected fault appears in the run report). *)

module V = Vega
module R = Vega_robust

let sample_faults =
  [
    R.Fault.Decoder_failure { fname = "f"; stage = "primary"; message = "boom" };
    R.Fault.Nan_score { fname = "f"; detail = "nan prob" };
    R.Fault.Corpus_corruption { group = "g"; detail = "bad impl" };
    R.Fault.Descfile_corruption { path = "p.td"; detail = "binary junk" };
    R.Fault.Interp_fuel_exhausted { fuel = 7 };
    R.Fault.Sim_fuel_exhausted { fuel = 9 };
    R.Fault.Sim_trap { message = "bad register" };
    R.Fault.Bounds_error { what = "w"; index = 3; length = 2 };
    R.Fault.Stage_failure { stage = "s"; message = "m" };
    R.Fault.Deadline_exceeded { fname = "f"; budget_ms = 30_000 };
    R.Fault.Breaker_open { fname = "f"; failures = 5 };
    R.Fault.Record_oversize
      { where = "journal"; bytes = 9_000_000; limit = 1 lsl 20 };
    R.Fault.Cache_corruption { key = "abc123"; detail = "checksum mismatch" };
    R.Fault.Shard_failure { shard = "shard-1"; detail = "connection refused" };
  ]

(* ---------------- taxonomy ---------------- *)

let test_taxonomy () =
  (* every fault maps into the class list, one class per constructor *)
  let classes = List.map R.Fault.cls_of sample_faults in
  Alcotest.(check int) "one class per constructor"
    (List.length R.Fault.all_classes)
    (List.length (List.sort_uniq compare classes));
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Printf.sprintf "class %s reachable" (R.Fault.cls_name c))
        true (List.mem c classes))
    R.Fault.all_classes;
  (* class names and printed forms are distinct and non-empty *)
  let names = List.map R.Fault.cls_name R.Fault.all_classes in
  Alcotest.(check int) "distinct class names"
    (List.length names)
    (List.length (List.sort_uniq compare names));
  List.iter
    (fun f ->
      Alcotest.(check bool) "to_string non-empty" true
        (String.length (R.Fault.to_string f) > 0))
    sample_faults

let test_degrade_ladder () =
  Alcotest.(check int) "five rungs" 5 (List.length R.Degrade.all);
  Alcotest.(check (float 0.0)) "primary uncapped" 1.0 (R.Degrade.cap R.Degrade.Primary);
  Alcotest.(check (float 0.0)) "omitted zero" 0.0 (R.Degrade.cap R.Degrade.Omitted);
  Alcotest.(check bool) "template default below accept threshold" true
    (R.Degrade.cap R.Degrade.Template_default < 0.5);
  (* caps monotonically non-increasing in rank, ranks are 0..4 in order *)
  ignore
    (List.fold_left
       (fun (prev_rank, prev_cap) l ->
         Alcotest.(check int) "rank increments" (prev_rank + 1) (R.Degrade.rank l);
         Alcotest.(check bool)
           (Printf.sprintf "cap non-increasing at %s" (R.Degrade.name l))
           true
           (R.Degrade.cap l <= prev_cap);
         (R.Degrade.rank l, R.Degrade.cap l))
       (-1, 2.0) R.Degrade.all)

let test_report () =
  let r = R.Report.create () in
  Alcotest.(check int) "empty" 0 (R.Report.total r);
  List.iter (R.Report.record r ~stage:"test") sample_faults;
  Alcotest.(check int) "all recorded" (List.length sample_faults) (R.Report.total r);
  Alcotest.(check int) "one decoder fault" 1 (R.Report.count_class r R.Fault.Cdecoder);
  List.iter
    (fun (_, n) -> Alcotest.(check bool) "by_class non-zero only" true (n > 0))
    (R.Report.by_class r);
  (* Primary degradations are not degradations *)
  R.Report.record_degradation r ~fname:"f" ~col:0 ~line:0 ~inst:0 R.Degrade.Primary;
  Alcotest.(check int) "primary is a no-op" 0 (R.Report.degraded_count r);
  R.Report.record_degradation r ~fname:"f" ~col:0 ~line:1 ~inst:0 R.Degrade.Retry;
  R.Report.record_degradation r ~fname:"f" ~col:0 ~line:2 ~inst:0 R.Degrade.Omitted;
  Alcotest.(check int) "two degradations" 2 (R.Report.degraded_count r);
  Alcotest.(check int) "one retry" 1 (R.Report.count_level r R.Degrade.Retry);
  Alcotest.(check bool) "summary non-empty" true
    (String.length (R.Report.summary r) > 0)

(* ---------------- stage isolation ---------------- *)

let test_stage_classify () =
  let fault = R.Fault.Sim_trap { message = "x" } in
  Alcotest.(check bool) "fault passthrough" true
    (R.Stage.classify ~stage:"s" (R.Fault.Fault fault) = fault);
  (match R.Stage.classify ~stage:"s" (Vega_srclang.Interp.Fuel_exhausted 42) with
  | R.Fault.Interp_fuel_exhausted { fuel = 42 } -> ()
  | f -> Alcotest.failf "misclassified fuel exhaustion: %s" (R.Fault.to_string f));
  match R.Stage.classify ~stage:"s" (Failure "oops") with
  | R.Fault.Stage_failure { stage = "s"; _ } -> ()
  | f -> Alcotest.failf "misclassified failure: %s" (R.Fault.to_string f)

let test_stage_protect () =
  let r = R.Report.create () in
  (match R.Stage.protect ~report:r ~stage:"ok" (fun () -> 41 + 1) with
  | Ok 42 -> ()
  | _ -> Alcotest.fail "expected Ok 42");
  Alcotest.(check int) "success records nothing" 0 (R.Report.total r);
  (match R.Stage.protect ~report:r ~stage:"boom" (fun () -> failwith "no") with
  | Error (R.Fault.Stage_failure _) -> ()
  | _ -> Alcotest.fail "expected Stage_failure");
  Alcotest.(check int) "failure recorded" 1 (R.Report.total r)

let test_stage_backtrace () =
  (* the fault record must carry the backtrace of the original raise
     site, not of the protect wrapper *)
  let was = Printexc.backtrace_status () in
  Printexc.record_backtrace true;
  Fun.protect
    ~finally:(fun () -> Printexc.record_backtrace was)
    (fun () ->
      let r = R.Report.create () in
      let deep () = failwith "deep failure" in
      (match R.Stage.protect ~report:r ~stage:"bt" (fun () -> deep ()) with
      | Error (R.Fault.Stage_failure _) -> ()
      | _ -> Alcotest.fail "expected Stage_failure");
      match R.Report.events r with
      | [ ev ] ->
          Alcotest.(check bool) "backtrace captured" true
            (String.length ev.R.Report.ev_backtrace > 0)
      | evs -> Alcotest.failf "expected one event, got %d" (List.length evs))

let test_report_roundtrip () =
  (* serialize -> parse -> equal, across every fault class and a
     degradation at every rung *)
  let r = R.Report.create () in
  List.iteri
    (fun i fault ->
      let backtrace = if i mod 2 = 0 then "" else Printf.sprintf "frame %d" i in
      R.Report.record ~backtrace r ~stage:(Printf.sprintf "stage%d" i) fault)
    sample_faults;
  List.iteri
    (fun i level ->
      R.Report.record_degradation r ~fname:(Printf.sprintf "f%d" i) ~col:i
        ~line:(i * 2) ~inst:(-1) level)
    R.Degrade.all;
  match R.Report.parse (R.Report.serialize r) with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok r' ->
      Alcotest.(check bool) "round-trip preserves the report" true
        (R.Report.equal r r');
      Alcotest.(check int) "every fault back" (R.Report.total r)
        (R.Report.total r');
      Alcotest.(check int) "every degradation back" (R.Report.degraded_count r)
        (R.Report.degraded_count r');
      (* a corrupt line is named, not swallowed *)
      (match R.Report.parse (R.Report.serialize r ^ "garbage line\n") with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "corrupt serialization accepted");
      (* the empty report round-trips too *)
      (match R.Report.parse (R.Report.serialize (R.Report.create ())) with
      | Ok e -> Alcotest.(check int) "empty stays empty" 0 (R.Report.total e)
      | Error e -> Alcotest.failf "empty report parse failed: %s" e)

let qcheck_ladder_caps =
  (* caps are strictly decreasing down the ladder, and the template rung
     sits below the 0.5 accept threshold *)
  let pair =
    QCheck.Gen.(
      map2
        (fun a b -> (List.nth R.Degrade.all a, List.nth R.Degrade.all b))
        (int_range 0 (List.length R.Degrade.all - 1))
        (int_range 0 (List.length R.Degrade.all - 1)))
  in
  QCheck.Test.make ~name:"ladder caps strictly decrease" ~count:200
    (QCheck.make pair)
    (fun (l1, l2) ->
      R.Degrade.cap R.Degrade.Template_default < 0.5
      && (R.Degrade.rank l1 >= R.Degrade.rank l2
         || R.Degrade.cap l1 > R.Degrade.cap l2))

let test_bounds_nth () =
  Alcotest.(check int) "in range" 20 (R.Fault.nth ~what:"xs" [ 10; 20; 30 ] 1);
  match R.Fault.nth ~what:"xs" [ 10; 20; 30 ] 5 with
  | exception R.Fault.Fault (R.Fault.Bounds_error { what = "xs"; index = 5; length = 3 })
    ->
      ()
  | exception e -> Alcotest.failf "wrong exception %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "expected bounds fault"

(* ---------------- numeric hardening (satellite clamps) ---------------- *)

let test_mean_token_prob_nan () =
  let m = V.Codebe.mean_token_prob in
  Alcotest.(check (float 1e-9)) "nan entries dropped" 0.75
    (m [| 0.5; Float.nan; 1.0 |]);
  Alcotest.(check (float 0.0)) "all nan -> 0" 0.0 (m [| Float.nan; Float.nan |]);
  Alcotest.(check (float 0.0)) "empty -> 1" 1.0 (m [||]);
  Alcotest.(check (float 0.0)) "clamped above" 1.0 (m [| 3.0; 5.0 |]);
  Alcotest.(check bool) "always finite" true (Float.is_finite (m [| Float.infinity |]))

let test_confidence_sanitize () =
  Alcotest.(check (float 0.0)) "nan -> 0" 0.0 (V.Confidence.sanitize Float.nan);
  Alcotest.(check (float 0.0)) "inf -> 1" 1.0 (V.Confidence.sanitize Float.infinity);
  Alcotest.(check (float 0.0)) "neg clamped" 0.0 (V.Confidence.sanitize (-0.5));
  Alcotest.(check (float 0.0)) "identity inside" 0.3 (V.Confidence.sanitize 0.3)

(* ---------------- injection determinism ---------------- *)

let test_inject_determinism () =
  let fires seed every n =
    let t = R.Inject.create ~every ~seed R.Inject.Decoder_raise in
    List.init n (fun _ -> R.Inject.fire t)
  in
  Alcotest.(check (list bool)) "replayable" (fires 13 3 50) (fires 13 3 50);
  Alcotest.(check bool) "seed shifts the phase" true (fires 13 3 50 <> fires 14 3 50);
  let t = R.Inject.create ~every:3 ~seed:13 R.Inject.Decoder_raise in
  for _ = 1 to 30 do
    ignore (R.Inject.fire t)
  done;
  Alcotest.(check int) "opportunities counted" 30 (R.Inject.opportunities t);
  Alcotest.(check int) "every third fires" 10 (R.Inject.injected t)

(* ---------------- end-to-end invariants ---------------- *)

let corpus = lazy (Vega_corpus.Corpus.build ())

let pipeline =
  lazy
    (let prep = V.Pipeline.prepare ~corpus:(Lazy.force corpus) () in
     let cfg =
       {
         V.Pipeline.test_config with
         train_cfg = { V.Codebe.tiny_train_config with epochs = 0 };
       }
     in
     V.Pipeline.train cfg prep)

let stmt_key (gf : V.Generate.gen_func) (st : V.Generate.gen_stmt) =
  (gf.gf_fname, st.g_col, st.g_line, st.g_inst)

let test_no_fault_run () =
  let t = Lazy.force pipeline in
  let decoder = V.Pipeline.retrieval_decoder t in
  let report = R.Report.create () in
  let plain = V.Pipeline.generate_backend t ~target:"RISCV" ~decoder in
  let watched =
    V.Pipeline.generate_backend ~fallback:decoder ~report t ~target:"RISCV" ~decoder
  in
  Alcotest.(check int) "no faults" 0 (R.Report.total report);
  Alcotest.(check int) "no degradation" 0 (R.Report.degraded_count report);
  Alcotest.(check int) "same function count" (List.length plain)
    (List.length watched);
  List.iter2
    (fun (a : V.Generate.gen_func) (b : V.Generate.gen_func) ->
      Alcotest.(check string) "same function" a.gf_fname b.gf_fname;
      List.iter2
        (fun (x : V.Generate.gen_stmt) (y : V.Generate.gen_stmt) ->
          Alcotest.(check bool) "all primary" true (y.g_level = R.Degrade.Primary);
          Alcotest.(check bool) "identical tokens" true (x.g_tokens = y.g_tokens);
          Alcotest.(check (float 1e-9)) "identical score" x.g_score y.g_score)
        a.gf_stmts b.gf_stmts)
    plain watched

let test_decoder_raise_with_fallback () =
  let t = Lazy.force pipeline in
  let decoder = V.Pipeline.retrieval_decoder t in
  let inj = R.Inject.create ~every:2 ~seed:13 R.Inject.Decoder_raise in
  let report = R.Report.create () in
  let faulty = R.Inject.wrap_decoder inj decoder in
  let plain = V.Pipeline.generate_backend t ~target:"RISCV" ~decoder in
  let gfs =
    V.Pipeline.generate_backend ~fallback:decoder ~report t ~target:"RISCV"
      ~decoder:faulty
  in
  Alcotest.(check bool) "faults were injected" true (R.Inject.injected inj > 0);
  (* invariant: every injected fault appears in the run report *)
  Alcotest.(check int) "all injected faults observed" (R.Inject.injected inj)
    (R.Report.total report);
  (* invariant: the run never aborts — same functions come back *)
  Alcotest.(check int) "function count unchanged" (List.length plain)
    (List.length gfs);
  let base = Hashtbl.create 512 in
  List.iter
    (fun gf ->
      List.iter
        (fun (st : V.Generate.gen_stmt) ->
          Hashtbl.replace base (stmt_key gf st) st.V.Generate.g_score)
        gf.V.Generate.gf_stmts)
    plain;
  List.iter
    (fun gf ->
      List.iter
        (fun (st : V.Generate.gen_stmt) ->
          (* degraded statements stay under their rung's cap and never
             exceed the clean-run score of the same slot *)
          Alcotest.(check bool) "score finite in [0,1]" true
            (Float.is_finite st.g_score && st.g_score >= 0.0 && st.g_score <= 1.0);
          Alcotest.(check bool) "score under rung cap" true
            (st.g_score <= R.Degrade.cap st.g_level +. 1e-9);
          (match Hashtbl.find_opt base (stmt_key gf st) with
          | Some clean ->
              Alcotest.(check bool) "monotone vs clean run" true
                (st.g_score <= clean +. 1e-9)
          | None -> ());
          Alcotest.(check bool) "only retry/fallback rungs" true
            (match st.g_level with
            | R.Degrade.Primary | R.Degrade.Retry | R.Degrade.Retrieval_fallback ->
                true
            | _ -> false))
        gf.V.Generate.gf_stmts)
    gfs;
  Alcotest.(check bool) "some statements degraded" true
    (R.Report.degraded_count report > 0)

let test_decoder_raise_no_fallback () =
  let t = Lazy.force pipeline in
  let decoder = V.Pipeline.retrieval_decoder t in
  let inj = R.Inject.create ~every:1 ~seed:13 R.Inject.Decoder_raise in
  let report = R.Report.create () in
  let faulty = R.Inject.wrap_decoder inj decoder in
  (* every decode fails and there is no fallback decoder: the ladder must
     bottom out at template defaults / omissions, never crash *)
  let gfs = V.Pipeline.generate_backend ~report t ~target:"RISCV" ~decoder:faulty in
  Alcotest.(check bool) "functions still produced" true (gfs <> []);
  List.iter
    (fun gf ->
      List.iter
        (fun (st : V.Generate.gen_stmt) ->
          match st.V.Generate.g_level with
          | R.Degrade.Template_default ->
              Alcotest.(check bool) "template default under threshold" true
                (st.g_score < 0.5)
          | R.Degrade.Omitted ->
              Alcotest.(check (float 0.0)) "omitted scores zero" 0.0 st.g_score;
              Alcotest.(check bool) "omitted has no tokens" true (st.g_tokens = [])
          | l ->
              Alcotest.failf "unexpected rung %s without fallback"
                (R.Degrade.name l))
        gf.V.Generate.gf_stmts)
    gfs;
  Alcotest.(check int) "bottom rungs account for everything"
    (R.Report.degraded_count report)
    (R.Report.count_level report R.Degrade.Template_default
    + R.Report.count_level report R.Degrade.Omitted)

let test_decoder_nan_injection () =
  let t = Lazy.force pipeline in
  let decoder = V.Pipeline.retrieval_decoder t in
  let inj = R.Inject.create ~every:3 ~seed:13 R.Inject.Decoder_nan in
  let report = R.Report.create () in
  let faulty = R.Inject.wrap_decoder inj decoder in
  let gfs =
    V.Pipeline.generate_backend ~fallback:decoder ~report t ~target:"RISCV"
      ~decoder:faulty
  in
  Alcotest.(check int) "every nan observed" (R.Inject.injected inj)
    (R.Report.total report);
  Alcotest.(check int) "all classified as score faults" (R.Inject.injected inj)
    (R.Report.count_class report R.Fault.Cscore);
  List.iter
    (fun gf ->
      List.iter
        (fun (st : V.Generate.gen_stmt) ->
          Alcotest.(check bool) "no nan leaks into scores" true
            (Float.is_finite st.V.Generate.g_score))
        gf.V.Generate.gf_stmts)
    gfs

let test_corpus_corruption () =
  let inj = R.Inject.create ~every:5 ~seed:13 R.Inject.Corpus_mangle in
  let corrupted = R.Inject.corrupt_corpus inj (Lazy.force corpus) in
  Alcotest.(check bool) "groups were mangled" true (R.Inject.injected inj > 0);
  let report = R.Report.create () in
  (* prepare must drop the mangled impls per-impl, record each, and survive *)
  let prep = V.Pipeline.prepare ~report ~corpus:corrupted () in
  Alcotest.(check int) "every mangled impl recorded" (R.Inject.injected inj)
    (R.Report.count_class report R.Fault.Ccorpus);
  Alcotest.(check bool) "bundles survive" true (prep.V.Pipeline.bundles <> [])

let test_descfile_corruption_scan () =
  (* rebuild a private corpus: corrupt_descfiles mutates the VFS in place *)
  let c = Vega_corpus.Corpus.build () in
  let vfs = c.Vega_corpus.Corpus.vfs in
  let inj = R.Inject.create ~every:2 ~seed:13 R.Inject.Descfile_garbage in
  let paths = R.Inject.corrupt_descfiles inj vfs ~target:"RISCV" in
  Alcotest.(check bool) "files were corrupted" true (paths <> []);
  let report = R.Report.create () in
  let found = R.Inject.scan_vfs ~report vfs ~target:"RISCV" in
  Alcotest.(check int) "scan finds every corrupted file" (List.length paths)
    (List.length found);
  Alcotest.(check int) "scan records every corrupted file" (List.length paths)
    (R.Report.count_class report R.Fault.Cdescfile)

let test_descfile_quarantine () =
  (* a training target whose description files are mangled is quarantined
     at prepare — recorded, its training data dropped, the run continues *)
  let c = Vega_corpus.Corpus.build () in
  let vfs = c.Vega_corpus.Corpus.vfs in
  let victim =
    (List.hd Vega_target.Registry.training).Vega_target.Profile.name
  in
  let inj = R.Inject.create ~every:1 ~seed:13 R.Inject.Descfile_garbage in
  let paths = R.Inject.corrupt_descfiles inj vfs ~target:victim in
  Alcotest.(check bool) "files were corrupted" true (paths <> []);
  let report = R.Report.create () in
  let prep = V.Pipeline.prepare ~report ~corpus:c () in
  Alcotest.(check (list string)) "victim quarantined" [ victim ]
    prep.V.Pipeline.quarantined;
  Alcotest.(check bool) "corruption recorded" true
    (R.Report.count_class report R.Fault.Cdescfile > 0);
  Alcotest.(check bool) "bundles survive" true (prep.V.Pipeline.bundles <> []);
  (* the quarantined target's reference implementations are gone *)
  List.iter
    (fun (g : Vega_corpus.Corpus.group) ->
      Alcotest.(check bool)
        (g.Vega_corpus.Corpus.spec.Vega_corpus.Spec.fname
        ^ ": victim impls dropped")
        false
        (List.exists
           (fun (i : Vega_corpus.Corpus.impl) ->
             i.Vega_corpus.Corpus.target = victim)
           g.Vega_corpus.Corpus.impls))
    prep.V.Pipeline.corpus.Vega_corpus.Corpus.groups;
  (* a healthy corpus quarantines nothing *)
  let clean = V.Pipeline.prepare () in
  Alcotest.(check (list string)) "clean corpus: no quarantine" []
    clean.V.Pipeline.quarantined

let suite =
  [
    Alcotest.test_case "fault taxonomy" `Quick test_taxonomy;
    Alcotest.test_case "degradation ladder" `Quick test_degrade_ladder;
    Alcotest.test_case "run report" `Quick test_report;
    Alcotest.test_case "stage classify" `Quick test_stage_classify;
    Alcotest.test_case "stage protect" `Quick test_stage_protect;
    Alcotest.test_case "stage backtrace capture" `Quick test_stage_backtrace;
    Alcotest.test_case "report round-trip" `Quick test_report_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_ladder_caps;
    Alcotest.test_case "bounds-checked nth" `Quick test_bounds_nth;
    Alcotest.test_case "mean_token_prob nan" `Quick test_mean_token_prob_nan;
    Alcotest.test_case "confidence sanitize" `Quick test_confidence_sanitize;
    Alcotest.test_case "injection determinism" `Quick test_inject_determinism;
    Alcotest.test_case "no-fault run unchanged" `Quick test_no_fault_run;
    Alcotest.test_case "decoder raise + fallback" `Quick test_decoder_raise_with_fallback;
    Alcotest.test_case "decoder raise, no fallback" `Quick test_decoder_raise_no_fallback;
    Alcotest.test_case "decoder nan injection" `Quick test_decoder_nan_injection;
    Alcotest.test_case "corpus corruption" `Quick test_corpus_corruption;
    Alcotest.test_case "descfile corruption scan" `Quick test_descfile_corruption_scan;
    Alcotest.test_case "descfile quarantine at prepare" `Quick
      test_descfile_quarantine;
  ]
