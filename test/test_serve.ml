(* Tests for the resilient serving layer: token bucket, bounded
   admission queue, wire protocol, health snapshots, the server's
   shedding / deadline / drain / resume behaviour, and in-process vs
   socket parity. *)

module V = Vega
module R = Vega_robust
module S = Vega_serve

let fresh_dir =
  let n = ref 0 in
  fun name ->
    incr n;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "vega_serve_%d_%s%d" (Unix.getpid ()) name !n)
    in
    if not (Sys.file_exists d) then Unix.mkdir d 0o755;
    d

let target = "RISCV"
let pipeline = Test_robust.pipeline

let mk ?(client = "t") ?deadline_ms fname =
  {
    S.Proto.rq_client = client;
    rq_target = target;
    rq_fname = fname;
    rq_deadline_ms = deadline_ms;
  }

let fnames t =
  List.map
    (fun (b : V.Pipeline.bundle) -> b.V.Pipeline.spec.Vega_corpus.Spec.fname)
    t.V.Pipeline.prep.V.Pipeline.bundles

(* quiet config for tests: generous per-client budget, frozen refill *)
let tcfg =
  {
    S.Server.default_config with
    S.Server.domains = 1;
    queue_cap = 128;
    client_burst = 1000.0;
    client_rate = 0.0;
  }

let expect_done = function
  | S.Proto.Done _ -> ()
  | S.Proto.Rejected r -> Alcotest.failf "rejected: %s" (S.Proto.reject_to_string r)
  | S.Proto.Failed m -> Alcotest.failf "failed: %s" m

(* ---------------- token bucket ---------------- *)

let test_bucket () =
  let now = ref 0.0 in
  let b = S.Bucket.create ~now:(fun () -> !now) ~rate:2.0 ~burst:3.0 () in
  Alcotest.(check (float 0.0)) "full at first sight" 3.0 (S.Bucket.balance b "a");
  Alcotest.(check bool) "burst admits" true
    (S.Bucket.take b "a" && S.Bucket.take b "a" && S.Bucket.take b "a");
  Alcotest.(check bool) "burst exhausted" false (S.Bucket.take b "a");
  (* other clients have their own bucket *)
  Alcotest.(check bool) "other client unaffected" true (S.Bucket.take b "b");
  Alcotest.(check int) "two clients tracked" 2 (S.Bucket.clients b);
  (* refill at [rate] tokens/second, capped at [burst] *)
  now := 1.0;
  Alcotest.(check (float 1e-9)) "refilled by rate*dt" 2.0
    (S.Bucket.balance b "a");
  Alcotest.(check bool) "refill admits again" true (S.Bucket.take b "a");
  now := 1000.0;
  Alcotest.(check (float 1e-9)) "refill capped at burst" 3.0
    (S.Bucket.balance b "a");
  (* a zero-rate bucket is a pure counter: no refill ever *)
  let frozen = S.Bucket.create ~now:(fun () -> !now) ~rate:0.0 ~burst:1.0 () in
  Alcotest.(check bool) "one take" true (S.Bucket.take frozen "c");
  now := 1.0e9;
  Alcotest.(check bool) "never refills" false (S.Bucket.take frozen "c")

(* ---------------- admission queue ---------------- *)

let test_admission () =
  let q = S.Admission.create ~cap:2 () in
  Alcotest.(check int) "capacity" 2 (S.Admission.capacity q);
  (match S.Admission.offer q "a" with
  | S.Admission.Accepted 1 -> ()
  | _ -> Alcotest.fail "first offer accepted at depth 1");
  (match S.Admission.offer q "b" with
  | S.Admission.Accepted 2 -> ()
  | _ -> Alcotest.fail "second offer accepted at depth 2");
  (* at capacity: shed synchronously, never grow *)
  (match S.Admission.offer q "c" with
  | S.Admission.Shed 2 -> ()
  | _ -> Alcotest.fail "third offer shed at depth 2");
  Alcotest.(check int) "depth bounded" 2 (S.Admission.depth q);
  (* a take frees a slot *)
  Alcotest.(check (option string)) "fifo take" (Some "a") (S.Admission.take q);
  (match S.Admission.offer q "c" with
  | S.Admission.Accepted 2 -> ()
  | _ -> Alcotest.fail "freed slot admits again");
  (* close: no more admission, but the backlog drains *)
  S.Admission.close q;
  (match S.Admission.offer q "d" with
  | S.Admission.Closed -> ()
  | _ -> Alcotest.fail "closed queue rejects");
  Alcotest.(check bool) "reports closed" true (S.Admission.closed q);
  Alcotest.(check (option string)) "backlog drains" (Some "b")
    (S.Admission.take q);
  Alcotest.(check (option string)) "backlog drains in order" (Some "c")
    (S.Admission.take q);
  Alcotest.(check (option string)) "exhausted after drain" None
    (S.Admission.take q)

let test_admission_paused () =
  (* paused: accepted items build up; a blocked taker wakes on resume *)
  let q = S.Admission.create ~paused:true ~cap:4 () in
  (match S.Admission.offer q 1 with
  | S.Admission.Accepted 1 -> ()
  | _ -> Alcotest.fail "paused queue still admits");
  let got = Atomic.make None in
  let d = Domain.spawn (fun () -> Atomic.set got (Some (S.Admission.take q))) in
  Unix.sleepf 0.05;
  Alcotest.(check bool) "taker blocked while paused" true
    (Atomic.get got = None);
  S.Admission.resume q;
  Domain.join d;
  Alcotest.(check bool) "resume releases the taker" true
    (Atomic.get got = Some (Some 1));
  S.Admission.close q

(* ---------------- wire protocol ---------------- *)

let test_proto_roundtrip () =
  let requests =
    [
      mk "getRelocType";
      mk ~client:"weird client\t\n" ~deadline_ms:250 "f";
      { S.Proto.rq_client = ""; rq_target = ""; rq_fname = ""; rq_deadline_ms = Some 0 };
    ]
  in
  List.iter
    (fun r ->
      match S.Proto.decode_command (S.Proto.encode_request r) with
      | S.Proto.Decoded (S.Proto.Creq r') ->
          Alcotest.(check bool) "request round-trips" true (r = r')
      | _ -> Alcotest.fail "request failed to round-trip")
    requests;
  List.iter
    (fun c ->
      Alcotest.(check bool) "command round-trips" true
        (S.Proto.decode_command (S.Proto.encode_command c) = S.Proto.Decoded c))
    [ S.Proto.Chealth; S.Proto.Cdrain; S.Proto.Cping; S.Proto.Cshards ];
  let replies =
    [
      S.Proto.Done
        {
          r_fname = "f";
          r_target = "RISCV";
          r_confidence = 0.4375;
          r_degraded = 2;
          r_resumed = true;
          r_source = "unsigned f ( ) {\nreturn 1 ;\n}";
        };
      S.Proto.Rejected (S.Proto.Queue_full { depth = 16; cap = 16 });
      S.Proto.Rejected (S.Proto.Budget_exhausted { client = "c" });
      S.Proto.Rejected S.Proto.Draining;
      S.Proto.Rejected (S.Proto.Expired { waited_ms = 51 });
      S.Proto.Rejected (S.Proto.Oversize { bytes = 9999999; limit = 1024 });
      S.Proto.Rejected (S.Proto.Bad_request "nope");
      S.Proto.Rejected (S.Proto.Version_mismatch { got = 9; want = 1 });
      S.Proto.Rejected (S.Proto.Shard_down { shard = "shard-2" });
      S.Proto.Failed "boom";
    ]
  in
  List.iter
    (fun r ->
      Alcotest.(check bool)
        ("reply round-trips: " ^ S.Proto.encode_reply r)
        true
        (S.Proto.decode_reply (S.Proto.encode_reply r) = S.Proto.Decoded r))
    replies;
  (* junk never parses *)
  List.iter
    (fun line ->
      Alcotest.(check bool) "junk rejected" true
        (S.Proto.decode_command line = S.Proto.Malformed
        && S.Proto.decode_reply line = S.Proto.Malformed))
    [ ""; "hello"; "req|a|b"; String.make 64 '\xff' ]

let test_proto_version_skew () =
  (* a well-formed line stamped with another version is version skew,
     not a parse fault, on both the command and the reply side *)
  let skewed_cmd = S.Proto.encode_command_at ~version:9 S.Proto.Cping in
  (match S.Proto.decode_command skewed_cmd with
  | S.Proto.Version_skew { got } ->
      Alcotest.(check int) "skewed command carries peer version" 9 got
  | _ -> Alcotest.fail "skewed command not detected");
  let skewed_reply =
    S.Proto.encode_reply_at ~version:3 (S.Proto.Failed "old peer")
  in
  (match S.Proto.decode_reply skewed_reply with
  | S.Proto.Version_skew { got } ->
      Alcotest.(check int) "skewed reply carries peer version" 3 got
  | _ -> Alcotest.fail "skewed reply not detected");
  (* a garbled version field is malformed, not skew *)
  let bad = R.Wire.encode_line [ "vX"; "ping" ] in
  Alcotest.(check bool) "garbled version field is malformed" true
    (S.Proto.decode_command bad = S.Proto.Malformed);
  (* current-version lines still decode *)
  Alcotest.(check bool) "current version decodes" true
    (S.Proto.decode_command (S.Proto.encode_command S.Proto.Cping)
    = S.Proto.Decoded S.Proto.Cping)

let test_health_wire () =
  let snap =
    {
      S.Health.h_state = S.Health.Draining;
      h_queue_depth = 3;
      h_queue_cap = 16;
      h_busy = 2;
      h_domains = 4;
      h_accepted = 100;
      h_rejected = 31;
      h_completed = 95;
      h_deadline_hits = 7;
      h_breaker_open = true;
      h_journal_records = 812;
      h_journal_lag = 5;
    }
  in
  Alcotest.(check bool) "snapshot round-trips" true
    (S.Health.decode (S.Health.encode snap) = Some snap);
  List.iter
    (fun st ->
      Alcotest.(check bool) "state name round-trips" true
        (S.Health.state_of_name (S.Health.state_name st) = Some st))
    [ S.Health.Starting; S.Health.Ready; S.Health.Draining; S.Health.Stopped ];
  Alcotest.(check bool) "summary mentions the state" true
    (String.length (S.Health.summary snap) > 0
    && String.sub (S.Health.summary snap) 0 6 = "state=")

(* ---------------- server behaviour ---------------- *)

let test_serve_basic () =
  let t = Lazy.force pipeline in
  let decoder = V.Pipeline.retrieval_decoder t in
  match S.Server.create ~config:tcfg t ~target ~decoder with
  | Error e -> Alcotest.failf "create failed: %s" e
  | Ok srv ->
      let fname = List.hd (fnames t) in
      let r1 = S.Server.request srv (mk fname) in
      expect_done r1;
      (* a repeat is served from the completed table, bit-identically *)
      let r2 = S.Server.request srv (mk fname) in
      Alcotest.(check bool) "idempotent repeat" true (r1 = r2);
      (* bad requests are typed, not crashes *)
      (match S.Server.submit srv { (mk fname) with S.Proto.rq_target = "ARM" } with
      | Error (S.Proto.Bad_request _) -> ()
      | _ -> Alcotest.fail "wrong target must be a bad request");
      (match S.Server.submit srv (mk "noSuchFunction") with
      | Error (S.Proto.Bad_request _) -> ()
      | _ -> Alcotest.fail "unknown function must be a bad request");
      let h = S.Server.health srv in
      Alcotest.(check bool) "ready, admissions counted" true
        (h.S.Health.h_state = S.Health.Ready
        && h.S.Health.h_accepted = 2
        && h.S.Health.h_rejected = 2);
      Alcotest.(check int) "one function generated" 1
        (List.length (S.Server.functions srv));
      S.Server.drain srv;
      (* counters are only quiescent once the workers have joined *)
      let h = S.Server.health srv in
      Alcotest.(check bool) "stopped after drain, nothing in flight" true
        (h.S.Health.h_state = S.Health.Stopped
        && h.S.Health.h_completed = 2
        && h.S.Health.h_journal_lag = 0)

let test_queue_full_shedding () =
  let t = Lazy.force pipeline in
  let decoder = V.Pipeline.retrieval_decoder t in
  let cfg = { tcfg with S.Server.queue_cap = 2 } in
  match S.Server.create ~config:cfg ~paused:true t ~target ~decoder with
  | Error e -> Alcotest.failf "create failed: %s" e
  | Ok srv ->
      let names = fnames t in
      let submit i = S.Server.submit srv (mk (List.nth names i)) in
      let r0 = submit 0 and r1 = submit 1 and r2 = submit 2 and r3 = submit 3 in
      Alcotest.(check bool) "first two admitted" true
        (Result.is_ok r0 && Result.is_ok r1);
      (match (r2, r3) with
      | ( Error (S.Proto.Queue_full { cap = 2; _ }),
          Error (S.Proto.Queue_full { cap = 2; _ }) ) ->
          ()
      | _ -> Alcotest.fail "overflow must shed with the queue's cap");
      Alcotest.(check int) "sheds counted" 2
        (S.Server.health srv).S.Health.h_rejected;
      S.Server.resume_workers srv;
      List.iter
        (function Ok tk -> expect_done (S.Server.await tk) | Error _ -> ())
        [ r0; r1 ];
      S.Server.drain srv;
      let h = S.Server.health srv in
      Alcotest.(check bool) "accepted + shed accounted" true
        (h.S.Health.h_accepted = 2 && h.S.Health.h_rejected = 2
        && h.S.Health.h_completed = 2)

let test_budget_exhausted () =
  let t = Lazy.force pipeline in
  let decoder = V.Pipeline.retrieval_decoder t in
  let cfg = { tcfg with S.Server.client_burst = 2.0; client_rate = 0.0 } in
  match S.Server.create ~config:cfg ~paused:true t ~target ~decoder with
  | Error e -> Alcotest.failf "create failed: %s" e
  | Ok srv ->
      let names = fnames t in
      let submit client i = S.Server.submit srv (mk ~client (List.nth names i)) in
      Alcotest.(check bool) "burst admits" true
        (Result.is_ok (submit "greedy" 0) && Result.is_ok (submit "greedy" 1));
      (match submit "greedy" 2 with
      | Error (S.Proto.Budget_exhausted { client = "greedy" }) -> ()
      | _ -> Alcotest.fail "third request must exhaust the client budget");
      (* the budget is per client: others are unaffected *)
      (match submit "patient" 2 with
      | Ok _ -> ()
      | Error r ->
          Alcotest.failf "other client rejected: %s" (S.Proto.reject_to_string r));
      S.Server.resume_workers srv;
      S.Server.drain srv

let test_deadline_degrade () =
  let t = Lazy.force pipeline in
  let decoder = V.Pipeline.retrieval_decoder t in
  let now = ref 0.0 in
  let inj = R.Inject.create ~seed:13 ~every:1 R.Inject.Decoder_stall in
  let stalling =
    R.Inject.wrap_stalling_decoder inj ~stall:(fun () -> now := !now +. 1.0)
      decoder
  in
  let cfg = { tcfg with S.Server.deadline_ms = 50 } in
  match
    S.Server.create ~config:cfg
      ~now:(fun () -> !now)
      ~sleep:(fun d -> now := !now +. d)
      ~fallback:decoder t ~target ~decoder:stalling
  with
  | Error e -> Alcotest.failf "create failed: %s" e
  | Ok srv ->
      let names = fnames t in
      let replies =
        List.map
          (fun i -> S.Server.request srv (mk (List.nth names i)))
          [ 0; 1; 2 ]
      in
      List.iter expect_done replies;
      Alcotest.(check bool) "statements degraded under the deadline" true
        (List.exists
           (function S.Proto.Done d -> d.r_degraded > 0 | _ -> false)
           replies);
      (* every surviving statement respects its rung's confidence cap *)
      List.iter
        (fun (gf : V.Generate.gen_func) ->
          List.iter
            (fun (s : V.Generate.gen_stmt) ->
              Alcotest.(check bool) "score under rung cap" true
                (s.V.Generate.g_score
                <= R.Degrade.cap s.V.Generate.g_level +. 1e-9))
            gf.V.Generate.gf_stmts)
        (S.Server.functions srv);
      Alcotest.(check bool) "supervisor deadline fired" true
        ((S.Server.health srv).S.Health.h_deadline_hits > 0);
      S.Server.drain srv

let test_expired_in_queue () =
  let t = Lazy.force pipeline in
  let decoder = V.Pipeline.retrieval_decoder t in
  let now = ref 0.0 in
  let inj = R.Inject.create ~seed:13 ~every:1 R.Inject.Decoder_stall in
  let stalling =
    R.Inject.wrap_stalling_decoder inj ~stall:(fun () -> now := !now +. 1.0)
      decoder
  in
  let cfg = { tcfg with S.Server.deadline_ms = 50 } in
  match
    S.Server.create ~config:cfg ~paused:true
      ~now:(fun () -> !now)
      ~sleep:(fun d -> now := !now +. d)
      ~fallback:decoder t ~target ~decoder:stalling
  with
  | Error e -> Alcotest.failf "create failed: %s" e
  | Ok srv -> (
      let fname = List.hd (fnames t) in
      (* two requests queue up; executing the first burns far more than
         50ms of (virtual) clock, so the second expires while queued *)
      match (S.Server.submit srv (mk fname), S.Server.submit srv (mk fname)) with
      | Ok k1, Ok k2 ->
          S.Server.resume_workers srv;
          expect_done (S.Server.await k1);
          (match S.Server.await k2 with
          | S.Proto.Rejected (S.Proto.Expired { waited_ms }) ->
              Alcotest.(check bool) "waited at least the deadline" true
                (waited_ms >= 50)
          | r ->
              Alcotest.failf "expected expiry, got %s"
                (S.Proto.encode_reply r));
          S.Server.drain srv
      | _ -> Alcotest.fail "both submits must be admitted")

let test_drain_stops_admission () =
  let t = Lazy.force pipeline in
  let decoder = V.Pipeline.retrieval_decoder t in
  match S.Server.create ~config:tcfg t ~target ~decoder with
  | Error e -> Alcotest.failf "create failed: %s" e
  | Ok srv ->
      expect_done (S.Server.request srv (mk (List.hd (fnames t))));
      S.Server.drain srv;
      (match S.Server.submit srv (mk (List.hd (fnames t))) with
      | Error S.Proto.Draining -> ()
      | _ -> Alcotest.fail "a drained server must refuse admission");
      (* drain is idempotent *)
      S.Server.drain srv;
      let h = S.Server.health srv in
      Alcotest.(check bool) "stopped, empty, idle" true
        (h.S.Health.h_state = S.Health.Stopped
        && h.S.Health.h_queue_depth = 0
        && h.S.Health.h_busy = 0)

let test_drain_resume_bit_identity () =
  let t = Lazy.force pipeline in
  let decoder = V.Pipeline.retrieval_decoder t in
  let names = fnames t in
  (* reference: an ephemeral server, every function *)
  let expect =
    match S.Server.create ~config:tcfg t ~target ~decoder with
    | Error e -> Alcotest.failf "reference create failed: %s" e
    | Ok srv ->
        List.iter (fun f -> expect_done (S.Server.request srv (mk f))) names;
        let r = Test_durable.render (S.Server.functions srv) in
        S.Server.drain srv;
        r
  in
  let dir = fresh_dir "drain" in
  (match S.Server.create ~config:tcfg ~run_dir:dir t ~target ~decoder with
  | Error e -> Alcotest.failf "durable create failed: %s" e
  | Ok srv ->
      List.iter (fun f -> expect_done (S.Server.request srv (mk f))) names;
      S.Server.drain srv;
      Alcotest.(check bool) "drain leaves a checkpoint" true
        (Result.is_ok
           (R.Checkpoint.load ~path:(V.Pipeline.checkpoint_path dir))));
  (* a fresh (non-resume) server must refuse the populated run dir *)
  (match S.Server.create ~config:tcfg ~run_dir:dir t ~target ~decoder with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "fresh server over an existing journal accepted");
  match S.Server.create ~config:tcfg ~run_dir:dir ~resume:true t ~target ~decoder with
  | Error e -> Alcotest.failf "resume create failed: %s" e
  | Ok srv ->
      Alcotest.(check int) "everything restored from the journal"
        (List.length names)
        (S.Server.resumed_functions srv);
      (* a restored function replies from the journal, flagged resumed *)
      (match S.Server.request srv (mk (List.hd names)) with
      | S.Proto.Done d ->
          Alcotest.(check bool) "flagged resumed" true d.r_resumed
      | r -> Alcotest.failf "resumed request failed: %s" (S.Proto.encode_reply r));
      Alcotest.(check string) "bit-identical across drain + restart" expect
        (Test_durable.render (S.Server.functions srv));
      S.Server.drain srv

(* ---------------- socket transport ---------------- *)

let sock_path =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "vega_s%d_%d.sock" (Unix.getpid ()) !n)

let test_sock_parity () =
  let t = Lazy.force pipeline in
  let decoder = V.Pipeline.retrieval_decoder t in
  match S.Server.create ~config:tcfg t ~target ~decoder with
  | Error e -> Alcotest.failf "create failed: %s" e
  | Ok srv ->
      let socket = sock_path () in
      let l = S.Sock.start srv ~path:socket in
      Alcotest.(check bool) "pings" true (S.Sock.ping ~socket);
      let fname = List.hd (fnames t) in
      (* the same request through both surfaces must answer identically *)
      let in_proc = S.Server.request srv (mk fname) in
      expect_done in_proc;
      let over_sock = S.Sock.request ~socket (mk fname) in
      Alcotest.(check bool) "in-process and socket replies identical" true
        (in_proc = over_sock);
      (match S.Sock.health ~socket with
      | None -> Alcotest.fail "no health over the socket"
      | Some h ->
          let h' = S.Server.health srv in
          (* compare fields that are quiescent between requests; the
             completed counter trails reply delivery by one lock hop *)
          Alcotest.(check bool) "socket health matches in-process" true
            (h.S.Health.h_state = h'.S.Health.h_state
            && h.S.Health.h_accepted = h'.S.Health.h_accepted
            && h.S.Health.h_queue_cap = h'.S.Health.h_queue_cap
            && h.S.Health.h_domains = h'.S.Health.h_domains));
      (* drain over the socket stops the daemon and the listener *)
      (match S.Sock.drain ~socket with
      | Some h ->
          Alcotest.(check bool) "drained state reported" true
            (h.S.Health.h_state = S.Health.Stopped)
      | None -> Alcotest.fail "no drain reply");
      S.Sock.wait l;
      Alcotest.(check bool) "socket file removed" false (Sys.file_exists socket)

let test_sock_bad_lines () =
  let t = Lazy.force pipeline in
  let decoder = V.Pipeline.retrieval_decoder t in
  match S.Server.create ~config:tcfg t ~target ~decoder with
  | Error e -> Alcotest.failf "create failed: %s" e
  | Ok srv ->
      let socket = sock_path () in
      let l = S.Sock.start srv ~path:socket in
      let send_raw line =
        S.Sock.with_conn ~socket (fun fd ->
            S.Sock.write_line fd line;
            match S.Sock.read_bounded_line fd with
            | `Line reply -> S.Proto.decode_reply reply
            | `Eof | `Oversize _ -> S.Proto.Malformed)
      in
      (* an unparseable line gets a typed bad-request, not a hang *)
      (match send_raw "complete garbage" with
      | S.Proto.Decoded (S.Proto.Rejected (S.Proto.Bad_request _)) -> ()
      | _ -> Alcotest.fail "garbage line must answer bad-request");
      (* a multi-megabyte line is rejected with bounded allocation *)
      (match send_raw (String.make (2 * 1024 * 1024) 'A') with
      | S.Proto.Decoded (S.Proto.Rejected (S.Proto.Oversize { limit; _ })) ->
          Alcotest.(check int) "limit reported" S.Sock.max_line_bytes limit
      | _ -> Alcotest.fail "oversize line must answer oversize");
      (* a well-formed line from a future protocol version gets the
         typed version rejection, not a parse fault *)
      (match send_raw (S.Proto.encode_command_at ~version:99 S.Proto.Cping) with
      | S.Proto.Decoded
          (S.Proto.Rejected (S.Proto.Version_mismatch { got; want })) ->
          Alcotest.(check int) "peer version echoed" 99 got;
          Alcotest.(check int) "server version reported" S.Proto.version want
      | _ -> Alcotest.fail "version-skewed line must answer version-mismatch");
      (* a shard-status probe against a plain server is a typed no *)
      (match send_raw (S.Proto.encode_command S.Proto.Cshards) with
      | S.Proto.Decoded (S.Proto.Rejected (S.Proto.Bad_request _)) -> ()
      | _ -> Alcotest.fail "Cshards on a plain server must answer bad-request");
      (* the server survives all of it *)
      expect_done (S.Sock.request ~socket (mk (List.hd (fnames t))));
      ignore (S.Sock.drain ~socket);
      S.Sock.wait l

(* Partial-write hardening: push a line much larger than the socket
   buffers through a socketpair shrunk to a few kB — write_line must
   loop over the short writes single_write returns, and the reader must
   reassemble the exact line. *)
let test_sock_partial_writes () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt_int a Unix.SO_SNDBUF 4096;
     Unix.setsockopt_int b Unix.SO_RCVBUF 4096
   with Unix.Unix_error _ -> ());
  let payload =
    String.init 300_000 (fun i ->
        Char.chr (32 + ((i * 131) mod 90)) (* printable, no '\n' *))
  in
  let writer =
    Domain.spawn (fun () ->
        S.Sock.write_line a payload;
        S.Sock.write_line a "tail";
        Unix.close a)
  in
  (match S.Sock.read_bounded_line b with
  | `Line got ->
      Alcotest.(check int) "length preserved" (String.length payload)
        (String.length got);
      Alcotest.(check bool) "payload byte-identical" true (got = payload)
  | `Eof -> Alcotest.fail "eof before the big line arrived"
  | `Oversize _ -> Alcotest.fail "big line misread as oversize");
  (match S.Sock.read_bounded_line b with
  | `Line got -> Alcotest.(check string) "next line intact" "tail" got
  | _ -> Alcotest.fail "second line lost after the big write");
  Domain.join writer;
  Unix.close b

(* ---------------- worker pool ---------------- *)

let test_pool () =
  let hits = Atomic.make 0 in
  let p =
    Vega_util.Par.Pool.spawn ~domains:3 (fun w ->
        Atomic.fetch_and_add hits (1 lsl (8 * w)) |> ignore)
  in
  Alcotest.(check int) "pool size" 3 (Vega_util.Par.Pool.size p);
  Vega_util.Par.Pool.join p;
  Alcotest.(check int) "every worker ran exactly once" 0x010101
    (Atomic.get hits);
  (* a worker exception surfaces at join, lowest index first *)
  let p2 =
    Vega_util.Par.Pool.spawn ~domains:2 (fun w ->
        if w = 1 then failwith "worker 1 died")
  in
  match Vega_util.Par.Pool.join p2 with
  | () -> Alcotest.fail "expected the worker failure to surface"
  | exception Failure m -> Alcotest.(check string) "failure text" "worker 1 died" m

let suite =
  [
    Alcotest.test_case "token bucket" `Quick test_bucket;
    Alcotest.test_case "admission queue" `Quick test_admission;
    Alcotest.test_case "admission pause/resume" `Quick test_admission_paused;
    Alcotest.test_case "protocol round-trip" `Quick test_proto_roundtrip;
    Alcotest.test_case "protocol version skew" `Quick test_proto_version_skew;
    Alcotest.test_case "health wire format" `Quick test_health_wire;
    Alcotest.test_case "serve basic + idempotent" `Quick test_serve_basic;
    Alcotest.test_case "queue-full shedding" `Quick test_queue_full_shedding;
    Alcotest.test_case "per-client budget" `Quick test_budget_exhausted;
    Alcotest.test_case "deadline degrades via ladder" `Quick
      test_deadline_degrade;
    Alcotest.test_case "expiry while queued" `Quick test_expired_in_queue;
    Alcotest.test_case "drain stops admission" `Quick test_drain_stops_admission;
    Alcotest.test_case "drain/resume bit-identity" `Quick
      test_drain_resume_bit_identity;
    Alcotest.test_case "socket parity" `Quick test_sock_parity;
    Alcotest.test_case "socket bad lines" `Quick test_sock_bad_lines;
    Alcotest.test_case "socket partial writes" `Quick test_sock_partial_writes;
    Alcotest.test_case "worker pool" `Quick test_pool;
  ]
