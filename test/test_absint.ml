(* Tests for the abstract-interpretation verifier (vega.absint): lattice
   laws and fixpoint termination under widening (qcheck), the zero
   false-positive sweep over every reference backend, seeded semantic
   defects caught by the intended VS rule, fault injection (decoder
   garbage, register mangling) surfacing as semantic diagnostics, and
   the confidence cap that routes flagged functions into the Err-PS
   review queue. *)

module AB = Vega_absint
module D = Vega_analysis.Diagnostic
module V = Vega
module R = Vega_robust
module P = Vega_target.Profile

let corpus = lazy (Vega_corpus.Corpus.build ())
let riscv = Vega_target.Registry.riscv

let pipeline =
  lazy
    (let prep = V.Pipeline.prepare ~corpus:(Lazy.force corpus) () in
     let cfg =
       {
         V.Pipeline.test_config with
         train_cfg = { V.Codebe.tiny_train_config with epochs = 0 };
       }
     in
     V.Pipeline.train cfg prep)

let rules ds = List.map (fun (d : D.t) -> d.D.rule) ds
let sem_diags ds = List.filter (fun (d : D.t) -> d.D.cls = D.Sem) ds

let verify ?reference src =
  AB.Verify.verify_source ?reference ~fname:"test" src

let check_rule name rule src =
  let ds = verify src in
  Alcotest.(check bool)
    (Printf.sprintf "%s reports %s (got: %s)" name rule
       (String.concat ", " (rules ds)))
    true
    (List.mem rule (rules ds))

let parse_fn src =
  match Vega_srclang.Parser.parse_function_opt src with
  | Ok f -> f
  | Error m -> Alcotest.failf "test function does not parse: %s" m

(* ------------------------------------------------------------------ *)
(* qcheck: lattice laws per domain                                     *)

let itv_gen =
  QCheck.Gen.(
    frequency
      [
        (1, return AB.Interval.Bot);
        ( 6,
          let bound = frequency [ (1, return None); (3, map Option.some (int_range (-50) 50)) ] in
          map2
            (fun lo hi ->
              match (lo, hi) with
              | Some a, Some b -> AB.Interval.Itv (Some (min a b), Some (max a b))
              | _ -> AB.Interval.Itv (lo, hi))
            bound bound );
      ])

let itv_arb = QCheck.make ~print:(fun _ -> "<itv>") itv_gen

(* containment order on intervals *)
let itv_leq a b =
  match (a, b) with
  | AB.Interval.Bot, _ -> true
  | _, AB.Interval.Bot -> false
  | AB.Interval.Itv (lo1, hi1), AB.Interval.Itv (lo2, hi2) ->
      (match (lo1, lo2) with
      | _, None -> true
      | None, Some _ -> false
      | Some a, Some b -> a >= b)
      &&
      (match (hi1, hi2) with
      | _, None -> true
      | None, Some _ -> false
      | Some a, Some b -> a <= b)

let initv_gen =
  QCheck.Gen.oneofl [ AB.Initdom.Uninit; AB.Initdom.Init; AB.Initdom.Maybe ]

let initv_arb = QCheck.make ~print:(fun _ -> "<initv>") initv_gen

let av_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun r -> AB.Regdom.Orig r) (int_range 0 15);
        map (fun c -> AB.Regdom.Const c) (int_range (-8) 8);
        map (fun o -> AB.Regdom.Stack (Some o)) (int_range (-16) 16);
        return (AB.Regdom.Stack None);
        return AB.Regdom.Other;
      ])

let av_arb = QCheck.make ~print:(fun _ -> "<av>") av_gen

let qcheck_props =
  List.map QCheck_alcotest.to_alcotest
    [
      QCheck.Test.make ~name:"interval join commutative" ~count:500
        (QCheck.pair itv_arb itv_arb)
        (fun (a, b) -> AB.Interval.join_itv a b = AB.Interval.join_itv b a);
      QCheck.Test.make ~name:"interval join idempotent" ~count:200 itv_arb
        (fun a -> AB.Interval.join_itv a a = a);
      QCheck.Test.make ~name:"interval join is an upper bound" ~count:500
        (QCheck.pair itv_arb itv_arb)
        (fun (a, b) ->
          let j = AB.Interval.join_itv a b in
          itv_leq a j && itv_leq b j);
      QCheck.Test.make ~name:"interval widen covers join" ~count:500
        (QCheck.pair itv_arb itv_arb)
        (fun (a, b) -> itv_leq (AB.Interval.join_itv a b) (AB.Interval.widen_itv a b));
      QCheck.Test.make
        ~name:"interval transfer monotone (add is inclusion-preserving)"
        ~count:500
        (QCheck.pair itv_arb itv_arb)
        (fun (a, b) ->
          QCheck.assume (itv_leq a b);
          itv_leq
            (AB.Interval.add_itv a (AB.Interval.const 1))
            (AB.Interval.add_itv b (AB.Interval.const 1)));
      QCheck.Test.make ~name:"initdom join commutative+idempotent" ~count:100
        (QCheck.pair initv_arb initv_arb)
        (fun (a, b) ->
          AB.Initdom.join_v a b = AB.Initdom.join_v b a
          && AB.Initdom.join_v a a = a);
      QCheck.Test.make ~name:"regdom join commutative+idempotent" ~count:500
        (QCheck.pair av_arb av_arb)
        (fun (a, b) ->
          AB.Regdom.join_av a b = AB.Regdom.join_av b a
          && AB.Regdom.join_av a a = a);
    ]

(* ------------------------------------------------------------------ *)
(* qcheck: fixpoint termination under widening on random small CFGs    *)

module CounterDom = struct
  type t = AB.Interval.itv

  let bottom = AB.Interval.Bot
  let equal = ( = )
  let join = AB.Interval.join_itv
  let widen = AB.Interval.widen_itv
end

module CF = AB.Fixpoint.Make (CounterDom)

(* random CFG: n nodes, arbitrary forward and backward edges, every
   cycle passing through an index-order loop head *)
let cfg_gen =
  QCheck.Gen.(
    int_range 2 10 >>= fun n ->
    let edge = int_range 0 (n - 1) in
    list_size (int_range 0 (2 * n)) (pair edge edge) >>= fun edges ->
    return (n, edges))

let cfg_arb =
  QCheck.make
    ~print:(fun (n, edges) ->
      Printf.sprintf "%d nodes, edges [%s]" n
        (String.concat "; "
           (List.map (fun (a, b) -> Printf.sprintf "%d->%d" a b) edges)))
    cfg_gen

let build_cfg (n, edges) =
  let succs = Array.make n [] in
  List.iter
    (fun (a, b) -> succs.(a) <- b :: succs.(a))
    ((if n > 1 then [ (0, 1) ] else []) @ edges);
  let t =
    AB.Cfg.create (Array.init n Fun.id) succs ~entry:0 ~exit_:(n - 1)
  in
  AB.Cfg.mark_loop_heads_by_index t;
  t

let fixpoint_props =
  List.map QCheck_alcotest.to_alcotest
    [
      QCheck.Test.make
        ~name:"fixpoint terminates under widening (ascending counter)"
        ~count:300 cfg_arb
        (fun spec ->
          let cfg = build_cfg spec in
          (* the counter strictly ascends around every cycle: without
             widening at loop heads this would climb forever *)
          let r =
            CF.solve cfg
              ~init:(AB.Interval.const 0)
              ~transfer:(fun _node v ->
                AB.Interval.add_itv v (AB.Interval.const 1))
          in
          Array.length r.CF.input = Array.length cfg.AB.Cfg.nodes);
      QCheck.Test.make ~name:"fixpoint inputs are post-fixpoints" ~count:300
        cfg_arb
        (fun spec ->
          let cfg = build_cfg spec in
          let transfer _node v = AB.Interval.add_itv v (AB.Interval.const 1) in
          let r = CF.solve cfg ~init:(AB.Interval.const 0) ~transfer in
          (* every node's input covers every predecessor's output *)
          Array.for_all
            (fun (node : int AB.Cfg.node) ->
              List.for_all
                (fun p -> itv_leq r.CF.output.(p) r.CF.input.(node.AB.Cfg.id))
                node.AB.Cfg.preds)
            cfg.AB.Cfg.nodes);
    ]

(* ------------------------------------------------------------------ *)
(* Zero false positives on the corpus                                  *)

(* Every reference backend verifies clean — AST domains, differential
   summaries against themselves, and register discipline of the code
   the reference backend emits. The verifier's false-positive bar on
   the corpus is zero. *)
let test_references_clean () =
  let vfs = (Lazy.force corpus).Vega_corpus.Corpus.vfs in
  List.iter
    (fun (p : P.t) ->
      let r = AB.Verify.verify_target vfs p in
      if AB.Verify.diag_count r > 0 then
        Alcotest.failf "%s reference backend not semantically clean:\n%s"
          p.P.name
          (String.concat "\n"
             (List.map D.to_string (AB.Verify.report_diags r))))
    Vega_target.Registry.all

(* ------------------------------------------------------------------ *)
(* Seeded defects per domain                                           *)

let test_div_by_zero () =
  check_rule "definite division by zero" "VS-V01"
    "unsigned f(unsigned v) { unsigned d = 0; return v / d; }"

let test_oversized_shift () =
  check_rule "definitely out-of-range shift" "VS-V02"
    "unsigned f(unsigned v) { unsigned s = 70; return v << s; }"

let test_uninitialized_read () =
  check_rule "read of never-assigned local" "VS-I01"
    "unsigned f() { unsigned K; return K; }"

let test_maybe_uninitialized_read () =
  check_rule "read initialized on only one path" "VS-I02"
    {|unsigned f(unsigned c) {
  unsigned x;
  if (c == 0) {
    x = 1;
  }
  return x;
}|}

let gen_ref_pair gen_src ref_src =
  verify ~reference:(parse_fn ref_src) gen_src

let test_differential_disagreement () =
  let ds =
    gen_ref_pair
      {|unsigned f(unsigned Kind) {
  switch (Kind) {
  case RISCV::fixup_riscv_branch:
    return 1;
  default:
    return 0;
  }
}|}
      {|unsigned f(unsigned Kind) {
  switch (Kind) {
  case RISCV::fixup_riscv_branch:
    return 2;
  default:
    return 0;
  }
}|}
  in
  Alcotest.(check bool)
    (Printf.sprintf "VS-M01 on diverging return (got: %s)"
       (String.concat ", " (rules ds)))
    true
    (List.mem "VS-M01" (rules ds));
  (* the agreeing default path must NOT be flagged *)
  Alcotest.(check bool) "exactly one disagreement" true
    (List.length (sem_diags ds) = 1)

let test_differential_fallthrough () =
  let ds =
    gen_ref_pair
      {|unsigned f(unsigned Kind) {
  if (Kind == 0) {
    return 1;
  }
}|}
      {|unsigned f(unsigned Kind) {
  if (Kind == 0) {
    return 1;
  }
  return 2;
}|}
  in
  Alcotest.(check bool)
    (Printf.sprintf "VS-M02 on missing default return (got: %s)"
       (String.concat ", " (rules ds)))
    true
    (List.mem "VS-M02" (rules ds))

(* identical functions never disagree, and loops/effects are excluded
   rather than guessed at (sound-but-incomplete) *)
let test_differential_self_silent () =
  let src =
    {|unsigned f(unsigned Kind) {
  unsigned r = 0;
  for (unsigned i = 0; i < Kind; i += 1) {
    r += i;
  }
  if (Kind == 0) {
    return r;
  }
  return computeWeird(r);
}|}
  in
  let ds = gen_ref_pair src src in
  Alcotest.(check (list string)) "self-comparison is silent" [] (rules ds)

(* ------------------------------------------------------------------ *)
(* Fault injection produces semantic diagnostics                       *)

let test_register_mangle_caught () =
  let vfs = (Lazy.force corpus).Vega_corpus.Corpus.vfs in
  let conv = AB.Verify.conv_for vfs riscv in
  let callee_saved = riscv.P.regs.P.callee_saved in
  let case = List.hd Vega_ir.Programs.regression in
  let out =
    Vega_backend.Compiler.compile conv ~opt:Vega_backend.Compiler.O0
      (Vega_ir.Programs.modul_of case)
  in
  let asm = out.Vega_backend.Compiler.asm in
  (* clean emitted code passes... *)
  Alcotest.(check (list string))
    "unmangled asm is clean" []
    (rules (AB.Regdom.check_asm conv ~callee_saved asm));
  (* ...then delete every restore line from the epilogues *)
  let inj = R.Inject.create ~every:1 ~seed:0 R.Inject.Register_mangle in
  let mangled =
    R.Inject.mangle_asm inj
      ~candidate:(AB.Regdom.restore_line conv ~callee_saved)
      asm
  in
  Alcotest.(check bool) "restore lines were deleted" true
    (R.Inject.injected inj > 0);
  let ds = AB.Regdom.check_asm conv ~callee_saved mangled in
  Alcotest.(check bool)
    (Printf.sprintf "mangled asm flagged (got: %s)"
       (String.concat ", " (rules ds)))
    true
    (List.exists
       (fun r -> r = "VS-R01" || r = "VS-R03")
       (rules ds));
  Alcotest.(check bool) "all diagnostics are semantic" true
    (List.length (sem_diags ds) = List.length ds)

let test_decoder_garbage_caught () =
  let t = Lazy.force pipeline in
  let decoder = V.Pipeline.retrieval_decoder t in
  let inj = R.Inject.create ~every:1 ~seed:13 R.Inject.Decoder_garbage in
  let wrapped = R.Inject.wrap_decoder inj decoder in
  (* garbage every decode of one statement slot per column: the
     signature survives so the kept source still parses, but the
     poisoned statements degrade (no fallback) to template defaults or
     omissions and the function's meaning diverges from the reference *)
  let faulty (fv : V.Featrep.fv) =
    if fv.V.Featrep.line = 1 then wrapped fv else decoder fv
  in
  let gfs = V.Pipeline.generate_backend t ~target:"RISCV" ~decoder:faulty in
  Alcotest.(check bool) "garbage was injected" true (R.Inject.injected inj > 0);
  let sem_total =
    List.fold_left
      (fun acc (gf : V.Generate.gen_func) ->
        let spec =
          List.find_map
            (fun (b : V.Pipeline.bundle) ->
              if b.V.Pipeline.spec.Vega_corpus.Spec.fname = gf.V.Generate.gf_fname
              then Some b.V.Pipeline.spec
              else None)
            t.V.Pipeline.prep.V.Pipeline.bundles
        in
        match spec with
        | None -> acc
        | Some spec -> (
            match Vega_corpus.Corpus.reference_inlined spec riscv with
            | None -> acc
            | Some reference ->
                let ds =
                  AB.Verify.verify_source ~reference
                    ~fname:gf.V.Generate.gf_fname
                    (V.Generate.source_of gf)
                in
                acc + List.length (sem_diags ds)))
      0 gfs
  in
  Alcotest.(check bool)
    (Printf.sprintf "decoder garbage yields semantic diagnostics (got %d)"
       sem_total)
    true (sem_total >= 1)

(* ------------------------------------------------------------------ *)
(* Confidence cap and the Err-PS queue                                 *)

let mk_gf ~fname ~confidence =
  {
    V.Generate.gf_fname = fname;
    gf_module = List.hd Vega_target.Module_id.all;
    gf_target = "RISCV";
    gf_confidence = confidence;
    gf_stmts = [];
  }

let test_semantic_verdict_caps_confidence () =
  (* a real semantic disagreement... *)
  let ds =
    gen_ref_pair "unsigned f(unsigned c) { return 1; }"
      "unsigned f(unsigned c) { return 2; }"
  in
  let sem_errors = AB.Verify.sem_errors ds in
  Alcotest.(check bool) "disagreement found" true (sem_errors >= 1);
  (* ...caps an otherwise-confident function below the accept threshold *)
  let gf = mk_gf ~fname:"f" ~confidence:0.97 in
  let gf' = V.Generate.apply_verdict gf ~sem_errors in
  Alcotest.(check bool)
    (Printf.sprintf "confidence capped below threshold (%.2f)"
       gf'.V.Generate.gf_confidence)
    true
    (gf'.V.Generate.gf_confidence < V.Confidence.threshold);
  Alcotest.(check bool) "cap honours the semantic ceiling" true
    (gf'.V.Generate.gf_confidence <= V.Confidence.semantic_cap +. 1e-9);
  (* zero errors is the identity *)
  let same = V.Generate.apply_verdict gf ~sem_errors:0 in
  Alcotest.(check (float 1e-9)) "no errors, no cap" 0.97
    same.V.Generate.gf_confidence;
  (* more errors push the function further down the review queue *)
  let worse = V.Generate.apply_verdict gf ~sem_errors:(sem_errors + 3) in
  Alcotest.(check bool) "more errors rank lower" true
    (worse.V.Generate.gf_confidence < gf'.V.Generate.gf_confidence)

let test_errps_queue_order () =
  let clean = mk_gf ~fname:"clean" ~confidence:0.9 in
  let flagged =
    V.Generate.apply_verdict (mk_gf ~fname:"flagged" ~confidence:0.95)
      ~sem_errors:2
  in
  (* the Err-PS review queue is ordered by ascending confidence: the
     semantically-flagged function must surface first *)
  let queue =
    List.sort
      (fun (a : V.Generate.gen_func) b ->
        compare a.V.Generate.gf_confidence b.V.Generate.gf_confidence)
      [ clean; flagged ]
  in
  Alcotest.(check string) "flagged function heads the queue" "flagged"
    (List.hd queue).V.Generate.gf_fname;
  Alcotest.(check bool) "flagged function is below threshold" true
    ((List.hd queue).V.Generate.gf_confidence < V.Confidence.threshold)

(* ------------------------------------------------------------------ *)
(* Diagnostic dedupe and stable order (lint satellite)                 *)

let test_dedup_overlapping_spans () =
  let span line col = { Vega_srclang.Span.line; col } in
  let mk ~rule ~span:sp msg =
    D.make ~rule ~cls:D.Sem ~severity:D.Error ~fname:"f" ~span:sp msg
  in
  let d1 = mk ~rule:"VS-M01" ~span:(span 4 1) "a" in
  let d2 = mk ~rule:"VS-I01" ~span:(span 4 1) "b" in
  let d3 = mk ~rule:"VS-M01" ~span:(span 2 7) "c" in
  (* duplicates collapse; survivors sort by span, then rule id *)
  let out = D.dedup [ d1; d2; d1; d3; d2; d1 ] in
  Alcotest.(check int) "duplicates collapsed" 3 (List.length out);
  Alcotest.(check (list string)) "span-then-rule order"
    [ "VS-M01"; "VS-I01"; "VS-M01" ]
    (rules out);
  Alcotest.(check (list string)) "stable under re-dedup"
    (rules out)
    (rules (D.dedup out))

let suite =
  [
    ("references verify clean (zero FP sweep)", `Slow, test_references_clean);
    ("VS-V01 division by zero", `Quick, test_div_by_zero);
    ("VS-V02 oversized shift", `Quick, test_oversized_shift);
    ("VS-I01 uninitialized read", `Quick, test_uninitialized_read);
    ("VS-I02 maybe-uninitialized read", `Quick, test_maybe_uninitialized_read);
    ("VS-M01 differential disagreement", `Quick, test_differential_disagreement);
    ("VS-M02 differential fallthrough", `Quick, test_differential_fallthrough);
    ("differential self-comparison silent", `Quick, test_differential_self_silent);
    ("register mangling caught", `Slow, test_register_mangle_caught);
    ("decoder garbage caught", `Slow, test_decoder_garbage_caught);
    ( "semantic verdict caps confidence",
      `Quick,
      test_semantic_verdict_caps_confidence );
    ("Err-PS queue order", `Quick, test_errps_queue_order);
    ("diagnostic dedupe + stable order", `Quick, test_dedup_overlapping_spans);
  ]
  @ qcheck_props @ fixpoint_props
