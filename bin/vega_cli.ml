(* vega-cli: command-line front end to the reproduction.

     vega-cli stats
     vega-cli generate -t RISCV -f getRelocType [--model]
     vega-cli backend -t XCore [--model]      generate + pass@1 the backend
     vega-cli lint -t RISCV [--generated]     static-analyze a backend
     vega-cli compile -t ARM -p fib -o O3 [--run]                          *)

open Cmdliner

let mk_pipeline ~model =
  let prep = Vega.Pipeline.prepare () in
  let cfg =
    if model then Vega.Pipeline.default_config
    else
      {
        Vega.Pipeline.default_config with
        train_cfg = { Vega.Codebe.tiny_train_config with epochs = 0 };
      }
  in
  let t = Vega.Pipeline.train cfg prep in
  let decoder =
    if model then Vega.Pipeline.model_decoder t
    else Vega.Pipeline.retrieval_decoder t
  in
  (t, decoder)

let target_arg =
  let doc = "Target name (RISCV, RI5CY, XCore, or any training target)." in
  Arg.(value & opt string "RISCV" & info [ "t"; "target" ] ~doc)

let model_flag =
  let doc = "Fine-tune the CodeBE transformer (minutes); default uses the \
             fast retrieval decoder." in
  Arg.(value & flag & info [ "model" ] ~doc)

let stats_cmd =
  let run () =
    let corpus = Vega_corpus.Corpus.build () in
    let g, f, s = Vega_corpus.Corpus.stats corpus in
    Printf.printf
      "targets: %d training + %d held-out\n\
       function groups: %d\nfunctions: %d\nstatements: %d\n\
       description files: %d\n"
      (List.length Vega_target.Registry.training)
      (List.length Vega_target.Registry.held_out)
      g f s
      (Vega_tdlang.Vfs.size corpus.Vega_corpus.Corpus.vfs)
  in
  Cmd.v (Cmd.info "stats" ~doc:"Corpus statistics")
    Term.(const run $ const ())

let generate_cmd =
  let fname_arg =
    Arg.(value & opt string "getRelocType" & info [ "f"; "function" ]
           ~doc:"Interface function to generate.")
  in
  let run target fname model =
    let t, decoder = mk_pipeline ~model in
    match Vega.Pipeline.generate_function t ~target ~decoder ~fname with
    | Some gf ->
        Printf.printf "// confidence %.2f\n%s\n" gf.Vega.Generate.gf_confidence
          (Vega.Generate.source_of gf)
    | None ->
        Printf.eprintf "no function template named %s\n" fname;
        exit 1
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate one interface function for a target")
    Term.(const run $ target_arg $ fname_arg $ model_flag)

let backend_cmd =
  let run target model =
    let t, decoder = mk_pipeline ~model in
    match Vega_target.Registry.find target with
    | None ->
        Printf.eprintf "unknown target %s\n" target;
        exit 1
    | Some p ->
        let te = Vega_eval.Metrics.evaluate_target t ~decoder p () in
        Printf.printf "%s backend: %d functions, pass@1 %.1f%%, stmt %.1f%%\n"
          target
          (List.length te.Vega_eval.Metrics.te_fns)
          (100.0 *. Vega_eval.Metrics.fn_accuracy te.Vega_eval.Metrics.te_fns)
          (100.0 *. Vega_eval.Metrics.stmt_accuracy te.Vega_eval.Metrics.te_fns);
        List.iter
          (fun (f : Vega_eval.Metrics.fn_eval) ->
            Printf.printf "  %s %-6s %-28s conf %.2f%s\n"
              (if f.fe_pass then "ok  " else "FAIL")
              (Vega_target.Module_id.name f.fe_module)
              f.fe_fname f.fe_confidence
              (match f.fe_failure with
              | Some m when not f.fe_pass -> "  [" ^ m ^ "]"
              | _ -> ""))
          te.Vega_eval.Metrics.te_fns
  in
  Cmd.v
    (Cmd.info "backend"
       ~doc:"Generate a whole backend and run pass@1 on every function")
    Term.(const run $ target_arg $ model_flag)

let lint_cmd =
  let generated_flag =
    Arg.(
      value & flag
      & info [ "generated" ]
          ~doc:
            "Lint the functions the pipeline generates for the target \
             (retrieval decoder) instead of the reference backend.")
  in
  let run target generated =
    let p =
      match Vega_target.Registry.find target with
      | Some p -> p
      | None ->
          Printf.eprintf "unknown target %s\n" target;
          exit 1
    in
    let print_report (r : Vega_analysis.Lint.report) =
      Printf.printf "target %s: %d function(s) linted, %d diagnostic(s)\n"
        r.Vega_analysis.Lint.r_target
        (List.length r.Vega_analysis.Lint.r_funcs)
        (Vega_analysis.Lint.diag_count r);
      List.iter
        (fun (fr : Vega_analysis.Lint.func_report) ->
          List.iter
            (fun d ->
              print_endline ("  " ^ Vega_analysis.Diagnostic.to_string d))
            fr.Vega_analysis.Lint.fr_diags)
        r.Vega_analysis.Lint.r_funcs;
      exit (if Vega_analysis.Lint.error_count r > 0 then 1 else 0)
    in
    if not generated then begin
      let corpus = Vega_corpus.Corpus.build () in
      print_report
        (Vega_analysis.Lint.lint_target corpus.Vega_corpus.Corpus.vfs p)
    end
    else begin
      let t, decoder = mk_pipeline ~model:false in
      let vfs = t.Vega.Pipeline.prep.Vega.Pipeline.corpus.Vega_corpus.Corpus.vfs in
      let tab = Vega_analysis.Lint.symtab vfs p in
      let funcs =
        List.filter_map
          (fun (b : Vega.Pipeline.bundle) ->
            let spec = b.Vega.Pipeline.spec in
            if not (spec.Vega_corpus.Spec.applies p) then None
            else
              let gf =
                Vega.Generate.run t.Vega.Pipeline.prep.Vega.Pipeline.ctx
                  b.Vega.Pipeline.tpl b.Vega.Pipeline.analysis
                  b.Vega.Pipeline.hints ~target
                  ~decoder
              in
              Some
                {
                  Vega_analysis.Lint.fr_fname = spec.Vega_corpus.Spec.fname;
                  fr_diags =
                    Vega_analysis.Lint.lint_generated tab b.Vega.Pipeline.tpl gf;
                })
          t.Vega.Pipeline.prep.Vega.Pipeline.bundles
      in
      print_report { Vega_analysis.Lint.r_target = target; r_funcs = funcs }
    end
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Static-analyze a backend (parse/shape, symbols, dataflow, \
          interface conformance); non-zero exit on errors")
    Term.(const run $ target_arg $ generated_flag)

let compile_cmd =
  let prog_arg =
    Arg.(value & opt string "loop_sum" & info [ "p"; "program" ]
           ~doc:"VIR program name from the built-in suites.")
  in
  let opt_arg =
    Arg.(value & opt string "O3" & info [ "o"; "opt" ] ~doc:"O0 or O3.")
  in
  let run_flag =
    Arg.(value & flag & info [ "run" ] ~doc:"Simulate after compiling.")
  in
  let run target prog optlevel do_run =
    let case =
      match Vega_ir.Programs.find prog with
      | Some c -> c
      | None ->
          Printf.eprintf "unknown program %s\n" prog;
          exit 1
    in
    let p =
      match Vega_target.Registry.find target with
      | Some p -> p
      | None ->
          Printf.eprintf "unknown target %s\n" target;
          exit 1
    in
    let corpus = Vega_corpus.Corpus.build () in
    let _, conv =
      Vega_eval.Refbackend.backend_for corpus.Vega_corpus.Corpus.vfs p
    in
    let opt =
      if optlevel = "O0" then Vega_backend.Compiler.O0 else Vega_backend.Compiler.O3
    in
    let out = Vega_backend.Compiler.compile conv ~opt (Vega_ir.Programs.modul_of case) in
    print_string out.Vega_backend.Compiler.asm;
    if do_run then begin
      let r =
        Vega_sim.Machine.run conv out.Vega_backend.Compiler.emitted
          ~entry:case.Vega_ir.Programs.entry ~args:case.Vega_ir.Programs.args
      in
      Printf.printf "\noutput: [%s]  cycles: %d\n"
        (String.concat "; " (List.map string_of_int r.Vega_sim.Machine.output))
        r.Vega_sim.Machine.cycles
    end
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile a VIR program with the base compiler")
    Term.(const run $ target_arg $ prog_arg $ opt_arg $ run_flag)

let () =
  let doc = "VEGA: automatically generating compiler backends (reproduction)" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "vega-cli" ~doc)
          [ stats_cmd; generate_cmd; backend_cmd; lint_cmd; compile_cmd ]))
