(* vega-cli: command-line front end to the reproduction.

     vega-cli stats
     vega-cli generate -t RISCV -f getRelocType [--model]
     vega-cli backend -t XCore [--model]      generate + pass@1 the backend
     vega-cli lint -t RISCV [--generated]     static-analyze a backend
     vega-cli faultcheck [-t T] [--seed N]    fault-injection matrix
     vega-cli compile -t ARM -p fib -o O3 [--run]                          *)

open Cmdliner

let mk_pipeline ~model =
  let prep = Vega.Pipeline.prepare () in
  let cfg =
    if model then Vega.Pipeline.default_config
    else
      {
        Vega.Pipeline.default_config with
        train_cfg = { Vega.Codebe.tiny_train_config with epochs = 0 };
      }
  in
  let t = Vega.Pipeline.train cfg prep in
  let decoder =
    if model then Vega.Pipeline.model_decoder t
    else Vega.Pipeline.retrieval_decoder t
  in
  (t, decoder)

let target_arg =
  let doc = "Target name (RISCV, RI5CY, XCore, or any training target)." in
  Arg.(value & opt string "RISCV" & info [ "t"; "target" ] ~doc)

let model_flag =
  let doc = "Fine-tune the CodeBE transformer (minutes); default uses the \
             fast retrieval decoder." in
  Arg.(value & flag & info [ "model" ] ~doc)

let stats_cmd =
  let run () =
    let corpus = Vega_corpus.Corpus.build () in
    let g, f, s = Vega_corpus.Corpus.stats corpus in
    Printf.printf
      "targets: %d training + %d held-out\n\
       function groups: %d\nfunctions: %d\nstatements: %d\n\
       description files: %d\n"
      (List.length Vega_target.Registry.training)
      (List.length Vega_target.Registry.held_out)
      g f s
      (Vega_tdlang.Vfs.size corpus.Vega_corpus.Corpus.vfs)
  in
  Cmd.v (Cmd.info "stats" ~doc:"Corpus statistics")
    Term.(const run $ const ())

let generate_cmd =
  let fname_arg =
    Arg.(value & opt string "getRelocType" & info [ "f"; "function" ]
           ~doc:"Interface function to generate.")
  in
  let run target fname model =
    let t, decoder = mk_pipeline ~model in
    match Vega.Pipeline.generate_function t ~target ~decoder ~fname with
    | Some gf ->
        Printf.printf "// confidence %.2f\n%s\n" gf.Vega.Generate.gf_confidence
          (Vega.Generate.source_of gf)
    | None ->
        Printf.eprintf "no function template named %s\n" fname;
        exit 1
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate one interface function for a target")
    Term.(const run $ target_arg $ fname_arg $ model_flag)

let backend_cmd =
  let run target model =
    let t, decoder = mk_pipeline ~model in
    match Vega_target.Registry.find target with
    | None ->
        Printf.eprintf "unknown target %s\n" target;
        exit 1
    | Some p ->
        let te = Vega_eval.Metrics.evaluate_target t ~decoder p () in
        Printf.printf "%s backend: %d functions, pass@1 %.1f%%, stmt %.1f%%\n"
          target
          (List.length te.Vega_eval.Metrics.te_fns)
          (100.0 *. Vega_eval.Metrics.fn_accuracy te.Vega_eval.Metrics.te_fns)
          (100.0 *. Vega_eval.Metrics.stmt_accuracy te.Vega_eval.Metrics.te_fns);
        List.iter
          (fun (f : Vega_eval.Metrics.fn_eval) ->
            Printf.printf "  %s %-6s %-28s conf %.2f%s\n"
              (if f.fe_pass then "ok  " else "FAIL")
              (Vega_target.Module_id.name f.fe_module)
              f.fe_fname f.fe_confidence
              (match f.fe_failure with
              | Some m when not f.fe_pass -> "  [" ^ m ^ "]"
              | _ -> ""))
          te.Vega_eval.Metrics.te_fns
  in
  Cmd.v
    (Cmd.info "backend"
       ~doc:"Generate a whole backend and run pass@1 on every function")
    Term.(const run $ target_arg $ model_flag)

let lint_cmd =
  let generated_flag =
    Arg.(
      value & flag
      & info [ "generated" ]
          ~doc:
            "Lint the functions the pipeline generates for the target \
             (retrieval decoder) instead of the reference backend.")
  in
  let run target generated =
    let p =
      match Vega_target.Registry.find target with
      | Some p -> p
      | None ->
          Printf.eprintf "unknown target %s\n" target;
          exit 1
    in
    let print_report (r : Vega_analysis.Lint.report) =
      Printf.printf "target %s: %d function(s) linted, %d diagnostic(s)\n"
        r.Vega_analysis.Lint.r_target
        (List.length r.Vega_analysis.Lint.r_funcs)
        (Vega_analysis.Lint.diag_count r);
      List.iter
        (fun (fr : Vega_analysis.Lint.func_report) ->
          List.iter
            (fun d ->
              print_endline ("  " ^ Vega_analysis.Diagnostic.to_string d))
            fr.Vega_analysis.Lint.fr_diags)
        r.Vega_analysis.Lint.r_funcs;
      exit (if Vega_analysis.Lint.error_count r > 0 then 1 else 0)
    in
    if not generated then begin
      let corpus = Vega_corpus.Corpus.build () in
      print_report
        (Vega_analysis.Lint.lint_target corpus.Vega_corpus.Corpus.vfs p)
    end
    else begin
      let t, decoder = mk_pipeline ~model:false in
      let vfs = t.Vega.Pipeline.prep.Vega.Pipeline.corpus.Vega_corpus.Corpus.vfs in
      let tab = Vega_analysis.Lint.symtab vfs p in
      let funcs =
        List.filter_map
          (fun (b : Vega.Pipeline.bundle) ->
            let spec = b.Vega.Pipeline.spec in
            if not (spec.Vega_corpus.Spec.applies p) then None
            else
              let gf =
                Vega.Generate.run t.Vega.Pipeline.prep.Vega.Pipeline.ctx
                  b.Vega.Pipeline.tpl b.Vega.Pipeline.analysis
                  b.Vega.Pipeline.hints ~target
                  ~decoder
              in
              Some
                {
                  Vega_analysis.Lint.fr_fname = spec.Vega_corpus.Spec.fname;
                  fr_diags =
                    Vega_analysis.Lint.lint_generated tab b.Vega.Pipeline.tpl gf;
                })
          t.Vega.Pipeline.prep.Vega.Pipeline.bundles
      in
      print_report { Vega_analysis.Lint.r_target = target; r_funcs = funcs }
    end
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Static-analyze a backend (parse/shape, symbols, dataflow, \
          interface conformance); non-zero exit on errors")
    Term.(const run $ target_arg $ generated_flag)

(* ------------------------------------------------------------------ *)
(* faultcheck: deterministic fault-injection matrix with invariant
   checks. Exit 1 on any violation. *)

module R = Vega_robust

let faultcheck_cmd =
  let seed_arg =
    Arg.(value & opt int 13 & info [ "seed" ] ~doc:"Injection seed.")
  in
  let run target seed =
    let p =
      match Vega_target.Registry.find target with
      | Some p -> p
      | None ->
          Printf.eprintf "unknown target %s\n" target;
          exit 1
    in
    let violations = ref 0 in
    let violation fmt =
      Printf.ksprintf
        (fun s ->
          incr violations;
          Printf.printf "  VIOLATION: %s\n%!" s)
        fmt
    in
    let check name cond = if not cond then violation "%s" name in
    Printf.printf "faultcheck: target %s, seed %d\n%!" target seed;
    let clean_report = R.Report.create () in
    let prep = Vega.Pipeline.prepare ~report:clean_report () in
    let cfg =
      {
        Vega.Pipeline.default_config with
        train_cfg = { Vega.Codebe.tiny_train_config with epochs = 0 };
      }
    in
    let t = Vega.Pipeline.train cfg prep in
    let decoder = Vega.Pipeline.retrieval_decoder t in
    check "clean corpus prepares without faults" (R.Report.total clean_report = 0);

    (* ---- baseline: no injection -> no faults, no degradation, and the
       report plumbing itself must not change the generated output ---- *)
    Printf.printf "- baseline (no injection)\n%!";
    let base_report = R.Report.create () in
    let baseline =
      Vega.Pipeline.generate_backend ~report:base_report t ~target ~decoder
    in
    check "baseline: no faults" (R.Report.total base_report = 0);
    check "baseline: no degraded statements"
      (R.Report.degraded_count base_report = 0);
    check "baseline: every statement on the primary rung"
      (List.for_all
         (fun (gf : Vega.Generate.gen_func) ->
           List.for_all
             (fun (s : Vega.Generate.gen_stmt) ->
               s.Vega.Generate.g_level = R.Degrade.Primary)
             gf.Vega.Generate.gf_stmts)
         baseline);
    let plain = Vega.Pipeline.generate_backend t ~target ~decoder in
    check "baseline: identical to the plain decoder path"
      (List.map Vega.Generate.source_of_all plain
      = List.map Vega.Generate.source_of_all baseline);
    let key (gf : Vega.Generate.gen_func) (s : Vega.Generate.gen_stmt) =
      ( gf.Vega.Generate.gf_fname,
        s.Vega.Generate.g_col,
        s.Vega.Generate.g_line,
        s.Vega.Generate.g_inst )
    in
    let base_stmts = Hashtbl.create 512 in
    List.iter
      (fun (gf : Vega.Generate.gen_func) ->
        List.iter
          (fun (s : Vega.Generate.gen_stmt) ->
            Hashtbl.replace base_stmts (key gf s)
              (s.Vega.Generate.g_score, s.Vega.Generate.g_tokens))
          gf.Vega.Generate.gf_stmts)
      baseline;
    (* shared structural invariants over an injected generation run *)
    let check_degraded_run name report (gfs : Vega.Generate.gen_func list) =
      check (name ^ ": backend function count unchanged")
        (List.length gfs = List.length baseline);
      List.iter
        (fun (gf : Vega.Generate.gen_func) ->
          List.iter
            (fun (s : Vega.Generate.gen_stmt) ->
              let score = s.Vega.Generate.g_score in
              let level = s.Vega.Generate.g_level in
              if not (Float.is_finite score && score >= 0.0 && score <= 1.0)
              then violation "%s: non-finite or out-of-range score" name;
              if score > R.Degrade.cap level +. 1e-9 then
                violation "%s: score %.3f above the %s cap" name score
                  (R.Degrade.name level))
            gf.Vega.Generate.gf_stmts)
        gfs;
      check (name ^ ": degradations recorded for every sub-primary statement")
        (R.Report.degraded_count report
        = List.fold_left
            (fun acc (gf : Vega.Generate.gen_func) ->
              acc
              + List.length
                  (List.filter
                     (fun (s : Vega.Generate.gen_stmt) ->
                       s.Vega.Generate.g_level <> R.Degrade.Primary)
                     gf.Vega.Generate.gf_stmts))
            0 gfs)
    in
    (* decoder-class scenarios additionally compare per-statement against
       the baseline: only injected statements may change, and confidence
       is monotonically non-increasing under degradation *)
    let check_against_baseline name (gfs : Vega.Generate.gen_func list) =
      List.iter
        (fun (gf : Vega.Generate.gen_func) ->
          List.iter
            (fun (s : Vega.Generate.gen_stmt) ->
              match Hashtbl.find_opt base_stmts (key gf s) with
              | None -> violation "%s: statement absent from baseline" name
              | Some (bscore, btokens) ->
                  if s.Vega.Generate.g_score > bscore +. 1e-9 then
                    violation
                      "%s: %s confidence rose under injection (%.3f > %.3f)"
                      name gf.Vega.Generate.gf_fname s.Vega.Generate.g_score
                      bscore;
                  if
                    s.Vega.Generate.g_level = R.Degrade.Primary
                    && (s.Vega.Generate.g_tokens <> btokens
                       || s.Vega.Generate.g_score <> bscore)
                  then
                    violation "%s: un-injected statement changed" name)
            gf.Vega.Generate.gf_stmts)
        gfs
    in
    let decoder_scenario name kind ~every ~fallback ~expect_levels =
      Printf.printf "- %s\n%!" name;
      let inj = R.Inject.create ~seed ~every kind in
      let report = R.Report.create () in
      let wrapped fv = R.Inject.wrap_decoder inj decoder fv in
      match
        R.Stage.protect ~stage:name (fun () ->
            Vega.Pipeline.generate_backend ?fallback ~report t ~target
              ~decoder:wrapped)
      with
      | Error f ->
          violation "%s: backend generation aborted (%s)" name
            (R.Fault.to_string f)
      | Ok gfs ->
          check (name ^ ": at least one fault injected")
            (R.Inject.injected inj > 0);
          check (name ^ ": every injected fault observed in the report")
            (R.Report.total report = R.Inject.injected inj);
          check_degraded_run name report gfs;
          check_against_baseline name gfs;
          List.iter
            (fun lv ->
              check
                (Printf.sprintf "%s: reaches the %s rung" name
                   (R.Degrade.name lv))
                (List.exists
                   (fun (gf : Vega.Generate.gen_func) ->
                     List.exists
                       (fun (s : Vega.Generate.gen_stmt) ->
                         s.Vega.Generate.g_level = lv)
                       gf.Vega.Generate.gf_stmts)
                   gfs))
            expect_levels;
          Printf.printf "    injected %d, %s\n%!" (R.Inject.injected inj)
            (R.Report.summary report)
    in
    decoder_scenario "decoder-raise" R.Inject.Decoder_raise ~every:1
      ~fallback:(Some decoder) ~expect_levels:[ R.Degrade.Retrieval_fallback ];
    decoder_scenario "decoder-raise-retry" R.Inject.Decoder_raise ~every:2
      ~fallback:(Some decoder) ~expect_levels:[ R.Degrade.Retry ];
    decoder_scenario "decoder-nan" R.Inject.Decoder_nan ~every:3
      ~fallback:(Some decoder) ~expect_levels:[];
    decoder_scenario "decoder-garbage" R.Inject.Decoder_garbage ~every:3
      ~fallback:(Some decoder) ~expect_levels:[];
    (* no fallback decoder: the ladder must bottom out in template-default
       renders (sub-threshold by construction) or flagged omissions *)
    (let name = "decoder-raise-no-fallback" in
     Printf.printf "- %s\n%!" name;
     let inj = R.Inject.create ~seed ~every:1 R.Inject.Decoder_raise in
     let report = R.Report.create () in
     let wrapped fv = R.Inject.wrap_decoder inj decoder fv in
     match
       R.Stage.protect ~stage:name (fun () ->
           Vega.Pipeline.generate_backend ~report t ~target ~decoder:wrapped)
     with
     | Error f ->
         violation "%s: backend generation aborted (%s)" name
           (R.Fault.to_string f)
     | Ok gfs ->
         check_degraded_run name report gfs;
         List.iter
           (fun (gf : Vega.Generate.gen_func) ->
             List.iter
               (fun (s : Vega.Generate.gen_stmt) ->
                 match s.Vega.Generate.g_level with
                 | R.Degrade.Template_default | R.Degrade.Omitted -> ()
                 | lv ->
                     violation "%s: unexpected %s statement" name
                       (R.Degrade.name lv))
               gf.Vega.Generate.gf_stmts)
           gfs;
         check (name ^ ": no statement passes the accept threshold")
           (List.for_all
              (fun gf -> Vega.Generate.kept_stmts gf = [])
              gfs);
         Printf.printf "    injected %d, %s\n%!" (R.Inject.injected inj)
           (R.Report.summary report));

    (* ---- corpus corruption: prepare must drop only the mangled impls,
       record each one, and generation must still cover every group ---- *)
    (let name = "corpus-corruption" in
     Printf.printf "- %s\n%!" name;
     let inj = R.Inject.create ~seed ~every:5 R.Inject.Corpus_mangle in
     let corpus = R.Inject.corrupt_corpus inj (Vega_corpus.Corpus.build ()) in
     let report = R.Report.create () in
     match
       R.Stage.protect ~stage:name (fun () ->
           let prep2 = Vega.Pipeline.prepare ~report ~corpus () in
           let t2 = Vega.Pipeline.train cfg prep2 in
           Vega.Pipeline.generate_backend ~report t2 ~target
             ~decoder:(Vega.Pipeline.retrieval_decoder t2))
     with
     | Error f ->
         violation "%s: pipeline aborted (%s)" name (R.Fault.to_string f)
     | Ok gfs ->
         check (name ^ ": at least one group corrupted")
           (R.Inject.injected inj > 0);
         check (name ^ ": every corrupted impl observed in the report")
           (R.Report.count_class report R.Fault.Ccorpus = R.Inject.injected inj);
         check_degraded_run name report gfs;
         Printf.printf "    injected %d, %s\n%!" (R.Inject.injected inj)
           (R.Report.summary report));

    (* ---- description-file corruption: scan detects every corrupted
       file; the pipeline runs through on the damaged VFS ---- *)
    (let name = "descfile-corruption" in
     Printf.printf "- %s\n%!" name;
     let inj = R.Inject.create ~seed ~every:2 R.Inject.Descfile_garbage in
     let corpus = Vega_corpus.Corpus.build () in
     let corrupted =
       R.Inject.corrupt_descfiles inj corpus.Vega_corpus.Corpus.vfs ~target
     in
     let report = R.Report.create () in
     let scanned =
       R.Inject.scan_vfs ~report corpus.Vega_corpus.Corpus.vfs ~target
     in
     check (name ^ ": at least one file corrupted") (corrupted <> []);
     check (name ^ ": scan detects every corrupted file")
       (List.length scanned = List.length corrupted
       && R.Report.count_class report R.Fault.Cdescfile = List.length corrupted);
     match
       R.Stage.protect ~stage:name (fun () ->
           let prep3 = Vega.Pipeline.prepare ~report ~corpus () in
           let t3 = Vega.Pipeline.train cfg prep3 in
           Vega.Pipeline.generate_backend ~report t3 ~target
             ~decoder:(Vega.Pipeline.retrieval_decoder t3))
     with
     | Error f ->
         violation "%s: pipeline aborted (%s)" name (R.Fault.to_string f)
     | Ok gfs ->
         check (name ^ ": backend function count unchanged")
           (List.length gfs = List.length baseline);
         List.iter
           (fun (gf : Vega.Generate.gen_func) ->
             List.iter
               (fun (s : Vega.Generate.gen_stmt) ->
                 if
                   not
                     (Float.is_finite s.Vega.Generate.g_score
                     && s.Vega.Generate.g_score >= 0.0
                     && s.Vega.Generate.g_score <= 1.0)
                 then violation "%s: out-of-range score" name)
               gf.Vega.Generate.gf_stmts)
           gfs;
         Printf.printf "    corrupted %d file(s), %s\n%!"
           (List.length corrupted) (R.Report.summary report));

    (* ---- interpreter fuel: the dedicated exception classifies as a
       timeout fault, never as a generic stage failure ---- *)
    (let name = "interp-fuel" in
     Printf.printf "- %s\n%!" name;
     let report = R.Report.create () in
     let f =
       Vega_srclang.Parser.parse_function
         "int spin() { while (true) { int x = 1; } return 0; }"
     in
     let env = Vega_srclang.Interp.create_env () in
     (match
        R.Stage.protect ~report ~stage:name (fun () ->
            Vega_srclang.Interp.call ~fuel:256 env f [])
      with
     | Error (R.Fault.Interp_fuel_exhausted { fuel = 256 }) -> ()
     | Error f ->
         violation "%s: misclassified as %s" name (R.Fault.to_string f)
     | Ok _ -> violation "%s: expected fuel exhaustion" name);
     check (name ^ ": observed in the report")
       (R.Report.count_class report R.Fault.Cinterp_fuel = 1);
     Printf.printf "    %s\n%!" (R.Report.summary report));

    (* ---- simulator fuel + trap: dedicated Timeout status, and traps
       keep their own class ---- *)
    (let name = "sim-fuel" in
     Printf.printf "- %s\n%!" name;
     let report = R.Report.create () in
     let vfs = prep.Vega.Pipeline.corpus.Vega_corpus.Corpus.vfs in
     let _, conv = Vega_eval.Refbackend.backend_for vfs p in
     let case =
       match Vega_ir.Programs.find "loop_sum" with
       | Some c -> c
       | None -> failwith "loop_sum regression case missing"
     in
     let out =
       Vega_backend.Compiler.compile conv ~opt:Vega_backend.Compiler.O0
         (Vega_ir.Programs.modul_of case)
     in
     let r =
       Vega_sim.Machine.run ~fuel:16 conv out.Vega_backend.Compiler.emitted
         ~entry:case.Vega_ir.Programs.entry ~args:case.Vega_ir.Programs.args
     in
     (match r.Vega_sim.Machine.status with
     | Vega_sim.Machine.Timeout f ->
         R.Report.record report ~stage:name
           (R.Fault.Sim_fuel_exhausted { fuel = f })
     | Vega_sim.Machine.Finished _ ->
         violation "%s: expected a timeout, simulation finished" name
     | Vega_sim.Machine.Trap m ->
         violation "%s: fuel exhaustion misclassified as trap (%s)" name m);
     check (name ^ ": observed in the report")
       (R.Report.count_class report R.Fault.Csim_fuel = 1);
     let r2 =
       Vega_sim.Machine.run conv out.Vega_backend.Compiler.emitted
         ~entry:"__no_such_entry__" ~args:[]
     in
     (match r2.Vega_sim.Machine.status with
     | Vega_sim.Machine.Trap m ->
         R.Report.record report ~stage:"sim-trap" (R.Fault.Sim_trap { message = m })
     | _ -> violation "sim-trap: expected a trap on an unknown entry point");
     check "sim-trap: observed in the report"
       (R.Report.count_class report R.Fault.Csim_trap = 1);
     Printf.printf "    %s\n%!" (R.Report.summary report));

    if !violations = 0 then begin
      Printf.printf "faultcheck: OK — full injection matrix, zero violations\n";
      exit 0
    end
    else begin
      Printf.printf "faultcheck: %d invariant violation(s)\n" !violations;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "faultcheck"
       ~doc:
         "Run the deterministic fault-injection matrix (decoder, corpus, \
          description files, interpreter and simulator fuel) against one \
          target; non-zero exit on any invariant violation")
    Term.(const run $ target_arg $ seed_arg)

let compile_cmd =
  let prog_arg =
    Arg.(value & opt string "loop_sum" & info [ "p"; "program" ]
           ~doc:"VIR program name from the built-in suites.")
  in
  let opt_arg =
    Arg.(value & opt string "O3" & info [ "o"; "opt" ] ~doc:"O0 or O3.")
  in
  let run_flag =
    Arg.(value & flag & info [ "run" ] ~doc:"Simulate after compiling.")
  in
  let run target prog optlevel do_run =
    let case =
      match Vega_ir.Programs.find prog with
      | Some c -> c
      | None ->
          Printf.eprintf "unknown program %s\n" prog;
          exit 1
    in
    let p =
      match Vega_target.Registry.find target with
      | Some p -> p
      | None ->
          Printf.eprintf "unknown target %s\n" target;
          exit 1
    in
    let corpus = Vega_corpus.Corpus.build () in
    let _, conv =
      Vega_eval.Refbackend.backend_for corpus.Vega_corpus.Corpus.vfs p
    in
    let opt =
      if optlevel = "O0" then Vega_backend.Compiler.O0 else Vega_backend.Compiler.O3
    in
    let out = Vega_backend.Compiler.compile conv ~opt (Vega_ir.Programs.modul_of case) in
    print_string out.Vega_backend.Compiler.asm;
    if do_run then begin
      let r =
        Vega_sim.Machine.run conv out.Vega_backend.Compiler.emitted
          ~entry:case.Vega_ir.Programs.entry ~args:case.Vega_ir.Programs.args
      in
      Printf.printf "\noutput: [%s]  cycles: %d\n"
        (String.concat "; " (List.map string_of_int r.Vega_sim.Machine.output))
        r.Vega_sim.Machine.cycles
    end
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile a VIR program with the base compiler")
    Term.(const run $ target_arg $ prog_arg $ opt_arg $ run_flag)

let () =
  let doc = "VEGA: automatically generating compiler backends (reproduction)" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "vega-cli" ~doc)
          [
            stats_cmd;
            generate_cmd;
            backend_cmd;
            lint_cmd;
            faultcheck_cmd;
            compile_cmd;
          ]))
