(* vega-cli: command-line front end to the reproduction.

     vega-cli stats
     vega-cli generate -t RISCV -f getRelocType [--model]
     vega-cli generate -t RISCV --run-dir d   durable whole-backend run
     vega-cli generate -t RISCV --resume d    resume an interrupted run
     vega-cli generate ... --domains N        fan functions over N domains
     vega-cli backend -t XCore [--model]      generate + pass@1 the backend
     vega-cli lint -t RISCV [--generated] [--json]
     vega-cli verify [-t T|all] [--generated] [--json]
                                              semantic verifier (absint)
     vega-cli faultcheck [-t T] [--seed N] [--json]   fault-injection matrix
     vega-cli faultcheck --kill-at K --run-dir d [--domains N]
                                              kill-and-resume check
     vega-cli serve [--socket P] [--domains N] [--queue-cap K]
                    [--deadline-ms D] [--run-dir d [--resume]]
                                              resilient serving daemon
     vega-cli request [--socket P] -f NAME [--health|--drain|--ping]
     vega-cli compile -t ARM -p fib -o O3 [--run]                          *)

open Cmdliner

(* Minimal JSON-lines emission (no JSON library in the toolchain): every
   record is one object on one line, strings escaped by hand. *)
let json_str s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let json_obj fields =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "%s:%s" (json_str k) v) fields)
  ^ "}"

let json_flag =
  let doc = "Emit machine-readable output: one JSON record per line." in
  Arg.(value & flag & info [ "json" ] ~doc)

let mk_pipeline ~model =
  let prep = Vega.Pipeline.prepare () in
  let cfg =
    if model then Vega.Pipeline.default_config
    else
      {
        Vega.Pipeline.default_config with
        train_cfg = { Vega.Codebe.tiny_train_config with epochs = 0 };
      }
  in
  let t = Vega.Pipeline.train cfg prep in
  let decoder =
    if model then Vega.Pipeline.model_decoder t
    else Vega.Pipeline.retrieval_decoder t
  in
  (t, decoder)

let target_arg =
  let doc = "Target name (RISCV, RI5CY, XCore, or any training target)." in
  Arg.(value & opt string "RISCV" & info [ "t"; "target" ] ~doc)

let model_flag =
  let doc = "Fine-tune the CodeBE transformer (minutes); default uses the \
             fast retrieval decoder." in
  Arg.(value & flag & info [ "model" ] ~doc)

let domains_arg =
  let doc =
    "Fan backend generation over $(docv) domains (a fixed-size pool; output \
     is bit-identical to the sequential run). Default 1."
  in
  Arg.(value & opt int 1 & info [ "domains" ] ~doc ~docv:"N")

let stats_cmd =
  let run () =
    let corpus = Vega_corpus.Corpus.build () in
    let g, f, s = Vega_corpus.Corpus.stats corpus in
    Printf.printf
      "targets: %d training + %d held-out\n\
       function groups: %d\nfunctions: %d\nstatements: %d\n\
       description files: %d\n"
      (List.length Vega_target.Registry.training)
      (List.length Vega_target.Registry.held_out)
      g f s
      (Vega_tdlang.Vfs.size corpus.Vega_corpus.Corpus.vfs)
  in
  Cmd.v (Cmd.info "stats" ~doc:"Corpus statistics")
    Term.(const run $ const ())

let generate_cmd =
  let fname_arg =
    Arg.(value & opt string "getRelocType" & info [ "f"; "function" ]
           ~doc:"Interface function to generate.")
  in
  let run_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "run-dir" ]
          ~doc:
            "Generate the whole backend durably: write-ahead journal and \
             checkpoints under $(docv). Refuses a directory holding a \
             previous run's journal." ~docv:"DIR")
  in
  let resume_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "resume" ]
          ~doc:
            "Resume the interrupted durable run in $(docv): replay its \
             journal, restore completed functions, regenerate the rest."
          ~docv:"DIR")
  in
  let run target fname model run_dir resume_dir domains =
    let t, decoder = mk_pipeline ~model in
    match (run_dir, resume_dir) with
    | None, None -> (
        match Vega.Pipeline.generate_function t ~target ~decoder ~fname with
        | Some gf ->
            Printf.printf "// confidence %.2f\n%s\n"
              gf.Vega.Generate.gf_confidence
              (Vega.Generate.source_of gf)
        | None ->
            Printf.eprintf "no function template named %s\n" fname;
            exit 1)
    | _ -> (
        let resume = resume_dir <> None in
        let dir =
          match resume_dir with Some d -> d | None -> Option.get run_dir
        in
        let sup = Vega_robust.Supervisor.create Vega_robust.Supervisor.default_config in
        let report = Vega_robust.Report.create () in
        match
          Vega.Pipeline.generate_backend_durable ~report ~sup ~resume ~domains
            ~run_dir:dir t ~target ~decoder
        with
        | Error e ->
            Printf.eprintf "durable run: %s\n" e;
            exit 1
        | Ok o ->
            List.iter
              (fun (gf : Vega.Generate.gen_func) ->
                Printf.printf "  %-28s conf %.2f  %d stmt(s)\n"
                  gf.Vega.Generate.gf_fname gf.Vega.Generate.gf_confidence
                  (List.length gf.Vega.Generate.gf_stmts))
              o.Vega.Pipeline.d_funcs;
            Printf.printf
              "durable run %s: %d function(s) — %d resumed from journal, %d \
               generated; %d record(s) appended%s%s\n"
              dir
              (List.length o.Vega.Pipeline.d_funcs)
              o.Vega.Pipeline.d_resumed o.Vega.Pipeline.d_generated
              o.Vega.Pipeline.d_records
              (if o.Vega.Pipeline.d_torn then "; torn tail recovered" else "")
              (if Vega_robust.Report.total report > 0 then
                 "; " ^ Vega_robust.Report.summary report
               else ""))
  in
  Cmd.v
    (Cmd.info "generate"
       ~doc:
         "Generate one interface function for a target, or (with \
          $(b,--run-dir)/$(b,--resume)) the whole backend under a crash-safe \
          write-ahead journal")
    Term.(
      const run $ target_arg $ fname_arg $ model_flag $ run_dir_arg
      $ resume_arg $ domains_arg)

let backend_cmd =
  let run target model =
    let t, decoder = mk_pipeline ~model in
    match Vega_target.Registry.find target with
    | None ->
        Printf.eprintf "unknown target %s\n" target;
        exit 1
    | Some p ->
        let te = Vega_eval.Metrics.evaluate_target t ~decoder p () in
        Printf.printf "%s backend: %d functions, pass@1 %.1f%%, stmt %.1f%%\n"
          target
          (List.length te.Vega_eval.Metrics.te_fns)
          (100.0 *. Vega_eval.Metrics.fn_accuracy te.Vega_eval.Metrics.te_fns)
          (100.0 *. Vega_eval.Metrics.stmt_accuracy te.Vega_eval.Metrics.te_fns);
        List.iter
          (fun (f : Vega_eval.Metrics.fn_eval) ->
            Printf.printf "  %s %-6s %-28s conf %.2f%s\n"
              (if f.fe_pass then "ok  " else "FAIL")
              (Vega_target.Module_id.name f.fe_module)
              f.fe_fname f.fe_confidence
              (match f.fe_failure with
              | Some m when not f.fe_pass -> "  [" ^ m ^ "]"
              | _ -> ""))
          te.Vega_eval.Metrics.te_fns
  in
  Cmd.v
    (Cmd.info "backend"
       ~doc:"Generate a whole backend and run pass@1 on every function")
    Term.(const run $ target_arg $ model_flag)

let lint_cmd =
  let generated_flag =
    Arg.(
      value & flag
      & info [ "generated" ]
          ~doc:
            "Lint the functions the pipeline generates for the target \
             (retrieval decoder) instead of the reference backend.")
  in
  let run target generated json =
    let targets =
      if target = "all" then Vega_target.Registry.all
      else
        match Vega_target.Registry.find target with
        | Some p -> [ p ]
        | None ->
            Printf.eprintf "unknown target %s\n" target;
            exit 1
    in
    let print_report (r : Vega_analysis.Lint.report) =
      if json then begin
        List.iter
          (fun (fr : Vega_analysis.Lint.func_report) ->
            List.iter
              (fun (d : Vega_analysis.Diagnostic.t) ->
                print_endline
                  (json_obj
                     ([
                        ("rule", json_str d.Vega_analysis.Diagnostic.rule);
                        ( "cls",
                          json_str (Vega_analysis.Diagnostic.cls_name d.cls) );
                        ( "severity",
                          json_str
                            (Vega_analysis.Diagnostic.severity_name d.severity)
                        );
                        ("fname", json_str d.fname);
                      ]
                     @ (match d.span with
                       | Some sp ->
                           [
                             ("line", string_of_int sp.Vega_srclang.Span.line);
                             ("col", string_of_int sp.Vega_srclang.Span.col);
                           ]
                       | None -> [])
                     @ [ ("msg", json_str d.msg) ])))
              fr.Vega_analysis.Lint.fr_diags)
          r.Vega_analysis.Lint.r_funcs;
        print_endline
          (json_obj
             [
               ("event", json_str "summary");
               ("target", json_str r.Vega_analysis.Lint.r_target);
               ( "functions",
                 string_of_int (List.length r.Vega_analysis.Lint.r_funcs) );
               ("diagnostics", string_of_int (Vega_analysis.Lint.diag_count r));
               ("errors", string_of_int (Vega_analysis.Lint.error_count r));
             ])
      end
      else begin
        Printf.printf "target %s: %d function(s) linted, %d diagnostic(s)\n"
          r.Vega_analysis.Lint.r_target
          (List.length r.Vega_analysis.Lint.r_funcs)
          (Vega_analysis.Lint.diag_count r);
        List.iter
          (fun (fr : Vega_analysis.Lint.func_report) ->
            List.iter
              (fun d ->
                print_endline ("  " ^ Vega_analysis.Diagnostic.to_string d))
              fr.Vega_analysis.Lint.fr_diags)
          r.Vega_analysis.Lint.r_funcs
      end;
      Vega_analysis.Lint.error_count r > 0
    in
    let report_of =
      if not generated then begin
        let corpus = Vega_corpus.Corpus.build () in
        fun (p : Vega_target.Profile.t) ->
          Vega_analysis.Lint.lint_target corpus.Vega_corpus.Corpus.vfs p
      end
      else begin
        let t, decoder = mk_pipeline ~model:false in
        fun (p : Vega_target.Profile.t) ->
          let vfs =
            t.Vega.Pipeline.prep.Vega.Pipeline.corpus.Vega_corpus.Corpus.vfs
          in
          let tab = Vega_analysis.Lint.symtab vfs p in
          let funcs =
            List.filter_map
              (fun (b : Vega.Pipeline.bundle) ->
                let spec = b.Vega.Pipeline.spec in
                if not (spec.Vega_corpus.Spec.applies p) then None
                else
                  let gf =
                    Vega.Generate.run t.Vega.Pipeline.prep.Vega.Pipeline.ctx
                      b.Vega.Pipeline.tpl b.Vega.Pipeline.analysis
                      b.Vega.Pipeline.hints ~target:p.Vega_target.Profile.name
                      ~decoder
                  in
                  Some
                    {
                      Vega_analysis.Lint.fr_fname = spec.Vega_corpus.Spec.fname;
                      fr_diags =
                        Vega_analysis.Lint.lint_generated tab b.Vega.Pipeline.tpl
                          gf;
                    })
              t.Vega.Pipeline.prep.Vega.Pipeline.bundles
          in
          {
            Vega_analysis.Lint.r_target = p.Vega_target.Profile.name;
            r_funcs = funcs;
          }
      end
    in
    (* a sweep fails when ANY target fails: fold, don't short-circuit, so
       every target's findings are still printed *)
    let failed =
      List.fold_left
        (fun acc p -> if print_report (report_of p) then true else acc)
        false targets
    in
    exit (if failed then 1 else 0)
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Static-analyze a backend (parse/shape, symbols, dataflow, \
          interface conformance); $(b,-t all) sweeps every registered \
          target; non-zero exit when any target has errors")
    Term.(const run $ target_arg $ generated_flag $ json_flag)

(* ------------------------------------------------------------------ *)
(* verify: the abstract-interpretation semantic verifier. Exit contract:
   0 clean, 4 when any semantic diagnostic is reported, 2 on a crash. *)

let verify_cmd =
  let generated_flag =
    Arg.(
      value & flag
      & info [ "generated" ]
          ~doc:
            "Verify the functions the pipeline generates for the target \
             (retrieval decoder) against their reference implementations, \
             instead of the reference backend against itself.")
  in
  let diag_json (d : Vega_analysis.Diagnostic.t) =
    json_obj
      ([
         ("rule", json_str d.Vega_analysis.Diagnostic.rule);
         ("cls", json_str (Vega_analysis.Diagnostic.cls_name d.cls));
         ("severity", json_str (Vega_analysis.Diagnostic.severity_name d.severity));
         ("taxonomy", json_str (Vega_analysis.Diagnostic.taxonomy d));
         ("fname", json_str d.fname);
       ]
      @ (match d.span with
        | Some sp ->
            [
              ("line", string_of_int sp.Vega_srclang.Span.line);
              ("col", string_of_int sp.Vega_srclang.Span.col);
            ]
        | None -> [])
      @ [ ("msg", json_str d.msg) ])
  in
  let run target generated json =
    let targets =
      if target = "all" then Vega_target.Registry.all
      else
        match Vega_target.Registry.find target with
        | Some p -> [ p ]
        | None ->
            Printf.eprintf "unknown target %s\n" target;
            exit 2
    in
    let print_verdicts tname (funcs : (string * Vega_analysis.Diagnostic.t list) list) =
      let diags = List.concat_map snd funcs in
      let sem =
        List.filter
          (fun (d : Vega_analysis.Diagnostic.t) ->
            d.cls = Vega_analysis.Diagnostic.Sem)
          diags
      in
      if json then begin
        List.iter (fun d -> print_endline (diag_json d)) diags;
        print_endline
          (json_obj
             [
               ("event", json_str "summary");
               ("target", json_str tname);
               ("functions", string_of_int (List.length funcs));
               ("diagnostics", string_of_int (List.length diags));
               ("semantic", string_of_int (List.length sem));
             ])
      end
      else begin
        Printf.printf
          "target %s: %d function(s) verified, %d diagnostic(s), %d semantic\n"
          tname (List.length funcs) (List.length diags) (List.length sem);
        List.iter
          (fun d -> print_endline ("  " ^ Vega_analysis.Diagnostic.to_string d))
          diags
      end;
      diags <> []
    in
    let verdicts_of =
      if not generated then begin
        let corpus = Vega_corpus.Corpus.build () in
        fun (p : Vega_target.Profile.t) ->
          let r =
            Vega_absint.Verify.verify_target corpus.Vega_corpus.Corpus.vfs p
          in
          List.map
            (fun (fv : Vega_absint.Verify.func_verdict) ->
              (fv.Vega_absint.Verify.fv_fname, fv.Vega_absint.Verify.fv_diags))
            r.Vega_absint.Verify.v_funcs
          @ (match r.Vega_absint.Verify.v_asm with
            | [] -> []
            | asm -> [ ("<emitted-asm>", asm) ])
      end
      else begin
        let t, decoder = mk_pipeline ~model:false in
        fun (p : Vega_target.Profile.t) ->
          List.filter_map
            (fun (b : Vega.Pipeline.bundle) ->
              let spec = b.Vega.Pipeline.spec in
              if not (spec.Vega_corpus.Spec.applies p) then None
              else
                let gf =
                  Vega.Generate.run t.Vega.Pipeline.prep.Vega.Pipeline.ctx
                    b.Vega.Pipeline.tpl b.Vega.Pipeline.analysis
                    b.Vega.Pipeline.hints ~target:p.Vega_target.Profile.name
                    ~decoder
                in
                let fname = spec.Vega_corpus.Spec.fname in
                let reference = Vega_corpus.Corpus.reference_inlined spec p in
                Some
                  ( fname,
                    Vega_absint.Verify.verify_source ?reference ~fname
                      (Vega.Generate.source_of gf) ))
            t.Vega.Pipeline.prep.Vega.Pipeline.bundles
      end
    in
    match
      List.fold_left
        (fun acc p ->
          if print_verdicts p.Vega_target.Profile.name (verdicts_of p) then true
          else acc)
        false targets
    with
    | true -> exit 4
    | false -> exit 0
    | exception e ->
        Printf.eprintf "vega-cli verify: %s\n" (Printexc.to_string e);
        exit 2
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Semantically verify a backend by abstract interpretation \
          (value ranges, initialization, differential summaries against \
          the reference, emitted-code register discipline). $(b,-t all) \
          sweeps every registered target. Exits 0 when clean, 4 on \
          semantic diagnostics, 2 on a crash.")
    Term.(const run $ target_arg $ generated_flag $ json_flag)

(* ------------------------------------------------------------------ *)
(* faultcheck: deterministic fault-injection matrix with invariant
   checks. Exit 1 on any violation. *)

module R = Vega_robust
module S = Vega_serve
module Sh = Vega_shard

let faultcheck_cmd =
  let seed_arg =
    Arg.(value & opt int 13 & info [ "seed" ] ~doc:"Injection seed.")
  in
  let kill_at_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "kill-at" ]
          ~doc:
            "Run only the kill-and-resume determinism check: simulate a hard \
             crash after $(docv) journal records, then resume and assert the \
             output is bit-identical to an uninterrupted run. 0 sweeps the \
             offsets {1, mid, last}." ~docv:"K")
  in
  let run_dir_arg =
    Arg.(
      value
      & opt string "_vega_faultcheck"
      & info [ "run-dir" ]
          ~doc:"Directory for the kill-and-resume run journals." ~docv:"DIR")
  in
  let shard_kill_arg =
    Arg.(
      value & flag
      & info [ "shard-kill" ]
          ~doc:
            "Run only the sharded-serving scenarios: the content-addressed \
             cache round-trip (corruption falls through to generation) and \
             the shard-storm-kill determinism check (kill 1 of 3 shards at \
             4x capacity mid-storm, assert a byte-reproducible \
             accept/reroute/shed sequence, journal resume, and final output \
             bit-identical to the unkilled run).")
  in
  let run target seed json kill_at run_dir shard_only domains =
    let p =
      match Vega_target.Registry.find target with
      | Some p -> p
      | None ->
          Printf.eprintf "unknown target %s\n" target;
          exit 1
    in
    let violations = ref 0 in
    let jline fields = print_endline (json_obj fields) in
    let violation fmt =
      Printf.ksprintf
        (fun s ->
          incr violations;
          if json then
            jline
              [ ("event", json_str "violation"); ("message", json_str s) ]
          else Printf.printf "  VIOLATION: %s\n%!" s)
        fmt
    in
    let check name cond = if not cond then violation "%s" name in
    let scenario name =
      if json then
        jline [ ("event", json_str "scenario"); ("name", json_str name) ]
      else Printf.printf "- %s\n%!" name
    in
    let info fmt =
      Printf.ksprintf
        (fun s ->
          if json then
            jline [ ("event", json_str "info"); ("message", json_str s) ]
          else Printf.printf "    %s\n%!" s)
        fmt
    in
    if not json then
      Printf.printf "faultcheck: target %s, seed %d\n%!" target seed;
    let clean_report = R.Report.create () in
    let prep = Vega.Pipeline.prepare ~report:clean_report () in
    let cfg =
      {
        Vega.Pipeline.default_config with
        train_cfg = { Vega.Codebe.tiny_train_config with epochs = 0 };
      }
    in
    let t = Vega.Pipeline.train cfg prep in
    let decoder = Vega.Pipeline.retrieval_decoder t in
    check "clean corpus prepares without faults" (R.Report.total clean_report = 0);
    (* bit-exact rendering of generated functions, for identity checks *)
    let render (gfs : Vega.Generate.gen_func list) =
      String.concat "\n"
        (List.map
           (fun (gf : Vega.Generate.gen_func) ->
             Printf.sprintf "%s %h [%s]" gf.Vega.Generate.gf_fname
               gf.Vega.Generate.gf_confidence
               (String.concat ";"
                  (List.map
                     (fun (s : Vega.Generate.gen_stmt) ->
                       Printf.sprintf "%d,%d,%d,%h,%b,%s,%s"
                         s.Vega.Generate.g_col s.Vega.Generate.g_line
                         s.Vega.Generate.g_inst s.Vega.Generate.g_score
                         s.Vega.Generate.g_shape_ok
                         (R.Degrade.name s.Vega.Generate.g_level)
                         (String.concat " " s.Vega.Generate.g_tokens))
                     gf.Vega.Generate.gf_stmts)))
           gfs)
    in
    let rmf f = if Sys.file_exists f then Sys.remove f in
    let clear dir =
      rmf (Vega.Pipeline.journal_path dir);
      rmf (Vega.Pipeline.journal_path dir ^ ".tmp");
      rmf (Vega.Pipeline.checkpoint_path dir);
      rmf (Vega.Pipeline.checkpoint_path dir ^ ".tmp")
    in

    (* --kill-at narrows the run to the kill-and-resume determinism
       check, --shard-kill to the sharded-serving scenarios; without
       either the whole injection matrix runs first *)
    if kill_at = None && not shard_only then begin

    (* ---- baseline: no injection -> no faults, no degradation, and the
       report plumbing itself must not change the generated output ---- *)
    scenario "baseline (no injection)";
    let base_report = R.Report.create () in
    let baseline =
      Vega.Pipeline.generate_backend ~report:base_report t ~target ~decoder
    in
    check "baseline: no faults" (R.Report.total base_report = 0);
    check "baseline: no degraded statements"
      (R.Report.degraded_count base_report = 0);
    check "baseline: every statement on the primary rung"
      (List.for_all
         (fun (gf : Vega.Generate.gen_func) ->
           List.for_all
             (fun (s : Vega.Generate.gen_stmt) ->
               s.Vega.Generate.g_level = R.Degrade.Primary)
             gf.Vega.Generate.gf_stmts)
         baseline);
    let plain = Vega.Pipeline.generate_backend t ~target ~decoder in
    check "baseline: identical to the plain decoder path"
      (List.map Vega.Generate.source_of_all plain
      = List.map Vega.Generate.source_of_all baseline);

    (* ---- parallel determinism: fanning the functions over a domain
       pool must not change a single bit of the output ---- *)
    if domains > 1 then begin
      scenario (Printf.sprintf "parallel determinism (%d domains)" domains);
      let par = Vega.Pipeline.generate_backend ~domains t ~target ~decoder in
      check
        (Printf.sprintf "parallel: %d-domain run identical to sequential"
           domains)
        (List.map Vega.Generate.source_of_all par
         = List.map Vega.Generate.source_of_all plain
        && List.map
             (fun (gf : Vega.Generate.gen_func) ->
               Int64.bits_of_float gf.Vega.Generate.gf_confidence)
             par
           = List.map
               (fun (gf : Vega.Generate.gen_func) ->
                 Int64.bits_of_float gf.Vega.Generate.gf_confidence)
               plain)
    end;
    let key (gf : Vega.Generate.gen_func) (s : Vega.Generate.gen_stmt) =
      ( gf.Vega.Generate.gf_fname,
        s.Vega.Generate.g_col,
        s.Vega.Generate.g_line,
        s.Vega.Generate.g_inst )
    in
    let base_stmts = Hashtbl.create 512 in
    List.iter
      (fun (gf : Vega.Generate.gen_func) ->
        List.iter
          (fun (s : Vega.Generate.gen_stmt) ->
            Hashtbl.replace base_stmts (key gf s)
              (s.Vega.Generate.g_score, s.Vega.Generate.g_tokens))
          gf.Vega.Generate.gf_stmts)
      baseline;
    (* shared structural invariants over an injected generation run *)
    let check_degraded_run name report (gfs : Vega.Generate.gen_func list) =
      check (name ^ ": backend function count unchanged")
        (List.length gfs = List.length baseline);
      List.iter
        (fun (gf : Vega.Generate.gen_func) ->
          List.iter
            (fun (s : Vega.Generate.gen_stmt) ->
              let score = s.Vega.Generate.g_score in
              let level = s.Vega.Generate.g_level in
              if not (Float.is_finite score && score >= 0.0 && score <= 1.0)
              then violation "%s: non-finite or out-of-range score" name;
              if score > R.Degrade.cap level +. 1e-9 then
                violation "%s: score %.3f above the %s cap" name score
                  (R.Degrade.name level))
            gf.Vega.Generate.gf_stmts)
        gfs;
      check (name ^ ": degradations recorded for every sub-primary statement")
        (R.Report.degraded_count report
        = List.fold_left
            (fun acc (gf : Vega.Generate.gen_func) ->
              acc
              + List.length
                  (List.filter
                     (fun (s : Vega.Generate.gen_stmt) ->
                       s.Vega.Generate.g_level <> R.Degrade.Primary)
                     gf.Vega.Generate.gf_stmts))
            0 gfs)
    in
    (* decoder-class scenarios additionally compare per-statement against
       the baseline: only injected statements may change, and confidence
       is monotonically non-increasing under degradation *)
    let check_against_baseline name (gfs : Vega.Generate.gen_func list) =
      List.iter
        (fun (gf : Vega.Generate.gen_func) ->
          List.iter
            (fun (s : Vega.Generate.gen_stmt) ->
              match Hashtbl.find_opt base_stmts (key gf s) with
              | None -> violation "%s: statement absent from baseline" name
              | Some (bscore, btokens) ->
                  if s.Vega.Generate.g_score > bscore +. 1e-9 then
                    violation
                      "%s: %s confidence rose under injection (%.3f > %.3f)"
                      name gf.Vega.Generate.gf_fname s.Vega.Generate.g_score
                      bscore;
                  if
                    s.Vega.Generate.g_level = R.Degrade.Primary
                    && (s.Vega.Generate.g_tokens <> btokens
                       || s.Vega.Generate.g_score <> bscore)
                  then
                    violation "%s: un-injected statement changed" name)
            gf.Vega.Generate.gf_stmts)
        gfs
    in
    let decoder_scenario name kind ~every ~fallback ~expect_levels =
      scenario name;
      let inj = R.Inject.create ~seed ~every kind in
      let report = R.Report.create () in
      let wrapped fv = R.Inject.wrap_decoder inj decoder fv in
      match
        R.Stage.protect ~stage:name (fun () ->
            Vega.Pipeline.generate_backend ?fallback ~report t ~target
              ~decoder:wrapped)
      with
      | Error f ->
          violation "%s: backend generation aborted (%s)" name
            (R.Fault.to_string f)
      | Ok gfs ->
          check (name ^ ": at least one fault injected")
            (R.Inject.injected inj > 0);
          check (name ^ ": every injected fault observed in the report")
            (R.Report.total report = R.Inject.injected inj);
          check_degraded_run name report gfs;
          check_against_baseline name gfs;
          List.iter
            (fun lv ->
              check
                (Printf.sprintf "%s: reaches the %s rung" name
                   (R.Degrade.name lv))
                (List.exists
                   (fun (gf : Vega.Generate.gen_func) ->
                     List.exists
                       (fun (s : Vega.Generate.gen_stmt) ->
                         s.Vega.Generate.g_level = lv)
                       gf.Vega.Generate.gf_stmts)
                   gfs))
            expect_levels;
          info "injected %d, %s" (R.Inject.injected inj)
            (R.Report.summary report)
    in
    decoder_scenario "decoder-raise" R.Inject.Decoder_raise ~every:1
      ~fallback:(Some decoder) ~expect_levels:[ R.Degrade.Retrieval_fallback ];
    decoder_scenario "decoder-raise-retry" R.Inject.Decoder_raise ~every:2
      ~fallback:(Some decoder) ~expect_levels:[ R.Degrade.Retry ];
    decoder_scenario "decoder-nan" R.Inject.Decoder_nan ~every:3
      ~fallback:(Some decoder) ~expect_levels:[];
    decoder_scenario "decoder-garbage" R.Inject.Decoder_garbage ~every:3
      ~fallback:(Some decoder) ~expect_levels:[];
    (* no fallback decoder: the ladder must bottom out in template-default
       renders (sub-threshold by construction) or flagged omissions *)
    (let name = "decoder-raise-no-fallback" in
     scenario name;
     let inj = R.Inject.create ~seed ~every:1 R.Inject.Decoder_raise in
     let report = R.Report.create () in
     let wrapped fv = R.Inject.wrap_decoder inj decoder fv in
     match
       R.Stage.protect ~stage:name (fun () ->
           Vega.Pipeline.generate_backend ~report t ~target ~decoder:wrapped)
     with
     | Error f ->
         violation "%s: backend generation aborted (%s)" name
           (R.Fault.to_string f)
     | Ok gfs ->
         check_degraded_run name report gfs;
         List.iter
           (fun (gf : Vega.Generate.gen_func) ->
             List.iter
               (fun (s : Vega.Generate.gen_stmt) ->
                 match s.Vega.Generate.g_level with
                 | R.Degrade.Template_default | R.Degrade.Omitted -> ()
                 | lv ->
                     violation "%s: unexpected %s statement" name
                       (R.Degrade.name lv))
               gf.Vega.Generate.gf_stmts)
           gfs;
         check (name ^ ": no statement passes the accept threshold")
           (List.for_all
              (fun gf -> Vega.Generate.kept_stmts gf = [])
              gfs);
         info "injected %d, %s" (R.Inject.injected inj)
           (R.Report.summary report));

    (* ---- corpus corruption: prepare must drop only the mangled impls,
       record each one, and generation must still cover every group ---- *)
    (let name = "corpus-corruption" in
     scenario name;
     let inj = R.Inject.create ~seed ~every:5 R.Inject.Corpus_mangle in
     let corpus = R.Inject.corrupt_corpus inj (Vega_corpus.Corpus.build ()) in
     let report = R.Report.create () in
     match
       R.Stage.protect ~stage:name (fun () ->
           let prep2 = Vega.Pipeline.prepare ~report ~corpus () in
           let t2 = Vega.Pipeline.train cfg prep2 in
           Vega.Pipeline.generate_backend ~report t2 ~target
             ~decoder:(Vega.Pipeline.retrieval_decoder t2))
     with
     | Error f ->
         violation "%s: pipeline aborted (%s)" name (R.Fault.to_string f)
     | Ok gfs ->
         check (name ^ ": at least one group corrupted")
           (R.Inject.injected inj > 0);
         check (name ^ ": every corrupted impl observed in the report")
           (R.Report.count_class report R.Fault.Ccorpus = R.Inject.injected inj);
         check_degraded_run name report gfs;
         info "injected %d, %s" (R.Inject.injected inj)
           (R.Report.summary report));

    (* ---- description-file corruption: scan detects every corrupted
       file; the pipeline runs through on the damaged VFS ---- *)
    (let name = "descfile-corruption" in
     scenario name;
     let inj = R.Inject.create ~seed ~every:2 R.Inject.Descfile_garbage in
     let corpus = Vega_corpus.Corpus.build () in
     let corrupted =
       R.Inject.corrupt_descfiles inj corpus.Vega_corpus.Corpus.vfs ~target
     in
     let report = R.Report.create () in
     let scanned =
       R.Inject.scan_vfs ~report corpus.Vega_corpus.Corpus.vfs ~target
     in
     check (name ^ ": at least one file corrupted") (corrupted <> []);
     check (name ^ ": scan detects every corrupted file")
       (List.length scanned = List.length corrupted
       && R.Report.count_class report R.Fault.Cdescfile = List.length corrupted);
     match
       R.Stage.protect ~stage:name (fun () ->
           let prep3 = Vega.Pipeline.prepare ~report ~corpus () in
           let t3 = Vega.Pipeline.train cfg prep3 in
           Vega.Pipeline.generate_backend ~report t3 ~target
             ~decoder:(Vega.Pipeline.retrieval_decoder t3))
     with
     | Error f ->
         violation "%s: pipeline aborted (%s)" name (R.Fault.to_string f)
     | Ok gfs ->
         check (name ^ ": backend function count unchanged")
           (List.length gfs = List.length baseline);
         List.iter
           (fun (gf : Vega.Generate.gen_func) ->
             List.iter
               (fun (s : Vega.Generate.gen_stmt) ->
                 if
                   not
                     (Float.is_finite s.Vega.Generate.g_score
                     && s.Vega.Generate.g_score >= 0.0
                     && s.Vega.Generate.g_score <= 1.0)
                 then violation "%s: out-of-range score" name)
               gf.Vega.Generate.gf_stmts)
           gfs;
         info "corrupted %d file(s), %s"
           (List.length corrupted) (R.Report.summary report));

    (* ---- interpreter fuel: the dedicated exception classifies as a
       timeout fault, never as a generic stage failure ---- *)
    (let name = "interp-fuel" in
     scenario name;
     let report = R.Report.create () in
     let f =
       Vega_srclang.Parser.parse_function
         "int spin() { while (true) { int x = 1; } return 0; }"
     in
     let env = Vega_srclang.Interp.create_env () in
     (match
        R.Stage.protect ~report ~stage:name (fun () ->
            Vega_srclang.Interp.call ~fuel:256 env f [])
      with
     | Error (R.Fault.Interp_fuel_exhausted { fuel = 256 }) -> ()
     | Error f ->
         violation "%s: misclassified as %s" name (R.Fault.to_string f)
     | Ok _ -> violation "%s: expected fuel exhaustion" name);
     check (name ^ ": observed in the report")
       (R.Report.count_class report R.Fault.Cinterp_fuel = 1);
     info "%s" (R.Report.summary report));

    (* ---- simulator fuel + trap: dedicated Timeout status, and traps
       keep their own class ---- *)
    (let name = "sim-fuel" in
     scenario name;
     let report = R.Report.create () in
     let vfs = prep.Vega.Pipeline.corpus.Vega_corpus.Corpus.vfs in
     let _, conv = Vega_eval.Refbackend.backend_for vfs p in
     let case =
       match Vega_ir.Programs.find "loop_sum" with
       | Some c -> c
       | None -> failwith "loop_sum regression case missing"
     in
     let out =
       Vega_backend.Compiler.compile conv ~opt:Vega_backend.Compiler.O0
         (Vega_ir.Programs.modul_of case)
     in
     let r =
       Vega_sim.Machine.run ~fuel:16 conv out.Vega_backend.Compiler.emitted
         ~entry:case.Vega_ir.Programs.entry ~args:case.Vega_ir.Programs.args
     in
     (match r.Vega_sim.Machine.status with
     | Vega_sim.Machine.Timeout f ->
         R.Report.record report ~stage:name
           (R.Fault.Sim_fuel_exhausted { fuel = f })
     | Vega_sim.Machine.Finished _ ->
         violation "%s: expected a timeout, simulation finished" name
     | Vega_sim.Machine.Trap m ->
         violation "%s: fuel exhaustion misclassified as trap (%s)" name m);
     check (name ^ ": observed in the report")
       (R.Report.count_class report R.Fault.Csim_fuel = 1);
     let r2 =
       Vega_sim.Machine.run conv out.Vega_backend.Compiler.emitted
         ~entry:"__no_such_entry__" ~args:[]
     in
     (match r2.Vega_sim.Machine.status with
     | Vega_sim.Machine.Trap m ->
         R.Report.record report ~stage:"sim-trap" (R.Fault.Sim_trap { message = m })
     | _ -> violation "sim-trap: expected a trap on an unknown entry point");
     check "sim-trap: observed in the report"
       (R.Report.count_class report R.Fault.Csim_trap = 1);
     info "%s" (R.Report.summary report));

    (* ---- circuit breaker under a permanently failing decoder: the run
       must complete in bounded time with the breaker open, every
       statement landing on a fallback rung of the ladder ---- *)
    (let name = "breaker-permafail" in
     scenario name;
     let scfg =
       {
         R.Supervisor.default_config with
         R.Supervisor.breaker_threshold = 3;
         breaker_cooldown = 4;
         max_retries = 1;
         backoff_base_s = 0.001;
         backoff_max_s = 0.004;
         func_deadline_s = 300.0;
       }
     in
     let slept = ref 0.0 in
     let sup = R.Supervisor.create ~sleep:(fun d -> slept := !slept +. d) scfg in
     let calls = ref 0 in
     let permafail _fv =
       incr calls;
       raise
         (R.Fault.Fault
            (R.Fault.Decoder_failure
               {
                 fname = "*";
                 stage = "primary";
                 message = "permanently failing decoder";
               }))
     in
     let report = R.Report.create () in
     match
       R.Stage.protect ~stage:name (fun () ->
           Vega.Pipeline.generate_backend ~fallback:decoder ~report ~sup t
             ~target ~decoder:permafail)
     with
     | Error f ->
         violation "%s: backend generation aborted (%s)" name
           (R.Fault.to_string f)
     | Ok gfs ->
         let st = R.Supervisor.stats sup in
         check (name ^ ": breaker opened")
           (st.R.Supervisor.sup_breaker_opened > 0);
         check (name ^ ": open breaker short-circuits decode calls")
           (st.R.Supervisor.sup_breaker_skips > 0);
         let stmts =
           List.concat_map
             (fun (gf : Vega.Generate.gen_func) -> gf.Vega.Generate.gf_stmts)
             gfs
         in
         check (name ^ ": backend function count unchanged")
           (List.length gfs = List.length baseline);
         check (name ^ ": every statement lands on a fallback rung")
           (List.for_all
              (fun (s : Vega.Generate.gen_stmt) ->
                match s.Vega.Generate.g_level with
                | R.Degrade.Retrieval_fallback | R.Degrade.Template_default
                | R.Degrade.Omitted ->
                    true
                | _ -> false)
              stmts);
         check (name ^ ": no score above the retrieval-fallback cap")
           (List.for_all
              (fun (s : Vega.Generate.gen_stmt) ->
                s.Vega.Generate.g_score
                <= R.Degrade.cap R.Degrade.Retrieval_fallback +. 1e-9)
              stmts);
         (* bounded wall clock: the open breaker skips decode attempts
            outright, and every backoff sleep is capped *)
         let ladder_attempts = 2 * List.length stmts in
         check (name ^ ": decode attempts bounded below ladder attempts")
           (!calls < ladder_attempts);
         check (name ^ ": accumulated backoff bounded")
           (!slept
           <= (float_of_int st.R.Supervisor.sup_retried *. scfg.R.Supervisor.backoff_max_s)
              +. 1e-9);
         info
           "breaker: opened %d time(s), %d skip(s), %d retry(s), %d of %d \
            decode attempts made, %.3fs backoff"
           st.R.Supervisor.sup_breaker_opened st.R.Supervisor.sup_breaker_skips
           st.R.Supervisor.sup_retried !calls ladder_attempts !slept);

    (* ---- serving layer ---- *)
    let serve_fnames =
      List.map
        (fun (b : Vega.Pipeline.bundle) ->
          b.Vega.Pipeline.spec.Vega_corpus.Spec.fname)
        t.Vega.Pipeline.prep.Vega.Pipeline.bundles
    in
    check "corpus has function templates to serve" (serve_fnames <> []);

    (* overload at 4x queue capacity: the bounded queue sheds instead of
       growing, and — the workers being paused while the seeded storm
       submits — the accept/reject sequence is a pure function of the
       submission order, so equal seeds give equal sequences ---- *)
    (let name = "serve-overload" in
     scenario name;
     let cap = 4 in
     let n = 4 * cap in
     let scfg =
       {
         S.Server.default_config with
         S.Server.domains = 1;
         queue_cap = cap;
         client_burst = float_of_int (2 * n);
         client_rate = 0.0;
       }
     in
     let storm = R.Inject.create ~seed R.Inject.Queue_storm in
     let order = R.Inject.storm_order storm n in
     let run_once () =
       match S.Server.create ~config:scfg ~paused:true t ~target ~decoder with
       | Error e -> Error e
       | Ok srv ->
           let tickets =
             List.map
               (fun i ->
                 S.Server.submit srv
                   {
                     S.Proto.rq_client = Printf.sprintf "c%d" (i mod 3);
                     rq_target = target;
                     rq_fname =
                       List.nth serve_fnames (i mod List.length serve_fnames);
                     rq_deadline_ms = None;
                   })
               order
           in
           let seq =
             String.concat ""
               (List.map
                  (function
                    | Ok _ -> "A"
                    | Error (S.Proto.Queue_full _) -> "S"
                    | Error _ -> "R")
                  tickets)
           in
           S.Server.resume_workers srv;
           let replies =
             List.filter_map
               (function
                 | Ok tk -> Some (S.Server.await tk) | Error _ -> None)
               tickets
           in
           S.Server.drain srv;
           Ok (seq, replies, S.Server.health srv)
     in
     match (run_once (), run_once ()) with
     | Error e, _ | _, Error e ->
         violation "%s: server creation failed (%s)" name e
     | Ok (seq1, replies1, h1), Ok (seq2, _, _) ->
         check (name ^ ": queue never grows past its cap")
           (h1.S.Health.h_accepted = cap
           && h1.S.Health.h_rejected = n - cap);
         check (name ^ ": same seed, same accept/reject sequence")
           (seq1 = seq2);
         let dones =
           List.length
             (List.filter
                (function S.Proto.Done _ -> true | _ -> false)
                replies1)
         in
         check (name ^ ": sheds + successes account for every request")
           (h1.S.Health.h_rejected + dones = n);
         check (name ^ ": drained server is stopped, empty and idle")
           (h1.S.Health.h_state = S.Health.Stopped
           && h1.S.Health.h_queue_depth = 0
           && h1.S.Health.h_busy = 0
           && h1.S.Health.h_journal_lag = 0);
         info "sequence %s; %d shed, %d done" seq1 h1.S.Health.h_rejected
           dones);

    (* ---- per-request deadline on a stalled decoder: the supervisor
       budget fires and the ladder degrades the statement — the request
       completes (capped) instead of hanging; a request whose deadline
       lapses while queued is rejected at dequeue ---- *)
    (let name = "serve-deadline" in
     scenario name;
     let vnow = ref 0.0 in
     let scfg =
       {
         S.Server.default_config with
         S.Server.domains = 1;
         queue_cap = List.length serve_fnames + 4;
         deadline_ms = 50;
         client_burst = 1000.0;
         client_rate = 0.0;
       }
     in
     let inj = R.Inject.create ~seed ~every:1 R.Inject.Decoder_stall in
     let stalling fv =
       R.Inject.wrap_stalling_decoder inj
         ~stall:(fun () -> vnow := !vnow +. 1.0)
         decoder fv
     in
     let mk fname =
       {
         S.Proto.rq_client = "dl";
         rq_target = target;
         rq_fname = fname;
         rq_deadline_ms = None;
       }
     in
     (match
        S.Server.create ~config:scfg
          ~now:(fun () -> !vnow)
          ~sleep:(fun d -> vnow := !vnow +. d)
          ~fallback:decoder t ~target ~decoder:stalling
      with
     | Error e -> violation "%s: server creation failed (%s)" name e
     | Ok srv ->
         let replies =
           List.map (fun f -> S.Server.request srv (mk f)) serve_fnames
         in
         check (name ^ ": every request completes (no hang)")
           (List.for_all
              (function S.Proto.Done _ -> true | _ -> false)
              replies);
         check (name ^ ": at least one reply reports degraded statements")
           (List.exists
              (function
                | S.Proto.Done d -> d.r_degraded > 0 | _ -> false)
              replies);
         List.iter
           (fun (gf : Vega.Generate.gen_func) ->
             List.iter
               (fun (s : Vega.Generate.gen_stmt) ->
                 if
                   s.Vega.Generate.g_score
                   > R.Degrade.cap s.Vega.Generate.g_level +. 1e-9
                 then
                   violation "%s: score above the %s cap" name
                     (R.Degrade.name s.Vega.Generate.g_level))
               gf.Vega.Generate.gf_stmts)
           (S.Server.functions srv);
         S.Server.drain srv;
         let h = S.Server.health srv in
         check (name ^ ": supervisor deadline fired")
           (h.S.Health.h_deadline_hits > 0);
         info "%d deadline hit(s) across %d request(s)"
           h.S.Health.h_deadline_hits (List.length replies));
     (* expiry in queue: while the first request's stalled execution burns
        the clock, the second sits queued past its deadline *)
     match
       S.Server.create ~config:scfg ~paused:true
         ~now:(fun () -> !vnow)
         ~sleep:(fun d -> vnow := !vnow +. d)
         ~fallback:decoder t ~target ~decoder:stalling
     with
     | Error e -> violation "%s: expiry server creation failed (%s)" name e
     | Ok srv -> (
         let first = S.Server.submit srv (mk (List.hd serve_fnames)) in
         let second = S.Server.submit srv (mk (List.hd serve_fnames)) in
         S.Server.resume_workers srv;
         match (first, second) with
         | Ok k1, Ok k2 ->
             let r1 = S.Server.await k1 and r2 = S.Server.await k2 in
             check (name ^ ": first request completes")
               (match r1 with S.Proto.Done _ -> true | _ -> false);
             check
               (name
              ^ ": request queued past its deadline is rejected as expired")
               (match r2 with
               | S.Proto.Rejected (S.Proto.Expired _) -> true
               | _ -> false);
             S.Server.drain srv
         | _ ->
             violation "%s: expiry submissions were rejected" name;
             S.Server.drain srv));

    (* ---- durable serving: drain checkpoints, a kill mid-request loses
       nothing durable, and a restarted server resumes to bit-identical
       output ---- *)
    (let name = "serve-drain-kill-resume" in
     scenario name;
     let dcfg =
       {
         S.Server.default_config with
         S.Server.domains = 1;
         queue_cap = List.length serve_fnames + 4;
         client_burst = 1000.0;
         client_rate = 0.0;
       }
     in
     let mk fname =
       {
         S.Proto.rq_client = "kr";
         rq_target = target;
         rq_fname = fname;
         rq_deadline_ms = None;
       }
     in
     let ref_dir = Filename.concat run_dir "serve-ref" in
     clear ref_dir;
     match S.Server.create ~config:dcfg ~run_dir:ref_dir t ~target ~decoder with
     | Error e -> violation "%s: reference server failed (%s)" name e
     | Ok srv -> (
         let replies =
           List.map (fun f -> S.Server.request srv (mk f)) serve_fnames
         in
         check (name ^ ": reference run completes every request")
           (List.for_all
              (function S.Proto.Done _ -> true | _ -> false)
              replies);
         let records = (S.Server.health srv).S.Health.h_journal_records in
         let expect = render (S.Server.functions srv) in
         S.Server.drain srv;
         check (name ^ ": drain leaves a loadable checkpoint")
           (match
              R.Checkpoint.load
                ~path:(Vega.Pipeline.checkpoint_path ref_dir)
            with
           | Ok c ->
               List.length c.R.Checkpoint.c_funcs
               = List.length serve_fnames
           | Error _ -> false);
         let kinj = R.Inject.create ~seed R.Inject.Request_kill in
         (* clamp past the midpoint so at least one function is durably
            complete when the crash lands *)
         let k = max (R.Inject.kill_offset kinj ~records) (records / 2) in
         let dir = Filename.concat run_dir "serve-kill" in
         clear dir;
         match
           S.Server.create ~config:dcfg ~run_dir:dir ~kill_at:k t ~target
             ~decoder
         with
         | Error e -> violation "%s: killed server failed (%s)" name e
         | Ok ksrv -> (
             let tickets =
               List.map (fun f -> S.Server.submit ksrv (mk f)) serve_fnames
             in
             (match S.Server.drain ksrv with
             | () -> violation "%s: kill-at %d never fired" name k
             | exception R.Journal.Killed n ->
                 check
                   (Printf.sprintf
                      "%s: crash lands on the armed record (kill-at %d)" name
                      k)
                   (n = k));
             (* every accepted request was answered (crash or flush) *)
             List.iter
               (function
                 | Ok tk -> ignore (S.Server.await tk) | Error _ -> ())
               tickets;
             if k > 1 then
               R.Journal.tear ~path:(Vega.Pipeline.journal_path dir);
             match
               S.Server.create ~config:dcfg ~run_dir:dir ~resume:true t
                 ~target ~decoder
             with
             | Error e -> violation "%s: resume failed (%s)" name e
             | Ok rsrv ->
                 let restored = S.Server.resumed_functions rsrv in
                 check
                   (name ^ ": at least one function restored from the journal")
                   (restored > 0);
                 let replies =
                   List.map (fun f -> S.Server.request rsrv (mk f)) serve_fnames
                 in
                 check (name ^ ": resumed run completes every request")
                   (List.for_all
                      (function S.Proto.Done _ -> true | _ -> false)
                      replies);
                 check (name ^ ": restored functions reply as resumed")
                   (List.exists
                      (function
                        | S.Proto.Done d -> d.r_resumed | _ -> false)
                      replies);
                 let got = render (S.Server.functions rsrv) in
                 S.Server.drain rsrv;
                 if got <> expect then
                   violation
                     "%s: resumed output differs from the uninterrupted run \
                      (kill-at %d)"
                     name k
                 else
                   info "kill-at %d: bit-identical after restart (%d restored)"
                     k restored)))
    end;

    (* ---- kill-and-resume determinism: crash after K durable records,
       tear the tail mid-record, resume, and require output bit-identical
       to an uninterrupted run ---- *)
    if not shard_only then
    (let name = "kill-resume" in
     scenario name;
     let ref_dir = Filename.concat run_dir "ref" in
     clear ref_dir;
     match
       Vega.Pipeline.generate_backend_durable ~run_dir:ref_dir t ~target
         ~decoder
     with
     | Error e -> violation "%s: reference run failed (%s)" name e
     | Ok refo ->
         let expect = render refo.Vega.Pipeline.d_funcs in
         let total = refo.Vega.Pipeline.d_records in
         info "reference run: %d journal record(s)" total;
         let offsets =
           match kill_at with
           | Some k when k > 0 -> [ k ]
           | _ ->
               List.filter
                 (fun k -> k >= 1)
                 (List.sort_uniq compare [ 1; (total + 1) / 2; total - 1 ])
         in
         List.iter
           (fun k ->
             let dir = Filename.concat run_dir (Printf.sprintf "kill%d" k) in
             clear dir;
             match
               Vega.Pipeline.generate_backend_durable ~kill_at:k ~domains
                 ~run_dir:dir t ~target ~decoder
             with
             | exception R.Journal.Killed n ->
                 check
                   (Printf.sprintf "%s: crash lands on the armed record \
                                    (kill-at %d)" name k)
                   (n = k);
                 (* tear the last durable record mid-write — except the
                    lone header, without which there is nothing to resume *)
                 if k > 1 then
                   R.Journal.tear ~path:(Vega.Pipeline.journal_path dir);
                 (match
                    Vega.Pipeline.generate_backend_durable ~resume:true
                      ~domains ~run_dir:dir t ~target ~decoder
                  with
                 | Error e ->
                     violation "%s: resume after kill-at %d failed (%s)" name
                       k e
                 | Ok o ->
                     if k > 1 then
                       check
                         (Printf.sprintf
                            "%s: torn record recovered (kill-at %d)" name k)
                         o.Vega.Pipeline.d_torn;
                     check
                       (Printf.sprintf
                          "%s: resume covers every function (kill-at %d)"
                          name k)
                       (List.length o.Vega.Pipeline.d_funcs
                       = List.length refo.Vega.Pipeline.d_funcs);
                     if render o.Vega.Pipeline.d_funcs <> expect then
                       violation
                         "%s: resumed output differs from the uninterrupted \
                          run (kill-at %d)"
                         name k
                     else
                       info
                         "kill-at %d: bit-identical after resume (%d \
                          resumed, %d regenerated)"
                         k o.Vega.Pipeline.d_resumed
                         o.Vega.Pipeline.d_generated)
             | Ok o ->
                 check
                   (Printf.sprintf
                      "%s: kill-at %d beyond the run end completes" name k)
                   (o.Vega.Pipeline.d_records < k);
                 if render o.Vega.Pipeline.d_funcs <> expect then
                   violation "%s: un-killed run differs (kill-at %d)" name k
             | Error e ->
                 violation "%s: killed run setup failed (kill-at %d: %s)"
                   name k e)
           offsets);

    (* ---- sharded serving: content-addressed cache round-trip and the
       shard-storm-kill determinism check ---- *)
    if kill_at = None then begin
      let fleet_fnames =
        List.map
          (fun (b : Vega.Pipeline.bundle) ->
            b.Vega.Pipeline.spec.Vega_corpus.Spec.fname)
          t.Vega.Pipeline.prep.Vega.Pipeline.bundles
      in
      let fingerprint = Vega.Pipeline.fingerprint t ~target in
      let desc_hash =
        Sh.Cache.desc_hash_of_vfs
          t.Vega.Pipeline.prep.Vega.Pipeline.corpus.Vega_corpus.Corpus.vfs
          ~target
      in
      let mkreq fname =
        {
          S.Proto.rq_client = "shard";
          rq_target = target;
          rq_fname = fname;
          rq_deadline_ms = None;
        }
      in
      let merge_funcs lists =
        let tbl = Hashtbl.create 32 in
        List.iter
          (List.iter (fun (gf : Vega.Generate.gen_func) ->
               if not (Hashtbl.mem tbl gf.Vega.Generate.gf_fname) then
                 Hashtbl.add tbl gf.Vega.Generate.gf_fname gf))
          lists;
        List.sort
          (fun (a : Vega.Generate.gen_func) (b : Vega.Generate.gen_func) ->
            compare a.Vega.Generate.gf_fname b.Vega.Generate.gf_fname)
          (Hashtbl.fold (fun _ gf acc -> gf :: acc) tbl [])
      in

      (* ---- the cache answers repeats bit-identically with zero decoder
         involvement; a flipped byte is detected, evicted, recorded as a
         fault, and the request falls through to generation ---- *)
      (let name = "shard-cache" in
       scenario name;
       let decodes = Atomic.make 0 in
       let counting fv =
         Atomic.incr decodes;
         decoder fv
       in
       let scfg =
         {
           S.Server.default_config with
           S.Server.domains = 1;
           queue_cap = List.length fleet_fnames + 4;
           client_burst = 1000.0;
           client_rate = 0.0;
         }
       in
       let cache_dir = Filename.concat run_dir "shard-cache" in
       (if Sys.file_exists cache_dir then
          Array.iter
            (fun f ->
              if
                Filename.check_suffix f Sh.Cache.entry_ext
                || Filename.check_suffix f ".tmp"
              then rmf (Filename.concat cache_dir f))
            (Sys.readdir cache_dir));
       let report = R.Report.create () in
       let cache =
         Sh.Cache.create ~report ~dir:cache_dir ~fingerprint ~desc_hash ()
       in
       let rcfg =
         {
           Sh.Router.default_config with
           Sh.Router.retries = 0;
           probe_every = 0;
           seed;
         }
       in
       (* a fresh two-shard fleet per round: a repeat answered by a new
          fleet can only have come from the cache, never a shard's
          in-memory replay table *)
       let with_fleet k =
         let mk_srv () =
           S.Server.create ~config:scfg t ~target ~decoder:counting
         in
         match (mk_srv (), mk_srv ()) with
         | Ok a, Ok b -> (
             let eps =
               [ Sh.Router.of_server ~name:"s0" a;
                 Sh.Router.of_server ~name:"s1" b ]
             in
             match
               Sh.Router.create ~config:rcfg ~cache ~report
                 ~sleep:(fun _ -> ())
                 ~fingerprint ~desc_hash eps
             with
             | Error e ->
                 violation "%s: router creation failed (%s)" name e;
                 None
             | Ok router ->
                 let r = k router in
                 Sh.Router.drain router;
                 Some r)
         | Error e, _ | _, Error e ->
             violation "%s: shard server failed to start (%s)" name e;
             None
       in
       let round fnames =
         with_fleet (fun router ->
             let replies =
               List.map (fun f -> Sh.Router.route router (mkreq f)) fnames
             in
             (Sh.Router.decisions router, replies))
       in
       match round fleet_fnames with
       | None -> ()
       | Some (d1, replies1) -> (
           let cold = Atomic.get decodes in
           check (name ^ ": cold round reaches the decoder") (cold > 0);
           check (name ^ ": cold round is answered by the shards")
             (String.for_all (fun c -> c = 'A') d1);
           check (name ^ ": cold round completes every request")
             (List.for_all
                (function S.Proto.Done _ -> true | _ -> false)
                replies1);
           match round fleet_fnames with
           | None -> ()
           | Some (d2, replies2) -> (
               check (name ^ ": warm round is answered entirely by the cache")
                 (d2 = String.make (List.length fleet_fnames) 'C');
               check (name ^ ": cache hits touch no decoder")
                 (Atomic.get decodes = cold);
               check (name ^ ": cached replies bit-identical to the cold round")
                 (List.map S.Proto.encode_reply replies2
                 = List.map S.Proto.encode_reply replies1);
               let victim_f = List.hd fleet_fnames in
               let cinj = R.Inject.create ~seed R.Inject.Cache_corrupt in
               match
                 R.Inject.corrupt_cache_entry cinj
                   ~path:(Sh.Cache.path cache ~fname:victim_f)
               with
               | None -> violation "%s: no cache entry to corrupt" name
               | Some off -> (
                   info "flipped byte %d of %s's cache entry" off victim_f;
                   match round [ victim_f ] with
                   | None -> ()
                   | Some (d3, replies3) ->
                       check
                         (name
                        ^ ": corrupt entry falls through to generation")
                         (d3 = "A" && Atomic.get decodes > cold);
                       check (name ^ ": corruption recorded as a cache fault")
                         (R.Report.count_class report R.Fault.Ccache >= 1);
                       check
                         (name
                        ^ ": regenerated reply bit-identical to the cold one")
                         (List.map S.Proto.encode_reply replies3
                         = [ S.Proto.encode_reply (List.hd replies1) ]);
                       let st = Sh.Cache.stats cache in
                       check (name ^ ": corrupt entry evicted")
                         (st.Sh.Cache.c_evictions >= 1);
                       check (name ^ ": regenerated result re-cached")
                         (Sh.Cache.get cache ~fname:victim_f <> None);
                       info
                         "cache: %d hit(s), %d miss(es), %d put(s), %d \
                          eviction(s), %d entries"
                         st.Sh.Cache.c_hits st.Sh.Cache.c_misses
                         st.Sh.Cache.c_puts st.Sh.Cache.c_evictions
                         st.Sh.Cache.c_entries))));

      (* ---- kill 1 of 3 shards at 4x aggregate queue capacity mid-storm:
         the accept/reroute/shed sequence is byte-reproducible under the
         seed, the restarted shard resumes from its own journal, and the
         final generated outputs are bit-identical to the unkilled run ---- *)
      (let name = "shard-storm-kill" in
       scenario name;
       let shards_n = 3 in
       let cap = 4 in
       let nf = List.length fleet_fnames in
       let n = 4 * shards_n * cap in
       let scfg =
         {
           S.Server.default_config with
           S.Server.domains = 1;
           queue_cap = cap;
           client_burst = float_of_int (2 * n);
           client_rate = 0.0;
         }
       in
       let storm = R.Inject.create ~seed R.Inject.Queue_storm in
       let storm_fnames =
         List.map
           (fun i -> List.nth fleet_fnames (i mod nf))
           (R.Inject.storm_order storm n)
       in
       let rcfg policy =
         {
           Sh.Router.default_config with
           Sh.Router.policy;
           retries = 0;
           probe_every = 0;
           breaker_threshold = 2;
           breaker_cooldown = 4;
           seed;
         }
       in
       let names = List.init shards_n (Printf.sprintf "shard-%d") in
       (* the same pure ring the router builds, to name each key's owner *)
       let ring =
         Sh.Ring.create
           ~replicas:Sh.Router.default_config.Sh.Router.replicas names
       in
       let owner fname =
         Sh.Ring.lookup ring
           (Sh.Cache.request_key ~fingerprint ~desc_hash ~fname)
       in
       let storm_dir tag = Filename.concat run_dir ("shard-storm-" ^ tag) in
       (* a three-shard fleet, each with its own journal segment; [kill]
          arms one shard's journal with a crash offset *)
       let mk_fleet ~tag ~policy ~kill =
         let rec go i acc =
           if i < 0 then Some acc
           else begin
             let dir = Sh.Router.shard_run_dir (storm_dir tag) i in
             clear dir;
             let kill_at =
               match kill with Some (v, at) when v = i -> Some at | _ -> None
             in
             match
               S.Server.create ~config:scfg ~run_dir:dir ?kill_at t ~target
                 ~decoder
             with
             | Ok srv -> go (i - 1) (srv :: acc)
             | Error e ->
                 violation "%s: shard %d failed to start (%s)" name i e;
                 None
           end
         in
         match go (shards_n - 1) [] with
         | None -> None
         | Some servers -> (
             let eps =
               List.mapi
                 (fun i srv ->
                   Sh.Router.of_server ~name:(Printf.sprintf "shard-%d" i) srv)
                 servers
             in
             let report = R.Report.create () in
             match
               Sh.Router.create ~config:(rcfg policy) ~report
                 ~sleep:(fun _ -> ())
                 ~fingerprint ~desc_hash eps
             with
             | Error e ->
                 violation "%s: router creation failed (%s)" name e;
                 None
             | Ok router -> Some (servers, router, report))
       in
       match mk_fleet ~tag:"ref" ~policy:Sh.Router.Reroute ~kill:None with
       | None -> ()
       | Some (ref_servers, ref_router, _) -> (
           let ref_replies =
             List.map (fun f -> Sh.Router.route ref_router (mkreq f))
               storm_fnames
           in
           let d_ref = Sh.Router.decisions ref_router in
           check (name ^ ": unkilled storm completes every request")
             (List.for_all
                (function S.Proto.Done _ -> true | _ -> false)
                ref_replies);
           check (name ^ ": unkilled storm routes every request to its owner")
             (d_ref = String.make n 'A');
           let expect =
             render (merge_funcs (List.map S.Server.functions ref_servers))
           in
           let kinj = R.Inject.create ~seed R.Inject.Shard_kill in
           let victim = R.Inject.shard_victim kinj ~shards:shards_n in
           let victim_name = Printf.sprintf "shard-%d" victim in
           (* the victim's share of the storm — the functions the
              restarted shard must serve again for the final-output
              identity check to cover the same set as the reference *)
           let victim_fnames =
             List.filter
               (fun f -> owner f = victim_name)
               (List.sort_uniq compare storm_fnames)
           in
           check (name ^ ": the victim owns at least one function")
             (victim_fnames <> []);
           let victim_records =
             (S.Server.health (List.nth ref_servers victim))
               .S.Health.h_journal_records
           in
           Sh.Router.drain ref_router;
           (* clamp into the middle half of the victim's journal: past the
              midpoint so at least one function is durably complete when
              the crash lands, short of the tail so a meaningful stretch
              of the storm still reroutes *)
           let k =
             max
               (max 2 (victim_records / 2))
               (min
                  (R.Inject.kill_offset kinj ~records:victim_records)
                  (victim_records * 3 / 4))
           in
           info "victim shard-%d, kill-at %d of its %d journal record(s)"
             victim k victim_records;
           let killed_run ~tag ~policy =
             match mk_fleet ~tag ~policy ~kill:(Some (victim, k)) with
             | None -> None
             | Some (servers, router, report) ->
                 let replies =
                   List.map (fun f -> Sh.Router.route router (mkreq f))
                     storm_fnames
                 in
                 let d = Sh.Router.decisions router in
                 let funcs = List.map S.Server.functions servers in
                 (match Sh.Router.drain router with
                 | () -> violation "%s: kill-at %d never fired (%s)" name k tag
                 | exception R.Journal.Killed rn ->
                     check
                       (Printf.sprintf
                          "%s: crash lands on the armed record (kill-at %d)"
                          name k)
                       (rn = k));
                 check (name ^ ": shard failures recorded by the router")
                   (R.Report.count_class report R.Fault.Cshard > 0);
                 Some (d, replies, funcs)
           in
           match
             ( killed_run ~tag:"kill-a" ~policy:Sh.Router.Reroute,
               killed_run ~tag:"kill-b" ~policy:Sh.Router.Reroute )
           with
           | Some (d1, replies1, funcs1), Some (d2, _, _) -> (
               check (name ^ ": same seed, same accept/reroute sequence")
                 (d1 = d2);
               check (name ^ ": reroute policy still completes every request")
                 (List.for_all
                    (function S.Proto.Done _ -> true | _ -> false)
                    replies1);
               check (name ^ ": at least one request rerouted off the victim")
                 (String.contains d1 'R');
               info "reroute decisions %s" d1;
               (match killed_run ~tag:"shed" ~policy:Sh.Router.Shed with
               | None -> ()
               | Some (d3, replies3, _) ->
                   check
                     (name
                    ^ ": shed decisions differ from reroute exactly at R->D")
                     (String.length d3 = String.length d1
                     && List.for_all2
                          (fun a b -> a = b || (a = 'R' && b = 'D'))
                          (List.init (String.length d1) (String.get d1))
                          (List.init (String.length d3) (String.get d3)));
                   check (name ^ ": at least one request shed") (String.contains d3 'D');
                   List.iteri
                     (fun i reply ->
                       if d3.[i] = 'D' then
                         match reply with
                         | S.Proto.Rejected (S.Proto.Shard_down { shard })
                           when shard = victim_name ->
                             ()
                         | _ ->
                             violation
                               "%s: shed request %d lacks a shard-down \
                                rejection naming the victim"
                               name i)
                     replies3);
               (* the victim's own journal segment: tear the tail (when
                  there is more than the header plus one record to lose),
                  restart, and the shard resumes its own functions *)
               let victim_dir =
                 Sh.Router.shard_run_dir (storm_dir "kill-a") victim
               in
               if k > 2 then
                 R.Journal.tear ~path:(Vega.Pipeline.journal_path victim_dir);
               match
                 S.Server.create ~config:scfg ~run_dir:victim_dir ~resume:true
                   t ~target ~decoder
               with
               | Error e -> violation "%s: victim resume failed (%s)" name e
               | Ok rsrv ->
                   let restored = S.Server.resumed_functions rsrv in
                   check
                     (name
                    ^ ": restarted victim resumes from its own journal")
                     (restored > 0);
                   let vreplies =
                     List.map
                       (fun f -> S.Server.request rsrv (mkreq f))
                       victim_fnames
                   in
                   check (name ^ ": restarted victim answers its functions")
                     (List.for_all
                        (function S.Proto.Done _ -> true | _ -> false)
                        vreplies);
                   check (name ^ ": at least one reply restored from journal")
                     (List.exists
                        (function
                          | S.Proto.Done { r_resumed; _ } -> r_resumed
                          | _ -> false)
                        vreplies);
                   let survivors =
                     List.filteri (fun i _ -> i <> victim) funcs1
                   in
                   let got =
                     render
                       (merge_funcs (S.Server.functions rsrv :: survivors))
                   in
                   S.Server.drain rsrv;
                   if got <> expect then
                     violation
                       "%s: final outputs differ from the unkilled run \
                        (kill-at %d)"
                       name k
                   else
                     info
                       "kill-at %d: final outputs bit-identical (%d \
                        resumed on shard-%d)"
                       k restored victim)
           | _ -> ()))
    end;

    if json then
      print_endline
        (json_obj
           [
             ("event", json_str "summary");
             ("violations", string_of_int !violations);
             ("ok", if !violations = 0 then "true" else "false");
           ]);
    if !violations = 0 then begin
      if not json then
        Printf.printf "faultcheck: OK — zero invariant violations\n";
      exit 0
    end
    else begin
      if not json then
        Printf.printf "faultcheck: %d invariant violation(s)\n" !violations;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "faultcheck"
       ~doc:
         "Run the deterministic fault-injection matrix (decoder, corpus, \
          description files, interpreter and simulator fuel, circuit \
          breaker, kill-and-resume, sharded serving) against one target; \
          non-zero exit on any invariant violation")
    Term.(
      const run $ target_arg $ seed_arg $ json_flag $ kill_at_arg
      $ run_dir_arg $ shard_kill_arg $ domains_arg)

let compile_cmd =
  let prog_arg =
    Arg.(value & opt string "loop_sum" & info [ "p"; "program" ]
           ~doc:"VIR program name from the built-in suites.")
  in
  let opt_arg =
    Arg.(value & opt string "O3" & info [ "o"; "opt" ] ~doc:"O0 or O3.")
  in
  let run_flag =
    Arg.(value & flag & info [ "run" ] ~doc:"Simulate after compiling.")
  in
  let run target prog optlevel do_run =
    let case =
      match Vega_ir.Programs.find prog with
      | Some c -> c
      | None ->
          Printf.eprintf "unknown program %s\n" prog;
          exit 1
    in
    let p =
      match Vega_target.Registry.find target with
      | Some p -> p
      | None ->
          Printf.eprintf "unknown target %s\n" target;
          exit 1
    in
    let corpus = Vega_corpus.Corpus.build () in
    let _, conv =
      Vega_eval.Refbackend.backend_for corpus.Vega_corpus.Corpus.vfs p
    in
    let opt =
      if optlevel = "O0" then Vega_backend.Compiler.O0 else Vega_backend.Compiler.O3
    in
    let out = Vega_backend.Compiler.compile conv ~opt (Vega_ir.Programs.modul_of case) in
    print_string out.Vega_backend.Compiler.asm;
    if do_run then begin
      let r =
        Vega_sim.Machine.run conv out.Vega_backend.Compiler.emitted
          ~entry:case.Vega_ir.Programs.entry ~args:case.Vega_ir.Programs.args
      in
      Printf.printf "\noutput: [%s]  cycles: %d\n"
        (String.concat "; " (List.map string_of_int r.Vega_sim.Machine.output))
        r.Vega_sim.Machine.cycles
    end
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile a VIR program with the base compiler")
    Term.(const run $ target_arg $ prog_arg $ opt_arg $ run_flag)

let socket_arg =
  let doc = "Unix socket path the daemon listens on." in
  Arg.(
    value
    & opt string "/tmp/vega-serve.sock"
    & info [ "socket" ] ~doc ~docv:"PATH")

let serve_cmd =
  let queue_cap_arg =
    Arg.(
      value
      & opt int S.Server.default_config.S.Server.queue_cap
      & info [ "queue-cap" ] ~docv:"K"
          ~doc:
            "Admission queue bound: the $(docv)+1'th concurrent request is \
             shed with a queue-full rejection instead of growing memory.")
  in
  let deadline_arg =
    Arg.(
      value
      & opt int 0
      & info [ "deadline-ms" ] ~docv:"D"
          ~doc:
            "Default per-request deadline. A stalled decode degrades through \
             the supervisor ladder instead of hanging; 0 disables.")
  in
  let run_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "run-dir" ] ~docv:"DIR"
          ~doc:
            "Serve durably: write-ahead journal + checkpoints under $(docv); \
             drain checkpoints in-flight work so a restart with \
             $(b,--resume) loses nothing.")
  in
  let resume_flag =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:"Resume the journal already in $(b,--run-dir).")
  in
  let kill_at_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "kill-at" ] ~docv:"N"
          ~doc:
            "Fault harness: simulate a hard crash after $(docv) durable \
             journal records (exit 2).")
  in
  let run socket target model domains queue_cap deadline_ms run_dir resume
      kill_at =
    let t, decoder = mk_pipeline ~model in
    let config =
      {
        S.Server.default_config with
        S.Server.domains;
        queue_cap;
        deadline_ms;
      }
    in
    match
      S.Server.create ~config ?run_dir ~resume ?kill_at t ~target ~decoder
    with
    | Error e ->
        Printf.eprintf "vega-serve: %s\n" e;
        exit 1
    | Ok server -> (
        let l = S.Sock.start server ~path:socket in
        Printf.printf
          "vega-serve: target %s on %s (%d domain(s), queue cap %d%s%s)\n%!"
          target socket config.S.Server.domains config.S.Server.queue_cap
          (if deadline_ms > 0 then Printf.sprintf ", deadline %dms" deadline_ms
           else "")
          (match run_dir with
          | Some d ->
              Printf.sprintf ", journal %s%s" d
                (if resume then
                   Printf.sprintf " (resumed %d function(s))"
                     (S.Server.resumed_functions server)
                 else "")
          | None -> "");
        match S.Sock.wait l with
        | () ->
            Printf.printf "vega-serve: drained — %s\n"
              (S.Health.summary (S.Server.health server))
        | exception Vega_robust.Journal.Killed n ->
            Printf.eprintf
              "vega-serve: simulated crash after %d journal record(s); \
               restart with --resume\n"
              n;
            exit 2)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the resilient serving daemon: bounded admission with explicit \
          load-shedding, per-request deadlines, per-client retry budgets, \
          health snapshots, graceful checkpointing drain")
    Term.(
      const run $ socket_arg $ target_arg $ model_flag $ domains_arg
      $ queue_cap_arg $ deadline_arg $ run_dir_arg $ resume_flag $ kill_at_arg)

let request_cmd =
  let fname_arg =
    Arg.(
      value
      & opt string "getRelocType"
      & info [ "f"; "function" ] ~doc:"Interface function to request.")
  in
  let client_arg =
    Arg.(
      value
      & opt string "cli"
      & info [ "client" ]
          ~doc:"Client identity for the per-client retry budget.")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline-ms" ] ~docv:"D"
          ~doc:"Per-request deadline override.")
  in
  let health_flag =
    Arg.(value & flag & info [ "health" ] ~doc:"Print a health snapshot.")
  in
  let drain_flag =
    Arg.(
      value & flag
      & info [ "drain" ]
          ~doc:
            "Gracefully drain the daemon: stop admitting, finish or \
             checkpoint in-flight requests, exit.")
  in
  let ping_flag =
    Arg.(value & flag & info [ "ping" ] ~doc:"Liveness check only.")
  in
  let run socket target fname client deadline_ms health drain ping json =
    let print_health = function
      | None ->
          Printf.eprintf "vega-request: no health reply from %s\n" socket;
          exit 5
      | Some h ->
          if json then
            print_endline
              (json_obj
                 [
                   ("state", json_str (S.Health.state_name h.S.Health.h_state));
                   ("queue_depth", string_of_int h.S.Health.h_queue_depth);
                   ("queue_cap", string_of_int h.S.Health.h_queue_cap);
                   ("busy", string_of_int h.S.Health.h_busy);
                   ("domains", string_of_int h.S.Health.h_domains);
                   ("accepted", string_of_int h.S.Health.h_accepted);
                   ("rejected", string_of_int h.S.Health.h_rejected);
                   ("completed", string_of_int h.S.Health.h_completed);
                   ("deadline_hits", string_of_int h.S.Health.h_deadline_hits);
                   ("breaker_open", string_of_bool h.S.Health.h_breaker_open);
                   ( "journal_records",
                     string_of_int h.S.Health.h_journal_records );
                   ("journal_lag", string_of_int h.S.Health.h_journal_lag);
                 ])
          else print_endline (S.Health.summary h)
    in
    if ping then begin
      if S.Sock.ping ~socket then print_endline "pong"
      else begin
        Printf.eprintf "vega-request: no pong from %s\n" socket;
        exit 5
      end
    end
    else if drain then print_health (S.Sock.drain ~socket)
    else if health then print_health (S.Sock.health ~socket)
    else begin
      let req =
        {
          S.Proto.rq_client = client;
          rq_target = target;
          rq_fname = fname;
          rq_deadline_ms = deadline_ms;
        }
      in
      match S.Sock.request ~socket req with
      | S.Proto.Done d ->
          if json then
            print_endline
              (json_obj
                 [
                   ("status", json_str "done");
                   ("fname", json_str d.r_fname);
                   ("target", json_str d.r_target);
                   ("confidence", Printf.sprintf "%.4f" d.r_confidence);
                   ("degraded", string_of_int d.r_degraded);
                   ("resumed", string_of_bool d.r_resumed);
                   ("source", json_str d.r_source);
                 ])
          else
            Printf.printf "// %s@%s confidence %.2f%s%s\n%s\n" d.r_fname
              d.r_target d.r_confidence
              (if d.r_degraded > 0 then
                 Printf.sprintf " (%d degraded stmt(s))" d.r_degraded
               else "")
              (if d.r_resumed then " (resumed from journal)" else "")
              d.r_source
      | S.Proto.Rejected r ->
          if json then
            print_endline
              (json_obj
                 [
                   ("status", json_str "rejected");
                   ("reason", json_str (S.Proto.reject_label r));
                   ("detail", json_str (S.Proto.reject_to_string r));
                 ])
          else Printf.eprintf "vega-request: %s\n" (S.Proto.reject_to_string r);
          exit 4
      | S.Proto.Failed m ->
          if json then
            print_endline
              (json_obj
                 [ ("status", json_str "failed"); ("detail", json_str m) ])
          else Printf.eprintf "vega-request: %s\n" m;
          exit 5
    end
  in
  Cmd.v
    (Cmd.info "request"
       ~doc:
         "Send one request (or $(b,--health)/$(b,--drain)/$(b,--ping)) to a \
          running vega-serve daemon; exits 0 on success, 4 when the server \
          sheds the request, 5 on failure")
    Term.(
      const run $ socket_arg $ target_arg $ fname_arg $ client_arg
      $ deadline_arg $ health_flag $ drain_flag $ ping_flag $ json_flag)

let route_cmd =
  let shards_arg =
    Arg.(
      value
      & opt int 3
      & info [ "shards" ] ~docv:"N"
          ~doc:"Number of in-process serving shards behind the router.")
  in
  let policy_arg =
    Arg.(
      value
      & opt string "reroute"
      & info [ "policy" ] ~docv:"P"
          ~doc:
            "Degrade policy when a shard is down: $(b,reroute) walks the \
             ring successors, $(b,shed) answers a typed shard-down \
             rejection.")
  in
  let cache_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:
            "Content-addressed result cache: repeats of (model, description \
             files, function) are answered from checksummed entries under \
             $(docv) without touching a shard or the decoder.")
  in
  let run_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "run-dir" ] ~docv:"DIR"
          ~doc:
            "Durable fleet: shard $(i,i) journals under $(docv)/shard-$(i,i) \
             and can be resumed from its own segment after a crash.")
  in
  let queue_cap_arg =
    Arg.(
      value
      & opt int S.Server.default_config.S.Server.queue_cap
      & info [ "queue-cap" ] ~docv:"K"
          ~doc:"Per-shard admission queue bound.")
  in
  let run socket target model domains shards policy cache_dir run_dir queue_cap
      =
    let policy =
      match Sh.Router.policy_of_name policy with
      | Some p -> p
      | None ->
          Printf.eprintf "vega-route: unknown policy %s (reroute|shed)\n"
            policy;
          exit 1
    in
    if shards < 1 then begin
      Printf.eprintf "vega-route: need at least one shard\n";
      exit 1
    end;
    let t, decoder = mk_pipeline ~model in
    let fingerprint = Vega.Pipeline.fingerprint t ~target in
    let desc_hash =
      Sh.Cache.desc_hash_of_vfs
        t.Vega.Pipeline.prep.Vega.Pipeline.corpus.Vega_corpus.Corpus.vfs
        ~target
    in
    let config =
      { S.Server.default_config with S.Server.domains; queue_cap }
    in
    let servers =
      List.init shards (fun i ->
          let run_dir = Option.map (fun d -> Sh.Router.shard_run_dir d i) run_dir in
          match S.Server.create ~config ?run_dir t ~target ~decoder with
          | Ok srv -> (i, srv)
          | Error e ->
              Printf.eprintf "vega-route: shard %d failed to start: %s\n" i e;
              exit 1)
    in
    let cache =
      Option.map
        (fun dir -> Sh.Cache.create ~dir ~fingerprint ~desc_hash ())
        cache_dir
    in
    let eps =
      List.map
        (fun (i, srv) ->
          Sh.Router.of_server ~name:(Printf.sprintf "shard-%d" i) srv)
        servers
    in
    let rcfg = { Sh.Router.default_config with Sh.Router.policy } in
    match
      Sh.Router.create ~config:rcfg ?cache ~fingerprint ~desc_hash eps
    with
    | Error e ->
        Printf.eprintf "vega-route: %s\n" e;
        exit 1
    | Ok router -> (
        let l = Sh.Rsock.start router ~path:socket in
        Printf.printf
          "vega-route: %d shard(s) for %s on %s (policy %s%s%s)\n%!" shards
          target socket
          (Sh.Router.policy_name policy)
          (match cache_dir with
          | Some d -> Printf.sprintf ", cache %s" d
          | None -> "")
          (match run_dir with
          | Some d -> Printf.sprintf ", journals %s/shard-*" d
          | None -> "");
        match Sh.Rsock.wait l with
        | () ->
            let c = Sh.Router.counters router in
            Printf.printf
              "vega-route: drained — %d routed, %d cache hit(s), %d \
               reroute(s), %d shed\n"
              c.Sh.Router.rt_routed c.Sh.Router.rt_cache_hits
              c.Sh.Router.rt_reroutes c.Sh.Router.rt_sheds
        | exception Vega_robust.Journal.Killed n ->
            Printf.eprintf
              "vega-route: a shard simulated a crash after %d journal \
               record(s); restart with --resume on its segment\n"
              n;
            exit 2)
  in
  Cmd.v
    (Cmd.info "route"
       ~doc:
         "Run the sharded serving tier: a consistent-hash router over N \
          worker shards with per-shard circuit breakers, deterministic \
          reroute-or-shed degrade, and an optional content-addressed \
          result cache; speaks the same socket protocol as $(b,serve)")
    Term.(
      const run $ socket_arg $ target_arg $ model_flag $ domains_arg
      $ shards_arg $ policy_arg $ cache_dir_arg $ run_dir_arg $ queue_cap_arg)

let shard_status_cmd =
  let run socket json =
    match Sh.Rsock.shard_status ~socket with
    | None ->
        Printf.eprintf
          "vega-shard-status: no shard table from %s (is it a router?)\n"
          socket;
        exit 5
    | Some statuses ->
        if json then
          List.iter
            (fun (s : Sh.Router.shard_status) ->
              print_endline
                (json_obj
                   [
                     ("shard", json_str s.Sh.Router.ss_name);
                     ("breaker", json_str s.Sh.Router.ss_breaker);
                     ("state", json_str s.Sh.Router.ss_state);
                     ("routed", string_of_int s.Sh.Router.ss_routed);
                     ("failures", string_of_int s.Sh.Router.ss_failures);
                     ("rerouted", string_of_int s.Sh.Router.ss_rerouted);
                     ("shed", string_of_int s.Sh.Router.ss_shed);
                   ]))
            statuses
        else
          List.iter
            (fun (s : Sh.Router.shard_status) ->
              Printf.printf
                "%-12s breaker %-9s state %-8s routed %-6d failures %-4d \
                 rerouted %-4d shed %d\n"
                s.Sh.Router.ss_name s.Sh.Router.ss_breaker s.Sh.Router.ss_state
                s.Sh.Router.ss_routed s.Sh.Router.ss_failures
                s.Sh.Router.ss_rerouted s.Sh.Router.ss_shed)
            statuses
  in
  Cmd.v
    (Cmd.info "shard-status"
       ~doc:
         "Print a running router's per-shard table: breaker state, probed \
          health, routed/failure/reroute/shed counters")
    Term.(const run $ socket_arg $ json_flag)

let () =
  let doc = "VEGA: automatically generating compiler backends (reproduction)" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "vega-cli" ~doc)
          [
            stats_cmd;
            generate_cmd;
            backend_cmd;
            lint_cmd;
            verify_cmd;
            faultcheck_cmd;
            serve_cmd;
            request_cmd;
            route_cmd;
            shard_status_cmd;
            compile_cmd;
          ]))
