(* Unit and property tests for vega.util. *)

module Lcs = Vega_util.Lcs
module Strutil = Vega_util.Strutil
module Rng = Vega_util.Rng

let test_lcs_basic () =
  let xs = [| "a"; "b"; "c"; "d" |] and ys = [| "b"; "d"; "e" |] in
  Alcotest.(check int) "length" 2 (Lcs.lcs_length ~eq:String.equal xs ys);
  Alcotest.(check (list (pair int int)))
    "pairs" [ (1, 0); (3, 1) ]
    (Lcs.lcs ~eq:String.equal xs ys)

let test_lcs_empty () =
  Alcotest.(check int) "empty" 0 (Lcs.lcs_length ~eq:String.equal [||] [| "x" |]);
  Alcotest.(check (float 1e-9)) "similarity of empties" 1.0
    (Lcs.similarity ~eq:String.equal [||] [||])

let test_align () =
  let al = Lcs.align ~eq:String.equal [| "a"; "b" |] [| "b"; "c" |] in
  match al with
  | [ Lcs.Left "a"; Lcs.Both ("b", "b"); Lcs.Right "c" ] -> ()
  | _ -> Alcotest.fail "unexpected alignment"

let qcheck_lcs_bounds =
  QCheck.Test.make ~name:"lcs length bounded by min length" ~count:200
    QCheck.(pair (small_list small_nat) (small_list small_nat))
    (fun (xs, ys) ->
      let a = Array.of_list xs and b = Array.of_list ys in
      let l = Lcs.lcs_length ~eq:Int.equal a b in
      l <= min (Array.length a) (Array.length b) && l >= 0)

let qcheck_lcs_self =
  QCheck.Test.make ~name:"lcs of a sequence with itself is itself" ~count:100
    QCheck.(small_list small_nat)
    (fun xs ->
      let a = Array.of_list xs in
      Lcs.lcs_length ~eq:Int.equal a a = Array.length a)

let qcheck_similarity_sym =
  QCheck.Test.make ~name:"similarity is symmetric" ~count:100
    QCheck.(pair (small_list small_nat) (small_list small_nat))
    (fun (xs, ys) ->
      let a = Array.of_list xs and b = Array.of_list ys in
      Float.abs
        (Lcs.similarity ~eq:Int.equal a b -. Lcs.similarity ~eq:Int.equal b a)
      < 1e-9)

let test_camel_words () =
  Alcotest.(check (list string)) "IsPCRel" [ "Is"; "PC"; "Rel" ]
    (Strutil.camel_words "IsPCRel");
  Alcotest.(check (list string))
    "fixup_arm_movt_hi16"
    [ "fixup"; "arm"; "movt"; "hi16" ]
    (Strutil.camel_words "fixup_arm_movt_hi16");
  Alcotest.(check (list string)) "OPERAND_PCREL" [ "OPERAND"; "PCREL" ]
    (Strutil.camel_words "OPERAND_PCREL")

let test_loose_match () =
  Alcotest.(check bool) "IsPCRel ~ OPERAND_PCREL" true
    (Strutil.loose_match "IsPCRel" "OPERAND_PCREL");
  Alcotest.(check bool) "short fragments never match" false
    (Strutil.loose_match "Modifier" "r");
  Alcotest.(check bool) "unrelated" false (Strutil.loose_match "Kind" "little")

let test_partial_match () =
  Alcotest.(check bool) "substring" true (Strutil.partial_match "ARM" "ARM::fixup");
  Alcotest.(check bool) "empty never" false (Strutil.partial_match "" "x")

let test_levenshtein () =
  Alcotest.(check int) "kitten/sitting" 3 (Strutil.levenshtein "kitten" "sitting");
  Alcotest.(check int) "identical" 0 (Strutil.levenshtein "abc" "abc")

let qcheck_levenshtein_triangle =
  QCheck.Test.make ~name:"levenshtein triangle inequality" ~count:100
    QCheck.(triple (string_of_size (QCheck.Gen.return 5))
              (string_of_size (QCheck.Gen.return 5))
              (string_of_size (QCheck.Gen.return 5)))
    (fun (a, b, c) ->
      Strutil.levenshtein a c
      <= Strutil.levenshtein a b + Strutil.levenshtein b c)

let test_replace_all () =
  Alcotest.(check string) "replace" "RISCV::fixup_RISCV"
    (Strutil.replace_all ~sub:"Mips" ~by:"RISCV" "Mips::fixup_Mips")

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  let xs = List.init 20 (fun _ -> Rng.int a 1000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1000) in
  Alcotest.(check (list int)) "same seed, same stream" xs ys

let test_rng_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    if v < 0 || v >= 17 then Alcotest.fail "out of bounds"
  done

let test_shuffle_permutes () =
  let r = Rng.create 3 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_texttab () =
  let t = Vega_util.Texttab.create ~headers:[ "a"; "bb" ] in
  Vega_util.Texttab.add_row t [ "xxx"; "y" ];
  let s = Vega_util.Texttab.render t in
  Alcotest.(check bool) "contains row" true (Strutil.contains_sub ~sub:"xxx" s);
  Alcotest.(check string) "pct" "71.5%" (Vega_util.Texttab.fmt_pct 0.715)

let suite =
  [
    Alcotest.test_case "lcs basic" `Quick test_lcs_basic;
    Alcotest.test_case "lcs empty" `Quick test_lcs_empty;
    Alcotest.test_case "align" `Quick test_align;
    QCheck_alcotest.to_alcotest qcheck_lcs_bounds;
    QCheck_alcotest.to_alcotest qcheck_lcs_self;
    QCheck_alcotest.to_alcotest qcheck_similarity_sym;
    Alcotest.test_case "camel words" `Quick test_camel_words;
    Alcotest.test_case "loose match" `Quick test_loose_match;
    Alcotest.test_case "partial match" `Quick test_partial_match;
    Alcotest.test_case "levenshtein" `Quick test_levenshtein;
    QCheck_alcotest.to_alcotest qcheck_levenshtein_triangle;
    Alcotest.test_case "replace all" `Quick test_replace_all;
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutes;
    Alcotest.test_case "texttab" `Quick test_texttab;
  ]
