(* Tests for the pass@1 harness, ForkFlow baseline, and end-to-end
   generation with the retrieval decoder (the fast, deterministic arm). *)

module E = Vega_eval
module C = Vega_corpus.Corpus
module V = Vega

let quick_cases =
  List.filter_map Vega_ir.Programs.find
    [ "arith_basic"; "branches"; "globals_array"; "calls_simple" ]

let corpus = lazy (C.build ())
let riscv = Vega_target.Registry.riscv

let reference =
  lazy
    (E.Regression.reference_artifacts (Lazy.force corpus).C.vfs riscv
       ~cases:quick_cases ())

let test_reference_passes () =
  let vfs = (Lazy.force corpus).C.vfs in
  match
    E.Regression.check_sources vfs riscv
      ~sources:(E.Refbackend.sources_for riscv)
      ~reference:(Lazy.force reference) ~cases:quick_cases ()
  with
  | Ok () -> ()
  | Error f -> Alcotest.failf "reference failed %s: %s" f.f_case f.f_reason

let test_pass1_identity () =
  let vfs = (Lazy.force corpus).C.vfs in
  let spec = Option.get (C.find_spec "getRelocType") in
  let f = Option.get (C.reference_inlined spec riscv) in
  match
    E.Regression.pass1 vfs riscv ~reference:(Lazy.force reference)
      ~fname:"getRelocType" ~replacement:(Some f) ~cases:quick_cases ()
  with
  | Ok () -> ()
  | Error fl -> Alcotest.failf "identity replacement failed: %s" fl.f_reason

let test_pass1_detects_wrong_value () =
  let vfs = (Lazy.force corpus).C.vfs in
  (* a getBranchFixup returning the wrong fixup changes artifacts *)
  let wrong =
    Vega_srclang.Parser.parse_function
      "unsigned getBranchFixup() { return RISCV::fixup_riscv_jal; }"
  in
  match
    E.Regression.pass1 vfs riscv ~reference:(Lazy.force reference)
      ~fname:"getBranchFixup" ~replacement:(Some wrong) ~cases:quick_cases ()
  with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "wrong fixup kind must fail pass@1"

let test_pass1_detects_missing () =
  let vfs = (Lazy.force corpus).C.vfs in
  match
    E.Regression.pass1 vfs riscv ~reference:(Lazy.force reference)
      ~fname:"selectOpcode" ~replacement:None ~cases:quick_cases ()
  with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "missing hook must fail pass@1"

let test_forkflow_is_weak () =
  (* fork-from-MIPS with mechanical renames: fixup members survive the
     rename and are wrong for RISCV *)
  let forked = V.Forkflow.fork_backend ~dst:riscv in
  let spec, f =
    List.find (fun ((s : Vega_corpus.Spec.t), _) -> s.fname = "getRelocType") forked
  in
  ignore spec;
  let text = Vega_srclang.Lines.to_source (Vega_srclang.Lines.of_func f) in
  Alcotest.(check bool) "renamed class" true
    (Vega_util.Strutil.contains_sub ~sub:"RISCVELFObjectWriter" text);
  Alcotest.(check bool) "MIPS fixups leak through" true
    (Vega_util.Strutil.contains_sub ~sub:"fixup_Mips_HI16" text);
  let vfs = (Lazy.force corpus).C.vfs in
  match
    E.Regression.pass1 vfs riscv ~reference:(Lazy.force reference)
      ~fname:"getRelocType" ~replacement:(Some f) ~cases:quick_cases ()
  with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "forked getRelocType must fail pass@1"

(* ---- end-to-end generation with the retrieval decoder ---- *)

let pipeline =
  lazy
    (let prep = V.Pipeline.prepare ~corpus:(Lazy.force corpus) () in
     let cfg =
       {
         V.Pipeline.test_config with
         train_cfg = { V.Codebe.tiny_train_config with epochs = 0 };
       }
     in
     V.Pipeline.train cfg prep)

let test_generated_getreloctype_passes () =
  let t = Lazy.force pipeline in
  let gf =
    Option.get
      (V.Pipeline.generate_function t ~target:"RISCV"
         ~decoder:(V.Pipeline.retrieval_decoder t) ~fname:"getRelocType")
  in
  let source = V.Generate.source_of gf in
  (* structurally correct: parses, and has the variant-kind paragraph *)
  (match Vega_srclang.Parser.parse_function_opt source with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "generated getRelocType does not parse: %s" m);
  Alcotest.(check bool) "has RISCV variant arm" true
    (Vega_util.Strutil.contains_sub ~sub:"VK_GOT" source);
  Alcotest.(check bool) "enumerates riscv fixups" true
    (Vega_util.Strutil.contains_sub ~sub:"fixup_riscv_branch" source)

let test_generated_backend_accuracy_floor () =
  (* even the retrieval arm must beat ForkFlow by an order of magnitude *)
  let t = Lazy.force pipeline in
  let te =
    E.Metrics.evaluate_target t ~decoder:(V.Pipeline.retrieval_decoder t) riscv
      ~cases:quick_cases ()
  in
  let acc = E.Metrics.fn_accuracy te.E.Metrics.te_fns in
  Alcotest.(check bool)
    (Printf.sprintf "retrieval accuracy %.2f above floor" acc)
    true (acc > 0.35)

let test_forkflow_accuracy_ceiling () =
  (* our corpus is more uniform than real LLVM, so ForkFlow lands higher
     than the paper's <8%; the claim that survives scaling is the gap *)
  let t = Lazy.force pipeline in
  let fork =
    E.Metrics.evaluate_forkflow t.V.Pipeline.prep riscv ~cases:quick_cases ()
  in
  let gen =
    E.Metrics.evaluate_target t ~decoder:(V.Pipeline.retrieval_decoder t) riscv
      ~cases:quick_cases ()
  in
  let fa = E.Metrics.fn_accuracy fork.E.Metrics.te_fns in
  let ga = E.Metrics.fn_accuracy gen.E.Metrics.te_fns in
  Alcotest.(check bool)
    (Printf.sprintf "vega %.2f beats forkflow %.2f" ga fa)
    true (ga > fa)

let test_effort_model () =
  let t = Lazy.force pipeline in
  let te =
    E.Metrics.evaluate_target t ~decoder:(V.Pipeline.retrieval_decoder t) riscv
      ~cases:quick_cases ()
  in
  let h = E.Effort.total_hours E.Effort.developer_a te in
  Alcotest.(check bool) "hours positive and bounded" true (h >= 0.0 && h < 200.0)

let suite =
  [
    Alcotest.test_case "reference backend passes" `Quick test_reference_passes;
    Alcotest.test_case "pass@1 identity" `Quick test_pass1_identity;
    Alcotest.test_case "pass@1 detects wrong value" `Quick test_pass1_detects_wrong_value;
    Alcotest.test_case "pass@1 detects missing hook" `Quick test_pass1_detects_missing;
    Alcotest.test_case "forkflow is weak" `Quick test_forkflow_is_weak;
    Alcotest.test_case "generated getRelocType" `Slow test_generated_getreloctype_passes;
    Alcotest.test_case "generation accuracy floor" `Slow test_generated_backend_accuracy_floor;
    Alcotest.test_case "forkflow accuracy ceiling" `Slow test_forkflow_accuracy_ceiling;
    Alcotest.test_case "effort model" `Slow test_effort_model;
  ]
