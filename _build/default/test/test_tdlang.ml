(* Tests for the target-description subsystem: parsers, vfs, catalog. *)

module T = Vega_tdlang

let test_vfs () =
  let v = T.Vfs.create () in
  T.Vfs.add v ~path:"a/b/c.td" "x";
  T.Vfs.add v ~path:"a/d.h" "y";
  Alcotest.(check int) "files under a" 2 (List.length (T.Vfs.files_under v "a"));
  Alcotest.(check int) "file as root" 1 (List.length (T.Vfs.files_under v "a/d.h"));
  Alcotest.(check (option string)) "read" (Some "x") (T.Vfs.read v "a/b/c.td")

let test_td_parser () =
  let src =
    {|class Target {
  string Name = "";
  int IssueWidth = 1;
}
def ARM : Target {
  let Name = "ARM";
  let IssueWidth = 2;
  let Regs = [1, 2, 3];
}|}
  in
  let records = T.Td_parser.parse src in
  Alcotest.(check int) "one record" 1 (List.length records);
  let r = List.hd records in
  Alcotest.(check string) "name" "ARM" r.T.Td_ast.rec_name;
  Alcotest.(check bool) "field value" true
    (List.assoc "Name" r.T.Td_ast.fields = T.Td_ast.Vstr "ARM");
  Alcotest.(check (list string)) "class fields" [ "Name"; "IssueWidth" ]
    (List.assoc "Target" (T.Td_parser.classes src))

let test_h_parser () =
  let src =
    {|namespace ARM {
enum Fixups {
  fixup_a = FirstTargetFixupKind,
  fixup_b,
  fixup_c = 99
};
}
class MCExprX {
  enum VariantKind { VK_GOT = 1, VK_PLT };
  unsigned method(int x);
};
extern unsigned GlobalVar;|}
  in
  let decls = T.H_parser.parse src in
  Alcotest.(check int) "three decls" 3 (List.length decls);
  match decls with
  | [ T.Td_ast.Enum_top e; T.Td_ast.Class_decl (c, [ vk ]); T.Td_ast.Global_decl (_, g) ]
    ->
      Alcotest.(check string) "enum" "Fixups" e.T.Td_ast.enum_name;
      Alcotest.(check int) "members" 3 (List.length e.T.Td_ast.members);
      Alcotest.(check string) "class" "MCExprX" c;
      Alcotest.(check string) "nested enum" "VariantKind" vk.T.Td_ast.enum_name;
      Alcotest.(check string) "global" "GlobalVar" g
  | _ -> Alcotest.fail "unexpected shape"

let test_def_parser () =
  let rs = T.Def_parser.parse "ELF_RELOC(R_X_NONE, 0)\nELF_RELOC(R_X_32, 2)\n" in
  Alcotest.(check int) "two relocs" 2 (List.length rs);
  Alcotest.(check int) "value" 2 (List.nth rs 1).T.Td_ast.reloc_value

let mk_catalog () =
  let v = T.Vfs.create () in
  T.Vfs.add v ~path:"llvm/MC/MCFixup.h"
    "namespace m { enum MCFixupKind { FK_NONE = 0, FirstTargetFixupKind = 64 }; }";
  T.Vfs.add v ~path:"lib/Target/X/XFixupKinds.h"
    "namespace X { enum Fixups { fixup_x_a = FirstTargetFixupKind, fixup_x_b }; }";
  T.Vfs.add v ~path:"lib/Target/X/X.td"
    "def X : Target {\n  let Name = \"X\";\n  let IssueWidth = 3;\n}";
  T.Vfs.add v ~path:"llvm/BinaryFormat/ELFRelocs/X.def" "ELF_RELOC(R_X_NONE, 0)";
  v

let test_catalog_resolution () =
  let v = mk_catalog () in
  let llvm = T.Catalog.build v [ "llvm/MC" ] in
  let cat = T.Catalog.build v [ "llvm/MC"; "lib/Target/X"; "llvm/BinaryFormat/ELFRelocs/X.def" ] in
  Alcotest.(check (option int)) "sequential from ref" (Some 65)
    (T.Catalog.member_value cat "X::fixup_x_b");
  Alcotest.(check (option int)) "reloc" (Some 0)
    (T.Catalog.member_value cat "ELF::R_X_NONE");
  Alcotest.(check bool) "prop list has MCFixupKind" true
    (T.Catalog.is_prop llvm "MCFixupKind");
  (match T.Catalog.enum_of_member cat "fixup_x_a" with
  | Some ("Fixups", _) -> ()
  | _ -> Alcotest.fail "member lookup");
  Alcotest.(check (list (pair string string))) "assignments of Name"
    [ ("X", "lib/Target/X/X.td") ]
    (T.Catalog.assignments_of cat "Name");
  Alcotest.(check (list (pair string string))) "int field stringified"
    [ ("3", "lib/Target/X/X.td") ]
    (T.Catalog.assignments_of cat "IssueWidth")

let test_catalog_word_index () =
  let v = mk_catalog () in
  let cat = T.Catalog.build v [ "lib/Target/X" ] in
  Alcotest.(check bool) "word found" true (T.Catalog.find_word cat "fixup_x_a" <> []);
  Alcotest.(check bool) "absent word" true (T.Catalog.find_word cat "nonexistent" = [])

let suite =
  [
    Alcotest.test_case "vfs" `Quick test_vfs;
    Alcotest.test_case "td parser" `Quick test_td_parser;
    Alcotest.test_case "h parser" `Quick test_h_parser;
    Alcotest.test_case "def parser" `Quick test_def_parser;
    Alcotest.test_case "catalog resolution" `Quick test_catalog_resolution;
    Alcotest.test_case "catalog word index" `Quick test_catalog_word_index;
  ]
