(* Tests for the corpus: spec coverage, description-file rendering and
   parse-back, reference-implementation behaviour. *)

module C = Vega_corpus.Corpus
module P = Vega_target.Profile
module M = Vega_target.Module_id

let corpus = lazy (C.build ())

let test_spec_coverage () =
  let by_module m =
    List.length (List.filter (fun (s : Vega_corpus.Spec.t) -> s.module_ = m) C.all_specs)
  in
  Alcotest.(check bool) "74 specs" true (List.length C.all_specs >= 70);
  List.iter
    (fun m ->
      Alcotest.(check bool)
        (M.name m ^ " has specs")
        true
        (by_module m >= 5))
    M.all

let test_applies_axes () =
  let spec name = Option.get (C.find_spec name) in
  Alcotest.(check bool) "hwloop spec on RI5CY" true
    ((spec "getHardwareLoopOpcode").applies Vega_target.Registry.ri5cy);
  Alcotest.(check bool) "hwloop spec not on RISCV" false
    ((spec "getHardwareLoopOpcode").applies Vega_target.Registry.riscv);
  Alcotest.(check bool) "DIS absent on XCore" false
    ((spec "getInstruction").applies Vega_target.Registry.xcore);
  Alcotest.(check bool) "relaxation only on relaxing targets" false
    ((spec "mayNeedRelaxation").applies Vega_target.Registry.mips)

let test_description_files_parse () =
  let corpus = Lazy.force corpus in
  let vfs = corpus.C.vfs in
  List.iter
    (fun (p : P.t) ->
      let files = Vega_tdlang.Vfs.files_under_dirs vfs (Vega_tdlang.Vfs.tgtdirs p.name) in
      Alcotest.(check bool) (p.name ^ " has files") true (List.length files >= 5);
      List.iter
        (fun (path, content) ->
          if Filename.check_suffix path ".td" then
            match Vega_tdlang.Td_parser.parse content with
            | _ -> ()
            | exception Vega_tdlang.Td_parser.Error m ->
                Alcotest.failf "%s: %s" path m
          else if Filename.check_suffix path ".h" then
            match Vega_tdlang.H_parser.parse content with
            | _ -> ()
            | exception Vega_tdlang.H_parser.Error m ->
                Alcotest.failf "%s: %s" path m
          else if Filename.check_suffix path ".def" then
            match Vega_tdlang.Def_parser.parse content with
            | _ -> ()
            | exception Vega_tdlang.Def_parser.Error m ->
                Alcotest.failf "%s: %s" path m)
        files)
    Vega_target.Registry.all

let test_all_references_render_and_parse () =
  (* every reference implementation pretty-prints and re-parses *)
  List.iter
    (fun (p : P.t) ->
      List.iter
        (fun spec ->
          match C.reference_inlined spec p with
          | None -> ()
          | Some f ->
              let text = Vega_srclang.Lines.to_source (Vega_srclang.Lines.of_func f) in
              (match Vega_srclang.Parser.parse_function_opt text with
              | Ok f2 ->
                  if not (Vega_srclang.Ast.equal_func f f2) then
                    Alcotest.failf "%s/%s roundtrip" p.name
                      spec.Vega_corpus.Spec.fname
              | Error m ->
                  Alcotest.failf "%s/%s: %s" p.name spec.Vega_corpus.Spec.fname m))
        C.all_specs)
    Vega_target.Registry.all

let test_reference_behaviour_getreloctype () =
  (* the paper's Fig. 2 semantics, executed *)
  let corpus = Lazy.force corpus in
  let p = Vega_target.Registry.arm in
  let hooks, _ = Vega_eval.Refbackend.backend_for corpus.C.vfs p in
  let call kind pcrel variant =
    Vega_backend.Hooks.call_int hooks "getRelocType"
      [
        Vega_backend.Hooks.mcvalue ~variant;
        Vega_backend.Hooks.mcfixup ~kind;
        Vega_backend.Hooks.vbool pcrel;
      ]
  in
  let enum = Vega_backend.Hooks.enum_value hooks in
  Alcotest.(check int) "movt pcrel"
    (enum "ELF::R_ARM_MOVT_PREL")
    (call (enum "ARM::fixup_arm_movt_hi16") true 0);
  Alcotest.(check int) "movt abs"
    (enum "ELF::R_ARM_MOVT_ABS")
    (call (enum "ARM::fixup_arm_movt_hi16") false 0);
  Alcotest.(check int) "GOT variant overrides"
    (enum "ELF::R_ARM_GOT_BREL")
    (call (enum "ARM::fixup_arm_abs32") false (enum "ARMMCExpr::VK_GOT"))

let test_render_deterministic () =
  let a = C.build () and b = C.build () in
  let paths v = List.map fst (Vega_tdlang.Vfs.files_under v "lib/Target/RISCV") in
  Alcotest.(check (list string)) "same paths" (paths a.C.vfs) (paths b.C.vfs);
  Alcotest.(check (option string)) "same content"
    (Vega_tdlang.Vfs.read a.C.vfs "lib/Target/RISCV/RISCVFixupKinds.h")
    (Vega_tdlang.Vfs.read b.C.vfs "lib/Target/RISCV/RISCVFixupKinds.h")

let test_ifchain_targets_normalize () =
  (* Sparc renders getRelocType as if/else-if; normalization recovers the
     same behaviour as the switch form *)
  let spec = Option.get (C.find_spec "adjustFixupValue") in
  let p = Vega_target.Registry.find_exn "Sparc" in
  let f = Option.get (C.reference_inlined spec p) in
  let has_switch =
    List.exists
      (fun (l : Vega_srclang.Lines.t) -> l.kind = Vega_srclang.Lines.Open_switch)
      (Vega_srclang.Lines.of_func f)
  in
  Alcotest.(check bool) "sparc uses if-chains" false has_switch;
  let g = Vega.Preprocess.normalize_ifchains f in
  let has_switch_after =
    List.exists
      (fun (l : Vega_srclang.Lines.t) -> l.kind = Vega_srclang.Lines.Open_switch)
      (Vega_srclang.Lines.of_func g)
  in
  Alcotest.(check bool) "normalized to switch" true has_switch_after

let suite =
  [
    Alcotest.test_case "spec coverage" `Quick test_spec_coverage;
    Alcotest.test_case "applies axes" `Quick test_applies_axes;
    Alcotest.test_case "description files parse" `Quick test_description_files_parse;
    Alcotest.test_case "references render+parse" `Quick test_all_references_render_and_parse;
    Alcotest.test_case "getRelocType behaviour (Fig. 2)" `Quick test_reference_behaviour_getreloctype;
    Alcotest.test_case "render deterministic" `Quick test_render_deterministic;
    Alcotest.test_case "if-chain targets normalize" `Quick test_ifchain_targets_normalize;
  ]
