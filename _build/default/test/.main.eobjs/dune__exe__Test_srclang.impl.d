test/test_srclang.ml: Alcotest List QCheck QCheck_alcotest Vega_srclang
