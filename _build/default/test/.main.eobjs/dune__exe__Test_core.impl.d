test/test_core.ml: Alcotest Lazy List Option Printf QCheck QCheck_alcotest Vega Vega_corpus Vega_nn Vega_srclang Vega_target
