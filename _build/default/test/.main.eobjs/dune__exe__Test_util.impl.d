test/test_util.ml: Alcotest Array Float Fun Int List QCheck QCheck_alcotest String Vega_util
