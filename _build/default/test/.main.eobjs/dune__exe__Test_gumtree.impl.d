test/test_gumtree.ml: Alcotest Array Fun List QCheck QCheck_alcotest Vega_gumtree
