test/test_corpus.ml: Alcotest Filename Lazy List Option Vega Vega_backend Vega_corpus Vega_eval Vega_srclang Vega_target Vega_tdlang
