test/test_tdlang.ml: Alcotest List Vega_tdlang
