test/main.mli:
