test/main.ml: Alcotest Test_backend Test_core Test_corpus Test_endtoend Test_eval Test_gumtree Test_ir Test_nn Test_srclang Test_target Test_tdlang Test_util
