test/test_endtoend.ml: Alcotest Buffer Lazy List Option Printf QCheck QCheck_alcotest Vega Vega_backend Vega_corpus Vega_eval Vega_ir Vega_sim Vega_target
