test/test_ir.ml: Alcotest List Option Vega_ir
