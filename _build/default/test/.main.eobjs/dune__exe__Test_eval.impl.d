test/test_eval.ml: Alcotest Lazy List Option Printf Vega Vega_corpus Vega_eval Vega_ir Vega_srclang Vega_target Vega_util
