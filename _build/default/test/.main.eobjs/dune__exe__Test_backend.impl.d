test/test_backend.ml: Alcotest Lazy List Option Vega_backend Vega_corpus Vega_ir Vega_mc Vega_sim Vega_srclang Vega_target Vega_util
