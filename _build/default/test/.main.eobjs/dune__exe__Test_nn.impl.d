test/test_nn.ml: Alcotest Array Filename Float List Sys Vega Vega_nn Vega_util
