test/test_target.ml: Alcotest Fun List Option Vega_target
