(* Invariant tests over every registered target profile. *)

module P = Vega_target.Profile
module R = Vega_target.Registry

let each_target f = List.iter (fun p -> f p) R.all

let test_counts () =
  Alcotest.(check int) "training targets" 14 (List.length R.training);
  Alcotest.(check int) "held-out targets" 3 (List.length R.held_out);
  Alcotest.(check (list string)) "held-out names" [ "RISCV"; "RI5CY"; "XCore" ]
    (List.map (fun (p : P.t) -> p.name) R.held_out)

let test_unique_opcodes () =
  each_target (fun p ->
      let opcodes = List.map (fun (i : P.insn) -> i.opcode) p.P.insns in
      Alcotest.(check int)
        (p.P.name ^ " opcodes unique")
        (List.length opcodes)
        (List.length (List.sort_uniq compare opcodes)))

let test_registers_sane () =
  each_target (fun p ->
      let r = p.P.regs in
      let in_range x = x >= 0 && x < r.P.reg_count in
      Alcotest.(check bool) (p.P.name ^ " sp") true (in_range r.P.sp);
      Alcotest.(check bool) (p.P.name ^ " ra") true (in_range r.P.ra);
      Alcotest.(check bool) (p.P.name ^ " fp") true (in_range r.P.fp);
      Alcotest.(check bool) (p.P.name ^ " args in range") true
        (List.for_all in_range r.P.arg_regs);
      Alcotest.(check bool) (p.P.name ^ " sp reserved") true
        (List.mem r.P.sp r.P.reserved);
      Alcotest.(check bool) (p.P.name ^ " ra reserved") true
        (List.mem r.P.ra r.P.reserved);
      Alcotest.(check bool) (p.P.name ^ " ret not reserved") true
        (not (List.mem r.P.ret_reg r.P.reserved));
      (* enough allocatable registers for the backend's scratch set *)
      let allocatable =
        List.filter
          (fun x ->
            (not (List.mem x r.P.reserved))
            && (not (List.mem x r.P.arg_regs))
            && x <> r.P.ret_reg
            && match r.P.zero with Some z -> x <> z | None -> true)
          (List.init r.P.reg_count Fun.id)
      in
      Alcotest.(check bool) (p.P.name ^ " >=3 allocatable") true
        (List.length allocatable >= 3))

let test_fixups_sane () =
  each_target (fun p ->
      let names = List.map (fun (f : P.fixup) -> f.fx_name) p.P.fixups in
      Alcotest.(check int)
        (p.P.name ^ " fixup names unique")
        (List.length names)
        (List.length (List.sort_uniq compare names));
      List.iter
        (fun (f : P.fixup) ->
          Alcotest.(check bool) (f.fx_name ^ " bits sane") true
            (f.P.fx_bits > 0 && f.P.fx_bits <= 64))
        p.P.fixups)

let test_relocs_numbered () =
  each_target (fun p ->
      let rs = P.all_relocs p in
      Alcotest.(check bool) (p.P.name ^ " has relocs") true (List.length rs > 1);
      List.iteri
        (fun i (_, v) -> Alcotest.(check int) "sequential" i v)
        rs)

let test_mnemonic_form_unique () =
  (* a mnemonic may be shared by at most one register form and one
     immediate form (the AsmMatcher disambiguation contract) *)
  let imm_form (i : P.insn) =
    match i.op_class with
    | P.Alui | P.Movi | P.Load | P.Store | P.LoopSetup -> true
    | _ -> false
  in
  each_target (fun p ->
      let keys = List.map (fun i -> (i.P.mnemonic, imm_form i)) p.P.insns in
      Alcotest.(check int)
        (p.P.name ^ " mnemonic/form unique")
        (List.length keys)
        (List.length (List.sort_uniq compare keys)))

let test_held_out_features () =
  let riscv = R.riscv and ri5cy = R.ri5cy and xcore = R.xcore in
  Alcotest.(check bool) "RI5CY has hwloop" true ri5cy.P.features.P.has_hwloop;
  Alcotest.(check bool) "RI5CY has simd" true ri5cy.P.features.P.has_simd;
  Alcotest.(check bool) "RISCV no hwloop" false riscv.P.features.P.has_hwloop;
  Alcotest.(check bool) "XCore has no disassembler" false
    xcore.P.features.P.has_disassembler;
  Alcotest.(check bool) "paper's S2 axis: ARM has variant kinds" true
    R.arm.P.features.P.has_variant_kinds;
  Alcotest.(check bool) "paper's S2 axis: MIPS does not" false
    R.mips.P.features.P.has_variant_kinds

let test_module_ids () =
  Alcotest.(check int) "seven modules" 7 (List.length Vega_target.Module_id.all);
  Alcotest.(check (option string)) "roundtrip" (Some "EMI")
    (Option.map Vega_target.Module_id.name
       (Vega_target.Module_id.of_name "EMI"))

let suite =
  [
    Alcotest.test_case "counts" `Quick test_counts;
    Alcotest.test_case "unique opcodes" `Quick test_unique_opcodes;
    Alcotest.test_case "registers sane" `Quick test_registers_sane;
    Alcotest.test_case "fixups sane" `Quick test_fixups_sane;
    Alcotest.test_case "relocs numbered" `Quick test_relocs_numbered;
    Alcotest.test_case "mnemonic forms unique" `Quick test_mnemonic_form_unique;
    Alcotest.test_case "held-out features" `Quick test_held_out_features;
    Alcotest.test_case "module ids" `Quick test_module_ids;
  ]
