(* Tests for the GumTree-style matcher and the statement aligner. *)

module G = Vega_gumtree

let leafs = List.map G.Tree.leaf

let test_isomorphic () =
  let a = G.Tree.node "f" (leafs [ "x"; "y" ]) in
  let b = G.Tree.node "f" (leafs [ "x"; "y" ]) in
  let c = G.Tree.node "f" (leafs [ "x"; "z" ]) in
  Alcotest.(check bool) "iso" true (G.Tree.isomorphic a b);
  Alcotest.(check bool) "not iso" false (G.Tree.isomorphic a c)

let test_descendants () =
  let t = G.Tree.node "a" [ G.Tree.node "b" (leafs [ "c" ]); G.Tree.leaf "d" ] in
  Alcotest.(check int) "count" 4 (List.length (G.Tree.descendants t));
  Alcotest.(check int) "size" 4 t.G.Tree.size;
  Alcotest.(check int) "height" 2 t.G.Tree.height

let test_top_down () =
  let t1 =
    G.Tree.of_lines [ ("simple", [ "a"; "b" ]); ("if", [ "if"; "("; "c"; ")" ]) ]
  in
  let t2 =
    G.Tree.of_lines [ ("simple", [ "a"; "b" ]); ("if", [ "if"; "("; "d"; ")" ]) ]
  in
  let m = G.Matching.top_down t1 t2 in
  (* the identical statement subtree is matched as an anchor *)
  let stmt1 = List.hd t1.G.Tree.children in
  match G.Matching.src_of m stmt1 with
  | Some img -> Alcotest.(check string) "anchored" "simple" img.G.Tree.label
  | None -> Alcotest.fail "no anchor match"

let test_bottom_up () =
  let t1 = G.Tree.of_lines [ ("case", [ "case"; "A"; ":" ]) ] in
  let t2 = G.Tree.of_lines [ ("case", [ "case"; "B"; ":" ]) ] in
  let m = G.Matching.gumtree t1 t2 in
  (* roots must pair despite differing leaves *)
  match G.Matching.src_of m t1 with
  | Some img -> Alcotest.(check bool) "roots matched" true (img.G.Tree.id = t2.G.Tree.id)
  | None -> Alcotest.fail "roots unmatched"

let mk_lines l = Array.of_list (List.map (fun toks -> ("simple", toks)) l)

let test_align_monotone () =
  let left = mk_lines [ [ "a"; "1" ]; [ "b"; "2" ]; [ "c"; "3" ] ] in
  let right = mk_lines [ [ "a"; "1" ]; [ "x"; "9"; "9"; "9" ]; [ "c"; "3" ] ] in
  let slots = G.Stmt_align.align left right in
  let pairs =
    List.filter_map
      (fun { G.Stmt_align.left; right } ->
        match (left, right) with Some i, Some j -> Some (i, j) | _ -> None)
      slots
  in
  Alcotest.(check bool) "monotone" true
    (List.for_all2 (fun (a, b) (c, d) -> a < c && b < d)
       (List.filteri (fun i _ -> i < List.length pairs - 1) pairs)
       (List.tl pairs));
  Alcotest.(check bool) "a and c paired" true
    (List.mem (0, 0) pairs && List.mem (2, 2) pairs)

let qcheck_align_covers =
  let gen =
    QCheck.(pair (small_list (small_list small_nat)) (small_list (small_list small_nat)))
  in
  QCheck.Test.make ~name:"alignment covers every index exactly once" ~count:100 gen
    (fun (l, r) ->
      let to_arr x =
        Array.of_list (List.map (fun toks -> ("k", List.map string_of_int toks)) x)
      in
      let left = to_arr l and right = to_arr r in
      let slots = G.Stmt_align.align left right in
      let ls = List.filter_map (fun s -> s.G.Stmt_align.left) slots in
      let rs = List.filter_map (fun s -> s.G.Stmt_align.right) slots in
      ls = List.init (Array.length left) Fun.id
      && rs = List.init (Array.length right) Fun.id)

let test_function_similarity () =
  let a = mk_lines [ [ "x" ]; [ "y" ] ] in
  Alcotest.(check (float 1e-9)) "self" 1.0 (G.Stmt_align.function_similarity a a);
  let b = mk_lines [ [ "completely" ]; [ "different"; "tokens" ] ] in
  Alcotest.(check bool) "dissimilar" true
    (G.Stmt_align.function_similarity a b < 0.5)

let suite =
  [
    Alcotest.test_case "isomorphic" `Quick test_isomorphic;
    Alcotest.test_case "descendants" `Quick test_descendants;
    Alcotest.test_case "top down" `Quick test_top_down;
    Alcotest.test_case "bottom up" `Quick test_bottom_up;
    Alcotest.test_case "align monotone" `Quick test_align_monotone;
    QCheck_alcotest.to_alcotest qcheck_align_covers;
    Alcotest.test_case "function similarity" `Quick test_function_similarity;
  ]
