(* Tests for VIR: parser round-trips, interpreter semantics, programs. *)

module Ir = Vega_ir

let test_parse_print_roundtrip () =
  List.iter
    (fun (c : Ir.Programs.case) ->
      let m = Ir.Programs.modul_of c in
      let m2 = Ir.Vir_parser.parse (Ir.Vir.modul_str m) in
      Alcotest.(check bool) (c.name ^ " roundtrip") true (Ir.Vir.equal_modul m m2))
    (Ir.Programs.regression @ Ir.Programs.benchmarks)

let test_goldens () =
  let check name expected =
    let c = Option.get (Ir.Programs.find name) in
    Alcotest.(check (list int)) name expected (Ir.Programs.golden c)
  in
  check "arith_basic" [ 25; 17; 84; 5; 1 ];
  check "loop_sum" [ 55 ];
  check "recursion_fib" [ 144 ];
  check "calls_many_args" [ 45 ];
  check "globals_array" [ 31 ];
  check "vec_friendly" [ 272 ]

let test_interp_errors () =
  let run src =
    Ir.Vir_interp.run (Ir.Vir_parser.parse src) ~entry:"main" ~args:[]
  in
  (match run "func @main() {\nentry:\n  %r0 = div 1, 0\n  ret 0\n}" with
  | exception Ir.Vir_interp.Error _ -> ()
  | _ -> Alcotest.fail "expected division error");
  (match run "func @main() {\nentry:\n  br loop\nloop:\n  br loop\n}" with
  | exception Ir.Vir_interp.Error _ -> ()
  | _ -> Alcotest.fail "expected fuel exhaustion");
  match run "func @main() {\nentry:\n  %r0 = call @nope()\n  ret 0\n}" with
  | exception Ir.Vir_interp.Error _ -> ()
  | _ -> Alcotest.fail "expected unknown function"

let test_parser_errors () =
  List.iter
    (fun src ->
      match Ir.Vir_parser.parse src with
      | exception Ir.Vir_parser.Error _ -> ()
      | _ -> Alcotest.failf "expected parse error for %s" src)
    [
      "func @f() {\nentry:\n  %r0 = bogus 1, 2\n  ret 0\n}";
      "func @f() {\nentry:\n  ret 0";
      "func @f() {\n  %r0 = mov 1\n  ret 0\n}" (* instr outside a block *);
    ]

let test_wrap_semantics () =
  let src =
    {|func @main() {
entry:
  %r0 = mov 2147483647
  %r1 = add %r0, 1
  print %r1
  ret 0
}|}
  in
  let out, _ = Ir.Vir_interp.run (Ir.Vir_parser.parse src) ~entry:"main" ~args:[] in
  Alcotest.(check (list int)) "32-bit wraparound" [ -2147483648 ] out

let test_max_reg () =
  let c = Option.get (Ir.Programs.find "matmul") in
  let f = Option.get (Ir.Vir.find_func (Ir.Programs.modul_of c) "main") in
  Alcotest.(check bool) "max reg sane" true (Ir.Vir.max_reg f >= 30)

let suite =
  [
    Alcotest.test_case "parse/print roundtrip" `Quick test_parse_print_roundtrip;
    Alcotest.test_case "goldens" `Quick test_goldens;
    Alcotest.test_case "interp errors" `Quick test_interp_errors;
    Alcotest.test_case "parser errors" `Quick test_parser_errors;
    Alcotest.test_case "wraparound" `Quick test_wrap_semantics;
    Alcotest.test_case "max reg" `Quick test_max_reg;
  ]
