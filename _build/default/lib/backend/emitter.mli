(** Code emission: layout, branch relaxation, assembly printing with
    llvm-mc-style fixup annotations, instruction encoding, fixup
    resolution and relocation records — all through the EMI hooks.

    The emitted program keeps its pre-encoding instruction stream (for the
    simulator) alongside the object artifacts (for artifact-level
    regression comparison). *)

type t = {
  insts : Vega_mc.Mcinst.inst array;  (** flattened, post-relaxation *)
  inst_addr : int array;  (** byte address of each instruction *)
  labels : (string * int) list;  (** label -> instruction index *)
  sym_addrs : (string * int) list;  (** every symbol -> byte address *)
  data_base : int;
  obj : Vega_mc.Mcinst.obj;
  asm : string;
}

val emit :
  Conv.t -> Vega_mc.Mcinst.mfunc list -> globals:Vega_ir.Vir.global list -> t
(** @raise Hooks.Hook_error when an EMI hook misbehaves. *)

val label_index : t -> string -> int option
val find_sym : t -> string -> int option
