type opt_level = O0 | O3

type output = {
  emitted : Emitter.t;
  asm : string;
  mfuncs : Vega_mc.Mcinst.mfunc list;
  globals : Vega_ir.Vir.global list;
}

let compile conv ~opt (m : Vega_ir.Vir.modul) =
  let o3 = opt = O3 in
  let mfuncs =
    List.map
      (fun f ->
        let f = if o3 then Optpasses.vectorize conv f else f in
        let out = Isel.lower conv ~opt:o3 f in
        if o3 then begin
          Optpasses.combine_mul_add conv out.Isel.mfunc;
          Optpasses.fuse_cmp_branch conv out.Isel.mfunc;
          Optpasses.hardware_loops conv out.Isel.mfunc;
          Optpasses.peephole conv out.Isel.mfunc;
          Sched.run conv out.Isel.mfunc
        end;
        let mf = Regalloc.run conv out in
        if o3 then Sched.run_post_ra conv mf;
        mf)
      m.Vega_ir.Vir.funcs
  in
  let emitted = Emitter.emit conv mfuncs ~globals:m.Vega_ir.Vir.globals in
  { emitted; asm = emitted.Emitter.asm; mfuncs; globals = m.Vega_ir.Vir.globals }
