(** Disassembler: decode the emitted text section through the DIS hooks
    (byte reassembly per endianness, opcode validation, register and
    immediate field extraction) and print one line per instruction.

    Targets without DIS hooks (XCORE, per Sec. 4.1.4) report
    [Error "no disassembler"]. Regression compares the decoded text
    against the reference hooks' decoded text. *)

val decode : Conv.t -> Vega_mc.Mcinst.obj -> (string, string) result
