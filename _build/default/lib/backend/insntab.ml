type alu = Aadd | Asub | Aand | Aor | Axor | Ashl | Ashr | Aslt
type cond = Ceq | Cne | Clt | Cge

type sem =
  | Salu of alu
  | Salui of alu
  | Smovi
  | Smov
  | Smul
  | Sdiv
  | Sload
  | Sstore
  | Sbranch of cond
  | Sjump
  | Scall
  | Sret
  | Snop
  | Smadd
  | Svadd
  | Svmul
  | Slpsetup
  | Slpend

type info = {
  enum_name : string;
  mnemonic : string;
  opcode : int;
  latency : int;
  micro_ops : int;
  operand_type : string;
  imm_bits : int;
  sem : sem;
}

type t = {
  infos : info list;
  opc : (int, info) Hashtbl.t;
  enm : (string, info) Hashtbl.t;
  mnem : (string, info) Hashtbl.t;
}

let sem_of_enum = function
  | "ADDrr" -> Some (Salu Aadd)
  | "SUBrr" -> Some (Salu Asub)
  | "ANDrr" -> Some (Salu Aand)
  | "ORrr" -> Some (Salu Aor)
  | "XORrr" -> Some (Salu Axor)
  | "SHLrr" -> Some (Salu Ashl)
  | "SHRrr" -> Some (Salu Ashr)
  | "SLTrr" -> Some (Salu Aslt)
  | "ADDri" -> Some (Salui Aadd)
  | "ANDri" -> Some (Salui Aand)
  | "ORri" -> Some (Salui Aor)
  | "SHLri" -> Some (Salui Ashl)
  | "SHRri" -> Some (Salui Ashr)
  | "SLTri" -> Some (Salui Aslt)
  | "LIi" -> Some Smovi
  | "MOVrr" -> Some Smov
  | "MULrr" -> Some Smul
  | "DIVrr" -> Some Sdiv
  | "LDri" -> Some Sload
  | "STri" -> Some Sstore
  | "BEQ" -> Some (Sbranch Ceq)
  | "BNE" -> Some (Sbranch Cne)
  | "BLT" -> Some (Sbranch Clt)
  | "BGE" -> Some (Sbranch Cge)
  | "JMP" -> Some Sjump
  | "CALL" -> Some Scall
  | "RET" -> Some Sret
  | "NOP" -> Some Snop
  | "MADDrr" -> Some Smadd
  | "VADDrr" -> Some Svadd
  | "VMULrr" -> Some Svmul
  | "LPSETUP" -> Some Slpsetup
  | "LPEND" -> Some Slpend
  | _ -> None

let str_field (r : Vega_tdlang.Td_ast.record) field =
  match List.assoc_opt field r.fields with
  | Some (Vega_tdlang.Td_ast.Vstr s) -> Some s
  | _ -> None

let int_field (r : Vega_tdlang.Td_ast.record) field =
  match List.assoc_opt field r.fields with
  | Some (Vega_tdlang.Td_ast.Vint n) -> Some n
  | _ -> None

let build catalog =
  let infos =
    List.filter_map
      (fun (_, (r : Vega_tdlang.Td_ast.record)) ->
        if r.rec_class <> "Instruction" then None
        else
          let enum_name = Option.value ~default:r.rec_name (str_field r "EnumName") in
          match sem_of_enum enum_name with
          | None -> None
          | Some sem ->
              Some
                {
                  enum_name;
                  mnemonic = Option.value ~default:"" (str_field r "Mnemonic");
                  opcode = Option.value ~default:0 (int_field r "Opcode");
                  latency = Option.value ~default:1 (int_field r "Latency");
                  micro_ops = Option.value ~default:1 (int_field r "MicroOps");
                  operand_type = Option.value ~default:"" (str_field r "OperandType");
                  imm_bits = Option.value ~default:16 (int_field r "ImmBits");
                  sem;
                })
      (Vega_tdlang.Catalog.records catalog)
  in
  let opc = Hashtbl.create 64 and enm = Hashtbl.create 64 and mnem = Hashtbl.create 64 in
  List.iter
    (fun i ->
      Hashtbl.replace opc i.opcode i;
      Hashtbl.replace enm i.enum_name i;
      if not (Hashtbl.mem mnem i.mnemonic) then Hashtbl.add mnem i.mnemonic i)
    infos;
  { infos; opc; enm; mnem }

let by_opcode t o = Hashtbl.find_opt t.opc o
let by_enum t e = Hashtbl.find_opt t.enm e
let by_mnemonic t m = Hashtbl.find_opt t.mnem m

let opcode_exn t e =
  match by_enum t e with
  | Some i -> i.opcode
  | None -> invalid_arg (Printf.sprintf "Insntab.opcode_exn: no %s" e)

let mem_enum t e = Hashtbl.mem t.enm e
let all t = t.infos
