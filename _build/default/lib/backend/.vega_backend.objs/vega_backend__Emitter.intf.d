lib/backend/emitter.mli: Conv Vega_ir Vega_mc
