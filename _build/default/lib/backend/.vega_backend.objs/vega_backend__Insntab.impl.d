lib/backend/insntab.ml: Hashtbl List Option Printf Vega_tdlang
