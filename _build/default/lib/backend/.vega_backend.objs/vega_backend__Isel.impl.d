lib/backend/isel.ml: Conv Hashtbl Hooks Insntab List Vega_ir Vega_mc
