lib/backend/optpasses.mli: Conv Vega_ir Vega_mc
