lib/backend/compiler.mli: Conv Emitter Vega_ir Vega_mc
