lib/backend/emitter.ml: Array Buffer Conv Hashtbl Hooks Insntab Isel List Option Printf String Vega_ir Vega_mc
