lib/backend/regalloc.ml: Array Conv Fun Hashtbl Hooks Insntab Isel List Vega_mc
