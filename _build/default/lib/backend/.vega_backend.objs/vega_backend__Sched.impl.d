lib/backend/sched.ml: Array Conv Hooks Insntab List Option Regalloc Vega_mc
