lib/backend/disasm.mli: Conv Vega_mc
