lib/backend/hooks.mli: Vega_mc Vega_srclang Vega_tdlang
