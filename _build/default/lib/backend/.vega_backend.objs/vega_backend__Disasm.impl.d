lib/backend/disasm.ml: Array Buffer Conv Hooks Insntab List Printf String Vega_mc
