lib/backend/asmparser.ml: Array Conv Emitter Hooks List Printf String Vega_mc Vega_util
