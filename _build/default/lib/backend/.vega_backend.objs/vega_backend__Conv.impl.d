lib/backend/conv.ml: Hooks Insntab List Option Printf Vega_tdlang
