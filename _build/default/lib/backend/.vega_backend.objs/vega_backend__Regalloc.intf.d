lib/backend/regalloc.mli: Conv Insntab Isel Vega_mc
