lib/backend/sched.mli: Conv Vega_mc
