lib/backend/optpasses.ml: Array Conv Hashtbl Hooks Insntab List Option Regalloc Vega_ir Vega_mc
