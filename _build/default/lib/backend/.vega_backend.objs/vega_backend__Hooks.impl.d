lib/backend/hooks.ml: Array List Vega_mc Vega_srclang Vega_tdlang
