lib/backend/asmparser.mli: Conv Emitter Vega_mc
