lib/backend/conv.mli: Hooks Insntab Vega_tdlang
