lib/backend/isel.mli: Conv Vega_ir Vega_mc
