lib/backend/insntab.mli: Vega_tdlang
