lib/backend/compiler.ml: Emitter Isel List Optpasses Regalloc Sched Vega_ir Vega_mc
