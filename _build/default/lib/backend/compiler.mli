(** MiniLLVM driver: the full retargetable pipeline of Fig. 1 over one VIR
    module, with every target-specific decision delegated to hooks.

    -O0 runs selection, allocation and emission only; -O3 adds the
    vectorizer, immediate folding, compare-branch fusion, hardware loops,
    peephole and both scheduling passes. *)

type opt_level = O0 | O3

type output = {
  emitted : Emitter.t;
  asm : string;
  mfuncs : Vega_mc.Mcinst.mfunc list;
  globals : Vega_ir.Vir.global list;
}

val compile : Conv.t -> opt:opt_level -> Vega_ir.Vir.modul -> output
(** @raise Hooks.Hook_error when any hook misbehaves. *)
