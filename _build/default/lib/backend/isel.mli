(** Instruction selection: lower a VIR function onto machine instructions
    with virtual registers, consulting the SEL hooks for opcode mapping,
    immediate legality (only at -O3, where immediate folding is enabled by
    the OPT hook) and the calling convention.

    Virtual registers start at {!vreg_base}; smaller numbers are physical
    (pre-colored by the calling convention). *)

val vreg_base : int

type out = {
  mfunc : Vega_mc.Mcinst.mfunc;
  next_vreg : int;  (** first unused virtual register *)
  has_calls : bool;
}

val lower : Conv.t -> opt:bool -> Vega_ir.Vir.func -> out
(** @raise Hooks.Hook_error when a SEL hook misbehaves (pass@1 failure). *)

val block_label : string -> string -> string
(** [block_label fname label] — globally unique label; the entry block's
    label is the function name itself. *)

val arg_spill_sym : string
(** Symbol of the shared spill area for arguments beyond the register
    convention. *)
