module I = Vega_mc.Mcinst

let latency conv (inst : I.inst) =
  Hooks.call_int conv.Conv.hooks "getInstrLatency" [ Hooks.vint inst.I.opcode ]

let sem_of conv (inst : I.inst) =
  Option.map (fun i -> i.Insntab.sem) (Insntab.by_opcode conv.Conv.tab inst.I.opcode)

(* Instructions pinned to block boundaries: control flow and loop markers
   stay put; everything between is schedulable. *)
let is_pinned conv inst =
  match sem_of conv inst with
  | Some
      ( Insntab.Sbranch _ | Insntab.Sjump | Insntab.Scall | Insntab.Sret
      | Insntab.Slpsetup | Insntab.Slpend ) ->
      true
  | Some _ | None -> false

let is_mem conv inst =
  match sem_of conv inst with
  | Some (Insntab.Sload | Insntab.Sstore | Insntab.Svadd | Insntab.Svmul) -> true
  | Some _ | None -> false

let schedule_block conv (b : I.mblock) =
  (* split into maximal schedulable regions between pinned instructions *)
  let insts = Array.of_list b.I.minsts in
  let n = Array.length insts in
  let out = ref [] in
  let fuse_enabled = Hooks.has conv.Conv.hooks "shouldScheduleAdjacent" in
  let region lo hi =
    (* schedule insts[lo, hi) *)
    let m = hi - lo in
    if m <= 1 then
      for k = lo to hi - 1 do
        out := insts.(k) :: !out
      done
    else begin
      let deps = Array.make m [] in
      (* data deps: def -> later use/def of same register; memory ordered *)
      for a = 0 to m - 1 do
        let ia = insts.(lo + a) in
        let da, ua = Regalloc.def_use conv.Conv.tab ia in
        for b' = a + 1 to m - 1 do
          let ib = insts.(lo + b') in
          let db, ub = Regalloc.def_use conv.Conv.tab ib in
          let overlap l1 l2 = List.exists (fun r -> List.mem r l2) l1 in
          if
            overlap da ub (* RAW *) || overlap da db (* WAW *)
            || overlap ua db (* WAR *)
            || (is_mem conv ia && is_mem conv ib)
          then deps.(b') <- a :: deps.(b')
        done
      done;
      (* fusion pairs: keep adjacent when the hook asks for it *)
      let fused_with = Array.make m (-1) in
      if fuse_enabled then
        for a = 0 to m - 2 do
          let ia = insts.(lo + a) and ib = insts.(lo + a + 1) in
          if
            Hooks.call_bool conv.Conv.hooks "shouldScheduleAdjacent"
              [ Hooks.vint ia.I.opcode; Hooks.vint ib.I.opcode ]
          then fused_with.(a) <- a + 1
        done;
      (* critical-path priority, boosted for high-latency defs *)
      let prio = Array.make m 0 in
      let high_latency opc =
        Hooks.has conv.Conv.hooks "isHighLatencyDef"
        && Hooks.call_bool conv.Conv.hooks "isHighLatencyDef" [ Hooks.vint opc ]
      in
      for a = m - 1 downto 0 do
        let lat =
          latency conv insts.(lo + a)
          + if high_latency insts.(lo + a).I.opcode then 2 else 0
        in
        prio.(a) <- lat;
        for b' = a + 1 to m - 1 do
          if List.mem a deps.(b') then prio.(a) <- max prio.(a) (lat + prio.(b'))
        done
      done;
      (* greedy list scheduling *)
      let emitted = Array.make m false in
      let indeg = Array.make m 0 in
      Array.iteri (fun b' ds -> indeg.(b') <- List.length ds) deps;
      let remaining = ref m in
      while !remaining > 0 do
        let best = ref (-1) in
        for a = 0 to m - 1 do
          if (not emitted.(a)) && indeg.(a) = 0 then
            if !best = -1 || prio.(a) > prio.(!best) then best := a
        done;
        let emit_one a =
          emitted.(a) <- true;
          decr remaining;
          out := insts.(lo + a) :: !out;
          for b' = 0 to m - 1 do
            if List.mem a deps.(b') then indeg.(b') <- indeg.(b') - 1
          done
        in
        if !best = -1 then begin
          (* cycle should not happen; fall back to original order *)
          for a = 0 to m - 1 do
            if not emitted.(a) then emit_one a
          done
        end
        else begin
          let a = !best in
          emit_one a;
          (* pull the fusion partner right behind, if ready *)
          let p = fused_with.(a) in
          if p >= 0 && (not emitted.(p)) && indeg.(p) = 0 then emit_one p
        end
      done
    end
  in
  let lo = ref 0 in
  for k = 0 to n - 1 do
    if is_pinned conv insts.(k) then begin
      region !lo k;
      out := insts.(k) :: !out;
      lo := k + 1
    end
  done;
  region !lo n;
  b.I.minsts <- List.rev !out

let run conv mf = List.iter (schedule_block conv) mf.I.mblocks

let run_post_ra conv mf =
  if
    Hooks.has conv.Conv.hooks "enablePostRAScheduler"
    && Hooks.call_bool conv.Conv.hooks "enablePostRAScheduler" []
  then run conv mf
