(** -O3 machine/IR optimization passes, every decision gated by an OPT
    hook so that generated OPT functions are behaviourally observable:

    - loop vectorization (VIR level): canonical elementwise array loops
      become vector intrinsic calls, stepping by getVectorFactor;
    - compare-branch fusion: SLT feeding a zero-test branch folds into
      a direct conditional branch (shouldFuseCmpBranch);
    - hardware loops: single-block counted loops with a constant trip
      count become LPSETUP/LPEND (isHardwareLoopProfitable);
    - peephole: self-move and jump-to-next elimination (enablePeephole). *)

val vectorize : Conv.t -> Vega_ir.Vir.func -> Vega_ir.Vir.func
(** Identity when the target has no SIMD hooks or declines. *)

val combine_mul_add : Conv.t -> Vega_mc.Mcinst.mfunc -> unit
val fuse_cmp_branch : Conv.t -> Vega_mc.Mcinst.mfunc -> unit
val hardware_loops : Conv.t -> Vega_mc.Mcinst.mfunc -> unit
val peephole : Conv.t -> Vega_mc.Mcinst.mfunc -> unit
