(** Instruction table of one target, built from its InstrInfo.td records
    (the TableGen-generated side of LLVM). Semantics are keyed by the
    canonical enum name — the ISA-level meaning the simulator gives each
    machine operation. *)

type alu = Aadd | Asub | Aand | Aor | Axor | Ashl | Ashr | Aslt
type cond = Ceq | Cne | Clt | Cge

type sem =
  | Salu of alu
  | Salui of alu
  | Smovi
  | Smov
  | Smul
  | Sdiv
  | Sload
  | Sstore
  | Sbranch of cond
  | Sjump
  | Scall
  | Sret
  | Snop
  | Smadd
  | Svadd
  | Svmul
  | Slpsetup
  | Slpend

type info = {
  enum_name : string;
  mnemonic : string;
  opcode : int;
  latency : int;
  micro_ops : int;
  operand_type : string;  (** "", "OPERAND_PCREL", "OPERAND_IMM" *)
  imm_bits : int;
  sem : sem;
}

type t

val build : Vega_tdlang.Catalog.t -> t
(** From the Instruction records visible in the catalog. Records whose
    enum name is not canonical are skipped. *)

val by_opcode : t -> int -> info option
val by_enum : t -> string -> info option
val by_mnemonic : t -> string -> info option
val opcode_exn : t -> string -> int
(** Opcode of a canonical enum name. @raise Invalid_argument. *)

val mem_enum : t -> string -> bool
val all : t -> info list
