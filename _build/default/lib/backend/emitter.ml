module I = Vega_mc.Mcinst

type t = {
  insts : I.inst array;
  inst_addr : int array;
  labels : (string * int) list;
  sym_addrs : (string * int) list;
  data_base : int;
  obj : I.obj;
  asm : string;
}

let sem_of conv (inst : I.inst) =
  Option.map (fun i -> i.Insntab.sem) (Insntab.by_opcode conv.Conv.tab inst.I.opcode)

(* fixup kind (enum value) of a symbolic operand, via the EMI hooks *)
let fixup_kind_of conv (inst : I.inst) (op : I.operand) =
  let h name = Hooks.call_int conv.Conv.hooks name [] in
  match op with
  | I.Osym (_, I.Sym_hi) -> Some (h "getHiFixup")
  | I.Osym (_, I.Sym_lo) -> Some (h "getLoFixup")
  | I.Osym (_, I.Sym_abs) -> Some (h "getAbsFixup")
  | I.Olabel _ -> (
      match sem_of conv inst with
      | Some (Insntab.Sbranch _) -> Some (h "getBranchFixup")
      | Some Insntab.Slpsetup ->
          Some (h "getBranchFixup")
      | Some Insntab.Sjump ->
          Some
            (if Hooks.has conv.Conv.hooks "getJumpFixup" then h "getJumpFixup"
             else h "getBranchFixup")
      | Some Insntab.Scall -> Some (h "getCallFixup")
      | _ -> None)
  | I.Oreg _ | I.Oimm _ -> None

let sym_of_operand = function
  | I.Osym (s, _) -> Some s
  | I.Olabel l -> Some l
  | I.Oreg _ | I.Oimm _ -> None

let invert_branch conv opcode =
  let tab = conv.Conv.tab in
  match Insntab.by_opcode tab opcode with
  | Some { Insntab.sem = Insntab.Sbranch c; _ } ->
      let e =
        match c with
        | Insntab.Ceq -> "BNE"
        | Insntab.Cne -> "BEQ"
        | Insntab.Clt -> "BGE"
        | Insntab.Cge -> "BLT"
      in
      Some (Insntab.opcode_exn tab e)
  | _ -> None

let emit conv mfuncs ~globals =
  let hooks = conv.Conv.hooks in
  (* validate fixup kind bound via getNumFixupKinds *)
  let first_target_kind = 64 in
  let nkinds = Hooks.call_int hooks "getNumFixupKinds" [] in
  let check_kind k =
    if k >= first_target_kind + nkinds + 8 then
      raise
        (Hooks.Hook_error
           ( "getNumFixupKinds",
             Printf.sprintf "fixup kind %d out of range (%d kinds)" k nkinds ))
  in
  (* ---- data layout (match the reference interpreter: base 4096) ---- *)
  let data_base = 4096 in
  let sym_addrs = ref [] in
  let next = ref data_base in
  let alloc_sym name words =
    sym_addrs := (name, !next) :: !sym_addrs;
    next := !next + (4 * words)
  in
  List.iter (fun (g : Vega_ir.Vir.global) -> alloc_sym g.gname g.size) globals;
  alloc_sym Isel.arg_spill_sym 16;
  (* function-pointer table: one abs-fixup word per function *)
  let symtab_base = !next in
  List.iter (fun (mf : I.mfunc) -> alloc_sym ("__ptr_" ^ mf.I.mname) 1) mfuncs;
  let data_words = (!next - data_base) / 4 in
  (* ---- relaxation loop over the flattened block list ---- *)
  (* work on mutable copies of block instruction lists *)
  let blocks =
    List.concat_map
      (fun (mf : I.mfunc) ->
        List.map (fun (b : I.mblock) -> (mf.I.mname, b.I.mlabel, ref b.I.minsts))
          mf.I.mblocks)
      mfuncs
  in
  let func_starts = List.map (fun (mf : I.mfunc) -> mf.I.mname) mfuncs in
  let relax_counter = ref 0 in
  let stable = ref false and rounds = ref 0 in
  let layout () =
    (* returns (flattened (inst, addr) list, label->addr, label present) *)
    let addr = ref 0 in
    let labels = Hashtbl.create 64 in
    let flat = ref [] in
    List.iter
      (fun (fname, blabel, insts) ->
        (* align function starts *)
        (if blabel = fname && List.mem fname func_starts then
           let align = max 4 conv.Conv.stack_align in
           while !addr mod align <> 0 do
             flat := (I.mk_inst (-1) [], !addr) :: !flat;
             (* nop placeholder; opcode filled at encoding *)
             addr := !addr + 4
           done);
        Hashtbl.replace labels blabel !addr;
        List.iter
          (fun (inst : I.inst) ->
            if inst.I.opcode = -2 then begin
              match inst.I.ops with
              | [ I.Olabel l ] -> Hashtbl.replace labels l !addr
              | _ -> ()
            end
            else begin
              flat := (inst, !addr) :: !flat;
              addr := !addr + 4
            end)
          !insts)
      blocks;
    (List.rev !flat, labels)
  in
  while (not !stable) && !rounds < 8 do
    incr rounds;
    stable := true;
    let _, labels = layout () in
    (* walk blocks with running addresses and rewrite branches whose
       pc-relative span the target cannot encode *)
    let addr = ref 0 in
    List.iter
      (fun (fname, blabel, insts) ->
        (if blabel = fname && List.mem fname func_starts then
           let align = max 4 conv.Conv.stack_align in
           while !addr mod align <> 0 do
             addr := !addr + 4
           done);
        let changed = ref false in
        let rewritten =
          List.concat_map
            (fun (inst : I.inst) ->
              let own = !addr in
              if inst.I.opcode <> -2 then addr := !addr + 4;
              match sem_of conv inst with
              | Some (Insntab.Sbranch _)
                when (not !changed)
                     && Hooks.has hooks "mayNeedRelaxation"
                     && Hooks.has hooks "fixupNeedsRelaxation" -> (
                  match
                    List.find_opt
                      (function I.Olabel _ -> true | _ -> false)
                      inst.I.ops
                  with
                  | Some (I.Olabel target) -> (
                      match
                        ( Hashtbl.find_opt labels target,
                          fixup_kind_of conv inst (I.Olabel target) )
                      with
                      | Some taddr, Some kind ->
                          let span = taddr - own in
                          let needs =
                            Hooks.call_bool hooks "mayNeedRelaxation"
                              [ Hooks.mcinst inst ]
                            && Hooks.call_bool hooks "fixupNeedsRelaxation"
                                 [ Hooks.vint kind; Hooks.vint span ]
                          in
                          if needs then begin
                            changed := true;
                            stable := false;
                            incr relax_counter;
                            let skip =
                              Printf.sprintf "__relax%d" !relax_counter
                            in
                            match invert_branch conv inst.I.opcode with
                            | Some inv ->
                                let jmp_opc =
                                  Hooks.call_int hooks "getRelaxedOpcode"
                                    [ Hooks.vint inst.I.opcode ]
                                in
                                let regs =
                                  List.filter
                                    (function I.Oreg _ -> true | _ -> false)
                                    inst.I.ops
                                in
                                [
                                  I.mk_inst inv (regs @ [ I.Olabel skip ]);
                                  I.mk_inst jmp_opc [ I.Olabel target ];
                                  (* label pseudo-instruction *)
                                  I.mk_inst (-2) [ I.Olabel skip ];
                                ]
                            | None -> [ inst ]
                          end
                          else [ inst ]
                      | _ -> [ inst ])
                  | _ -> [ inst ])
              | _ -> [ inst ])
            !insts
        in
        insts := rewritten)
      blocks
  done;
  (* ---- final layout, resolving label pseudo-instructions ---- *)
  let addr = ref 0 in
  let labels : (string, int * int) Hashtbl.t = Hashtbl.create 64 in
  (* label -> (inst index, byte addr) *)
  let flat = ref [] in
  let idx = ref 0 in
  let nop_opcode () = Hooks.call_int hooks "getNopEncoding" [] lsr 24 in
  List.iter
    (fun (fname, blabel, insts) ->
      (if blabel = fname && List.mem fname func_starts then begin
         let align = max 4 conv.Conv.stack_align in
         let pad = ref 0 in
         while (!addr + !pad) mod align <> 0 do
           pad := !pad + 4
         done;
         if !pad > 0 then begin
           if not (Hooks.call_bool hooks "writeNopData" [ Hooks.vint !pad ]) then
             raise (Hooks.Hook_error ("writeNopData", "cannot pad"));
           for _ = 1 to !pad / 4 do
             flat := I.mk_inst (nop_opcode ()) [] :: !flat;
             incr idx;
             addr := !addr + 4
           done
         end
       end);
      Hashtbl.replace labels blabel (!idx, !addr);
      List.iter
        (fun (inst : I.inst) ->
          if inst.I.opcode = -2 then begin
            (* local label *)
            match inst.I.ops with
            | [ I.Olabel l ] -> Hashtbl.replace labels l (!idx, !addr)
            | _ -> ()
          end
          else if inst.I.opcode = -1 then begin
            flat := I.mk_inst (nop_opcode ()) [] :: !flat;
            incr idx;
            addr := !addr + 4
          end
          else begin
            flat := inst :: !flat;
            incr idx;
            addr := !addr + 4
          end)
        !insts)
    blocks;
  let insts = Array.of_list (List.rev !flat) in
  let inst_addr = Array.init (Array.length insts) (fun i -> i * 4) in
  (* ---- encoding + fixups + asm ---- *)
  let text = Array.make (Array.length insts) 0 in
  let text_raw = Array.make (Array.length insts) 0 in
  let relocs = ref [] in
  let asm = Buffer.create 2048 in
  let label_at = Hashtbl.create 64 in
  Hashtbl.iter (fun l (i, _) -> Hashtbl.replace label_at i l) labels;
  Buffer.add_string asm
    (Printf.sprintf "%s target %s\n%s text section\n" conv.Conv.comment_char
       (Hooks.target hooks) conv.Conv.comment_char);
  let sym_addr s =
    match List.assoc_opt s !sym_addrs with
    | Some a -> Some a
    | None -> Option.map snd (Hashtbl.find_opt labels s)
  in
  Array.iteri
    (fun i (inst : I.inst) ->
      (match Hashtbl.find_opt label_at i with
      | Some l ->
          if List.mem l func_starts then
            Buffer.add_string asm (Printf.sprintf ".globl %s\n" l);
          Buffer.add_string asm (l ^ ":\n")
      | None -> ());
      let info = Insntab.by_opcode conv.Conv.tab inst.I.opcode in
      let mnemonic =
        match info with Some x -> x.Insntab.mnemonic | None -> "<bad>"
      in
      let op_str = function
        | I.Oreg r -> Conv.reg_name conv r
        | I.Oimm n -> conv.Conv.imm_marker ^ string_of_int n
        | I.Olabel l -> l
        | I.Osym (s, I.Sym_hi) -> Printf.sprintf "%%hi(%s)" s
        | I.Osym (s, I.Sym_lo) -> Printf.sprintf "%%lo(%s)" s
        | I.Osym (s, I.Sym_abs) -> s
      in
      Buffer.add_string asm
        (Printf.sprintf "  %s %s" mnemonic
           (String.concat ", " (List.map op_str inst.I.ops)));
      (* encode with symbolic operands zeroed *)
      let enc_ops =
        List.map
          (function
            | I.Olabel _ | I.Osym _ -> I.Oimm 0
            | o -> o)
          inst.I.ops
      in
      let word =
        Hooks.call_int hooks "encodeInstruction"
          [ Hooks.mcinst (I.mk_inst inst.I.opcode enc_ops) ]
      in
      let word = ref (word land 0xFFFFFFFF) in
      text_raw.(i) <- !word;
      (* fixups on symbolic operands *)
      List.iter
        (fun op ->
          match (fixup_kind_of conv inst op, sym_of_operand op) with
          | Some kind, Some sym ->
              check_kind kind;
              let bits =
                Hooks.call_int hooks "getFixupKindBits" [ Hooks.vint kind ]
              in
              let off =
                Hooks.call_int hooks "getFixupKindOffset" [ Hooks.vint kind ]
              in
              Buffer.add_string asm
                (Printf.sprintf " %s fixup: %s, kind %d, bits %d, offset %d"
                   conv.Conv.comment_char sym kind bits off);
              let fixup = Hooks.mcfixup ~kind in
              let pcrel =
                Hooks.call_bool hooks "isPCRelFixup" [ Hooks.vint kind ]
              in
              let forced =
                Hooks.call_bool hooks "shouldForceRelocation" [ fixup ]
              in
              let local = sym_addr sym <> None in
              if local && not forced then begin
                let target = Option.get (sym_addr sym) in
                let value =
                  if pcrel then target - inst_addr.(i) else target
                in
                let patch =
                  Hooks.call_int hooks "applyFixup" [ fixup; Hooks.vint value ]
                in
                word := (!word lor (patch land 0xFFFFFFFF)) land 0xFFFFFFFF
              end
              else begin
                let rtype =
                  Hooks.call_int hooks "getRelocType"
                    [ Hooks.mcvalue ~variant:0; fixup; Hooks.vbool pcrel ]
                in
                relocs :=
                  { I.r_offset = inst_addr.(i); r_type = rtype; r_sym = sym }
                  :: !relocs
              end
          | _ -> ())
        inst.I.ops;
      Buffer.add_char asm '\n';
      text.(i) <- !word)
    insts;
  (* ---- data section ---- *)
  let data = Array.make data_words 0 in
  List.iter
    (fun (g : Vega_ir.Vir.global) ->
      match List.assoc_opt g.gname !sym_addrs with
      | Some base ->
          List.iteri
            (fun k v -> data.(((base - data_base) / 4) + k) <- v land 0xFFFFFFFF)
            g.init
      | None -> ())
    globals;
  Buffer.add_string asm (Printf.sprintf "%s data section\n" conv.Conv.comment_char);
  List.iter
    (fun (g : Vega_ir.Vir.global) ->
      Buffer.add_string asm (Printf.sprintf "%s:\n" g.gname);
      List.iter
        (fun v -> Buffer.add_string asm (Printf.sprintf "  .word %d\n" v))
        g.init)
    globals;
  (* function-pointer table: abs fixups over data words *)
  List.iteri
    (fun k (mf : I.mfunc) ->
      let slot = ((symtab_base - data_base) / 4) + k in
      let kind = Hooks.call_int hooks "getAbsFixup" [] in
      check_kind kind;
      let fixup = Hooks.mcfixup ~kind in
      let forced = Hooks.call_bool hooks "shouldForceRelocation" [ fixup ] in
      Buffer.add_string asm
        (Printf.sprintf "__ptr_%s:\n  .word %s\n" mf.I.mname mf.I.mname);
      if forced then
        relocs :=
          {
            I.r_offset = symtab_base + (4 * k);
            r_type =
              Hooks.call_int hooks "getRelocType"
                [ Hooks.mcvalue ~variant:0; fixup; Hooks.vbool false ];
            r_sym = mf.I.mname;
          }
          :: !relocs
      else
        let target = Option.value ~default:0 (Option.map snd (Hashtbl.find_opt labels mf.I.mname)) in
        let patch = Hooks.call_int hooks "applyFixup" [ fixup; Hooks.vint target ] in
        data.(slot) <- patch land 0xFFFFFFFF)
    mfuncs;
  let labels_list = Hashtbl.fold (fun l (i, _) acc -> (l, i) :: acc) labels [] in
  let sym_addrs_all =
    !sym_addrs @ Hashtbl.fold (fun l (_, a) acc -> (l, a) :: acc) labels []
  in
  {
    insts;
    inst_addr;
    labels = List.sort compare labels_list;
    sym_addrs = List.sort compare sym_addrs_all;
    data_base;
    obj =
      {
        I.text;
        text_raw;
        data;
        relocs = List.rev !relocs;
        sym_addrs = List.sort compare sym_addrs_all;
      };
    asm = Buffer.contents asm;
  }

let label_index t l = List.assoc_opt l t.labels
let find_sym t s = List.assoc_opt s t.sym_addrs
