module I = Vega_mc.Mcinst

let decode conv (obj : I.obj) =
  let hooks = conv.Conv.hooks in
  if not (Hooks.has hooks "getInstruction") then Error "no disassembler"
  else begin
    let buf = Buffer.create 1024 in
    let success = Hooks.enum_value hooks "MCDisassembler::Success" in
    let result = ref None in
    Array.iteri
      (fun i word ->
        if !result = None then begin
          (* decode the relocatable (pre-fixup) words, objdump-style *)
          (* serialize per target endianness, then let the hook reassemble *)
          let bytes =
            if conv.Conv.big_endian then
              [ (word lsr 24) land 255; (word lsr 16) land 255; (word lsr 8) land 255; word land 255 ]
            else
              [ word land 255; (word lsr 8) land 255; (word lsr 16) land 255; (word lsr 24) land 255 ]
          in
          match
            let word' =
              Hooks.call_int hooks "readInstruction32"
                (List.map Hooks.vint bytes)
            in
            let status =
              Hooks.call_int hooks "getInstruction" [ Hooks.vint word' ]
            in
            if status <> success then
              Buffer.add_string buf (Printf.sprintf "%04x: <unknown>\n" (i * 4))
            else begin
              let opcode = (word' lsr 24) land 255 in
              match Insntab.by_opcode conv.Conv.tab opcode with
              | None -> Buffer.add_string buf (Printf.sprintf "%04x: <bad>\n" (i * 4))
              | Some info ->
                  let reg field =
                    let r =
                      Hooks.call_int hooks "decodeRegisterOperand"
                        [ Hooks.vint word'; Hooks.vint field ]
                    in
                    let st =
                      Hooks.call_int hooks "decodeGPRRegisterClass" [ Hooks.vint r ]
                    in
                    if st <> success then
                      raise (Hooks.Hook_error ("decodeGPRRegisterClass", "bad reg"))
                    else Conv.reg_name conv r
                  in
                  let imm () =
                    string_of_int
                      (Hooks.call_int hooks "decodeSImmOperand" [ Hooks.vint word' ])
                  in
                  let operands =
                    match info.Insntab.sem with
                    | Insntab.Salu _ | Insntab.Smul | Insntab.Sdiv | Insntab.Smadd
                    | Insntab.Svadd | Insntab.Svmul ->
                        [ reg 0; reg 1; reg 2 ]
                    | Insntab.Salui _ | Insntab.Sload | Insntab.Sstore ->
                        [ reg 0; reg 1; imm () ]
                    | Insntab.Smovi -> [ reg 0; imm () ]
                    | Insntab.Smov -> [ reg 0; reg 1 ]
                    | Insntab.Sbranch _ -> [ reg 0; reg 1; imm () ]
                    | Insntab.Sjump | Insntab.Scall | Insntab.Slpsetup -> [ imm () ]
                    | Insntab.Sret | Insntab.Snop | Insntab.Slpend -> []
                  in
                  Buffer.add_string buf
                    (Printf.sprintf "%04x: %s %s\n" (i * 4) info.Insntab.mnemonic
                       (String.concat ", " operands))
            end
          with
          | () -> ()
          | exception Hooks.Hook_error (h, m) ->
              result := Some (Error (Printf.sprintf "hook %s: %s" h m))
        end)
      obj.I.text_raw;
    match !result with Some e -> e | None -> Ok (Buffer.contents buf)
  end
