module Interp = Vega_srclang.Interp
module Mc = Vega_mc.Mcinst

exception Hook_error of string * string

type t = {
  target : string;
  catalog : Vega_tdlang.Catalog.t;
  sources : (string * Vega_srclang.Ast.func) list;
  env : Interp.env;  (** rebuilt on override *)
}

let build_env catalog sources =
  let env = Interp.create_env () in
  List.iter (fun (name, v) -> Interp.add_enum env name v)
    (Vega_tdlang.Catalog.resolved_members catalog);
  (* TableGen-style globals: scalar fields of the Target / SchedModel /
     RegisterClass records are visible to hook bodies by name, the way
     generated LLVM subtarget accessors expose .td values *)
  List.iter
    (fun (_, (r : Vega_tdlang.Td_ast.record)) ->
      if List.mem r.rec_class [ "Target"; "SchedMachineModel"; "RegisterClass" ]
      then
        List.iter
          (fun (field, v) ->
            match v with
            | Vega_tdlang.Td_ast.Vint n -> Interp.add_global env field (Interp.VInt n)
            | Vega_tdlang.Td_ast.Vstr s -> Interp.add_global env field (Interp.VStr s)
            | Vega_tdlang.Td_ast.Vid _ | Vega_tdlang.Td_ast.Vlist _ -> ())
          r.fields)
    (Vega_tdlang.Catalog.records catalog);
  Interp.add_func env "llvm_unreachable" (fun args ->
      let msg =
        match args with Interp.VStr s :: _ -> s | _ -> "unreachable"
      in
      raise (Interp.Runtime_error ("llvm_unreachable: " ^ msg)));
  Interp.add_func env "report_fatal_error" (fun args ->
      let msg = match args with Interp.VStr s :: _ -> s | _ -> "fatal" in
      raise (Interp.Runtime_error ("report_fatal_error: " ^ msg)));
  (* sibling hooks callable as free functions *)
  List.iter
    (fun (fname, fn) ->
      Interp.add_func env fname (fun args -> Interp.call env fn args))
    sources;
  env

let create vfs ~target ~sources =
  let dirs = Vega_tdlang.Vfs.llvmdirs @ Vega_tdlang.Vfs.tgtdirs target in
  let catalog = Vega_tdlang.Catalog.build vfs dirs in
  { target; catalog; sources; env = build_env catalog sources }

let target t = t.target
let has t fname = List.mem_assoc fname t.sources

let override t fname fn =
  let sources = (fname, fn) :: List.remove_assoc fname t.sources in
  { t with sources; env = build_env t.catalog sources }

let remove t fname =
  let sources = List.remove_assoc fname t.sources in
  { t with sources; env = build_env t.catalog sources }

let call t fname args =
  match List.assoc_opt fname t.sources with
  | None -> raise (Hook_error (fname, "hook not implemented"))
  | Some fn -> (
      match Interp.call t.env fn args with
      | v -> v
      | exception Interp.Runtime_error msg -> raise (Hook_error (fname, msg)))

let call_int t fname args =
  match call t fname args with
  | v -> (
      match Interp.to_int v with
      | n -> n
      | exception Interp.Runtime_error msg -> raise (Hook_error (fname, msg)))

let call_bool t fname args =
  match call t fname args with
  | Interp.VBool b -> b
  | v -> (
      match Interp.to_int v with
      | n -> n <> 0
      | exception Interp.Runtime_error msg -> raise (Hook_error (fname, msg)))

let enum_value_opt t name = Vega_tdlang.Catalog.member_value t.catalog name

let enum_value t name =
  match enum_value_opt t name with
  | Some v -> v
  | None -> raise (Hook_error ("enum", "unknown enum member " ^ name))

let vint n = Interp.VInt n
let vbool b = Interp.VBool b
let vstr s = Interp.VStr s

let mcoperand (op : Mc.operand) =
  let is_reg = match op with Mc.Oreg _ -> true | _ -> false in
  let is_imm = match op with Mc.Oreg _ -> false | _ -> true in
  Interp.obj "MCOperand" (fun m args ->
      match (m, args) with
      | "isReg", [] -> Interp.VBool is_reg
      | "isImm", [] -> Interp.VBool is_imm
      | "getReg", [] -> (
          match op with
          | Mc.Oreg r -> Interp.VInt r
          | _ -> raise (Interp.Runtime_error "getReg on non-register"))
      | "getImm", [] -> (
          match op with
          | Mc.Oimm n -> Interp.VInt n
          | Mc.Olabel _ | Mc.Osym _ -> Interp.VInt 0
          | Mc.Oreg _ -> raise (Interp.Runtime_error "getImm on register"))
      | _ -> raise (Interp.Runtime_error ("MCOperand." ^ m)))

let mcinst (i : Mc.inst) =
  let ops = Array.of_list i.ops in
  Interp.obj "MCInst" (fun m args ->
      match (m, args) with
      | "getOpcode", [] -> Interp.VInt i.opcode
      | "getNumOperands", [] -> Interp.VInt (Array.length ops)
      | "getOperand", [ idx ] ->
          let k = Interp.to_int idx in
          if k < 0 || k >= Array.length ops then
            raise (Interp.Runtime_error "getOperand out of range")
          else mcoperand ops.(k)
      | _ -> raise (Interp.Runtime_error ("MCInst." ^ m)))

let mcfixup ~kind =
  Interp.obj "MCFixup" (fun m args ->
      match (m, args) with
      | "getTargetKind", [] | "getKind", [] -> Interp.VInt kind
      | "getOffset", [] -> Interp.VInt 0
      | _ -> raise (Interp.Runtime_error ("MCFixup." ^ m)))

let mcvalue ~variant =
  Interp.obj "MCValue" (fun m args ->
      match (m, args) with
      | "getAccessVariant", [] -> Interp.VInt variant
      | _ -> raise (Interp.Runtime_error ("MCValue." ^ m)))
