(** List scheduling within basic blocks, driven by the SCH hooks: critical
    path priorities from getInstrLatency, macro-fusion pairs kept adjacent
    per shouldScheduleAdjacent, and an optional second pass after register
    allocation gated by enablePostRAScheduler. *)

val schedule_block : Conv.t -> Vega_mc.Mcinst.mblock -> unit
(** Reorder one block in place, preserving data/memory/control order. *)

val run : Conv.t -> Vega_mc.Mcinst.mfunc -> unit
val run_post_ra : Conv.t -> Vega_mc.Mcinst.mfunc -> unit
(** No-op unless the enablePostRAScheduler hook says otherwise. *)
