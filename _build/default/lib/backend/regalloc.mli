(** Linear-scan register allocation with block liveness, spilling, and
    prologue/epilogue insertion.

    The allocatable pool is defined entirely by REG hooks
    (isAllocatableReg / isCalleeSavedReg / getNumRegs); intervals live
    across calls take callee-saved registers, which the prologue then
    saves. Spill slots are addressed off the frame pointer through the
    getFrameIndexOffset hook. *)

val def_use : Insntab.t -> Vega_mc.Mcinst.inst -> int list * int list
(** Registers defined and used by one instruction, per its semantics
    (shared with the scheduler's dependence analysis). *)

val run : Conv.t -> Isel.out -> Vega_mc.Mcinst.mfunc
(** Allocate, rewrite to physical registers, set [frame_size], and insert
    prologue/epilogue. @raise Hooks.Hook_error when a REG hook
    misbehaves. *)
