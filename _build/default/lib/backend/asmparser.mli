(** Assembler: parse emitted assembly text back into machine instructions
    through the ASS hooks (mnemonic matching, register/immediate/operand
    parsing, directive handling, validation).

    The regression harness round-trips the emitter's assembly and demands
    the parsed stream equal the emitted one, so a generated ASS hook with
    the wrong register prefix or mnemonic table fails behaviourally. *)

val parse : Conv.t -> string -> (Vega_mc.Mcinst.inst list, string) result

val roundtrip_ok : Conv.t -> Emitter.t -> (unit, string) result
(** Parse [emitted.asm] and compare against the emitted instruction
    stream. *)
