module I = Vega_mc.Mcinst
module V = Vega_ir.Vir

let hooks (c : Conv.t) = c.Conv.hooks
let has_hook c n = Hooks.has (hooks c) n
let isd c name = Hooks.enum_value (hooks c) ("ISD::" ^ name)

(* ------------------------------------------------------------------ *)
(* VIR-level loop vectorization                                         *)

(* Canonical elementwise loop shape (cf. Programs.vec_friendly):
     t  = shl i, 2
     a1 = add b1, t
     x  = load a1, 0
     a2 = add b2, t
     y  = load a2, 0
     z  = <op> x, y          with <op> in {add, mul}
     a3 = add b3, t
     store z, a3, 0
     i  = add i, 1
     brlt i, N(imm), self, exit
   with trip count divisible by the vector factor. *)
let match_vector_loop (b : V.block) =
  match (b.body, b.term) with
  | ( [
        V.Bin (V.Shl, t, V.Reg i1, V.Imm 2);
        V.Bin (V.Add, a1, V.Reg b1, V.Reg t1);
        V.Load (x, a1', 0);
        V.Bin (V.Add, a2, V.Reg b2, V.Reg t2);
        V.Load (y, a2', 0);
        V.Bin (op, z, V.Reg x', V.Reg y');
        V.Bin (V.Add, a3, V.Reg b3, V.Reg t3);
        V.Store (V.Reg z', a3', 0);
        V.Bin (V.Add, i2, V.Reg i3, V.Imm 1);
      ],
      V.Brcond (V.Lt, V.Reg i4, V.Imm n, self_l, exit_l) )
    when t1 = t && t2 = t && t3 = t && a1' = a1 && a2' = a2 && a3' = a3
         && x' = x && y' = y && z' = z && i2 = i1 && i3 = i1 && i4 = i1
         && self_l = b.label
         && (op = V.Add || op = V.Mul) ->
      Some (i1, b1, b2, b3, t, op, n, exit_l)
  | _ -> None

let vectorize conv (f : V.func) =
  if not (has_hook conv "shouldVectorizeOp" && has_hook conv "getVectorFactor")
  then f
  else
    let fresh_base = Vega_ir.Vir.max_reg f + 1 in
    let blocks =
      List.map
        (fun (b : V.block) ->
          match match_vector_loop b with
          | Some (i, b1, b2, b3, t, op, n, exit_l) ->
              let node = match op with V.Add -> "ADD" | _ -> "MUL" in
              let ok =
                Hooks.call_bool (hooks conv) "shouldVectorizeOp"
                  [ Hooks.vint (isd conv node) ]
              in
              let vf = Hooks.call_int (hooks conv) "getVectorFactor" [] in
              let width_ok =
                (not (has_hook conv "getVectorWidth"))
                || Hooks.call_int (hooks conv) "getVectorWidth" [] >= vf
              in
              if (not ok) || (not width_ok) || vf <= 1 || n mod vf <> 0 then b
              else
                let builtin =
                  match op with V.Add -> "__builtin_vadd" | _ -> "__builtin_vmul"
                in
                let p1 = fresh_base and p2 = fresh_base + 1 and p3 = fresh_base + 2 in
                let body =
                  [
                    V.Bin (V.Shl, t, V.Reg i, V.Imm 2);
                    V.Bin (V.Add, p1, V.Reg b1, V.Reg t);
                    V.Bin (V.Add, p2, V.Reg b2, V.Reg t);
                    V.Bin (V.Add, p3, V.Reg b3, V.Reg t);
                    V.Call (None, builtin, [ V.Reg p3; V.Reg p1; V.Reg p2 ]);
                    V.Bin (V.Add, i, V.Reg i, V.Imm vf);
                  ]
                in
                {
                  b with
                  V.body;
                  term = V.Brcond (V.Lt, V.Reg i, V.Imm n, b.V.label, exit_l);
                }
          | None -> b)
        f.V.blocks
    in
    { f with V.blocks = blocks }

(* ------------------------------------------------------------------ *)
(* Machine-level helpers                                                *)

let sem_of conv (inst : I.inst) =
  Option.map
    (fun i -> i.Insntab.sem)
    (Insntab.by_opcode conv.Conv.tab inst.I.opcode)

let opcode conv e = Insntab.opcode_exn conv.Conv.tab e

(* ------------------------------------------------------------------ *)
(* Compare-branch fusion                                                *)

(* SLT t, a, b ; ... ; BEQ/BNE t, z, L   where z holds 0 and t is not
   used elsewhere in the block tail. BEQ(t,0) branches when !(a<b) -> BGE;
   BNE(t,0) -> BLT. *)
let fuse_cmp_branch conv mf =
  if
    has_hook conv "shouldFuseCmpBranch"
    && Hooks.call_bool (hooks conv) "shouldFuseCmpBranch" []
  then
    List.iter
      (fun (b : I.mblock) ->
        (* track registers known to hold zero within the block *)
        let zero_regs = Hashtbl.create 4 in
        (match conv.Conv.zero with
        | Some z -> Hashtbl.replace zero_regs z ()
        | None -> ());
        let arr = Array.of_list b.I.minsts in
        let n = Array.length arr in
        let kill = Hashtbl.create 4 in
        for k = 0 to n - 1 do
          let inst = arr.(k) in
          (match (sem_of conv inst, inst.I.ops) with
          | Some Insntab.Smovi, [ I.Oreg d; I.Oimm 0 ] -> Hashtbl.replace zero_regs d ()
          | Some _, I.Oreg d :: _ when Hashtbl.mem zero_regs d -> (
              match sem_of conv inst with
              | Some
                  ( Insntab.Salu _ | Insntab.Salui _ | Insntab.Smovi | Insntab.Smov
                  | Insntab.Smul | Insntab.Sdiv | Insntab.Sload | Insntab.Smadd ) ->
                  if
                    not
                      (match (sem_of conv inst, inst.I.ops) with
                      | Some Insntab.Smovi, [ _; I.Oimm 0 ] -> true
                      | _ -> false)
                  then Hashtbl.remove zero_regs d
              | _ -> ())
          | _ -> ());
          match (sem_of conv inst, inst.I.ops) with
          | Some (Insntab.Sbranch bc), [ I.Oreg t; I.Oreg z; I.Olabel l ]
            when Hashtbl.mem zero_regs z && (bc = Insntab.Ceq || bc = Insntab.Cne) ->
              (* find the SLT defining t earlier in the block, with no
                 intervening redefinition or other use of t *)
              let rec back j =
                if j < 0 then None
                else
                  let cand = arr.(j) in
                  match (sem_of conv cand, cand.I.ops) with
                  | Some (Insntab.Salu Insntab.Aslt), [ I.Oreg d; I.Oreg a; I.Oreg c ]
                    when d = t ->
                      Some (j, I.Oreg a, I.Oreg c)
                  | Some (Insntab.Salui Insntab.Aslt), [ I.Oreg d; I.Oreg a; I.Oimm c ]
                    when d = t ->
                      Some (j, I.Oreg a, I.Oimm c)
                  | _, ops
                    when List.exists (function I.Oreg r -> r = t | _ -> false) ops
                    ->
                      None
                  | _ -> back (j - 1)
              in
              (match back (k - 1) with
              | Some (j, oa, oc) ->
                  (* imm second operand needs a register for Bcc *)
                  let ok_operand = match oc with I.Oreg _ -> true | _ -> false in
                  if ok_operand then begin
                    let new_op =
                      match bc with
                      | Insntab.Ceq -> opcode conv "BGE" (* !(a<b) *)
                      | _ -> opcode conv "BLT"
                    in
                    arr.(k) <- I.mk_inst new_op [ oa; oc; I.Olabel l ];
                    arr.(j) <- I.mk_inst (opcode conv "NOP") []
                  end
              | None -> ())
          | _ -> ()
        done;
        ignore kill;
        b.I.minsts <-
          List.filter
            (fun (i : I.inst) ->
              not (sem_of conv i = Some Insntab.Snop && i.I.ops = []))
            (Array.to_list arr))
      mf.I.mblocks

(* ------------------------------------------------------------------ *)
(* Hardware loops                                                       *)

(* Single-block loop: block ends with [Bcc i, bound, self; JMP exit]
   where i is incremented by 1 once in the block and both the bound and
   the initial value of i are constant (LIi in a preceding block). *)
let hardware_loops conv mf =
  if
    has_hook conv "isHardwareLoopProfitable"
    && has_hook conv "getHardwareLoopOpcode"
  then begin
    let blocks = Array.of_list mf.I.mblocks in
    let const_of ?(include_block = -1) reg upto_bi =
      (* last LIi reg, imm before (or, for the branch bound, inside) the
         loop block *)
      let v = ref None in
      Array.iteri
        (fun bi (b : I.mblock) ->
          if bi < upto_bi || bi = include_block then
            List.iter
              (fun (inst : I.inst) ->
                match (sem_of conv inst, inst.I.ops) with
                | Some Insntab.Smovi, [ I.Oreg d; I.Oimm n ] when d = reg ->
                    v := Some n
                | Some _, I.Oreg d :: _ when d = reg -> v := None
                | _ -> ())
              b.I.minsts)
        blocks;
      !v
    in
    Array.iteri
      (fun bi (b : I.mblock) ->
        let arr = Array.of_list b.I.minsts in
        let n = Array.length arr in
        if n >= 3 then begin
          match
            ( sem_of conv arr.(n - 2),
              arr.(n - 2).I.ops,
              sem_of conv arr.(n - 1),
              arr.(n - 1).I.ops )
          with
          | ( Some (Insntab.Sbranch Insntab.Clt),
              [ I.Oreg i; I.Oreg bound; I.Olabel self ],
              Some Insntab.Sjump,
              [ I.Olabel _exit ] )
            when self = b.I.mlabel -> (
              (* find increment ADDri i, i, 1 *)
              let inc_idx = ref None in
              Array.iteri
                (fun k inst ->
                  match (sem_of conv inst, inst.I.ops) with
                  | Some (Insntab.Salui Insntab.Aadd), [ I.Oreg d; I.Oreg s; I.Oimm 1 ]
                    when d = i && s = i ->
                      inc_idx := Some k
                  | _ -> ())
                arr;
              match
                (!inc_idx, const_of ~include_block:bi bound bi, const_of i bi)
              with
              | Some _, Some bnd, Some start when bnd > start ->
                  let trip = bnd - start in
                  let ninsns = n - 2 in
                  let within_limit =
                    (not (has_hook conv "getMaxHardwareLoopInsns"))
                    || ninsns
                       <= Hooks.call_int (hooks conv) "getMaxHardwareLoopInsns" []
                  in
                  if
                    within_limit
                    && Hooks.call_bool (hooks conv) "isHardwareLoopProfitable"
                         [ Hooks.vint trip; Hooks.vint ninsns ]
                  then begin
                    let lp = Hooks.call_int (hooks conv) "getHardwareLoopOpcode" [] in
                    let lpend =
                      Hooks.call_int (hooks conv) "getHardwareLoopEndOpcode" []
                    in
                    (* preheader gets LPSETUP; loop keeps body + increment,
                       drops the branch pair, appends LPEND *)
                    (if bi > 0 then
                       let pre = blocks.(bi - 1) in
                       let setup = I.mk_inst lp [ I.Oimm trip; I.Olabel b.I.mlabel ] in
                       (* insert before the preheader's trailing jump *)
                       match List.rev pre.I.minsts with
                       | last :: prefix when sem_of conv last = Some Insntab.Sjump ->
                           pre.I.minsts <- List.rev (last :: setup :: prefix)
                       | _ -> pre.I.minsts <- pre.I.minsts @ [ setup ]);
                    b.I.minsts <-
                      Array.to_list (Array.sub arr 0 (n - 2))
                      @ [ I.mk_inst lpend [] ]
                  end
              | _ -> ())
          | _ -> ()
        end)
      blocks
  end

(* ------------------------------------------------------------------ *)
(* Multiply-add combining                                               *)

(* MUL t, a, b ; ADD d, c, t (or d, t, c), t used exactly once, becomes
   MOV d, c ; MADD d, a, b — gated by canLowerMulAdd/getMulAddOpcode. *)
let combine_mul_add conv mf =
  if
    has_hook conv "canLowerMulAdd"
    && Hooks.call_bool (hooks conv) "canLowerMulAdd" []
    && has_hook conv "getMulAddOpcode"
  then begin
    let madd = Hooks.call_int (hooks conv) "getMulAddOpcode" [] in
    if madd >= 0 then begin
      let mov = opcode conv "MOVrr" in
      let uses_of r =
        let count = ref 0 in
        I.iter_insts mf (fun _ inst ->
            let _, u = Regalloc.def_use conv.Conv.tab inst in
            List.iter (fun x -> if x = r then incr count) u);
        !count
      in
      List.iter
        (fun (b : I.mblock) ->
          let rec go = function
            | m :: a :: rest -> (
                match
                  (sem_of conv m, m.I.ops, sem_of conv a, a.I.ops)
                with
                | ( Some Insntab.Smul,
                    [ I.Oreg t; I.Oreg x; I.Oreg y ],
                    Some (Insntab.Salu Insntab.Aadd),
                    [ I.Oreg d; o1; o2 ] )
                  when (o1 = I.Oreg t || o2 = I.Oreg t)
                       && o1 <> o2 && d <> x && d <> y && uses_of t = 1 ->
                    let c = if o1 = I.Oreg t then o2 else o1 in
                    I.mk_inst mov [ I.Oreg d; c ]
                    :: I.mk_inst madd [ I.Oreg d; I.Oreg x; I.Oreg y ]
                    :: go rest
                | _ -> m :: go (a :: rest))
            | rest -> rest
          in
          b.I.minsts <- go b.I.minsts)
        mf.I.mblocks
    end
  end

(* ------------------------------------------------------------------ *)
(* Peephole                                                             *)

let peephole conv mf =
  if
    has_hook conv "enablePeephole"
    && Hooks.call_bool (hooks conv) "enablePeephole" []
  then begin
    (* self-moves *)
    List.iter
      (fun (b : I.mblock) ->
        b.I.minsts <-
          List.filter
            (fun (inst : I.inst) ->
              match (sem_of conv inst, inst.I.ops) with
              | Some Insntab.Smov, [ I.Oreg a; I.Oreg b' ] -> a <> b'
              | _ -> true)
            b.I.minsts)
      mf.I.mblocks;
    (* jump to the immediately following block *)
    let rec scan = function
      | (b1 : I.mblock) :: (b2 : I.mblock) :: rest ->
          (match List.rev b1.I.minsts with
          | last :: prefix -> (
              match (sem_of conv last, last.I.ops) with
              | Some Insntab.Sjump, [ I.Olabel l ] when l = b2.I.mlabel ->
                  b1.I.minsts <- List.rev prefix
              | _ -> ())
          | [] -> ());
          scan (b2 :: rest)
      | _ -> ()
    in
    scan mf.I.mblocks
  end
