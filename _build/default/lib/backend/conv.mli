(** Target conventions assembled from hooks and description files: the
    register convention comes from REG/SEL hooks (so a generated
    getArgRegister really changes calling-convention codegen), while
    syntax facts (register prefix, immediate marker, endianness) come
    from the target's .td records. *)

type t = {
  hooks : Hooks.t;
  tab : Insntab.t;
  sp : int;
  fp : int;
  ra : int;
  ret_reg : int;
  arg_regs : int list;
  nregs : int;
  zero : int option;
  stack_align : int;
  word_bytes : int;
  reg_prefix : string;
  imm_marker : string;
  comment_char : string;
  big_endian : bool;
}

val make : Vega_tdlang.Vfs.t -> Hooks.t -> t
(** @raise Hooks.Hook_error when a convention hook misbehaves. *)

val reg_name : t -> int -> string
val frame_offset : t -> int -> int
(** Byte offset of frame index [fi] relative to the frame pointer, via the
    getFrameIndexOffset hook. *)
