module I = Vega_mc.Mcinst

let is_vreg r = r >= Isel.vreg_base

(* def/use structure of one instruction, by semantics *)
let def_use (tab : Insntab.t) (inst : I.inst) =
  let regs =
    List.filter_map (function I.Oreg r -> Some r | _ -> None) inst.I.ops
  in
  match Insntab.by_opcode tab inst.I.opcode with
  | None -> ([], regs)  (* unknown opcode: treat all as uses *)
  | Some info -> (
      match info.Insntab.sem with
      | Insntab.Salu _ | Insntab.Salui _ | Insntab.Smovi | Insntab.Smov
      | Insntab.Smul | Insntab.Sdiv | Insntab.Sload -> (
          match regs with d :: rest -> ([ d ], rest) | [] -> ([], []))
      | Insntab.Smadd -> (
          (* accumulator: defines and uses the first register *)
          match regs with d :: rest -> ([ d ], d :: rest) | [] -> ([], []))
      | Insntab.Sstore | Insntab.Sbranch _ | Insntab.Svadd | Insntab.Svmul ->
          ([], regs)
      | Insntab.Sjump | Insntab.Scall | Insntab.Sret | Insntab.Snop
      | Insntab.Slpsetup | Insntab.Slpend ->
          ([], regs))

let is_call (tab : Insntab.t) (inst : I.inst) =
  match Insntab.by_opcode tab inst.I.opcode with
  | Some { Insntab.sem = Insntab.Scall; _ } -> true
  | _ -> false

type interval = {
  vreg : int;
  mutable istart : int;
  mutable iend : int;
  mutable crosses_call : bool;
}

let run (conv : Conv.t) (out : Isel.out) =
  let mf = out.Isel.mfunc in
  let tab = conv.Conv.tab in
  let hooks = conv.Conv.hooks in
  (* ---- linearize ---- *)
  let blocks = Array.of_list mf.I.mblocks in
  let index = ref 0 in
  let block_range = Array.make (Array.length blocks) (0, 0) in
  let inst_index : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun bi b ->
      let s = !index in
      List.iteri
        (fun k _ ->
          Hashtbl.replace inst_index (bi, k) !index;
          incr index)
        b.I.minsts;
      block_range.(bi) <- (s, !index))
    blocks;
  (* ---- per-block use/def, liveness fixpoint ---- *)
  let nb = Array.length blocks in
  let block_uses = Array.make nb [] and block_defs = Array.make nb [] in
  Array.iteri
    (fun bi b ->
      let defs = ref [] and uses = ref [] in
      List.iter
        (fun inst ->
          let d, u = def_use tab inst in
          List.iter
            (fun r ->
              if is_vreg r && (not (List.mem r !defs)) && not (List.mem r !uses)
              then uses := r :: !uses)
            u;
          List.iter (fun r -> if is_vreg r then defs := r :: !defs) d)
        b.I.minsts;
      block_uses.(bi) <- !uses;
      block_defs.(bi) <- !defs)
    blocks;
  let successors bi =
    let b = blocks.(bi) in
    let labels =
      List.concat_map
        (fun (inst : I.inst) ->
          if is_call tab inst then []
          else List.filter_map (function I.Olabel l -> Some l | _ -> None) inst.I.ops)
        b.I.minsts
    in
    (* a hardware-loop end is an implicit back edge to its own block *)
    let labels =
      if
        List.exists
          (fun (inst : I.inst) ->
            match Insntab.by_opcode tab inst.I.opcode with
            | Some { Insntab.sem = Insntab.Slpend; _ } -> true
            | _ -> false)
          b.I.minsts
      then b.I.mlabel :: labels
      else labels
    in
    List.filter_map
      (fun l ->
        let rec find i =
          if i >= nb then None
          else if blocks.(i).I.mlabel = l then Some i
          else find (i + 1)
        in
        find 0)
      labels
    @ (if bi + 1 < nb then [ bi + 1 ] else [])
  in
  let live_in = Array.make nb [] and live_out = Array.make nb [] in
  let changed = ref true in
  while !changed do
    changed := false;
    for bi = nb - 1 downto 0 do
      let out_set =
        List.sort_uniq compare (List.concat_map (fun s -> live_in.(s)) (successors bi))
      in
      let in_set =
        List.sort_uniq compare
          (block_uses.(bi)
          @ List.filter (fun r -> not (List.mem r block_defs.(bi))) out_set)
      in
      if out_set <> live_out.(bi) || in_set <> live_in.(bi) then begin
        live_out.(bi) <- out_set;
        live_in.(bi) <- in_set;
        changed := true
      end
    done
  done;
  (* ---- intervals ---- *)
  let intervals : (int, interval) Hashtbl.t = Hashtbl.create 64 in
  let touch r idx =
    if is_vreg r then begin
      let iv =
        match Hashtbl.find_opt intervals r with
        | Some iv -> iv
        | None ->
            let iv = { vreg = r; istart = idx; iend = idx; crosses_call = false } in
            Hashtbl.add intervals r iv;
            iv
      in
      if idx < iv.istart then iv.istart <- idx;
      if idx > iv.iend then iv.iend <- idx
    end
  in
  Array.iteri
    (fun bi b ->
      List.iteri
        (fun k inst ->
          let idx = Hashtbl.find inst_index (bi, k) in
          let d, u = def_use tab inst in
          List.iter (fun r -> touch r idx) (d @ u))
        b.I.minsts;
      (* live-across-block extension *)
      let _, bend = block_range.(bi) in
      let bstart, _ = block_range.(bi) in
      List.iter (fun r -> touch r (max bstart (bend - 1))) live_out.(bi);
      List.iter (fun r -> touch r bstart) live_in.(bi))
    blocks;
  (* call positions *)
  let call_positions = ref [] in
  Array.iteri
    (fun bi b ->
      List.iteri
        (fun k inst ->
          if is_call tab inst then
            call_positions := Hashtbl.find inst_index (bi, k) :: !call_positions)
        b.I.minsts)
    blocks;
  let call_positions = List.sort compare !call_positions in
  Hashtbl.iter
    (fun _ iv ->
      iv.crosses_call <-
        List.exists (fun c -> c > iv.istart && c < iv.iend) call_positions)
    intervals;
  (* ---- pools ---- *)
  let reserved_conv =
    conv.Conv.ret_reg :: conv.Conv.arg_regs
    @ (match conv.Conv.zero with Some z -> [ z ] | None -> [])
  in
  let allocatable =
    List.filter
      (fun r ->
        Hooks.call_bool hooks "isAllocatableReg" [ Hooks.vint r ]
        && not (List.mem r reserved_conv))
      (List.init conv.Conv.nregs Fun.id)
  in
  let callee_saved =
    List.filter
      (fun r -> Hooks.call_bool hooks "isCalleeSavedReg" [ Hooks.vint r ])
      allocatable
  in
  let caller_saved = List.filter (fun r -> not (List.mem r callee_saved)) allocatable in
  (* three distinct scratch registers for spill reloads (an ALU
     instruction can reference three distinct spilled registers); prefer
     caller-saved, borrow callee-saved when the pool is thin *)
  let scratch_callee = ref [] in
  let scratch =
    let rec take n from_caller from_callee =
      if n = 0 then []
      else
        match (from_caller, from_callee) with
        | s :: rest, _ -> s :: take (n - 1) rest from_callee
        | [], s :: rest ->
            scratch_callee := s :: !scratch_callee;
            s :: take (n - 1) [] rest
        | [], [] ->
            raise (Hooks.Hook_error ("isAllocatableReg", "register pool too small"))
    in
    take 3 caller_saved callee_saved
  in
  let caller_pool = List.filter (fun r -> not (List.mem r scratch)) caller_saved in
  let callee_pool = List.filter (fun r -> not (List.mem r scratch)) callee_saved in
  (* ---- linear scan ---- *)
  let ivs =
    Hashtbl.fold (fun _ iv acc -> iv :: acc) intervals []
    |> List.sort (fun a b -> compare a.istart b.istart)
  in
  let assignment : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let spills : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let used_callee = ref [] in
  let active : (int * int) list ref = ref [] (* (end, phys) *) in
  let free_caller = ref caller_pool and free_callee = ref callee_pool in
  let next_spill = ref 0 in
  let release upto =
    let expired, live = List.partition (fun (e, _) -> e < upto) !active in
    active := live;
    List.iter
      (fun (_, phys) ->
        if List.mem phys callee_pool then free_callee := phys :: !free_callee
        else free_caller := phys :: !free_caller)
      expired
  in
  List.iter
    (fun iv ->
      release iv.istart;
      let take pool =
        match !pool with
        | p :: rest ->
            pool := rest;
            Some p
        | [] -> None
      in
      let choice =
        if iv.crosses_call then take free_callee
        else
          match take free_caller with Some p -> Some p | None -> take free_callee
      in
      match choice with
      | Some phys ->
          Hashtbl.replace assignment iv.vreg phys;
          if List.mem phys callee_pool && not (List.mem phys !used_callee) then
            used_callee := phys :: !used_callee;
          active := (iv.iend, phys) :: !active
      | None ->
          Hashtbl.replace spills iv.vreg !next_spill;
          incr next_spill)
    ivs;
  (* callee-saved registers used as scratch are clobbered: save them *)
  List.iter
    (fun s -> if not (List.mem s !used_callee) then used_callee := s :: !used_callee)
    !scratch_callee;
  let used_callee = List.sort compare !used_callee in
  (* ---- frame layout ---- *)
  (* FI 0 = ra, FI 1 = old fp, FI 2.. = callee-saved, then spill slots *)
  let ncs = List.length used_callee in
  let spill_fi k = 2 + ncs + k in
  let total_slots = 2 + ncs + !next_spill in
  let align = conv.Conv.stack_align in
  (* the frame must cover the deepest fp-relative slot the
     getFrameIndexOffset hook produces (64-bit targets pace 8 bytes) *)
  let deepest = -Conv.frame_offset conv (total_slots - 1) in
  let deepest = max deepest (total_slots * 4) in
  let frame_size = ((deepest + align - 1) / align) * align in
  mf.I.frame_size <- frame_size;
  let fp_off fi = Conv.frame_offset conv fi in
  (* ---- rewrite ---- *)
  let opcode e = Insntab.opcode_exn tab e in
  let map_reg r =
    if not (is_vreg r) then r
    else
      match Hashtbl.find_opt assignment r with
      | Some p -> p
      | None -> -1 (* spilled: handled per instruction *)
  in
  let rewrite_block b =
    let out = ref [] in
    List.iter
      (fun (inst : I.inst) ->
        let d, u = def_use tab inst in
        let spilled_ops =
          List.sort_uniq compare
            (List.filter (fun r -> Hashtbl.mem spills r) (d @ u))
        in
        (* map spilled vregs to scratch registers for this instruction *)
        let scratch_map = Hashtbl.create 4 in
        List.iteri
          (fun i r ->
            let s = List.nth scratch (min i (List.length scratch - 1)) in
            Hashtbl.replace scratch_map r s)
          spilled_ops;
        let subst r =
          match Hashtbl.find_opt scratch_map r with
          | Some s -> s
          | None -> map_reg r
        in
        (* reloads for spilled uses *)
        List.iter
          (fun r ->
            if Hashtbl.mem spills r && List.mem r u then
              let fi = spill_fi (Hashtbl.find spills r) in
              out :=
                I.mk_inst (opcode "LDri")
                  [
                    I.Oreg (Hashtbl.find scratch_map r);
                    I.Oreg conv.Conv.fp;
                    I.Oimm (fp_off fi);
                  ]
                :: !out)
          spilled_ops;
        let ops' =
          List.map
            (function I.Oreg r -> I.Oreg (subst r) | o -> o)
            inst.I.ops
        in
        out := { inst with I.ops = ops' } :: !out;
        (* stores for spilled defs *)
        List.iter
          (fun r ->
            if Hashtbl.mem spills r && List.mem r d then
              let fi = spill_fi (Hashtbl.find spills r) in
              out :=
                I.mk_inst (opcode "STri")
                  [
                    I.Oreg (Hashtbl.find scratch_map r);
                    I.Oreg conv.Conv.fp;
                    I.Oimm (fp_off fi);
                  ]
                :: !out)
          spilled_ops)
      b.I.minsts;
    b.I.minsts <- List.rev !out
  in
  List.iter rewrite_block mf.I.mblocks;
  (* ---- prologue / epilogue ---- *)
  let sp = conv.Conv.sp and fp = conv.Conv.fp and ra = conv.Conv.ra in
  let prologue =
    [
      I.mk_inst (opcode "ADDri") [ I.Oreg sp; I.Oreg sp; I.Oimm (-frame_size) ];
      I.mk_inst (opcode "STri")
        [ I.Oreg ra; I.Oreg sp; I.Oimm (frame_size + fp_off 0) ];
      I.mk_inst (opcode "STri")
        [ I.Oreg fp; I.Oreg sp; I.Oimm (frame_size + fp_off 1) ];
    ]
    @ List.mapi
        (fun j r ->
          I.mk_inst (opcode "STri")
            [ I.Oreg r; I.Oreg sp; I.Oimm (frame_size + fp_off (2 + j)) ])
        used_callee
    @ [ I.mk_inst (opcode "ADDri") [ I.Oreg fp; I.Oreg sp; I.Oimm frame_size ] ]
  in
  let epilogue =
    List.mapi
      (fun j r ->
        I.mk_inst (opcode "LDri")
          [ I.Oreg r; I.Oreg fp; I.Oimm (fp_off (2 + j)) ])
      used_callee
    @ [
        I.mk_inst (opcode "LDri") [ I.Oreg ra; I.Oreg fp; I.Oimm (fp_off 0) ];
        I.mk_inst (opcode "MOVrr") [ I.Oreg sp; I.Oreg fp ];
        I.mk_inst (opcode "LDri") [ I.Oreg fp; I.Oreg fp; I.Oimm (fp_off 1) ];
      ]
  in
  (match mf.I.mblocks with
  | first :: _ -> first.I.minsts <- prologue @ first.I.minsts
  | [] -> ());
  (* epilogue before every RET *)
  List.iter
    (fun b ->
      b.I.minsts <-
        List.concat_map
          (fun (inst : I.inst) ->
            match Insntab.by_opcode tab inst.I.opcode with
            | Some { Insntab.sem = Insntab.Sret; _ } -> epilogue @ [ inst ]
            | _ -> [ inst ])
          b.I.minsts)
    mf.I.mblocks;
  mf
