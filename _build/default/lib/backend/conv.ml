type t = {
  hooks : Hooks.t;
  tab : Insntab.t;
  sp : int;
  fp : int;
  ra : int;
  ret_reg : int;
  arg_regs : int list;
  nregs : int;
  zero : int option;
  stack_align : int;
  word_bytes : int;
  reg_prefix : string;
  imm_marker : string;
  comment_char : string;
  big_endian : bool;
}

let str_of = function Some (Vega_tdlang.Td_ast.Vstr s) -> Some s | _ -> None

let make vfs hooks =
  let target = Hooks.target hooks in
  let catalog =
    Vega_tdlang.Catalog.build vfs (Vega_tdlang.Vfs.tgtdirs target)
  in
  let tab = Insntab.build catalog in
  let field record f = Vega_tdlang.Catalog.record_field catalog ~record ~field:f in
  let sp = Hooks.call_int hooks "getStackRegister" [] in
  let fp = Hooks.call_int hooks "getFrameRegister" [] in
  let ra = Hooks.call_int hooks "getRARegister" [] in
  let ret_reg = Hooks.call_int hooks "getReturnRegister" [] in
  let nargs = Hooks.call_int hooks "getNumArgRegisters" [] in
  let arg_regs =
    List.init nargs (fun i -> Hooks.call_int hooks "getArgRegister" [ Hooks.vint i ])
  in
  let nregs = Hooks.call_int hooks "getNumRegs" [] in
  let zero =
    if Hooks.has hooks "getZeroRegister" then
      match Hooks.call_int hooks "getZeroRegister" [] with
      | z -> Some z
      | exception Hooks.Hook_error _ -> None
    else None
  in
  let stack_align = Hooks.call_int hooks "getStackAlignment" [] in
  (* sanity against the isReservedReg hook: the stack/link registers must
     be reserved, the return register must not *)
  if not (Hooks.call_bool hooks "isReservedReg" [ Hooks.vint sp ]) then
    raise (Hooks.Hook_error ("isReservedReg", "stack register not reserved"));
  if not (Hooks.call_bool hooks "isReservedReg" [ Hooks.vint ra ]) then
    raise (Hooks.Hook_error ("isReservedReg", "link register not reserved"));
  if Hooks.call_bool hooks "isReservedReg" [ Hooks.vint ret_reg ] then
    raise (Hooks.Hook_error ("isReservedReg", "return register reserved"));
  {
    hooks;
    tab;
    sp;
    fp;
    ra;
    ret_reg;
    arg_regs;
    nregs;
    zero;
    stack_align = max 4 stack_align;
    word_bytes = 4;
    reg_prefix =
      Option.value ~default:"r" (str_of (field "GPR" "Prefix"));
    imm_marker = Option.value ~default:"" (str_of (field target "ImmMarker"));
    comment_char = Option.value ~default:"#" (str_of (field target "CommentChar"));
    big_endian =
      (match str_of (field target "Endianness") with
      | Some "big" -> true
      | Some _ | None -> false);
  }

let reg_name t i = Printf.sprintf "%s%d" t.reg_prefix i

let frame_offset t fi =
  Hooks.call_int t.hooks "getFrameIndexOffset" [ Hooks.vint fi ]
