module I = Vega_mc.Mcinst
module V = Vega_ir.Vir

let vreg_base = 1000
let arg_spill_sym = "__argspill"

type out = { mfunc : I.mfunc; next_vreg : int; has_calls : bool }

let block_label fname label = if label = "entry" then fname else fname ^ "$" ^ label

type ctx = {
  conv : Conv.t;
  opt : bool;
  mutable next : int;
  mutable insts : I.inst list;  (** reversed, current block *)
  mutable calls : bool;
  imm_cse : (int, int) Hashtbl.t;
      (** block-local immediate -> register holding it (-O3, gated by the
          isCheapImmediate OPT hook) *)
}

let fresh ctx =
  let r = ctx.next in
  ctx.next <- ctx.next + 1;
  r

let emit ctx opcode ops = ctx.insts <- I.mk_inst opcode ops :: ctx.insts

let opcode ctx enum = Insntab.opcode_exn ctx.conv.Conv.tab enum
let hooks ctx = ctx.conv.Conv.hooks
let hooks_of = hooks

let imm_fits bits n =
  let half = 1 lsl (bits - 1) in
  n >= -half && n < half

let li_bits ctx =
  match Insntab.by_enum ctx.conv.Conv.tab "LIi" with
  | Some i -> i.Insntab.imm_bits
  | None -> 12

let vreg_of_vir r = vreg_base + r

(* Materialize an integer constant into a fresh (or given) register. At
   -O3, constants the target considers expensive are kept in a register
   and reused within the block (gated by isCheapImmediate). *)
let rec mat_imm ctx ?dst n =
  match dst with
  | None
    when ctx.opt
         && Hooks.has (hooks_of ctx) "isCheapImmediate"
         && (not (Hooks.call_bool (hooks_of ctx) "isCheapImmediate" [ Hooks.vint n ]))
         && Hashtbl.mem ctx.imm_cse n ->
      Hashtbl.find ctx.imm_cse n
  | _ -> mat_imm_fresh ctx ?dst n

and mat_imm_fresh ctx ?dst n =
  (* only fresh single-assignment registers are safe to reuse *)
  (match dst with
  | None -> ()
  | Some _ -> Hashtbl.remove ctx.imm_cse n);
  let dst =
    match dst with
    | Some d -> d
    | None ->
        let d = fresh ctx in
        Hashtbl.replace ctx.imm_cse n d;
        d
  in
  (match (n, ctx.conv.Conv.zero) with
  | 0, Some z -> emit ctx (opcode ctx "MOVrr") [ I.Oreg dst; I.Oreg z ]
  | _ ->
      let bits = li_bits ctx in
      if imm_fits bits n then emit ctx (opcode ctx "LIi") [ I.Oreg dst; I.Oimm n ]
      else begin
        (* compose the 32-bit pattern from 11-bit chunks, which every
           target's signed immediate validation accepts; the simulator
           sign-extends register writes, preserving the two's complement
           reading *)
        let u = n land 0xFFFFFFFF in
        let c2 = (u lsr 22) land 0x3ff
        and c1 = (u lsr 11) land 0x7ff
        and c0 = u land 0x7ff in
        let started = ref false in
        let chunk c =
          if !started then begin
            emit ctx (opcode ctx "SHLri") [ I.Oreg dst; I.Oreg dst; I.Oimm 11 ];
            if c <> 0 then
              emit ctx (opcode ctx "ORri") [ I.Oreg dst; I.Oreg dst; I.Oimm c ]
          end
          else if c <> 0 then begin
            emit ctx (opcode ctx "LIi") [ I.Oreg dst; I.Oimm c ];
            started := true
          end
        in
        chunk c2;
        (if not !started then begin
           emit ctx (opcode ctx "LIi") [ I.Oreg dst; I.Oimm 0 ];
           started := true
         end);
        chunk c1;
        chunk c0
      end);
  dst

and value_reg ctx = function
  | V.Reg r -> vreg_of_vir r
  | V.Imm n -> mat_imm ctx n

let isd ctx name = Hooks.enum_value (hooks ctx) ("ISD::" ^ name)

let isd_of_binop = function
  | V.Add -> "ADD"
  | V.Sub -> "SUB"
  | V.Mul -> "MUL"
  | V.Div -> "SDIV"
  | V.Rem -> "SDIV"  (* expanded; kept for hook queries *)
  | V.And -> "AND"
  | V.Or -> "OR"
  | V.Xor -> "XOR"
  | V.Shl -> "SHL"
  | V.Shr -> "SRL"
  | V.Slt -> "SETLT"

let isd_of_cond = function
  | V.Eq -> "SETEQ"
  | V.Ne -> "SETNE"
  | V.Lt -> "SETLT"
  | V.Ge -> "SETGE"

let select_rr ctx op =
  let o = Hooks.call_int (hooks ctx) "selectOpcode" [ Hooks.vint (isd ctx (isd_of_binop op)) ] in
  if o < 0 then raise (Hooks.Hook_error ("selectOpcode", "no opcode selected")) else o

(* Can the second operand stay an immediate? Only with -O3 immediate
   folding (OPT hook) plus SEL legality plus an existing imm-form. *)
let fold_imm ctx op n =
  if not ctx.opt then None
  else if
    not
      (Hooks.call_bool (hooks ctx) "isProfitableToFoldImmediate"
         [ Hooks.vint (isd ctx (isd_of_binop op)) ])
  then None
  else
    let legal =
      match op with
      | V.Slt ->
          (* keep compares in register form when the target fuses them
             with branches *)
          (not
             (Hooks.has (hooks ctx) "shouldFuseCmpBranch"
             && Hooks.call_bool (hooks ctx) "shouldFuseCmpBranch" []))
          && Hooks.call_bool (hooks ctx) "isLegalICmpImmediate" [ Hooks.vint n ]
      | _ -> Hooks.call_bool (hooks ctx) "isLegalAddImmediate" [ Hooks.vint n ]
    in
    if not legal then None
    else
      let o =
        Hooks.call_int (hooks ctx) "selectImmOpcode"
          [ Hooks.vint (isd ctx (isd_of_binop op)) ]
      in
      if o < 0 then None else Some o

let lower_bin ctx op d a b =
  let dst = vreg_of_vir d in
  match op with
  | V.Rem ->
      (* d = a - (a/b)*b *)
      let ra = value_reg ctx a and rb = value_reg ctx b in
      let q = fresh ctx and m = fresh ctx in
      emit ctx (select_rr ctx V.Div) [ I.Oreg q; I.Oreg ra; I.Oreg rb ];
      emit ctx (select_rr ctx V.Mul) [ I.Oreg m; I.Oreg q; I.Oreg rb ];
      emit ctx (select_rr ctx V.Sub) [ I.Oreg dst; I.Oreg ra; I.Oreg m ]
  | _ -> (
      match b with
      | V.Imm n -> (
          match fold_imm ctx op n with
          | Some imm_opc ->
              let ra = value_reg ctx a in
              emit ctx imm_opc [ I.Oreg dst; I.Oreg ra; I.Oimm n ]
          | None ->
              let ra = value_reg ctx a in
              let rb = mat_imm ctx n in
              emit ctx (select_rr ctx op) [ I.Oreg dst; I.Oreg ra; I.Oreg rb ])
      | V.Reg _ ->
          let ra = value_reg ctx a and rb = value_reg ctx b in
          emit ctx (select_rr ctx op) [ I.Oreg dst; I.Oreg ra; I.Oreg rb ])

(* SIMD intrinsics planted by the vectorizer pass *)
(* Materialize a symbol address: hi/lo pair on targets with both fixups,
   a single absolute load otherwise (x86-style). *)
let mat_addr ctx ~dst sym =
  if Hooks.has (hooks ctx) "getHiFixup" && Hooks.has (hooks ctx) "getLoFixup" then begin
    emit ctx (opcode ctx "LIi") [ I.Oreg dst; I.Osym (sym, I.Sym_hi) ];
    emit ctx (opcode ctx "ADDri") [ I.Oreg dst; I.Oreg dst; I.Osym (sym, I.Sym_lo) ]
  end
  else emit ctx (opcode ctx "LIi") [ I.Oreg dst; I.Osym (sym, I.Sym_abs) ]

let lower_vector ctx node dst_addr a_addr b_addr =
  let o =
    Hooks.call_int (hooks ctx) "selectVectorOpcode" [ Hooks.vint (isd ctx node) ]
  in
  if o < 0 then raise (Hooks.Hook_error ("selectVectorOpcode", "no vector opcode"))
  else emit ctx o [ I.Oreg dst_addr; I.Oreg a_addr; I.Oreg b_addr ]

let lower_call ctx d f args =
  ctx.calls <- true;
  let conv = ctx.conv in
  let nregs_args = List.length conv.Conv.arg_regs in
  let reg_args = List.filteri (fun i _ -> i < nregs_args) args in
  let stack_args = List.filteri (fun i _ -> i >= nregs_args) args in
  (* overflow arguments through the shared spill area *)
  (if stack_args <> [] then begin
     let base = fresh ctx in
     mat_addr ctx ~dst:base arg_spill_sym;
     List.iteri
       (fun k arg ->
         let r = value_reg ctx arg in
         emit ctx (opcode ctx "STri") [ I.Oreg r; I.Oreg base; I.Oimm (4 * k) ])
       stack_args
   end);
  List.iteri
    (fun i arg ->
      let phys = List.nth conv.Conv.arg_regs i in
      let r = value_reg ctx arg in
      emit ctx (opcode ctx "MOVrr") [ I.Oreg phys; I.Oreg r ])
    reg_args;
  emit ctx (opcode ctx "CALL") [ I.Olabel f ];
  match d with
  | Some dst ->
      emit ctx (opcode ctx "MOVrr")
        [ I.Oreg (vreg_of_vir dst); I.Oreg conv.Conv.ret_reg ]
  | None -> ()

let lower_instr ctx (instr : V.instr) =
  match instr with
  | V.Bin (op, d, a, b) -> lower_bin ctx op d a b
  | V.Mov (d, V.Reg s) ->
      emit ctx (opcode ctx "MOVrr") [ I.Oreg (vreg_of_vir d); I.Oreg (vreg_of_vir s) ]
  | V.Mov (d, V.Imm n) -> ignore (mat_imm ctx ~dst:(vreg_of_vir d) n)
  | V.Addr (d, g) -> mat_addr ctx ~dst:(vreg_of_vir d) g
  | V.Load (d, base, off) ->
      emit ctx (opcode ctx "LDri")
        [ I.Oreg (vreg_of_vir d); I.Oreg (vreg_of_vir base); I.Oimm off ]
  | V.Store (v, base, off) ->
      let r = value_reg ctx v in
      emit ctx (opcode ctx "STri") [ I.Oreg r; I.Oreg (vreg_of_vir base); I.Oimm off ]
  | V.Call (None, callee, [ a3; a1; a2 ])
    when callee = "__builtin_vadd" || callee = "__builtin_vmul" ->
      let node = if callee = "__builtin_vadd" then "ADD" else "MUL" in
      let rd = value_reg ctx a3 and r1 = value_reg ctx a1 and r2 = value_reg ctx a2 in
      lower_vector ctx node rd r1 r2
  | V.Call (d, callee, args) -> lower_call ctx d callee args
  | V.Print v ->
      ctx.calls <- true;
      let r = value_reg ctx v in
      (match ctx.conv.Conv.arg_regs with
      | a0 :: _ -> emit ctx (opcode ctx "MOVrr") [ I.Oreg a0; I.Oreg r ]
      | [] -> raise (Hooks.Hook_error ("getArgRegister", "no argument registers")));
      emit ctx (opcode ctx "CALL") [ I.Olabel "print" ]

let lower_term ctx fname (t : V.terminator) =
  match t with
  | V.Br l -> emit ctx (opcode ctx "JMP") [ I.Olabel (block_label fname l) ]
  | V.Brcond (c, a, b, tl, fl) ->
      let o =
        Hooks.call_int (hooks ctx) "selectBranchOpcode"
          [ Hooks.vint (isd ctx (isd_of_cond c)) ]
      in
      if o < 0 then raise (Hooks.Hook_error ("selectBranchOpcode", "no opcode"));
      let ra = value_reg ctx a and rb = value_reg ctx b in
      emit ctx o [ I.Oreg ra; I.Oreg rb; I.Olabel (block_label fname tl) ];
      emit ctx (opcode ctx "JMP") [ I.Olabel (block_label fname fl) ]
  | V.Ret v ->
      (match v with
      | Some v ->
          let r = value_reg ctx v in
          emit ctx (opcode ctx "MOVrr") [ I.Oreg ctx.conv.Conv.ret_reg; I.Oreg r ]
      | None -> ());
      emit ctx (opcode ctx "RET") []

let lower conv ~opt (f : V.func) =
  let ctx =
    {
      conv;
      opt;
      next = vreg_base + Vega_ir.Vir.max_reg f + 1;
      insts = [];
      calls = false;
      imm_cse = Hashtbl.create 8;
    }
  in
  let nregs_args = List.length conv.Conv.arg_regs in
  let blocks =
    List.mapi
      (fun bi (b : V.block) ->
        ctx.insts <- [];
        Hashtbl.reset ctx.imm_cse;
        (* entry: bind incoming arguments *)
        if bi = 0 then begin
          List.iteri
            (fun i p ->
              if i < nregs_args then
                emit ctx (opcode ctx "MOVrr")
                  [ I.Oreg (vreg_of_vir p); I.Oreg (List.nth conv.Conv.arg_regs i) ]
              else begin
                (* overflow argument: reload from the spill area *)
                let base = fresh ctx in
                mat_addr ctx ~dst:base arg_spill_sym;
                emit ctx (opcode ctx "LDri")
                  [
                    I.Oreg (vreg_of_vir p);
                    I.Oreg base;
                    I.Oimm (4 * (i - nregs_args));
                  ]
              end)
            f.params
        end;
        List.iter (lower_instr ctx) b.body;
        lower_term ctx f.fname b.term;
        { I.mlabel = block_label f.fname b.label; minsts = List.rev ctx.insts })
      f.blocks
  in
  {
    mfunc = { I.mname = f.fname; mblocks = blocks; frame_size = 0 };
    next_vreg = ctx.next;
    has_calls = ctx.calls;
  }
