(** Hook runtime: the bridge between MiniLLVM's target-independent code
    generator and the target-specific BackendC interface functions.

    Every hook call interprets the function's AST against an environment
    whose enums come from the target's description files (via the
    catalog), exactly as a generated backend would run. pass@1 swaps one
    function's source for a generated one and reruns the pipeline. *)

exception Hook_error of string * string
(** [(hook name, message)]: the hook misbehaved at run time (unknown
    identifier, llvm_unreachable, wrong arity, non-termination...). *)

type t

val create :
  Vega_tdlang.Vfs.t ->
  target:string ->
  sources:(string * Vega_srclang.Ast.func) list ->
  t
(** [sources] maps interface-function names to their implementations;
    siblings are callable from hook bodies as free functions. *)

val target : t -> string
val has : t -> string -> bool

val override : t -> string -> Vega_srclang.Ast.func -> t
(** Functional update replacing one hook's implementation. *)

val remove : t -> string -> t
(** Drop a hook (models a generated function that failed to parse). *)

val call : t -> string -> Vega_srclang.Interp.value list -> Vega_srclang.Interp.value
(** @raise Hook_error on any failure. *)

val call_int : t -> string -> Vega_srclang.Interp.value list -> int
val call_bool : t -> string -> Vega_srclang.Interp.value list -> bool

val enum_value : t -> string -> int
(** Resolved value of a qualified enum member (e.g. ["ISD::ADD"]),
    from the description-file catalogs. @raise Hook_error if absent. *)

val enum_value_opt : t -> string -> int option

(** {1 Bridge values} *)

val vint : int -> Vega_srclang.Interp.value
val vbool : bool -> Vega_srclang.Interp.value
val vstr : string -> Vega_srclang.Interp.value
val mcoperand : Vega_mc.Mcinst.operand -> Vega_srclang.Interp.value
val mcinst : Vega_mc.Mcinst.inst -> Vega_srclang.Interp.value
val mcfixup : kind:int -> Vega_srclang.Interp.value
val mcvalue : variant:int -> Vega_srclang.Interp.value
