module I = Vega_mc.Mcinst

let strip = String.trim

let split_operands s =
  (* top-level commas; %hi(...) parentheses contain no commas here *)
  String.split_on_char ',' s |> List.map strip |> List.filter (fun x -> x <> "")

let strip_comment conv line =
  let cc = conv.Conv.comment_char in
  let rec find i =
    if i + String.length cc > String.length line then None
    else if String.sub line i (String.length cc) = cc then Some i
    else find (i + 1)
  in
  match find 0 with Some i -> String.sub line 0 i | None -> line

let parse conv text =
  let hooks = conv.Conv.hooks in
  let out = ref [] in
  let error = ref None in
  let fail fmt = Printf.ksprintf (fun s -> if !error = None then error := Some s) fmt in
  List.iter
    (fun raw ->
      if !error = None then begin
        let line = strip (strip_comment conv raw) in
        if line = "" then ()
        else if String.length line > 0 && line.[String.length line - 1] = ':' then ()
        else if line.[0] = '.' then begin
          let directive =
            match String.index_opt line ' ' with
            | Some i -> String.sub line 0 i
            | None -> line
          in
          match
            Hooks.call_bool hooks "parseDirective" [ Hooks.vstr directive ]
          with
          | true -> ()
          | false -> fail "unknown directive %s" directive
          | exception Hooks.Hook_error (h, m) -> fail "hook %s: %s" h m
        end
        else begin
          let mnemonic, rest =
            match String.index_opt line ' ' with
            | Some i ->
                ( String.sub line 0 i,
                  strip (String.sub line (i + 1) (String.length line - i - 1)) )
            | None -> (line, "")
          in
          match
            let raw_ops = split_operands rest in
            (* classify operands first: mnemonic matching needs the
               operand shape (HasImm), as in LLVM's AsmMatcher *)
            let has_imm =
              List.exists
                (fun tok ->
                  Vega_util.Strutil.starts_with ~prefix:"%hi(" tok
                  || Vega_util.Strutil.starts_with ~prefix:"%lo(" tok
                  ||
                  (* symbols sit in the immediate position of every form *)
                  Hooks.call_int hooks "parseOperandKind" [ Hooks.vstr tok ] <> 0)
                raw_ops
            in
            let opcode =
              Hooks.call_int hooks "matchMnemonic"
                [ Hooks.vstr mnemonic; Hooks.vbool has_imm ]
            in
            if opcode < 0 then Error (Printf.sprintf "unknown mnemonic %s" mnemonic)
            else begin
              let ops =
                List.map
                  (fun tok ->
                    (* %hi/%lo notation is assembler syntax, handled
                       structurally before target hooks *)
                    if Vega_util.Strutil.starts_with ~prefix:"%hi(" tok then
                      I.Osym (String.sub tok 4 (String.length tok - 5), I.Sym_hi)
                    else if Vega_util.Strutil.starts_with ~prefix:"%lo(" tok then
                      I.Osym (String.sub tok 4 (String.length tok - 5), I.Sym_lo)
                    else
                      match
                        Hooks.call_int hooks "parseOperandKind" [ Hooks.vstr tok ]
                      with
                      | 0 ->
                          if
                            not
                              (Hooks.call_bool hooks "isRegisterName"
                                 [ Hooks.vstr tok ])
                          then
                            raise
                              (Hooks.Hook_error
                                 ("isRegisterName", "not a register: " ^ tok));
                          let r =
                            Hooks.call_int hooks "matchRegisterName"
                              [ Hooks.vstr tok ]
                          in
                          if r < 0 then
                            raise
                              (Hooks.Hook_error
                                 ("matchRegisterName", "bad register " ^ tok))
                          else I.Oreg r
                      | 1 ->
                          I.Oimm
                            (Hooks.call_int hooks "parseImmediate" [ Hooks.vstr tok ])
                      | _ -> I.Olabel tok)
                  raw_ops
              in
              let inst = I.mk_inst opcode ops in
              if
                Hooks.call_bool hooks "validateInstruction" [ Hooks.mcinst inst ]
              then Ok inst
              else Error (Printf.sprintf "invalid instruction %s" line)
            end
          with
          | Ok inst -> out := inst :: !out
          | Error m -> fail "%s" m
          | exception Hooks.Hook_error (h, m) -> fail "hook %s: %s" h m
        end
      end)
    (String.split_on_char '\n' text);
  match !error with Some m -> Error m | None -> Ok (List.rev !out)

let operand_eq a b =
  match (a, b) with
  | I.Olabel x, I.Osym (y, _) | I.Osym (x, _), I.Olabel y -> x = y
  | _ -> a = b

let inst_eq (a : I.inst) (b : I.inst) =
  a.I.opcode = b.I.opcode
  && List.length a.I.ops = List.length b.I.ops
  && List.for_all2 operand_eq a.I.ops b.I.ops

let roundtrip_ok conv (emitted : Emitter.t) =
  match parse conv emitted.Emitter.asm with
  | Error m -> Error m
  | Ok parsed ->
      let reference = Array.to_list emitted.Emitter.insts in
      if List.length parsed <> List.length reference then
        Error
          (Printf.sprintf "instruction count mismatch: %d parsed, %d emitted"
             (List.length parsed) (List.length reference))
      else if List.for_all2 inst_eq parsed reference then Ok ()
      else Error "parsed stream differs from emitted stream"
