(** Longest-common-subsequence and pairwise sequence alignment.

    Used by templatization (Sec. 3.2.1 of the paper) to split matched
    statements into common code and variant placeholders, and by the
    statement aligner to pair statements across target-specific
    implementations of one interface function. *)

val lcs : eq:('a -> 'a -> bool) -> 'a array -> 'a array -> (int * int) list
(** [lcs ~eq xs ys] returns the index pairs [(i, j)] of a longest common
    subsequence of [xs] and [ys], in increasing order. *)

val lcs_length : eq:('a -> 'a -> bool) -> 'a array -> 'a array -> int
(** Length of the LCS only (no backtrace allocation). *)

val similarity : eq:('a -> 'a -> bool) -> 'a array -> 'a array -> float
(** Dice-style similarity [2*|lcs| / (|xs| + |ys|)] in [0, 1]; 1.0 for two
    empty sequences. *)

type 'a aligned =
  | Both of 'a * 'a  (** elements paired by the LCS *)
  | Left of 'a  (** element only present in the first sequence *)
  | Right of 'a  (** element only present in the second sequence *)

val align : eq:('a -> 'a -> bool) -> 'a array -> 'a array -> 'a aligned list
(** Full alignment of the two sequences around their LCS. *)
