(** String helpers shared across the reproduction.

    Feature selection (Algorithm 1 of the paper) relies on partial string
    matching between tokens and the right-hand sides of assignments in
    target description files; the matching primitives live here. *)

val split_on : char -> string -> string list
(** Split, dropping empty fields. *)

val lines : string -> string list
(** Split on ['\n'], keeping empty lines. *)

val starts_with : prefix:string -> string -> bool
val ends_with : suffix:string -> string -> bool

val contains_sub : sub:string -> string -> bool
(** Substring containment, case-sensitive. *)

val partial_match : string -> string -> bool
(** [partial_match a b] holds when the lowercase of [a] is a substring of
    the lowercase of [b] or vice versa — the paper's "tok is a substring of
    str or vice versa" test (Algorithm 1, lines 14 and 33). Empty strings
    never match. *)

val loose_match : string -> string -> bool
(** Word-aware partial match used for Algorithm 1's common-code search
    ("IsPCRel" matches "OPERAND_PCREL"): the whole lowercase strings embed
    one another (length >= 4), or some camel word of either side (length
    >= 4) embeds in the other's lowercase form. Short fragments never
    match, so one-letter register prefixes cannot create junk links. *)

val lowercase : string -> string
val uppercase : string -> string

val camel_words : string -> string list
(** Split an identifier on case transitions and separators:
    ["IsPCRel"] -> [["Is"; "PC"; "Rel"]], ["fixup_arm_movt"] ->
    [["fixup"; "arm"; "movt"]]. *)

val levenshtein : string -> string -> int
(** Edit distance; used to rank candidate target-specific values. *)

val common_token_score : string -> string -> float
(** Fraction of camel words shared between two identifiers, in [0, 1]. *)

val strip : string -> string
(** Trim ASCII whitespace from both ends. *)

val replace_all : sub:string -> by:string -> string -> string
(** Replace every occurrence of [sub]. [sub] must be non-empty. *)

val concat_map : string -> ('a -> string) -> 'a list -> string
(** [concat_map sep f xs] = [String.concat sep (List.map f xs)]. *)
