(** Deterministic pseudo-random number generator (splitmix64).

    All stochastic components of the reproduction (corpus variation, weight
    initialization, dataset shuffling) draw from this generator so that
    [dune runtest] and [bench/main.exe] are bit-reproducible. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator. Equal seeds give equal streams. *)

val split : t -> t
(** Derive an independent generator; advances the parent. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val gaussian : t -> float
(** Standard normal via Box–Muller. *)

val uniform : t -> lo:float -> hi:float -> float

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
