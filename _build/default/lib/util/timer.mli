(** Wall-clock timing for the Fig. 7 inference-time measurements. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result with elapsed seconds. *)

val time_s : (unit -> unit) -> float
(** Elapsed seconds of a unit computation. *)
