type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let golden = 0x9E3779B97F4A7C15L

let next t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let s = next t in
  { state = s }

let int t bound =
  assert (bound > 0);
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod bound

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  v /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next t) 1L = 1L

let gaussian t =
  let rec u () =
    let x = float t 1.0 in
    if x <= 1e-12 then u () else x
  in
  let u1 = u () and u2 = float t 1.0 in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let uniform t ~lo ~hi = lo +. float t (hi -. lo)

let choose t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
