lib/util/rng.mli:
