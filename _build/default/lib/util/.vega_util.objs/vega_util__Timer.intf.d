lib/util/timer.mli:
