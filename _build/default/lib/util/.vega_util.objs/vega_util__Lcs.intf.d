lib/util/lcs.mli:
