lib/util/strutil.ml: Array Buffer List String
