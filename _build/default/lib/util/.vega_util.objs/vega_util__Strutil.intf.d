lib/util/strutil.mli:
