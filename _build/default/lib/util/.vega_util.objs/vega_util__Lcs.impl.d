lib/util/lcs.ml: Array List
