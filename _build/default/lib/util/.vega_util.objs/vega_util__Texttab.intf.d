lib/util/texttab.mli:
