let table ~eq xs ys =
  let n = Array.length xs and m = Array.length ys in
  let t = Array.make_matrix (n + 1) (m + 1) 0 in
  for i = n - 1 downto 0 do
    for j = m - 1 downto 0 do
      t.(i).(j) <-
        (if eq xs.(i) ys.(j) then 1 + t.(i + 1).(j + 1)
         else max t.(i + 1).(j) t.(i).(j + 1))
    done
  done;
  t

let lcs ~eq xs ys =
  let t = table ~eq xs ys in
  let n = Array.length xs and m = Array.length ys in
  let rec walk i j acc =
    if i >= n || j >= m then List.rev acc
    else if eq xs.(i) ys.(j) then walk (i + 1) (j + 1) ((i, j) :: acc)
    else if t.(i + 1).(j) >= t.(i).(j + 1) then walk (i + 1) j acc
    else walk i (j + 1) acc
  in
  walk 0 0 []

let lcs_length ~eq xs ys =
  (* One-dimensional rolling variant: O(m) space. *)
  let n = Array.length xs and m = Array.length ys in
  let prev = Array.make (m + 1) 0 and cur = Array.make (m + 1) 0 in
  for i = n - 1 downto 0 do
    for j = m - 1 downto 0 do
      cur.(j) <-
        (if eq xs.(i) ys.(j) then 1 + prev.(j + 1) else max prev.(j) cur.(j + 1))
    done;
    Array.blit cur 0 prev 0 (m + 1)
  done;
  prev.(0)

let similarity ~eq xs ys =
  let n = Array.length xs and m = Array.length ys in
  if n = 0 && m = 0 then 1.0
  else 2.0 *. float_of_int (lcs_length ~eq xs ys) /. float_of_int (n + m)

type 'a aligned = Both of 'a * 'a | Left of 'a | Right of 'a

let align ~eq xs ys =
  let pairs = lcs ~eq xs ys in
  let n = Array.length xs and m = Array.length ys in
  let rec emit i j pairs acc =
    match pairs with
    | (pi, pj) :: rest ->
        if i < pi then emit (i + 1) j pairs (Left xs.(i) :: acc)
        else if j < pj then emit i (j + 1) pairs (Right ys.(j) :: acc)
        else emit (i + 1) (j + 1) rest (Both (xs.(i), ys.(j)) :: acc)
    | [] ->
        if i < n then emit (i + 1) j [] (Left xs.(i) :: acc)
        else if j < m then emit i (j + 1) [] (Right ys.(j) :: acc)
        else List.rev acc
  in
  emit 0 0 pairs []
