(** Fixed-width text tables for the benchmark harness output.

    Every table and figure of the paper is re-emitted as text by
    [bench/main.exe]; this module renders the rows. *)

type t

val create : headers:string list -> t
val add_row : t -> string list -> unit
val add_rule : t -> unit
(** Insert a horizontal rule between row groups. *)

val render : t -> string
(** Render with column widths fitted to contents. *)

val fmt_pct : float -> string
(** [fmt_pct 0.715] = ["71.5%"]. *)

val fmt_f : ?digits:int -> float -> string
(** Fixed-point float, default 2 digits. *)
