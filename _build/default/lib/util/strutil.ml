let split_on c s = String.split_on_char c s |> List.filter (fun x -> x <> "")
let lines s = String.split_on_char '\n' s
let starts_with ~prefix s = String.starts_with ~prefix s
let ends_with ~suffix s = String.ends_with ~suffix s

let contains_sub ~sub s =
  let n = String.length sub and m = String.length s in
  if n = 0 then true
  else if n > m then false
  else
    let rec scan i = i + n <= m && (String.sub s i n = sub || scan (i + 1)) in
    scan 0

let lowercase = String.lowercase_ascii
let uppercase = String.uppercase_ascii

let partial_match a b =
  if a = "" || b = "" then false
  else
    let a = lowercase a and b = lowercase b in
    contains_sub ~sub:a b || contains_sub ~sub:b a

let is_sep c = c = '_' || c = '.' || c = ':' || c = '-' || c = ' '
let is_upper c = c >= 'A' && c <= 'Z'
let is_lower c = c >= 'a' && c <= 'z'
let is_digit c = c >= '0' && c <= '9'

let camel_words s =
  let n = String.length s in
  let words = ref [] and buf = Buffer.create 8 in
  let flush () =
    if Buffer.length buf > 0 then begin
      words := Buffer.contents buf :: !words;
      Buffer.clear buf
    end
  in
  for i = 0 to n - 1 do
    let c = s.[i] in
    if is_sep c then flush ()
    else begin
      (* Break before an uppercase letter that starts a new word: either the
         previous char is lowercase/digit, or the next char is lowercase
         (end of an acronym, as in "PCRel" -> "PC" "Rel"). *)
      (if is_upper c && i > 0 then
         let prev = s.[i - 1] in
         if is_lower prev || is_digit prev then flush ()
         else if is_upper prev && i + 1 < n && is_lower s.[i + 1] then flush ());
      Buffer.add_char buf c
    end
  done;
  flush ();
  List.rev !words

let loose_match_min = 4

let loose_one_way a b =
  (* a (or one of its camel words) of length >= 4 embeds in b *)
  let la = lowercase a and lb = lowercase b in
  (String.length la >= loose_match_min && contains_sub ~sub:la lb)
  || List.exists
       (fun w ->
         let w = lowercase w in
         String.length w >= loose_match_min && contains_sub ~sub:w lb)
       (camel_words a)

let loose_match a b =
  if a = "" || b = "" then false else loose_one_way a b || loose_one_way b a

let levenshtein a b =
  let n = String.length a and m = String.length b in
  let prev = Array.init (m + 1) (fun j -> j) in
  let cur = Array.make (m + 1) 0 in
  for i = 1 to n do
    cur.(0) <- i;
    for j = 1 to m do
      let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
      cur.(j) <- min (min (cur.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
    done;
    Array.blit cur 0 prev 0 (m + 1)
  done;
  prev.(m)

let common_token_score a b =
  let wa = camel_words (lowercase a) and wb = camel_words (lowercase b) in
  match (wa, wb) with
  | [], _ | _, [] -> 0.0
  | _ ->
      let shared = List.filter (fun w -> List.mem w wb) wa in
      2.0 *. float_of_int (List.length shared)
      /. float_of_int (List.length wa + List.length wb)

let strip s = String.trim s

let replace_all ~sub ~by s =
  assert (sub <> "");
  let n = String.length sub and m = String.length s in
  let buf = Buffer.create m in
  let i = ref 0 in
  while !i < m do
    if !i + n <= m && String.sub s !i n = sub then begin
      Buffer.add_string buf by;
      i := !i + n
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let concat_map sep f xs = String.concat sep (List.map f xs)
