type row = Cells of string list | Rule

type t = { headers : string list; mutable rows : row list }

let create ~headers = { headers; rows = [] }
let add_row t cells = t.rows <- Cells cells :: t.rows
let add_rule t = t.rows <- Rule :: t.rows

let render t =
  let rows = List.rev t.rows in
  let ncols =
    List.fold_left
      (fun acc r -> match r with Cells c -> max acc (List.length c) | Rule -> acc)
      (List.length t.headers) rows
  in
  let widths = Array.make ncols 0 in
  let measure cells =
    List.iteri (fun i c -> if i < ncols then widths.(i) <- max widths.(i) (String.length c)) cells
  in
  measure t.headers;
  List.iter (function Cells c -> measure c | Rule -> ()) rows;
  let buf = Buffer.create 256 in
  let pad i s = s ^ String.make (widths.(i) - String.length s) ' ' in
  let emit_cells cells =
    let cells = Array.of_list cells in
    for i = 0 to ncols - 1 do
      let c = if i < Array.length cells then cells.(i) else "" in
      Buffer.add_string buf (pad i c);
      if i < ncols - 1 then Buffer.add_string buf "  "
    done;
    Buffer.add_char buf '\n'
  in
  let total = Array.fold_left ( + ) 0 widths + (2 * (ncols - 1)) in
  emit_cells t.headers;
  Buffer.add_string buf (String.make total '-');
  Buffer.add_char buf '\n';
  List.iter
    (function
      | Cells c -> emit_cells c
      | Rule ->
          Buffer.add_string buf (String.make total '-');
          Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let fmt_pct f = Printf.sprintf "%.1f%%" (100.0 *. f)
let fmt_f ?(digits = 2) f = Printf.sprintf "%.*f" digits f
