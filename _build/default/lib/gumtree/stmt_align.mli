(** Statement alignment across two implementations of one interface
    function (the pairing of [S_k] statements in Fig. 2 of the paper).

    Statements are given as [(kind, tokens)]; alignment is monotone
    (statement order is preserved) and driven by a Needleman–Wunsch pass
    whose scores combine token-level LCS similarity with hard anchors from
    the GumTree matching of the two line trees. *)

type slot = { left : int option; right : int option }
(** One column of the alignment: indices into the two statement arrays.
    [{left = Some i; right = None}] is a statement present only on the
    left. At least one side is always [Some]. *)

val align :
  (string * string list) array -> (string * string list) array -> slot list

val pair_similarity : string * string list -> string * string list -> float
(** Score used for pairing: 0 when kinds differ, else token-LCS dice. *)

val function_similarity :
  (string * string list) array -> (string * string list) array -> float
(** Mean pairing score over aligned columns; used to pick the most similar
    existing implementation (ForkFlow fork source, multi-source
    attribution). *)
