(** GumTree-style tree matching (Falleri et al., ASE'14), simplified.

    Two phases, as in the paper VEGA cites:
    - top-down: greedily match the largest isomorphic subtrees between the
      two trees (anchors);
    - bottom-up: match containers whose matched descendants exceed a dice
      threshold, recovering statement-level pairs whose contents differ
      only in target-specific values.

    The mapping is a partial injective function from nodes of [t1] to
    nodes of [t2]. *)

type mapping

val create : unit -> mapping
val pairs : mapping -> (Tree.t * Tree.t) list
val src_of : mapping -> Tree.t -> Tree.t option
(** Image of a [t1]-node. *)

val dst_of : mapping -> Tree.t -> Tree.t option
(** Preimage of a [t2]-node. *)

val dice : mapping -> Tree.t -> Tree.t -> float
(** Dice coefficient over matched descendants of two containers. *)

val top_down : ?min_height:int -> Tree.t -> Tree.t -> mapping
(** Anchor phase. [min_height] (default 0: leaves included) bounds the
    smallest isomorphic subtree considered. *)

val bottom_up : ?min_dice:float -> Tree.t -> Tree.t -> mapping -> mapping
(** Container phase; extends the mapping in place and returns it.
    [min_dice] defaults to 0.3. *)

val gumtree : Tree.t -> Tree.t -> mapping
(** [top_down] followed by [bottom_up] with default thresholds. *)
