(** Generic labelled ordered trees for the GumTree-style matcher.

    Nodes carry a [label] (node kind + value, e.g. a token spelling) and an
    opaque [id] unique within one tree. Hashes and sizes are precomputed
    bottom-up so that isomorphism tests are O(1). *)

type t = private {
  id : int;
  label : string;
  children : t list;
  size : int;  (** number of nodes in the subtree, including self *)
  height : int;
  hash : int;  (** structural hash: equal for isomorphic subtrees *)
}

val node : string -> t list -> t
(** Build a node; ids are assigned from a global counter (fresh per
    process, never reused, so two trees never share ids). *)

val leaf : string -> t
val descendants : t -> t list
(** All nodes of the subtree in pre-order, including the root. *)

val isomorphic : t -> t -> bool
(** Structural equality (labels + shape); hash-accelerated. *)

val of_lines : (string * string list) list -> t
(** [of_lines [(kind, tokens); ...]] builds the two-level tree used for
    statement alignment: a root whose children are statement nodes
    (labelled by kind) with token leaves. *)
