type t = {
  id : int;
  label : string;
  children : t list;
  size : int;
  height : int;
  hash : int;
}

let counter = ref 0

let node label children =
  incr counter;
  let size = List.fold_left (fun acc c -> acc + c.size) 1 children in
  let height = List.fold_left (fun acc c -> max acc (c.height + 1)) 0 children in
  let hash = Hashtbl.hash (label, List.map (fun c -> c.hash) children) in
  { id = !counter; label; children; size; height; hash }

let leaf label = node label []

let rec descendants t = t :: List.concat_map descendants t.children

let rec isomorphic a b =
  a.hash = b.hash && a.label = b.label && a.size = b.size
  && List.length a.children = List.length b.children
  && List.for_all2 isomorphic a.children b.children

let of_lines lines =
  node "function"
    (List.map (fun (kind, tokens) -> node kind (List.map leaf tokens)) lines)
