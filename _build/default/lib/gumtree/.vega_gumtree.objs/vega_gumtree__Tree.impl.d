lib/gumtree/tree.ml: Hashtbl List
