lib/gumtree/stmt_align.mli:
