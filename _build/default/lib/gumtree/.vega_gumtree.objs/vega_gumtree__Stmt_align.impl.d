lib/gumtree/stmt_align.ml: Array Hashtbl List Matching String Tree Vega_util
