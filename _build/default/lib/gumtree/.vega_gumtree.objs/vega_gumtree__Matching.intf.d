lib/gumtree/matching.mli: Tree
