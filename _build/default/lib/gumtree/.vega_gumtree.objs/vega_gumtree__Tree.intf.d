lib/gumtree/tree.mli:
