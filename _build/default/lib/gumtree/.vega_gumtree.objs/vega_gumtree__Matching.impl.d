lib/gumtree/matching.ml: Hashtbl List Option Tree
