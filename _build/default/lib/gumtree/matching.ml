type mapping = {
  fwd : (int, Tree.t) Hashtbl.t;  (* t1 node id -> t2 node *)
  bwd : (int, Tree.t) Hashtbl.t;
  mutable plist : (Tree.t * Tree.t) list;
}

let create () = { fwd = Hashtbl.create 64; bwd = Hashtbl.create 64; plist = [] }
let pairs m = List.rev m.plist
let src_of m (n : Tree.t) = Hashtbl.find_opt m.fwd n.id
let dst_of m (n : Tree.t) = Hashtbl.find_opt m.bwd n.id
let mapped_src m (n : Tree.t) = Hashtbl.mem m.fwd n.id
let mapped_dst m (n : Tree.t) = Hashtbl.mem m.bwd n.id

let add m (a : Tree.t) (b : Tree.t) =
  if not (mapped_src m a || mapped_dst m b) then begin
    Hashtbl.add m.fwd a.id b;
    Hashtbl.add m.bwd b.id a;
    m.plist <- (a, b) :: m.plist
  end

let rec add_isomorphic m (a : Tree.t) (b : Tree.t) =
  add m a b;
  List.iter2 (add_isomorphic m) a.children b.children

let dice m (a : Tree.t) (b : Tree.t) =
  let da = Tree.descendants a and db = Tree.descendants b in
  let matched =
    List.fold_left
      (fun acc (n : Tree.t) ->
        match src_of m n with
        | Some img ->
            if List.exists (fun (x : Tree.t) -> x.id = img.id) db then acc + 1 else acc
        | None -> acc)
      0 da
  in
  let denom = List.length da + List.length db in
  if denom = 0 then 0.0 else 2.0 *. float_of_int matched /. float_of_int denom

let top_down ?(min_height = 0) t1 t2 =
  let m = create () in
  (* Process nodes of t1 by decreasing height; for each, collect isomorphic
     unmatched candidates in t2 and greedily pair unique ones. *)
  let nodes1 =
    Tree.descendants t1
    |> List.filter (fun (n : Tree.t) -> n.height >= min_height)
    |> List.sort (fun (a : Tree.t) (b : Tree.t) -> compare b.height a.height)
  in
  let by_hash = Hashtbl.create 64 in
  List.iter
    (fun (n : Tree.t) ->
      let l = Option.value ~default:[] (Hashtbl.find_opt by_hash n.hash) in
      Hashtbl.replace by_hash n.hash (l @ [ n ]))
    (Tree.descendants t2);
  List.iter
    (fun (a : Tree.t) ->
      if not (mapped_src m a) then
        let candidates =
          Option.value ~default:[] (Hashtbl.find_opt by_hash a.hash)
          |> List.filter (fun (b : Tree.t) ->
                 (not (mapped_dst m b)) && Tree.isomorphic a b)
        in
        match candidates with
        | [ b ] -> add_isomorphic m a b
        | b :: _ ->
            (* ambiguous: keep the first in document order (greedy) *)
            add_isomorphic m a b
        | [] -> ())
    nodes1;
  m

let bottom_up ?(min_dice = 0.3) t1 t2 m =
  (* post-order over t1: containers with matched descendants get matched to
     the candidate container in t2 maximizing dice. *)
  let rec post (n : Tree.t) = List.concat_map post n.children @ [ n ] in
  let t2_nodes = Tree.descendants t2 in
  List.iter
    (fun (a : Tree.t) ->
      if (not (mapped_src m a)) && a.children <> [] then begin
        (* candidate containers: parents of images of a's matched leaves —
           approximated by scanning all unmatched containers of t2 with the
           same label. *)
        let cands =
          List.filter
            (fun (b : Tree.t) ->
              (not (mapped_dst m b)) && b.children <> [] && b.label = a.label)
            t2_nodes
        in
        let best =
          List.fold_left
            (fun acc b ->
              let d = dice m a b in
              match acc with
              | Some (_, bd) when bd >= d -> acc
              | _ when d >= min_dice -> Some (b, d)
              | _ -> acc)
            None cands
        in
        match best with Some (b, _) -> add m a b | None -> ()
      end)
    (post t1);
  m

let gumtree t1 t2 =
  let m = top_down t1 t2 in
  bottom_up t1 t2 m
