type slot = { left : int option; right : int option }

let pair_similarity (ka, ta) (kb, tb) =
  if ka <> kb then 0.0
  else
    let ta = Array.of_list ta and tb = Array.of_list tb in
    Vega_util.Lcs.similarity ~eq:String.equal ta tb

(* Minimum pairing score: below this two statements are not considered
   versions of the same template statement. Case labels pair at any
   similarity (their value is entirely target-specific). *)
let min_score = 0.3

let anchors left right =
  let t1 = Tree.of_lines (Array.to_list left) in
  let t2 = Tree.of_lines (Array.to_list right) in
  let m = Matching.gumtree t1 t2 in
  (* statement-level nodes are the children of each root, in order *)
  let stmt_ids (t : Tree.t) = Array.of_list (List.map (fun (c : Tree.t) -> c.id) t.children) in
  let ids1 = stmt_ids t1 and ids2 = stmt_ids t2 in
  let index_of ids id =
    let n = Array.length ids in
    let rec go i = if i >= n then None else if ids.(i) = id then Some i else go (i + 1) in
    go 0
  in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun ((a : Tree.t), (b : Tree.t)) ->
      match (index_of ids1 a.id, index_of ids2 b.id) with
      | Some i, Some j -> Hashtbl.replace tbl (i, j) ()
      | _ -> ())
    (Matching.pairs m);
  tbl

let align left right =
  let n = Array.length left and m = Array.length right in
  let anch = anchors left right in
  let score i j =
    let s = pair_similarity left.(i) right.(j) in
    let s = if Hashtbl.mem anch (i, j) then s +. 0.5 else s in
    let is_case (k, _) = k = "case" in
    if is_case left.(i) && is_case right.(j) then max s 0.5 else s
  in
  (* Needleman–Wunsch, gap penalty 0, pairing only when score >= min_score. *)
  let best = Array.make_matrix (n + 1) (m + 1) 0.0 in
  for i = n - 1 downto 0 do
    for j = m - 1 downto 0 do
      let s = score i j in
      let diag = if s >= min_score then s +. best.(i + 1).(j + 1) else neg_infinity in
      best.(i).(j) <- max (max best.(i + 1).(j) best.(i).(j + 1)) diag
    done
  done;
  let rec walk i j acc =
    if i >= n && j >= m then List.rev acc
    else if i >= n then walk i (j + 1) ({ left = None; right = Some j } :: acc)
    else if j >= m then walk (i + 1) j ({ left = Some i; right = None } :: acc)
    else
      let s = score i j in
      let diag = if s >= min_score then s +. best.(i + 1).(j + 1) else neg_infinity in
      if diag >= best.(i).(j) -. 1e-9 && diag > neg_infinity then
        walk (i + 1) (j + 1) ({ left = Some i; right = Some j } :: acc)
      else if best.(i + 1).(j) >= best.(i).(j + 1) then
        walk (i + 1) j ({ left = Some i; right = None } :: acc)
      else walk i (j + 1) ({ left = None; right = Some j } :: acc)
  in
  walk 0 0 []

let function_similarity left right =
  let slots = align left right in
  let total = List.length slots in
  if total = 0 then 1.0
  else
    let s =
      List.fold_left
        (fun acc { left = l; right = r } ->
          match (l, r) with
          | Some i, Some j -> acc +. pair_similarity left.(i) right.(j)
          | _ -> acc)
        0.0 slots
    in
    s /. float_of_int total
