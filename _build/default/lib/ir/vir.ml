(** VIR, the miniature intermediate representation MiniLLVM lowers.

    Non-SSA three-address code over 32/64-bit integers: virtual registers,
    basic blocks with explicit terminators, word-addressed global arrays,
    calls, and a [print] intrinsic whose output stream is the observable
    behaviour compared between the reference interpreter and the
    simulators. *)

type reg = int [@@deriving show { with_path = false }, eq]

type value = Reg of reg | Imm of int [@@deriving show { with_path = false }, eq]

type binop = Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr | Slt
[@@deriving show { with_path = false }, eq]

type cond = Eq | Ne | Lt | Ge [@@deriving show { with_path = false }, eq]

type instr =
  | Bin of binop * reg * value * value
  | Mov of reg * value
  | Addr of reg * string  (** address of a global *)
  | Load of reg * reg * int  (** dst, base, byte offset *)
  | Store of value * reg * int  (** src, base, byte offset *)
  | Call of reg option * string * value list
  | Print of value  (** observable output *)
[@@deriving show { with_path = false }, eq]

type terminator =
  | Br of string
  | Brcond of cond * value * value * string * string  (** then, else *)
  | Ret of value option
[@@deriving show { with_path = false }, eq]

type block = { label : string; body : instr list; term : terminator }
[@@deriving show { with_path = false }, eq]

type func = {
  fname : string;
  params : reg list;
  blocks : block list;  (** entry first *)
}
[@@deriving show { with_path = false }, eq]

type global = { gname : string; size : int; init : int list }
[@@deriving show { with_path = false }, eq]

type modul = { funcs : func list; globals : global list }
[@@deriving show { with_path = false }, eq]

let binop_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"
  | Slt -> "slt"

let cond_name = function Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Ge -> "ge"

let value_str = function Reg r -> Printf.sprintf "%%r%d" r | Imm n -> string_of_int n

let instr_str = function
  | Bin (op, d, a, b) ->
      Printf.sprintf "%%r%d = %s %s, %s" d (binop_name op) (value_str a)
        (value_str b)
  | Mov (d, v) -> Printf.sprintf "%%r%d = mov %s" d (value_str v)
  | Addr (d, g) -> Printf.sprintf "%%r%d = addr @%s" d g
  | Load (d, base, off) -> Printf.sprintf "%%r%d = load %%r%d, %d" d base off
  | Store (v, base, off) ->
      Printf.sprintf "store %s, %%r%d, %d" (value_str v) base off
  | Call (Some d, f, args) ->
      Printf.sprintf "%%r%d = call @%s(%s)" d f
        (String.concat ", " (List.map value_str args))
  | Call (None, f, args) ->
      Printf.sprintf "call @%s(%s)" f (String.concat ", " (List.map value_str args))
  | Print v -> Printf.sprintf "print %s" (value_str v)

let term_str = function
  | Br l -> Printf.sprintf "br %s" l
  | Brcond (c, a, b, t, f) ->
      Printf.sprintf "br%s %s, %s, %s, %s" (cond_name c) (value_str a)
        (value_str b) t f
  | Ret None -> "ret"
  | Ret (Some v) -> Printf.sprintf "ret %s" (value_str v)

let func_str f =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "func @%s(%s) {\n" f.fname
       (String.concat ", " (List.map (Printf.sprintf "%%r%d") f.params)));
  List.iter
    (fun b ->
      Buffer.add_string buf (b.label ^ ":\n");
      List.iter (fun i -> Buffer.add_string buf ("  " ^ instr_str i ^ "\n")) b.body;
      Buffer.add_string buf ("  " ^ term_str b.term ^ "\n"))
    f.blocks;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let modul_str m =
  let buf = Buffer.create 1024 in
  List.iter
    (fun g ->
      Buffer.add_string buf
        (Printf.sprintf "global @%s[%d] = {%s}\n" g.gname g.size
           (String.concat ", " (List.map string_of_int g.init))))
    m.globals;
  List.iter (fun f -> Buffer.add_string buf (func_str f)) m.funcs;
  Buffer.contents buf

let find_func m name = List.find_opt (fun f -> f.fname = name) m.funcs

let find_block f label = List.find_opt (fun b -> b.label = label) f.blocks

(** Highest virtual register used in a function (parameters included). *)
let max_reg f =
  let m = ref (-1) in
  let see r = if r > !m then m := r in
  let see_v = function Reg r -> see r | Imm _ -> () in
  List.iter see f.params;
  List.iter
    (fun b ->
      List.iter
        (function
          | Bin (_, d, a, b) ->
              see d;
              see_v a;
              see_v b
          | Mov (d, v) ->
              see d;
              see_v v
          | Addr (d, _) -> see d
          | Load (d, base, _) ->
              see d;
              see base
          | Store (v, base, _) ->
              see_v v;
              see base
          | Call (d, _, args) ->
              Option.iter see d;
              List.iter see_v args
          | Print v -> see_v v)
        b.body;
      match b.term with
      | Brcond (_, a, b', _, _) ->
          see_v a;
          see_v b'
      | Ret (Some v) -> see_v v
      | Br _ | Ret None -> ())
    f.blocks;
  !m
