(** Textual VIR parser, inverse of the printers in {!Vir}.

    Grammar (line-oriented):
    {v
    global @name[size] = {1, 2, 3}
    func @main(%r0, %r1) {
    entry:
      %r2 = add %r0, 4
      %r3 = load %r2, 0
      store %r3, %r2, 4
      print %r3
      breq %r3, 0, done, loop
    done:
      ret 0
    }
    v} *)

exception Error of string

val parse : string -> Vir.modul
(** @raise Error with a line number on malformed input. *)

val parse_func : string -> Vir.func
(** Parse a single function. @raise Error. *)
