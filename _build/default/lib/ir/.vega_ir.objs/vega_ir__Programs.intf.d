lib/ir/programs.pp.mli: Vir
