lib/ir/vir_parser.pp.ml: List Printf String Vir
