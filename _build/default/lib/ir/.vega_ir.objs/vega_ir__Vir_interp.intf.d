lib/ir/vir_interp.pp.mli: Vir
