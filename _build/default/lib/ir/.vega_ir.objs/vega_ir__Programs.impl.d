lib/ir/programs.pp.ml: Buffer List Printf Vir_interp Vir_parser
