lib/ir/vir.pp.ml: Buffer List Option Ppx_deriving_runtime Printf String
