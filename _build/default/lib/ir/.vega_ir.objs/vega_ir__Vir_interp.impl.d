lib/ir/vir_interp.pp.ml: Array Hashtbl List Option Printf Vir
