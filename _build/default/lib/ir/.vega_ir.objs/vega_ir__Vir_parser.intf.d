lib/ir/vir_parser.pp.mli: Vir
