exception Error of string

let fail lineno msg = raise (Error (Printf.sprintf "line %d: %s" lineno msg))

let strip = String.trim

let reg_of lineno s =
  let s = strip s in
  if String.length s > 2 && s.[0] = '%' && s.[1] = 'r' then
    match int_of_string_opt (String.sub s 2 (String.length s - 2)) with
    | Some r -> r
    | None -> fail lineno (Printf.sprintf "bad register %S" s)
  else fail lineno (Printf.sprintf "bad register %S" s)

let value_of lineno s =
  let s = strip s in
  if s = "" then fail lineno "empty operand"
  else if s.[0] = '%' then Vir.Reg (reg_of lineno s)
  else
    match int_of_string_opt s with
    | Some n -> Vir.Imm n
    | None -> fail lineno (Printf.sprintf "bad operand %S" s)

let split_args s =
  String.split_on_char ',' s |> List.map strip |> List.filter (fun x -> x <> "")

let binop_of = function
  | "add" -> Some Vir.Add
  | "sub" -> Some Vir.Sub
  | "mul" -> Some Vir.Mul
  | "div" -> Some Vir.Div
  | "rem" -> Some Vir.Rem
  | "and" -> Some Vir.And
  | "or" -> Some Vir.Or
  | "xor" -> Some Vir.Xor
  | "shl" -> Some Vir.Shl
  | "shr" -> Some Vir.Shr
  | "slt" -> Some Vir.Slt
  | _ -> None

let cond_of = function
  | "breq" -> Some Vir.Eq
  | "brne" -> Some Vir.Ne
  | "brlt" -> Some Vir.Lt
  | "brge" -> Some Vir.Ge
  | _ -> None

(* "word rest" split *)
let word s =
  match String.index_opt s ' ' with
  | Some i -> (String.sub s 0 i, strip (String.sub s (i + 1) (String.length s - i - 1)))
  | None -> (s, "")

let parse_call lineno rest =
  (* @f(a, b, c) *)
  match String.index_opt rest '(' with
  | Some i when String.length rest > 0 && rest.[0] = '@' ->
      let fname = String.sub rest 1 (i - 1) in
      let close = String.rindex rest ')' in
      let args = split_args (String.sub rest (i + 1) (close - i - 1)) in
      (fname, List.map (value_of lineno) args)
  | _ -> fail lineno (Printf.sprintf "bad call %S" rest)

let parse_rhs lineno dst rhs =
  let op, rest = word rhs in
  match binop_of op with
  | Some b -> (
      match split_args rest with
      | [ a; c ] -> Vir.Bin (b, dst, value_of lineno a, value_of lineno c)
      | _ -> fail lineno "binary op needs two operands")
  | None -> (
      match op with
      | "mov" -> Vir.Mov (dst, value_of lineno rest)
      | "addr" ->
          if String.length rest > 0 && rest.[0] = '@' then
            Vir.Addr (dst, String.sub rest 1 (String.length rest - 1))
          else fail lineno "addr needs @global"
      | "load" -> (
          match split_args rest with
          | [ base; off ] -> (
              match int_of_string_opt off with
              | Some off -> Vir.Load (dst, reg_of lineno base, off)
              | None -> fail lineno "bad load offset")
          | _ -> fail lineno "load needs base, offset")
      | "call" ->
          let f, args = parse_call lineno rest in
          Vir.Call (Some dst, f, args)
      | _ -> fail lineno (Printf.sprintf "unknown instruction %S" op))

type pstate = {
  mutable globals : Vir.global list;
  mutable funcs : Vir.func list;
  (* current function *)
  mutable cur_name : string option;
  mutable cur_params : int list;
  mutable blocks : Vir.block list;
  mutable cur_label : string option;
  mutable body : Vir.instr list;
}

let parse src =
  let st =
    {
      globals = [];
      funcs = [];
      cur_name = None;
      cur_params = [];
      blocks = [];
      cur_label = None;
      body = [];
    }
  in
  let finish_block lineno term =
    match st.cur_label with
    | Some label ->
        st.blocks <- { Vir.label; body = List.rev st.body; term } :: st.blocks;
        st.cur_label <- None;
        st.body <- []
    | None -> fail lineno "terminator outside a block"
  in
  let finish_func lineno =
    match st.cur_name with
    | Some fname ->
        if st.cur_label <> None then fail lineno "block missing terminator";
        st.funcs <-
          { Vir.fname; params = st.cur_params; blocks = List.rev st.blocks }
          :: st.funcs;
        st.cur_name <- None;
        st.blocks <- []
    | None -> fail lineno "'}' outside a function"
  in
  List.iteri
    (fun idx raw ->
      let lineno = idx + 1 in
      let line =
        match String.index_opt raw ';' with
        | Some i -> strip (String.sub raw 0 i)
        | None -> strip raw
      in
      if line = "" then ()
      else if String.length line > 7 && String.sub line 0 7 = "global " then begin
        (* global @name[size] = {init} *)
        let rest = strip (String.sub line 7 (String.length line - 7)) in
        match (String.index_opt rest '[', String.index_opt rest ']') with
        | Some i, Some j when rest.[0] = '@' ->
            let gname = String.sub rest 1 (i - 1) in
            let size =
              match int_of_string_opt (String.sub rest (i + 1) (j - i - 1)) with
              | Some s -> s
              | None -> fail lineno "bad global size"
            in
            let init =
              match (String.index_opt rest '{', String.index_opt rest '}') with
              | Some a, Some b ->
                  split_args (String.sub rest (a + 1) (b - a - 1))
                  |> List.map (fun s ->
                         match int_of_string_opt s with
                         | Some n -> n
                         | None -> fail lineno "bad global initializer")
              | _ -> []
            in
            st.globals <- { Vir.gname; size; init } :: st.globals
        | _ -> fail lineno "bad global declaration"
      end
      else if String.length line > 5 && String.sub line 0 5 = "func " then begin
        match String.index_opt line '(' with
        | Some i when line.[5] = '@' ->
            let fname = String.sub line 6 (i - 6) in
            let close = String.rindex line ')' in
            let params =
              split_args (String.sub line (i + 1) (close - i - 1))
              |> List.map (reg_of lineno)
            in
            st.cur_name <- Some fname;
            st.cur_params <- params
        | _ -> fail lineno "bad function header"
      end
      else if line = "}" then finish_func lineno
      else if String.length line > 1 && line.[String.length line - 1] = ':' then begin
        if st.cur_label <> None then fail lineno "previous block not terminated";
        st.cur_label <- Some (String.sub line 0 (String.length line - 1))
      end
      else begin
        let op, rest = word line in
        match cond_of op with
        | Some c -> (
            match split_args rest with
            | [ a; b; t; f ] ->
                finish_block lineno
                  (Vir.Brcond (c, value_of lineno a, value_of lineno b, t, f))
            | _ -> fail lineno "conditional branch needs 4 operands")
        | None -> (
            match op with
            | "br" -> finish_block lineno (Vir.Br rest)
            | "ret" ->
                finish_block lineno
                  (if rest = "" then Vir.Ret None
                   else Vir.Ret (Some (value_of lineno rest)))
            | "print" -> st.body <- Vir.Print (value_of lineno rest) :: st.body
            | "store" -> (
                match split_args rest with
                | [ v; base; off ] -> (
                    match int_of_string_opt off with
                    | Some off ->
                        st.body <-
                          Vir.Store (value_of lineno v, reg_of lineno base, off)
                          :: st.body
                    | None -> fail lineno "bad store offset")
                | _ -> fail lineno "store needs value, base, offset")
            | "call" ->
                let f, args = parse_call lineno rest in
                st.body <- Vir.Call (None, f, args) :: st.body
            | _ -> (
                (* %rN = rhs *)
                match String.index_opt line '=' with
                | Some i ->
                    let dst = reg_of lineno (String.sub line 0 i) in
                    let rhs = strip (String.sub line (i + 1) (String.length line - i - 1)) in
                    st.body <- parse_rhs lineno dst rhs :: st.body
                | None -> fail lineno (Printf.sprintf "cannot parse %S" line)))
      end)
    (String.split_on_char '\n' src);
  if st.cur_name <> None then raise (Error "unterminated function");
  { Vir.funcs = List.rev st.funcs; globals = List.rev st.globals }

let parse_func src =
  match (parse src).Vir.funcs with
  | [ f ] -> f
  | _ -> raise (Error "expected exactly one function")
