(** Reference interpreter for VIR.

    Its [print] output stream is the golden behaviour the simulators must
    reproduce, making every regression comparison end-to-end behavioural.
    Execution is fuel-bounded. *)

exception Error of string

val run :
  ?fuel:int -> ?mem_words:int -> Vir.modul -> entry:string -> args:int list ->
  int list * int option
(** [run m ~entry ~args] executes [entry]; returns the print stream and
    the entry function's return value. Default fuel 2_000_000 steps,
    memory 65_536 words.
    @raise Error on missing symbols, out-of-bounds access, division by
    zero, or fuel exhaustion. *)
