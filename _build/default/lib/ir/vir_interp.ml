exception Error of string

let err fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* 32-bit wraparound semantics shared with the simulators *)
let wrap n = (n land 0xFFFFFFFF) - (if n land 0x80000000 <> 0 then 0x100000000 else 0)

let eval_bin op a b =
  let v =
    match op with
    | Vir.Add -> a + b
    | Vir.Sub -> a - b
    | Vir.Mul -> a * b
    | Vir.Div -> if b = 0 then err "division by zero" else a / b
    | Vir.Rem -> if b = 0 then err "remainder by zero" else a mod b
    | Vir.And -> a land b
    | Vir.Or -> a lor b
    | Vir.Xor -> a lxor b
    | Vir.Shl -> a lsl (b land 31)
    | Vir.Shr -> (a land 0xFFFFFFFF) lsr (b land 31)
    | Vir.Slt -> if a < b then 1 else 0
  in
  wrap v

let eval_cond c a b =
  match c with
  | Vir.Eq -> a = b
  | Vir.Ne -> a <> b
  | Vir.Lt -> a < b
  | Vir.Ge -> a >= b

type state = {
  m : Vir.modul;
  mem : int array;  (** word-indexed; addresses are byte addresses *)
  gaddr : (string, int) Hashtbl.t;
  output : int list ref;
  mutable fuel : int;
}

let word_addr st byte =
  if byte land 3 <> 0 then err "unaligned access at %d" byte;
  let w = byte / 4 in
  if w < 0 || w >= Array.length st.mem then err "address %d out of bounds" byte;
  w

let rec exec_func st (f : Vir.func) args =
  let regs = Hashtbl.create 32 in
  if List.length args < List.length f.params then
    err "function %s expects %d arguments" f.fname (List.length f.params);
  List.iteri
    (fun i p -> Hashtbl.replace regs p (List.nth args i))
    f.params;
  let value = function
    | Vir.Reg r -> (
        match Hashtbl.find_opt regs r with
        | Some v -> v
        | None -> err "use of undefined register %%r%d in %s" r f.fname)
    | Vir.Imm n -> n
  in
  let rec run_block (b : Vir.block) =
    List.iter
      (fun instr ->
        st.fuel <- st.fuel - 1;
        if st.fuel <= 0 then err "fuel exhausted";
        match instr with
        | Vir.Bin (op, d, a, c) -> Hashtbl.replace regs d (eval_bin op (value a) (value c))
        | Vir.Mov (d, v) -> Hashtbl.replace regs d (value v)
        | Vir.Addr (d, g) -> (
            match Hashtbl.find_opt st.gaddr g with
            | Some a -> Hashtbl.replace regs d a
            | None -> err "unknown global @%s" g)
        | Vir.Load (d, base, off) ->
            let a = word_addr st (value (Vir.Reg base) + off) in
            Hashtbl.replace regs d st.mem.(a)
        | Vir.Store (v, base, off) ->
            let a = word_addr st (value (Vir.Reg base) + off) in
            st.mem.(a) <- wrap (value v)
        | Vir.Call (d, callee, cargs) -> (
            match Vir.find_func st.m callee with
            | Some cf ->
                let r = exec_func st cf (List.map value cargs) in
                Option.iter
                  (fun dst -> Hashtbl.replace regs dst (Option.value ~default:0 r))
                  d
            | None -> err "unknown function @%s" callee)
        | Vir.Print v -> st.output := wrap (value v) :: !(st.output))
      b.body;
    st.fuel <- st.fuel - 1;
    if st.fuel <= 0 then err "fuel exhausted";
    match b.term with
    | Vir.Br l -> goto l
    | Vir.Brcond (c, a, bv, t, e) ->
        if eval_cond c (value a) (value bv) then goto t else goto e
    | Vir.Ret None -> None
    | Vir.Ret (Some v) -> Some (value v)
  and goto l =
    match Vir.find_block f l with
    | Some b -> run_block b
    | None -> err "unknown label %s in %s" l f.fname
  in
  match f.blocks with
  | entry :: _ -> run_block entry
  | [] -> err "function %s has no blocks" f.fname

let run ?(fuel = 2_000_000) ?(mem_words = 65_536) m ~entry ~args =
  let st =
    { m; mem = Array.make mem_words 0; gaddr = Hashtbl.create 8; output = ref []; fuel }
  in
  (* globals from byte address 4096 up (0 stays a trap address) *)
  let next = ref 4096 in
  List.iter
    (fun (g : Vir.global) ->
      Hashtbl.replace st.gaddr g.gname !next;
      List.iteri (fun i v -> st.mem.((!next / 4) + i) <- wrap v) g.init;
      next := !next + (4 * g.size))
    m.globals;
  let f =
    match Vir.find_func m entry with
    | Some f -> f
    | None -> err "unknown entry function @%s" entry
  in
  let r = exec_func st f args in
  (List.rev !(st.output), r)
