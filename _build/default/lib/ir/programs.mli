(** Workload programs.

    [regression] stands in for the LLVM regression suites of Sec. 4.1.3
    (scaled down; see DESIGN.md): each case exercises a specific backend
    behaviour. [benchmarks] stand in for SPEC CPU2017 / PULP tests /
    Embench in Fig. 10: loop kernels where -O3 (immediate folding,
    fusion, hardware loops, SIMD) pays off. *)

type case = {
  name : string;
  source : string;  (** VIR text *)
  entry : string;
  args : int list;
}

val regression : case list
val benchmarks : case list
val find : string -> case option
val modul_of : case -> Vir.modul
val golden : case -> int list
(** Print stream from the reference interpreter. *)
